#!/usr/bin/env python3
"""iqs_lint: repo-local invariant checks for libiqs.

Token/regex-level checks over the real include graph — deliberately
libclang-free so it runs anywhere Python 3 runs (CI containers, dev
boxes without a clang toolchain). Complements, not replaces, the clang
-Wthread-safety build: clang proves lock discipline; iqs_lint enforces
the repo conventions a compiler cannot see (CLAUDE.md "Conventions").

Rules
-----
raw-rand         No std::rand / srand / std::random_device / std::mt19937
                 (or other <random> engines) outside src/iqs/util/rng*.
                 Every sampler takes an explicit iqs::Rng*; unseeded or
                 time-seeded randomness breaks test determinism.

check-in-loop    No IQS_CHECK inside a loop body in src/ — per-element
                 contract checks belong in IQS_DCHECK (compiled out under
                 NDEBUG) so RelWithDebInfo hot paths pay nothing. Cold
                 loops (destructors, build paths) may keep IQS_CHECK with
                 a justified suppression.

batch-signature  Batch entry points (QueryBatch / SampleBatch /
                 QueryPositionsBatch / SampleJoinBatch) keep the
                 canonical parameter order: inputs..., Rng*,
                 ScratchArena*, BatchOptions, output last. Params may be
                 omitted (overloads), never reordered.

umbrella         Every header under src/iqs/ is reachable from the
                 umbrella header src/iqs/iqs.h by following
                 #include "iqs/..." edges (static mirror of
                 tests/umbrella_header_test.cc).

naked-mutex      No std::mutex / std::condition_variable /
                 std::lock_guard / std::unique_lock / std::scoped_lock in
                 src/ outside util/thread_annotations.h — use the
                 annotated iqs::Mutex / iqs::MutexLock / iqs::CondVar so
                 clang -Wthread-safety sees every lock.

Suppression: append `// iqs-lint: allow(<rule>) -- <justification>` to
the offending line, or put it alone on the line above. The justification
is mandatory; an empty one is itself a finding.

Usage: python3 tools/iqs_lint.py [--root DIR] [--rule RULE]...
Exit codes: 0 clean, 1 findings, 2 usage/configuration error.
Output: one `path:line: [rule] message` per finding.
"""

import argparse
import os
import re
import sys

ALL_RULES = (
    "raw-rand",
    "check-in-loop",
    "batch-signature",
    "umbrella",
    "naked-mutex",
)

SUPPRESS_RE = re.compile(
    r"//\s*iqs-lint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)\s*(?:--\s*(.*))?"
)

CXX_EXTS = (".h", ".cc", ".cpp")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line  # 1-based
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


class SourceFile:
    """One file plus its comment-stripped view and suppression map."""

    def __init__(self, root, relpath):
        self.relpath = relpath
        with open(os.path.join(root, relpath), encoding="utf-8") as f:
            self.raw_lines = f.read().split("\n")
        # rule -> set of 1-based line numbers it is suppressed on;
        # "" key records allow() comments with an empty justification.
        self.suppressed = {}
        self.bad_suppressions = []  # (line, rules) with missing justification
        self._collect_suppressions()
        self.lines = [self._strip_line(ln) for ln in self.raw_lines]

    def _collect_suppressions(self):
        for i, line in enumerate(self.raw_lines, start=1):
            m = SUPPRESS_RE.search(line)
            if not m:
                continue
            rules = [r.strip() for r in m.group(1).split(",")]
            justification = (m.group(2) or "").strip()
            if not justification:
                self.bad_suppressions.append((i, rules))
                continue
            # A comment alone on its line covers the NEXT line too.
            covers = [i]
            if line.split("//")[0].strip() == "":
                covers.append(i + 1)
            for rule in rules:
                self.suppressed.setdefault(rule, set()).update(covers)

    @staticmethod
    def _strip_line(line):
        """Blank out string/char literals and // comments (keeps column
        positions, so line numbers and loop-brace tracking stay exact).
        Block comments are rare in this codebase and line-local ones are
        handled; multi-line /* */ bodies still parse as code, which the
        rules tolerate (they only match tokens that never appear in
        prose)."""
        out = []
        i, n = 0, len(line)
        in_str = None
        while i < n:
            c = line[i]
            if in_str:
                if c == "\\":
                    i += 2
                    continue
                if c == in_str:
                    in_str = None
                i += 1
                continue
            if c in "\"'":
                in_str = c
                out.append(c)
                i += 1
                continue
            if c == "/" and i + 1 < n and line[i + 1] == "/":
                break  # rest is comment
            out.append(c)
            i += 1
        return "".join(out)

    def is_suppressed(self, rule, line):
        return line in self.suppressed.get(rule, set())


# The lint selftest fixture contains deliberate violations; never lint
# it as repo code (run_selftest.py points --root at it directly).
EXCLUDE_DIRS = (os.path.join("tests", "lint_selftest"),)


def iter_files(root, subdirs):
    for sub in subdirs:
        base = os.path.join(root, sub)
        if not os.path.isdir(base):
            continue
        for dirpath, _, names in os.walk(base):
            rel_dir = os.path.relpath(dirpath, root)
            if any(rel_dir.startswith(e) for e in EXCLUDE_DIRS):
                continue
            for name in sorted(names):
                if name.endswith(CXX_EXTS):
                    yield os.path.relpath(os.path.join(dirpath, name), root)


def report(findings, src, rule, line, message):
    if src.is_suppressed(rule, line):
        return
    findings.append(Finding(src.relpath, line, rule, message))


# --- rule: raw-rand ---------------------------------------------------------

RAW_RAND_RE = re.compile(
    r"\bstd::rand\b|\bsrand\s*\(|\bstd::random_device\b"
    r"|\bstd::(mt19937(_64)?|minstd_rand0?|ranlux\w+|knuth_b|default_random_engine)\b"
)


def rule_raw_rand(files, findings):
    for src in files:
        if src.relpath.startswith(os.path.join("src", "iqs", "util")) and (
            os.path.basename(src.relpath).startswith("rng")
        ):
            continue
        for i, line in enumerate(src.lines, start=1):
            if RAW_RAND_RE.search(line):
                report(
                    findings, src, "raw-rand", i,
                    "raw/standard-library randomness; take an iqs::Rng* "
                    "instead (util/rng.h) so seeds stay deterministic",
                )


# --- rule: check-in-loop ----------------------------------------------------

LOOP_HEAD_RE = re.compile(r"(^|[^\w])(for|while)\s*\(")
DO_HEAD_RE = re.compile(r"(^|[^\w])do\s*\{")


IQS_CHECK_RE = re.compile(r"\bIQS_CHECK\(")


def rule_check_in_loop(files, findings):
    """Flag IQS_CHECK( inside a loop body. Brace-tracking state machine
    over per-line events (loop heads and braces, in column order): a loop
    head arms `pending_loops`; the next `{` binds it onto `loop_depths`;
    any IQS_CHECK while a loop scope is open is a finding. A brace-less
    single-statement body (`for (...) stmt;`) disarms at the terminating
    semicolon line."""
    for src in files:
        if not src.relpath.startswith("src" + os.sep):
            continue
        if os.path.basename(src.relpath) == "check.h":
            continue  # defines the macros inside do { } while (0)
        depth = 0
        paren_depth = 0  # cumulative ( ) nesting, for multi-line heads
        loop_depths = []  # brace depths whose scope is a loop body
        pending_loops = 0  # loop heads seen whose '{' has not appeared yet
        for i, line in enumerate(src.lines, start=1):
            events = []
            for m in LOOP_HEAD_RE.finditer(line):
                events.append((m.start(), "loop"))
            for m in DO_HEAD_RE.finditer(line):
                events.append((m.start(), "loop"))
            for j, c in enumerate(line):
                if c in "{}":
                    events.append((j, c))
            events.sort()
            in_loop_at_start = bool(loop_depths or pending_loops)
            for m in IQS_CHECK_RE.finditer(line):
                # In a loop if one was already open entering the line, or
                # a loop head appears earlier on this very line.
                if in_loop_at_start or any(
                        pos < m.start() and kind == "loop"
                        for pos, kind in events):
                    report(
                        findings, src, "check-in-loop", i,
                        "IQS_CHECK inside a loop body; use IQS_DCHECK "
                        "(free under NDEBUG) or suppress with a cold-path "
                        "justification",
                    )
                    break  # one finding per line is enough
            for _, kind in events:
                if kind == "loop":
                    pending_loops += 1
                elif kind == "{":
                    depth += 1
                    if pending_loops:
                        loop_depths.append(depth)
                        pending_loops -= 1
                else:
                    if loop_depths and loop_depths[-1] == depth:
                        loop_depths.pop()
                    depth -= 1
            paren_depth += line.count("(") - line.count(")")
            # Brace-less single-statement body: `for (...) stmt;` or the
            # statement on its own following line. The terminating ';' at
            # line end closes it — but only with the head's parens closed
            # (a multi-line `for (a;\n b; c)` head also ends lines in ';').
            if pending_loops and paren_depth == 0 and (
                    line.rstrip().endswith(";")):
                pending_loops -= 1


# --- rule: batch-signature --------------------------------------------------

BATCH_FN_RE = re.compile(
    r"\b(QueryBatch|SampleBatch|QueryPositionsBatch|SampleJoinBatch)\s*\(")

# Canonical tail order. Each param class gets a rank; ranks must be
# non-decreasing across the parameter list, and the output param (if any)
# must be last. Leading inputs (queries/plan/spans/sizes) share rank 0.
PARAM_CLASS_RES = (
    (re.compile(r"\bRng\s*\*"), 1, "Rng*"),
    (re.compile(r"\bScratchArena\s*\*"), 2, "ScratchArena*"),
    (re.compile(r"\bBatchOptions\b"), 3, "BatchOptions"),
    # Outputs: *BatchResult* / *Result* pointers, vector-of-samples
    # pointers, or a pointer param named out/result.
    (re.compile(r"\w*Result\s*\*|\bstd::vector\s*<[^;]*>\s*\*"
                r"|\*\s*(out|result)\b"), 4, "output*"),
)


def split_params(paramlist):
    """Split a parameter list on top-level commas."""
    parts, depth, cur = [], 0, []
    for c in paramlist:
        if c in "<([":
            depth += 1
        elif c in ">)]":
            depth -= 1
        if c == "," and depth == 0:
            parts.append("".join(cur).strip())
            cur = []
        else:
            cur.append(c)
    tail = "".join(cur).strip()
    if tail:
        parts.append(tail)
    return parts


def rule_batch_signature(files, findings):
    for src in files:
        if not src.relpath.startswith("src" + os.sep):
            continue
        text = "\n".join(src.lines)
        for m in BATCH_FN_RE.finditer(text):
            name = m.group(1)
            # Extract the balanced parameter list.
            depth, j = 1, m.end()
            while j < len(text) and depth:
                if text[j] == "(":
                    depth += 1
                elif text[j] == ")":
                    depth -= 1
                j += 1
            if depth:
                continue  # unbalanced (end of file mid-macro); skip
            paramlist = text[m.end():j - 1]
            line = text.count("\n", 0, m.start()) + 1
            # Only declarations/definitions, not call sites: a parameter
            # list contains type tokens; calls pass bare expressions.
            if not re.search(r"\b(const|Rng\s*\*|size_t|std::|double|uint)",
                             paramlist):
                continue
            if re.match(r"\s*\)", text[m.end():]):
                continue
            params = split_params(paramlist)
            ranks = []
            for p in params:
                rank = 0
                for cre, r, _ in PARAM_CLASS_RES:
                    if cre.search(p):
                        rank = r
                        break
                ranks.append(rank)
            # Call-site heuristic: declarations name their params with
            # types; if no param matched any class and none look like
            # declarations, skip.
            if ranks and ranks != sorted(ranks):
                report(
                    findings, src, "batch-signature", line,
                    f"{name} parameters out of canonical order "
                    "(inputs..., Rng*, ScratchArena*, BatchOptions, "
                    "output last)",
                )
            elif 4 in ranks and ranks.index(4) != len(ranks) - 1 and (
                    ranks.count(4) == 1):
                report(
                    findings, src, "batch-signature", line,
                    f"{name} output vector* parameter must come last",
                )


# --- rule: umbrella ---------------------------------------------------------

INCLUDE_RE = re.compile(r'#include\s+"(iqs/[^"]+)"')


def rule_umbrella(root, files, findings):
    headers = {}
    for src in files:
        if src.relpath.startswith(os.path.join("src", "iqs")) and (
                src.relpath.endswith(".h")):
            # Path as it appears in include directives.
            inc = src.relpath[len("src" + os.sep):].replace(os.sep, "/")
            headers[inc] = src
    start = "iqs/iqs.h"
    if start not in headers:
        findings.append(Finding(
            os.path.join("src", "iqs", "iqs.h"), 1, "umbrella",
            "umbrella header src/iqs/iqs.h not found"))
        return
    seen = {start}
    frontier = [start]
    while frontier:
        cur = frontier.pop()
        # raw_lines, not the stripped view: stripping blanks out string
        # literal contents, and the include path IS a string literal.
        for line in headers[cur].raw_lines:
            m = INCLUDE_RE.search(line)
            if m and m.group(1) in headers and m.group(1) not in seen:
                seen.add(m.group(1))
                frontier.append(m.group(1))
    for inc in sorted(set(headers) - seen):
        src = headers[inc]
        report(
            findings, src, "umbrella", 1,
            f'"{inc}" is not reachable from the umbrella header iqs/iqs.h; '
            "add an #include edge or suppress if intentionally internal",
        )


# --- rule: naked-mutex ------------------------------------------------------

NAKED_MUTEX_RE = re.compile(
    r"\bstd::(mutex|timed_mutex|recursive_mutex|shared_mutex|lock_guard"
    r"|unique_lock|scoped_lock|shared_lock|condition_variable(_any)?)\b"
    r"|#include\s+<(mutex|shared_mutex|condition_variable)>"
)


def rule_naked_mutex(files, findings):
    for src in files:
        if not src.relpath.startswith("src" + os.sep):
            continue
        if os.path.basename(src.relpath) == "thread_annotations.h":
            continue  # the one place allowed to wrap the std primitives
        for i, line in enumerate(src.lines, start=1):
            if NAKED_MUTEX_RE.search(line):
                report(
                    findings, src, "naked-mutex", i,
                    "naked std synchronization primitive; use iqs::Mutex / "
                    "iqs::MutexLock / iqs::CondVar "
                    "(util/thread_annotations.h) so clang -Wthread-safety "
                    "sees the lock",
                )


# ---------------------------------------------------------------------------


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--root", default=".",
                        help="repo root (default: cwd)")
    parser.add_argument("--rule", action="append", choices=ALL_RULES,
                        help="run only this rule (repeatable)")
    args = parser.parse_args(argv)
    rules = tuple(args.rule) if args.rule else ALL_RULES

    root = os.path.abspath(args.root)
    if not os.path.isdir(root):
        print(f"iqs_lint: no such directory: {root}", file=sys.stderr)
        return 2
    subdirs = ["src", "tests", "bench", "examples"]
    relpaths = list(iter_files(root, subdirs))
    if not relpaths:
        print(f"iqs_lint: no C++ sources under {root}", file=sys.stderr)
        return 2
    try:
        files = [SourceFile(root, rp) for rp in relpaths]
    except OSError as e:
        print(f"iqs_lint: {e}", file=sys.stderr)
        return 2

    findings = []
    for src in files:
        for line, bad_rules in src.bad_suppressions:
            findings.append(Finding(
                src.relpath, line, "suppression",
                f"allow({', '.join(bad_rules)}) without a justification; "
                "write `// iqs-lint: allow(rule) -- why`"))
    if "raw-rand" in rules:
        rule_raw_rand(files, findings)
    if "check-in-loop" in rules:
        rule_check_in_loop(files, findings)
    if "batch-signature" in rules:
        rule_batch_signature(files, findings)
    if "umbrella" in rules:
        rule_umbrella(root, files, findings)
    if "naked-mutex" in rules:
        rule_naked_mutex(files, findings)

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    for f in findings:
        print(f)
    if findings:
        print(f"iqs_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
