#include "iqs/sampling/wor_query.h"

#include <map>
#include <set>
#include <vector>

#include "gtest/gtest.h"
#include "iqs/range/chunked_range_sampler.h"
#include "iqs/util/distributions.h"
#include "iqs/util/rng.h"
#include "test_util.h"

namespace iqs {
namespace {

struct Fixture {
  explicit Fixture(size_t n, double alpha = 0.0) {
    Rng rng(1);
    keys = UniformKeys(n, &rng);
    weights = ZipfWeights(n, alpha, &rng);
    sampler = std::make_unique<ChunkedRangeSampler>(keys, weights);
  }
  std::vector<double> keys;
  std::vector<double> weights;
  std::unique_ptr<ChunkedRangeSampler> sampler;
};

TEST(WorQueryTest, DistinctInRangeRightSize) {
  Fixture f(300);
  Rng rng(2);
  for (int trial = 0; trial < 100; ++trial) {
    size_t a = rng.Below(300);
    size_t b = rng.Below(300);
    if (a > b) std::swap(a, b);
    const size_t s = 1 + rng.Below(40);
    std::vector<size_t> out;
    WorQueryPositions(*f.sampler, {}, a, b, s, &rng, &out);
    EXPECT_EQ(out.size(), std::min(s, b - a + 1));
    std::set<size_t> distinct(out.begin(), out.end());
    EXPECT_EQ(distinct.size(), out.size());
    for (size_t p : out) {
      EXPECT_GE(p, a);
      EXPECT_LE(p, b);
    }
  }
}

TEST(WorQueryTest, UniformInclusionProbabilities) {
  // WoR(range of 20, s = 5): every position included w.p. 1/4.
  Fixture f(64);
  Rng rng(3);
  std::vector<uint64_t> inclusion(20, 0);
  const int trials = 40000;
  for (int t = 0; t < trials; ++t) {
    std::vector<size_t> out;
    WorQueryPositions(*f.sampler, {}, 10, 29, 5, &rng, &out);
    for (size_t p : out) ++inclusion[p - 10];
  }
  testing::ExpectDistributionClose(inclusion,
                                   std::vector<double>(20, 1.0 / 20));
}

TEST(WorQueryTest, SubsetLawIsUniformOnSmallDomain) {
  // Over a range of 5 with s = 2, each of the 10 subsets must be equally
  // likely (the defining property of WoR sampling).
  Fixture f(40);
  Rng rng(4);
  std::map<std::pair<size_t, size_t>, uint64_t> freq;
  const int trials = 60000;
  for (int t = 0; t < trials; ++t) {
    std::vector<size_t> out;
    WorQueryPositions(*f.sampler, {}, 20, 24, 2, &rng, &out);
    ASSERT_EQ(out.size(), 2u);
    auto key = std::minmax(out[0], out[1]);
    ++freq[key];
  }
  ASSERT_EQ(freq.size(), 10u);
  std::vector<uint64_t> counts;
  for (const auto& [subset, count] : freq) counts.push_back(count);
  testing::ExpectDistributionClose(counts, std::vector<double>(10, 0.1));
}

TEST(WorQueryTest, DenseRegimeTakesWholeRange) {
  Fixture f(100);
  Rng rng(5);
  std::vector<size_t> out;
  WorQueryPositions(*f.sampler, {}, 10, 19, 10, &rng, &out);
  std::set<size_t> distinct(out.begin(), out.end());
  EXPECT_EQ(distinct.size(), 10u);
  // Oversized s clamps.
  out.clear();
  WorQueryPositions(*f.sampler, {}, 10, 19, 100, &rng, &out);
  EXPECT_EQ(out.size(), 10u);
}

TEST(WorQueryTest, WeightedInclusionMonotoneInWeight) {
  // Weighted WoR: heavier elements must be included more often.
  const size_t n = 16;
  Rng rng(6);
  const auto keys = UniformKeys(n, &rng);
  std::vector<double> weights(n, 1.0);
  weights[3] = 8.0;   // heavy
  weights[11] = 0.125;  // light
  ChunkedRangeSampler sampler(keys, weights);
  std::vector<uint64_t> inclusion(n, 0);
  const int trials = 30000;
  for (int t = 0; t < trials; ++t) {
    std::vector<size_t> out;
    WorQueryPositions(sampler, weights, 0, n - 1, 4, &rng, &out);
    ASSERT_EQ(out.size(), 4u);
    for (size_t p : out) ++inclusion[p];
  }
  EXPECT_GT(inclusion[3], inclusion[0] * 2);
  EXPECT_LT(inclusion[11] * 2, inclusion[0]);
}

TEST(WorQueryTest, WeightedFirstMarginalMatchesWeights) {
  // The first element of a weighted WoR sample has the plain weighted
  // law. Recover it via s = 1.
  const size_t n = 8;
  Rng rng(7);
  const auto keys = UniformKeys(n, &rng);
  const std::vector<double> weights = {1, 2, 3, 4, 4, 3, 2, 1};
  ChunkedRangeSampler sampler(keys, weights);
  std::vector<size_t> samples;
  for (int t = 0; t < 120000; ++t) {
    std::vector<size_t> out;
    WorQueryPositions(sampler, weights, 0, n - 1, 1, &rng, &out);
    samples.push_back(out[0]);
  }
  testing::ExpectSamplesMatchWeights(samples, weights);
}

TEST(WorQueryTest, ExtremeSkewFallbackStillCorrect) {
  // One element holds ~all the weight: the WR-dedupe loop exhausts its
  // budget and the scan fallback must deliver distinct samples.
  const size_t n = 64;
  Rng rng(8);
  const auto keys = UniformKeys(n, &rng);
  std::vector<double> weights(n, 1e-9);
  weights[17] = 1.0;
  ChunkedRangeSampler sampler(keys, weights);
  for (int t = 0; t < 50; ++t) {
    std::vector<size_t> out;
    WorQueryPositions(sampler, weights, 0, n - 1, 8, &rng, &out);
    ASSERT_EQ(out.size(), 8u);
    std::set<size_t> distinct(out.begin(), out.end());
    EXPECT_EQ(distinct.size(), 8u);
    EXPECT_TRUE(distinct.contains(17));  // the heavy one is ~always in
  }
}

TEST(WorQueryTest, WeightedSubsetLawMatchesSuccessiveSampling) {
  // Exact-law check on a tiny domain: weighted WoR ("successive
  // sampling") of s = 2 from 3 elements. P({i,j}) = P(i first) * P(j
  // second | i gone) + the symmetric term.
  Rng rng(10);
  const std::vector<double> keys = {1.0, 2.0, 3.0};
  const std::vector<double> weights = {1.0, 2.0, 3.0};
  ChunkedRangeSampler sampler(keys, weights);

  const double total = 6.0;
  auto pair_prob = [&](size_t i, size_t j) {
    return weights[i] / total * weights[j] / (total - weights[i]) +
           weights[j] / total * weights[i] / (total - weights[j]);
  };
  std::map<std::pair<size_t, size_t>, uint64_t> freq;
  const int trials = 150000;
  for (int t = 0; t < trials; ++t) {
    std::vector<size_t> out;
    WorQueryPositions(sampler, weights, 0, 2, 2, &rng, &out);
    ASSERT_EQ(out.size(), 2u);
    ++freq[std::minmax(out[0], out[1])];
  }
  std::vector<uint64_t> counts;
  std::vector<double> probs;
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = i + 1; j < 3; ++j) {
      counts.push_back(freq[{i, j}]);
      probs.push_back(pair_prob(i, j));
    }
  }
  testing::ExpectDistributionClose(counts, probs);
}

TEST(WorQueryTest, WeightedSubsetLawSparsePath) {
  // Same exact-law check through the sparse (WR-dedupe) code path:
  // range of 4 with s = 2 (s*2 == range, not greater -> sparse regime).
  Rng rng(11);
  const std::vector<double> keys = {0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0};
  const std::vector<double> weights = {9, 9, 1.0, 2.0, 3.0, 4.0, 9, 9};
  ChunkedRangeSampler sampler(keys, weights);

  const size_t a = 2;
  const size_t b = 5;
  const double total = 10.0;
  auto pair_prob = [&](size_t i, size_t j) {
    return weights[i] / total * weights[j] / (total - weights[i]) +
           weights[j] / total * weights[i] / (total - weights[j]);
  };
  std::map<std::pair<size_t, size_t>, uint64_t> freq;
  const int trials = 150000;
  for (int t = 0; t < trials; ++t) {
    std::vector<size_t> out;
    WorQueryPositions(sampler, weights, a, b, 2, &rng, &out);
    ASSERT_EQ(out.size(), 2u);
    ++freq[std::minmax(out[0], out[1])];
  }
  std::vector<uint64_t> counts;
  std::vector<double> probs;
  for (size_t i = a; i <= b; ++i) {
    for (size_t j = i + 1; j <= b; ++j) {
      counts.push_back(freq[{i, j}]);
      probs.push_back(pair_prob(i, j));
    }
  }
  testing::ExpectDistributionClose(counts, probs);
}

TEST(WorQueryTest, KeyIntervalForm) {
  Fixture f(50);
  Rng rng(9);
  std::vector<size_t> out;
  EXPECT_FALSE(WorQuery(*f.sampler, {}, 2.0, 3.0, 4, &rng, &out));
  EXPECT_TRUE(WorQuery(*f.sampler, {}, 0.0, 1.0, 4, &rng, &out));
  EXPECT_EQ(out.size(), 4u);
}

}  // namespace
}  // namespace iqs
