// Tests for the deterministic parallel batch-serving mode
// (BatchOptions{num_threads}): the load-bearing property is THREAD-COUNT
// INVARIANCE — under a fixed seed the parallel mode must produce
// byte-identical output for every num_threads >= 1, because each query
// (or coalesced run) draws from its own RNG substream and writes a fixed
// slice of the flat output. On top of that, chi-square evidence (alpha
// 1e-6, per test_util.h) that the parallel mode draws from the same
// per-query law as the sequential path, and batch-independence checks
// (repeated parallel batches must not repeat samples).

#include <cstdint>
#include <memory>
#include <vector>

#include "gtest/gtest.h"
#include "iqs/cover/cover_plan.h"
#include "iqs/cover/coverage_engine.h"
#include "iqs/multidim/kd_sampler.h"
#include "iqs/multidim/multidim_batch.h"
#include "iqs/multidim/quadtree.h"
#include "iqs/multidim/range_tree.h"
#include "iqs/multidim/range_tree_nd.h"
#include "iqs/range/aug_range_sampler.h"
#include "iqs/range/bst_range_sampler.h"
#include "iqs/range/chunked_range_sampler.h"
#include "iqs/range/naive_range_sampler.h"
#include "iqs/range/range_sampler.h"
#include "iqs/tree/subtree_sampler.h"
#include "iqs/tree/weighted_tree.h"
#include "iqs/util/batch_options.h"
#include "iqs/util/distributions.h"
#include "iqs/util/rng.h"
#include "iqs/util/scratch_arena.h"
#include "iqs/util/telemetry.h"
#include "iqs/util/thread_pool.h"
#include "test_util.h"

namespace iqs {
namespace {

constexpr size_t kThreadCounts[] = {1, 2, 7};

struct Data {
  std::vector<double> keys;
  std::vector<double> weights;
};

Data MakeData(size_t n, uint64_t seed) {
  Rng rng(seed);
  return {UniformKeys(n, &rng), ZipfWeights(n, 0.8, &rng)};
}

std::vector<PositionQuery> MakePositionQueries(size_t n, size_t count,
                                               size_t s, uint64_t seed) {
  Rng rng(seed);
  std::vector<PositionQuery> queries(count);
  for (PositionQuery& q : queries) {
    const size_t a = rng.Below(n);
    const size_t b = a + rng.Below(n - a);
    q = PositionQuery{a, b, s + rng.Below(s + 1)};
  }
  return queries;
}

// Runs the sampler's parallel QueryPositionsBatch at `num_threads` from a
// fresh fixed-seed rng and returns the flat output.
std::vector<size_t> RunParallel(const RangeSampler& sampler,
                                std::span<const PositionQuery> queries,
                                size_t num_threads) {
  Rng rng(4242);
  ScratchArena arena;
  BatchOptions opts;
  opts.num_threads = num_threads;
  std::vector<size_t> out;
  sampler.QueryPositionsBatch(queries, &rng, &arena, opts, &out);
  return out;
}

class ParallelInvariance : public ::testing::TestWithParam<int> {};

std::unique_ptr<RangeSampler> MakeSampler(int kind, const Data& data) {
  switch (kind) {
    case 0:
      return std::make_unique<BstRangeSampler>(data.keys, data.weights);
    case 1:
      return std::make_unique<AugRangeSampler>(data.keys, data.weights);
    case 2:
      return std::make_unique<ChunkedRangeSampler>(data.keys, data.weights);
    case 3:  // exercises the base-class generic parallel fallback
      return std::make_unique<NaiveRangeSampler>(data.keys, data.weights);
  }
  return nullptr;
}

TEST_P(ParallelInvariance, OutputIsBitIdenticalAcrossThreadCounts) {
  const Data data = MakeData(2000, 7);
  const auto sampler = MakeSampler(GetParam(), data);
  const auto queries = MakePositionQueries(2000, 60, 40, 11);

  const std::vector<size_t> reference = RunParallel(*sampler, queries, 1);
  size_t total = 0;
  for (const PositionQuery& q : queries) total += q.s;
  ASSERT_EQ(reference.size(), total);
  for (size_t num_threads : kThreadCounts) {
    EXPECT_EQ(RunParallel(*sampler, queries, num_threads), reference)
        << sampler->name() << " with " << num_threads << " threads";
  }
}

TEST_P(ParallelInvariance, ParallelModeDrawsTheRightLaw) {
  const size_t n = 300;
  const Data data = MakeData(n, 13);
  const auto sampler = MakeSampler(GetParam(), data);

  // Many identical queries over a fixed range pool their draws for one
  // chi-square against the range-restricted weights.
  const size_t a = 40;
  const size_t b = 260;
  std::vector<PositionQuery> queries(64, PositionQuery{a, b, 1000});
  Rng rng(99);
  ScratchArena arena;
  ThreadPool pool(4);
  BatchOptions opts;
  opts.num_threads = 4;
  opts.pool = &pool;
  std::vector<size_t> out;
  sampler->QueryPositionsBatch(queries, &rng, &arena, opts, &out);
  ASSERT_EQ(out.size(), 64u * 1000u);
  for (size_t p : out) {
    ASSERT_GE(p, a);
    ASSERT_LE(p, b);
  }
  std::vector<double> restricted(n, 0.0);
  for (size_t i = a; i <= b; ++i) restricted[i] = data.weights[i];
  testing::ExpectSamplesMatchWeights(out, restricted);
}

TEST_P(ParallelInvariance, RepeatedBatchesAreIndependent) {
  // The parallel path must advance the caller's rng: serving the same
  // batch twice from one stream has to give different draws.
  const Data data = MakeData(500, 3);
  const auto sampler = MakeSampler(GetParam(), data);
  std::vector<PositionQuery> queries(4, PositionQuery{0, 499, 500});
  Rng rng(1);
  ScratchArena arena;
  BatchOptions opts;
  opts.num_threads = 2;
  std::vector<size_t> first;
  std::vector<size_t> second;
  sampler->QueryPositionsBatch(queries, &rng, &arena, opts, &first);
  sampler->QueryPositionsBatch(queries, &rng, &arena, opts, &second);
  EXPECT_NE(first, second);
}

INSTANTIATE_TEST_SUITE_P(AllSamplers, ParallelInvariance,
                         ::testing::Values(0, 1, 2, 3));

TEST(ParallelQueryBatchTest, ResultLayoutMatchesSequentialContract) {
  const Data data = MakeData(1000, 21);
  BstRangeSampler sampler(data.keys, data.weights);
  std::vector<BatchQuery> queries;
  Rng qrng(5);
  for (int i = 0; i < 30; ++i) {
    const double lo = data.keys[qrng.Below(500)];
    const double hi = data.keys[500 + qrng.Below(500)];
    queries.push_back({lo, hi, 64});
  }
  queries.push_back({2.0, 1.0, 8});  // unresolvable: lo > hi

  ScratchArena arena;
  BatchResult parallel_result;
  BatchOptions opts;
  opts.num_threads = 3;
  Rng rng(77);
  sampler.QueryBatch(queries, &rng, &arena, opts, &parallel_result);

  ASSERT_EQ(parallel_result.num_queries(), queries.size());
  EXPECT_EQ(parallel_result.resolved.back(), 0);
  EXPECT_TRUE(parallel_result.SamplesFor(queries.size() - 1).empty());
  for (size_t i = 0; i + 1 < queries.size(); ++i) {
    ASSERT_EQ(parallel_result.SamplesFor(i).size(), queries[i].s);
  }

  // Same seed, different thread count: identical bytes end to end.
  BatchResult other;
  BatchOptions opts7;
  opts7.num_threads = 7;
  Rng rng7(77);
  sampler.QueryBatch(queries, &rng7, &arena, opts7, &other);
  EXPECT_EQ(other.positions, parallel_result.positions);
  EXPECT_EQ(other.offsets, parallel_result.offsets);
}

TEST(ParallelRangeTree2DTest, BitIdenticalAcrossThreadCounts) {
  Rng data_rng(8);
  const size_t n = 1500;
  std::vector<multidim::Point2> points(n);
  std::vector<double> weights(n);
  for (size_t i = 0; i < n; ++i) {
    points[i] = {data_rng.NextDouble(), data_rng.NextDouble()};
    weights[i] = 0.1 + data_rng.NextDouble();
  }
  multidim::RangeTree2DSampler sampler(points, weights);

  std::vector<multidim::RectBatchQuery> queries;
  Rng qrng(31);
  for (int i = 0; i < 40; ++i) {
    const double x0 = qrng.NextDouble() * 0.8;
    const double y0 = qrng.NextDouble() * 0.8;
    queries.push_back(
        {multidim::Rect{x0, x0 + 0.2, y0, y0 + 0.2}, 32});
  }

  auto run = [&](size_t num_threads) {
    Rng rng(555);
    ScratchArena arena;
    multidim::PointBatchResult result;
    BatchOptions opts;
    opts.num_threads = num_threads;
    sampler.QueryBatch(queries, &rng, &arena, opts, &result);
    std::vector<double> flat;
    for (const auto& p : result.points) {
      flat.push_back(p.x);
      flat.push_back(p.y);
    }
    return flat;
  };
  const auto reference = run(1);
  for (size_t num_threads : kThreadCounts) {
    EXPECT_EQ(run(num_threads), reference) << num_threads << " threads";
  }
}

TEST(ParallelRangeTreeNdTest, BitIdenticalAcrossThreadCounts) {
  Rng data_rng(17);
  const size_t n = 800;
  const size_t dim = 3;
  std::vector<double> coords(n * dim);
  std::vector<double> weights(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t d = 0; d < dim; ++d) {
      coords[i * dim + d] = data_rng.NextDouble();
    }
    weights[i] = 0.1 + data_rng.NextDouble();
  }
  multidim::RangeTreeNdSampler sampler(dim, coords, weights);

  std::vector<multidim::BoxBatchQuery> queries;
  Rng qrng(43);
  for (int i = 0; i < 25; ++i) {
    multidim::BoxNd box(dim);
    for (size_t d = 0; d < dim; ++d) {
      const double lo = qrng.NextDouble() * 0.6;
      box.bounds[2 * d] = lo;
      box.bounds[2 * d + 1] = lo + 0.4;
    }
    queries.push_back({box, 24});
  }

  auto run = [&](size_t num_threads) {
    Rng rng(999);
    ScratchArena arena;
    BatchResult result;
    BatchOptions opts;
    opts.num_threads = num_threads;
    sampler.QueryBatch(queries, &rng, &arena, opts, &result);
    return result.positions;
  };
  const auto reference = run(1);
  for (size_t num_threads : kThreadCounts) {
    EXPECT_EQ(run(num_threads), reference) << num_threads << " threads";
  }
}

TEST(ParallelKdQuadTest, BitIdenticalAcrossThreadCounts) {
  Rng data_rng(29);
  const size_t n = 1200;
  std::vector<multidim::Point2> points(n);
  std::vector<double> weights(n);
  for (size_t i = 0; i < n; ++i) {
    points[i] = {data_rng.NextDouble(), data_rng.NextDouble()};
    weights[i] = 0.5 + data_rng.NextDouble();
  }
  multidim::KdTreeSampler kd(points, weights);
  multidim::QuadtreeSampler quad(points, weights);

  std::vector<multidim::RectBatchQuery> queries;
  Rng qrng(61);
  for (int i = 0; i < 30; ++i) {
    const double x0 = qrng.NextDouble() * 0.7;
    const double y0 = qrng.NextDouble() * 0.7;
    queries.push_back({multidim::Rect{x0, x0 + 0.3, y0, y0 + 0.3}, 20});
  }

  auto run = [&](const auto& sampler, size_t num_threads) {
    Rng rng(123);
    ScratchArena arena;
    multidim::PointBatchResult result;
    BatchOptions opts;
    opts.num_threads = num_threads;
    sampler.QueryBatch(queries, &rng, &arena, opts, &result);
    std::vector<double> flat;
    for (const auto& p : result.points) {
      flat.push_back(p.x);
      flat.push_back(p.y);
    }
    return flat;
  };
  const auto kd_ref = run(kd, 1);
  const auto quad_ref = run(quad, 1);
  for (size_t num_threads : kThreadCounts) {
    EXPECT_EQ(run(kd, num_threads), kd_ref) << "kd " << num_threads;
    EXPECT_EQ(run(quad, num_threads), quad_ref) << "quad " << num_threads;
  }
}

TEST(ParallelSubtreeTest, BitIdenticalAcrossThreadCounts) {
  // Random tree with ~200 nodes (root is id 0, created by the ctor).
  WeightedTree tree;
  Rng tree_rng(3);
  std::vector<WeightedTree::NodeId> nodes;
  nodes.push_back(tree.root());
  for (int i = 0; i < 200; ++i) {
    const WeightedTree::NodeId parent = nodes[tree_rng.Below(nodes.size())];
    nodes.push_back(tree.AddChild(parent));
  }
  for (const WeightedTree::NodeId u : nodes) {
    if (tree.IsLeaf(u)) tree.SetLeafWeight(u, 0.1 + tree_rng.NextDouble());
  }
  tree.Finalize();
  SubtreeSampler sampler(&tree);

  std::vector<SubtreeBatchQuery> queries;
  Rng qrng(9);
  for (int i = 0; i < 50; ++i) {
    queries.push_back({nodes[qrng.Below(nodes.size())], 16});
  }

  auto run = [&](size_t num_threads) {
    Rng rng(31337);
    ScratchArena arena;
    BatchResult result;
    BatchOptions opts;
    opts.num_threads = num_threads;
    sampler.QueryBatch(queries, &rng, &arena, opts, &result);
    return result.positions;
  };
  const auto reference = run(1);
  for (size_t num_threads : kThreadCounts) {
    EXPECT_EQ(run(num_threads), reference) << num_threads << " threads";
  }
}

TEST(ParallelRejectionTest, BitIdenticalAcrossThreadCountsAndCorrect) {
  // Weighted positions with an acceptance predicate that drops evens.
  const size_t n = 4000;
  Rng data_rng(71);
  std::vector<double> weights(n);
  for (double& w : weights) w = 0.2 + data_rng.NextDouble();
  CoverageEngine engine(weights);

  const std::vector<CoverRange> cover = {{100, 1999, 0.0}, {2500, 3899, 0.0}};
  std::vector<CoverRange> weighted_cover;
  for (CoverRange range : cover) {
    range.weight = 0.0;
    for (size_t i = range.lo; i <= range.hi; ++i) range.weight += weights[i];
    weighted_cover.push_back(range);
  }
  const auto accepts = [](size_t p) { return (p % 2) == 1; };

  auto run = [&](size_t num_threads) {
    Rng rng(246);
    ScratchArena arena;
    BatchOptions opts;
    opts.num_threads = num_threads;
    std::vector<size_t> out;
    engine.SampleWithRejection(weighted_cover, 3000, accepts, &rng, &arena,
                               opts, &out);
    return out;
  };
  const auto reference = run(1);
  ASSERT_EQ(reference.size(), 3000u);
  for (size_t p : reference) {
    EXPECT_TRUE(accepts(p));
    EXPECT_TRUE((p >= 100 && p <= 1999) || (p >= 2500 && p <= 3899));
  }
  for (size_t num_threads : kThreadCounts) {
    EXPECT_EQ(run(num_threads), reference) << num_threads << " threads";
  }

  // Law check: accepted draws follow the weights restricted to accepted
  // positions inside the cover.
  std::vector<double> restricted(n, 0.0);
  for (const CoverRange& range : cover) {
    for (size_t i = range.lo; i <= range.hi; ++i) {
      if (accepts(i)) restricted[i] = weights[i];
    }
  }
  std::vector<size_t> pooled;
  Rng rng(777);
  ScratchArena arena;
  BatchOptions opts;
  opts.num_threads = 4;
  for (int round = 0; round < 20; ++round) {
    engine.SampleWithRejection(weighted_cover, 3000, accepts, &rng, &arena,
                               opts, &pooled);
  }
  testing::ExpectSamplesMatchWeights(pooled, restricted);
}

TEST(ParallelTelemetryTest, SinkDoesNotPerturbOutputAcrossThreadCounts) {
  // Attaching a TelemetrySink must never touch the RNG stream: with a
  // sink attached the output stays byte-identical to the sink-free run,
  // for every thread count.
  const Data data = MakeData(1500, 19);
  ChunkedRangeSampler sampler(data.keys, data.weights);
  const auto queries = MakePositionQueries(1500, 50, 48, 23);

  auto run = [&](size_t num_threads, TelemetrySink* sink) {
    Rng rng(2024);
    ScratchArena arena;
    BatchOptions opts;
    opts.num_threads = num_threads;
    opts.telemetry = sink;
    std::vector<size_t> out;
    sampler.QueryPositionsBatch(queries, &rng, &arena, opts, &out);
    return out;
  };
  const std::vector<size_t> reference = run(1, nullptr);
  for (size_t num_threads : kThreadCounts) {
    TelemetrySink sink;
    EXPECT_EQ(run(num_threads, &sink), reference)
        << num_threads << " threads with sink";
    EXPECT_EQ(run(num_threads, nullptr), reference)
        << num_threads << " threads without sink";
    const QueryStats stats = sink.MergedStats();
    EXPECT_EQ(stats.queries, queries.size());
    EXPECT_GT(stats.samples_emitted, 0u);
  }
}

TEST(ParallelTelemetryTest, MergedCountersInvariantAcrossThreadCounts) {
  // Counters that describe the WORK (queries, groups, draws, samples) are
  // scheduling-independent, so their merged totals must agree across
  // thread counts even though per-shard attribution differs.
  const Data data = MakeData(1200, 37);
  BstRangeSampler sampler(data.keys, data.weights);
  const auto queries = MakePositionQueries(1200, 40, 32, 41);

  auto merged = [&](size_t num_threads) {
    TelemetrySink sink;
    Rng rng(606);
    ScratchArena arena;
    BatchOptions opts;
    opts.num_threads = num_threads;
    opts.telemetry = &sink;
    std::vector<size_t> out;
    sampler.QueryPositionsBatch(queries, &rng, &arena, opts, &out);
    return sink.MergedStats();
  };
  const QueryStats reference = merged(1);
  EXPECT_EQ(reference.queries, queries.size());
  for (size_t num_threads : kThreadCounts) {
    const QueryStats stats = merged(num_threads);
    EXPECT_EQ(stats.queries, reference.queries) << num_threads;
    EXPECT_EQ(stats.cover_groups, reference.cover_groups) << num_threads;
    EXPECT_EQ(stats.rng_draws, reference.rng_draws) << num_threads;
    EXPECT_EQ(stats.samples_emitted, reference.samples_emitted)
        << num_threads;
    EXPECT_EQ(stats.nodes_visited, reference.nodes_visited) << num_threads;
  }
}

TEST(ParallelPoolReuseTest, PersistentPoolMatchesTransientPools) {
  const Data data = MakeData(1000, 55);
  ChunkedRangeSampler sampler(data.keys, data.weights);
  const auto queries = MakePositionQueries(1000, 40, 64, 5);

  ThreadPool pool(3);
  BatchOptions with_pool;
  with_pool.num_threads = 3;
  with_pool.pool = &pool;
  Rng rng_a(4242);  // same seed as RunParallel: pool choice must not matter
  ScratchArena arena_a;
  std::vector<size_t> out_a;
  sampler.QueryPositionsBatch(queries, &rng_a, &arena_a, with_pool, &out_a);

  EXPECT_EQ(out_a, RunParallel(sampler, queries, 3));
  // Same persistent pool serves a second batch cleanly.
  std::vector<size_t> out_b;
  sampler.QueryPositionsBatch(queries, &rng_a, &arena_a, with_pool, &out_b);
  EXPECT_NE(out_a, out_b);
}

}  // namespace
}  // namespace iqs
