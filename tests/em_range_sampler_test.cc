#include "iqs/em/em_range_sampler.h"

#include <algorithm>
#include <vector>

#include "gtest/gtest.h"
#include "test_util.h"

namespace iqs::em {
namespace {

struct Fixture {
  Fixture(size_t n, size_t block_words, uint64_t value_stride = 3)
      : device(block_words), data(&device, 1) {
    EmWriter writer(&data);
    for (uint64_t i = 0; i < n; ++i) {
      keys.push_back(i * value_stride);
      writer.Append1(i * value_stride);
    }
    writer.Finish();
  }

  BlockDevice device;
  EmArray data;
  std::vector<uint64_t> keys;
};

TEST(EmRangeSamplerTest, SamplesAreUniformOverRange) {
  Fixture f(512, 8);
  Rng rng(1);
  EmRangeSampler sampler(&f.data, 8 * 8, &rng);
  // Range covering keys 3*100 .. 3*299 (positions 100..299), straddling
  // many blocks and both partial boundaries.
  std::vector<uint64_t> out;
  ASSERT_TRUE(sampler.Query(300, 897, 200000, &rng, &out));
  std::vector<uint64_t> counts(200, 0);
  for (uint64_t v : out) {
    ASSERT_GE(v, 300u);
    ASSERT_LE(v, 897u);
    ASSERT_EQ(v % 3, 0u);
    ++counts[v / 3 - 100];
  }
  iqs::testing::ExpectDistributionClose(counts,
                                        std::vector<double>(200, 1.0 / 200));
}

TEST(EmRangeSamplerTest, BlockAlignedAndTinyRanges) {
  Fixture f(256, 8, 1);  // keys 0..255, 8 per block
  Rng rng(2);
  EmRangeSampler sampler(&f.data, 8 * 8, &rng);

  // Exactly one block.
  std::vector<uint64_t> out;
  ASSERT_TRUE(sampler.Query(16, 23, 30000, &rng, &out));
  std::vector<uint64_t> counts(8, 0);
  for (uint64_t v : out) {
    ASSERT_GE(v, 16u);
    ASSERT_LE(v, 23u);
    ++counts[v - 16];
  }
  iqs::testing::ExpectDistributionClose(counts,
                                        std::vector<double>(8, 0.125));

  // Single element.
  out.clear();
  ASSERT_TRUE(sampler.Query(77, 77, 10, &rng, &out));
  for (uint64_t v : out) EXPECT_EQ(v, 77u);

  // Within one block, not aligned.
  out.clear();
  ASSERT_TRUE(sampler.Query(18, 21, 1000, &rng, &out));
  for (uint64_t v : out) {
    EXPECT_GE(v, 18u);
    EXPECT_LE(v, 21u);
  }
}

TEST(EmRangeSamplerTest, EmptyRangeReturnsFalse) {
  Fixture f(100, 8);
  Rng rng(3);
  EmRangeSampler sampler(&f.data, 8 * 8, &rng);
  std::vector<uint64_t> out;
  EXPECT_FALSE(sampler.Query(1, 2, 5, &rng, &out));       // between keys
  EXPECT_FALSE(sampler.Query(10000, 20000, 5, &rng, &out));  // beyond
  EXPECT_FALSE(sampler.Query(50, 20, 5, &rng, &out));     // inverted
  EXPECT_TRUE(out.empty());
}

TEST(EmRangeSamplerTest, FullRangeUniform) {
  Fixture f(128, 8, 1);
  Rng rng(4);
  EmRangeSampler sampler(&f.data, 8 * 8, &rng);
  std::vector<uint64_t> out;
  ASSERT_TRUE(sampler.Query(0, 127, 128000, &rng, &out));
  std::vector<uint64_t> counts(128, 0);
  for (uint64_t v : out) ++counts[v];
  iqs::testing::ExpectDistributionClose(counts,
                                        std::vector<double>(128, 1.0 / 128));
}

TEST(EmRangeSamplerTest, PoolPathBeatsNaiveOnIos) {
  const size_t kB = 64;
  const size_t n = 1 << 15;
  Fixture f(n, kB, 1);
  Rng rng(5);
  EmRangeSampler sampler(&f.data, 16 * kB, &rng);

  const uint64_t lo = 100;
  const uint64_t hi = n - 100;
  const size_t s = 8192;

  f.device.ResetCounters();
  std::vector<uint64_t> out;
  ASSERT_TRUE(sampler.Query(lo, hi, s, &rng, &out));
  const uint64_t pool_ios = f.device.total_ios();

  f.device.ResetCounters();
  out.clear();
  ASSERT_TRUE(sampler.NaiveQuery(lo, hi, s, &rng, &out));
  const uint64_t naive_ios = f.device.total_ios();

  EXPECT_GT(naive_ios, static_cast<uint64_t>(s));
  EXPECT_LT(pool_ios, naive_ios / 4);
}

TEST(EmRangeSamplerTest, ReportThenSampleMatchesLawButScansRange) {
  Fixture f(2048, 16, 1);
  Rng rng(6);
  EmRangeSampler sampler(&f.data, 16 * 16, &rng);
  f.device.ResetCounters();
  std::vector<uint64_t> out;
  ASSERT_TRUE(sampler.ReportThenSample(0, 2047, 10, &rng, &out));
  // Scanning 2048/16 = 128 leaf blocks dominates.
  EXPECT_GE(f.device.reads(), 128u);
  ASSERT_EQ(out.size(), 10u);
  for (uint64_t v : out) EXPECT_LE(v, 2047u);
}

TEST(EmRangeSamplerTest, RepeatQueriesStayCorrectAcrossRebuilds) {
  Fixture f(64, 8, 1);
  Rng rng(7);
  EmRangeSampler sampler(&f.data, 8 * 8, &rng);
  // Drain pools repeatedly; law must stay uniform.
  std::vector<uint64_t> counts(32, 0);
  for (int q = 0; q < 3000; ++q) {
    std::vector<uint64_t> out;
    ASSERT_TRUE(sampler.Query(16, 47, 32, &rng, &out));
    for (uint64_t v : out) {
      ASSERT_GE(v, 16u);
      ASSERT_LE(v, 47u);
      ++counts[v - 16];
    }
  }
  iqs::testing::ExpectDistributionClose(counts,
                                        std::vector<double>(32, 1.0 / 32));
}

}  // namespace
}  // namespace iqs::em
