// Tests for the join-sampling module (iqs/join/): the sweep enumerator
// against a nested loop, JoinSize against exact enumeration, the
// sampling law (chi-square vs the uniform distribution over the
// enumerated join result, alpha 1e-6), and byte-identity of batch output
// across thread counts under a fixed seed.

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "gtest/gtest.h"
#include "iqs/join/join_batch.h"
#include "iqs/join/join_enumerator.h"
#include "iqs/join/join_sampler.h"
#include "iqs/multidim/point.h"
#include "iqs/util/batch_options.h"
#include "iqs/util/rng.h"
#include "iqs/util/scratch_arena.h"
#include "test_util.h"

namespace iqs::join {
namespace {

using multidim::Rect;

// Random rectangles in [0, extent)^2 with edge lengths up to max_side —
// wide enough that joins are dense on small inputs.
std::vector<Rect> RandomRects(size_t n, double extent, double max_side,
                              Rng* rng) {
  std::vector<Rect> rects;
  rects.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double x = rng->NextDouble() * extent;
    const double y = rng->NextDouble() * extent;
    const double w = rng->NextDouble() * max_side;
    const double h = rng->NextDouble() * max_side;
    rects.push_back(Rect{x, x + w, y, y + h});
  }
  return rects;
}

uint64_t NestedLoopJoin(const std::vector<Rect>& r, const std::vector<Rect>& s,
                        std::vector<JoinPair>* out) {
  out->clear();
  for (uint32_t i = 0; i < r.size(); ++i) {
    for (uint32_t j = 0; j < s.size(); ++j) {
      if (r[i].Intersects(s[j])) out->push_back({i, j});
    }
  }
  return out->size();
}

TEST(JoinEnumerator, MatchesNestedLoop) {
  Rng rng(7001);
  for (int round = 0; round < 20; ++round) {
    const size_t nr = 1 + rng.Below(40);
    const size_t ns = 1 + rng.Below(40);
    const std::vector<Rect> r = RandomRects(nr, 100.0, 30.0, &rng);
    const std::vector<Rect> s = RandomRects(ns, 100.0, 30.0, &rng);
    std::vector<JoinPair> expected;
    NestedLoopJoin(r, s, &expected);
    std::vector<JoinPair> got;
    EXPECT_EQ(EnumerateJoinPairs(r, s, &got), expected.size());
    auto key = [](const JoinPair& p) {
      return (static_cast<uint64_t>(p.r_id) << 32) | p.s_id;
    };
    auto by_key = [&key](const JoinPair& a, const JoinPair& b) {
      return key(a) < key(b);
    };
    std::sort(expected.begin(), expected.end(), by_key);
    std::sort(got.begin(), got.end(), by_key);
    EXPECT_EQ(got, expected);
  }
}

TEST(JoinEnumerator, TouchingEdgesJoin) {
  // Closed rectangles: sharing only an edge point still intersects.
  const std::vector<Rect> r = {Rect{0.0, 1.0, 0.0, 1.0}};
  const std::vector<Rect> s = {Rect{1.0, 2.0, 1.0, 2.0},   // corner touch
                               Rect{1.0, 2.0, 0.25, 0.5},  // x-edge touch
                               Rect{2.0, 3.0, 0.0, 1.0}};  // disjoint
  std::vector<JoinPair> pairs;
  EXPECT_EQ(EnumerateJoinPairs(r, s, &pairs), 2u);
}

TEST(JoinSampler, JoinSizeMatchesEnumeration) {
  Rng rng(7002);
  for (int round = 0; round < 10; ++round) {
    const size_t nr = 1 + rng.Below(120);
    const size_t ns = 1 + rng.Below(120);
    const std::vector<Rect> r = RandomRects(nr, 200.0, 40.0, &rng);
    const std::vector<Rect> s = RandomRects(ns, 200.0, 40.0, &rng);
    // Exercise several block bases, including degenerate binary.
    const size_t branching = 2 + rng.Below(15);
    const JoinSampler sampler(r, s, JoinSamplerOptions{branching});
    EXPECT_EQ(sampler.JoinSize(), EnumerateJoin(r, s, nullptr, nullptr))
        << "branching " << branching;
  }
}

TEST(JoinSampler, EmptyJoinResolvesNothing) {
  // x-disjoint relations: no pair joins.
  const std::vector<Rect> r = {Rect{0.0, 1.0, 0.0, 10.0},
                               Rect{2.0, 3.0, 0.0, 10.0}};
  const std::vector<Rect> s = {Rect{5.0, 6.0, 0.0, 10.0}};
  const JoinSampler sampler(r, s);
  EXPECT_EQ(sampler.JoinSize(), 0u);

  const std::vector<JoinBatchQuery> queries = {{8}, {0}, {3}};
  Rng rng(1);
  ScratchArena arena;
  JoinBatchResult result;
  sampler.SampleJoinBatch(queries, &rng, &arena, &result);
  ASSERT_EQ(result.num_queries(), 3u);
  for (size_t q = 0; q < 3; ++q) {
    EXPECT_EQ(result.resolved[q], 0u);
    EXPECT_TRUE(result.SamplesFor(q).empty());
  }
  EXPECT_TRUE(result.pairs.empty());
}

TEST(JoinSampler, EmptyRelation) {
  const std::vector<Rect> r;
  const std::vector<Rect> s = {Rect{0.0, 1.0, 0.0, 1.0}};
  const JoinSampler sampler(r, s);
  EXPECT_EQ(sampler.JoinSize(), 0u);
  const std::vector<JoinBatchQuery> queries = {{5}};
  Rng rng(1);
  ScratchArena arena;
  JoinBatchResult result;
  sampler.SampleJoinBatch(queries, &rng, &arena, &result);
  EXPECT_EQ(result.resolved[0], 0u);
}

TEST(JoinSampler, PairsAreValidAndBudgetsHonored) {
  Rng rng(7003);
  const std::vector<Rect> r = RandomRects(80, 100.0, 25.0, &rng);
  const std::vector<Rect> s = RandomRects(90, 100.0, 25.0, &rng);
  const JoinSampler sampler(r, s);
  ASSERT_GT(sampler.JoinSize(), 0u);

  const std::vector<JoinBatchQuery> queries = {{17}, {0}, {256}, {1}};
  ScratchArena arena;
  JoinBatchResult result;
  sampler.SampleJoinBatch(queries, &rng, &arena, &result);
  ASSERT_EQ(result.num_queries(), queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    EXPECT_EQ(result.resolved[q], 1u);
    const auto slice = result.SamplesFor(q);
    ASSERT_EQ(slice.size(), queries[q].s);
    for (const JoinPair& p : slice) {
      ASSERT_LT(p.r_id, r.size());
      ASSERT_LT(p.s_id, s.size());
      EXPECT_TRUE(r[p.r_id].Intersects(s[p.s_id]))
          << "sampled pair does not join";
    }
  }
}

// The law: every pair of J equally likely, across queries of one batch.
TEST(JoinSampler, UniformOverJoinResultChiSquare) {
  Rng rng(7004);
  const std::vector<Rect> r = RandomRects(24, 60.0, 25.0, &rng);
  const std::vector<Rect> s = RandomRects(24, 60.0, 25.0, &rng);
  const JoinSampler sampler(r, s);

  std::vector<JoinPair> all_pairs;
  ASSERT_EQ(EnumerateJoinPairs(r, s, &all_pairs), sampler.JoinSize());
  ASSERT_GT(all_pairs.size(), 20u);
  std::map<uint64_t, size_t> index_of;
  for (size_t i = 0; i < all_pairs.size(); ++i) {
    index_of[(static_cast<uint64_t>(all_pairs[i].r_id) << 32) |
             all_pairs[i].s_id] = i;
  }

  const size_t kDraws = 400 * all_pairs.size();
  const std::vector<JoinBatchQuery> queries = {{kDraws / 2},
                                               {kDraws - kDraws / 2}};
  ScratchArena arena;
  JoinBatchResult result;
  sampler.SampleJoinBatch(queries, &rng, &arena, &result);

  std::vector<uint64_t> counts(all_pairs.size(), 0);
  for (const JoinPair& p : result.pairs) {
    const auto it =
        index_of.find((static_cast<uint64_t>(p.r_id) << 32) | p.s_id);
    ASSERT_NE(it, index_of.end()) << "sampled pair not in the join result";
    ++counts[it->second];
  }
  const std::vector<double> probs(all_pairs.size(),
                                  1.0 / static_cast<double>(all_pairs.size()));
  iqs::testing::ExpectDistributionClose(counts, probs);
}

// Same law through the parallel executor path.
TEST(JoinSampler, UniformOverJoinResultChiSquareParallel) {
  Rng rng(7005);
  const std::vector<Rect> r = RandomRects(20, 60.0, 25.0, &rng);
  const std::vector<Rect> s = RandomRects(20, 60.0, 25.0, &rng);
  const JoinSampler sampler(r, s);

  std::vector<JoinPair> all_pairs;
  EnumerateJoinPairs(r, s, &all_pairs);
  ASSERT_GT(all_pairs.size(), 10u);
  std::map<uint64_t, size_t> index_of;
  for (size_t i = 0; i < all_pairs.size(); ++i) {
    index_of[(static_cast<uint64_t>(all_pairs[i].r_id) << 32) |
             all_pairs[i].s_id] = i;
  }

  const std::vector<JoinBatchQuery> queries = {{300 * all_pairs.size()}};
  BatchOptions opts;
  opts.num_threads = 3;
  ScratchArena arena;
  JoinBatchResult result;
  sampler.SampleJoinBatch(queries, &rng, &arena, opts, &result);

  std::vector<uint64_t> counts(all_pairs.size(), 0);
  for (const JoinPair& p : result.pairs) {
    const auto it =
        index_of.find((static_cast<uint64_t>(p.r_id) << 32) | p.s_id);
    ASSERT_NE(it, index_of.end());
    ++counts[it->second];
  }
  const std::vector<double> probs(all_pairs.size(),
                                  1.0 / static_cast<double>(all_pairs.size()));
  iqs::testing::ExpectDistributionClose(counts, probs);
}

// The brute-force baseline obeys the same law (it is the E26 comparator,
// so its correctness matters too).
TEST(JoinEnumerator, BruteForceSampleUniformChiSquare) {
  Rng rng(7006);
  const std::vector<Rect> r = RandomRects(16, 50.0, 20.0, &rng);
  const std::vector<Rect> s = RandomRects(16, 50.0, 20.0, &rng);
  std::vector<JoinPair> all_pairs;
  EnumerateJoinPairs(r, s, &all_pairs);
  ASSERT_GT(all_pairs.size(), 10u);
  std::map<uint64_t, size_t> index_of;
  for (size_t i = 0; i < all_pairs.size(); ++i) {
    index_of[(static_cast<uint64_t>(all_pairs[i].r_id) << 32) |
             all_pairs[i].s_id] = i;
  }
  std::vector<JoinPair> sample;
  BruteForceJoinSample(r, s, 300 * all_pairs.size(), &rng, &sample);
  std::vector<uint64_t> counts(all_pairs.size(), 0);
  for (const JoinPair& p : sample) {
    const auto it =
        index_of.find((static_cast<uint64_t>(p.r_id) << 32) | p.s_id);
    ASSERT_NE(it, index_of.end());
    ++counts[it->second];
  }
  const std::vector<double> probs(all_pairs.size(),
                                  1.0 / static_cast<double>(all_pairs.size()));
  iqs::testing::ExpectDistributionClose(counts, probs);
}

// Fixed seed + fixed inputs => byte-identical output, and the parallel
// mode is bit-identical for EVERY thread count (the executor's per-query
// substream contract, inherited through ExecuteOverSampler).
TEST(JoinSampler, ByteIdenticalAcrossThreadCounts) {
  Rng data_rng(7007);
  const std::vector<Rect> r = RandomRects(150, 150.0, 30.0, &data_rng);
  const std::vector<Rect> s = RandomRects(140, 150.0, 30.0, &data_rng);
  const JoinSampler sampler(r, s);
  ASSERT_GT(sampler.JoinSize(), 0u);
  const std::vector<JoinBatchQuery> queries = {{64}, {1}, {0}, {1000}, {7}};

  JoinBatchResult reference;
  {
    Rng rng(0xfeed);
    BatchOptions opts;
    opts.num_threads = 1;
    ScratchArena arena;
    sampler.SampleJoinBatch(queries, &rng, &arena, opts, &reference);
  }
  for (const size_t threads : {2u, 7u}) {
    Rng rng(0xfeed);
    BatchOptions opts;
    opts.num_threads = threads;
    ScratchArena arena;
    JoinBatchResult result;
    sampler.SampleJoinBatch(queries, &rng, &arena, opts, &result);
    EXPECT_EQ(result.pairs, reference.pairs) << "threads " << threads;
    EXPECT_EQ(result.offsets, reference.offsets);
    EXPECT_EQ(result.resolved, reference.resolved);
  }
}

TEST(JoinSampler, SequentialModeDeterministic) {
  Rng data_rng(7008);
  const std::vector<Rect> r = RandomRects(60, 80.0, 25.0, &data_rng);
  const std::vector<Rect> s = RandomRects(60, 80.0, 25.0, &data_rng);
  const JoinSampler sampler(r, s);
  const std::vector<JoinBatchQuery> queries = {{33}, {12}};

  JoinBatchResult a, b;
  for (JoinBatchResult* out : {&a, &b}) {
    Rng rng(42);
    ScratchArena arena;
    sampler.SampleJoinBatch(queries, &rng, &arena, out);
  }
  EXPECT_EQ(a.pairs, b.pairs);
  EXPECT_EQ(a.offsets, b.offsets);
}

TEST(JoinSampler, MemoryBytesAccounted) {
  Rng rng(7009);
  const std::vector<Rect> r = RandomRects(64, 100.0, 20.0, &rng);
  const std::vector<Rect> s = RandomRects(64, 100.0, 20.0, &rng);
  const JoinSampler sampler(r, s);
  // Two trees over 64 rects each, plus events and weights.
  EXPECT_GT(sampler.MemoryBytes(), 64u * 2 * sizeof(Rect));
}

}  // namespace
}  // namespace iqs::join
