#include "iqs/em/weighted_sample_pool.h"

#include <vector>

#include "gtest/gtest.h"
#include "test_util.h"

namespace iqs::em {
namespace {

struct Fixture {
  Fixture(const std::vector<double>& weights, size_t block_words)
      : device(block_words), data(&device, 2) {
    EmWriter writer(&data);
    for (size_t i = 0; i < weights.size(); ++i) {
      WeightedSamplePool::AppendRecord(&writer, i, weights[i]);
    }
    writer.Finish();
  }
  BlockDevice device;
  EmArray data;
};

TEST(WeightedSamplePoolTest, MatchesWeightsAcrossRebuilds) {
  Rng rng(1);
  std::vector<double> weights;
  for (int i = 0; i < 48; ++i) weights.push_back(0.5 + (i % 7));
  Fixture f(weights, 8);
  WeightedSamplePool pool(&f.data, 8 * 8, &rng);
  std::vector<uint64_t> out;
  pool.Query(150000, &rng, &out);  // many rebuilds
  EXPECT_GT(pool.rebuilds(), 1000u);
  std::vector<size_t> samples;
  for (uint64_t v : out) {
    ASSERT_LT(v, weights.size());
    samples.push_back(static_cast<size_t>(v));
  }
  iqs::testing::ExpectSamplesMatchWeights(samples, weights);
}

TEST(WeightedSamplePoolTest, HeavyElementDominates) {
  Rng rng(2);
  std::vector<double> weights(32, 1e-9);
  weights[13] = 1.0;
  Fixture f(weights, 8);
  WeightedSamplePool pool(&f.data, 8 * 8, &rng);
  std::vector<uint64_t> out;
  pool.Query(2000, &rng, &out);
  for (uint64_t v : out) EXPECT_EQ(v, 13u);
}

TEST(WeightedSamplePoolTest, UniformWeightsMatchPlainPool) {
  Rng rng(3);
  const std::vector<double> weights(64, 2.5);
  Fixture f(weights, 8);
  WeightedSamplePool pool(&f.data, 8 * 8, &rng);
  std::vector<uint64_t> out;
  pool.Query(128000, &rng, &out);
  std::vector<uint64_t> counts(64, 0);
  for (uint64_t v : out) ++counts[v];
  iqs::testing::ExpectDistributionClose(counts,
                                        std::vector<double>(64, 1.0 / 64));
}

TEST(WeightedSamplePoolTest, QueryIoIsBlockGranular) {
  Rng rng(4);
  const size_t kB = 64;  // 32 records per block
  std::vector<double> weights(1 << 13, 1.0);
  weights[5] = 100.0;
  Fixture f(weights, kB);
  WeightedSamplePool pool(&f.data, 16 * kB, &rng);
  f.device.ResetCounters();
  std::vector<uint64_t> out;
  pool.Query(1024, &rng, &out);
  EXPECT_LE(f.device.total_ios(), 1024 / kB + 2);
}

TEST(WeightedSamplePoolTest, UnalignedSubrangeRespected) {
  // Pool over records [5, 23) with 4 records per block: both boundary
  // blocks are partial.
  Rng rng(8);
  std::vector<double> weights(32);
  for (size_t i = 0; i < weights.size(); ++i) weights[i] = 1.0 + (i % 5);
  Fixture f(weights, 8);
  WeightedSamplePool pool(&f.data, 5, 18, 8 * 8, &rng);
  double want_total = 0.0;
  for (size_t i = 5; i < 23; ++i) want_total += weights[i];
  EXPECT_NEAR(pool.total_weight(), want_total, 1e-9);

  std::vector<uint64_t> out;
  pool.Query(120000, &rng, &out);
  std::vector<uint64_t> counts(18, 0);
  for (uint64_t v : out) {
    ASSERT_GE(v, 5u);
    ASSERT_LT(v, 23u);
    ++counts[v - 5];
  }
  std::vector<double> range_weights(weights.begin() + 5,
                                    weights.begin() + 23);
  iqs::testing::ExpectDistributionClose(
      counts, iqs::testing::Normalize(range_weights));
}

TEST(WeightedSamplePoolTest, NaiveBaselineLawAndCost) {
  Rng rng(5);
  std::vector<double> weights = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0,
                                 1.0, 2.0, 3.0, 4.0};
  Fixture f(weights, 8);
  WeightedSamplePool pool(&f.data, 8 * 8, &rng);
  f.device.ResetCounters();
  std::vector<uint64_t> out;
  pool.NaiveQuery(60000, &rng, &out);
  EXPECT_EQ(f.device.reads(), 60000u);  // one I/O per sample
  std::vector<size_t> samples;
  for (uint64_t v : out) samples.push_back(static_cast<size_t>(v));
  iqs::testing::ExpectSamplesMatchWeights(samples, weights);
}

TEST(WeightedSamplePoolTest, RebuildCostIsSortLike) {
  Rng rng(6);
  const size_t kB = 64;
  const size_t n = 1 << 13;
  std::vector<double> weights(n, 1.0);
  Fixture f(weights, kB);
  WeightedSamplePool pool(&f.data, 16 * kB, &rng);
  // Force exactly one rebuild and compare against s random accesses.
  std::vector<uint64_t> out;
  pool.Query(n - 1, &rng, &out);
  f.device.ResetCounters();
  out.clear();
  pool.Query(2, &rng, &out);  // crosses the pool boundary -> one rebuild
  const uint64_t rebuild_cost = f.device.total_ios();
  // Below n (the naive cost of n random reads): the 2-word tag pipeline
  // costs ~0.55 I/O per pool entry at B = 64, and the gap widens with B.
  EXPECT_LT(rebuild_cost, n);
  EXPECT_GT(rebuild_cost, 2 * (n / (kB / 2)) / 2);
}

}  // namespace
}  // namespace iqs::em
