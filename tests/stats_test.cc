#include "iqs/util/stats.h"

#include <cmath>
#include <vector>

#include "gtest/gtest.h"
#include "iqs/util/rng.h"

namespace iqs {
namespace {

TEST(GammaTest, KnownValues) {
  // Q(0.5, x) = erfc(sqrt(x)).
  for (double x : {0.1, 0.5, 1.0, 2.0, 5.0}) {
    EXPECT_NEAR(RegularizedGammaQ(0.5, x), std::erfc(std::sqrt(x)), 1e-10);
  }
  // Q(1, x) = exp(-x).
  for (double x : {0.1, 1.0, 3.0, 10.0}) {
    EXPECT_NEAR(RegularizedGammaQ(1.0, x), std::exp(-x), 1e-10);
  }
  // Q(a, 0) = 1.
  EXPECT_DOUBLE_EQ(RegularizedGammaQ(3.0, 0.0), 1.0);
}

TEST(GammaTest, MonotoneDecreasingInX) {
  double prev = 1.0;
  for (double x = 0.5; x < 30.0; x += 0.5) {
    const double q = RegularizedGammaQ(4.0, x);
    EXPECT_LE(q, prev + 1e-12);
    prev = q;
  }
}

TEST(ChiSquareTest, AcceptsExactFit) {
  // Perfectly proportional counts: statistic 0, p-value 1.
  const std::vector<uint64_t> counts = {100, 200, 300, 400};
  const std::vector<double> probs = {0.1, 0.2, 0.3, 0.4};
  const ChiSquareResult result = ChiSquareGoodnessOfFit(counts, probs);
  EXPECT_NEAR(result.statistic, 0.0, 1e-9);
  EXPECT_GT(result.p_value, 0.999);
}

TEST(ChiSquareTest, RejectsGrossMismatch) {
  const std::vector<uint64_t> counts = {1000, 10, 10, 10};
  const std::vector<double> probs = {0.25, 0.25, 0.25, 0.25};
  const ChiSquareResult result = ChiSquareGoodnessOfFit(counts, probs);
  EXPECT_LT(result.p_value, 1e-9);
}

TEST(ChiSquareTest, AcceptsFairSamples) {
  Rng rng(123);
  std::vector<uint64_t> counts(10, 0);
  for (int i = 0; i < 100000; ++i) ++counts[rng.Below(10)];
  const ChiSquareResult result =
      ChiSquareGoodnessOfFit(counts, std::vector<double>(10, 0.1));
  EXPECT_GT(result.p_value, 1e-4);
}

TEST(ChiSquareTest, MergesSparseCategories) {
  // 1000 categories with tiny expected counts must not blow up: they are
  // merged until expectations are >= 5.
  std::vector<uint64_t> counts(1000, 1);
  std::vector<double> probs(1000, 0.001);
  const ChiSquareResult result = ChiSquareGoodnessOfFit(counts, probs);
  EXPECT_GT(result.p_value, 0.5);
  EXPECT_LT(result.degrees_of_freedom, 1000);
}

TEST(StatsTest, MeanAndVariance) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Mean(x), 2.5);
  EXPECT_DOUBLE_EQ(Variance(x), 1.25);
}

TEST(CorrelationTest, PerfectAndAnti) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y = {2.0, 4.0, 6.0, 8.0};
  std::vector<double> neg(y.rbegin(), y.rend());
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation(x, neg), -1.0, 1e-12);
}

TEST(CorrelationTest, IndependentSeriesNearZero) {
  Rng rng(77);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 20000; ++i) {
    x.push_back(rng.NextDouble());
    y.push_back(rng.NextDouble());
  }
  EXPECT_LT(std::abs(PearsonCorrelation(x, y)), 0.03);
}

TEST(CorrelationTest, DegenerateSeriesReturnsZero) {
  const std::vector<double> constant = {3.0, 3.0, 3.0};
  const std::vector<double> varying = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(constant, varying), 0.0);
}

}  // namespace
}  // namespace iqs
