#include "iqs/sketch/kmv_sketch.h"

#include <cmath>
#include <vector>

#include "gtest/gtest.h"
#include "iqs/util/rng.h"

namespace iqs {
namespace {

TEST(KmvSketchTest, ExactBelowK) {
  KmvSketch sketch(64);
  for (uint64_t i = 0; i < 50; ++i) sketch.Add(i);
  EXPECT_DOUBLE_EQ(sketch.EstimateDistinct(), 50.0);
}

TEST(KmvSketchTest, IdempotentInsertions) {
  KmvSketch sketch(64);
  for (int round = 0; round < 10; ++round) {
    for (uint64_t i = 0; i < 30; ++i) sketch.Add(i);
  }
  EXPECT_DOUBLE_EQ(sketch.EstimateDistinct(), 30.0);
}

TEST(KmvSketchTest, EstimateWithinRelativeError) {
  // The paper's algorithm needs the estimate within [U/2, 1.5U]; with
  // k = 64 the standard error is ~12.5%, so check a 40% band across many
  // cardinalities (deterministic given the fixed hash).
  for (uint64_t n : {500u, 5000u, 50000u, 200000u}) {
    KmvSketch sketch(64);
    for (uint64_t i = 0; i < n; ++i) sketch.Add(i * 2654435761ULL + 17);
    const double estimate = sketch.EstimateDistinct();
    EXPECT_GT(estimate, 0.5 * static_cast<double>(n)) << "n=" << n;
    EXPECT_LT(estimate, 1.5 * static_cast<double>(n)) << "n=" << n;
  }
}

TEST(KmvSketchTest, LargerKTightensEstimate) {
  const uint64_t n = 100000;
  double err_small = 0.0;
  double err_large = 0.0;
  for (uint64_t salt = 0; salt < 5; ++salt) {
    KmvSketch small(16);
    KmvSketch large(1024);
    for (uint64_t i = 0; i < n; ++i) {
      const uint64_t element = i * 0x9e3779b97f4a7c15ULL + salt;
      small.Add(element);
      large.Add(element);
    }
    err_small += std::abs(small.EstimateDistinct() - n) / n;
    err_large += std::abs(large.EstimateDistinct() - n) / n;
  }
  EXPECT_LT(err_large, err_small);
}

TEST(KmvSketchTest, MergeEqualsUnionSketch) {
  KmvSketch a(32);
  KmvSketch b(32);
  KmvSketch both(32);
  for (uint64_t i = 0; i < 1000; ++i) {
    a.Add(i);
    both.Add(i);
  }
  for (uint64_t i = 500; i < 1500; ++i) {
    b.Add(i);
    both.Add(i);
  }
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.EstimateDistinct(), both.EstimateDistinct());
}

TEST(KmvSketchTest, MergeWithDisjointSets) {
  KmvSketch a(64);
  KmvSketch b(64);
  for (uint64_t i = 0; i < 2000; ++i) a.Add(i);
  for (uint64_t i = 2000; i < 4000; ++i) b.Add(i);
  a.Merge(b);
  const double estimate = a.EstimateDistinct();
  EXPECT_GT(estimate, 2000.0);
  EXPECT_LT(estimate, 6000.0);
}

TEST(KmvSketchTest, BoundedMemory) {
  KmvSketch sketch(32);
  for (uint64_t i = 0; i < 100000; ++i) sketch.Add(i);
  EXPECT_EQ(sketch.stored(), 32u);
}

}  // namespace
}  // namespace iqs
