// Cross-module integration tests: different structures over the SAME data
// answering the SAME queries must induce the same law; the EM stack
// (sort -> B-tree -> pools) must agree with an in-memory oracle.

#include <map>
#include <vector>

#include "gtest/gtest.h"
#include "iqs/iqs.h"
#include "test_util.h"

namespace iqs {
namespace {

using multidim::KdTreeSampler;
using multidim::Point2;
using multidim::QuadtreeSampler;
using multidim::RangeTree2DSampler;
using multidim::Rect;

TEST(IntegrationTest, AllOneDimensionalSamplersAgreeInLaw) {
  Rng rng(1);
  const size_t n = 96;
  const auto keys = UniformKeys(n, &rng);
  std::vector<double> weights(n);
  for (double& w : weights) w = 0.25 + 2.0 * rng.NextDouble();

  const BstRangeSampler bst(keys, weights);
  const AugRangeSampler aug(keys, weights);
  const ChunkedRangeSampler chunked(keys, weights);
  const NaiveRangeSampler naive(keys, weights);
  const RangeSampler* samplers[] = {&bst, &aug, &chunked, &naive};

  const size_t a = 13;
  const size_t b = 77;
  std::vector<double> range_weights(weights.begin() + a,
                                    weights.begin() + b + 1);
  for (const RangeSampler* sampler : samplers) {
    std::vector<size_t> out;
    sampler->QueryPositions(a, b, 120000, &rng, &out);
    std::vector<uint64_t> counts(b - a + 1, 0);
    for (size_t p : out) ++counts[p - a];
    testing::ExpectDistributionClose(counts,
                                     testing::Normalize(range_weights));
  }
}

TEST(IntegrationTest, AllTwoDimensionalSamplersAgreeInLaw) {
  Rng rng(2);
  const size_t n = 250;
  std::vector<Point2> pts;
  for (const auto& [x, y] : Points2D(n, 0, &rng)) pts.push_back({x, y});
  std::vector<double> weights(n);
  for (double& w : weights) w = 0.5 + rng.NextDouble();

  const KdTreeSampler kd(pts, weights);
  const QuadtreeSampler quad(pts, weights);
  const RangeTree2DSampler range_tree(pts, weights);

  const Rect q{0.15, 0.85, 0.2, 0.8};
  std::map<std::pair<double, double>, size_t> index_of;
  std::vector<double> qualified_weights;
  for (size_t i = 0; i < n; ++i) {
    if (q.Contains(pts[i])) {
      index_of[{pts[i].x, pts[i].y}] = qualified_weights.size();
      qualified_weights.push_back(weights[i]);
    }
  }
  ASSERT_GT(qualified_weights.size(), 20u);

  auto check = [&](auto&& query) {
    std::vector<Point2> out;
    ASSERT_TRUE(query(&out));
    std::vector<size_t> samples;
    for (const Point2& p : out) {
      auto it = index_of.find({p.x, p.y});
      ASSERT_NE(it, index_of.end());
      samples.push_back(it->second);
    }
    testing::ExpectSamplesMatchWeights(samples, qualified_weights);
  };
  check([&](std::vector<Point2>* out) {
    return kd.QueryRect(q, 120000, &rng, out);
  });
  check([&](std::vector<Point2>* out) {
    return quad.QueryRect(q, 120000, &rng, out);
  });
  check([&](std::vector<Point2>* out) {
    return range_tree.QueryRect(q, 120000, &rng, out);
  });
}

TEST(IntegrationTest, DynamicTreapConvergesToStaticLaw) {
  // Insert the same dataset into the treap; its query law must match the
  // static Theorem-3 structure.
  Rng rng(3);
  const size_t n = 80;
  const auto keys = UniformKeys(n, &rng);
  std::vector<double> weights(n);
  for (double& w : weights) w = 0.5 + rng.NextDouble();

  const ChunkedRangeSampler static_sampler(keys, weights);
  DynamicRangeSampler treap(&rng);
  for (size_t i = 0; i < n; ++i) treap.Insert(keys[i], weights[i]);

  const double lo = keys[10];
  const double hi = keys[69];
  std::vector<uint64_t> static_counts(60, 0);
  std::vector<size_t> positions;
  static_sampler.Query(lo, hi, 120000, &rng, &positions);
  for (size_t p : positions) ++static_counts[p - 10];

  std::vector<uint64_t> treap_counts(60, 0);
  std::vector<double> out;
  treap.Query(lo, hi, 120000, &rng, &out);
  std::map<double, size_t> key_index;
  for (size_t i = 10; i <= 69; ++i) key_index[keys[i]] = i - 10;
  for (double key : out) ++treap_counts[key_index.at(key)];

  const std::vector<double> range_weights(weights.begin() + 10,
                                          weights.begin() + 70);
  testing::ExpectDistributionClose(static_counts,
                                   testing::Normalize(range_weights));
  testing::ExpectDistributionClose(treap_counts,
                                   testing::Normalize(range_weights));
}

TEST(IntegrationTest, EmStackAgreesWithInMemoryOracle) {
  // Unsorted values -> external sort -> B-tree -> EM range sampler; the
  // whole stack's sampling law must match the in-memory computation.
  const size_t kB = 16;
  em::BlockDevice device(kB);
  Rng rng(4);
  em::EmArray raw(&device, 1);
  std::vector<uint64_t> values;
  {
    em::EmWriter writer(&raw);
    for (int i = 0; i < 600; ++i) {
      const uint64_t v = rng.Next64() % 5000;
      writer.Append1(v);
      values.push_back(v);
    }
    writer.Finish();
  }
  em::EmArray sorted = em::ExternalSort(raw, 4 * kB);
  std::sort(values.begin(), values.end());

  em::EmRangeSampler sampler(&sorted, 4 * kB, &rng);
  const uint64_t lo = 1000;
  const uint64_t hi = 4000;
  std::vector<uint64_t> in_range;
  for (uint64_t v : values) {
    if (v >= lo && v <= hi) in_range.push_back(v);
  }
  ASSERT_FALSE(in_range.empty());

  std::vector<uint64_t> out;
  ASSERT_TRUE(sampler.Query(lo, hi, 100000, &rng, &out));
  std::map<uint64_t, uint64_t> freq;
  for (uint64_t v : out) {
    ASSERT_GE(v, lo);
    ASSERT_LE(v, hi);
    ++freq[v];
  }
  // Duplicates in the data weight values by multiplicity.
  std::map<uint64_t, double> multiplicity;
  for (uint64_t v : in_range) multiplicity[v] += 1.0;
  ASSERT_EQ(freq.size(), multiplicity.size());
  std::vector<uint64_t> counts;
  std::vector<double> weights;
  for (const auto& [v, m] : multiplicity) {
    counts.push_back(freq[v]);
    weights.push_back(m);
  }
  testing::ExpectDistributionClose(counts, testing::Normalize(weights));
}

TEST(IntegrationTest, SubtreeSamplerOverKdStyleDecomposition) {
  // WeightedTree built to mirror a quadtree hierarchy, sampled via both
  // the top-down sampler and the Lemma-4 sampler.
  Rng rng(5);
  WeightedTree tree;
  std::vector<WeightedTree::NodeId> level = {tree.root()};
  for (int depth = 0; depth < 3; ++depth) {
    std::vector<WeightedTree::NodeId> next;
    for (auto node : level) {
      for (int c = 0; c < 4; ++c) next.push_back(tree.AddChild(node));
    }
    level = std::move(next);
  }
  for (auto leaf : level) tree.SetLeafWeight(leaf, 0.5 + rng.NextDouble());
  tree.Finalize();

  const TreeSampler top_down(&tree);
  const SubtreeSampler euler(&tree);
  const auto q = tree.Children(tree.Children(tree.root())[2])[1];

  std::map<WeightedTree::NodeId, uint64_t> freq_a;
  std::map<WeightedTree::NodeId, uint64_t> freq_b;
  std::vector<WeightedTree::NodeId> out;
  top_down.Query(q, 60000, &rng, &out);
  for (auto leaf : out) ++freq_a[leaf];
  out.clear();
  euler.Query(q, 60000, &rng, &out);
  for (auto leaf : out) ++freq_b[leaf];
  ASSERT_EQ(freq_a.size(), freq_b.size());

  std::vector<uint64_t> counts_a;
  std::vector<uint64_t> counts_b;
  std::vector<double> leaf_weights;
  for (const auto& [leaf, count] : freq_a) {
    counts_a.push_back(count);
    counts_b.push_back(freq_b[leaf]);
    leaf_weights.push_back(tree.Weight(leaf));
  }
  testing::ExpectDistributionClose(counts_a,
                                   testing::Normalize(leaf_weights));
  testing::ExpectDistributionClose(counts_b,
                                   testing::Normalize(leaf_weights));
}

}  // namespace
}  // namespace iqs
