#include "iqs/cover/complement_sampler.h"

#include <set>
#include <vector>

#include "gtest/gtest.h"
#include "iqs/util/distributions.h"
#include "iqs/util/rng.h"
#include "test_util.h"

namespace iqs {
namespace {

TEST(ComplementSamplerTest, ApproxCoverHasAtMostTwoPieces) {
  Rng rng(1);
  const auto keys = UniformKeys(1 << 12, &rng);
  ComplementRangeSampler sampler(keys);
  for (int trial = 0; trial < 200; ++trial) {
    size_t a = rng.Below(keys.size());
    size_t b = rng.Below(keys.size());
    if (a > b) std::swap(a, b);
    std::vector<CoverRange> cover;
    sampler.BuildApproxCover(a, b, &cover);
    EXPECT_LE(cover.size(), 2u);
  }
}

TEST(ComplementSamplerTest, ApproxCoverIsDenseEnough) {
  // Theorem 6's density condition: |S_q| >= constant * |union of cover|.
  Rng rng(2);
  const auto keys = UniformKeys(1 << 12, &rng);
  ComplementRangeSampler sampler(keys);
  for (int trial = 0; trial < 200; ++trial) {
    size_t a = rng.Below(keys.size());
    size_t b = rng.Below(keys.size());
    if (a > b) std::swap(a, b);
    if (a == 0 && b == keys.size() - 1) continue;  // empty complement
    std::vector<CoverRange> cover;
    sampler.BuildApproxCover(a, b, &cover);
    size_t cover_elems = 0;
    for (const CoverRange& range : cover) {
      cover_elems += range.hi - range.lo + 1;
    }
    const size_t result_size = keys.size() - (b - a + 1);
    EXPECT_GE(result_size * 3, cover_elems)
        << "a=" << a << " b=" << b << " cover=" << cover_elems;
    // Cover must contain the whole complement.
    EXPECT_GE(cover_elems, result_size);
  }
}

TEST(ComplementSamplerTest, ExactCoverCanBeLogarithmicallyLarge) {
  // With the excluded zone in the middle, the exact canonical cover of
  // prefix + suffix needs Θ(log n) pieces while the approximate one uses
  // 2: this is the paper's Section 6 separation.
  Rng rng(3);
  const size_t n = 1 << 14;
  const auto keys = UniformKeys(n, &rng);
  ComplementRangeSampler sampler(keys);
  size_t max_exact = 0;
  for (int trial = 0; trial < 100; ++trial) {
    const size_t a = n / 4 + rng.Below(n / 4);
    const size_t b = a + rng.Below(n / 4);
    std::vector<CoverRange> exact;
    sampler.BuildExactCover(a, b, &exact);
    max_exact = std::max(max_exact, exact.size());
  }
  EXPECT_GE(max_exact, 10u);  // ~2 log2(n) in the worst trials
}

TEST(ComplementSamplerTest, BothPathsSampleUniformComplement) {
  Rng rng(4);
  const size_t n = 60;
  const auto keys = UniformKeys(n, &rng);
  ComplementRangeSampler sampler(keys);
  const double lo = keys[20];
  const double hi = keys[39];
  std::vector<double> complement_weights(n, 1.0);
  for (size_t i = 20; i <= 39; ++i) complement_weights[i] = 0.0;

  std::vector<size_t> approx_out;
  ASSERT_TRUE(sampler.QueryApprox(lo, hi, 200000, &rng, &approx_out));
  testing::ExpectSamplesMatchWeights(approx_out, complement_weights);

  std::vector<size_t> exact_out;
  ASSERT_TRUE(sampler.QueryExact(lo, hi, 200000, &rng, &exact_out));
  testing::ExpectSamplesMatchWeights(exact_out, complement_weights);
}

TEST(ComplementSamplerTest, NothingExcludedSamplesWholeSet) {
  Rng rng(5);
  const size_t n = 32;
  const auto keys = UniformKeys(n, &rng);
  ComplementRangeSampler sampler(keys);
  std::vector<size_t> out;
  // Interval between keys excludes nothing.
  ASSERT_TRUE(sampler.QueryApprox(2.0, 3.0, 64000, &rng, &out));
  testing::ExpectSamplesMatchWeights(out, std::vector<double>(n, 1.0));
}

TEST(ComplementSamplerTest, EverythingExcludedReturnsFalse) {
  Rng rng(6);
  const auto keys = UniformKeys(16, &rng);
  ComplementRangeSampler sampler(keys);
  std::vector<size_t> out;
  EXPECT_FALSE(sampler.QueryApprox(-1.0, 2.0, 5, &rng, &out));
  EXPECT_FALSE(sampler.QueryExact(-1.0, 2.0, 5, &rng, &out));
  EXPECT_TRUE(out.empty());
}

TEST(ComplementSamplerTest, PrefixOnlyAndSuffixOnly) {
  Rng rng(7);
  const size_t n = 64;
  const auto keys = UniformKeys(n, &rng);
  ComplementRangeSampler sampler(keys);
  // Exclude a suffix: complement is the prefix [0, 9].
  std::vector<size_t> out;
  ASSERT_TRUE(sampler.QueryApprox(keys[10], 2.0, 50000, &rng, &out));
  for (size_t p : out) EXPECT_LT(p, 10u);
  // Exclude a prefix: complement is [54, 63].
  out.clear();
  ASSERT_TRUE(sampler.QueryApprox(-1.0, keys[53], 50000, &rng, &out));
  for (size_t p : out) EXPECT_GE(p, 54u);
}

TEST(ComplementSamplerTest, IndependentAcrossRepeats) {
  Rng rng(8);
  const size_t n = 64;
  const auto keys = UniformKeys(n, &rng);
  ComplementRangeSampler sampler(keys);
  std::set<size_t> seen;
  for (int repeat = 0; repeat < 200; ++repeat) {
    std::vector<size_t> out;
    ASSERT_TRUE(sampler.QueryApprox(keys[10], keys[50], 1, &rng, &out));
    seen.insert(out[0]);
  }
  // 200 independent draws over 23 allowed positions hit most of them.
  EXPECT_GE(seen.size(), 15u);
}

}  // namespace
}  // namespace iqs
