#include "iqs/tree/tree_sampler.h"

#include <unordered_map>
#include <vector>

#include "gtest/gtest.h"
#include "iqs/tree/weighted_tree.h"
#include "iqs/util/rng.h"
#include "test_util.h"

namespace iqs {
namespace {

// Builds a random tree with `num_leaves` leaves, random fanouts, and
// weights in (0.1, 2.1); returns (tree, leaf ids).
std::pair<WeightedTree, std::vector<WeightedTree::NodeId>> RandomTree(
    size_t num_leaves, Rng* rng) {
  WeightedTree tree;
  std::vector<WeightedTree::NodeId> frontier = {tree.root()};
  std::vector<WeightedTree::NodeId> leaves;
  // Grow until we have enough frontier nodes, then weight them as leaves.
  while (frontier.size() < num_leaves) {
    const size_t pick = rng->Below(frontier.size());
    const WeightedTree::NodeId parent = frontier[pick];
    frontier.erase(frontier.begin() + static_cast<ptrdiff_t>(pick));
    const size_t fanout = 2 + rng->Below(4);
    for (size_t c = 0; c < fanout && frontier.size() < num_leaves + fanout;
         ++c) {
      frontier.push_back(tree.AddChild(parent));
    }
  }
  for (WeightedTree::NodeId leaf : frontier) {
    tree.SetLeafWeight(leaf, 0.1 + 2.0 * rng->NextDouble());
    leaves.push_back(leaf);
  }
  tree.Finalize();
  return {std::move(tree), std::move(leaves)};
}

TEST(WeightedTreeTest, FinalizeComputesSubtreeWeights) {
  WeightedTree tree;
  const auto a = tree.AddChild(tree.root());
  const auto b = tree.AddChild(tree.root());
  const auto c = tree.AddChild(a);
  const auto d = tree.AddChild(a);
  tree.SetLeafWeight(b, 5.0);
  tree.SetLeafWeight(c, 1.0);
  tree.SetLeafWeight(d, 2.0);
  tree.Finalize();
  EXPECT_DOUBLE_EQ(tree.Weight(a), 3.0);
  EXPECT_DOUBLE_EQ(tree.Weight(tree.root()), 8.0);
  EXPECT_EQ(tree.SubtreeLeafCount(tree.root()), 3u);
  EXPECT_EQ(tree.SubtreeLeafCount(a), 2u);
}

TEST(TreeSamplerTest, RootQueryMatchesLeafWeights) {
  Rng rng(1);
  auto [tree, leaves] = RandomTree(40, &rng);
  TreeSampler sampler(&tree);
  std::unordered_map<WeightedTree::NodeId, size_t> index_of;
  std::vector<double> weights;
  for (size_t i = 0; i < leaves.size(); ++i) {
    index_of[leaves[i]] = i;
    weights.push_back(tree.Weight(leaves[i]));
  }
  std::vector<WeightedTree::NodeId> out;
  sampler.Query(tree.root(), 200000, &rng, &out);
  std::vector<size_t> samples;
  for (auto leaf : out) samples.push_back(index_of.at(leaf));
  testing::ExpectSamplesMatchWeights(samples, weights);
}

TEST(TreeSamplerTest, SubtreeQueryRestrictsAndMatches) {
  Rng rng(2);
  // Fixed small tree: root -> {x, y}; x -> {l1, l2}; y leaf.
  WeightedTree tree;
  const auto x = tree.AddChild(tree.root());
  const auto y = tree.AddChild(tree.root());
  const auto l1 = tree.AddChild(x);
  const auto l2 = tree.AddChild(x);
  tree.SetLeafWeight(y, 10.0);
  tree.SetLeafWeight(l1, 1.0);
  tree.SetLeafWeight(l2, 3.0);
  tree.Finalize();
  TreeSampler sampler(&tree);
  std::vector<WeightedTree::NodeId> out;
  sampler.Query(x, 80000, &rng, &out);
  size_t hits_l1 = 0;
  for (auto leaf : out) {
    ASSERT_TRUE(leaf == l1 || leaf == l2) << "sample escaped subtree";
    hits_l1 += (leaf == l1);
  }
  EXPECT_NEAR(static_cast<double>(hits_l1) / out.size(), 0.25, 0.01);
}

TEST(TreeSamplerTest, LeafQueryReturnsLeaf) {
  Rng rng(3);
  WeightedTree tree;
  const auto a = tree.AddChild(tree.root());
  const auto b = tree.AddChild(tree.root());
  tree.SetLeafWeight(a, 1.0);
  tree.SetLeafWeight(b, 1.0);
  tree.Finalize();
  TreeSampler sampler(&tree);
  EXPECT_EQ(sampler.SampleLeaf(a, &rng), a);
}

TEST(TreeSamplerTest, PathTreeWorks) {
  // Degenerate unary-chain tree: fanout-1 nodes all the way down.
  Rng rng(4);
  WeightedTree tree;
  WeightedTree::NodeId node = tree.root();
  for (int i = 0; i < 200; ++i) node = tree.AddChild(node);
  tree.SetLeafWeight(node, 1.0);
  tree.Finalize();
  TreeSampler sampler(&tree);
  EXPECT_EQ(sampler.SampleLeaf(tree.root(), &rng), node);
}

}  // namespace
}  // namespace iqs
