#include "iqs/sampling/estimator.h"

#include <cmath>
#include <vector>

#include "gtest/gtest.h"
#include "iqs/range/chunked_range_sampler.h"
#include "iqs/util/distributions.h"
#include "iqs/util/rng.h"

namespace iqs {
namespace {

TEST(EstimatorTest, SampleSizeFormula) {
  // eps = 0.1, delta = 0.05: ln(40)/0.02 = ~184.4 -> 185.
  EXPECT_EQ(SamplesForEstimate(0.1, 0.05), 185u);
  // Tighter eps quadruples the cost per halving.
  EXPECT_GT(SamplesForEstimate(0.05, 0.05),
            3 * SamplesForEstimate(0.1, 0.05));
  // Tighter delta costs only logarithmically.
  EXPECT_LT(SamplesForEstimate(0.1, 0.0005),
            3 * SamplesForEstimate(0.1, 0.05));
}

TEST(EstimatorTest, EstimatesWithinEpsilonMostOfTheTime) {
  Rng rng(1);
  const size_t n = 4096;
  const auto keys = UniformKeys(n, &rng);
  const std::vector<double> unit(n, 1.0);
  const ChunkedRangeSampler sampler(keys, unit);

  // Ground truth: predicate "position divisible by 3" on a wide range.
  const double lo = keys[100];
  const double hi = keys[4000];
  size_t qualifying = 0;
  for (size_t p = 100; p <= 4000; ++p) qualifying += (p % 3 == 0);
  const double truth =
      static_cast<double>(qualifying) / static_cast<double>(3901);

  const double eps = 0.05;
  const double delta = 0.01;
  int failures = 0;
  const int rounds = 300;
  for (int round = 0; round < rounds; ++round) {
    const auto estimate = EstimateFraction(
        sampler, lo, hi, [](size_t p) { return p % 3 == 0; }, eps, delta,
        &rng);
    ASSERT_TRUE(estimate.has_value());
    EXPECT_EQ(estimate->samples_used, SamplesForEstimate(eps, delta));
    failures += std::abs(estimate->fraction - truth) > eps;
  }
  // delta = 1% over 300 independent rounds: ~3 expected failures; the
  // Hoeffding bound is loose, so 0 is typical. Allow generous slack.
  EXPECT_LE(failures, 12);
}

TEST(EstimatorTest, EmptyRangeIsNullopt) {
  Rng rng(2);
  const auto keys = UniformKeys(32, &rng);
  const ChunkedRangeSampler sampler(keys, std::vector<double>(32, 1.0));
  EXPECT_FALSE(EstimateFraction(
                   sampler, 5.0, 6.0, [](size_t) { return true; }, 0.1,
                   0.1, &rng)
                   .has_value());
}

TEST(EstimatorTest, DegenerateFractions) {
  Rng rng(3);
  const auto keys = UniformKeys(64, &rng);
  const ChunkedRangeSampler sampler(keys, std::vector<double>(64, 1.0));
  const auto all = EstimateFraction(
      sampler, -1.0, 2.0, [](size_t) { return true; }, 0.1, 0.1, &rng);
  EXPECT_DOUBLE_EQ(all->fraction, 1.0);
  const auto none = EstimateFraction(
      sampler, -1.0, 2.0, [](size_t) { return false; }, 0.1, 0.1, &rng);
  EXPECT_DOUBLE_EQ(none->fraction, 0.0);
}

}  // namespace
}  // namespace iqs
