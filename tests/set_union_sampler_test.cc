#include "iqs/setunion/set_union_sampler.h"

#include <map>
#include <set>
#include <vector>

#include "gtest/gtest.h"
#include "iqs/util/rng.h"
#include "test_util.h"

namespace iqs {
namespace {

TEST(SetUnionSamplerTest, DisjointSetsUniformOverUnion) {
  Rng build_rng(1);
  Rng rng(2);
  std::vector<std::vector<uint64_t>> sets = {
      {1, 2, 3}, {10, 11}, {20, 21, 22, 23}};
  SetUnionSampler sampler(sets, &build_rng);
  const std::vector<size_t> all = {0, 1, 2};
  std::map<uint64_t, uint64_t> freq;
  for (int i = 0; i < 90000; ++i) {
    const auto sample = sampler.Sample(all, &rng);
    ASSERT_TRUE(sample.has_value());
    ++freq[*sample];
  }
  ASSERT_EQ(freq.size(), 9u);
  std::vector<uint64_t> counts;
  for (const auto& [element, count] : freq) counts.push_back(count);
  testing::ExpectDistributionClose(counts, std::vector<double>(9, 1.0 / 9));
}

TEST(SetUnionSamplerTest, OverlapDoesNotBias) {
  // Element 5 appears in all three sets; it must NOT be 3x as likely.
  Rng build_rng(3);
  Rng rng(4);
  std::vector<std::vector<uint64_t>> sets = {
      {5, 1, 2}, {5, 3}, {5, 4, 6, 7}};
  SetUnionSampler sampler(sets, &build_rng);
  const std::vector<size_t> all = {0, 1, 2};
  std::map<uint64_t, uint64_t> freq;
  for (int i = 0; i < 80000; ++i) {
    ++freq[*sampler.Sample(all, &rng)];
  }
  ASSERT_EQ(freq.size(), 7u);  // union is {1, 2, 3, 4, 5, 6, 7}
  std::vector<uint64_t> counts;
  for (const auto& [element, count] : freq) counts.push_back(count);
  testing::ExpectDistributionClose(counts,
                                   std::vector<double>(freq.size(),
                                                       1.0 / freq.size()));
}

TEST(SetUnionSamplerTest, SubcollectionQueriesRestrictSupport) {
  Rng build_rng(5);
  Rng rng(6);
  std::vector<std::vector<uint64_t>> sets = {{1, 2}, {3, 4}, {5, 6}};
  SetUnionSampler sampler(sets, &build_rng);
  const std::vector<size_t> g = {0, 2};
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto sample = sampler.Sample(g, &rng);
    ASSERT_TRUE(sample.has_value());
    seen.insert(*sample);
  }
  EXPECT_EQ(seen, (std::set<uint64_t>{1, 2, 5, 6}));
}

TEST(SetUnionSamplerTest, LargeOverlappingCollection) {
  Rng build_rng(7);
  Rng rng(8);
  // 40 sets of 200 elements each over a universe of 2000: heavy overlap.
  std::vector<std::vector<uint64_t>> sets(40);
  Rng data_rng(9);
  for (auto& set : sets) {
    std::set<uint64_t> chosen;
    while (chosen.size() < 200) chosen.insert(data_rng.Below(2000));
    set.assign(chosen.begin(), chosen.end());
  }
  SetUnionSampler sampler(sets, &build_rng);
  std::vector<size_t> g;
  for (size_t i = 0; i < 10; ++i) g.push_back(i * 4);
  // Oracle union.
  std::set<uint64_t> oracle;
  for (size_t id : g) oracle.insert(sets[id].begin(), sets[id].end());

  std::map<uint64_t, uint64_t> freq;
  const int trials = 30000;
  for (int i = 0; i < trials; ++i) {
    const auto sample = sampler.Sample(g, &rng);
    ASSERT_TRUE(sample.has_value());
    ASSERT_TRUE(oracle.contains(*sample));
    ++freq[*sample];
  }
  // Every union element reachable and frequencies uniform.
  EXPECT_EQ(freq.size(), oracle.size());
  std::vector<uint64_t> counts;
  for (const auto& [element, count] : freq) counts.push_back(count);
  testing::ExpectDistributionClose(
      counts, std::vector<double>(oracle.size(), 1.0 / oracle.size()));
}

TEST(SetUnionSamplerTest, EstimateUnionSizeWithinBand) {
  Rng build_rng(10);
  std::vector<std::vector<uint64_t>> sets(10);
  for (size_t i = 0; i < 10; ++i) {
    for (uint64_t e = 0; e < 500; ++e) {
      sets[i].push_back(i * 250 + e);  // 50% overlap with the next set
    }
  }
  SetUnionSampler sampler(sets, &build_rng);
  std::vector<size_t> all;
  for (size_t i = 0; i < 10; ++i) all.push_back(i);
  const double truth = 9 * 250 + 500;  // 2750 distinct
  const double estimate = sampler.EstimateUnionSize(all);
  EXPECT_GT(estimate, truth / 2);
  EXPECT_LT(estimate, truth * 1.5);
}

TEST(SetUnionSamplerTest, EmptySetsHandled) {
  Rng build_rng(11);
  Rng rng(12);
  std::vector<std::vector<uint64_t>> sets = {{}, {7}, {}};
  SetUnionSampler sampler(sets, &build_rng);
  const std::vector<size_t> empty_only = {0, 2};
  EXPECT_FALSE(sampler.Sample(empty_only, &rng).has_value());
  const std::vector<size_t> with_seven = {0, 1};
  const auto sample = sampler.Sample(with_seven, &rng);
  ASSERT_TRUE(sample.has_value());
  EXPECT_EQ(*sample, 7u);
}

TEST(SetUnionSamplerTest, SampleManyDrawsIndependent) {
  Rng build_rng(13);
  Rng rng(14);
  std::vector<std::vector<uint64_t>> sets = {{1, 2, 3, 4}};
  SetUnionSampler sampler(sets, &build_rng);
  std::vector<uint64_t> out;
  const std::vector<size_t> g = {0};
  ASSERT_TRUE(sampler.SampleMany(g, 40000, &rng, &out));
  ASSERT_EQ(out.size(), 40000u);
  std::map<uint64_t, uint64_t> freq;
  for (uint64_t v : out) ++freq[v];
  std::vector<uint64_t> counts;
  for (const auto& [element, count] : freq) counts.push_back(count);
  testing::ExpectDistributionClose(counts, std::vector<double>(4, 0.25));
}

TEST(SetUnionSamplerTest, WeightedSamplingMatchesWeights) {
  Rng build_rng(20);
  Rng rng(21);
  std::vector<std::vector<uint64_t>> sets = {{1, 2, 5}, {5, 3, 4}};
  const std::unordered_map<uint64_t, double> weights = {
      {1, 1.0}, {2, 2.0}, {3, 3.0}, {4, 4.0}, {5, 5.0}};
  SetUnionSampler sampler(sets, &build_rng, {}, weights);
  const std::vector<size_t> all = {0, 1};
  std::map<uint64_t, uint64_t> freq;
  for (int i = 0; i < 150000; ++i) {
    ++freq[*sampler.SampleWeighted(all, &rng)];
  }
  ASSERT_EQ(freq.size(), 5u);
  std::vector<uint64_t> counts;
  std::vector<double> want;
  for (const auto& [element, count] : freq) {
    counts.push_back(count);
    want.push_back(weights.at(element));
  }
  testing::ExpectDistributionClose(counts, testing::Normalize(want));
}

TEST(SetUnionSamplerTest, WeightedOverlapDoesNotBias) {
  // Element 9 is in both sets with weight 2; it must carry mass 2, not 4.
  Rng build_rng(22);
  Rng rng(23);
  std::vector<std::vector<uint64_t>> sets = {{9, 1}, {9, 2}};
  const std::unordered_map<uint64_t, double> weights = {
      {9, 2.0}, {1, 1.0}, {2, 1.0}};
  SetUnionSampler sampler(sets, &build_rng, {}, weights);
  const std::vector<size_t> all = {0, 1};
  size_t nines = 0;
  const int trials = 60000;
  for (int i = 0; i < trials; ++i) {
    nines += (*sampler.SampleWeighted(all, &rng) == 9);
  }
  EXPECT_NEAR(static_cast<double>(nines) / trials, 0.5, 0.01);
}

TEST(SetUnionSamplerTest, DefaultWeightsMakeWeightedEqualUniform) {
  Rng build_rng(24);
  Rng rng(25);
  std::vector<std::vector<uint64_t>> sets = {{1, 2, 3, 4}};
  SetUnionSampler sampler(sets, &build_rng);
  const std::vector<size_t> g = {0};
  std::map<uint64_t, uint64_t> freq;
  for (int i = 0; i < 40000; ++i) {
    ++freq[*sampler.SampleWeighted(g, &rng)];
  }
  std::vector<uint64_t> counts;
  for (const auto& [element, count] : freq) counts.push_back(count);
  testing::ExpectDistributionClose(counts, std::vector<double>(4, 0.25));
}

TEST(SetUnionSamplerTest, RebuildPreservesLaw) {
  Rng build_rng(26);
  Rng rng(27);
  std::vector<std::vector<uint64_t>> sets = {{1, 2, 3}, {3, 4, 5, 6}};
  SetUnionSampler sampler(sets, &build_rng);
  const std::vector<size_t> all = {0, 1};
  std::map<uint64_t, uint64_t> freq;
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 6000; ++i) ++freq[*sampler.Sample(all, &rng)];
    sampler.Rebuild(&rng);
  }
  ASSERT_EQ(freq.size(), 6u);
  std::vector<uint64_t> counts;
  for (const auto& [element, count] : freq) counts.push_back(count);
  testing::ExpectDistributionClose(counts,
                                   std::vector<double>(6, 1.0 / 6));
}

TEST(SetUnionSamplerTest, NaiveBaselineUniform) {
  Rng rng(15);
  std::vector<std::vector<uint64_t>> sets = {{1, 2, 5}, {5, 9}};
  const std::vector<size_t> all = {0, 1};
  std::map<uint64_t, uint64_t> freq;
  for (int i = 0; i < 40000; ++i) {
    ++freq[*SetUnionSampler::NaiveUnionSample(sets, all, &rng)];
  }
  ASSERT_EQ(freq.size(), 4u);  // {1, 2, 5, 9}
  std::vector<uint64_t> counts;
  for (const auto& [element, count] : freq) counts.push_back(count);
  testing::ExpectDistributionClose(counts, std::vector<double>(4, 0.25));
}

}  // namespace
}  // namespace iqs
