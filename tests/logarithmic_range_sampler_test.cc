#include "iqs/range/logarithmic_range_sampler.h"

#include <cmath>
#include <map>
#include <vector>

#include "gtest/gtest.h"
#include "iqs/util/distributions.h"
#include "iqs/util/rng.h"
#include "test_util.h"

namespace iqs {
namespace {

TEST(LogarithmicSamplerTest, EmptyAndSingle) {
  Rng rng(1);
  LogarithmicRangeSampler sampler;
  std::vector<double> out;
  EXPECT_FALSE(sampler.Query(0.0, 1.0, 3, &rng, &out));
  sampler.Insert(0.5, 2.0);
  EXPECT_EQ(sampler.size(), 1u);
  ASSERT_TRUE(sampler.Query(0.0, 1.0, 3, &rng, &out));
  ASSERT_EQ(out.size(), 3u);
  for (double key : out) EXPECT_DOUBLE_EQ(key, 0.5);
  EXPECT_FALSE(sampler.Query(0.6, 1.0, 3, &rng, &out));
}

TEST(LogarithmicSamplerTest, ComponentCountIsLogarithmic) {
  Rng rng(2);
  LogarithmicRangeSampler sampler;
  for (int i = 0; i < 1000; ++i) {
    sampler.Insert(rng.NextDouble(), 1.0);
  }
  // 1000 = 0b1111101000: 6 one-bits.
  EXPECT_EQ(sampler.num_components(), 6u);
  EXPECT_LE(sampler.num_components(),
            static_cast<size_t>(std::log2(1000)) + 1);
}

TEST(LogarithmicSamplerTest, LawMatchesWeightsAfterIncrementalInserts) {
  Rng rng(3);
  LogarithmicRangeSampler sampler;
  const size_t n = 300;
  const auto keys = UniformKeys(n, &rng);
  std::vector<double> weights(n);
  // Insert in random order so merges interleave the key space.
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  for (size_t i = n; i > 1; --i) std::swap(order[i - 1], order[rng.Below(i)]);
  for (size_t i : order) {
    weights[i] = 0.25 + 2.0 * rng.NextDouble();
    sampler.Insert(keys[i], weights[i]);
  }
  ASSERT_EQ(sampler.size(), n);

  const size_t a = 40;
  const size_t b = 260;
  std::vector<double> out;
  ASSERT_TRUE(sampler.Query(keys[a], keys[b], 200000, &rng, &out));
  std::map<double, size_t> index_of;
  for (size_t i = a; i <= b; ++i) index_of[keys[i]] = i - a;
  std::vector<uint64_t> counts(b - a + 1, 0);
  for (double key : out) {
    const auto it = index_of.find(key);
    ASSERT_NE(it, index_of.end()) << "sampled key outside range";
    ++counts[it->second];
  }
  std::vector<double> range_weights(weights.begin() + a,
                                    weights.begin() + b + 1);
  testing::ExpectDistributionClose(counts, testing::Normalize(range_weights));
}

TEST(LogarithmicSamplerTest, RangeWeightMatchesOracle) {
  Rng rng(4);
  LogarithmicRangeSampler sampler;
  std::vector<std::pair<double, double>> elements;
  for (int i = 0; i < 257; ++i) {
    const double key = static_cast<double>(i) * 1.5;
    const double weight = 1.0 + (i % 4);
    sampler.Insert(key, weight);
    elements.emplace_back(key, weight);
  }
  for (int trial = 0; trial < 100; ++trial) {
    double lo = rng.NextDouble() * 400.0 - 10.0;
    double hi = rng.NextDouble() * 400.0 - 10.0;
    if (lo > hi) std::swap(lo, hi);
    double want = 0.0;
    for (const auto& [key, weight] : elements) {
      if (key >= lo && key <= hi) want += weight;
    }
    EXPECT_NEAR(sampler.RangeWeight(lo, hi), want, 1e-9);
  }
}

TEST(LogarithmicSamplerTest, InterleavedInsertsAndQueries) {
  // Queries between inserts must always reflect exactly the inserted set.
  Rng rng(5);
  LogarithmicRangeSampler sampler;
  std::vector<double> inserted;
  for (int round = 0; round < 200; ++round) {
    const double key = static_cast<double>(round) + 0.25;
    sampler.Insert(key, 1.0);
    inserted.push_back(key);
    if (round % 17 == 0) {
      std::vector<double> out;
      ASSERT_TRUE(sampler.Query(-1.0, 1000.0, 10, &rng, &out));
      for (double k : out) {
        EXPECT_TRUE(std::find(inserted.begin(), inserted.end(), k) !=
                    inserted.end());
      }
      EXPECT_NEAR(sampler.RangeWeight(-1.0, 1000.0),
                  static_cast<double>(inserted.size()), 1e-9);
    }
  }
}

TEST(LogarithmicSamplerTest, MonotoneInsertOrderWorks) {
  Rng rng(6);
  LogarithmicRangeSampler sampler;
  for (int i = 0; i < 512; ++i) {
    sampler.Insert(static_cast<double>(i), 1.0);
  }
  EXPECT_EQ(sampler.num_components(), 1u);  // 512 = 2^9: single component
  std::vector<double> out;
  ASSERT_TRUE(sampler.Query(100.0, 199.0, 50000, &rng, &out));
  std::vector<uint64_t> counts(100, 0);
  for (double key : out) ++counts[static_cast<size_t>(key) - 100];
  testing::ExpectDistributionClose(counts,
                                   std::vector<double>(100, 0.01));
}

TEST(LogarithmicSamplerTest, RepeatedQueriesIndependent) {
  Rng rng(7);
  LogarithmicRangeSampler sampler;
  for (int i = 0; i < 100; ++i) sampler.Insert(i * 0.01, 1.0);
  std::vector<double> first;
  std::vector<double> second;
  sampler.Query(0.0, 1.0, 30, &rng, &first);
  sampler.Query(0.0, 1.0, 30, &rng, &second);
  EXPECT_NE(first, second);
}

TEST(LogarithmicSamplerTest, BatchMatchesSingleQueryLaw) {
  // Chi-square equivalence (alpha 1e-6): QueryBatch — one CoverExecutor
  // split over all components of all queries, draws coalesced by
  // component — must match the looped single path.
  Rng rng(61);
  LogarithmicRangeSampler sampler;
  const size_t n = 300;  // several live components (300 = 0b100101100)
  const auto keys = UniformKeys(n, &rng);
  std::vector<double> weights(n);
  std::map<double, size_t> index;
  for (size_t i = 0; i < n; ++i) {
    weights[i] = 1.0 + (i % 4);
    index[keys[i]] = i;
  }
  // Random insertion order so merges interleave the key space.
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  for (size_t i = n; i > 1; --i) std::swap(order[i - 1], order[rng.Below(i)]);
  for (size_t i : order) sampler.Insert(keys[i], weights[i]);
  ASSERT_GT(sampler.num_components(), 2u);

  const double lo = keys[20];
  const double hi = keys[260];
  const size_t s = 64;
  const size_t rounds = 1600;

  Rng single_rng(62);
  std::vector<size_t> single;
  std::vector<double> scratch;
  for (size_t round = 0; round < rounds; ++round) {
    scratch.clear();
    ASSERT_TRUE(sampler.Query(lo, hi, s, &single_rng, &scratch));
    for (double key : scratch) single.push_back(index.at(key));
  }

  Rng batch_rng(63);
  ScratchArena arena;
  KeyBatchResult result;
  const std::vector<KeyBatchQuery> queries(8, KeyBatchQuery{lo, hi, s});
  std::vector<size_t> batch;
  for (size_t round = 0; round < rounds / queries.size(); ++round) {
    sampler.QueryBatch(queries, &batch_rng, &arena, &result);
    ASSERT_EQ(result.keys.size(), queries.size() * s);
    for (size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(result.resolved[i], 1);
    }
    for (double key : result.keys) batch.push_back(index.at(key));
  }

  std::vector<double> expected(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    if (keys[i] >= lo && keys[i] <= hi) expected[i] = weights[i];
  }
  testing::ExpectSamplesMatchWeights(single, expected);
  testing::ExpectSamplesMatchWeights(batch, expected);
}

TEST(LogarithmicSamplerTest, BatchFlagsEmptyIntervalsAndEmptySampler) {
  Rng rng(64);
  LogarithmicRangeSampler empty;
  const std::vector<KeyBatchQuery> probe = {{0.0, 1.0, 4}};
  ScratchArena arena;
  KeyBatchResult result;
  empty.QueryBatch(probe, &rng, &arena, &result);
  ASSERT_EQ(result.num_queries(), 1u);
  EXPECT_EQ(result.resolved[0], 0);
  EXPECT_TRUE(result.keys.empty());

  LogarithmicRangeSampler sampler;
  sampler.Insert(0.25, 1.0);
  sampler.Insert(0.75, 2.0);
  const std::vector<KeyBatchQuery> queries = {
      {0.3, 0.6, 8},   // gap between keys
      {0.0, 1.0, 8},
      {0.7, 0.8, 0},   // resolved but zero samples
  };
  sampler.QueryBatch(queries, &rng, &arena, &result);
  ASSERT_EQ(result.num_queries(), 3u);
  EXPECT_EQ(result.resolved[0], 0);
  EXPECT_EQ(result.resolved[1], 1);
  EXPECT_EQ(result.resolved[2], 1);
  EXPECT_EQ(result.SamplesFor(0).size(), 0u);
  EXPECT_EQ(result.SamplesFor(1).size(), 8u);
  EXPECT_EQ(result.SamplesFor(2).size(), 0u);
}

}  // namespace
}  // namespace iqs
