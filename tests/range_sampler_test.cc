// Cross-implementation tests for the 1-D weighted range samplers
// (Sections 3.2, 4.1, 4.2 of the paper): distribution correctness against
// the weights, range containment, interval resolution, and — the point of
// IQS — cross-query independence.

#include "iqs/range/range_sampler.h"

#include <cmath>
#include <memory>
#include <vector>

#include "gtest/gtest.h"
#include "iqs/range/aug_range_sampler.h"
#include "iqs/range/bst_range_sampler.h"
#include "iqs/range/chunked_range_sampler.h"
#include "iqs/range/naive_range_sampler.h"
#include "iqs/util/distributions.h"
#include "iqs/util/rng.h"
#include "iqs/util/stats.h"
#include "test_util.h"

namespace iqs {
namespace {

enum class SamplerKind { kBst, kAug, kChunked, kChunkedTiny, kNaive };

std::unique_ptr<RangeSampler> MakeSampler(SamplerKind kind,
                                          const std::vector<double>& keys,
                                          const std::vector<double>& weights) {
  switch (kind) {
    case SamplerKind::kBst:
      return std::make_unique<BstRangeSampler>(keys, weights);
    case SamplerKind::kAug:
      return std::make_unique<AugRangeSampler>(keys, weights);
    case SamplerKind::kChunked:
      return std::make_unique<ChunkedRangeSampler>(keys, weights);
    case SamplerKind::kChunkedTiny:
      // Chunk size 2 stresses every boundary case of the chunk split.
      return std::make_unique<ChunkedRangeSampler>(keys, weights, 2);
    case SamplerKind::kNaive:
      return std::make_unique<NaiveRangeSampler>(keys, weights);
  }
  return nullptr;
}

class RangeSamplerTest : public ::testing::TestWithParam<SamplerKind> {};

TEST_P(RangeSamplerTest, SamplesStayInRange) {
  Rng rng(1);
  const auto keys = UniformKeys(300, &rng);
  const auto weights = ZipfWeights(300, 1.0, &rng);
  const auto sampler = MakeSampler(GetParam(), keys, weights);
  for (int trial = 0; trial < 200; ++trial) {
    size_t a = rng.Below(300);
    size_t b = rng.Below(300);
    if (a > b) std::swap(a, b);
    std::vector<size_t> out;
    sampler->QueryPositions(a, b, 20, &rng, &out);
    ASSERT_EQ(out.size(), 20u);
    for (size_t p : out) {
      EXPECT_GE(p, a);
      EXPECT_LE(p, b);
    }
  }
}

TEST_P(RangeSamplerTest, DistributionMatchesWeightsWithinRange) {
  Rng rng(2);
  const size_t n = 128;
  const auto keys = UniformKeys(n, &rng);
  std::vector<double> weights(n);
  for (size_t i = 0; i < n; ++i) weights[i] = 0.2 + rng.NextDouble() * 3.0;
  const auto sampler = MakeSampler(GetParam(), keys, weights);

  // Several ranges, including chunk-straddling and tiny ones.
  const std::pair<size_t, size_t> ranges[] = {
      {0, n - 1}, {0, 0}, {n - 1, n - 1}, {3, 17}, {40, 90}, {1, n - 2}};
  for (const auto& [a, b] : ranges) {
    std::vector<size_t> out;
    sampler->QueryPositions(a, b, 120000, &rng, &out);
    std::vector<uint64_t> counts(b - a + 1, 0);
    for (size_t p : out) ++counts[p - a];
    std::vector<double> range_weights(weights.begin() + a,
                                      weights.begin() + b + 1);
    testing::ExpectDistributionClose(counts,
                                     testing::Normalize(range_weights));
  }
}

TEST_P(RangeSamplerTest, KeyIntervalQueries) {
  Rng rng(3);
  const auto keys = UniformKeys(100, &rng);
  const std::vector<double> weights(100, 1.0);
  const auto sampler = MakeSampler(GetParam(), keys, weights);

  // Interval covering everything.
  std::vector<size_t> out;
  EXPECT_TRUE(sampler->Query(-1.0, 2.0, 5, &rng, &out));
  EXPECT_EQ(out.size(), 5u);

  // Interval covering nothing (between two adjacent keys).
  out.clear();
  const double gap_lo = (keys[10] + keys[11]) / 2.0;
  const double gap_hi = std::nextafter(keys[11], 0.0);
  EXPECT_FALSE(sampler->Query(gap_lo, gap_hi, 5, &rng, &out));
  EXPECT_TRUE(out.empty());

  // Inverted interval.
  EXPECT_FALSE(sampler->Query(0.9, 0.1, 5, &rng, &out));

  // Exact single key.
  out.clear();
  EXPECT_TRUE(sampler->Query(keys[42], keys[42], 7, &rng, &out));
  ASSERT_EQ(out.size(), 7u);
  for (size_t p : out) EXPECT_EQ(p, 42u);
}

TEST_P(RangeSamplerTest, ZeroSamplesIsNoop) {
  Rng rng(4);
  const auto keys = UniformKeys(50, &rng);
  const std::vector<double> weights(50, 1.0);
  const auto sampler = MakeSampler(GetParam(), keys, weights);
  std::vector<size_t> out;
  sampler->QueryPositions(5, 20, 0, &rng, &out);
  EXPECT_TRUE(out.empty());
}

TEST_P(RangeSamplerTest, RepeatedIdenticalQueriesAreIndependent) {
  // The defining IQS property (paper equation (1)): repeating the same
  // query must give fresh samples. We issue the same query many times with
  // s = 1 over equal weights and check (a) the pooled marginal is uniform
  // and (b) consecutive outputs are uncorrelated.
  Rng rng(5);
  const size_t n = 64;
  const auto keys = UniformKeys(n, &rng);
  const std::vector<double> weights(n, 1.0);
  const auto sampler = MakeSampler(GetParam(), keys, weights);

  const size_t a = 8;
  const size_t b = 55;
  std::vector<double> series;
  std::vector<uint64_t> counts(b - a + 1, 0);
  for (int q = 0; q < 60000; ++q) {
    std::vector<size_t> out;
    sampler->QueryPositions(a, b, 1, &rng, &out);
    series.push_back(static_cast<double>(out[0]));
    ++counts[out[0] - a];
  }
  testing::ExpectDistributionClose(
      counts, std::vector<double>(b - a + 1, 1.0 / (b - a + 1)));

  std::vector<double> lagged(series.begin() + 1, series.end());
  series.pop_back();
  EXPECT_LT(std::abs(PearsonCorrelation(series, lagged)), 0.02)
      << "consecutive identical queries are correlated";
}

INSTANTIATE_TEST_SUITE_P(AllSamplers, RangeSamplerTest,
                         ::testing::Values(SamplerKind::kBst,
                                           SamplerKind::kAug,
                                           SamplerKind::kChunked,
                                           SamplerKind::kChunkedTiny,
                                           SamplerKind::kNaive),
                         [](const auto& info) {
                           switch (info.param) {
                             case SamplerKind::kBst:
                               return "Bst";
                             case SamplerKind::kAug:
                               return "Aug";
                             case SamplerKind::kChunked:
                               return "Chunked";
                             case SamplerKind::kChunkedTiny:
                               return "ChunkedTiny";
                             case SamplerKind::kNaive:
                               return "Naive";
                           }
                           return "Unknown";
                         });

TEST(ChunkedRangeSamplerTest, ChunkGeometry) {
  Rng rng(6);
  const auto keys = UniformKeys(1000, &rng);
  const std::vector<double> weights(1000, 1.0);
  ChunkedRangeSampler sampler(keys, weights);
  EXPECT_GE(sampler.chunk_size(), 8u);  // ~log2(1000)
  EXPECT_LE(sampler.chunk_size(), 16u);
  EXPECT_EQ(sampler.num_chunks(),
            (1000 + sampler.chunk_size() - 1) / sampler.chunk_size());
}

TEST(ChunkedRangeSamplerTest, UnevenLastChunk) {
  // n not divisible by chunk size: last chunk is short; ensure samples
  // from the tail are still correct.
  Rng rng(7);
  const auto keys = UniformKeys(103, &rng);
  std::vector<double> weights(103, 1.0);
  weights[102] = 50.0;
  ChunkedRangeSampler sampler(keys, weights, 10);
  std::vector<size_t> out;
  sampler.QueryPositions(95, 102, 100000, &rng, &out);
  std::vector<uint64_t> counts(8, 0);
  for (size_t p : out) ++counts[p - 95];
  std::vector<double> range_weights(weights.begin() + 95, weights.end());
  testing::ExpectDistributionClose(counts, testing::Normalize(range_weights));
}

TEST(ChunkedRangeSamplerTest, DegenerateChunkSizes) {
  Rng rng(9);
  const auto keys = UniformKeys(40, &rng);
  std::vector<double> weights(40);
  for (double& w : weights) w = 0.5 + rng.NextDouble();

  // chunk_size 1: every chunk is a single element.
  ChunkedRangeSampler unit_chunks(keys, weights, 1);
  // chunk_size >= n: the whole array is one chunk.
  ChunkedRangeSampler one_chunk(keys, weights, 100);
  for (const ChunkedRangeSampler* sampler : {&unit_chunks, &one_chunk}) {
    std::vector<size_t> out;
    sampler->QueryPositions(5, 33, 120000, &rng, &out);
    std::vector<uint64_t> counts(29, 0);
    for (size_t p : out) {
      ASSERT_GE(p, 5u);
      ASSERT_LE(p, 33u);
      ++counts[p - 5];
    }
    std::vector<double> range_weights(weights.begin() + 5,
                                      weights.begin() + 34);
    testing::ExpectDistributionClose(counts,
                                     testing::Normalize(range_weights));
  }
}

TEST(ChunkedRangeSamplerTest, SingleElementDataset) {
  Rng rng(10);
  ChunkedRangeSampler sampler(std::vector<double>{0.5},
                              std::vector<double>{3.0});
  std::vector<size_t> out;
  sampler.QueryPositions(0, 0, 7, &rng, &out);
  ASSERT_EQ(out.size(), 7u);
  for (size_t p : out) EXPECT_EQ(p, 0u);
}

TEST(RangeSamplerSpaceTest, ChunkingBeatsAugmentationAsymptotically) {
  // Theorem 3's point: O(n) vs O(n log n). At n = 2^16 the gap must be
  // clearly visible.
  Rng rng(8);
  const size_t n = 1 << 16;
  const auto keys = UniformKeys(n, &rng);
  const std::vector<double> weights(n, 1.0);
  AugRangeSampler aug(keys, weights);
  ChunkedRangeSampler chunked(keys, weights);
  EXPECT_LT(chunked.MemoryBytes() * 3, aug.MemoryBytes());
}

}  // namespace
}  // namespace iqs
