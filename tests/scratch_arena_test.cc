#include "iqs/util/scratch_arena.h"

#include <cstdint>
#include <cstring>
#include <numeric>
#include <vector>

#include "gtest/gtest.h"

namespace iqs {
namespace {

TEST(ScratchArenaTest, AllocReturnsWritableSpans) {
  ScratchArena arena(64);
  const auto a = arena.Alloc<double>(10);
  const auto b = arena.Alloc<uint32_t>(7);
  ASSERT_EQ(a.size(), 10u);
  ASSERT_EQ(b.size(), 7u);
  for (size_t i = 0; i < a.size(); ++i) a[i] = static_cast<double>(i);
  for (size_t i = 0; i < b.size(); ++i) b[i] = static_cast<uint32_t>(i);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], static_cast<double>(i));
  }
  for (size_t i = 0; i < b.size(); ++i) {
    EXPECT_EQ(b[i], static_cast<uint32_t>(i));
  }
}

TEST(ScratchArenaTest, SpansSurviveOverflowGrowth) {
  // Earlier spans must stay valid when a later Alloc overflows into a new
  // block (blocks are chained, not reallocated).
  ScratchArena arena(64);
  const auto first = arena.Alloc<uint64_t>(4);
  std::iota(first.begin(), first.end(), 100u);
  const auto big = arena.Alloc<uint64_t>(10000);  // forces overflow
  std::iota(big.begin(), big.end(), 0u);
  for (size_t i = 0; i < first.size(); ++i) EXPECT_EQ(first[i], 100u + i);
}

TEST(ScratchArenaTest, ZeroCountAllocIsEmpty) {
  ScratchArena arena;
  EXPECT_TRUE(arena.Alloc<double>(0).empty());
}

TEST(ScratchArenaTest, ResetReachesZeroSteadyStateAllocations) {
  ScratchArena arena(64);
  auto cycle = [&arena] {
    arena.Reset();
    arena.Alloc<double>(300);
    arena.Alloc<uint32_t>(50);
    arena.Alloc<uint64_t>(120);
  };
  cycle();  // grows
  cycle();  // first warm cycle may coalesce
  arena.Reset();
  const size_t warm_blocks = arena.blocks_allocated();
  const size_t warm_capacity = arena.capacity_bytes();
  for (int i = 0; i < 100; ++i) cycle();
  EXPECT_EQ(arena.blocks_allocated(), warm_blocks)
      << "steady-state cycles must not touch the heap";
  EXPECT_EQ(arena.capacity_bytes(), warm_capacity);
}

TEST(ScratchArenaTest, AlignmentRespected) {
  ScratchArena arena(64);
  arena.Alloc<uint8_t>(3);  // misalign the bump pointer
  const auto d = arena.Alloc<double>(2);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(d.data()) % alignof(double), 0u);
  arena.Alloc<uint8_t>(1);
  const auto u = arena.Alloc<uint64_t>(2);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(u.data()) % alignof(uint64_t), 0u);
}

}  // namespace
}  // namespace iqs
