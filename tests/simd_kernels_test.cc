// Scalar-vs-SIMD equivalence for the vector kernels (ISSUE: the SIMD
// backends are distribution-equivalent, not bit-identical, so every
// kernel is chi-squared against its law under EVERY available backend;
// the scalar backend is additionally pinned byte-for-byte against the
// historical consumption pattern).

#include <cstdint>
#include <vector>

#include "gtest/gtest.h"
#include "iqs/alias/alias_table.h"
#include "iqs/alias/quantized_alias.h"
#include "iqs/range/aug_range_sampler.h"
#include "iqs/range/static_bst.h"
#include "iqs/simd/dispatch.h"
#include "iqs/simd/kernels.h"
#include "iqs/util/rng.h"
#include "iqs/util/scratch_arena.h"
#include "test_util.h"

namespace iqs {
namespace {

std::vector<simd::Backend> AvailableBackends() {
  std::vector<simd::Backend> backends{simd::Backend::kScalar};
  if (simd::BackendAvailable(simd::Backend::kAvx2)) {
    backends.push_back(simd::Backend::kAvx2);
  }
  if (simd::BackendAvailable(simd::Backend::kNeon)) {
    backends.push_back(simd::Backend::kNeon);
  }
  return backends;
}

class ScopedBackend {
 public:
  explicit ScopedBackend(simd::Backend b) { simd::ForceBackend(b); }
  ~ScopedBackend() { simd::ClearForcedBackend(); }
};

std::vector<double> VariedWeights(size_t n) {
  std::vector<double> weights(n);
  for (size_t i = 0; i < n; ++i) {
    weights[i] = 0.25 + static_cast<double>((i * 7) % 13) +
                 (i % 5 == 0 ? 20.0 : 0.0);
  }
  return weights;
}

TEST(SimdDispatchTest, ActiveBackendIsAvailable) {
  EXPECT_TRUE(simd::BackendAvailable(simd::ActiveBackend()));
  EXPECT_TRUE(simd::BackendAvailable(simd::Backend::kScalar));
}

TEST(SimdDispatchTest, ForceBackendOverridesDetection) {
  for (simd::Backend b : AvailableBackends()) {
    ScopedBackend forced(b);
    EXPECT_EQ(simd::ActiveBackend(), b);
  }
  // Cleared: back to detection (whatever it is, it must be available).
  EXPECT_TRUE(simd::BackendAvailable(simd::ActiveBackend()));
}

TEST(SimdDispatchTest, BackendMaskNames) {
  using simd::Backend;
  EXPECT_EQ(simd::BackendMaskName(0), "none");
  EXPECT_EQ(simd::BackendMaskName(simd::BackendBit(Backend::kScalar)),
            "scalar");
  EXPECT_EQ(simd::BackendMaskName(simd::BackendBit(Backend::kAvx2)), "avx2");
  EXPECT_EQ(simd::BackendMaskName(simd::BackendBit(Backend::kScalar) |
                                  simd::BackendBit(Backend::kAvx2)),
            "scalar+avx2");
}

TEST(SimdKernelsTest, FillDoublesUniformEveryBackend) {
  constexpr size_t kBins = 16;
  constexpr size_t kDraws = 1 << 18;
  for (simd::Backend b : AvailableBackends()) {
    ScopedBackend forced(b);
    Rng rng(101);
    std::vector<double> buf(kDraws);
    rng.FillDoubles(buf);
    std::vector<uint64_t> counts(kBins, 0);
    for (double d : buf) {
      ASSERT_GE(d, 0.0);
      ASSERT_LT(d, 1.0);
      ++counts[static_cast<size_t>(d * kBins)];
    }
    testing::ExpectDistributionClose(
        counts, std::vector<double>(kBins, 1.0 / kBins));
  }
}

TEST(SimdKernelsTest, FillBelowUniformEveryBackend) {
  constexpr uint64_t kBound = 17;
  for (simd::Backend b : AvailableBackends()) {
    ScopedBackend forced(b);
    Rng rng(102);
    std::vector<uint64_t> buf(170000);
    rng.FillBelow(kBound, buf);
    std::vector<uint64_t> counts(kBound, 0);
    for (uint64_t v : buf) {
      ASSERT_LT(v, kBound);
      ++counts[v];
    }
    testing::ExpectDistributionClose(
        counts, std::vector<double>(kBound, 1.0 / kBound));
  }
}

TEST(SimdKernelsTest, FillBelowExercisesRejectionEveryBackend) {
  // Rejection probability just under 1/2: the vector path's patch lane
  // runs constantly.
  const uint64_t bound = (uint64_t{1} << 63) + 1;
  for (simd::Backend b : AvailableBackends()) {
    ScopedBackend forced(b);
    Rng rng(103);
    std::vector<uint64_t> buf(4096);
    rng.FillBelow(bound, buf);
    for (uint64_t v : buf) ASSERT_LT(v, bound);
  }
}

TEST(SimdKernelsTest, FillsDeterministicPerBackend) {
  for (simd::Backend b : AvailableBackends()) {
    ScopedBackend forced(b);
    Rng r1(104);
    Rng r2(104);
    std::vector<double> d1(1000);
    std::vector<double> d2(1000);
    r1.FillDoubles(d1);
    r2.FillDoubles(d2);
    EXPECT_EQ(d1, d2);
    std::vector<uint64_t> u1(1000);
    std::vector<uint64_t> u2(1000);
    r1.FillBelow(97, u1);
    r2.FillBelow(97, u2);
    EXPECT_EQ(u1, u2);
    // Generators stay in lockstep: the fills consumed the same state.
    EXPECT_EQ(r1.Next64(), r2.Next64());
  }
}

TEST(SimdKernelsTest, AliasSampleBlockMatchesWeightsEveryBackend) {
  const std::vector<double> weights = VariedWeights(37);
  AliasTable table(weights);
  for (simd::Backend b : AvailableBackends()) {
    ScopedBackend forced(b);
    Rng rng(105);
    std::vector<size_t> out;
    table.SampleMany(300000, &rng, &out);
    testing::ExpectSamplesMatchWeights(out, weights);
  }
}

TEST(SimdKernelsTest, AliasSampleTargetsMatchesWeightsEveryBackend) {
  // Heterogeneous pipeline: per-draw tables of different sizes plus null
  // (degenerate) draws, the exact shape of the cover-layer grouped draws.
  const std::vector<double> wa = VariedWeights(19);
  const std::vector<double> wb = VariedWeights(7);
  AliasTable table_a(wa);
  AliasTable table_b(wb);
  constexpr size_t kTotal = 300000;
  std::vector<const AliasTable*> tables(kTotal);
  std::vector<size_t> bases(kTotal);
  for (size_t i = 0; i < kTotal; ++i) {
    switch (i % 3) {
      case 0:
        tables[i] = &table_a;
        bases[i] = 0;
        break;
      case 1:
        tables[i] = &table_b;
        bases[i] = 100;
        break;
      default:
        tables[i] = nullptr;
        bases[i] = 1000;
    }
  }
  for (simd::Backend b : AvailableBackends()) {
    ScopedBackend forced(b);
    Rng rng(106);
    std::vector<size_t> out(kTotal);
    AliasTable::SampleTargets(tables, bases, &rng, out);
    std::vector<size_t> from_a;
    std::vector<size_t> from_b;
    for (size_t i = 0; i < kTotal; ++i) {
      switch (i % 3) {
        case 0:
          from_a.push_back(out[i]);
          break;
        case 1:
          ASSERT_GE(out[i], 100u);
          from_b.push_back(out[i] - 100);
          break;
        default:
          ASSERT_EQ(out[i], 1000u);  // null table: base passes through
      }
    }
    testing::ExpectSamplesMatchWeights(from_a, wa);
    testing::ExpectSamplesMatchWeights(from_b, wb);
  }
}

TEST(SimdKernelsTest, QuantizedSampleBlockMatchesWeightsEveryBackend) {
  // Quantization bias is ~2^-15 relative — far below what chi-square at
  // this sample count can detect, so the raw weights are the reference.
  const std::vector<double> weights = VariedWeights(23);
  QuantizedAlias table(weights);
  for (simd::Backend b : AvailableBackends()) {
    ScopedBackend forced(b);
    Rng rng(107);
    std::vector<size_t> out;
    table.SampleMany(230000, &rng, &out);
    testing::ExpectSamplesMatchWeights(out, weights);
  }
}

TEST(SimdKernelsTest, DescendToLeavesMatchesWeightsEveryBackend) {
  const std::vector<double> weights = VariedWeights(64);
  StaticBst tree(weights);
  for (simd::Backend b : AvailableBackends()) {
    ScopedBackend forced(b);
    Rng rng(108);
    ScratchArena arena;
    std::vector<size_t> out(200000);
    tree.SampleLeaves(tree.root(), &rng, &arena, out);
    testing::ExpectSamplesMatchWeights(out, weights);
  }
}

TEST(SimdKernelsTest, DescendToLeavesCountsStepsEveryBackend) {
  // Steps = lanes x passes for a perfect tree: with 64 leaves every lane
  // descends 6 levels, plus the final all-leaves pass that detects
  // termination — every backend must report the same count.
  const std::vector<double> weights(64, 1.0);
  StaticBst tree(weights);
  for (simd::Backend b : AvailableBackends()) {
    ScopedBackend forced(b);
    Rng rng(109);
    ScratchArena arena;
    std::vector<StaticBst::NodeId> lanes(4096, tree.root());
    const size_t steps = tree.DescendToLeaves(lanes, &rng, &arena);
    EXPECT_EQ(steps, 4096u * 7);
    for (StaticBst::NodeId leaf : lanes) EXPECT_TRUE(tree.IsLeaf(leaf));
  }
}

TEST(SimdKernelsTest, ScalarAliasBlockIsBitStable) {
  // The scalar backend must keep the historical randomness consumption
  // byte-for-byte: per 256-draw block, one FillBelow over the urns then
  // one FillDoubles of coins, resolved with SampleAt.
  ScopedBackend forced(simd::Backend::kScalar);
  const std::vector<double> weights = VariedWeights(31);
  AliasTable table(weights);
  Rng rng(110);
  Rng ref_rng(110);
  std::vector<size_t> out(1000);
  table.SampleBlock(&rng, 5, out);

  constexpr size_t kBlock = 256;
  uint64_t urn_idx[kBlock];
  double coin[kBlock];
  size_t done = 0;
  for (size_t i = 0; i < out.size();) {
    const size_t m = std::min(out.size() - i, kBlock);
    ref_rng.FillBelow(table.size(), std::span<uint64_t>(urn_idx, m));
    ref_rng.FillDoubles(std::span<double>(coin, m));
    for (size_t j = 0; j < m; ++j) {
      ASSERT_EQ(out[i + j], 5 + table.SampleAt(urn_idx[j], coin[j]));
    }
    i += m;
    done = i;
  }
  ASSERT_EQ(done, out.size());
  // And the generator advanced identically.
  EXPECT_EQ(rng.Next64(), ref_rng.Next64());
}

TEST(SimdKernelsTest, BatchLawHoldsUnderEveryBackend) {
  // Re-run the batch-vs-single-law check with each backend forced: the
  // full serving pipeline (cover split + grouped alias draws) must keep
  // the per-query law regardless of which kernels execute it.
  const std::vector<double> weights = VariedWeights(64);
  AugRangeSampler sampler(weights);
  for (simd::Backend b : AvailableBackends()) {
    ScopedBackend forced(b);
    Rng rng(111);
    ScratchArena arena;
    const PositionQuery queries[2] = {{5, 40, 120000}, {0, 63, 120000}};
    std::vector<size_t> out;
    sampler.QueryPositionsBatch(queries, &rng, &arena, &out);
    ASSERT_EQ(out.size(), 240000u);

    std::vector<double> w1(weights.size(), 0.0);
    for (size_t i = 5; i <= 40; ++i) w1[i] = weights[i];
    testing::ExpectSamplesMatchWeights(
        std::vector<size_t>(out.begin(), out.begin() + 120000), w1);
    testing::ExpectSamplesMatchWeights(
        std::vector<size_t>(out.begin() + 120000, out.end()), weights);
  }
}

}  // namespace
}  // namespace iqs
