// Tests for the micro-batching serving frontend (iqs/serve/frontend.h):
// round-trip correctness, deterministic flushed output across inner
// thread counts and window configs, drain/shutdown exactly-once
// completion, admission control (block and reject), deadline shedding,
// distribution through the batcher, and a churn stress over the
// versioned LogarithmicRangeSampler (the TSan target). The serve-layer
// redesign (multi-workload routing) adds: continuation-mode tickets (set_on_complete, including a
// continuation churn stress for TSan), workload routing with per-class
// stats and per-class determinism, ValidateServeOptions death tests (one
// per rejected config), and join traffic served as a second class via a
// JoinServeFrontend next to a range frontend in one process.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "iqs/join/join_sampler.h"
#include "iqs/multidim/point.h"
#include "iqs/range/chunked_range_sampler.h"
#include "iqs/range/logarithmic_range_sampler.h"
#include "iqs/serve/frontend.h"
#include "iqs/serve/serve_stats.h"
#include "iqs/serve/ticket.h"
#include "iqs/util/rng.h"
#include "iqs/util/thread_pool.h"
#include "test_util.h"

namespace iqs {
namespace serve {
namespace {

// A delay far past any test's runtime: these tests pin batch boundaries
// with the SIZE trigger (submit exactly max_batch, wait, repeat), so the
// time trigger must never fire.
constexpr uint64_t kNeverDelayNs = 30ull * 1000 * 1000 * 1000;

std::vector<double> MakeKeys(size_t n) {
  std::vector<double> keys(n);
  std::iota(keys.begin(), keys.end(), 0.0);
  return keys;
}

std::vector<double> MakeWeights(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> weights(n);
  for (double& w : weights) w = 0.25 + rng.NextDouble();
  return weights;
}

// Frontend over one ChunkedRangeSampler shard (the paper's Theorem 3
// structure — the batch backend every range test in the repo trusts).
ServeFrontend<BatchQuery, size_t, BatchResult>::BatchFn PositionBackend(
    const ChunkedRangeSampler* sampler) {
  return [sampler](size_t /*shard*/, std::span<const BatchQuery> queries,
                   Rng* rng, ScratchArena* arena, const BatchOptions& opts,
                   BatchResult* result) {
    sampler->QueryBatch(queries, rng, arena, opts, result);
  };
}

TEST(ServeFrontendTest, SingleQueryRoundTrip) {
  const std::vector<double> keys = MakeKeys(64);
  const std::vector<double> weights = MakeWeights(64, 1);
  const ChunkedRangeSampler sampler(keys, weights);

  ServeOptions options;
  options.max_batch = 8;
  options.max_delay_ns = 1000 * 1000;  // 1ms: the lone query flushes on time
  RangeServeFrontend frontend(options, PositionBackend(&sampler));

  ServeTicket<size_t> ticket;
  ASSERT_TRUE(frontend.Submit(0, BatchQuery{4.0, 40.0, 16}, &ticket));
  EXPECT_EQ(ticket.Wait(), ServeStatus::kOk);
  ASSERT_EQ(ticket.samples().size(), 16u);
  for (size_t position : ticket.samples()) {
    EXPECT_GE(position, 4u);
    EXPECT_LE(position, 40u);
  }
  EXPECT_GE(ticket.complete_ns(), ticket.submit_ns());

  frontend.Drain();
  const ServeShardStats stats = frontend.ShardStats(0);
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_GE(stats.batches_flushed, 1u);
}

TEST(ServeFrontendTest, EmptyIntervalCompletesEmpty) {
  const std::vector<double> keys = MakeKeys(16);
  const std::vector<double> weights = MakeWeights(16, 2);
  const ChunkedRangeSampler sampler(keys, weights);

  ServeOptions options;
  options.max_delay_ns = 1000 * 1000;
  RangeServeFrontend frontend(options, PositionBackend(&sampler));

  ServeTicket<size_t> ticket;
  ASSERT_TRUE(frontend.Submit(0, BatchQuery{100.0, 200.0, 8}, &ticket));
  EXPECT_EQ(ticket.Wait(), ServeStatus::kEmpty);
  EXPECT_TRUE(ticket.samples().empty());
}

// Collected terminal state of one run: (status, samples) per query, in
// submission order — the byte-identity unit of the determinism tests.
struct RunOutput {
  std::vector<ServeStatus> statuses;
  std::vector<std::vector<size_t>> samples;

  bool operator==(const RunOutput&) const = default;
};

// Submits `waves` waves of exactly options.max_batch queries from one
// producer, waiting out each wave before the next, so batch boundaries
// are pinned to [0,B), [B,2B), ... regardless of scheduling.
RunOutput RunPinnedWaves(const ServeOptions& options,
                         const ChunkedRangeSampler& sampler, size_t waves) {
  RangeServeFrontend frontend(options, PositionBackend(&sampler));
  RunOutput out;
  Rng query_rng(99);  // query CONTENT stream, independent of the frontend
  std::vector<std::unique_ptr<ServeTicket<size_t>>> tickets;
  for (size_t i = 0; i < options.max_batch; ++i) {
    tickets.push_back(std::make_unique<ServeTicket<size_t>>());
  }
  for (size_t wave = 0; wave < waves; ++wave) {
    for (size_t i = 0; i < options.max_batch; ++i) {
      tickets[i]->Reset();
      const double lo = query_rng.NextDouble() * 48.0;
      const double hi = lo + query_rng.NextDouble() * 16.0;
      const size_t s = 1 + (query_rng.Next64() % 7);
      EXPECT_TRUE(frontend.Submit(0, BatchQuery{lo, hi, s}, tickets[i].get()));
    }
    for (size_t i = 0; i < options.max_batch; ++i) {
      out.statuses.push_back(tickets[i]->Wait());
      out.samples.emplace_back(tickets[i]->samples());
    }
  }
  frontend.Drain();
  return out;
}

TEST(ServeFrontendTest, DeterministicAcrossInnerThreadCounts) {
  const std::vector<double> keys = MakeKeys(64);
  const std::vector<double> weights = MakeWeights(64, 3);
  const ChunkedRangeSampler sampler(keys, weights);

  std::vector<RunOutput> runs;
  for (size_t num_threads : {1u, 2u, 7u}) {
    ServeOptions options;
    options.max_batch = 16;
    options.max_delay_ns = kNeverDelayNs;
    options.seed = 4242;
    options.batch.num_threads = num_threads;
    runs.push_back(RunPinnedWaves(options, sampler, /*waves=*/4));
  }
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[0], runs[2]);
  // And the output is not vacuously empty.
  size_t total = 0;
  for (const std::vector<size_t>& s : runs[0].samples) total += s.size();
  EXPECT_GT(total, 0u);
}

TEST(ServeFrontendTest, DeterministicAcrossWindowConfigs) {
  const std::vector<double> keys = MakeKeys(64);
  const std::vector<double> weights = MakeWeights(64, 4);
  const ChunkedRangeSampler sampler(keys, weights);

  // Three configs that differ in everything EXCEPT what determines the
  // batch boundaries (max_batch, and the wave submission pattern): the
  // time window, queue bound, admission policy, and the deadline budget
  // (generous enough never to shed) must all be invisible in the output.
  ServeOptions a;
  a.max_batch = 8;
  a.max_delay_ns = kNeverDelayNs;
  a.seed = 777;

  ServeOptions b = a;
  b.max_delay_ns = 2 * kNeverDelayNs;
  b.queue_capacity = 64;
  b.admission = AdmissionPolicy::kReject;

  ServeOptions c = a;
  c.deadline_ns = kNeverDelayNs;

  const RunOutput ra = RunPinnedWaves(a, sampler, /*waves=*/6);
  const RunOutput rb = RunPinnedWaves(b, sampler, /*waves=*/6);
  const RunOutput rc = RunPinnedWaves(c, sampler, /*waves=*/6);
  EXPECT_EQ(ra, rb);
  EXPECT_EQ(ra, rc);
}

TEST(ServeFrontendTest, DrainCompletesEveryTicketExactlyOnce) {
  const std::vector<double> keys = MakeKeys(32);
  const std::vector<double> weights = MakeWeights(32, 5);
  const ChunkedRangeSampler sampler(keys, weights);

  constexpr size_t kProducers = 4;
  constexpr size_t kPerProducer = 200;

  ServeOptions options;
  options.num_shards = 2;
  options.max_batch = 32;
  options.max_delay_ns = 20 * 1000;
  {
    RangeServeFrontend frontend(options, PositionBackend(&sampler));
    std::vector<std::vector<ServeTicket<size_t>>> tickets(kProducers);
    for (auto& row : tickets) row = std::vector<ServeTicket<size_t>>(
        kPerProducer);
    std::vector<std::thread> producers;
    for (size_t p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        for (size_t i = 0; i < kPerProducer; ++i) {
          // Producers race the main thread's Drain below: a submit either
          // admits (its ticket then MUST complete) or reports rejection.
          frontend.Submit((p + i) % options.num_shards,
                          BatchQuery{2.0, 28.0, 3}, &tickets[p][i]);
        }
      });
    }
    // Drain concurrently with live producers — the hard half of the
    // shutdown contract. (Drain blocks until queues are empty.)
    frontend.Drain();
    for (std::thread& t : producers) t.join();

    uint64_t ok = 0, rejected = 0;
    for (const auto& row : tickets) {
      for (const ServeTicket<size_t>& ticket : row) {
        const ServeStatus status = ticket.status();
        // Nothing may still be pending after Drain + producer join: every
        // future is lost-or-completed exactly once, and ServeTicket
        // aborts on double completion, so terminal status here IS the
        // exactly-once proof.
        ASSERT_NE(status, ServeStatus::kPending);
        if (status == ServeStatus::kOk) {
          ok += 1;
          EXPECT_EQ(ticket.samples().size(), 3u);
        } else {
          ASSERT_EQ(status, ServeStatus::kRejected);
          rejected += 1;
        }
      }
    }
    EXPECT_EQ(ok + rejected, kProducers * kPerProducer);
    const ServeShardStats stats = frontend.MergedStats();
    EXPECT_EQ(stats.submitted, ok);
    EXPECT_EQ(stats.completed, ok);
    EXPECT_EQ(stats.rejected, rejected);
    EXPECT_EQ(stats.shed, 0u);
  }
}

TEST(ServeFrontendTest, DrainIsIdempotentAndDestructorSafe) {
  const std::vector<double> keys = MakeKeys(8);
  const std::vector<double> weights = MakeWeights(8, 6);
  const ChunkedRangeSampler sampler(keys, weights);

  ServeOptions options;
  RangeServeFrontend frontend(options, PositionBackend(&sampler));
  frontend.Drain();
  frontend.Drain();
  ServeTicket<size_t> ticket;
  EXPECT_FALSE(frontend.Submit(0, BatchQuery{0.0, 7.0, 1}, &ticket));
  EXPECT_EQ(ticket.status(), ServeStatus::kRejected);
  // Destructor drains again on scope exit — must be a no-op.
}

// Test rig whose backend parks inside the batch callback until released,
// so admission tests can fill the queue deterministically.
class GatedBackend {
 public:
  void Release() {
    std::lock_guard<std::mutex> lock(mu_);
    released_ = true;
    cv_.notify_all();
  }

  void AwaitEntered() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return entered_; });
  }

  RangeServeFrontend::BatchFn Wrap(const ChunkedRangeSampler* sampler) {
    return [this, sampler](size_t /*shard*/,
                           std::span<const BatchQuery> queries, Rng* rng,
                           ScratchArena* arena, const BatchOptions& opts,
                           BatchResult* result) {
      {
        std::unique_lock<std::mutex> lock(mu_);
        entered_ = true;
        cv_.notify_all();
        cv_.wait(lock, [&] { return released_; });
      }
      sampler->QueryBatch(queries, rng, arena, opts, result);
    };
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool entered_ = false;
  bool released_ = false;
};

TEST(ServeFrontendTest, RejectPolicyShedsAtTheDoorWhenFull) {
  const std::vector<double> keys = MakeKeys(16);
  const std::vector<double> weights = MakeWeights(16, 7);
  const ChunkedRangeSampler sampler(keys, weights);

  GatedBackend gate;
  ServeOptions options;
  options.max_batch = 2;
  options.queue_capacity = 4;
  options.max_delay_ns = 1;  // flush immediately; the gate does the pacing
  options.admission = AdmissionPolicy::kReject;
  RangeServeFrontend frontend(options, gate.Wrap(&sampler));

  // First submit enters a batch and parks the worker inside the backend.
  ServeTicket<size_t> parked;
  ASSERT_TRUE(frontend.Submit(0, BatchQuery{1.0, 14.0, 2}, &parked));
  gate.AwaitEntered();

  // With the worker parked, the queue admits exactly queue_capacity more;
  // the next submit must be rejected immediately (no blocking).
  std::vector<ServeTicket<size_t>> queued(options.queue_capacity);
  for (ServeTicket<size_t>& ticket : queued) {
    ASSERT_TRUE(frontend.Submit(0, BatchQuery{1.0, 14.0, 2}, &ticket));
  }
  ServeTicket<size_t> overflow;
  EXPECT_FALSE(frontend.Submit(0, BatchQuery{1.0, 14.0, 2}, &overflow));
  EXPECT_EQ(overflow.status(), ServeStatus::kRejected);

  gate.Release();
  EXPECT_EQ(parked.Wait(), ServeStatus::kOk);
  for (ServeTicket<size_t>& ticket : queued) {
    EXPECT_EQ(ticket.Wait(), ServeStatus::kOk);
  }
  frontend.Drain();
  const ServeShardStats stats = frontend.ShardStats(0);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.queue_depth_hwm, options.queue_capacity);
}

TEST(ServeFrontendTest, BlockPolicyAppliesBackpressure) {
  const std::vector<double> keys = MakeKeys(16);
  const std::vector<double> weights = MakeWeights(16, 8);
  const ChunkedRangeSampler sampler(keys, weights);

  GatedBackend gate;
  ServeOptions options;
  options.max_batch = 2;
  options.queue_capacity = 2;
  options.max_delay_ns = 1;
  options.admission = AdmissionPolicy::kBlock;
  RangeServeFrontend frontend(options, gate.Wrap(&sampler));

  ServeTicket<size_t> parked;
  ASSERT_TRUE(frontend.Submit(0, BatchQuery{1.0, 14.0, 2}, &parked));
  gate.AwaitEntered();

  // Fill the queue, then submit one more from a side thread: it must
  // BLOCK (not reject) until the gate releases and the worker drains.
  std::vector<ServeTicket<size_t>> queued(options.queue_capacity);
  for (ServeTicket<size_t>& ticket : queued) {
    ASSERT_TRUE(frontend.Submit(0, BatchQuery{1.0, 14.0, 2}, &ticket));
  }
  ServeTicket<size_t> blocked;
  std::atomic<bool> admitted{false};
  std::thread producer([&] {
    EXPECT_TRUE(frontend.Submit(0, BatchQuery{1.0, 14.0, 2}, &blocked));
    admitted.store(true);
  });
  // The producer cannot have been admitted while the queue is full.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(admitted.load());

  gate.Release();
  producer.join();
  EXPECT_TRUE(admitted.load());
  EXPECT_EQ(blocked.Wait(), ServeStatus::kOk);
  frontend.Drain();
  EXPECT_EQ(frontend.ShardStats(0).rejected, 0u);
}

TEST(ServeFrontendTest, DeadlineShedsStaleQueries) {
  // A 1ns budget is unmeetable — even an instant flush observes more
  // queue time than that — so every query must complete kShed and the
  // backend must never run (an all-shed flush skips the batch call).
  std::atomic<bool> backend_ran{false};
  ServeOptions options;
  options.max_batch = 4;
  options.max_delay_ns = 1;
  options.deadline_ns = 1;
  RangeServeFrontend frontend(
      options, [&backend_ran](size_t /*shard*/,
                              std::span<const BatchQuery> /*queries*/,
                              Rng* /*rng*/, ScratchArena* /*arena*/,
                              const BatchOptions& /*opts*/,
                              BatchResult* /*result*/) {
        backend_ran.store(true);
      });

  std::vector<ServeTicket<size_t>> stale(8);
  for (ServeTicket<size_t>& ticket : stale) {
    ASSERT_TRUE(frontend.Submit(0, BatchQuery{1.0, 14.0, 2}, &ticket));
  }
  for (ServeTicket<size_t>& ticket : stale) {
    EXPECT_EQ(ticket.Wait(), ServeStatus::kShed);
    EXPECT_TRUE(ticket.samples().empty());
  }
  frontend.Drain();
  EXPECT_FALSE(backend_ran.load());
  const ServeShardStats stats = frontend.ShardStats(0);
  EXPECT_EQ(stats.shed, 8u);
  EXPECT_EQ(stats.completed, 0u);
  // Shed queries still contribute their queue time to the histogram —
  // that time is exactly why they were shed.
  EXPECT_EQ(stats.time_in_queue_ns.count(), 8u);
}

TEST(ServeFrontendTest, DistributionThroughTheBatcherMatchesWeights) {
  constexpr size_t kN = 8;
  const std::vector<double> keys = MakeKeys(kN);
  std::vector<double> weights(kN);
  for (size_t i = 0; i < kN; ++i) weights[i] = 1.0 + static_cast<double>(i);
  const ChunkedRangeSampler sampler(keys, weights);

  ServeOptions options;
  options.max_batch = 64;
  options.max_delay_ns = kNeverDelayNs;
  options.seed = 31337;
  RangeServeFrontend frontend(options, PositionBackend(&sampler));

  // Micro-batching must be distribution-neutral: per-query draws through
  // the frontend are i.i.d. from the same law as direct sampling.
  std::vector<size_t> samples;
  std::vector<ServeTicket<size_t>> tickets(options.max_batch);
  constexpr size_t kWaves = 24;
  constexpr size_t kPerQuery = 40;
  for (size_t wave = 0; wave < kWaves; ++wave) {
    for (ServeTicket<size_t>& ticket : tickets) {
      ticket.Reset();
      ASSERT_TRUE(frontend.Submit(
          0, BatchQuery{0.0, static_cast<double>(kN - 1), kPerQuery},
          &ticket));
    }
    for (ServeTicket<size_t>& ticket : tickets) {
      ASSERT_EQ(ticket.Wait(), ServeStatus::kOk);
      samples.insert(samples.end(), ticket.samples().begin(),
                     ticket.samples().end());
    }
  }
  ASSERT_EQ(samples.size(), kWaves * options.max_batch * kPerQuery);
  iqs::testing::ExpectSamplesMatchWeights(samples, weights);
}

TEST(ServeFrontendTest, StatsBatchSizeNeverExceedsWindow) {
  const std::vector<double> keys = MakeKeys(32);
  const std::vector<double> weights = MakeWeights(32, 10);
  const ChunkedRangeSampler sampler(keys, weights);

  ServeOptions options;
  options.max_batch = 16;
  options.max_delay_ns = 5 * 1000;
  // A nonzero BatchOptions::max_batch arms the executor-side IQS_CHECK,
  // so an oversized flush would abort inside the backend as well.
  RangeServeFrontend frontend(options, PositionBackend(&sampler));

  std::vector<ServeTicket<size_t>> tickets(300);
  for (ServeTicket<size_t>& ticket : tickets) {
    ASSERT_TRUE(frontend.Submit(0, BatchQuery{4.0, 28.0, 2}, &ticket));
  }
  for (ServeTicket<size_t>& ticket : tickets) {
    EXPECT_EQ(ticket.Wait(), ServeStatus::kOk);
  }
  frontend.Drain();
  const ServeShardStats stats = frontend.ShardStats(0);
  EXPECT_LE(stats.batch_size.max_ns(), options.max_batch);
  EXPECT_EQ(stats.batch_size.sum_ns(), tickets.size());
  EXPECT_EQ(stats.time_in_batch_ns.count(), stats.batches_flushed);
  // Coalescing happened at all (not 300 batches of one).
  EXPECT_LT(stats.batches_flushed, tickets.size());
}

// The TSan workhorse: multi-producer traffic over the versioned
// LogarithmicRangeSampler while a writer inserts concurrently — the full
// PR-6 epoch path under the frontend, every layer racing by design.
TEST(ServeFrontendTest, ChurnStressOverVersionedSampler) {
  LogarithmicRangeSampler sampler;
  for (size_t i = 0; i < 512; ++i) {
    sampler.Insert(static_cast<double>(i), 1.0 + (i % 7));
  }

  ServeOptions options;
  options.num_shards = 2;
  options.max_batch = 32;
  options.max_delay_ns = 20 * 1000;
  options.batch.num_threads = 2;
  KeyServeFrontend frontend(
      options,
      [&sampler](size_t /*shard*/, std::span<const KeyBatchQuery> queries,
                 Rng* rng, ScratchArena* arena, const BatchOptions& opts,
                 KeyBatchResult* result) {
        sampler.QueryBatch(queries, rng, arena, opts, result);
      });

  std::atomic<bool> stop_writer{false};
  std::thread writer([&] {
    double next_key = 10000.0;
    while (!stop_writer.load(std::memory_order_relaxed)) {
      sampler.Insert(next_key, 2.0);
      next_key += 1.0;
      std::this_thread::yield();
    }
  });

  constexpr size_t kProducers = 3;
  constexpr size_t kPerProducer = 400;
  std::vector<std::vector<ServeTicket<double>>> tickets(kProducers);
  for (auto& row : tickets) row = std::vector<ServeTicket<double>>(
      kPerProducer);
  std::vector<std::thread> producers;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      Rng rng(1000 + p);
      for (size_t i = 0; i < kPerProducer; ++i) {
        const double lo = rng.NextDouble() * 400.0;
        const KeyBatchQuery query{lo, lo + 64.0, 4};
        ASSERT_TRUE(frontend.Submit(i % options.num_shards, query,
                                    &tickets[p][i]));
      }
    });
  }
  for (std::thread& t : producers) t.join();
  frontend.Drain();
  stop_writer.store(true, std::memory_order_relaxed);
  writer.join();

  uint64_t ok = 0;
  for (const auto& row : tickets) {
    for (const ServeTicket<double>& ticket : row) {
      const ServeStatus status = ticket.status();
      ASSERT_TRUE(status == ServeStatus::kOk || status == ServeStatus::kEmpty);
      if (status == ServeStatus::kOk) {
        ok += 1;
        ASSERT_EQ(ticket.samples().size(), 4u);
      }
    }
  }
  EXPECT_GT(ok, 0u);
  const ServeShardStats stats = frontend.MergedStats();
  EXPECT_EQ(stats.submitted, kProducers * kPerProducer);
  EXPECT_EQ(stats.completed, kProducers * kPerProducer);
  // Exporters must serialize whatever the run produced.
  EXPECT_FALSE(ServeStatsToJson(stats).empty());
  EXPECT_FALSE(ServeStatsToText(stats).empty());
}

// --------------------------------------------------------------------
// Continuation mode: ServeTicket::set_on_complete.

TEST(ServeTicketTest, OnCompleteDeliversWithoutWait) {
  const std::vector<double> keys = MakeKeys(32);
  const std::vector<double> weights = MakeWeights(32, 11);
  const ChunkedRangeSampler sampler(keys, weights);

  ServeOptions options;
  options.max_delay_ns = 1000 * 1000;
  RangeServeFrontend frontend(options, PositionBackend(&sampler));

  std::atomic<uint32_t> fires{0};
  ServeTicket<size_t> ticket;
  ticket.set_on_complete([&fires](const ServeTicket<size_t>& t) {
    // The terminal state is published before the hook runs: status and
    // samples must already be readable here, with no Wait anywhere.
    EXPECT_EQ(t.status(), ServeStatus::kOk);
    EXPECT_EQ(t.samples().size(), 5u);
    for (size_t position : t.samples()) {
      EXPECT_GE(position, 2u);
      EXPECT_LE(position, 30u);
    }
    EXPECT_GE(t.complete_ns(), t.submit_ns());
    fires.fetch_add(1, std::memory_order_release);
    fires.notify_all();
  });
  ASSERT_TRUE(frontend.Submit(0, BatchQuery{2.0, 30.0, 5}, &ticket));
  fires.wait(0, std::memory_order_acquire);  // the hook IS the signal
  EXPECT_EQ(fires.load(std::memory_order_acquire), 1u);
  frontend.Drain();
  // Exactly once: drain re-fires nothing, and the ticket stayed terminal.
  EXPECT_EQ(fires.load(std::memory_order_acquire), 1u);
  EXPECT_EQ(ticket.status(), ServeStatus::kOk);
}

TEST(ServeTicketTest, OnCompleteSurvivesResetAcrossResubmits) {
  const std::vector<double> keys = MakeKeys(32);
  const std::vector<double> weights = MakeWeights(32, 12);
  const ChunkedRangeSampler sampler(keys, weights);

  ServeOptions options;
  options.max_delay_ns = 1000 * 1000;
  RangeServeFrontend frontend(options, PositionBackend(&sampler));

  // Armed ONCE; Reset must keep the continuation armed, so a reusable
  // ticket pays the std::function setup per ticket, not per submit.
  std::atomic<uint32_t> fires{0};
  ServeTicket<size_t> ticket;
  ticket.set_on_complete([&fires](const ServeTicket<size_t>& t) {
    EXPECT_NE(t.status(), ServeStatus::kPending);
    fires.fetch_add(1, std::memory_order_relaxed);
  });
  constexpr uint32_t kWaves = 8;
  for (uint32_t wave = 0; wave < kWaves; ++wave) {
    if (wave > 0) ticket.Reset();
    ASSERT_TRUE(frontend.Submit(0, BatchQuery{1.0, 30.0, 3}, &ticket));
    // Blocking and continuation modes compose: Wait paces the loop, the
    // hook fired inside the same Complete that Wait observed.
    EXPECT_EQ(ticket.Wait(), ServeStatus::kOk);
  }
  frontend.Drain();
  EXPECT_EQ(fires.load(std::memory_order_relaxed), kWaves);
}

TEST(ServeTicketTest, OnCompleteOnRejectionRunsOnSubmittingThread) {
  const std::vector<double> keys = MakeKeys(8);
  const std::vector<double> weights = MakeWeights(8, 13);
  const ChunkedRangeSampler sampler(keys, weights);

  ServeOptions options;
  RangeServeFrontend frontend(options, PositionBackend(&sampler));
  frontend.Drain();  // admission now rejects everything

  uint32_t fires = 0;
  std::thread::id hook_thread;
  ServeTicket<size_t> ticket;
  ticket.set_on_complete([&](const ServeTicket<size_t>& t) {
    EXPECT_EQ(t.status(), ServeStatus::kRejected);
    EXPECT_TRUE(t.samples().empty());
    hook_thread = std::this_thread::get_id();
    fires += 1;
  });
  // A rejected submit completes the ticket synchronously, so the hook has
  // run (on THIS thread) by the time Submit returns — no atomics needed.
  EXPECT_FALSE(frontend.Submit(0, BatchQuery{0.0, 7.0, 1}, &ticket));
  EXPECT_EQ(fires, 1u);
  EXPECT_EQ(hook_thread, std::this_thread::get_id());
}

// Continuation-mode twin of DrainCompletesEveryTicketExactlyOnce, and a
// TSan target: producers race Drain with hooks armed, so completions fire
// from shard workers (flushed) and producer threads (rejected) while the
// counters they touch are shared.
TEST(ServeFrontendTest, OnCompleteChurnDeliversEveryTicketExactlyOnce) {
  const std::vector<double> keys = MakeKeys(32);
  const std::vector<double> weights = MakeWeights(32, 14);
  const ChunkedRangeSampler sampler(keys, weights);

  constexpr size_t kProducers = 4;
  constexpr size_t kPerProducer = 200;

  ServeOptions options;
  options.num_shards = 2;
  options.max_batch = 32;
  options.max_delay_ns = 20 * 1000;
  std::atomic<uint64_t> ok{0};
  std::atomic<uint64_t> rejected{0};
  {
    RangeServeFrontend frontend(options, PositionBackend(&sampler));
    // Warmup wave from this thread, waited out BEFORE the race below (the
    // race may reject everything): guarantees the worker-side hook path
    // runs, not just the submitter-side rejection path.
    constexpr size_t kWarmup = 8;
    std::vector<ServeTicket<size_t>> warmup(kWarmup);
    for (ServeTicket<size_t>& ticket : warmup) {
      ticket.set_on_complete([&ok](const ServeTicket<size_t>& t) {
        EXPECT_EQ(t.status(), ServeStatus::kOk);
        ok.fetch_add(1, std::memory_order_relaxed);
      });
      ASSERT_TRUE(frontend.Submit(0, BatchQuery{2.0, 28.0, 3}, &ticket));
    }
    for (ServeTicket<size_t>& ticket : warmup) {
      ASSERT_EQ(ticket.Wait(), ServeStatus::kOk);
    }
    EXPECT_EQ(ok.load(std::memory_order_relaxed), kWarmup);

    std::vector<std::vector<ServeTicket<size_t>>> tickets(kProducers);
    for (auto& row : tickets) row = std::vector<ServeTicket<size_t>>(
        kPerProducer);
    std::vector<std::thread> producers;
    for (size_t p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        for (size_t i = 0; i < kPerProducer; ++i) {
          ServeTicket<size_t>& ticket = tickets[p][i];
          ticket.set_on_complete([&ok, &rejected](
                                     const ServeTicket<size_t>& t) {
            if (t.status() == ServeStatus::kOk) {
              ok.fetch_add(1, std::memory_order_relaxed);
            } else {
              EXPECT_EQ(t.status(), ServeStatus::kRejected);
              rejected.fetch_add(1, std::memory_order_relaxed);
            }
          });
          frontend.Submit((p + i) % options.num_shards,
                          BatchQuery{2.0, 28.0, 3}, &ticket);
        }
      });
    }
    frontend.Drain();  // races the producers, as in the blocking twin
    for (std::thread& t : producers) t.join();
  }  // destructor drains again; any re-completion would abort
  // Every ticket fired its continuation exactly once (per-ticket
  // double-fire would have aborted inside Complete; a lost one would
  // leave the sum short).
  EXPECT_EQ(ok.load() + rejected.load(), kProducers * kPerProducer + 8);
  EXPECT_GE(ok.load(), 8u);  // at least the warmup completed kOk
}

// --------------------------------------------------------------------
// Workload routing: one frontend, many traffic classes.

// A backend whose output is unmistakable: every sample is `value`.
RangeServeFrontend::BatchFn ConstantBackend(size_t value) {
  return [value](size_t /*shard*/, std::span<const BatchQuery> queries,
                 Rng* /*rng*/, ScratchArena* /*arena*/,
                 const BatchOptions& /*opts*/, BatchResult* result) {
    result->Clear();
    result->offsets.push_back(0);
    for (const BatchQuery& query : queries) {
      for (size_t i = 0; i < query.s; ++i) result->positions.push_back(value);
      result->offsets.push_back(result->positions.size());
      result->resolved.push_back(1);
    }
  };
}

TEST(ServeFrontendTest, WorkloadRoutingRoutesClassesToTheirBackends) {
  const std::vector<double> keys = MakeKeys(32);
  const std::vector<double> weights = MakeWeights(32, 15);
  const ChunkedRangeSampler sampler(keys, weights);

  constexpr size_t kMarker = 777;  // far outside the sampler's key space
  ServeOptions options;
  options.max_delay_ns = 1000 * 1000;
  RangeServeFrontend frontend(
      options, {PositionBackend(&sampler), ConstantBackend(kMarker)});
  ASSERT_EQ(frontend.num_workloads(), 2u);

  constexpr size_t kEach = 24;
  std::vector<ServeTicket<size_t>> sampled(kEach);
  std::vector<ServeTicket<size_t>> marked(kEach);
  for (size_t i = 0; i < kEach; ++i) {
    // Interleaved into ONE shard queue: the flush must de-interleave by
    // class, not by arrival.
    ASSERT_TRUE(frontend.Submit(0, 0, BatchQuery{2.0, 28.0, 4}, &sampled[i]));
    ASSERT_TRUE(frontend.Submit(0, 1, BatchQuery{2.0, 28.0, 4}, &marked[i]));
  }
  for (size_t i = 0; i < kEach; ++i) {
    ASSERT_EQ(sampled[i].Wait(), ServeStatus::kOk);
    for (size_t position : sampled[i].samples()) {
      EXPECT_GE(position, 2u);
      EXPECT_LE(position, 28u);
    }
    ASSERT_EQ(marked[i].Wait(), ServeStatus::kOk);
    ASSERT_EQ(marked[i].samples().size(), 4u);
    for (size_t position : marked[i].samples()) EXPECT_EQ(position, kMarker);
  }
  frontend.Drain();

  // Per-class splits carry their own counters; the aggregate still sees
  // the union (so pre-routing dashboards keep working unchanged).
  const ServeShardStats w0 = frontend.WorkloadStats(0, 0);
  const ServeShardStats w1 = frontend.WorkloadStats(0, 1);
  const ServeShardStats all = frontend.ShardStats(0);
  EXPECT_EQ(w0.submitted, kEach);
  EXPECT_EQ(w1.submitted, kEach);
  EXPECT_EQ(w0.completed, kEach);
  EXPECT_EQ(w1.completed, kEach);
  EXPECT_EQ(w0.rejected + w1.rejected, 0u);
  EXPECT_GE(w0.batches_flushed, 1u);
  EXPECT_GE(w1.batches_flushed, 1u);
  EXPECT_EQ(all.submitted, 2 * kEach);
  EXPECT_EQ(all.completed, 2 * kEach);
  EXPECT_EQ(all.batches_flushed, w0.batches_flushed + w1.batches_flushed);
  EXPECT_EQ(w0.batch_size.sum_ns() + w1.batch_size.sum_ns(),
            all.batch_size.sum_ns());
  // One shard: the merged view IS the shard view, per class.
  EXPECT_EQ(frontend.MergedWorkloadStats(0), w0);
  EXPECT_EQ(frontend.MergedWorkloadStats(1), w1);
}

// RunPinnedWaves over a two-class routing table: each wave interleaves
// both workloads into pinned boundaries, collecting outputs per class.
RunOutput RunRoutedPinnedWaves(const ServeOptions& options,
                               const ChunkedRangeSampler& sampler_a,
                               const ChunkedRangeSampler& sampler_b,
                               size_t waves) {
  RangeServeFrontend frontend(
      options, {PositionBackend(&sampler_a), PositionBackend(&sampler_b)});
  RunOutput out;
  Rng query_rng(99);
  std::vector<std::unique_ptr<ServeTicket<size_t>>> tickets;
  for (size_t i = 0; i < options.max_batch; ++i) {
    tickets.push_back(std::make_unique<ServeTicket<size_t>>());
  }
  for (size_t wave = 0; wave < waves; ++wave) {
    for (size_t i = 0; i < options.max_batch; ++i) {
      tickets[i]->Reset();
      const double lo = query_rng.NextDouble() * 48.0;
      const double hi = lo + query_rng.NextDouble() * 16.0;
      const size_t s = 1 + (query_rng.Next64() % 7);
      EXPECT_TRUE(frontend.Submit(0, i % 2, BatchQuery{lo, hi, s},
                                  tickets[i].get()));
    }
    for (size_t i = 0; i < options.max_batch; ++i) {
      out.statuses.push_back(tickets[i]->Wait());
      out.samples.emplace_back(tickets[i]->samples());
    }
  }
  frontend.Drain();
  return out;
}

TEST(ServeFrontendTest, RoutedFlushesDeterministicAcrossInnerThreadCounts) {
  const std::vector<double> keys = MakeKeys(64);
  const ChunkedRangeSampler sampler_a(keys, MakeWeights(64, 16));
  const ChunkedRangeSampler sampler_b(keys, MakeWeights(64, 17));

  // Per-class determinism: with routing in the path, flushed output must
  // still be byte-identical across inner thread counts (each class's
  // stream is a function of its own batch boundaries alone).
  std::vector<RunOutput> runs;
  for (size_t num_threads : {1u, 2u, 7u}) {
    ServeOptions options;
    options.max_batch = 16;
    options.max_delay_ns = kNeverDelayNs;
    options.seed = 2718;
    options.batch.num_threads = num_threads;
    runs.push_back(
        RunRoutedPinnedWaves(options, sampler_a, sampler_b, /*waves=*/4));
  }
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[0], runs[2]);
  size_t total = 0;
  for (const std::vector<size_t>& s : runs[0].samples) total += s.size();
  EXPECT_GT(total, 0u);
}

// --------------------------------------------------------------------
// Join traffic as a second class: two frontends, one process — the
// cross-type-family routing story from the frontend header. Range
// queries flow through a RangeServeFrontend while join queries flow
// through a JoinServeFrontend over a JoinSampler, each micro-batching
// independently.

TEST(ServeFrontendTest, JoinWorkloadServedAsSecondTrafficClass) {
  Rng rect_rng(0x5eed);
  auto random_rects = [&rect_rng](size_t n) {
    std::vector<multidim::Rect> rects(n);
    for (multidim::Rect& rect : rects) {
      rect.x_lo = rect_rng.NextDouble() * 80.0;
      rect.x_hi = rect.x_lo + rect_rng.NextDouble() * 30.0;
      rect.y_lo = rect_rng.NextDouble() * 80.0;
      rect.y_hi = rect.y_lo + rect_rng.NextDouble() * 30.0;
    }
    return rects;
  };
  const std::vector<multidim::Rect> rel_r = random_rects(48);
  const std::vector<multidim::Rect> rel_s = random_rects(48);
  const join::JoinSampler join_sampler(rel_r, rel_s);
  ASSERT_GT(join_sampler.JoinSize(), 0u);

  const std::vector<double> keys = MakeKeys(32);
  const std::vector<double> weights = MakeWeights(32, 18);
  const ChunkedRangeSampler range_sampler(keys, weights);

  ServeOptions options;
  options.max_delay_ns = 1000 * 1000;
  RangeServeFrontend range_frontend(options, PositionBackend(&range_sampler));
  JoinServeFrontend join_frontend(
      options,
      [&join_sampler](size_t /*shard*/,
                      std::span<const join::JoinBatchQuery> queries, Rng* rng,
                      ScratchArena* arena, const BatchOptions& opts,
                      join::JoinBatchResult* result) {
        join_sampler.SampleJoinBatch(queries, rng, arena, opts, result);
      });

  constexpr size_t kEach = 16;
  std::vector<ServeTicket<size_t>> range_tickets(kEach);
  std::vector<ServeTicket<join::JoinPair>> join_tickets(kEach);
  for (size_t i = 0; i < kEach; ++i) {
    ASSERT_TRUE(range_frontend.Submit(0, BatchQuery{2.0, 28.0, 4},
                                      &range_tickets[i]));
    ASSERT_TRUE(
        join_frontend.Submit(0, join::JoinBatchQuery{5}, &join_tickets[i]));
  }
  for (size_t i = 0; i < kEach; ++i) {
    ASSERT_EQ(range_tickets[i].Wait(), ServeStatus::kOk);
    EXPECT_EQ(range_tickets[i].samples().size(), 4u);
    ASSERT_EQ(join_tickets[i].Wait(), ServeStatus::kOk);
    ASSERT_EQ(join_tickets[i].samples().size(), 5u);
    for (const join::JoinPair& pair : join_tickets[i].samples()) {
      ASSERT_LT(pair.r_id, rel_r.size());
      ASSERT_LT(pair.s_id, rel_s.size());
      // Every served pair really is in the join result.
      EXPECT_TRUE(rel_r[pair.r_id].Intersects(rel_s[pair.s_id]));
    }
  }
  range_frontend.Drain();
  join_frontend.Drain();
  EXPECT_EQ(join_frontend.MergedStats().completed, kEach);
  EXPECT_EQ(range_frontend.MergedStats().completed, kEach);
}

// --------------------------------------------------------------------
// ServeOptions validation: one regression test per rejected config. The
// library has no exceptions — a bad config aborts via IQS_CHECK at the
// construction site, so these are death tests on the validator (and one
// on the constructor itself, proving it validates).

TEST(ServeOptionsDeathTest, RejectsZeroShards) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ServeOptions options;
  options.num_shards = 0;
  EXPECT_DEATH(ValidateServeOptions(options), "num_shards >= 1");
}

TEST(ServeOptionsDeathTest, RejectsZeroMaxBatch) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ServeOptions options;
  options.max_batch = 0;
  EXPECT_DEATH(ValidateServeOptions(options), "max_batch >= 1");
}

TEST(ServeOptionsDeathTest, RejectsZeroMaxDelay) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ServeOptions options;
  options.max_delay_ns = 0;
  EXPECT_DEATH(ValidateServeOptions(options), "max_delay_ns >= 1");
}

TEST(ServeOptionsDeathTest, RejectsQueueSmallerThanWindow) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ServeOptions options;
  options.max_batch = 64;
  options.queue_capacity = 63;  // could never fill a size-triggered flush
  EXPECT_DEATH(ValidateServeOptions(options), "queue_capacity");
}

TEST(ServeOptionsDeathTest, RejectsCallerSuppliedPool) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        ThreadPool pool(1);
        ServeOptions options;
        options.batch.pool = &pool;  // each shard worker owns its pool
        ValidateServeOptions(options);
      },
      "batch.pool == nullptr");
}

TEST(ServeOptionsDeathTest, RejectsContradictoryBatchWindow) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ServeOptions options;
  options.max_batch = 16;
  options.batch.max_batch = 8;  // below the flush window it must admit
  EXPECT_DEATH(ValidateServeOptions(options), "batch.max_batch");
}

TEST(ServeOptionsDeathTest, RejectsTelemetryOnMultiShard) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        TelemetrySink sink;
        ServeOptions options;
        options.num_shards = 2;  // two workers would race on the sink
        options.batch.telemetry = &sink;
        ValidateServeOptions(options);
      },
      "telemetry");
}

TEST(ServeOptionsDeathTest, ConstructorValidates) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::vector<double> keys = MakeKeys(8);
  const std::vector<double> weights = MakeWeights(8, 19);
  const ChunkedRangeSampler sampler(keys, weights);
  ServeOptions options;
  options.max_batch = 0;
  EXPECT_DEATH(RangeServeFrontend(options, PositionBackend(&sampler)),
               "max_batch >= 1");
}

TEST(ServeOptionsDeathTest, RejectsEmptyRoutingTable) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ServeOptions options;
  EXPECT_DEATH(
      RangeServeFrontend(options, std::vector<RangeServeFrontend::BatchFn>{}),
      "empty");
}

TEST(ServeOptionsDeathTest, RejectsNullWorkloadEntry) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::vector<double> keys = MakeKeys(8);
  const std::vector<double> weights = MakeWeights(8, 20);
  const ChunkedRangeSampler sampler(keys, weights);
  ServeOptions options;
  std::vector<RangeServeFrontend::BatchFn> table;
  table.push_back(PositionBackend(&sampler));
  table.push_back(nullptr);  // a routed class with no backend
  EXPECT_DEATH(RangeServeFrontend(options, std::move(table)), "nullptr");
}

TEST(ServeStatsTest, MergeCombinesShards) {
  ServeShardStats a;
  a.submitted = 5;
  a.queue_depth_hwm = 3;
  a.batch_size.Record(4);
  ServeShardStats b;
  b.submitted = 7;
  b.rejected = 2;
  b.queue_depth_hwm = 9;
  b.batch_size.Record(16);

  ServeShardStats merged;
  merged.MergeFrom(a);
  merged.MergeFrom(b);
  EXPECT_EQ(merged.submitted, 12u);
  EXPECT_EQ(merged.rejected, 2u);
  EXPECT_EQ(merged.queue_depth_hwm, 9u);
  EXPECT_EQ(merged.batch_size.count(), 2u);
  EXPECT_EQ(merged.batch_size.sum_ns(), 20u);
}

}  // namespace
}  // namespace serve
}  // namespace iqs
