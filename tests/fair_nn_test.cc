#include "iqs/lsh/fair_nn.h"

#include <map>
#include <set>
#include <vector>

#include "gtest/gtest.h"
#include "iqs/util/distributions.h"
#include "iqs/util/rng.h"
#include "test_util.h"

namespace iqs {
namespace {

using multidim::Distance;
using multidim::Point2;

std::vector<Point2> MakePoints(size_t n, size_t clusters, Rng* rng) {
  std::vector<Point2> pts;
  const auto raw = Points2D(n, clusters, rng);
  pts.reserve(n);
  for (const auto& [x, y] : raw) pts.push_back({x, y});
  return pts;
}

TEST(EuclideanLshTest, NearPointsCollideMoreThanFarPoints) {
  Rng rng(1);
  EuclideanLsh lsh(1, 4, 0.1, &rng);
  int near_collisions = 0;
  int far_collisions = 0;
  Rng data_rng(2);
  for (int i = 0; i < 2000; ++i) {
    const Point2 p{data_rng.NextDouble(), data_rng.NextDouble()};
    const Point2 near{p.x + 0.01, p.y + 0.01};
    const Point2 far{p.x + 0.5, p.y - 0.5};
    near_collisions += (lsh.BucketKey(0, p) == lsh.BucketKey(0, near));
    far_collisions += (lsh.BucketKey(0, p) == lsh.BucketKey(0, far));
  }
  EXPECT_GT(near_collisions, 500);
  EXPECT_LT(far_collisions, near_collisions / 4);
}

TEST(EuclideanLshTest, DeterministicKeys) {
  Rng rng(3);
  EuclideanLsh lsh(4, 4, 0.2, &rng);
  const Point2 p{0.3, 0.6};
  for (size_t t = 0; t < 4; ++t) {
    EXPECT_EQ(lsh.BucketKey(t, p), lsh.BucketKey(t, p));
  }
  // Different tables should (almost surely) use different keys.
  EXPECT_NE(lsh.BucketKey(0, p), lsh.BucketKey(1, p));
}

TEST(FairNearNeighborTest, ReturnsOnlyNearPoints) {
  Rng build_rng(4);
  Rng rng(5);
  const auto pts = MakePoints(500, 0, &rng);
  const double radius = 0.1;
  FairNearNeighbor fair(pts, radius, {}, &build_rng);
  for (int trial = 0; trial < 100; ++trial) {
    const Point2 q{rng.NextDouble(), rng.NextDouble()};
    const auto index = fair.QueryIndex(q, &rng);
    if (index.has_value()) {
      EXPECT_LE(Distance(pts[*index], q), radius);
    }
  }
}

TEST(FairNearNeighborTest, UniformOverVisibleNearPoints) {
  Rng build_rng(6);
  Rng rng(7);
  const auto pts = MakePoints(400, 3, &rng);
  const double radius = 0.08;
  FairNearNeighbor fair(pts, radius, {}, &build_rng);

  // Pick a query with a healthy number of visible near points.
  Point2 q{0.0, 0.0};
  std::vector<size_t> visible;
  for (int attempt = 0; attempt < 200; ++attempt) {
    q = pts[rng.Below(pts.size())];
    visible.clear();
    fair.VisibleNearPoints(q, &visible);
    if (visible.size() >= 8) break;
  }
  ASSERT_GE(visible.size(), 8u);

  std::map<size_t, uint64_t> freq;
  const int trials = 40000;
  for (int i = 0; i < trials; ++i) {
    const auto index = fair.QueryIndex(q, &rng);
    ASSERT_TRUE(index.has_value());
    ++freq[*index];
  }
  ASSERT_EQ(freq.size(), visible.size());
  std::vector<uint64_t> counts;
  for (const auto& [index, count] : freq) counts.push_back(count);
  testing::ExpectDistributionClose(
      counts, std::vector<double>(visible.size(), 1.0 / visible.size()));
}

TEST(FairNearNeighborTest, RecallIsHighWithEnoughTables) {
  Rng build_rng(8);
  Rng rng(9);
  const auto pts = MakePoints(1000, 0, &rng);
  const double radius = 0.05;
  FairNearNeighbor::Options options;
  options.num_tables = 12;
  options.hashes_per_table = 3;
  FairNearNeighbor fair(pts, radius, options, &build_rng);

  size_t visible_total = 0;
  size_t true_total = 0;
  for (int trial = 0; trial < 100; ++trial) {
    const Point2 q{0.1 + 0.8 * rng.NextDouble(), 0.1 + 0.8 * rng.NextDouble()};
    std::vector<size_t> visible;
    fair.VisibleNearPoints(q, &visible);
    visible_total += visible.size();
    for (const Point2& p : pts) true_total += (Distance(p, q) <= radius);
  }
  ASSERT_GT(true_total, 0u);
  // Recall: LSH sees a large fraction of true near points.
  EXPECT_GT(static_cast<double>(visible_total) /
                static_cast<double>(true_total),
            0.7);
}

TEST(FairNearNeighborTest, EmptyNeighborhoodIsNullopt) {
  Rng build_rng(10);
  Rng rng(11);
  const auto pts = MakePoints(50, 0, &rng);
  FairNearNeighbor fair(pts, 0.01, {}, &build_rng);
  EXPECT_FALSE(fair.QueryIndex({50.0, 50.0}, &rng).has_value());
}

TEST(FairNearNeighborTest, FreshAcrossCalls) {
  Rng build_rng(12);
  Rng rng(13);
  const auto pts = MakePoints(300, 1, &rng);
  FairNearNeighbor fair(pts, 0.1, {}, &build_rng);
  const Point2 q = pts[0];
  std::set<size_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto index = fair.QueryIndex(q, &rng);
    if (index.has_value()) seen.insert(*index);
  }
  EXPECT_GT(seen.size(), 5u) << "repeated queries stuck on few neighbors";
}

}  // namespace
}  // namespace iqs
