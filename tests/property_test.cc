// Parameterized property sweeps: the invariants every IQS structure must
// hold, swept across dataset distribution, weight skew, range shape, and
// sample size (gtest TEST_P / INSTANTIATE_TEST_SUITE_P).
//
// Invariant 1 (law): the empirical sample distribution over a range
// matches the normalized weights of the range (chi-square).
// Invariant 2 (independence): with s = 1 and a repeated identical query,
// consecutive outputs are uncorrelated.
// Invariant 3 (containment): samples never escape the range.

#include <cmath>
#include <string>
#include <tuple>
#include <vector>

#include "gtest/gtest.h"
#include "iqs/iqs.h"
#include "test_util.h"

namespace iqs {
namespace {

enum class DataShape { kUniform, kClustered };
enum class WeightShape { kUnit, kZipfHalf, kZipfTwo };
enum class RangeShape { kFull, kMiddle, kTiny, kPrefix };

using PropertyParam = std::tuple<DataShape, WeightShape, RangeShape>;

class RangeSamplingPropertyTest
    : public ::testing::TestWithParam<PropertyParam> {
 protected:
  static constexpr size_t kN = 512;

  void SetUp() override {
    Rng rng(uint64_t(17) * (1 + static_cast<uint64_t>(
                                    std::get<0>(GetParam()) ==
                                    DataShape::kClustered)));
    keys_ = std::get<0>(GetParam()) == DataShape::kUniform
                ? UniformKeys(kN, &rng)
                : ClusteredKeys(kN, 4, &rng);
    switch (std::get<1>(GetParam())) {
      case WeightShape::kUnit:
        weights_ = ZipfWeights(kN, 0.0, &rng);
        break;
      case WeightShape::kZipfHalf:
        weights_ = ZipfWeights(kN, 0.5, &rng);
        break;
      case WeightShape::kZipfTwo:
        weights_ = ZipfWeights(kN, 2.0, &rng);
        break;
    }
    switch (std::get<2>(GetParam())) {
      case RangeShape::kFull:
        a_ = 0;
        b_ = kN - 1;
        break;
      case RangeShape::kMiddle:
        a_ = kN / 4;
        b_ = 3 * kN / 4;
        break;
      case RangeShape::kTiny:
        a_ = kN / 2;
        b_ = kN / 2 + 3;
        break;
      case RangeShape::kPrefix:
        a_ = 0;
        b_ = kN / 8;
        break;
    }
  }

  std::vector<double> keys_;
  std::vector<double> weights_;
  size_t a_ = 0;
  size_t b_ = 0;
};

TEST_P(RangeSamplingPropertyTest, LawAndContainment) {
  Rng rng(99);
  const ChunkedRangeSampler sampler(keys_, weights_);
  std::vector<size_t> out;
  sampler.QueryPositions(a_, b_, 150000, &rng, &out);
  std::vector<uint64_t> counts(b_ - a_ + 1, 0);
  for (size_t p : out) {
    ASSERT_GE(p, a_);
    ASSERT_LE(p, b_);
    ++counts[p - a_];
  }
  std::vector<double> range_weights(weights_.begin() + a_,
                                    weights_.begin() + b_ + 1);
  testing::ExpectDistributionClose(counts, testing::Normalize(range_weights));
}

TEST_P(RangeSamplingPropertyTest, ConsecutiveQueriesUncorrelated) {
  Rng rng(100);
  const ChunkedRangeSampler sampler(keys_, weights_);
  std::vector<double> series;
  for (int q = 0; q < 20000; ++q) {
    std::vector<size_t> out;
    sampler.QueryPositions(a_, b_, 1, &rng, &out);
    series.push_back(static_cast<double>(out[0]));
  }
  std::vector<double> lagged(series.begin() + 1, series.end());
  series.pop_back();
  EXPECT_LT(std::abs(PearsonCorrelation(series, lagged)), 0.03);
}

TEST_P(RangeSamplingPropertyTest, WorSubsetsAreDistinctAndContained) {
  Rng rng(101);
  const ChunkedRangeSampler sampler(keys_, weights_);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<size_t> out;
    const size_t s = 1 + static_cast<size_t>(rng.Below(
                             std::min<size_t>(b_ - a_ + 1, 32)));
    WorQueryPositions(sampler, weights_, a_, b_, s, &rng, &out);
    ASSERT_EQ(out.size(), s);
    std::sort(out.begin(), out.end());
    for (size_t i = 1; i < out.size(); ++i) ASSERT_NE(out[i - 1], out[i]);
    ASSERT_GE(out.front(), a_);
    ASSERT_LE(out.back(), b_);
  }
}

std::string ParamName(
    const ::testing::TestParamInfo<PropertyParam>& info) {
  std::string name;
  name += std::get<0>(info.param) == DataShape::kUniform ? "Uni" : "Clus";
  switch (std::get<1>(info.param)) {
    case WeightShape::kUnit:
      name += "W0";
      break;
    case WeightShape::kZipfHalf:
      name += "W05";
      break;
    case WeightShape::kZipfTwo:
      name += "W2";
      break;
  }
  switch (std::get<2>(info.param)) {
    case RangeShape::kFull:
      name += "Full";
      break;
    case RangeShape::kMiddle:
      name += "Mid";
      break;
    case RangeShape::kTiny:
      name += "Tiny";
      break;
    case RangeShape::kPrefix:
      name += "Pre";
      break;
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RangeSamplingPropertyTest,
    ::testing::Combine(::testing::Values(DataShape::kUniform,
                                         DataShape::kClustered),
                       ::testing::Values(WeightShape::kUnit,
                                         WeightShape::kZipfHalf,
                                         WeightShape::kZipfTwo),
                       ::testing::Values(RangeShape::kFull,
                                         RangeShape::kMiddle,
                                         RangeShape::kTiny,
                                         RangeShape::kPrefix)),
    ParamName);

}  // namespace
}  // namespace iqs
