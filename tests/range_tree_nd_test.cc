#include "iqs/multidim/range_tree_nd.h"

#include <vector>

#include "gtest/gtest.h"
#include "iqs/util/rng.h"
#include "test_util.h"

namespace iqs::multidim {
namespace {

std::vector<double> MakeCoords(size_t n, size_t dim, Rng* rng) {
  std::vector<double> coords(n * dim);
  for (double& c : coords) c = rng->NextDouble();
  return coords;
}

class RangeTreeNdDimTest
    : public ::testing::TestWithParam<std::pair<size_t, size_t>> {};

TEST_P(RangeTreeNdDimTest, SamplesMatchOracle) {
  const auto [dim, leaf_size] = GetParam();
  Rng rng(1);
  const size_t n = 220;
  const auto coords = MakeCoords(n, dim, &rng);
  std::vector<double> weights(n);
  for (double& w : weights) w = 0.3 + rng.NextDouble();
  RangeTreeNdSampler sampler(dim, coords, weights, leaf_size);

  for (int trial = 0; trial < 3; ++trial) {
    BoxNd q(dim);
    for (size_t k = 0; k < dim; ++k) {
      const double lo = rng.NextDouble() * 0.3;
      q.set(k, lo, lo + 0.55);
    }
    std::vector<size_t> qualifying;
    std::vector<double> qualified_weights;
    std::vector<size_t> index_of(n, SIZE_MAX);
    for (size_t i = 0; i < n; ++i) {
      if (q.Contains(sampler.PointAt(i))) {
        index_of[i] = qualifying.size();
        qualifying.push_back(i);
        qualified_weights.push_back(weights[i]);
      }
    }
    std::vector<size_t> out;
    const bool nonempty = sampler.QueryBox(q, 120000, &rng, &out);
    ASSERT_EQ(nonempty, !qualifying.empty());
    if (!nonempty) continue;
    std::vector<size_t> samples;
    for (size_t id : out) {
      ASSERT_NE(index_of[id], SIZE_MAX) << "sample outside box";
      samples.push_back(index_of[id]);
    }
    testing::ExpectSamplesMatchWeights(samples, qualified_weights);
  }
}

INSTANTIATE_TEST_SUITE_P(
    DimsAndLeaves, RangeTreeNdDimTest,
    ::testing::Values(std::pair<size_t, size_t>{1, 4},
                      std::pair<size_t, size_t>{2, 1},
                      std::pair<size_t, size_t>{2, 8},
                      std::pair<size_t, size_t>{3, 4},
                      std::pair<size_t, size_t>{4, 8}));

TEST(RangeTreeNdTest, EmptyBoxReturnsFalse) {
  Rng rng(2);
  const auto coords = MakeCoords(50, 3, &rng);
  RangeTreeNdSampler sampler(3, coords, {});
  BoxNd q(3);
  for (size_t k = 0; k < 3; ++k) q.set(k, 2.0, 3.0);
  std::vector<size_t> out;
  EXPECT_FALSE(sampler.QueryBox(q, 5, &rng, &out));
}

TEST(RangeTreeNdTest, FullBoxUniformOverAll) {
  Rng rng(3);
  const size_t n = 64;
  const auto coords = MakeCoords(n, 3, &rng);
  RangeTreeNdSampler sampler(3, coords, {});
  BoxNd q(3);
  for (size_t k = 0; k < 3; ++k) q.set(k, -1.0, 2.0);
  std::vector<size_t> out;
  ASSERT_TRUE(sampler.QueryBox(q, 128000, &rng, &out));
  std::vector<uint64_t> counts(n, 0);
  for (size_t id : out) ++counts[id];
  testing::ExpectDistributionClose(counts, std::vector<double>(n, 1.0 / n));
}

TEST(RangeTreeNdTest, SpaceGrowsWithDimension) {
  Rng rng(4);
  const size_t n = 1 << 10;
  size_t previous = 0;
  for (size_t dim : {1u, 2u, 3u}) {
    const auto coords = MakeCoords(n, dim, &rng);
    RangeTreeNdSampler sampler(dim, coords, {});
    EXPECT_GT(sampler.MemoryBytes(), previous);
    previous = sampler.MemoryBytes();
  }
}

TEST(RangeTreeNdTest, AgreesWithKdTreeNdInLaw) {
  Rng rng(5);
  const size_t n = 150;
  const size_t dim = 3;
  const auto coords = MakeCoords(n, dim, &rng);
  RangeTreeNdSampler range_tree(dim, coords, {});
  KdTreeNdSampler kd(dim, coords, {});

  BoxNd q(dim);
  for (size_t k = 0; k < dim; ++k) q.set(k, 0.2, 0.85);

  // Both must produce the same support of point coordinates.
  std::vector<size_t> rt_out;
  std::vector<size_t> kd_out;
  const bool rt_ok = range_tree.QueryBox(q, 30000, &rng, &rt_out);
  const bool kd_ok = kd.QueryBox(q, 30000, &rng, &kd_out);
  ASSERT_EQ(rt_ok, kd_ok);
  if (!rt_ok) return;
  auto signature = [&](std::span<const double> p) {
    return p[0] * 1e9 + p[1] * 1e6 + p[2] * 1e3;
  };
  std::set<double> rt_support;
  for (size_t id : rt_out) rt_support.insert(signature(range_tree.PointAt(id)));
  std::set<double> kd_support;
  for (size_t id : kd_out) kd_support.insert(signature(kd.tree().PointAt(id)));
  EXPECT_EQ(rt_support, kd_support);
}

}  // namespace
}  // namespace iqs::multidim
