#include "iqs/util/thread_pool.h"

#include <atomic>
#include <cstddef>
#include <numeric>
#include <vector>

#include "gtest/gtest.h"
#include "iqs/util/batch_options.h"

namespace iqs {
namespace {

TEST(ThreadPoolTest, RunsEveryShardExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kShards = 1000;
  std::vector<std::atomic<int>> hits(kShards);
  pool.ParallelFor(kShards, [&](size_t shard, size_t worker) {
    ASSERT_LT(shard, kShards);
    ASSERT_LT(worker, pool.num_threads());
    hits[shard].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kShards; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "shard " << i;
  }
}

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool(1);
  size_t sum = 0;  // no synchronization: everything must run on the caller
  pool.ParallelFor(100, [&](size_t shard, size_t worker) {
    EXPECT_EQ(worker, 0u);
    sum += shard;
  });
  EXPECT_EQ(sum, 99u * 100u / 2);
}

TEST(ThreadPoolTest, ZeroShardsIsANoOp) {
  ThreadPool pool(3);
  pool.ParallelFor(0, [&](size_t, size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPoolTest, FewerShardsThanWorkers) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.ParallelFor(3, [&](size_t shard, size_t) {
    hits[shard].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < 3; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPoolTest, ReusableAcrossManyJobs) {
  ThreadPool pool(3);
  for (int round = 0; round < 200; ++round) {
    std::atomic<size_t> sum{0};
    const size_t shards = 1 + static_cast<size_t>(round % 17);
    pool.ParallelFor(shards, [&](size_t shard, size_t) {
      sum.fetch_add(shard + 1, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), shards * (shards + 1) / 2);
  }
}

TEST(ThreadPoolTest, UnevenShardsAllComplete) {
  // One huge shard plus many tiny ones: stealing must still run them all.
  ThreadPool pool(4);
  constexpr size_t kShards = 64;
  std::vector<std::atomic<uint64_t>> work(kShards);
  pool.ParallelFor(kShards, [&](size_t shard, size_t) {
    const size_t iters = shard == 0 ? 2000000 : 100;
    uint64_t acc = 0;
    for (size_t i = 0; i < iters; ++i) acc += i * 2654435761u;
    work[shard].store(acc + 1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kShards; ++i) EXPECT_NE(work[i].load(), 0u);
}

TEST(ThreadPoolTest, WorkerArenasAreDistinctAndPersistent) {
  ThreadPool pool(3);
  std::vector<ScratchArena*> arenas;
  for (size_t w = 0; w < pool.num_threads(); ++w) {
    arenas.push_back(pool.worker_arena(w));
    EXPECT_NE(arenas.back(), nullptr);
    for (size_t prev = 0; prev < w; ++prev) {
      EXPECT_NE(arenas[prev], arenas[w]);
    }
  }
  // Same objects on the next lookup (persistent across jobs).
  for (size_t w = 0; w < pool.num_threads(); ++w) {
    EXPECT_EQ(pool.worker_arena(w), arenas[w]);
  }
}

TEST(ScopedPoolTest, UsesCallerPoolWhenProvided) {
  ThreadPool pool(2);
  BatchOptions opts;
  opts.num_threads = 5;  // pool wins over the count
  opts.pool = &pool;
  ScopedPool scoped(opts);
  EXPECT_EQ(scoped.get(), &pool);
  EXPECT_EQ(scoped->num_threads(), 2u);
}

TEST(ScopedPoolTest, OwnsTransientPoolOtherwise) {
  BatchOptions opts;
  opts.num_threads = 3;
  ScopedPool scoped(opts);
  ASSERT_NE(scoped.get(), nullptr);
  EXPECT_EQ(scoped->num_threads(), 3u);
}

TEST(ParallelForShardsTest, CoversIndexRangeExactly) {
  ThreadPool pool(4);
  constexpr size_t kN = 1237;  // not a multiple of anything convenient
  std::vector<std::atomic<int>> hits(kN);
  ParallelForShards(&pool, kN, [&](size_t first, size_t last, size_t worker) {
    ASSERT_LE(first, last);
    ASSERT_LE(last, kN);
    ASSERT_LT(worker, pool.num_threads());
    for (size_t i = first; i < last; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelForShardsTest, SmallNDegeneratesToOneShardEach) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(2);
  ParallelForShards(&pool, 2, [&](size_t first, size_t last, size_t) {
    for (size_t i = first; i < last; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(hits[0].load(), 1);
  EXPECT_EQ(hits[1].load(), 1);
}

}  // namespace
}  // namespace iqs
