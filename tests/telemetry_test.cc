// Tests for the serving telemetry layer (telemetry.h): counter semantics
// cross-checked against ground truth the test computes independently,
// histogram merge associativity, registry export, and the no-perturbation
// contract (attaching a sink never changes a sample stream — the
// thread-count half of that contract lives in parallel_batch_test.cc).

#include <cstdint>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "iqs/cover/coverage_engine.h"
#include "iqs/em/block_device.h"
#include "iqs/range/bst_range_sampler.h"
#include "iqs/range/chunked_range_sampler.h"
#include "iqs/simd/dispatch.h"
#include "iqs/util/batch_options.h"
#include "iqs/util/distributions.h"
#include "iqs/util/rng.h"
#include "iqs/util/scratch_arena.h"
#include "iqs/util/telemetry.h"
#include "iqs/util/thread_pool.h"
#include "test_util.h"

namespace iqs {
namespace {

TEST(LatencyHistogramTest, BucketBoundaries) {
  EXPECT_EQ(LatencyHistogram::BucketOf(0), 0u);
  EXPECT_EQ(LatencyHistogram::BucketOf(1), 1u);
  EXPECT_EQ(LatencyHistogram::BucketOf(2), 2u);
  EXPECT_EQ(LatencyHistogram::BucketOf(3), 2u);
  EXPECT_EQ(LatencyHistogram::BucketOf(4), 3u);
  EXPECT_EQ(LatencyHistogram::BucketOf(1023), 10u);
  EXPECT_EQ(LatencyHistogram::BucketOf(1024), 11u);
  EXPECT_EQ(LatencyHistogram::BucketLowerBoundNs(0), 0u);
  EXPECT_EQ(LatencyHistogram::BucketLowerBoundNs(1), 1u);
  EXPECT_EQ(LatencyHistogram::BucketLowerBoundNs(11), 1024u);
  // Every value lands in the bucket whose [lower, 2*lower) range holds it.
  for (uint64_t ns : {uint64_t{5}, uint64_t{77}, uint64_t{1} << 40}) {
    const size_t b = LatencyHistogram::BucketOf(ns);
    EXPECT_GE(ns, LatencyHistogram::BucketLowerBoundNs(b));
    EXPECT_LT(ns / 2, LatencyHistogram::BucketLowerBoundNs(b + 1) / 2 + 1);
  }
}

TEST(LatencyHistogramTest, MergeIsAssociativeAcrossPartitions) {
  // Record a fixed multiset into shards three different ways (one shard,
  // two shards, seven shards) and merge: all three merged histograms must
  // be identical field for field.
  Rng rng(404);
  std::vector<uint64_t> samples(5000);
  for (uint64_t& ns : samples) {
    ns = rng.Below(1u << 20) + (rng.Below(16) == 0 ? (1u << 28) : 0);
  }
  auto merged_over = [&](size_t num_shards) {
    TelemetrySink sink(num_shards);
    for (size_t i = 0; i < samples.size(); ++i) {
      sink.shard(i % num_shards)->latency.Record(samples[i]);
    }
    return sink.MergedLatency();
  };
  const LatencyHistogram one = merged_over(1);
  EXPECT_EQ(one.count(), samples.size());
  for (size_t num_shards : {2u, 7u}) {
    const LatencyHistogram merged = merged_over(num_shards);
    EXPECT_EQ(merged, one) << num_shards << " shards";
    // Tail percentiles are derived from the merged buckets, so they must
    // be partition-invariant too — the export satellites (p999/p9999)
    // depend on exactly this.
    for (double p : {0.5, 0.99, 0.999, 0.9999}) {
      EXPECT_EQ(merged.PercentileUpperBoundNs(p),
                one.PercentileUpperBoundNs(p))
          << num_shards << " shards at p=" << p;
    }
  }
}

TEST(LatencyHistogramTest, PercentileUpperBounds) {
  LatencyHistogram h;
  for (int i = 0; i < 90; ++i) h.Record(100);   // bucket 7: [64, 128)
  for (int i = 0; i < 10; ++i) h.Record(5000);  // bucket 13: [4096, 8192)
  EXPECT_EQ(h.PercentileUpperBoundNs(0.5), 128u);
  EXPECT_EQ(h.PercentileUpperBoundNs(0.9), 128u);
  EXPECT_EQ(h.PercentileUpperBoundNs(0.99), 8192u);
  EXPECT_EQ(h.max_ns(), 5000u);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(LatencyHistogram{}.PercentileUpperBoundNs(0.5), 0u);
}

TEST(LatencyHistogramTest, TailPercentilesResolveDeepBuckets) {
  // A body at 100ns, a p999-visible shelf at 5µs, and a p9999-only spike
  // at 1ms — each tail quantile must land in its own bucket.
  LatencyHistogram h;
  for (int i = 0; i < 9980; ++i) h.Record(100);      // bucket [64, 128)
  for (int i = 0; i < 10; ++i) h.Record(5000);       // bucket [4096, 8192)
  for (int i = 0; i < 10; ++i) h.Record(1'000'000);  // [524288, 1048576)
  EXPECT_EQ(h.PercentileUpperBoundNs(0.99), 128u);
  EXPECT_EQ(h.PercentileUpperBoundNs(0.999), 8192u);
  EXPECT_EQ(h.PercentileUpperBoundNs(0.9999), 1048576u);
  EXPECT_EQ(h.PercentileUpperBoundNs(1.0), 1048576u);
}

TEST(QueryStatsTest, MergeSumsCountersAndMaxesHighWater) {
  QueryStats a;
  a.queries = 3;
  a.samples_emitted = 10;
  a.arena_bytes_hwm = 4096;
  QueryStats b;
  b.queries = 2;
  b.samples_emitted = 7;
  b.arena_bytes_hwm = 1024;
  a.backend_mask = simd::BackendBit(simd::Backend::kScalar);
  b.backend_mask = simd::BackendBit(simd::Backend::kAvx2);
  a.MergeFrom(b);
  EXPECT_EQ(a.queries, 5u);
  EXPECT_EQ(a.samples_emitted, 17u);
  EXPECT_EQ(a.arena_bytes_hwm, 4096u);  // max, not 5120
  // Backend tags merge by OR: the merged stats name every backend seen.
  EXPECT_EQ(a.backend_mask, simd::BackendBit(simd::Backend::kScalar) |
                                simd::BackendBit(simd::Backend::kAvx2));
}

TEST(TelemetryCountersTest, BatchCountersMatchGroundTruth) {
  // Sequential 1-d batch through the key-space QueryBatch entry point:
  // queries / samples_emitted are exactly computable from the query list;
  // each batch call records exactly one latency sample.
  Rng data_rng(7);
  const size_t n = 800;
  const std::vector<double> keys = UniformKeys(n, &data_rng);
  const std::vector<double> weights = ZipfWeights(n, 0.8, &data_rng);
  ChunkedRangeSampler sampler(keys, weights);

  std::vector<BatchQuery> queries;
  Rng qrng(9);
  size_t expected_samples = 0;
  for (int i = 0; i < 25; ++i) {
    const size_t a = qrng.Below(n / 2);
    const size_t b = n / 2 + qrng.Below(n / 2);
    const size_t s = 1 + qrng.Below(64);
    queries.push_back({keys[a], keys[b], s});
    expected_samples += s;
  }

  TelemetrySink sink;
  BatchOptions opts;
  opts.telemetry = &sink;
  Rng rng(1234);
  ScratchArena arena;
  BatchResult result;
  const int kBatches = 4;
  for (int round = 0; round < kBatches; ++round) {
    sampler.QueryBatch(queries, &rng, &arena, opts, &result);
    ASSERT_EQ(result.positions.size(), expected_samples);
  }

  const QueryStats stats = sink.MergedStats();
  EXPECT_EQ(stats.queries, kBatches * queries.size());
  EXPECT_EQ(stats.samples_emitted, kBatches * expected_samples);
  // The chunked structure lowers each interval to >= 1 chunk groups, and
  // only multi-group queries burn split draws (s doubles each).
  EXPECT_GE(stats.cover_groups, stats.queries);
  EXPECT_LE(stats.rng_draws, stats.samples_emitted);
  EXPECT_GT(stats.arena_bytes_hwm, 0u);
  // The batch is tagged with the kernel backend that served it.
  EXPECT_EQ(stats.backend_mask, simd::BackendBit(simd::ActiveBackend()));
  EXPECT_EQ(sink.MergedLatency().count(),
            static_cast<uint64_t>(kBatches));
}

TEST(TelemetryCountersTest, SplitDrawsCountMultiGroupQueriesOnly) {
  // A multi-group plan consumes exactly s split draws per query with
  // >= 2 groups; single-group queries consume none.
  const std::vector<double> weights(100, 1.0);
  CoverageEngine engine(weights);

  CoverPlan plan;
  plan.BeginQuery(12);  // two groups -> 12 draws
  plan.AddGroup(0, 9, 10.0);
  plan.AddGroup(50, 59, 10.0);
  plan.BeginQuery(30);  // one group -> 0 draws
  plan.AddGroup(20, 39, 20.0);

  TelemetrySink sink;
  BatchOptions opts;
  opts.telemetry = &sink;
  Rng rng(77);
  ScratchArena arena;
  std::vector<size_t> out;
  engine.SampleBatch(plan, &rng, &arena, opts, &out);
  ASSERT_EQ(out.size(), 42u);

  const QueryStats stats = sink.MergedStats();
  EXPECT_EQ(stats.queries, 2u);
  EXPECT_EQ(stats.cover_groups, 3u);
  EXPECT_EQ(stats.rng_draws, 12u);
  EXPECT_EQ(stats.samples_emitted, 42u);
}

TEST(TelemetryCountersTest, RejectionCountersMatchGroundTruth) {
  // rejection_attempts must equal the number of `accepts` invocations the
  // predicate actually saw, and rejection_rounds the number of retry
  // rounds — both counted independently by the test.
  const size_t n = 2000;
  Rng data_rng(31);
  std::vector<double> weights(n);
  for (double& w : weights) w = 0.2 + data_rng.NextDouble();
  CoverageEngine engine(weights);

  std::vector<CoverRange> cover = {{0, n - 1, 0.0}};
  for (size_t i = 0; i < n; ++i) cover[0].weight += weights[i];

  uint64_t invocations = 0;
  auto accepts = [&](size_t p) {
    ++invocations;
    return (p % 4) == 0;  // ~25% acceptance: several retry rounds
  };

  TelemetrySink sink;
  BatchOptions opts;
  opts.telemetry = &sink;
  Rng rng(55);
  ScratchArena arena;
  std::vector<size_t> out;
  engine.SampleWithRejection(cover, 5000, accepts, &rng, &arena, opts, &out);
  ASSERT_EQ(out.size(), 5000u);

  const QueryStats stats = sink.MergedStats();
  EXPECT_EQ(stats.rejection_attempts, invocations);
  EXPECT_GE(stats.rejection_rounds, 2u);  // 25% acceptance cannot one-shot
  EXPECT_EQ(stats.samples_emitted, stats.rejection_attempts);
}

TEST(TelemetryCountersTest, NodesVisitedTracksBstDescents) {
  Rng data_rng(3);
  const size_t n = 1000;
  const std::vector<double> keys = UniformKeys(n, &data_rng);
  const std::vector<double> weights = ZipfWeights(n, 0.5, &data_rng);
  BstRangeSampler sampler(keys, weights);

  std::vector<PositionQuery> queries(8, PositionQuery{10, n - 10, 100});
  TelemetrySink sink;
  BatchOptions opts;
  opts.telemetry = &sink;
  Rng rng(21);
  ScratchArena arena;
  std::vector<size_t> out;
  sampler.QueryPositionsBatch(queries, &rng, &arena, opts, &out);
  ASSERT_EQ(out.size(), 800u);
  // 800 draws each descend >= 1 level of the BST.
  EXPECT_GE(sink.MergedStats().nodes_visited, 800u);
}

TEST(TelemetryCountersTest, BlockDeviceCountersMatchDeviceCounters) {
  em::BlockDevice device(8);
  TelemetrySink sink;
  device.set_telemetry(&sink);

  std::vector<uint64_t> buf(8, 0);
  const size_t b0 = device.AllocateBlock();
  const size_t b1 = device.AllocateBlock();
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    const size_t id = rng.Below(2) == 0 ? b0 : b1;
    if (rng.Below(3) == 0) {
      device.Write(id, buf);
    } else {
      device.Read(id, buf);
    }
  }
  const QueryStats stats = sink.MergedStats();
  EXPECT_EQ(stats.em_reads, device.reads());
  EXPECT_EQ(stats.em_writes, device.writes());
  EXPECT_EQ(stats.em_reads + stats.em_writes, 100u);
}

TEST(TelemetryCountersTest, ParallelBatchRecordsPoolActivity) {
  Rng data_rng(13);
  const size_t n = 3000;
  const std::vector<double> keys = UniformKeys(n, &data_rng);
  const std::vector<double> weights = ZipfWeights(n, 0.8, &data_rng);
  ChunkedRangeSampler sampler(keys, weights);

  std::vector<PositionQuery> queries(64, PositionQuery{5, n - 5, 200});
  TelemetrySink sink;
  ThreadPool pool(4);
  BatchOptions opts;
  opts.num_threads = 4;
  opts.pool = &pool;
  opts.telemetry = &sink;
  Rng rng(88);
  ScratchArena arena;
  std::vector<size_t> out;
  sampler.QueryPositionsBatch(queries, &rng, &arena, opts, &out);
  ASSERT_EQ(out.size(), 64u * 200u);

  const QueryStats stats = sink.MergedStats();
  EXPECT_EQ(stats.queries, 64u);
  EXPECT_EQ(stats.samples_emitted, 64u * 200u);
  // The parallel pipeline burns one rng word for the batch key.
  EXPECT_GE(stats.rng_draws, 1u);
  EXPECT_GT(stats.busy_ns, 0u);
  // ScopedPool must detach the sink when the batch ends.
  EXPECT_EQ(pool.telemetry(), nullptr);
}

TEST(MetricsRegistryTest, GetOrCreateIsStableAndResettable) {
  MetricsRegistry registry;
  TelemetrySink* a = registry.GetOrCreate("serving");
  TelemetrySink* b = registry.GetOrCreate("serving");
  EXPECT_EQ(a, b);
  EXPECT_EQ(registry.Find("serving"), a);
  EXPECT_EQ(registry.Find("absent"), nullptr);

  a->shard(0)->stats.queries = 5;
  a->shard(0)->latency.Record(100);
  registry.ResetAll();
  EXPECT_EQ(a->MergedStats().queries, 0u);
  EXPECT_EQ(a->MergedLatency().count(), 0u);
}

TEST(MetricsRegistryTest, JsonExportContainsCountersAndBuckets) {
  MetricsRegistry registry;
  TelemetrySink* sink = registry.GetOrCreate("unit");
  sink->shard(0)->stats.queries = 7;
  sink->shard(0)->stats.samples_emitted = 99;
  sink->shard(1)->stats.queries = 3;
  sink->shard(0)->latency.Record(100);
  sink->shard(0)->latency.Record(5000);
  sink->shard(0)->stats.backend_mask =
      simd::BackendBit(simd::Backend::kScalar);
  sink->shard(1)->stats.backend_mask =
      simd::BackendBit(simd::Backend::kAvx2);

  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"telemetry\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"unit\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"queries\": 10"), std::string::npos) << json;
  EXPECT_NE(json.find("\"samples_emitted\": 99"), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"max_ns\": 5000"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p999_ns\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"p9999_ns\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"buckets\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"kernel_backend\": \"scalar+avx2\""),
            std::string::npos)
      << json;

  const std::string text = registry.ToText();
  EXPECT_NE(text.find("unit"), std::string::npos) << text;
  EXPECT_NE(text.find("backend=scalar+avx2"), std::string::npos) << text;
  EXPECT_NE(text.find("p999<="), std::string::npos) << text;
  EXPECT_NE(text.find("p9999<="), std::string::npos) << text;
}

}  // namespace
}  // namespace iqs
