#include "iqs/multidim/kd_tree_nd.h"

#include <set>
#include <vector>

#include "gtest/gtest.h"
#include "iqs/util/rng.h"
#include "test_util.h"

namespace iqs::multidim {
namespace {

std::vector<double> MakeCoords(size_t n, size_t dim, Rng* rng) {
  std::vector<double> coords(n * dim);
  for (double& c : coords) c = rng->NextDouble();
  return coords;
}

BoxNd RandomBox(size_t dim, double side, Rng* rng) {
  BoxNd q(dim);
  for (size_t k = 0; k < dim; ++k) {
    const double lo = rng->NextDouble() * (1.0 - side);
    q.set(k, lo, lo + side);
  }
  return q;
}

class KdNdDimTest : public ::testing::TestWithParam<size_t> {};

TEST_P(KdNdDimTest, CoverIsExactPartition) {
  const size_t dim = GetParam();
  Rng rng(1);
  const size_t n = 400;
  const auto coords = MakeCoords(n, dim, &rng);
  KdTreeNd tree(dim, coords, {});
  for (int trial = 0; trial < 50; ++trial) {
    const BoxNd q = RandomBox(dim, 0.6, &rng);
    std::vector<CoverRange> cover;
    tree.CoverQuery(q, &cover);
    std::set<size_t> covered;
    for (const CoverRange& range : cover) {
      for (size_t p = range.lo; p <= range.hi; ++p) {
        EXPECT_TRUE(covered.insert(p).second);
        EXPECT_TRUE(q.Contains(tree.PointAt(p)));
      }
    }
    // Oracle count over the REORDERED points (tree owns the order).
    size_t oracle = 0;
    for (size_t i = 0; i < n; ++i) oracle += q.Contains(tree.PointAt(i));
    EXPECT_EQ(covered.size(), oracle);
  }
}

TEST_P(KdNdDimTest, SamplesMatchWeights) {
  const size_t dim = GetParam();
  Rng rng(2);
  const size_t n = 200;
  const auto coords = MakeCoords(n, dim, &rng);
  std::vector<double> weights(n);
  for (double& w : weights) w = 0.3 + rng.NextDouble();
  KdTreeNdSampler sampler(dim, coords, weights);

  const BoxNd q = RandomBox(dim, 0.8, &rng);
  std::vector<size_t> qualifying;
  std::vector<double> qualified_weights;
  std::vector<size_t> position_to_index(sampler.tree().n(), SIZE_MAX);
  for (size_t p = 0; p < sampler.tree().n(); ++p) {
    if (q.Contains(sampler.tree().PointAt(p))) {
      position_to_index[p] = qualifying.size();
      qualifying.push_back(p);
      qualified_weights.push_back(sampler.tree().WeightAt(p));
    }
  }
  if (qualifying.size() < 5) GTEST_SKIP() << "box too empty in high dim";

  std::vector<size_t> out;
  ASSERT_TRUE(sampler.QueryBox(q, 150000, &rng, &out));
  std::vector<size_t> samples;
  for (size_t p : out) {
    ASSERT_NE(position_to_index[p], SIZE_MAX) << "sample outside box";
    samples.push_back(position_to_index[p]);
  }
  testing::ExpectSamplesMatchWeights(samples, qualified_weights);
}

INSTANTIATE_TEST_SUITE_P(Dims, KdNdDimTest, ::testing::Values(1, 2, 3, 5));

TEST(KdNdTest, MatchesTwoDSpecialization) {
  // d = 2 results should agree in law with the dedicated 2-d kd-tree.
  Rng rng(3);
  const size_t n = 300;
  const auto coords = MakeCoords(n, 2, &rng);
  KdTreeNd tree(2, coords, {});
  BoxNd q(2);
  q.set(0, 0.2, 0.7);
  q.set(1, 0.1, 0.9);
  std::vector<size_t> reported;
  tree.Report(q, &reported);
  size_t oracle = 0;
  for (size_t i = 0; i < n; ++i) {
    const auto p = tree.PointAt(i);
    oracle += (p[0] >= 0.2 && p[0] <= 0.7 && p[1] >= 0.1 && p[1] <= 0.9);
  }
  EXPECT_EQ(reported.size(), oracle);
}

TEST(KdNdTest, CoverSizeGrowsWithDimension) {
  // The paper's n^{1-1/d} claim: at fixed n, slab-like queries touch more
  // nodes as d rises.
  Rng rng(4);
  const size_t n = 1 << 12;
  double previous = 0.0;
  for (size_t dim : {1u, 2u, 4u}) {
    const auto coords = MakeCoords(n, dim, &rng);
    KdTreeNd tree(dim, coords, {});
    double total = 0.0;
    for (int trial = 0; trial < 30; ++trial) {
      BoxNd q(dim);
      // Half-width in every axis: boundary grows with d.
      for (size_t k = 0; k < dim; ++k) {
        const double lo = rng.NextDouble() * 0.5;
        q.set(k, lo, lo + 0.5);
      }
      std::vector<CoverRange> cover;
      tree.CoverQuery(q, &cover);
      total += static_cast<double>(cover.size());
    }
    const double mean = total / 30.0;
    EXPECT_GT(mean, previous);
    previous = mean;
  }
}

TEST(KdNdTest, SinglePointAndDegenerateBox) {
  Rng rng(5);
  const std::vector<double> coords = {0.5, 0.5, 0.5};
  KdTreeNdSampler sampler(3, coords, {});
  BoxNd q(3);
  for (size_t k = 0; k < 3; ++k) q.set(k, 0.5, 0.5);
  std::vector<size_t> out;
  ASSERT_TRUE(sampler.QueryBox(q, 4, &rng, &out));
  EXPECT_EQ(out.size(), 4u);
  BoxNd miss(3);
  for (size_t k = 0; k < 3; ++k) miss.set(k, 0.6, 0.7);
  EXPECT_FALSE(sampler.QueryBox(miss, 1, &rng, &out));
}

}  // namespace
}  // namespace iqs::multidim
