// Umbrella-header completeness: every public header under src/iqs/ must
// be reachable from iqs/iqs.h through its include graph, so a user who
// includes the umbrella sees the whole API. (Per-header standalone
// compilation is enforced at build time: tests/CMakeLists.txt generates
// one TU per public header into the iqs_header_standalone library.)

#include <filesystem>
#include <fstream>
#include <queue>
#include <regex>
#include <set>
#include <string>

#include "gtest/gtest.h"
#include "iqs/iqs.h"

#ifndef IQS_SRC_DIR
#error "IQS_SRC_DIR must point at the src/ directory"
#endif

namespace iqs {
namespace {

namespace fs = std::filesystem;

// Project-relative include paths ("iqs/util/rng.h") pulled from a file.
std::set<std::string> IncludesOf(const fs::path& file) {
  std::set<std::string> found;
  std::ifstream in(file);
  std::string line;
  const std::regex include_re(R"(^\s*#include\s+\"(iqs/[^\"]+)\")");
  while (std::getline(in, line)) {
    std::smatch m;
    if (std::regex_search(line, m, include_re)) found.insert(m[1]);
  }
  return found;
}

TEST(UmbrellaHeaderTest, EveryPublicHeaderIsReachable) {
  const fs::path src_dir(IQS_SRC_DIR);
  ASSERT_TRUE(fs::is_directory(src_dir / "iqs")) << src_dir;

  // All public headers, as project-relative include paths.
  std::set<std::string> all_headers;
  for (const auto& entry : fs::recursive_directory_iterator(src_dir / "iqs")) {
    if (!entry.is_regular_file() || entry.path().extension() != ".h") continue;
    all_headers.insert(fs::relative(entry.path(), src_dir).generic_string());
  }
  ASSERT_GT(all_headers.size(), 40u);  // sanity: the scan found the tree

  // BFS over the include graph from the umbrella.
  std::set<std::string> reachable = {"iqs/iqs.h"};
  std::queue<std::string> frontier;
  frontier.push("iqs/iqs.h");
  while (!frontier.empty()) {
    const std::string header = frontier.front();
    frontier.pop();
    for (const std::string& inc : IncludesOf(src_dir / header)) {
      if (reachable.insert(inc).second) frontier.push(inc);
    }
  }

  std::set<std::string> missing;
  for (const std::string& header : all_headers) {
    if (reachable.count(header) == 0) missing.insert(header);
  }
  EXPECT_TRUE(missing.empty())
      << "headers not reachable from iqs/iqs.h — add them to the umbrella:\n  "
      << [&] {
           std::string joined;
           for (const std::string& header : missing) {
             joined += header;
             joined += "\n  ";
           }
           return joined;
         }();
}

TEST(UmbrellaHeaderTest, UmbrellaExportsHeadlineAliases) {
  // The umbrella itself compiled into this TU; spot-check that headline
  // names resolve through it.
  static_assert(std::is_same_v<WeightedRangeSampler, ChunkedRangeSampler>);
  TelemetrySink sink;
  EXPECT_EQ(sink.MergedStats().queries, 0u);
}

}  // namespace
}  // namespace iqs
