#include "iqs/alias/dynamic_alias.h"

#include <cmath>
#include <unordered_map>
#include <vector>

#include "gtest/gtest.h"
#include "iqs/util/rng.h"
#include "test_util.h"

namespace iqs {
namespace {

TEST(DynamicAliasTest, InsertSampleSingle) {
  Rng rng(1);
  DynamicAlias alias;
  const size_t h = alias.Insert(2.5);
  EXPECT_EQ(alias.size(), 1u);
  EXPECT_DOUBLE_EQ(alias.weight(h), 2.5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(alias.Sample(&rng), h);
}

TEST(DynamicAliasTest, MatchesWeightsAcrossClasses) {
  Rng rng(2);
  DynamicAlias alias;
  // Weights spanning several binary classes.
  const std::vector<double> weights = {0.1, 0.9, 1.5, 7.0, 40.0, 0.04};
  std::vector<size_t> handles;
  for (double w : weights) handles.push_back(alias.Insert(w));
  std::unordered_map<size_t, size_t> handle_to_index;
  for (size_t i = 0; i < handles.size(); ++i) handle_to_index[handles[i]] = i;

  std::vector<size_t> samples;
  for (int i = 0; i < 300000; ++i) {
    samples.push_back(handle_to_index.at(alias.Sample(&rng)));
  }
  testing::ExpectSamplesMatchWeights(samples, weights);
}

TEST(DynamicAliasTest, RemoveExcludesElement) {
  Rng rng(3);
  DynamicAlias alias;
  const size_t a = alias.Insert(1.0);
  const size_t b = alias.Insert(1.0);
  alias.Remove(a);
  EXPECT_EQ(alias.size(), 1u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(alias.Sample(&rng), b);
}

TEST(DynamicAliasTest, SetWeightMovesClasses) {
  Rng rng(4);
  DynamicAlias alias;
  const size_t a = alias.Insert(1.0);
  const size_t b = alias.Insert(1.0);
  alias.SetWeight(a, 1000.0);
  size_t hits_a = 0;
  const int trials = 10000;
  for (int i = 0; i < trials; ++i) hits_a += (alias.Sample(&rng) == a);
  EXPECT_GT(hits_a, trials * 0.99);
  alias.SetWeight(a, 0.001);
  hits_a = 0;
  for (int i = 0; i < trials; ++i) hits_a += (alias.Sample(&rng) == a);
  EXPECT_LT(hits_a, trials * 0.01);
  (void)b;
}

TEST(DynamicAliasTest, HandleReuseAfterRemove) {
  DynamicAlias alias;
  const size_t a = alias.Insert(1.0);
  alias.Remove(a);
  const size_t b = alias.Insert(2.0);
  EXPECT_EQ(a, b);  // slot recycled
  EXPECT_DOUBLE_EQ(alias.weight(b), 2.0);
}

TEST(DynamicAliasTest, TotalWeightTracksUpdates) {
  DynamicAlias alias;
  const size_t a = alias.Insert(1.0);
  const size_t b = alias.Insert(3.0);
  EXPECT_NEAR(alias.total_weight(), 4.0, 1e-9);
  alias.SetWeight(a, 2.0);
  EXPECT_NEAR(alias.total_weight(), 5.0, 1e-9);
  alias.Remove(b);
  EXPECT_NEAR(alias.total_weight(), 2.0, 1e-9);
}

TEST(DynamicAliasTest, ChurnPropertyTest) {
  // Random interleaving of inserts/removes/updates; after the churn the
  // sampling law must match the surviving weights exactly.
  Rng rng(5);
  DynamicAlias alias;
  std::unordered_map<size_t, double> live;
  for (int op = 0; op < 5000; ++op) {
    const double dice = rng.NextDouble();
    if (live.empty() || dice < 0.5) {
      const double w = std::pow(2.0, rng.Uniform(-20, 20)) *
                       (0.5 + rng.NextDouble());
      live[alias.Insert(w)] = w;
    } else if (dice < 0.75) {
      auto it = live.begin();
      std::advance(it, rng.Below(live.size()));
      alias.Remove(it->first);
      live.erase(it);
    } else {
      auto it = live.begin();
      std::advance(it, rng.Below(live.size()));
      const double w = std::pow(2.0, rng.Uniform(-20, 20)) *
                       (0.5 + rng.NextDouble());
      alias.SetWeight(it->first, w);
      it->second = w;
    }
  }
  ASSERT_EQ(alias.size(), live.size());
  ASSERT_FALSE(live.empty());

  // Keep only a handful of heavy hitters distinguishable: tally over all.
  std::vector<size_t> handles;
  std::vector<double> weights;
  std::unordered_map<size_t, size_t> index_of;
  for (const auto& [h, w] : live) {
    index_of[h] = handles.size();
    handles.push_back(h);
    weights.push_back(w);
  }
  std::vector<size_t> samples;
  for (int i = 0; i < 200000; ++i) {
    samples.push_back(index_of.at(alias.Sample(&rng)));
  }
  testing::ExpectSamplesMatchWeights(samples, weights);
}

TEST(DynamicAliasTest, ManyEqualElementsUniform) {
  Rng rng(6);
  DynamicAlias alias;
  constexpr size_t kN = 128;
  std::vector<size_t> handles;
  for (size_t i = 0; i < kN; ++i) handles.push_back(alias.Insert(1.0));
  std::vector<size_t> samples;
  for (int i = 0; i < 256000; ++i) samples.push_back(alias.Sample(&rng));
  testing::ExpectSamplesMatchWeights(samples, std::vector<double>(kN, 1.0));
}

}  // namespace
}  // namespace iqs
