// Concurrency tests for the epoch-versioned samplers (util/epoch.h):
// structural stress (run under TSan in CI — sanitizers.yml),
// chi-square-under-churn law checks at alpha 1e-6, single-threaded
// byte-identity goldens, and the bounded-reclamation guarantee.
//
// Churn workload design: every law check samples a query range the churn
// NEVER touches (inserts land outside the queried interval; alias churn
// uses same-weight SetWeight plus negligible-weight transients that the
// tally excludes), so the sampled law stays exactly fixed while versions
// publish underneath — making chi-square at alpha 1e-6 a valid oracle
// even though thread interleaving is nondeterministic.

#include <atomic>
#include <cmath>
#include <cstring>
#include <map>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "iqs/alias/dynamic_alias.h"
#include "iqs/cover/coverage_engine.h"
#include "iqs/range/logarithmic_range_sampler.h"
#include "iqs/util/rng.h"
#include "iqs/util/telemetry.h"
#include "iqs/util/thread_pool.h"
#include "test_util.h"

namespace iqs {
namespace {

// FNV-1a over little-endian words — the golden-hash scheme used to pin
// byte-identity (hash constants captured from the pre-epoch build).
struct Fnv {
  uint64_t h = 1469598103934665603ULL;
  void U64(uint64_t x) {
    for (int i = 0; i < 8; ++i) {
      h ^= (x >> (8 * i)) & 0xff;
      h *= 1099511628211ULL;
    }
  }
  void F64(double d) {
    uint64_t bits;
    std::memcpy(&bits, &d, 8);
    U64(bits);
  }
};

TEST(ConcurrentSnapshotTest, LogarithmicGoldenBytesUnchangedSingleThreaded) {
  // The acceptance pin: with no concurrent writer, the refactored sampler
  // must produce byte-for-byte the pre-refactor sample stream. The
  // log_query/log_meta hashes below were captured from the build at the
  // commit BEFORE the epoch layer landed; log_batch pins the (new,
  // deterministic level-order) batched stream so future changes can't
  // silently reshuffle it.
  LogarithmicRangeSampler sampler;
  Rng ins(42);
  for (int i = 0; i < 700; ++i) {
    sampler.Insert(ins.NextDouble(), 0.5 + ins.NextDouble());
  }
  Fnv fnv;
  Rng qrng(7);
  std::vector<double> out;
  for (int q = 0; q < 50; ++q) {
    const double lo = qrng.NextDouble() * 0.8;
    const double hi = lo + qrng.NextDouble() * 0.2;
    out.clear();
    const bool ok = sampler.Query(lo, hi, 40, &qrng, &out);
    fnv.U64(ok ? 1 : 0);
    for (double key : out) fnv.F64(key);
  }
  EXPECT_EQ(fnv.h, 0x67da53a8d6c0b201ULL);  // pre-epoch Query stream
  fnv.F64(sampler.RangeWeight(0.1, 0.9));
  fnv.U64(sampler.num_components());
  EXPECT_EQ(fnv.h, 0xa5887ea450dedc20ULL);  // pre-epoch weights/meta

  Fnv batch_fnv;
  ScratchArena arena;
  KeyBatchResult result;
  Rng brng(11);
  std::vector<KeyBatchQuery> queries;
  for (int i = 0; i < 64; ++i) {
    const double lo = brng.NextDouble() * 0.8;
    queries.push_back(
        {lo, lo + brng.NextDouble() * 0.2, static_cast<size_t>(brng.Below(50))});
  }
  for (int rep = 0; rep < 5; ++rep) {
    sampler.QueryBatch(queries, &brng, &arena, &result);
    for (double key : result.keys) batch_fnv.F64(key);
    for (size_t offset : result.offsets) batch_fnv.U64(offset);
    for (uint8_t flag : result.resolved) batch_fnv.U64(flag);
  }
  EXPECT_EQ(batch_fnv.h, 0x5b5e768ce6ed4c20ULL);  // level-order batch stream
}

TEST(ConcurrentSnapshotTest, AliasGoldenBytesUnchangedSingleThreaded) {
  // Captured from the pre-epoch build: handles, sample stream, and
  // total_weight through a mixed op sequence — the left-right rehost must
  // replay to bit-identical state.
  DynamicAlias alias;
  Fnv fnv;
  Rng wrng(99);
  std::vector<size_t> handles;
  for (int i = 0; i < 300; ++i) {
    handles.push_back(alias.Insert(0.25 + wrng.NextDouble()));
  }
  Rng srng(5);
  for (int round = 0; round < 6; ++round) {
    for (int i = 0; i < 2000; ++i) fnv.U64(alias.Sample(&srng));
    for (int i = 0; i < 40; ++i) {
      const size_t victim = srng.Below(handles.size());
      alias.Remove(handles[victim]);
      handles[victim] = alias.Insert(0.25 + wrng.NextDouble());
      fnv.U64(handles[victim]);
    }
    for (int i = 0; i < 40; ++i) {
      alias.SetWeight(handles[srng.Below(handles.size())],
                      0.25 + wrng.NextDouble());
    }
    fnv.F64(alias.total_weight());
  }
  EXPECT_EQ(fnv.h, 0x60092d8a06e13f5cULL);  // pre-epoch mixed-op stream
}

TEST(ConcurrentSnapshotTest, LogarithmicStressInsertersVsBatchReaders) {
  // TSan structural target: 2 inserter threads publishing versions
  // (disjoint key ranges, so distinct-key checks can't fire) against 2
  // QueryBatch reader threads pinning snapshots. Readers assert snapshot
  // consistency: resolved flags, exact per-query sample counts, and every
  // sampled key inside the queried interval.
  LogarithmicRangeSampler sampler;
  ThreadPool pool(2);
  sampler.set_maintenance_pool(&pool);
  Rng seed_rng(17);
  for (int i = 0; i < 200; ++i) {
    sampler.Insert(seed_rng.NextDouble(), 0.5 + seed_rng.NextDouble());
  }

  constexpr int kInsertsPerWriter = 300;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> batches_served{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&sampler, &batches_served, w] {
      // Wait for the readers' first batch before churning: on a one-core
      // box the scheduler can otherwise run both writers to completion
      // before a reader ever starts, and the test would measure nothing.
      while (batches_served.load(std::memory_order_acquire) == 0) {
        std::this_thread::yield();
      }
      // Writer w inserts into [2 + w, 3 + w) — outside every queried
      // interval and disjoint from the other writer.
      Rng rng(1000 + w);
      for (int i = 0; i < kInsertsPerWriter; ++i) {
        sampler.Insert(2.0 + w + rng.NextDouble(), 0.5 + rng.NextDouble());
      }
    });
  }
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&sampler, &stop, &batches_served, r] {
      Rng rng(2000 + r);
      ScratchArena arena;
      KeyBatchResult result;
      std::vector<KeyBatchQuery> queries;
      for (int i = 0; i < 16; ++i) {
        const double lo = rng.NextDouble() * 0.5;
        queries.push_back({lo, lo + 0.4, 8});
      }
      do {  // at least one batch even if the writers already finished
        sampler.QueryBatch(queries, &rng, &arena, &result);
        ASSERT_EQ(result.num_queries(), queries.size());
        for (size_t i = 0; i < queries.size(); ++i) {
          ASSERT_EQ(result.resolved[i], 1);
          const auto samples = result.SamplesFor(i);
          ASSERT_EQ(samples.size(), queries[i].s);
          for (double key : samples) {
            ASSERT_GE(key, queries[i].lo);
            ASSERT_LE(key, queries[i].hi);
          }
        }
        batches_served.fetch_add(1, std::memory_order_release);
      } while (!stop.load(std::memory_order_acquire));
    });
  }
  threads[0].join();
  threads[1].join();
  stop.store(true, std::memory_order_release);
  threads[2].join();
  threads[3].join();

  EXPECT_GT(batches_served.load(), 0u);
  EXPECT_EQ(sampler.size(), 200u + 2 * kInsertsPerWriter);
  EXPECT_EQ(sampler.versions_published(), 200u + 2 * kInsertsPerWriter);
  // All retired versions/components come back once writers are done.
  sampler.epoch_manager()->Drain();
  EXPECT_EQ(sampler.epoch_manager()->retired_pending(), 0u);
}

TEST(ConcurrentSnapshotTest, LogarithmicChiSquareUnderChurn) {
  // Law check under concurrent publication: the reader samples
  // [-1, 1.5] — covering exactly the 64 prepopulated keys — while a
  // churn thread inserts keys in [2, 3). Every pinned version yields the
  // SAME law over the queried interval, so the pooled tally must pass
  // chi-square at alpha 1e-6.
  LogarithmicRangeSampler sampler;
  Rng setup_rng(31);
  const size_t n = 64;
  std::vector<double> keys;
  std::vector<double> weights;
  std::map<double, size_t> index;
  for (size_t i = 0; i < n; ++i) {
    keys.push_back((static_cast<double>(i) + setup_rng.NextDouble()) /
                   static_cast<double>(n));
    weights.push_back(0.5 + 2.0 * setup_rng.NextDouble());
    index[keys.back()] = i;
    sampler.Insert(keys.back(), weights.back());
  }

  std::atomic<bool> stop{false};
  std::thread churn([&sampler, &stop] {
    // Capped so the single-core CI box isn't starved by merge rebuilds;
    // 20000 inserts publish versions throughout the reader's whole run.
    double next = 2.0;
    for (int i = 0; i < 20000 && !stop.load(std::memory_order_acquire); ++i) {
      sampler.Insert(next, 1.0);
      next += 1e-6;  // distinct, always inside [2, 3)
    }
  });

  Rng rng(33);
  ScratchArena arena;
  KeyBatchResult result;
  const std::vector<KeyBatchQuery> queries(16, KeyBatchQuery{-1.0, 1.5, 64});
  std::vector<uint64_t> counts(n, 0);
  uint64_t total = 0;
  for (int round = 0; round < 200; ++round) {
    sampler.QueryBatch(queries, &rng, &arena, &result);
    for (double key : result.keys) {
      const auto it = index.find(key);
      ASSERT_NE(it, index.end()) << "sampled key outside the fixed law";
      ++counts[it->second];
      ++total;
    }
  }
  stop.store(true, std::memory_order_release);
  churn.join();
  ASSERT_EQ(total, 200u * 16u * 64u);
  testing::ExpectDistributionClose(counts, testing::Normalize(weights));
}

TEST(ConcurrentSnapshotTest, AliasStressWritersVsSampleBatchReaders) {
  // TSan structural target: 2 mutating threads (insert/remove churn and
  // same-weight SetWeight churn) against 2 SampleBatch reader threads.
  DynamicAlias alias;
  Rng setup_rng(41);
  std::vector<size_t> base;
  std::vector<double> base_weights;
  for (int i = 0; i < 64; ++i) {
    base_weights.push_back(0.5 + setup_rng.NextDouble());
    base.push_back(alias.Insert(base_weights.back()));
  }
  const size_t base_count = base.size();

  constexpr int kOpsPerWriter = 400;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> samples_drawn{0};
  // As in the logarithmic stress test: writers hold until the readers'
  // first batch lands, so the threads genuinely overlap on a one-core
  // box instead of the writers racing to completion unobserved.
  const auto await_readers = [&samples_drawn] {
    while (samples_drawn.load(std::memory_order_acquire) == 0) {
      std::this_thread::yield();
    }
  };
  std::vector<std::thread> threads;
  threads.emplace_back([&alias, base_count, &await_readers] {
    await_readers();
    // Insert/remove transients; never touches base handles.
    Rng rng(42);
    std::vector<size_t> transients;
    for (int i = 0; i < kOpsPerWriter; ++i) {
      if (transients.empty() || rng.Below(2) == 0) {
        transients.push_back(alias.Insert(0.25 + rng.NextDouble()));
        ASSERT_GE(transients.back(), base_count);
      } else {
        const size_t victim = rng.Below(transients.size());
        alias.Remove(transients[victim]);
        transients[victim] = transients.back();
        transients.pop_back();
      }
    }
  });
  threads.emplace_back([&alias, &base, &base_weights, &await_readers] {
    await_readers();
    // Same-weight SetWeight churn: full detach/attach structural motion,
    // zero law movement.
    Rng rng(43);
    for (int i = 0; i < kOpsPerWriter; ++i) {
      const size_t pick = rng.Below(base.size());
      alias.SetWeight(base[pick], base_weights[pick]);
    }
  });
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&alias, &stop, &samples_drawn, r] {
      Rng rng(4000 + r);
      std::vector<size_t> out;
      do {  // at least one batch even if the writers already finished
        out.clear();
        alias.SampleBatch(256, &rng, &out);
        ASSERT_EQ(out.size(), 256u);
        for (size_t handle : out) {
          // Handles are dense: never beyond base + live transients.
          ASSERT_LT(handle, 4096u);
        }
        samples_drawn.fetch_add(out.size(), std::memory_order_release);
      } while (!stop.load(std::memory_order_acquire));
    });
  }
  threads[0].join();
  threads[1].join();
  stop.store(true, std::memory_order_release);
  threads[2].join();
  threads[3].join();

  EXPECT_GT(samples_drawn.load(), 0u);
  EXPECT_EQ(alias.versions_published(), 2u * kOpsPerWriter + 64u);
  alias.epoch_manager()->Drain();
  EXPECT_EQ(alias.epoch_manager()->retired_pending(), 0u);
  // The base law survived the churn verbatim.
  for (size_t i = 0; i < base.size(); ++i) {
    EXPECT_DOUBLE_EQ(alias.weight(base[i]), base_weights[i]);
  }
}

TEST(ConcurrentSnapshotTest, AliasChiSquareUnderChurn) {
  // Law check under churn: base elements keep fixed weights; the churn
  // thread mixes same-weight SetWeight (structural motion, identical law)
  // with insert/remove of negligible-weight transients. Conditioned on
  // drawing a BASE handle, the law is exactly Normalize(base_weights)
  // regardless of transients, so the tally excludes transient draws
  // (expected count ~ 1e-4 over the whole run) and chi-squares the rest.
  DynamicAlias alias;
  Rng setup_rng(51);
  const size_t n = 48;
  std::vector<size_t> base;
  std::vector<double> base_weights;
  for (size_t i = 0; i < n; ++i) {
    base_weights.push_back(0.5 + 2.0 * setup_rng.NextDouble());
    base.push_back(alias.Insert(base_weights.back()));
  }

  std::atomic<bool> stop{false};
  std::thread churn([&alias, &base, &base_weights, &stop] {
    Rng rng(52);
    std::vector<size_t> transients;
    while (!stop.load(std::memory_order_acquire)) {
      const uint64_t action = rng.Below(3);
      if (action == 0 && !transients.empty()) {
        const size_t victim = rng.Below(transients.size());
        alias.Remove(transients[victim]);
        transients[victim] = transients.back();
        transients.pop_back();
      } else if (action == 1 && transients.size() < 32) {
        transients.push_back(alias.Insert(1e-9));
      } else {
        const size_t pick = rng.Below(base.size());
        alias.SetWeight(base[pick], base_weights[pick]);
      }
    }
  });

  Rng rng(53);
  std::vector<size_t> out;
  std::vector<uint64_t> counts(n, 0);
  uint64_t transient_draws = 0;
  for (int round = 0; round < 800; ++round) {
    out.clear();
    alias.SampleBatch(256, &rng, &out);
    for (size_t handle : out) {
      if (handle < n) {
        ++counts[handle];
      } else {
        ++transient_draws;
      }
    }
  }
  stop.store(true, std::memory_order_release);
  churn.join();
  // Total transient weight is <= 32e-9 against ~48 units of base weight:
  // seeing even a handful of transient draws would mean the law broke.
  EXPECT_LT(transient_draws, 5u);
  testing::ExpectDistributionClose(counts, testing::Normalize(base_weights));
}

TEST(ConcurrentSnapshotTest, VersionedCoverageEngineServesAcrossRebuilds) {
  // The cover layer's snapshot discipline: batches pinned on one engine
  // stay valid and law-correct while Rebuild() publishes replacements.
  const size_t n = 32;
  std::vector<double> position_weights;
  Rng setup_rng(61);
  for (size_t i = 0; i < n; ++i) {
    position_weights.push_back(0.5 + setup_rng.NextDouble());
  }
  ThreadPool pool(2);
  VersionedCoverageEngine engine(position_weights);
  engine.set_maintenance_pool(&pool);

  std::atomic<bool> stop{false};
  std::thread rebuilder([&engine, &position_weights, &stop] {
    // Same weights every time: versions churn, the law doesn't. do-while
    // so at least one Rebuild happens even if this thread is scheduled
    // only after the reader already finished (one-core box).
    do {
      engine.Rebuild(position_weights);
      std::this_thread::yield();
    } while (!stop.load(std::memory_order_acquire));
  });

  Rng rng(62);
  ScratchArena arena;
  CoverPlan plan;
  for (int q = 0; q < 8; ++q) {
    plan.BeginQuery(64);
    plan.AddGroup(0, n / 2 - 1, 1.0);
    plan.AddGroup(n / 2, n - 1, 1.0);
  }
  std::vector<size_t> out;
  std::vector<uint64_t> counts(n, 0);
  for (int round = 0; round < 400; ++round) {
    out.clear();
    arena.Reset();
    engine.SampleBatch(plan, &rng, &arena, &out);
    ASSERT_EQ(out.size(), 8u * 64u);
    for (size_t position : out) {
      ASSERT_LT(position, n);
      ++counts[position];
    }
  }
  stop.store(true, std::memory_order_release);
  rebuilder.join();
  EXPECT_GT(engine.versions_published(), 0u);
  // Both halves get equal budget; within a half, proportional to weight.
  std::vector<double> expected(n);
  double left = 0.0;
  double right = 0.0;
  for (size_t i = 0; i < n / 2; ++i) left += position_weights[i];
  for (size_t i = n / 2; i < n; ++i) right += position_weights[i];
  for (size_t i = 0; i < n; ++i) {
    expected[i] = position_weights[i] / (i < n / 2 ? left : right);
  }
  testing::ExpectDistributionClose(counts, testing::Normalize(expected));
}

TEST(ConcurrentSnapshotTest, EpochTelemetryReachesRegistrySink) {
  MetricsRegistry registry;
  TelemetrySink* sink = registry.GetOrCreate("log_sampler");
  LogarithmicRangeSampler sampler;
  sampler.set_telemetry(sink);
  Rng rng(71);
  for (int i = 0; i < 300; ++i) {
    sampler.Insert(rng.NextDouble(), 1.0);
  }
  const QueryStats stats = sink->MergedStats();
  EXPECT_EQ(stats.versions_published, 300u);
  EXPECT_GT(stats.versions_reclaimed, 0u);
  EXPECT_GT(stats.rebuild_ns, 0u);
  // Readers pin snapshots; the writer path exports the running total.
  std::vector<double> out;
  ASSERT_TRUE(sampler.Query(0.0, 1.0, 10, &rng, &out));
  sampler.Insert(2.0, 1.0);
  EXPECT_GT(sink->MergedStats().reader_pins, 0u);
  // The registry exporters carry the new counters.
  EXPECT_NE(registry.ToJson().find("\"versions_published\""), std::string::npos);
  EXPECT_NE(registry.ToText().find("published="), std::string::npos);

  TelemetrySink* alias_sink = registry.GetOrCreate("alias");
  DynamicAlias alias;
  alias.set_telemetry(alias_sink);
  const size_t handle = alias.Insert(1.0);
  alias.SetWeight(handle, 2.0);
  alias.Remove(handle);
  EXPECT_EQ(alias_sink->MergedStats().versions_published, 3u);
}

TEST(ConcurrentSnapshotTest, BoundedLimboAcrossThousandPublishCycles) {
  // Acceptance bound: >= 1000 publish cycles (inserts) with transient
  // readers leave retired_pending bounded — versions come back instead of
  // accumulating. MemoryBytes of the final structure stays in the same
  // ballpark as a freshly built copy (no hidden retained versions).
  LogarithmicRangeSampler sampler;
  Rng rng(81);
  size_t max_pending = 0;
  std::vector<double> out;
  for (int i = 0; i < 1200; ++i) {
    sampler.Insert(rng.NextDouble(), 1.0);
    if (i % 7 == 0) {
      out.clear();
      sampler.Query(0.0, 1.0, 4, &rng, &out);
    }
    max_pending =
        std::max(max_pending, sampler.epoch_manager()->retired_pending());
  }
  // A single carry chain retires O(log n) components + 1 version; with
  // prompt reclamation the high-water pending stays well under the ~2200
  // total objects retired across the run.
  EXPECT_LE(max_pending, 64u);
  EXPECT_EQ(sampler.versions_published(), 1200u);  // one per insert

  DynamicAlias alias;
  size_t alias_handle = alias.Insert(1.0);
  size_t alias_max_pending = 0;
  for (int i = 0; i < 1000; ++i) {
    alias.SetWeight(alias_handle, 1.0 + (i % 3));
    alias_max_pending = std::max(alias_max_pending,
                                 alias.epoch_manager()->retired_pending());
  }
  // Left-right retires exactly one grace flag per op and reclaims it on
  // the next: never more than a couple outstanding.
  EXPECT_LE(alias_max_pending, 2u);
}

}  // namespace
}  // namespace iqs
