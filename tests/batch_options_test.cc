// Tests for the BatchOptions serving-contract fields (deadline_ns /
// max_batch, PR 8): defaults must be a byte-identical NO-OP for every
// pre-existing call site, and the armed max_batch bound must accept any
// batch within the window. (The violated-bound path is an IQS_CHECK
// abort, exercised implicitly by the serve layer's armed batches.)

#include <cstddef>
#include <memory>
#include <vector>

#include "gtest/gtest.h"
#include "iqs/range/chunked_range_sampler.h"
#include "iqs/range/range_sampler.h"
#include "iqs/util/batch_options.h"
#include "iqs/util/rng.h"
#include "iqs/util/scratch_arena.h"

namespace iqs {
namespace {

TEST(BatchOptionsTest, ContractFieldsDefaultToNoContract) {
  const BatchOptions opts;
  EXPECT_EQ(opts.deadline_ns, 0u);
  EXPECT_EQ(opts.max_batch, 0u);
  EXPECT_TRUE(opts.sequential());
}

class BatchOptionsContractTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(7);
    std::vector<double> keys(256);
    std::vector<double> weights(256);
    for (size_t i = 0; i < keys.size(); ++i) {
      keys[i] = static_cast<double>(i);
      weights[i] = 0.5 + rng.NextDouble();
    }
    sampler_ = std::make_unique<ChunkedRangeSampler>(keys, weights);
    for (size_t q = 0; q < 48; ++q) {
      const double lo = rng.NextDouble() * 200.0;
      queries_.push_back(
          BatchQuery{lo, lo + 40.0, 1 + (q % 9)});
    }
  }

  BatchResult Run(const BatchOptions& opts, uint64_t seed) {
    Rng rng(seed);
    ScratchArena arena;
    BatchResult result;
    sampler_->QueryBatch(queries_, &rng, &arena, opts, &result);
    return result;
  }

  std::unique_ptr<ChunkedRangeSampler> sampler_;
  std::vector<BatchQuery> queries_;
};

TEST_F(BatchOptionsContractTest, DefaultsAreByteIdenticalToPreContractCalls) {
  // An old call site is exactly `BatchOptions{}` (or the convenience
  // overload that builds one): setting the new fields to their defaults
  // must not perturb a single sample, in either execution mode.
  for (size_t num_threads : {0u, 2u}) {
    BatchOptions old_site;
    old_site.num_threads = num_threads;

    BatchOptions new_site = old_site;
    new_site.deadline_ns = 0;
    new_site.max_batch = 0;

    const BatchResult a = Run(old_site, 1234);
    const BatchResult b = Run(new_site, 1234);
    EXPECT_EQ(a.positions, b.positions) << num_threads << " threads";
    EXPECT_EQ(a.offsets, b.offsets);
    EXPECT_EQ(a.resolved, b.resolved);
  }
}

TEST_F(BatchOptionsContractTest, ArmedContractIsANoOpWithinTheWindow) {
  // A nonzero max_batch >= the batch size, and any deadline, only arm
  // validation — the samples must still be byte-identical.
  for (size_t num_threads : {0u, 2u}) {
    BatchOptions plain;
    plain.num_threads = num_threads;

    BatchOptions armed = plain;
    armed.max_batch = queries_.size();  // tight bound: exactly the batch
    armed.deadline_ns = 1;              // executors never act on it

    const BatchResult a = Run(plain, 5678);
    const BatchResult b = Run(armed, 5678);
    EXPECT_EQ(a.positions, b.positions) << num_threads << " threads";
    EXPECT_EQ(a.offsets, b.offsets);
    EXPECT_EQ(a.resolved, b.resolved);
  }
}

}  // namespace
}  // namespace iqs
