#include "iqs/tree/subtree_sampler.h"

#include <set>
#include <unordered_map>
#include <vector>

#include "gtest/gtest.h"
#include "iqs/tree/weighted_tree.h"
#include "iqs/util/rng.h"
#include "test_util.h"

namespace iqs {
namespace {

WeightedTree BuildFixedTree(std::vector<WeightedTree::NodeId>* leaves) {
  // root -> {a, b, c}; a -> {a1, a2}; b leaf; c -> {c1, c2, c3}.
  WeightedTree tree;
  const auto a = tree.AddChild(tree.root());
  const auto b = tree.AddChild(tree.root());
  const auto c = tree.AddChild(tree.root());
  const auto a1 = tree.AddChild(a);
  const auto a2 = tree.AddChild(a);
  const auto c1 = tree.AddChild(c);
  const auto c2 = tree.AddChild(c);
  const auto c3 = tree.AddChild(c);
  tree.SetLeafWeight(b, 4.0);
  tree.SetLeafWeight(a1, 1.0);
  tree.SetLeafWeight(a2, 2.0);
  tree.SetLeafWeight(c1, 3.0);
  tree.SetLeafWeight(c2, 1.0);
  tree.SetLeafWeight(c3, 2.0);
  tree.Finalize();
  *leaves = {a1, a2, b, c1, c2, c3};
  return tree;
}

TEST(SubtreeSamplerTest, LeafIntervalsAreContiguousDfsRuns) {
  std::vector<WeightedTree::NodeId> leaves;
  WeightedTree tree = BuildFixedTree(&leaves);
  SubtreeSampler sampler(&tree);
  // DFT order: a1 a2 b c1 c2 c3 (children in insertion order).
  for (size_t p = 0; p < leaves.size(); ++p) {
    EXPECT_EQ(sampler.LeafAt(p), leaves[p]);
  }
  const auto [root_lo, root_hi] = sampler.LeafInterval(tree.root());
  EXPECT_EQ(root_lo, 0u);
  EXPECT_EQ(root_hi, 5u);
  // Subtree of node "c" (children c1..c3) spans positions 3..5.
  const auto c = tree.Parent(leaves[3]);
  const auto [c_lo, c_hi] = sampler.LeafInterval(c);
  EXPECT_EQ(c_lo, 3u);
  EXPECT_EQ(c_hi, 5u);
}

TEST(SubtreeSamplerTest, RootQueryMatchesWeights) {
  Rng rng(1);
  std::vector<WeightedTree::NodeId> leaves;
  WeightedTree tree = BuildFixedTree(&leaves);
  SubtreeSampler sampler(&tree);
  std::vector<WeightedTree::NodeId> out;
  sampler.Query(tree.root(), 200000, &rng, &out);
  std::unordered_map<WeightedTree::NodeId, size_t> index_of;
  std::vector<double> weights;
  for (size_t i = 0; i < leaves.size(); ++i) {
    index_of[leaves[i]] = i;
    weights.push_back(tree.Weight(leaves[i]));
  }
  std::vector<size_t> samples;
  for (auto leaf : out) samples.push_back(index_of.at(leaf));
  testing::ExpectSamplesMatchWeights(samples, weights);
}

TEST(SubtreeSamplerTest, SubtreeQueryRestrictsToSubtree) {
  Rng rng(2);
  std::vector<WeightedTree::NodeId> leaves;
  WeightedTree tree = BuildFixedTree(&leaves);
  SubtreeSampler sampler(&tree);
  const auto c = tree.Parent(leaves[3]);
  std::vector<WeightedTree::NodeId> out;
  sampler.Query(c, 120000, &rng, &out);
  std::set<WeightedTree::NodeId> allowed = {leaves[3], leaves[4], leaves[5]};
  std::vector<size_t> samples;
  for (auto leaf : out) {
    ASSERT_TRUE(allowed.contains(leaf));
    samples.push_back(leaf == leaves[3] ? 0 : (leaf == leaves[4] ? 1 : 2));
  }
  testing::ExpectSamplesMatchWeights(samples, {3.0, 1.0, 2.0});
}

TEST(SubtreeSamplerTest, LeafQueryReturnsThatLeaf) {
  Rng rng(3);
  std::vector<WeightedTree::NodeId> leaves;
  WeightedTree tree = BuildFixedTree(&leaves);
  SubtreeSampler sampler(&tree);
  std::vector<WeightedTree::NodeId> out;
  sampler.Query(leaves[1], 10, &rng, &out);
  for (auto leaf : out) EXPECT_EQ(leaf, leaves[1]);
}

TEST(SubtreeSamplerTest, AgreesWithTopDownSamplerOnRandomTrees) {
  // Property test: the Lemma-4 structure and the Section-3.2 top-down
  // sampler must induce the same law on every subtree. Build a biggish
  // random tree and chi-square the two sampling methods per subtree
  // against the exact leaf weights.
  Rng rng(4);
  WeightedTree tree;
  std::vector<WeightedTree::NodeId> internal = {tree.root()};
  std::vector<WeightedTree::NodeId> all_nodes = {tree.root()};
  for (int grow = 0; grow < 60; ++grow) {
    const auto parent = internal[rng.Below(internal.size())];
    const auto child = tree.AddChild(parent);
    internal.push_back(child);
    all_nodes.push_back(child);
  }
  std::vector<WeightedTree::NodeId> leaves;
  for (auto node : all_nodes) {
    if (tree.Children(node).empty()) {
      tree.SetLeafWeight(node, 0.5 + rng.NextDouble());
      leaves.push_back(node);
    }
  }
  tree.Finalize();
  SubtreeSampler sampler(&tree);

  // Check three random subtrees (including the root).
  std::vector<WeightedTree::NodeId> queries = {tree.root()};
  queries.push_back(all_nodes[1 + rng.Below(all_nodes.size() - 1)]);
  queries.push_back(all_nodes[1 + rng.Below(all_nodes.size() - 1)]);
  for (auto q : queries) {
    const auto [lo, hi] = sampler.LeafInterval(q);
    std::vector<double> weights;
    for (size_t p = lo; p <= hi; ++p) {
      weights.push_back(tree.Weight(sampler.LeafAt(p)));
    }
    std::unordered_map<WeightedTree::NodeId, size_t> index_of;
    for (size_t p = lo; p <= hi; ++p) index_of[sampler.LeafAt(p)] = p - lo;
    std::vector<WeightedTree::NodeId> out;
    sampler.Query(q, 60000, &rng, &out);
    std::vector<size_t> samples;
    for (auto leaf : out) samples.push_back(index_of.at(leaf));
    testing::ExpectSamplesMatchWeights(samples, weights);
  }
}

TEST(SubtreeSamplerTest, BatchMatchesSingleQueryLaw) {
  // Chi-square equivalence (alpha 1e-6): QueryBatch through the shared
  // CoverExecutor must draw each query from the same subtree law as the
  // single-query path.
  std::vector<WeightedTree::NodeId> leaves;
  WeightedTree tree = BuildFixedTree(&leaves);
  SubtreeSampler sampler(&tree);
  const auto a = tree.Parent(leaves[0]);  // subtree {a1, a2}
  const auto c = tree.Parent(leaves[3]);  // subtree {c1, c2, c3}

  const std::vector<SubtreeBatchQuery> queries = {
      {tree.root(), 16}, {a, 8}, {c, 0}, {c, 8}};
  const size_t rounds = 4000;

  Rng single_rng(41);
  std::vector<std::vector<size_t>> single(queries.size());
  std::vector<WeightedTree::NodeId> scratch;
  for (size_t round = 0; round < rounds; ++round) {
    for (size_t i = 0; i < queries.size(); ++i) {
      scratch.clear();
      sampler.Query(queries[i].node, queries[i].s, &single_rng, &scratch);
      single[i].insert(single[i].end(), scratch.begin(), scratch.end());
    }
  }

  Rng batch_rng(42);
  ScratchArena arena;
  BatchResult result;
  std::vector<std::vector<size_t>> batch(queries.size());
  for (size_t round = 0; round < rounds; ++round) {
    sampler.QueryBatch(queries, &batch_rng, &arena, &result);
    ASSERT_EQ(result.num_queries(), queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(result.resolved[i], 1);
      const auto slice = result.SamplesFor(i);
      ASSERT_EQ(slice.size(), queries[i].s);
      batch[i].insert(batch[i].end(), slice.begin(), slice.end());
    }
  }

  for (size_t i = 0; i < queries.size(); ++i) {
    if (queries[i].s == 0) continue;
    const auto [lo, hi] = sampler.LeafInterval(queries[i].node);
    std::vector<double> expected(tree.num_nodes(), 0.0);
    for (size_t p = lo; p <= hi; ++p) {
      expected[sampler.LeafAt(p)] = tree.Weight(sampler.LeafAt(p));
    }
    testing::ExpectSamplesMatchWeights(single[i], expected);
    testing::ExpectSamplesMatchWeights(batch[i], expected);
  }
}

}  // namespace
}  // namespace iqs
