// Tests for the batched query-serving fast path: QueryBatch /
// QueryPositionsBatch structure, the zero-steady-state-allocation arena
// contract, and — most importantly — chi-square evidence (alpha 1e-6, per
// test_util.h conventions) that the batched multinomial/grouped path draws
// from exactly the same per-query distribution as the single-query
// per-sample path, on uniform, Zipf, and clustered workloads.

#include <cmath>
#include <cstdint>
#include <memory>
#include <tuple>
#include <vector>

#include "gtest/gtest.h"
#include "iqs/range/aug_range_sampler.h"
#include "iqs/range/bst_range_sampler.h"
#include "iqs/range/chunked_range_sampler.h"
#include "iqs/util/distributions.h"
#include "iqs/util/rng.h"
#include "iqs/util/scratch_arena.h"
#include "test_util.h"

namespace iqs {
namespace {

enum class SamplerKind { kBst, kAug, kChunked };
enum class Workload { kUniform, kZipf, kClustered };

std::unique_ptr<RangeSampler> MakeSampler(SamplerKind kind,
                                          const std::vector<double>& keys,
                                          const std::vector<double>& weights) {
  switch (kind) {
    case SamplerKind::kBst:
      return std::make_unique<BstRangeSampler>(keys, weights);
    case SamplerKind::kAug:
      return std::make_unique<AugRangeSampler>(keys, weights);
    case SamplerKind::kChunked:
      return std::make_unique<ChunkedRangeSampler>(keys, weights);
  }
  return nullptr;
}

struct Data {
  std::vector<double> keys;
  std::vector<double> weights;
};

Data MakeWorkload(Workload workload, size_t n, Rng* rng) {
  switch (workload) {
    case Workload::kUniform:
      return {UniformKeys(n, rng), std::vector<double>(n, 1.0)};
    case Workload::kZipf:
      return {UniformKeys(n, rng), ZipfWeights(n, 1.0, rng)};
    case Workload::kClustered:
      return {ClusteredKeys(n, 5, rng), ZipfWeights(n, 0.5, rng)};
  }
  return {};
}

// Restricts `weights` to [a, b], zero elsewhere — the expected per-draw
// law for any range query over [a, b].
std::vector<double> RangeWeights(const std::vector<double>& weights, size_t a,
                                 size_t b) {
  std::vector<double> restricted(weights.size(), 0.0);
  for (size_t i = a; i <= b; ++i) restricted[i] = weights[i];
  return restricted;
}

class BatchEquivalence
    : public ::testing::TestWithParam<std::tuple<SamplerKind, Workload>> {};

TEST_P(BatchEquivalence, BatchedAndSinglePathsDrawSameDistribution) {
  const auto [kind, workload] = GetParam();
  Rng data_rng(101);
  const size_t n = 1500;
  const Data data = MakeWorkload(workload, n, &data_rng);
  const auto sampler = MakeSampler(kind, data.keys, data.weights);

  // One awkward range (straddles chunk boundaries and forces a multi-node
  // cover) exercised heavily by both paths.
  const size_t a = 137;
  const size_t b = 1201;
  const size_t s = 96;
  const size_t rounds = 1500;

  Rng single_rng(7);
  std::vector<size_t> single_samples;
  for (size_t round = 0; round < rounds; ++round) {
    sampler->QueryPositions(a, b, s, &single_rng, &single_samples);
  }

  Rng batch_rng(8);
  ScratchArena arena;
  std::vector<size_t> batch_samples;
  std::vector<PositionQuery> queries(8, PositionQuery{a, b, s});
  for (size_t round = 0; round < rounds / queries.size(); ++round) {
    sampler->QueryPositionsBatch(queries, &batch_rng, &arena,
                                 &batch_samples);
    arena.Reset();
  }

  const std::vector<double> expected = RangeWeights(data.weights, a, b);
  testing::ExpectSamplesMatchWeights(single_samples, expected);
  testing::ExpectSamplesMatchWeights(batch_samples, expected);
}

INSTANTIATE_TEST_SUITE_P(
    AllSamplersAllWorkloads, BatchEquivalence,
    ::testing::Combine(::testing::Values(SamplerKind::kBst, SamplerKind::kAug,
                                         SamplerKind::kChunked),
                       ::testing::Values(Workload::kUniform, Workload::kZipf,
                                         Workload::kClustered)));

TEST(QueryBatchTest, FlatResultSlicesMatchQueries) {
  Rng rng(1);
  const size_t n = 512;
  const auto keys = UniformKeys(n, &rng);
  const std::vector<double> weights(n, 1.0);
  const AugRangeSampler sampler(keys, weights);

  // Mix of resolvable queries, an empty interval, and s == 0.
  const std::vector<BatchQuery> queries = {
      {keys[10], keys[200], 32},
      {keys[300] + 1e-12, keys[300] + 2e-12, 16},  // empty: between keys
      {keys[0], keys[n - 1], 8},
      {keys[50], keys[60], 0},
  };
  ScratchArena arena;
  BatchResult result;
  Rng qrng(2);
  sampler.QueryBatch(queries, &qrng, &arena, &result);

  ASSERT_EQ(result.num_queries(), queries.size());
  EXPECT_EQ(result.resolved[0], 1);
  EXPECT_EQ(result.resolved[1], 0);
  EXPECT_EQ(result.resolved[2], 1);
  EXPECT_EQ(result.resolved[3], 1);
  EXPECT_EQ(result.SamplesFor(0).size(), 32u);
  EXPECT_EQ(result.SamplesFor(1).size(), 0u);
  EXPECT_EQ(result.SamplesFor(2).size(), 8u);
  EXPECT_EQ(result.SamplesFor(3).size(), 0u);
  EXPECT_EQ(result.positions.size(), 40u);
  for (const size_t p : result.SamplesFor(0)) {
    EXPECT_GE(p, 10u);
    EXPECT_LE(p, 200u);
  }
  for (const size_t p : result.SamplesFor(2)) EXPECT_LT(p, n);
}

TEST(QueryBatchTest, SteadyStateMakesNoArenaAllocations) {
  Rng rng(3);
  const size_t n = 4096;
  const auto keys = UniformKeys(n, &rng);
  const auto weights = ZipfWeights(n, 1.0, &rng);
  const ChunkedRangeSampler sampler(keys, weights);

  std::vector<BatchQuery> queries;
  for (int i = 0; i < 64; ++i) {
    const auto [lo, hi] = IntervalWithSelectivity(keys, 700, &rng);
    queries.push_back({lo, hi, 64});
  }
  ScratchArena arena;
  BatchResult result;
  Rng qrng(4);
  sampler.QueryBatch(queries, &qrng, &arena, &result);  // warm-up growth
  sampler.QueryBatch(queries, &qrng, &arena, &result);  // coalesce
  const size_t warm_blocks = arena.blocks_allocated();
  for (int round = 0; round < 20; ++round) {
    sampler.QueryBatch(queries, &qrng, &arena, &result);
  }
  EXPECT_EQ(arena.blocks_allocated(), warm_blocks)
      << "batched serving must be allocation-free in steady state";
}

TEST(QueryBatchTest, BatchDrawsAreIndependentAcrossQueries) {
  // Two identical queries in one batch must not be correlated: the
  // fraction of rounds where both queries pick the same position matches
  // the collision probability of independent draws.
  Rng rng(5);
  const size_t n = 64;
  const auto keys = UniformKeys(n, &rng);
  const std::vector<double> weights(n, 1.0);
  const BstRangeSampler sampler(keys, weights);

  const std::vector<BatchQuery> queries = {{keys[0], keys[n - 1], 1},
                                           {keys[0], keys[n - 1], 1}};
  ScratchArena arena;
  BatchResult result;
  Rng qrng(6);
  int collisions = 0;
  const int rounds = 60000;
  for (int round = 0; round < rounds; ++round) {
    sampler.QueryBatch(queries, &qrng, &arena, &result);
    collisions +=
        result.SamplesFor(0)[0] == result.SamplesFor(1)[0] ? 1 : 0;
  }
  // Collision probability for two independent uniform draws over n values
  // is 1/n; 5-sigma band at rounds trials.
  const double expect = static_cast<double>(rounds) / n;
  const double sigma = std::sqrt(expect * (1.0 - 1.0 / n));
  EXPECT_NEAR(static_cast<double>(collisions), expect, 5 * sigma);
}

}  // namespace
}  // namespace iqs
