// Tests for the batched query-serving fast path: QueryBatch /
// QueryPositionsBatch structure, the zero-steady-state-allocation arena
// contract, and — most importantly — chi-square evidence (alpha 1e-6, per
// test_util.h conventions) that the batched multinomial/grouped path draws
// from exactly the same per-query distribution as the single-query
// per-sample path, on uniform, Zipf, and clustered workloads.

#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <tuple>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "iqs/multidim/kd_sampler.h"
#include "iqs/multidim/multidim_batch.h"
#include "iqs/multidim/quadtree.h"
#include "iqs/multidim/range_tree.h"
#include "iqs/range/aug_range_sampler.h"
#include "iqs/range/bst_range_sampler.h"
#include "iqs/range/chunked_range_sampler.h"
#include "iqs/util/distributions.h"
#include "iqs/util/rng.h"
#include "iqs/util/scratch_arena.h"
#include "test_util.h"

namespace iqs {
namespace {

enum class SamplerKind { kBst, kAug, kChunked };
enum class Workload { kUniform, kZipf, kClustered };

std::unique_ptr<RangeSampler> MakeSampler(SamplerKind kind,
                                          const std::vector<double>& keys,
                                          const std::vector<double>& weights) {
  switch (kind) {
    case SamplerKind::kBst:
      return std::make_unique<BstRangeSampler>(keys, weights);
    case SamplerKind::kAug:
      return std::make_unique<AugRangeSampler>(keys, weights);
    case SamplerKind::kChunked:
      return std::make_unique<ChunkedRangeSampler>(keys, weights);
  }
  return nullptr;
}

struct Data {
  std::vector<double> keys;
  std::vector<double> weights;
};

Data MakeWorkload(Workload workload, size_t n, Rng* rng) {
  switch (workload) {
    case Workload::kUniform:
      return {UniformKeys(n, rng), std::vector<double>(n, 1.0)};
    case Workload::kZipf:
      return {UniformKeys(n, rng), ZipfWeights(n, 1.0, rng)};
    case Workload::kClustered:
      return {ClusteredKeys(n, 5, rng), ZipfWeights(n, 0.5, rng)};
  }
  return {};
}

// Restricts `weights` to [a, b], zero elsewhere — the expected per-draw
// law for any range query over [a, b].
std::vector<double> RangeWeights(const std::vector<double>& weights, size_t a,
                                 size_t b) {
  std::vector<double> restricted(weights.size(), 0.0);
  for (size_t i = a; i <= b; ++i) restricted[i] = weights[i];
  return restricted;
}

class BatchEquivalence
    : public ::testing::TestWithParam<std::tuple<SamplerKind, Workload>> {};

TEST_P(BatchEquivalence, BatchedAndSinglePathsDrawSameDistribution) {
  const auto [kind, workload] = GetParam();
  Rng data_rng(101);
  const size_t n = 1500;
  const Data data = MakeWorkload(workload, n, &data_rng);
  const auto sampler = MakeSampler(kind, data.keys, data.weights);

  // One awkward range (straddles chunk boundaries and forces a multi-node
  // cover) exercised heavily by both paths.
  const size_t a = 137;
  const size_t b = 1201;
  const size_t s = 96;
  const size_t rounds = 1500;

  Rng single_rng(7);
  std::vector<size_t> single_samples;
  for (size_t round = 0; round < rounds; ++round) {
    sampler->QueryPositions(a, b, s, &single_rng, &single_samples);
  }

  Rng batch_rng(8);
  ScratchArena arena;
  std::vector<size_t> batch_samples;
  std::vector<PositionQuery> queries(8, PositionQuery{a, b, s});
  for (size_t round = 0; round < rounds / queries.size(); ++round) {
    sampler->QueryPositionsBatch(queries, &batch_rng, &arena,
                                 &batch_samples);
    arena.Reset();
  }

  const std::vector<double> expected = RangeWeights(data.weights, a, b);
  testing::ExpectSamplesMatchWeights(single_samples, expected);
  testing::ExpectSamplesMatchWeights(batch_samples, expected);
}

INSTANTIATE_TEST_SUITE_P(
    AllSamplersAllWorkloads, BatchEquivalence,
    ::testing::Combine(::testing::Values(SamplerKind::kBst, SamplerKind::kAug,
                                         SamplerKind::kChunked),
                       ::testing::Values(Workload::kUniform, Workload::kZipf,
                                         Workload::kClustered)));

TEST(QueryBatchTest, FlatResultSlicesMatchQueries) {
  Rng rng(1);
  const size_t n = 512;
  const auto keys = UniformKeys(n, &rng);
  const std::vector<double> weights(n, 1.0);
  const AugRangeSampler sampler(keys, weights);

  // Mix of resolvable queries, an empty interval, and s == 0.
  const std::vector<BatchQuery> queries = {
      {keys[10], keys[200], 32},
      {keys[300] + 1e-12, keys[300] + 2e-12, 16},  // empty: between keys
      {keys[0], keys[n - 1], 8},
      {keys[50], keys[60], 0},
  };
  ScratchArena arena;
  BatchResult result;
  Rng qrng(2);
  sampler.QueryBatch(queries, &qrng, &arena, &result);

  ASSERT_EQ(result.num_queries(), queries.size());
  EXPECT_EQ(result.resolved[0], 1);
  EXPECT_EQ(result.resolved[1], 0);
  EXPECT_EQ(result.resolved[2], 1);
  EXPECT_EQ(result.resolved[3], 1);
  EXPECT_EQ(result.SamplesFor(0).size(), 32u);
  EXPECT_EQ(result.SamplesFor(1).size(), 0u);
  EXPECT_EQ(result.SamplesFor(2).size(), 8u);
  EXPECT_EQ(result.SamplesFor(3).size(), 0u);
  EXPECT_EQ(result.positions.size(), 40u);
  for (const size_t p : result.SamplesFor(0)) {
    EXPECT_GE(p, 10u);
    EXPECT_LE(p, 200u);
  }
  for (const size_t p : result.SamplesFor(2)) EXPECT_LT(p, n);
}

TEST(QueryBatchTest, SteadyStateMakesNoArenaAllocations) {
  Rng rng(3);
  const size_t n = 4096;
  const auto keys = UniformKeys(n, &rng);
  const auto weights = ZipfWeights(n, 1.0, &rng);
  const ChunkedRangeSampler sampler(keys, weights);

  std::vector<BatchQuery> queries;
  for (int i = 0; i < 64; ++i) {
    const auto [lo, hi] = IntervalWithSelectivity(keys, 700, &rng);
    queries.push_back({lo, hi, 64});
  }
  ScratchArena arena;
  BatchResult result;
  Rng qrng(4);
  sampler.QueryBatch(queries, &qrng, &arena, &result);  // warm-up growth
  sampler.QueryBatch(queries, &qrng, &arena, &result);  // coalesce
  const size_t warm_blocks = arena.blocks_allocated();
  for (int round = 0; round < 20; ++round) {
    sampler.QueryBatch(queries, &qrng, &arena, &result);
  }
  EXPECT_EQ(arena.blocks_allocated(), warm_blocks)
      << "batched serving must be allocation-free in steady state";
}

TEST(QueryBatchTest, BatchDrawsAreIndependentAcrossQueries) {
  // Two identical queries in one batch must not be correlated: the
  // fraction of rounds where both queries pick the same position matches
  // the collision probability of independent draws.
  Rng rng(5);
  const size_t n = 64;
  const auto keys = UniformKeys(n, &rng);
  const std::vector<double> weights(n, 1.0);
  const BstRangeSampler sampler(keys, weights);

  const std::vector<BatchQuery> queries = {{keys[0], keys[n - 1], 1},
                                           {keys[0], keys[n - 1], 1}};
  ScratchArena arena;
  BatchResult result;
  Rng qrng(6);
  int collisions = 0;
  const int rounds = 60000;
  for (int round = 0; round < rounds; ++round) {
    sampler.QueryBatch(queries, &qrng, &arena, &result);
    collisions +=
        result.SamplesFor(0)[0] == result.SamplesFor(1)[0] ? 1 : 0;
  }
  // Collision probability for two independent uniform draws over n values
  // is 1/n; 5-sigma band at rounds trials.
  const double expect = static_cast<double>(rounds) / n;
  const double sigma = std::sqrt(expect * (1.0 - 1.0 / n));
  EXPECT_NEAR(static_cast<double>(collisions), expect, 5 * sigma);
}

// ---------------------------------------------------------------------------
// Multidim QueryBatch: the 2-d samplers now serve batches through the same
// CoverExecutor layer; per-query law must match the single-query path.

std::vector<multidim::Point2> RandomPoints(size_t n, Rng* rng) {
  std::vector<multidim::Point2> points(n);
  for (auto& p : points) {
    p.x = rng->NextDouble();
    p.y = rng->NextDouble();
  }
  return points;
}

// Chi-square batch-vs-single equivalence for any sampler exposing
// QueryRect + QueryBatch over Point2 results.
template <typename Sampler>
void ExpectRectBatchEquivalence(const Sampler& sampler,
                                const std::vector<multidim::Point2>& points,
                                const std::vector<double>& weights,
                                const multidim::Rect& rect, uint64_t seed) {
  const size_t n = points.size();
  std::map<std::pair<double, double>, size_t> index;
  for (size_t i = 0; i < n; ++i) index[{points[i].x, points[i].y}] = i;
  std::vector<double> expected(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    if (rect.Contains(points[i])) expected[i] = weights[i];
  }

  const size_t s = 64;
  const size_t rounds = 1200;
  Rng single_rng(seed);
  std::vector<multidim::Point2> single;
  for (size_t round = 0; round < rounds; ++round) {
    ASSERT_TRUE(sampler.QueryRect(rect, s, &single_rng, &single));
  }

  Rng batch_rng(seed + 1);
  ScratchArena arena;
  multidim::PointBatchResult result;
  const std::vector<multidim::RectBatchQuery> queries(
      8, multidim::RectBatchQuery{rect, s});
  std::vector<size_t> batch_ids;
  for (size_t round = 0; round < rounds / queries.size(); ++round) {
    sampler.QueryBatch(queries, &batch_rng, &arena, &result);
    ASSERT_EQ(result.points.size(), queries.size() * s);
    for (const auto& p : result.points) {
      batch_ids.push_back(index.at({p.x, p.y}));
    }
  }
  std::vector<size_t> single_ids;
  single_ids.reserve(single.size());
  for (const auto& p : single) single_ids.push_back(index.at({p.x, p.y}));

  testing::ExpectSamplesMatchWeights(single_ids, expected);
  testing::ExpectSamplesMatchWeights(batch_ids, expected);
}

TEST(MultidimBatchTest, KdTreeBatchMatchesSingleQueryLaw) {
  Rng rng(21);
  const size_t n = 600;
  const auto points = RandomPoints(n, &rng);
  const auto weights = ZipfWeights(n, 1.0, &rng);
  const multidim::KdTreeSampler sampler(points, weights);
  const multidim::Rect rect{0.15, 0.85, 0.2, 0.9};
  ExpectRectBatchEquivalence(sampler, points, weights, rect, 22);
}

TEST(MultidimBatchTest, QuadtreeBatchMatchesSingleQueryLaw) {
  Rng rng(23);
  const size_t n = 600;
  const auto points = RandomPoints(n, &rng);
  const auto weights = ZipfWeights(n, 0.5, &rng);
  const multidim::QuadtreeSampler sampler(points, weights);
  const multidim::Rect rect{0.1, 0.7, 0.25, 0.95};
  ExpectRectBatchEquivalence(sampler, points, weights, rect, 24);
}

TEST(MultidimBatchTest, RangeTreeBatchMatchesSingleQueryLaw) {
  Rng rng(25);
  const size_t n = 600;
  const auto points = RandomPoints(n, &rng);
  const auto weights = ZipfWeights(n, 1.0, &rng);
  const multidim::RangeTree2DSampler sampler(points, weights);
  const multidim::Rect rect{0.2, 0.8, 0.1, 0.75};
  ExpectRectBatchEquivalence(sampler, points, weights, rect, 26);
}

TEST(MultidimBatchTest, BatchHandlesEmptyAndZeroSampleQueries) {
  Rng rng(27);
  const auto points = RandomPoints(300, &rng);
  const multidim::KdTreeSampler sampler(points, {});
  const std::vector<multidim::RectBatchQuery> queries = {
      {multidim::Rect{0.0, 1.0, 0.0, 1.0}, 16},
      {multidim::Rect{2.0, 3.0, 2.0, 3.0}, 8},  // off the point cloud
      {multidim::Rect{0.0, 1.0, 0.0, 1.0}, 0},
  };
  ScratchArena arena;
  multidim::PointBatchResult result;
  Rng qrng(28);
  sampler.QueryBatch(queries, &qrng, &arena, &result);
  ASSERT_EQ(result.num_queries(), 3u);
  EXPECT_EQ(result.resolved[0], 1);
  EXPECT_EQ(result.resolved[1], 0);
  EXPECT_EQ(result.resolved[2], 1);
  EXPECT_EQ(result.SamplesFor(0).size(), 16u);
  EXPECT_EQ(result.SamplesFor(1).size(), 0u);
  EXPECT_EQ(result.SamplesFor(2).size(), 0u);
}

TEST(MultidimBatchTest, BatchDrawsAreIndependentAcrossQueries) {
  // Two identical single-draw rect queries in one batch: collision rate
  // must match independent uniform draws (1/n), as in the 1-d test above.
  Rng rng(29);
  const size_t n = 64;
  const auto points = RandomPoints(n, &rng);
  const multidim::KdTreeSampler sampler(points, {});
  std::map<std::pair<double, double>, size_t> index;
  for (size_t i = 0; i < n; ++i) index[{points[i].x, points[i].y}] = i;

  const multidim::Rect all{0.0, 1.0, 0.0, 1.0};
  const std::vector<multidim::RectBatchQuery> queries = {{all, 1}, {all, 1}};
  ScratchArena arena;
  multidim::PointBatchResult result;
  Rng qrng(30);
  int collisions = 0;
  const int rounds = 60000;
  for (int round = 0; round < rounds; ++round) {
    sampler.QueryBatch(queries, &qrng, &arena, &result);
    const auto a = result.SamplesFor(0)[0];
    const auto b = result.SamplesFor(1)[0];
    collisions += (index.at({a.x, a.y}) == index.at({b.x, b.y})) ? 1 : 0;
  }
  const double expect = static_cast<double>(rounds) / n;
  const double sigma = std::sqrt(expect * (1.0 - 1.0 / n));
  EXPECT_NEAR(static_cast<double>(collisions), expect, 5 * sigma);
}

TEST(MultidimBatchTest, SteadyStateMakesNoArenaAllocations) {
  Rng rng(31);
  const size_t n = 2048;
  const auto points = RandomPoints(n, &rng);
  const auto weights = ZipfWeights(n, 1.0, &rng);
  const multidim::KdTreeSampler kd(points, weights);
  const multidim::RangeTree2DSampler rtree(points, weights);

  std::vector<multidim::RectBatchQuery> queries;
  for (int i = 0; i < 32; ++i) {
    const double x = rng.NextDouble() * 0.5;
    const double y = rng.NextDouble() * 0.5;
    queries.push_back({multidim::Rect{x, x + 0.4, y, y + 0.4}, 48});
  }
  ScratchArena arena;
  multidim::PointBatchResult result;
  Rng qrng(32);
  for (int round = 0; round < 3; ++round) {  // warm-up growth + coalesce
    kd.QueryBatch(queries, &qrng, &arena, &result);
    rtree.QueryBatch(queries, &qrng, &arena, &result);
  }
  const size_t warm_blocks = arena.blocks_allocated();
  for (int round = 0; round < 20; ++round) {
    kd.QueryBatch(queries, &qrng, &arena, &result);
    rtree.QueryBatch(queries, &qrng, &arena, &result);
  }
  EXPECT_EQ(arena.blocks_allocated(), warm_blocks)
      << "multidim batched serving must be allocation-free in steady state";
}

}  // namespace
}  // namespace iqs
