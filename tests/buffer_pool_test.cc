#include "iqs/em/buffer_pool.h"

#include <algorithm>
#include <vector>

#include "gtest/gtest.h"
#include "iqs/util/rng.h"

namespace iqs::em {
namespace {

TEST(BufferPoolTest, ReadThroughCachesBlocks) {
  BlockDevice device(4);
  const size_t a = device.AllocateBlock();
  std::vector<uint64_t> data = {1, 2, 3, 4};
  device.Write(a, data);
  device.ResetCounters();

  BufferPool pool(&device, 2);
  std::vector<uint64_t> out(4);
  pool.Read(a, out);
  EXPECT_EQ(out, data);
  EXPECT_EQ(device.reads(), 1u);
  // Second read is a cache hit: no device I/O.
  pool.Read(a, out);
  EXPECT_EQ(device.reads(), 1u);
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(pool.stats().misses, 1u);
}

TEST(BufferPoolTest, WriteBackOnlyOnEvictionOrFlush) {
  BlockDevice device(4);
  const size_t a = device.AllocateBlock();
  device.ResetCounters();
  {
    BufferPool pool(&device, 2);
    const std::vector<uint64_t> data = {9, 9, 9, 9};
    pool.Write(a, data);
    pool.Write(a, data);
    EXPECT_EQ(device.writes(), 0u);  // write-back: nothing hit disk yet
    pool.FlushAll();
    EXPECT_EQ(device.writes(), 1u);
    pool.Write(a, data);
  }  // destructor flushes
  EXPECT_EQ(device.writes(), 2u);
  std::vector<uint64_t> out(4);
  device.Read(a, out);
  EXPECT_EQ(out[0], 9u);
}

TEST(BufferPoolTest, LruEvictionOrder) {
  BlockDevice device(4);
  std::vector<size_t> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(device.AllocateBlock());
    const std::vector<uint64_t> data(4, static_cast<uint64_t>(i));
    device.Write(ids.back(), data);
  }
  BufferPool pool(&device, 2);
  std::vector<uint64_t> out(4);
  pool.Read(ids[0], out);  // cache: {0}
  pool.Read(ids[1], out);  // cache: {0, 1}
  pool.Read(ids[0], out);  // touch 0 -> MRU
  device.ResetCounters();
  pool.Read(ids[2], out);  // evicts 1 (LRU), not 0
  pool.Read(ids[0], out);  // still cached
  EXPECT_EQ(device.reads(), 1u);
  EXPECT_EQ(pool.stats().evictions, 1u);
  pool.Read(ids[1], out);  // miss again
  EXPECT_EQ(device.reads(), 2u);
}

TEST(BufferPoolTest, DirtyVictimWrittenBack) {
  BlockDevice device(4);
  const size_t a = device.AllocateBlock();
  const size_t b = device.AllocateBlock();
  BufferPool pool(&device, 1);
  const std::vector<uint64_t> data = {7, 7, 7, 7};
  pool.Write(a, data);
  device.ResetCounters();
  std::vector<uint64_t> out(4);
  pool.Read(b, out);  // evicts dirty a -> 1 write + 1 read
  EXPECT_EQ(device.writes(), 1u);
  EXPECT_EQ(device.reads(), 1u);
  device.Read(a, out);
  EXPECT_EQ(out[0], 7u);
}

TEST(BufferPoolTest, HotBlockWorkloadMostlyHits) {
  // Zipf-ish access over 64 blocks with a 16-block pool: the hot head
  // should make the hit rate high.
  BlockDevice device(8);
  std::vector<size_t> ids;
  for (int i = 0; i < 64; ++i) {
    ids.push_back(device.AllocateBlock());
  }
  BufferPool pool(&device, 16);
  std::vector<uint64_t> out(8);
  iqs::Rng rng(1);
  for (int access = 0; access < 5000; ++access) {
    // 90% of accesses hit an 8-block hot set.
    const size_t idx =
        rng.NextDouble() < 0.9 ? rng.Below(8) : 8 + rng.Below(56);
    pool.Read(ids[idx], out);
  }
  const auto& stats = pool.stats();
  EXPECT_GT(static_cast<double>(stats.hits) /
                static_cast<double>(stats.hits + stats.misses),
            0.8);
}

}  // namespace
}  // namespace iqs::em
