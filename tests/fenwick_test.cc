#include "iqs/range/fenwick_tree.h"

#include <vector>

#include "gtest/gtest.h"
#include "iqs/alias/fenwick_sampler.h"
#include "iqs/util/rng.h"
#include "test_util.h"

namespace iqs {
namespace {

TEST(FenwickTest, BulkBuildMatchesPrefixOracle) {
  const std::vector<double> values = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0};
  FenwickTree tree(values);
  double prefix = 0.0;
  for (size_t i = 0; i <= values.size(); ++i) {
    EXPECT_NEAR(tree.PrefixSum(i), prefix, 1e-12);
    if (i < values.size()) prefix += values[i];
  }
}

TEST(FenwickTest, RangeSumMatchesOracle) {
  Rng rng(1);
  std::vector<double> values(100);
  for (double& v : values) v = rng.NextDouble();
  FenwickTree tree(values);
  for (int trial = 0; trial < 500; ++trial) {
    size_t a = rng.Below(values.size());
    size_t b = rng.Below(values.size());
    if (a > b) std::swap(a, b);
    double want = 0.0;
    for (size_t i = a; i <= b; ++i) want += values[i];
    EXPECT_NEAR(tree.RangeSum(a, b), want, 1e-9);
  }
}

TEST(FenwickTest, AddUpdatesSums) {
  FenwickTree tree(5);
  tree.Add(2, 10.0);
  tree.Add(4, 1.0);
  EXPECT_NEAR(tree.PrefixSum(2), 0.0, 1e-12);
  EXPECT_NEAR(tree.PrefixSum(3), 10.0, 1e-12);
  EXPECT_NEAR(tree.TotalSum(), 11.0, 1e-12);
  tree.Add(2, -10.0);
  EXPECT_NEAR(tree.TotalSum(), 1.0, 1e-12);
}

TEST(FenwickTest, SearchPrefixLocatesPositions) {
  const std::vector<double> values = {2.0, 0.0, 3.0, 5.0};
  FenwickTree tree(values);
  // Cumulative: [0,2) -> 0, [2,5) -> 2, [5,10) -> 3.
  EXPECT_EQ(tree.SearchPrefix(0.0), 0u);
  EXPECT_EQ(tree.SearchPrefix(1.9), 0u);
  EXPECT_EQ(tree.SearchPrefix(2.0), 2u);
  EXPECT_EQ(tree.SearchPrefix(4.9), 2u);
  EXPECT_EQ(tree.SearchPrefix(5.0), 3u);
  EXPECT_EQ(tree.SearchPrefix(9.999), 3u);
}

TEST(FenwickTest, SearchPrefixRandomizedOracle) {
  Rng rng(2);
  std::vector<double> values(33);
  for (double& v : values) v = rng.NextDouble() < 0.3 ? 0.0 : rng.NextDouble();
  values[32] = 0.5;  // ensure positive tail
  FenwickTree tree(values);
  const double total = tree.TotalSum();
  for (int trial = 0; trial < 2000; ++trial) {
    const double target = rng.NextDouble() * total;
    const size_t got = tree.SearchPrefix(target);
    // Oracle: smallest i with prefix(i+1) > target.
    size_t want = 0;
    double acc = 0.0;
    for (size_t i = 0; i < values.size(); ++i) {
      acc += values[i];
      if (acc > target) {
        want = i;
        break;
      }
    }
    EXPECT_EQ(got, want) << "target " << target;
  }
}

TEST(FenwickSamplerTest, MatchesWeights) {
  Rng rng(3);
  const std::vector<double> weights = {1.0, 0.0, 2.0, 3.0, 0.5};
  FenwickSampler sampler(weights);
  std::vector<size_t> samples;
  for (int i = 0; i < 200000; ++i) samples.push_back(sampler.Sample(&rng));
  testing::ExpectSamplesMatchWeights(samples, weights);
}

TEST(FenwickSamplerTest, SetWeightRedistributes) {
  Rng rng(4);
  FenwickSampler sampler(3);
  sampler.SetWeight(0, 1.0);
  sampler.SetWeight(2, 1.0);
  sampler.SetWeight(0, 0.0);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(sampler.Sample(&rng), 2u);
  EXPECT_DOUBLE_EQ(sampler.total_weight(), 1.0);
}

TEST(FenwickSamplerTest, ZeroWeightNeverSampled) {
  Rng rng(5);
  FenwickSampler sampler(std::vector<double>{0.0, 1.0, 0.0});
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(sampler.Sample(&rng), 1u);
}

}  // namespace
}  // namespace iqs
