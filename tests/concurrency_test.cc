// Thread-safety of const query paths: every static IQS structure's query
// methods are const and touch no shared mutable state when each thread
// supplies its own Rng — verify by hammering one structure from several
// threads and checking the pooled law (run under TSan for full signal;
// the distribution check still catches torn reads of structure state).

#include <atomic>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "iqs/alias/alias_table.h"
#include "iqs/multidim/kd_sampler.h"
#include "iqs/range/chunked_range_sampler.h"
#include "iqs/util/distributions.h"
#include "iqs/util/rng.h"
#include "test_util.h"

namespace iqs {
namespace {

TEST(ConcurrencyTest, AliasTableSharedAcrossThreads) {
  const std::vector<double> weights = {1.0, 2.0, 3.0, 4.0};
  const AliasTable table(weights);
  constexpr int kThreads = 4;
  constexpr int kDrawsPerThread = 100000;
  std::vector<std::vector<size_t>> per_thread(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(1000 + static_cast<uint64_t>(t));
      per_thread[t].reserve(kDrawsPerThread);
      for (int i = 0; i < kDrawsPerThread; ++i) {
        per_thread[t].push_back(table.Sample(&rng));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  std::vector<size_t> all;
  for (const auto& samples : per_thread) {
    all.insert(all.end(), samples.begin(), samples.end());
  }
  testing::ExpectSamplesMatchWeights(all, weights);
}

TEST(ConcurrencyTest, ChunkedSamplerSharedAcrossThreads) {
  Rng rng(1);
  const size_t n = 128;
  const auto keys = UniformKeys(n, &rng);
  std::vector<double> weights(n);
  for (double& w : weights) w = 0.5 + rng.NextDouble();
  const ChunkedRangeSampler sampler(keys, weights);

  constexpr int kThreads = 4;
  std::vector<std::vector<size_t>> per_thread(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng thread_rng(2000 + static_cast<uint64_t>(t));
      for (int q = 0; q < 500; ++q) {
        sampler.QueryPositions(10, 100, 64, &thread_rng, &per_thread[t]);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  std::vector<uint64_t> counts(91, 0);
  for (const auto& samples : per_thread) {
    for (size_t p : samples) {
      ASSERT_GE(p, 10u);
      ASSERT_LE(p, 100u);
      ++counts[p - 10];
    }
  }
  std::vector<double> range_weights(weights.begin() + 10,
                                    weights.begin() + 101);
  testing::ExpectDistributionClose(counts, testing::Normalize(range_weights));
}

TEST(ConcurrencyTest, KdSamplerSharedAcrossThreads) {
  Rng rng(3);
  std::vector<multidim::Point2> pts;
  for (const auto& [x, y] : Points2D(500, 0, &rng)) pts.push_back({x, y});
  const multidim::KdTreeSampler sampler(pts, {});

  std::atomic<int> failures{0};
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng thread_rng(3000 + static_cast<uint64_t>(t));
      std::vector<multidim::Point2> out;
      const multidim::Rect q{0.2, 0.8, 0.2, 0.8};
      for (int i = 0; i < 300; ++i) {
        out.clear();
        if (!sampler.QueryRect(q, 16, &thread_rng, &out)) {
          ++failures;
          continue;
        }
        for (const auto& p : out) {
          if (!q.Contains(p)) ++failures;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace iqs
