#include "iqs/range/rmq.h"

#include <vector>

#include "gtest/gtest.h"
#include "iqs/util/rng.h"

namespace iqs {
namespace {

TEST(RmqTest, SingleElement) {
  SparseTableRmq rmq(std::vector<uint32_t>{42});
  EXPECT_EQ(rmq.ArgMin(0, 0), 0u);
}

TEST(RmqTest, MatchesBruteForce) {
  Rng rng(1);
  std::vector<uint32_t> values(257);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<uint32_t>(i);
  }
  for (size_t i = values.size(); i > 1; --i) {
    std::swap(values[i - 1], values[rng.Below(i)]);
  }
  SparseTableRmq rmq(values);
  for (int trial = 0; trial < 3000; ++trial) {
    size_t a = rng.Below(values.size());
    size_t b = rng.Below(values.size());
    if (a > b) std::swap(a, b);
    size_t want = a;
    for (size_t i = a; i <= b; ++i) {
      if (values[i] < values[want]) want = i;
    }
    EXPECT_EQ(rmq.ArgMin(a, b), want);
  }
}

TEST(RmqTest, PowerOfTwoBoundaries) {
  std::vector<uint32_t> values(64);
  for (size_t i = 0; i < 64; ++i) values[i] = static_cast<uint32_t>(64 - i);
  SparseTableRmq rmq(values);
  // Decreasing values: min is always the right endpoint.
  for (size_t a = 0; a < 64; ++a) {
    for (size_t b = a; b < 64; ++b) {
      ASSERT_EQ(rmq.ArgMin(a, b), b);
    }
  }
}

}  // namespace
}  // namespace iqs
