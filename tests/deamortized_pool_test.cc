// Tests for the resumable external sort and the de-amortized sample pool
// (paper Section 8's worst-case remark).

#include "iqs/em/deamortized_pool.h"

#include <algorithm>
#include <vector>

#include "gtest/gtest.h"
#include "iqs/em/em_sort.h"
#include "iqs/em/sample_pool.h"
#include "iqs/em/stepwise_sort.h"
#include "test_util.h"

namespace iqs::em {
namespace {

struct Fixture {
  Fixture(size_t n, size_t block_words)
      : device(block_words), data(&device, 1) {
    EmWriter writer(&data);
    for (uint64_t i = 0; i < n; ++i) writer.Append1(i);
    writer.Finish();
  }
  BlockDevice device;
  EmArray data;
};

TEST(StepwiseSortTest, MatchesBatchSort) {
  const size_t kB = 8;
  BlockDevice device(kB);
  Rng rng(1);
  EmArray input(&device, 1);
  {
    EmWriter writer(&input);
    for (int i = 0; i < 3000; ++i) writer.Append1(rng.Next64() % 10000);
    writer.Finish();
  }
  StepwiseSort stepwise(&input, 4 * kB);
  stepwise.Finish();
  EmArray batch = ExternalSort(input, 4 * kB);
  ASSERT_EQ(stepwise.result().size(), batch.size());
  EmReader a(&stepwise.result(), 0, batch.size());
  EmReader b(&batch, 0, batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(a.Next1(), b.Next1()) << "at " << i;
  }
}

TEST(StepwiseSortTest, PairsKeepPayload) {
  BlockDevice device(8);
  Rng rng(2);
  EmArray input(&device, 2);
  {
    EmWriter writer(&input);
    for (uint64_t i = 0; i < 700; ++i) {
      const uint64_t key = rng.Next64() % 500;
      writer.Append2(key, key ^ 0xabcdef);
    }
    writer.Finish();
  }
  StepwiseSort sort(&input, 4 * 8);
  sort.Finish();
  EmReader reader(&sort.result(), 0, 700);
  uint64_t prev = 0;
  uint64_t record[2];
  for (int i = 0; i < 700; ++i) {
    reader.Next(record);
    EXPECT_GE(record[0], prev);
    EXPECT_EQ(record[1], record[0] ^ 0xabcdef);
    prev = record[0];
  }
}

TEST(StepwiseSortTest, StepsAreIncremental) {
  // A single Step must cost at most a few I/Os — never a whole pass.
  const size_t kB = 16;
  BlockDevice device(kB);
  Rng rng(3);
  EmArray input(&device, 1);
  {
    EmWriter writer(&input);
    for (int i = 0; i < 4096; ++i) writer.Append1(rng.Next64());
    writer.Finish();
  }
  StepwiseSort sort(&input, 4 * kB);
  uint64_t max_ios_per_step = 0;
  while (!sort.done()) {
    const uint64_t before = device.total_ios();
    sort.Step();
    max_ios_per_step =
        std::max(max_ios_per_step, device.total_ios() - before);
  }
  EXPECT_LE(max_ios_per_step, 4u);
}

TEST(PoolRebuildPipelineTest, ProducesUniformPool) {
  Fixture f(128, 8);
  Rng rng(4);
  PoolRebuildPipeline pipeline(&f.data, 0, 128, 8 * 8, &rng);
  pipeline.Finish();
  ASSERT_EQ(pipeline.pool().size(), 128u);
  // Aggregate over several pipelines: entries are uniform over the data.
  std::vector<uint64_t> counts(128, 0);
  for (int round = 0; round < 400; ++round) {
    PoolRebuildPipeline p(&f.data, 0, 128, 8 * 8, &rng);
    p.Finish();
    EmReader reader(&p.pool(), 0, 128);
    while (reader.HasNext()) {
      const uint64_t v = reader.Next1();
      ASSERT_LT(v, 128u);
      ++counts[v];
    }
  }
  iqs::testing::ExpectDistributionClose(counts,
                                        std::vector<double>(128, 1.0 / 128));
}

TEST(DeamortizedPoolTest, UniformSamples) {
  Fixture f(64, 8);
  Rng rng(5);
  DeamortizedSamplePool pool(&f.data, 0, 64, 8 * 8, &rng);
  std::vector<uint64_t> out;
  pool.Query(100000, &rng, &out);
  std::vector<uint64_t> counts(64, 0);
  for (uint64_t v : out) {
    ASSERT_LT(v, 64u);
    ++counts[v];
  }
  iqs::testing::ExpectDistributionClose(counts,
                                        std::vector<double>(64, 1.0 / 64));
}

TEST(DeamortizedPoolTest, WorstCaseQueryIoIsBounded) {
  // The whole point: NO query pays a full-rebuild burst. Compare the max
  // per-query I/O of the amortized pool vs the de-amortized one under the
  // same small-query workload.
  const size_t kB = 64;
  const size_t n = 1 << 13;
  const size_t s = 64;

  Fixture f1(n, kB);
  Rng rng1(6);
  SamplePool amortized(&f1.data, 0, n, 8 * kB, &rng1);
  uint64_t amortized_max = 0;
  for (int q = 0; q < 512; ++q) {
    std::vector<uint64_t> out;
    const uint64_t before = f1.device.total_ios();
    amortized.Query(s, &rng1, &out);
    amortized_max =
        std::max(amortized_max, f1.device.total_ios() - before);
  }

  Fixture f2(n, kB);
  Rng rng2(6);
  DeamortizedSamplePool deamortized(&f2.data, 0, n, 8 * kB, &rng2);
  uint64_t deamortized_max = 0;
  uint64_t deamortized_total = 0;
  for (int q = 0; q < 512; ++q) {
    std::vector<uint64_t> out;
    const uint64_t before = f2.device.total_ios();
    deamortized.Query(s, &rng2, &out);
    const uint64_t cost = f2.device.total_ios() - before;
    deamortized_max = std::max(deamortized_max, cost);
    deamortized_total += cost;
  }

  // The amortized pool's worst query absorbs a rebuild: hundreds of I/Os.
  // The de-amortized pool's worst query stays within a small multiple of
  // its average.
  EXPECT_GT(amortized_max, deamortized_max * 4);
  EXPECT_LE(deamortized_max,
            8 * (deamortized_total / 512 + 1));
}

TEST(DeamortizedPoolTest, SubrangeRespected) {
  Fixture f(96, 8);
  Rng rng(7);
  DeamortizedSamplePool pool(&f.data, 32, 32, 8 * 8, &rng);
  std::vector<uint64_t> out;
  pool.Query(5000, &rng, &out);
  for (uint64_t v : out) {
    ASSERT_GE(v, 32u);
    ASSERT_LT(v, 64u);
  }
}

TEST(DeamortizedPoolTest, HugeSingleQueryCrossesPools) {
  Fixture f(64, 8);
  Rng rng(8);
  DeamortizedSamplePool pool(&f.data, 0, 64, 8 * 8, &rng);
  std::vector<uint64_t> out;
  pool.Query(1000, &rng, &out);  // > 15 pools in one query
  EXPECT_EQ(out.size(), 1000u);
}

}  // namespace
}  // namespace iqs::em
