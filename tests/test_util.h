// Shared helpers for libiqs tests: distribution assertions built on the
// chi-square machinery in iqs/util/stats.h.

#ifndef IQS_TESTS_TEST_UTIL_H_
#define IQS_TESTS_TEST_UTIL_H_

#include <cstdint>
#include <vector>

#include "gtest/gtest.h"
#include "iqs/util/stats.h"

namespace iqs::testing {

// Normalizes weights into probabilities.
inline std::vector<double> Normalize(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  std::vector<double> probs(weights.size());
  for (size_t i = 0; i < weights.size(); ++i) probs[i] = weights[i] / total;
  return probs;
}

// Asserts the empirical counts are consistent with `probs` at significance
// alpha (default 1e-6: with seeded RNGs the tests are deterministic, so a
// pass/fail boundary this deep keeps both false alarms and real regressions
// unambiguous).
inline void ExpectDistributionClose(const std::vector<uint64_t>& counts,
                                    const std::vector<double>& probs,
                                    double alpha = 1e-6) {
  const ChiSquareResult result = ChiSquareGoodnessOfFit(counts, probs);
  EXPECT_GT(result.p_value, alpha)
      << "chi-square stat " << result.statistic << " with "
      << result.degrees_of_freedom << " dof";
}

// Convenience: tally + normalize + chi-square in one call.
inline void ExpectSamplesMatchWeights(const std::vector<size_t>& samples,
                                      const std::vector<double>& weights,
                                      double alpha = 1e-6) {
  std::vector<uint64_t> counts(weights.size(), 0);
  for (size_t v : samples) {
    ASSERT_LT(v, weights.size()) << "sample out of range";
    ++counts[v];
  }
  ExpectDistributionClose(counts, Normalize(weights), alpha);
}

}  // namespace iqs::testing

#endif  // IQS_TESTS_TEST_UTIL_H_
