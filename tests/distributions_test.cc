#include "iqs/util/distributions.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "gtest/gtest.h"
#include "test_util.h"

namespace iqs {
namespace {

TEST(ZipfTest, StaysInRange) {
  Rng rng(1);
  ZipfDistribution zipf(100, 1.0);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t v = zipf.Sample(&rng);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 100u);
  }
}

TEST(ZipfTest, SingleElementDomain) {
  Rng rng(2);
  ZipfDistribution zipf(1, 1.5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(zipf.Sample(&rng), 1u);
}

class ZipfAlphaTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfAlphaTest, MatchesZipfLaw) {
  const double alpha = GetParam();
  Rng rng(42);
  constexpr uint64_t kN = 50;
  ZipfDistribution zipf(kN, alpha);
  std::vector<uint64_t> counts(kN, 0);
  for (int i = 0; i < 200000; ++i) ++counts[zipf.Sample(&rng) - 1];
  std::vector<double> weights(kN);
  for (uint64_t k = 1; k <= kN; ++k) {
    weights[k - 1] = std::pow(static_cast<double>(k), -alpha);
  }
  testing::ExpectDistributionClose(counts, testing::Normalize(weights));
}

INSTANTIATE_TEST_SUITE_P(Alphas, ZipfAlphaTest,
                         ::testing::Values(0.5, 0.8, 1.0, 1.2, 2.0));

TEST(KeysTest, UniformKeysSortedDistinct) {
  Rng rng(3);
  const std::vector<double> keys = UniformKeys(1000, &rng);
  ASSERT_EQ(keys.size(), 1000u);
  for (size_t i = 1; i < keys.size(); ++i) EXPECT_LT(keys[i - 1], keys[i]);
}

TEST(KeysTest, ClusteredKeysSortedDistinct) {
  Rng rng(4);
  const std::vector<double> keys = ClusteredKeys(2000, 5, &rng);
  ASSERT_EQ(keys.size(), 2000u);
  for (size_t i = 1; i < keys.size(); ++i) EXPECT_LT(keys[i - 1], keys[i]);
}

TEST(WeightsTest, ZipfWeightsAlphaZeroAllEqual) {
  Rng rng(5);
  const std::vector<double> w = ZipfWeights(100, 0.0, &rng);
  for (double v : w) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(WeightsTest, ZipfWeightsPositiveAndSkewed) {
  Rng rng(6);
  const std::vector<double> w = ZipfWeights(1000, 1.0, &rng);
  double max = 0.0;
  double min = 1e300;
  for (double v : w) {
    EXPECT_GT(v, 0.0);
    max = std::max(max, v);
    min = std::min(min, v);
  }
  EXPECT_GT(max / min, 100.0);
}

class SelectivityTest : public ::testing::TestWithParam<size_t> {};

TEST_P(SelectivityTest, IntervalHasExactResultSize) {
  Rng rng(7);
  const std::vector<double> keys = UniformKeys(500, &rng);
  const size_t want = GetParam();
  for (int trial = 0; trial < 50; ++trial) {
    const auto [lo, hi] = IntervalWithSelectivity(keys, want, &rng);
    const auto first = std::lower_bound(keys.begin(), keys.end(), lo);
    const auto last = std::upper_bound(keys.begin(), keys.end(), hi);
    EXPECT_EQ(static_cast<size_t>(last - first), want);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SelectivityTest,
                         ::testing::Values(1, 2, 10, 250, 499, 500));

TEST(Points2DTest, UniformInUnitSquare) {
  Rng rng(8);
  const auto pts = Points2D(1000, 0, &rng);
  ASSERT_EQ(pts.size(), 1000u);
  for (const auto& [x, y] : pts) {
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
    EXPECT_GE(y, 0.0);
    EXPECT_LT(y, 1.0);
  }
}

TEST(Points2DTest, ClusteredPointsConcentrate) {
  Rng rng(9);
  const auto pts = Points2D(2000, 1, &rng);
  // One Gaussian bump with sigma 0.02: the spread should be far below
  // uniform (which has stddev ~0.29 per axis).
  std::vector<double> xs;
  for (const auto& p : pts) xs.push_back(p.first);
  EXPECT_LT(std::sqrt(Variance(xs)), 0.1);
}

}  // namespace
}  // namespace iqs
