#include "iqs/em/em_weighted_range_sampler.h"

#include <vector>

#include "gtest/gtest.h"
#include "test_util.h"

namespace iqs::em {
namespace {

struct Fixture {
  Fixture(const std::vector<double>& weights, size_t block_words)
      : device(block_words), data(&device, 2) {
    EmWriter writer(&data);
    for (size_t i = 0; i < weights.size(); ++i) {
      // Keys 10, 20, 30, ... so ranges can cut between keys.
      WeightedSamplePool::AppendRecord(&writer, (i + 1) * 10, weights[i]);
    }
    writer.Finish();
  }
  BlockDevice device;
  EmArray data;
};

TEST(EmWeightedRangeSamplerTest, LawMatchesWeightsWithinRange) {
  Rng rng(1);
  std::vector<double> weights;
  for (int i = 0; i < 200; ++i) weights.push_back(0.5 + (i % 9));
  Fixture f(weights, 8);  // 4 records per block
  EmWeightedRangeSampler sampler(&f.data, 8 * 8, &rng);

  // Keys 310..1490 -> records 30..148, straddling partial blocks.
  std::vector<uint64_t> out;
  ASSERT_TRUE(sampler.Query(305, 1495, 200000, &rng, &out));
  std::vector<uint64_t> counts(119, 0);
  for (uint64_t key : out) {
    ASSERT_GE(key, 310u);
    ASSERT_LE(key, 1490u);
    ASSERT_EQ(key % 10, 0u);
    ++counts[key / 10 - 31];
  }
  std::vector<double> range_weights(weights.begin() + 30,
                                    weights.begin() + 149);
  iqs::testing::ExpectDistributionClose(counts,
                                        iqs::testing::Normalize(range_weights));
}

TEST(EmWeightedRangeSamplerTest, BlockAlignedAndTinyRanges) {
  Rng rng(2);
  std::vector<double> weights(64, 1.0);
  weights[17] = 10.0;
  Fixture f(weights, 8);
  EmWeightedRangeSampler sampler(&f.data, 8 * 8, &rng);

  // Exactly one block: records 16..19 (keys 170..200).
  std::vector<uint64_t> out;
  ASSERT_TRUE(sampler.Query(170, 200, 60000, &rng, &out));
  size_t heavy = 0;
  for (uint64_t key : out) {
    ASSERT_GE(key, 170u);
    ASSERT_LE(key, 200u);
    heavy += (key == 180);  // record 17
  }
  EXPECT_NEAR(static_cast<double>(heavy) / out.size(), 10.0 / 13.0, 0.01);

  // Single record.
  out.clear();
  ASSERT_TRUE(sampler.Query(330, 330, 10, &rng, &out));
  for (uint64_t key : out) EXPECT_EQ(key, 330u);
}

TEST(EmWeightedRangeSamplerTest, EmptyRanges) {
  Rng rng(3);
  Fixture f(std::vector<double>(32, 1.0), 8);
  EmWeightedRangeSampler sampler(&f.data, 8 * 8, &rng);
  std::vector<uint64_t> out;
  EXPECT_FALSE(sampler.Query(1, 9, 5, &rng, &out));       // below first key
  EXPECT_FALSE(sampler.Query(11, 19, 5, &rng, &out));     // between keys
  EXPECT_FALSE(sampler.Query(1000, 2000, 5, &rng, &out)); // above last key
  EXPECT_FALSE(sampler.Query(50, 20, 5, &rng, &out));     // inverted
}

TEST(EmWeightedRangeSamplerTest, PoolPathBeatsReportForSelectiveSampling) {
  Rng rng(4);
  const size_t kB = 64;
  const size_t n = 1 << 13;
  std::vector<double> weights(n, 1.0);
  Fixture f(weights, kB);
  EmWeightedRangeSampler sampler(&f.data, 16 * kB, &rng);

  const uint64_t lo = 10;
  const uint64_t hi = n * 10;
  f.device.ResetCounters();
  std::vector<uint64_t> out;
  ASSERT_TRUE(sampler.Query(lo, hi, 256, &rng, &out));
  const uint64_t pool_ios = f.device.total_ios();

  f.device.ResetCounters();
  out.clear();
  ASSERT_TRUE(sampler.ReportThenSample(lo, hi, 256, &rng, &out));
  const uint64_t report_ios = f.device.total_ios();

  // Report scans n/ (B/2) = 256 blocks; the pool path reads ~256/B blocks
  // of pool entries per active node plus the descent.
  EXPECT_LT(pool_ios, report_ios / 2);
}

TEST(EmWeightedRangeSamplerTest, RepeatedQueriesStayCorrectAcrossRebuilds) {
  Rng rng(5);
  std::vector<double> weights(48);
  for (size_t i = 0; i < weights.size(); ++i) weights[i] = 1.0 + (i % 3);
  Fixture f(weights, 8);
  EmWeightedRangeSampler sampler(&f.data, 8 * 8, &rng);
  std::vector<uint64_t> counts(32, 0);
  for (int q = 0; q < 4000; ++q) {
    std::vector<uint64_t> out;
    ASSERT_TRUE(sampler.Query(90, 400, 16, &rng, &out));
    for (uint64_t key : out) {
      ASSERT_GE(key, 90u);
      ASSERT_LE(key, 400u);
      ++counts[key / 10 - 9];
    }
  }
  std::vector<double> range_weights(weights.begin() + 8,
                                    weights.begin() + 40);
  iqs::testing::ExpectDistributionClose(counts,
                                        iqs::testing::Normalize(range_weights));
}

}  // namespace
}  // namespace iqs::em
