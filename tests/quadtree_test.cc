#include "iqs/multidim/quadtree.h"

#include <map>
#include <set>
#include <vector>

#include "gtest/gtest.h"
#include "iqs/util/distributions.h"
#include "iqs/util/rng.h"
#include "test_util.h"

namespace iqs::multidim {
namespace {

std::vector<Point2> MakePoints(size_t n, size_t clusters, Rng* rng) {
  std::vector<Point2> pts;
  const auto raw = iqs::Points2D(n, clusters, rng);
  pts.reserve(n);
  for (const auto& [x, y] : raw) pts.push_back({x, y});
  return pts;
}

TEST(QuadtreeTest, CoverIsExactPartition) {
  Rng rng(1);
  const auto pts = MakePoints(600, 0, &rng);
  Quadtree tree(pts, {});
  for (int trial = 0; trial < 100; ++trial) {
    Rect q;
    q.x_lo = rng.NextDouble() * 0.7;
    q.x_hi = q.x_lo + rng.NextDouble() * 0.5;
    q.y_lo = rng.NextDouble() * 0.7;
    q.y_hi = q.y_lo + rng.NextDouble() * 0.5;
    std::vector<CoverRange> cover;
    tree.CoverQuery(q, &cover);
    std::set<size_t> covered;
    for (const CoverRange& range : cover) {
      for (size_t p = range.lo; p <= range.hi; ++p) {
        EXPECT_TRUE(covered.insert(p).second) << "overlap";
        EXPECT_TRUE(q.Contains(tree.PointAt(p)));
      }
    }
    size_t oracle = 0;
    for (const Point2& p : pts) oracle += q.Contains(p);
    EXPECT_EQ(covered.size(), oracle);
  }
}

TEST(QuadtreeTest, CoincidentPointsRespectMaxDepth) {
  // 100 identical points must not recurse forever.
  std::vector<Point2> pts(100, Point2{0.5, 0.5});
  Quadtree tree(pts, {}, /*leaf_capacity=*/2, /*max_depth=*/8);
  EXPECT_EQ(tree.n(), 100u);
  std::vector<size_t> out;
  tree.Report({0.0, 1.0, 0.0, 1.0}, &out);
  EXPECT_EQ(out.size(), 100u);
}

TEST(QuadtreeTest, ClusteredDataBuilds) {
  Rng rng(2);
  const auto pts = MakePoints(2000, 3, &rng);
  Quadtree tree(pts, {});
  EXPECT_GT(tree.num_nodes(), 100u);
  std::vector<size_t> out;
  tree.Report({-10.0, 10.0, -10.0, 10.0}, &out);
  EXPECT_EQ(out.size(), 2000u);
}

TEST(QuadtreeSamplerTest, WeightedRectSampling) {
  Rng rng(3);
  const auto pts = MakePoints(250, 0, &rng);
  std::vector<double> weights(250);
  for (double& w : weights) w = 0.5 + 3.0 * rng.NextDouble();
  QuadtreeSampler sampler(pts, weights);
  const Rect q{0.1, 0.8, 0.2, 0.9};

  std::map<std::pair<double, double>, size_t> index_of;
  std::vector<double> qualified_weights;
  for (size_t i = 0; i < pts.size(); ++i) {
    if (q.Contains(pts[i])) {
      index_of[{pts[i].x, pts[i].y}] = qualified_weights.size();
      qualified_weights.push_back(weights[i]);
    }
  }
  ASSERT_GT(qualified_weights.size(), 10u);

  std::vector<Point2> out;
  ASSERT_TRUE(sampler.QueryRect(q, 200000, &rng, &out));
  std::vector<size_t> samples;
  for (const Point2& p : out) {
    auto it = index_of.find({p.x, p.y});
    ASSERT_NE(it, index_of.end());
    samples.push_back(it->second);
  }
  testing::ExpectSamplesMatchWeights(samples, qualified_weights);
}

TEST(QuadtreeSamplerTest, EmptyRectIsFalse) {
  Rng rng(4);
  const auto pts = MakePoints(40, 0, &rng);
  QuadtreeSampler sampler(pts, {});
  std::vector<Point2> out;
  EXPECT_FALSE(sampler.QueryRect({3.0, 4.0, 3.0, 4.0}, 2, &rng, &out));
}

TEST(QuadtreeSamplerTest, AgreesWithKdResultSize) {
  // Cross-structure sanity: quadtree and brute force agree on result
  // membership for many random queries.
  Rng rng(5);
  const auto pts = MakePoints(300, 2, &rng);
  Quadtree tree(pts, {});
  for (int trial = 0; trial < 50; ++trial) {
    Rect q;
    q.x_lo = rng.NextDouble();
    q.x_hi = q.x_lo + 0.2;
    q.y_lo = rng.NextDouble();
    q.y_hi = q.y_lo + 0.2;
    std::vector<size_t> reported;
    tree.Report(q, &reported);
    size_t oracle = 0;
    for (const Point2& p : pts) oracle += q.Contains(p);
    EXPECT_EQ(reported.size(), oracle);
  }
}

}  // namespace
}  // namespace iqs::multidim
