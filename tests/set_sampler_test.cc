#include "iqs/sampling/set_sampler.h"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "gtest/gtest.h"
#include "iqs/sampling/multinomial.h"
#include "iqs/util/rng.h"
#include "test_util.h"

namespace iqs {
namespace {

TEST(UniformWrTest, MarginalIsUniform) {
  Rng rng(1);
  std::vector<size_t> samples;
  UniformWrSample(20, 200000, &rng, &samples);
  testing::ExpectSamplesMatchWeights(samples, std::vector<double>(20, 1.0));
}

class WorSizeTest : public ::testing::TestWithParam<std::pair<size_t, size_t>> {
};

TEST_P(WorSizeTest, DistinctAndInRange) {
  const auto [n, s] = GetParam();
  Rng rng(2);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<size_t> samples;
    UniformWorSample(n, s, &rng, &samples);
    ASSERT_EQ(samples.size(), s);
    std::set<size_t> distinct(samples.begin(), samples.end());
    EXPECT_EQ(distinct.size(), s) << "WoR sample has duplicates";
    for (size_t v : samples) EXPECT_LT(v, n);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, WorSizeTest,
    ::testing::Values(std::pair<size_t, size_t>{10, 1},
                      std::pair<size_t, size_t>{10, 5},
                      std::pair<size_t, size_t>{10, 10},
                      std::pair<size_t, size_t>{1000, 3},
                      std::pair<size_t, size_t>{1000, 999},
                      std::pair<size_t, size_t>{7, 0}));

TEST(UniformWorTest, InclusionProbabilityUniform) {
  // Every element appears in a WoR(n=12, s=4) sample with probability 1/3.
  Rng rng(3);
  constexpr size_t kN = 12;
  constexpr size_t kS = 4;
  std::vector<uint64_t> inclusion(kN, 0);
  constexpr int kTrials = 60000;
  for (int t = 0; t < kTrials; ++t) {
    std::vector<size_t> samples;
    UniformWorSample(kN, kS, &rng, &samples);
    for (size_t v : samples) ++inclusion[v];
  }
  // Total inclusions = kTrials * kS spread uniformly over kN slots.
  testing::ExpectDistributionClose(inclusion,
                                   std::vector<double>(kN, 1.0 / kN));
}

TEST(UniformWorTest, SparsePathUniform) {
  // s << n exercises Floyd's algorithm (hash path).
  Rng rng(4);
  constexpr size_t kN = 1000;
  std::vector<uint64_t> inclusion(kN, 0);
  for (int t = 0; t < 20000; ++t) {
    std::vector<size_t> samples;
    UniformWorSample(kN, 5, &rng, &samples);
    for (size_t v : samples) ++inclusion[v];
  }
  testing::ExpectDistributionClose(inclusion,
                                   std::vector<double>(kN, 1.0 / kN));
}

TEST(WorToWrTest, MatchesDirectWrLaw) {
  // Over a small ground set, the full s-tuple multiset law of
  // WoR->WR-converted samples must match direct WR sampling. Compare the
  // distribution of sorted triples over n = 4, s = 3 (20 multisets).
  Rng rng(5);
  constexpr size_t kN = 4;
  constexpr size_t kS = 3;
  auto encode = [](std::vector<size_t> v) {
    std::sort(v.begin(), v.end());
    return v[0] * 25 + v[1] * 5 + v[2];
  };
  std::map<size_t, uint64_t> via_conversion;
  std::map<size_t, uint64_t> direct;
  constexpr int kTrials = 120000;
  for (int t = 0; t < kTrials; ++t) {
    std::vector<size_t> wor;
    UniformWorSample(kN, kS, &rng, &wor);
    via_conversion[encode(WorToWr(wor, kN, &rng))]++;
    std::vector<size_t> wr;
    UniformWrSample(kN, kS, &rng, &wr);
    direct[encode(wr)]++;
  }
  // Chi-square of conversion counts against direct empirical frequencies
  // is awkward; instead compare both against the exact WR law.
  std::vector<uint64_t> counts;
  std::vector<double> probs;
  for (size_t a = 0; a < kN; ++a) {
    for (size_t b = a; b < kN; ++b) {
      for (size_t c = b; c < kN; ++c) {
        const size_t code = a * 25 + b * 5 + c;
        counts.push_back(via_conversion[code]);
        // Multiset {a,b,c} probability: permutations / n^s.
        double perms = 6.0;
        if (a == b && b == c) {
          perms = 1.0;
        } else if (a == b || b == c) {
          perms = 3.0;
        }
        probs.push_back(perms / 64.0);
      }
    }
  }
  testing::ExpectDistributionClose(counts, probs);
}

TEST(WeightedWorTest, SizeAndDistinctness) {
  Rng rng(6);
  const std::vector<double> weights = {1.0, 2.0, 3.0, 4.0, 5.0};
  for (size_t s = 0; s <= weights.size(); ++s) {
    std::vector<size_t> out;
    WeightedWorSample(weights, s, &rng, &out);
    ASSERT_EQ(out.size(), s);
    std::set<size_t> distinct(out.begin(), out.end());
    EXPECT_EQ(distinct.size(), s);
  }
}

TEST(WeightedWorTest, HeavyElementAlmostAlwaysIncluded) {
  Rng rng(7);
  const std::vector<double> weights = {1.0, 1.0, 1.0, 1000.0};
  int included = 0;
  constexpr int kTrials = 2000;
  for (int t = 0; t < kTrials; ++t) {
    std::vector<size_t> out;
    WeightedWorSample(weights, 1, &rng, &out);
    included += (out[0] == 3);
  }
  EXPECT_GT(included, kTrials * 0.99);
}

TEST(WeightedWorTest, FirstDrawMarginalMatchesWeights) {
  // With s = 1, Efraimidis-Spirakis reduces to plain weighted sampling.
  Rng rng(8);
  const std::vector<double> weights = {1.0, 2.0, 4.0, 3.0};
  std::vector<size_t> samples;
  for (int t = 0; t < 100000; ++t) {
    std::vector<size_t> out;
    WeightedWorSample(weights, 1, &rng, &out);
    samples.push_back(out[0]);
  }
  testing::ExpectSamplesMatchWeights(samples, weights);
}

TEST(ReservoirTest, UniformOverStream) {
  Rng rng(9);
  constexpr size_t kStream = 50;
  constexpr size_t kS = 5;
  std::vector<uint64_t> inclusion(kStream, 0);
  for (int t = 0; t < 40000; ++t) {
    ReservoirSampler reservoir(kS);
    for (size_t v = 0; v < kStream; ++v) reservoir.Offer(v, &rng);
    ASSERT_EQ(reservoir.sample().size(), kS);
    for (size_t v : reservoir.sample()) ++inclusion[v];
  }
  testing::ExpectDistributionClose(
      inclusion, std::vector<double>(kStream, 1.0 / kStream));
}

TEST(ReservoirTest, ShortStreamKeepsEverything) {
  Rng rng(10);
  ReservoirSampler reservoir(10);
  for (size_t v = 0; v < 4; ++v) reservoir.Offer(v, &rng);
  EXPECT_EQ(reservoir.sample().size(), 4u);
}

TEST(MultinomialTest, CountsSumToS) {
  Rng rng(11);
  const std::vector<double> weights = {1.0, 2.0, 3.0};
  const auto counts = MultinomialSplit(weights, 1000, &rng);
  uint64_t total = 0;
  for (uint32_t c : counts) total += c;
  EXPECT_EQ(total, 1000u);
}

TEST(MultinomialTest, MarginalsMatchWeights) {
  Rng rng(12);
  const std::vector<double> weights = {1.0, 2.0, 5.0, 2.0};
  std::vector<uint64_t> aggregate(weights.size(), 0);
  for (int t = 0; t < 500; ++t) {
    const auto counts = MultinomialSplit(weights, 1000, &rng);
    for (size_t i = 0; i < counts.size(); ++i) aggregate[i] += counts[i];
  }
  testing::ExpectDistributionClose(aggregate, testing::Normalize(weights));
}

TEST(MultinomialTest, ZeroSamplesAllZero) {
  Rng rng(13);
  const std::vector<double> weights = {1.0, 1.0};
  const auto counts = MultinomialSplit(weights, 0, &rng);
  EXPECT_EQ(counts[0], 0u);
  EXPECT_EQ(counts[1], 0u);
}

}  // namespace
}  // namespace iqs
