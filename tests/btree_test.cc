#include "iqs/em/btree.h"

#include <algorithm>
#include <vector>

#include "gtest/gtest.h"
#include "iqs/em/em_array.h"
#include "iqs/util/rng.h"

namespace iqs::em {
namespace {

struct Fixture {
  Fixture(size_t n, size_t block_words, uint64_t seed)
      : device(block_words), data(&device, 1) {
    Rng rng(seed);
    for (size_t i = 0; i < n; ++i) {
      keys.push_back(rng.Next64() % (10 * n + 1));
    }
    std::sort(keys.begin(), keys.end());
    EmWriter writer(&data);
    for (uint64_t k : keys) writer.Append1(k);
    writer.Finish();
  }

  BlockDevice device;
  EmArray data;
  std::vector<uint64_t> keys;
};

TEST(BTreeTest, LowerUpperBoundMatchStd) {
  Fixture f(5000, 16, 1);
  BTree tree(&f.data);
  Rng rng(2);
  for (int trial = 0; trial < 500; ++trial) {
    const uint64_t key = rng.Next64() % (10 * 5000 + 10);
    const size_t want_lower = static_cast<size_t>(
        std::lower_bound(f.keys.begin(), f.keys.end(), key) -
        f.keys.begin());
    const size_t want_upper = static_cast<size_t>(
        std::upper_bound(f.keys.begin(), f.keys.end(), key) -
        f.keys.begin());
    EXPECT_EQ(tree.LowerBound(key), want_lower) << "key " << key;
    EXPECT_EQ(tree.UpperBound(key), want_upper) << "key " << key;
  }
}

TEST(BTreeTest, BoundaryKeys) {
  Fixture f(1000, 8, 3);
  BTree tree(&f.data);
  EXPECT_EQ(tree.LowerBound(0), 0u);
  EXPECT_EQ(tree.LowerBound(f.keys.front()), 0u);
  EXPECT_EQ(tree.UpperBound(f.keys.back()), 1000u);
  EXPECT_EQ(tree.LowerBound(f.keys.back() + 1), 1000u);
}

TEST(BTreeTest, SearchCostIsLogarithmicInB) {
  Fixture f(1 << 14, 64, 4);
  BTree tree(&f.data);
  // Height should be ceil(log_63(n/B)) + small: n/B = 256 blocks,
  // fanout 63 -> 2 internal levels.
  EXPECT_LE(tree.height(), 2u);
  f.device.ResetCounters();
  tree.LowerBound(12345);
  EXPECT_LE(f.device.reads(), 3u);  // height + leaf
}

TEST(BTreeTest, RangeReportMatchesOracle) {
  Fixture f(3000, 16, 5);
  BTree tree(&f.data);
  Rng rng(6);
  for (int trial = 0; trial < 100; ++trial) {
    uint64_t lo = rng.Next64() % 30001;
    uint64_t hi = rng.Next64() % 30001;
    if (lo > hi) std::swap(lo, hi);
    std::vector<uint64_t> got;
    tree.RangeReport(lo, hi, &got);
    std::vector<uint64_t> want;
    for (uint64_t k : f.keys) {
      if (k >= lo && k <= hi) want.push_back(k);
    }
    EXPECT_EQ(got, want);
  }
}

TEST(BTreeTest, RangeReportIoIsOutputSensitive) {
  Fixture f(1 << 14, 64, 7);
  BTree tree(&f.data);
  // A selective range: I/O ~ log_B n + k/B, far below n/B.
  f.device.ResetCounters();
  std::vector<uint64_t> out;
  const size_t k = tree.RangeReport(1000, 3000, &out);
  EXPECT_EQ(out.size(), k);
  EXPECT_LE(f.device.reads(), 6 + k / 64 + 2);
}

TEST(BTreeTest, DuplicateKeys) {
  BlockDevice device(8);
  EmArray data(&device, 1);
  EmWriter writer(&data);
  std::vector<uint64_t> keys;
  for (uint64_t v : {1, 1, 1, 5, 5, 9, 9, 9, 9, 12}) {
    writer.Append1(v);
    keys.push_back(v);
  }
  writer.Finish();
  BTree tree(&data);
  EXPECT_EQ(tree.LowerBound(1), 0u);
  EXPECT_EQ(tree.UpperBound(1), 3u);
  EXPECT_EQ(tree.LowerBound(9), 5u);
  EXPECT_EQ(tree.UpperBound(9), 9u);
  std::vector<uint64_t> out;
  EXPECT_EQ(tree.RangeReport(5, 9, &out), 6u);
}

TEST(BTreeTest, SingleBlockData) {
  BlockDevice device(16);
  EmArray data(&device, 1);
  EmWriter writer(&data);
  for (uint64_t i = 0; i < 5; ++i) writer.Append1(i * 2);
  writer.Finish();
  BTree tree(&data);
  EXPECT_EQ(tree.height(), 0u);
  EXPECT_EQ(tree.LowerBound(4), 2u);
  EXPECT_EQ(tree.LowerBound(5), 3u);
  EXPECT_EQ(tree.LowerBound(100), 5u);
}

}  // namespace
}  // namespace iqs::em
