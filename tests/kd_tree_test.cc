#include "iqs/multidim/kd_tree.h"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "gtest/gtest.h"
#include "iqs/multidim/kd_sampler.h"
#include "iqs/util/distributions.h"
#include "iqs/util/rng.h"
#include "test_util.h"

namespace iqs::multidim {
namespace {

std::vector<Point2> MakePoints(size_t n, Rng* rng) {
  std::vector<Point2> pts;
  const auto raw = iqs::Points2D(n, 0, rng);
  pts.reserve(n);
  for (const auto& [x, y] : raw) pts.push_back({x, y});
  return pts;
}

// Brute-force rectangle oracle over the ORIGINAL points.
size_t CountInRect(const std::vector<Point2>& pts, const Rect& q) {
  size_t count = 0;
  for (const Point2& p : pts) count += q.Contains(p);
  return count;
}

TEST(KdTreeTest, CoverIsExactPartitionOfResult) {
  Rng rng(1);
  const auto pts = MakePoints(500, &rng);
  KdTree tree(pts, {});
  for (int trial = 0; trial < 100; ++trial) {
    Rect q{rng.NextDouble() * 0.8, 0, rng.NextDouble() * 0.8, 0};
    q.x_hi = q.x_lo + rng.NextDouble() * 0.4;
    q.y_hi = q.y_lo + rng.NextDouble() * 0.4;
    std::vector<CoverRange> cover;
    tree.CoverQuery(q, &cover);
    // Ranges disjoint; all covered points inside q; count matches oracle.
    std::set<size_t> covered;
    for (const CoverRange& range : cover) {
      for (size_t p = range.lo; p <= range.hi; ++p) {
        EXPECT_TRUE(covered.insert(p).second);
        EXPECT_TRUE(q.Contains(tree.PointAt(p)));
      }
    }
    EXPECT_EQ(covered.size(), CountInRect(pts, q));
  }
}

TEST(KdTreeTest, CoverSizeScalesLikeSqrtN) {
  // Full-height slab queries hit Θ(sqrt n) kd-tree nodes. Verify the
  // growth rate between n and 4n is ~2x (not 4x).
  Rng rng(2);
  auto mean_cover = [&](size_t n) {
    const auto pts = MakePoints(n, &rng);
    KdTree tree(pts, {});
    double total = 0.0;
    for (int trial = 0; trial < 30; ++trial) {
      const double x = rng.NextDouble() * 0.8;
      const Rect q{x, x + 0.1, -1.0, 2.0};  // vertical slab
      std::vector<CoverRange> cover;
      tree.CoverQuery(q, &cover);
      total += static_cast<double>(cover.size());
    }
    return total / 30.0;
  };
  const double small = mean_cover(1 << 12);
  const double large = mean_cover(1 << 14);
  EXPECT_LT(large / small, 3.0);  // sqrt(4x) = 2x, with slack
  EXPECT_GT(large / small, 1.3);
}

TEST(KdTreeTest, WeightsFollowReordering) {
  Rng rng(3);
  std::vector<Point2> pts = {{0.1, 0.1}, {0.9, 0.9}, {0.5, 0.5}, {0.2, 0.8}};
  std::vector<double> weights = {1.0, 2.0, 3.0, 4.0};
  KdTree tree(pts, weights);
  // Each stored point must carry its original weight.
  std::map<std::pair<double, double>, double> expected;
  for (size_t i = 0; i < pts.size(); ++i) {
    expected[{pts[i].x, pts[i].y}] = weights[i];
  }
  for (size_t p = 0; p < tree.n(); ++p) {
    const Point2& point = tree.PointAt(p);
    EXPECT_DOUBLE_EQ(tree.WeightAt(p), expected.at({point.x, point.y}));
  }
}

TEST(KdSamplerTest, RectSamplesMatchWeights) {
  Rng rng(4);
  const auto pts = MakePoints(200, &rng);
  std::vector<double> weights(200);
  for (double& w : weights) w = 0.5 + rng.NextDouble() * 2.0;
  KdTreeSampler sampler(pts, weights);
  const Rect q{0.2, 0.7, 0.1, 0.9};

  // Oracle: per-point expected probability among qualifying points.
  std::map<std::pair<double, double>, size_t> index_of;
  std::vector<double> qualified_weights;
  for (size_t i = 0; i < pts.size(); ++i) {
    if (q.Contains(pts[i])) {
      index_of[{pts[i].x, pts[i].y}] = qualified_weights.size();
      qualified_weights.push_back(weights[i]);
    }
  }
  ASSERT_GT(qualified_weights.size(), 5u);

  std::vector<Point2> out;
  ASSERT_TRUE(sampler.QueryRect(q, 200000, &rng, &out));
  std::vector<size_t> samples;
  for (const Point2& p : out) {
    auto it = index_of.find({p.x, p.y});
    ASSERT_NE(it, index_of.end()) << "sampled point outside rectangle";
    samples.push_back(it->second);
  }
  testing::ExpectSamplesMatchWeights(samples, qualified_weights);
}

TEST(KdSamplerTest, EmptyRectReturnsFalse) {
  Rng rng(5);
  const auto pts = MakePoints(50, &rng);
  KdTreeSampler sampler(pts, {});
  std::vector<Point2> out;
  EXPECT_FALSE(sampler.QueryRect({2.0, 3.0, 2.0, 3.0}, 5, &rng, &out));
  EXPECT_TRUE(out.empty());
}

TEST(KdSamplerTest, DiskSamplesAreUniformWithinDisk) {
  Rng rng(6);
  const auto pts = MakePoints(300, &rng);
  KdTreeSampler sampler(pts, {});
  const Point2 center{0.5, 0.5};
  const double radius = 0.3;
  std::vector<size_t> qualifying;
  for (size_t i = 0; i < pts.size(); ++i) {
    if (Distance(pts[i], center) <= radius) qualifying.push_back(i);
  }
  ASSERT_GT(qualifying.size(), 10u);

  std::vector<Point2> out;
  ASSERT_TRUE(sampler.QueryDisk(center, radius, 150000, &rng, &out));
  std::map<std::pair<double, double>, size_t> index_of;
  for (size_t j = 0; j < qualifying.size(); ++j) {
    const Point2& p = pts[qualifying[j]];
    index_of[{p.x, p.y}] = j;
  }
  std::vector<size_t> samples;
  for (const Point2& p : out) {
    ASSERT_LE(Distance(p, center), radius);
    samples.push_back(index_of.at({p.x, p.y}));
  }
  testing::ExpectSamplesMatchWeights(
      samples, std::vector<double>(qualifying.size(), 1.0));
}

TEST(KdSamplerTest, ApproxDiskMatchesExactDiskLaw) {
  Rng rng(7);
  const auto pts = MakePoints(400, &rng);
  KdTreeSampler sampler(pts, {});
  const Point2 center{0.4, 0.6};
  const double radius = 0.2;
  std::vector<Point2> exact_out;
  std::vector<Point2> approx_out;
  ASSERT_TRUE(sampler.QueryDisk(center, radius, 120000, &rng, &exact_out));
  ASSERT_TRUE(sampler.QueryDiskApprox(center, radius, 120000, 0.5, &rng,
                                      &approx_out));
  // Same support, both uniform: compare per-point frequencies directly.
  std::map<std::pair<double, double>, std::pair<uint64_t, uint64_t>> freq;
  for (const Point2& p : exact_out) ++freq[{p.x, p.y}].first;
  for (const Point2& p : approx_out) {
    ASSERT_LE(Distance(p, center), radius);
    ++freq[{p.x, p.y}].second;
  }
  for (const auto& [key, counts] : freq) {
    EXPECT_GT(counts.first, 0u);
    EXPECT_GT(counts.second, 0u);
  }
}

TEST(KdSamplerTest, FairNearNeighborIsFreshEachCall) {
  Rng rng(8);
  const auto pts = MakePoints(200, &rng);
  KdTreeSampler sampler(pts, {});
  const Point2 center{0.5, 0.5};
  std::set<std::pair<double, double>> seen;
  int hits = 0;
  for (int i = 0; i < 300; ++i) {
    const auto p = sampler.FairNearNeighbor(center, 0.25, &rng);
    if (p.has_value()) {
      ++hits;
      seen.insert({p->x, p->y});
    }
  }
  EXPECT_EQ(hits, 300);
  EXPECT_GT(seen.size(), 10u);  // not stuck on one neighbor
}

TEST(KdSamplerTest, FairNearNeighborEmptyDisk) {
  Rng rng(9);
  const auto pts = MakePoints(20, &rng);
  KdTreeSampler sampler(pts, {});
  EXPECT_FALSE(sampler.FairNearNeighbor({5.0, 5.0}, 0.1, &rng).has_value());
}

TEST(KdSamplerTest, HalfplaneSamplingUniform) {
  Rng rng(11);
  const auto pts = MakePoints(400, &rng);
  KdTreeSampler sampler(pts, {});
  // Halfplane x + 2y <= 1.2.
  const double a = 1.0;
  const double b = 2.0;
  const double c = 1.2;
  std::vector<size_t> qualifying;
  for (size_t i = 0; i < pts.size(); ++i) {
    if (a * pts[i].x + b * pts[i].y <= c) qualifying.push_back(i);
  }
  ASSERT_GT(qualifying.size(), 20u);
  std::map<std::pair<double, double>, size_t> index_of;
  for (size_t j = 0; j < qualifying.size(); ++j) {
    index_of[{pts[qualifying[j]].x, pts[qualifying[j]].y}] = j;
  }
  std::vector<Point2> out;
  ASSERT_TRUE(sampler.QueryHalfplane(a, b, c, 150000, &rng, &out));
  std::vector<size_t> samples;
  for (const Point2& p : out) {
    ASSERT_LE(a * p.x + b * p.y, c);
    samples.push_back(index_of.at({p.x, p.y}));
  }
  testing::ExpectSamplesMatchWeights(
      samples, std::vector<double>(qualifying.size(), 1.0));
}

TEST(KdSamplerTest, HalfplaneNegativeCoefficients) {
  Rng rng(12);
  const auto pts = MakePoints(200, &rng);
  KdTreeSampler sampler(pts, {});
  // -x - y <= -1.5  <=>  x + y >= 1.5 (a corner sliver).
  std::vector<Point2> out;
  const bool any = sampler.QueryHalfplane(-1.0, -1.0, -1.5, 50, &rng, &out);
  size_t oracle = 0;
  for (const Point2& p : pts) oracle += (p.x + p.y >= 1.5);
  EXPECT_EQ(any, oracle > 0);
  for (const Point2& p : out) EXPECT_GE(p.x + p.y, 1.5);
}

TEST(KdSamplerTest, EmptyHalfplaneReturnsFalse) {
  Rng rng(13);
  const auto pts = MakePoints(50, &rng);
  KdTreeSampler sampler(pts, {});
  std::vector<Point2> out;
  EXPECT_FALSE(sampler.QueryHalfplane(1.0, 1.0, -5.0, 3, &rng, &out));
}

TEST(KdSamplerTest, SinglePointDataset) {
  Rng rng(10);
  const std::vector<Point2> pts = {{0.5, 0.5}};
  KdTreeSampler sampler(pts, {});
  std::vector<Point2> out;
  ASSERT_TRUE(sampler.QueryRect({0.0, 1.0, 0.0, 1.0}, 3, &rng, &out));
  ASSERT_EQ(out.size(), 3u);
  for (const Point2& p : out) EXPECT_EQ(p, pts[0]);
}

}  // namespace
}  // namespace iqs::multidim
