#include "iqs/util/epoch.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "iqs/util/thread_pool.h"

namespace iqs {
namespace {

// Payload with an instance counter (for leak/growth assertions) and a
// redundancy invariant (for torn-read detection): check == ~value always.
struct Payload {
  explicit Payload(uint64_t v) : value(v), check(~v) { ++live; }
  ~Payload() { --live; }
  uint64_t value;
  uint64_t check;
  static std::atomic<int64_t> live;
};
std::atomic<int64_t> Payload::live{0};

TEST(VersionedTest, AcquireSeesLatestPublish) {
  Versioned<Payload> versioned(std::make_unique<const Payload>(0));
  for (uint64_t v = 1; v <= 10; ++v) {
    versioned.Publish(std::make_unique<const Payload>(v));
    const Snapshot<Payload> snap = versioned.Acquire();
    ASSERT_TRUE(snap);
    EXPECT_EQ(snap->value, v);
    EXPECT_EQ(snap->check, ~v);
  }
  EXPECT_EQ(versioned.versions_published(), 10u);
}

TEST(VersionedTest, SnapshotKeepsRetiredVersionAlive) {
  Versioned<Payload> versioned(std::make_unique<const Payload>(7));
  const Snapshot<Payload> pinned = versioned.Acquire();
  // Publish several replacements while the old version is pinned: the
  // pinned payload must stay intact (not reclaimed, not torn).
  for (uint64_t v = 100; v < 105; ++v) {
    versioned.Publish(std::make_unique<const Payload>(v));
    EXPECT_EQ(pinned->value, 7u);
    EXPECT_EQ(pinned->check, ~uint64_t{7});
  }
  // The pin blocks the grace period: retired versions cannot all be
  // reclaimed while the snapshot lives.
  EXPECT_GT(versioned.epoch_manager()->retired_pending(), 0u);
}

TEST(VersionedTest, ReleaseUnblocksReclamation) {
  Versioned<Payload> versioned(std::make_unique<const Payload>(1));
  {
    const Snapshot<Payload> pinned = versioned.Acquire();
    for (uint64_t v = 2; v < 8; ++v) {
      versioned.Publish(std::make_unique<const Payload>(v));
    }
    EXPECT_GT(versioned.epoch_manager()->retired_pending(), 0u);
  }
  // Pin released: a writer-side reclaim pass drains the limbo ring.
  EXPECT_GT(versioned.epoch_manager()->Reclaim(), 0u);
  EXPECT_EQ(versioned.epoch_manager()->retired_pending(), 0u);
  // Exactly the latest version remains live.
  EXPECT_EQ(Payload::live.load(), 1);
}

TEST(VersionedTest, MoveTransfersThePin) {
  Versioned<Payload> versioned(std::make_unique<const Payload>(3));
  Snapshot<Payload> a = versioned.Acquire();
  Snapshot<Payload> b = std::move(a);
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move): moved-from is empty
  ASSERT_TRUE(b);
  EXPECT_EQ(b->value, 3u);
  Snapshot<Payload> c;
  c = std::move(b);
  ASSERT_TRUE(c);
  EXPECT_EQ(c->value, 3u);
}

TEST(VersionedTest, NoMonotonicGrowthAcrossManyPublishCycles) {
  // The reclamation acceptance bound: across >= 1000 publish cycles with
  // transient readers, the number of live payloads stays O(1) — retired
  // versions provably come back.
  ASSERT_EQ(Payload::live.load(), 0);
  Versioned<Payload> versioned(std::make_unique<const Payload>(0));
  int64_t max_live = 0;
  size_t max_pending = 0;
  for (uint64_t v = 1; v <= 1500; ++v) {
    {
      const Snapshot<Payload> snap = versioned.Acquire();
      EXPECT_EQ(snap->check, ~snap->value);
    }
    versioned.Publish(std::make_unique<const Payload>(v));
    max_live = std::max(max_live, Payload::live.load());
    max_pending =
        std::max(max_pending, versioned.epoch_manager()->retired_pending());
  }
  // The 3-epoch grace period bounds limbo at a handful of versions; far
  // below the 1500 published (the leak regime this test guards against).
  EXPECT_LE(max_live, 8);
  EXPECT_LE(max_pending, 8u);
  EXPECT_EQ(versioned.epoch_manager()->reclaimed() +
                versioned.epoch_manager()->retired_pending(),
            1500u);
}

TEST(EpochManagerTest, RetireRunsDeleterExactlyOnceViaDrain) {
  EpochManager manager;
  static std::atomic<int> deleted;
  deleted = 0;
  int dummy[4];
  for (int& slot : dummy) {
    manager.Retire(&slot, [](void*) { deleted.fetch_add(1); });
  }
  EXPECT_EQ(manager.retired_pending(), 4u);
  manager.Drain();
  EXPECT_EQ(deleted.load(), 4);
  EXPECT_EQ(manager.retired_pending(), 0u);
  EXPECT_EQ(manager.reclaimed(), 4u);
}

TEST(EpochManagerTest, ReaderPinsAreCounted) {
  EpochManager manager;
  EXPECT_EQ(manager.reader_pins(), 0u);
  for (int i = 0; i < 5; ++i) {
    const size_t slot = manager.EnterReader();
    manager.ExitReader(slot);
  }
  EXPECT_EQ(manager.reader_pins(), 5u);
}

TEST(EpochManagerTest, ReclaimRunsDeletersOnThePool) {
  ThreadPool pool(3);
  EpochManager manager;
  static std::atomic<int> deleted;
  deleted = 0;
  int dummy[8];
  for (int& slot : dummy) {
    manager.Retire(&slot, [](void*) { deleted.fetch_add(1); });
  }
  manager.Drain(&pool);
  EXPECT_EQ(deleted.load(), 8);
}

TEST(VersionedTest, ConcurrentReadersNeverObserveTornPayloads) {
  // 2 reader threads validating the redundancy invariant while the main
  // thread publishes 400 versions. Run under TSan in CI (sanitizers.yml);
  // the invariant also catches use-after-reclaim in normal runs.
  Versioned<Payload> versioned(std::make_unique<const Payload>(0));
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        const Snapshot<Payload> snap = versioned.Acquire();
        ASSERT_TRUE(snap);
        const uint64_t value = snap->value;
        const uint64_t check = snap->check;
        ASSERT_EQ(check, ~value);
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (uint64_t v = 1; v <= 400; ++v) {
    versioned.Publish(std::make_unique<const Payload>(v));
    if (v % 16 == 0) std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();
  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(versioned.versions_published(), 400u);
  const Snapshot<Payload> last = versioned.Acquire();
  EXPECT_EQ(last->value, 400u);
}

}  // namespace
}  // namespace iqs
