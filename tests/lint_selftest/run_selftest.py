#!/usr/bin/env python3
"""Selftest for tools/iqs_lint.py: runs the linter over the fixture tree
(one deliberate violation per rule + clean counterparts) and asserts the
exact finding set — every rule fires where it must, and nowhere else.

Expected findings are derived from `VIOLATION: <rule>` marker comments
in the fixture files (umbrella findings anchor to line 1 of the orphan
header, which is marked in its leading comment instead). Then the repo
itself is linted and must come back clean.

Usage: python3 run_selftest.py [--lint PATH] [--fixture DIR]
Exit 0 on success, 1 on any mismatch.
"""

import argparse
import os
import re
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))

FINDING_RE = re.compile(r"^(.*):(\d+): \[([a-z-]+)\] ")
MARKER_RE = re.compile(r"VIOLATION: ([a-z-]+)")
ALL_RULES = ("raw-rand", "check-in-loop", "batch-signature", "umbrella",
             "naked-mutex", "suppression")


def collect_expected(fixture):
    """All (relpath, line, rule) triples marked in the fixture tree."""
    expected = set()
    for dirpath, _, names in os.walk(fixture):
        for name in sorted(names):
            if not name.endswith((".h", ".cc", ".cpp")):
                continue
            path = os.path.join(dirpath, name)
            rel = os.path.relpath(path, fixture).replace(os.sep, "/")
            with open(path, encoding="utf-8") as f:
                for i, line in enumerate(f, start=1):
                    for m in MARKER_RE.finditer(line):
                        rule = m.group(1)
                        # Umbrella findings always anchor at line 1.
                        expected.add((rel, 1 if rule == "umbrella" else i,
                                      rule))
    return expected


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument(
        "--lint",
        default=os.path.join(HERE, os.pardir, os.pardir, "tools",
                             "iqs_lint.py"))
    parser.add_argument("--fixture", default=os.path.join(HERE, "fixture"))
    args = parser.parse_args()

    expected = collect_expected(args.fixture)
    if not expected:
        print(f"FAIL: no VIOLATION markers under {args.fixture}")
        return 1
    rules_covered = {rule for _, _, rule in expected}
    missing_rules = set(ALL_RULES) - rules_covered
    if missing_rules:
        print(f"FAIL: fixture covers no violation for: "
              f"{sorted(missing_rules)}")
        return 1

    proc = subprocess.run(
        [sys.executable, args.lint, "--root", args.fixture],
        capture_output=True, text=True)
    if proc.returncode != 1:
        print(f"FAIL: expected exit 1 (findings), got {proc.returncode}\n"
              f"stdout:\n{proc.stdout}\nstderr:\n{proc.stderr}")
        return 1

    got = set()
    for raw in proc.stdout.splitlines():
        m = FINDING_RE.match(raw)
        if m:
            got.add((m.group(1).replace(os.sep, "/"), int(m.group(2)),
                     m.group(3)))

    failures = []
    for triple in sorted(expected - got):
        failures.append(f"expected but not reported: {triple}")
    for triple in sorted(got - expected):
        failures.append(f"reported but not expected: {triple}")
    for path, line, rule in sorted(got):
        if path.endswith("clean_sampler.h"):
            failures.append(f"clean fixture flagged: {path}:{line} [{rule}]")

    # The repo itself must lint clean — the selftest doubles as the repo
    # gate so a single ctest target covers both.
    repo_root = os.path.normpath(os.path.join(HERE, os.pardir, os.pardir))
    proc = subprocess.run(
        [sys.executable, args.lint, "--root", repo_root],
        capture_output=True, text=True)
    if proc.returncode != 0:
        failures.append(
            f"repo lint not clean (exit {proc.returncode}):\n{proc.stdout}")

    if failures:
        print("iqs_lint selftest FAILED:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print(f"iqs_lint selftest OK: {len(expected)} expected findings across "
          f"{len(rules_covered)} rules, 0 stray, repo clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
