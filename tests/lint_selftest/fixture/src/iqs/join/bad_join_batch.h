// Fixture: batch-signature violation in the join workload's canonical
// entry point — BatchOptions after the output parameter. Expected
// finding: batch-signature (the rule must cover SampleJoinBatch, not
// just the range-family names).
#ifndef FIXTURE_IQS_JOIN_BAD_JOIN_BATCH_H_
#define FIXTURE_IQS_JOIN_BAD_JOIN_BATCH_H_

#include "iqs/range/clean_sampler.h"

namespace iqs::join {

class BadJoinBatch {
 public:
  // Output before BatchOptions: out of canonical order.
  void SampleJoinBatch(std::span<const PositionQuery> queries, Rng* rng,  // VIOLATION: batch-signature
                       ScratchArena* arena, JoinBatchResult* result,
                       const BatchOptions& opts) const;
};

}  // namespace iqs::join

#endif  // FIXTURE_IQS_JOIN_BAD_JOIN_BATCH_H_
