// Fixture: one deliberate violation per line-level lint rule, plus one
// malformed suppression. Expected findings (asserted by run_selftest.py):
//   raw-rand       at the std::mt19937 line
//   check-in-loop  at the IQS_CHECK-in-for line
//   naked-mutex    at the std::mutex line
//   suppression    at the justification-free allow() line
#ifndef FIXTURE_IQS_UTIL_VIOLATIONS_H_
#define FIXTURE_IQS_UTIL_VIOLATIONS_H_

#include <cstddef>

namespace iqs {

inline unsigned BadSeed() {
  std::mt19937 gen(12345);  // VIOLATION: raw-rand
  return static_cast<unsigned>(gen());
}

inline void BadLoopCheck(size_t n) {
  for (size_t i = 0; i < n; ++i) {
    IQS_CHECK(i < n);  // VIOLATION: check-in-loop
  }
}

inline void SuppressedLoopCheck(size_t n) {
  for (size_t i = 0; i < n; ++i) {
    // iqs-lint: allow(check-in-loop) -- fixture: justified, no finding
    IQS_CHECK(i < n);
  }
}

inline void BadSuppression(size_t n) {
  for (size_t i = 0; i < n; ++i) {
    // iqs-lint: allow(check-in-loop) <- VIOLATION: suppression
    IQS_CHECK(i < n);  // VIOLATION: check-in-loop (allow above malformed)
  }
}

// The strings below never trip raw-rand / check-in-loop: the linter
// strips string literals before matching.
inline const char* Prose() { return "std::mt19937 IQS_CHECK(in a string)"; }

class BadMutexHolder {
 private:
  std::mutex mu_;  // VIOLATION: naked-mutex
};

}  // namespace iqs

#endif  // FIXTURE_IQS_UTIL_VIOLATIONS_H_
