// Fixture umbrella header. Deliberately does NOT include
// range/orphan.h, so the umbrella rule has exactly one finding.
#ifndef FIXTURE_IQS_IQS_H_
#define FIXTURE_IQS_IQS_H_

#include "iqs/join/bad_join_batch.h"
#include "iqs/range/clean_sampler.h"
#include "iqs/util/violations.h"

#endif  // FIXTURE_IQS_IQS_H_
