// Fixture: batch-signature violation — the output parameter is not
// last (Rng* trails it). Expected finding: batch-signature.
#include "iqs/range/clean_sampler.h"

namespace iqs {

class BadBatch {
 public:
  // Output before Rng*: out of canonical order.
  void SampleBatch(std::span<const PositionQuery> queries,  // VIOLATION: batch-signature
                   std::vector<size_t>* out, Rng* rng) const;
};

}  // namespace iqs
