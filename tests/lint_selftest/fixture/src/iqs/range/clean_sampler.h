// Fixture: a fully clean header — canonical batch signature, DCHECK in
// the loop, no raw randomness, no naked mutex. Must produce NO findings.
#ifndef FIXTURE_IQS_RANGE_CLEAN_SAMPLER_H_
#define FIXTURE_IQS_RANGE_CLEAN_SAMPLER_H_

#include <cstddef>
#include <span>
#include <vector>

namespace iqs {

class Rng;
class ScratchArena;
struct BatchOptions;
struct PositionQuery;

class CleanSampler {
 public:
  // Canonical order: inputs, Rng*, ScratchArena*, BatchOptions, output.
  void QueryBatch(std::span<const PositionQuery> queries, Rng* rng,
                  ScratchArena* arena, const BatchOptions& opts,
                  std::vector<size_t>* out) const;

  // Convenience overload omitting opts: still canonical.
  void QueryBatch(std::span<const PositionQuery> queries, Rng* rng,
                  ScratchArena* arena, std::vector<size_t>* out) const;

  void Validate(size_t n) const {
    for (size_t i = 0; i < n; ++i) {
      IQS_DCHECK(i < n);  // DCHECK in a loop is fine
    }
  }
};

}  // namespace iqs

#endif  // FIXTURE_IQS_RANGE_CLEAN_SAMPLER_H_
