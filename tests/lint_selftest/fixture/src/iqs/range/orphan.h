// Fixture: deliberately NOT included from the fixture umbrella iqs.h.
// VIOLATION: umbrella
#ifndef FIXTURE_IQS_RANGE_ORPHAN_H_
#define FIXTURE_IQS_RANGE_ORPHAN_H_

namespace iqs {
inline int Orphan() { return 42; }
}  // namespace iqs

#endif  // FIXTURE_IQS_RANGE_ORPHAN_H_
