#include "iqs/alias/quantized_alias.h"

#include <cmath>
#include <vector>

#include "gtest/gtest.h"
#include "iqs/alias/alias_table.h"
#include "iqs/util/rng.h"
#include "test_util.h"

namespace iqs {
namespace {

TEST(QuantizedAliasTest, SingleElement) {
  Rng rng(1);
  QuantizedAlias alias(std::vector<double>{1.0});
  for (int i = 0; i < 100; ++i) EXPECT_EQ(alias.Sample(&rng), 0u);
}

TEST(QuantizedAliasTest, AssignedProbabilitiesSumToOne) {
  Rng rng(2);
  const std::vector<double> weights = {1.0, 5.0, 0.25, 2.0, 9.0};
  QuantizedAlias alias(weights);
  double total = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    total += alias.AssignedProbability(i);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(QuantizedAliasTest, EpsilonUniformGuarantee) {
  // Uniform weights: every probability must lie within the paper's
  // epsilon-uniform band for eps = 2^-15.
  constexpr size_t kN = 1000;
  QuantizedAlias alias(std::vector<double>(kN, 1.0));
  const double eps = std::pow(2.0, -15);
  const double lo = 1.0 / ((1.0 + eps) * kN);
  const double hi = 1.0 / ((1.0 - eps) * kN);
  for (size_t i = 0; i < kN; ++i) {
    const double p = alias.AssignedProbability(i);
    EXPECT_GE(p, lo) << "element " << i;
    EXPECT_LE(p, hi) << "element " << i;
  }
}

TEST(QuantizedAliasTest, QuantizationErrorBounded) {
  // General weights: absolute deviation per element <= 2 * 2^-16 / n.
  Rng rng(3);
  const size_t n = 64;
  std::vector<double> weights(n);
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    weights[i] = 0.1 + rng.NextDouble();
    total += weights[i];
  }
  QuantizedAlias alias(weights);
  const double bound = 2.0 / 65536.0 / static_cast<double>(n);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(alias.AssignedProbability(i), weights[i] / total, bound);
  }
}

TEST(QuantizedAliasTest, EmpiricalDistributionMatches) {
  Rng rng(4);
  const std::vector<double> weights = {4.0, 1.0, 3.0, 2.0};
  QuantizedAlias alias(weights);
  std::vector<size_t> samples;
  for (int i = 0; i < 200000; ++i) samples.push_back(alias.Sample(&rng));
  testing::ExpectSamplesMatchWeights(samples, weights);
}

TEST(QuantizedAliasTest, SmallerThanExactAlias) {
  const std::vector<double> weights(10000, 1.0);
  AliasTable exact(weights);
  QuantizedAlias quantized(weights);
  // 6 bytes/urn vs 16 bytes/urn.
  EXPECT_LT(quantized.MemoryBytes() * 2, exact.MemoryBytes());
}

}  // namespace
}  // namespace iqs
