#include "iqs/range/dynamic_range_sampler.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <vector>

#include "gtest/gtest.h"
#include "iqs/util/rng.h"
#include "test_util.h"

namespace iqs {
namespace {

TEST(DynamicRangeSamplerTest, InsertQueryBasic) {
  Rng rng(1);
  DynamicRangeSampler sampler(&rng);
  sampler.Insert(1.0, 2.0);
  sampler.Insert(2.0, 3.0);
  sampler.Insert(3.0, 5.0);
  EXPECT_EQ(sampler.size(), 3u);
  EXPECT_NEAR(sampler.RangeWeight(0.0, 10.0), 10.0, 1e-12);
  EXPECT_NEAR(sampler.RangeWeight(1.5, 2.5), 3.0, 1e-12);
  EXPECT_NEAR(sampler.RangeWeight(4.0, 9.0), 0.0, 1e-12);

  std::vector<double> out;
  EXPECT_TRUE(sampler.Query(0.0, 10.0, 5, &rng, &out));
  EXPECT_EQ(out.size(), 5u);
  EXPECT_FALSE(sampler.Query(4.0, 9.0, 5, &rng, &out));
}

TEST(DynamicRangeSamplerTest, QueryMatchesWeightsWithinRange) {
  Rng rng(2);
  DynamicRangeSampler sampler(&rng);
  // Keys 0..49 with weight (i % 5) + 1.
  std::vector<double> weights(50);
  for (int i = 0; i < 50; ++i) {
    weights[i] = (i % 5) + 1.0;
    sampler.Insert(static_cast<double>(i), weights[i]);
  }
  std::vector<double> out;
  ASSERT_TRUE(sampler.Query(10.0, 39.0, 200000, &rng, &out));
  std::vector<uint64_t> counts(30, 0);
  for (double key : out) {
    const int k = static_cast<int>(key);
    ASSERT_GE(k, 10);
    ASSERT_LE(k, 39);
    ++counts[k - 10];
  }
  std::vector<double> range_weights(weights.begin() + 10,
                                    weights.begin() + 40);
  testing::ExpectDistributionClose(counts, testing::Normalize(range_weights));
}

TEST(DynamicRangeSamplerTest, DeleteRemovesMass) {
  Rng rng(3);
  DynamicRangeSampler sampler(&rng);
  sampler.Insert(1.0, 1.0);
  sampler.Insert(2.0, 100.0);
  ASSERT_TRUE(sampler.Delete(2.0));
  EXPECT_EQ(sampler.size(), 1u);
  EXPECT_FALSE(sampler.Delete(2.0));
  std::vector<double> out;
  ASSERT_TRUE(sampler.Query(0.0, 10.0, 20, &rng, &out));
  for (double key : out) EXPECT_DOUBLE_EQ(key, 1.0);
}

TEST(DynamicRangeSamplerTest, DuplicateKeysCountSeparately) {
  Rng rng(4);
  DynamicRangeSampler sampler(&rng);
  sampler.Insert(5.0, 1.0);
  sampler.Insert(5.0, 1.0);
  sampler.Insert(5.0, 1.0);
  EXPECT_EQ(sampler.size(), 3u);
  EXPECT_NEAR(sampler.RangeWeight(5.0, 5.0), 3.0, 1e-12);
  ASSERT_TRUE(sampler.Delete(5.0));
  EXPECT_NEAR(sampler.RangeWeight(5.0, 5.0), 2.0, 1e-12);
}

TEST(DynamicRangeSamplerTest, SetWeightRedistributes) {
  Rng rng(5);
  DynamicRangeSampler sampler(&rng);
  sampler.Insert(1.0, 1.0);
  sampler.Insert(2.0, 1.0);
  ASSERT_TRUE(sampler.SetWeight(1.0, 999.0));
  EXPECT_FALSE(sampler.SetWeight(7.0, 1.0));
  std::vector<double> out;
  ASSERT_TRUE(sampler.Query(0.0, 3.0, 2000, &rng, &out));
  size_t ones = 0;
  for (double key : out) ones += (key == 1.0);
  EXPECT_GT(ones, out.size() * 95 / 100);
}

TEST(DynamicRangeSamplerTest, ChurnAgainstOracle) {
  // Random inserts/deletes/updates; after churn, range weights and
  // sampling law must match a std::multimap oracle.
  Rng rng(6);
  DynamicRangeSampler sampler(&rng);
  std::multimap<double, double> oracle;  // key -> weight
  for (int op = 0; op < 4000; ++op) {
    const double dice = rng.NextDouble();
    if (oracle.empty() || dice < 0.55) {
      const double key = static_cast<double>(rng.Below(200));
      const double weight = 0.5 + rng.NextDouble() * 3.0;
      sampler.Insert(key, weight);
      oracle.emplace(key, weight);
    } else if (dice < 0.8) {
      auto it = oracle.begin();
      std::advance(it, rng.Below(oracle.size()));
      const double key = it->first;
      // The treap deletes "one element with this key" — WHICH one is
      // unspecified, so keep the oracle in lockstep by deleting only
      // unique keys (duplicate-key deletion is covered elsewhere).
      if (oracle.count(key) == 1) {
        ASSERT_TRUE(sampler.Delete(key));
        oracle.erase(oracle.find(key));
      }
    } else {
      auto it = oracle.begin();
      std::advance(it, rng.Below(oracle.size()));
      const double weight = 0.5 + rng.NextDouble() * 3.0;
      // SetWeight changes one element with the key; to keep the oracle in
      // lockstep when keys repeat, apply only to unique keys.
      if (oracle.count(it->first) == 1) {
        ASSERT_TRUE(sampler.SetWeight(it->first, weight));
        it->second = weight;
      }
    }
  }
  ASSERT_EQ(sampler.size(), oracle.size());

  // Range weights vs oracle on many ranges.
  for (int trial = 0; trial < 200; ++trial) {
    double lo = static_cast<double>(rng.Below(200));
    double hi = static_cast<double>(rng.Below(200));
    if (lo > hi) std::swap(lo, hi);
    double want = 0.0;
    for (auto it = oracle.lower_bound(lo);
         it != oracle.end() && it->first <= hi; ++it) {
      want += it->second;
    }
    EXPECT_NEAR(sampler.RangeWeight(lo, hi), want, 1e-6);
  }

  // Sampling law over one wide range: aggregate per key.
  std::map<double, double> key_weight;
  for (const auto& [key, weight] : oracle) key_weight[key] += weight;
  std::vector<double> keys;
  std::vector<double> weights;
  for (const auto& [key, weight] : key_weight) {
    keys.push_back(key);
    weights.push_back(weight);
  }
  std::vector<double> out;
  ASSERT_TRUE(sampler.Query(-1.0, 201.0, 150000, &rng, &out));
  std::map<double, uint64_t> freq;
  for (double key : out) ++freq[key];
  std::vector<uint64_t> counts;
  for (double key : keys) counts.push_back(freq[key]);
  testing::ExpectDistributionClose(counts, testing::Normalize(weights));
}

TEST(DynamicRangeSamplerTest, RepeatedQueriesIndependent) {
  Rng rng(7);
  DynamicRangeSampler sampler(&rng);
  for (int i = 0; i < 100; ++i) {
    sampler.Insert(static_cast<double>(i), 1.0);
  }
  std::vector<double> first;
  std::vector<double> second;
  sampler.Query(10.0, 90.0, 30, &rng, &first);
  sampler.Query(10.0, 90.0, 30, &rng, &second);
  EXPECT_NE(first, second);
}

TEST(DynamicRangeSamplerTest, LawSurvivesDeleteReinsertChurn) {
  // Interleaved Insert/Delete churn under a fixed seed, then a chi-square
  // law check (alpha 1e-6): after every element has been deleted and
  // re-inserted several times — rotating treap shape, recycling node
  // slots — the queried law must still be exactly the final weights.
  Rng rng(9);
  DynamicRangeSampler sampler(&rng);
  const size_t n = 120;
  std::vector<double> keys(n);
  std::vector<double> weights(n);
  for (size_t i = 0; i < n; ++i) {
    keys[i] = static_cast<double>(i) / static_cast<double>(n);
    weights[i] = 0.5 + 2.0 * rng.NextDouble();
    sampler.Insert(keys[i], weights[i]);
  }
  // Churn: each round deletes a pseudo-random half (sweeping phase so
  // every index cycles through deletion) and re-inserts it, sometimes
  // with a temporary weight corrected on re-entry.
  for (int round = 0; round < 8; ++round) {
    for (size_t i = round % 2; i < n; i += 2) {
      ASSERT_TRUE(sampler.Delete(keys[i]));
    }
    for (size_t i = round % 2; i < n; i += 2) {
      sampler.Insert(keys[i], 10.0);  // wrong weight on purpose...
      ASSERT_TRUE(sampler.SetWeight(keys[i], weights[i]));  // ...then fixed
    }
    ASSERT_EQ(sampler.size(), n);
  }
  EXPECT_NEAR(sampler.RangeWeight(-1.0, 2.0),
              std::accumulate(weights.begin(), weights.end(), 0.0), 1e-9);

  std::vector<double> out;
  ASSERT_TRUE(sampler.Query(-1.0, 2.0, 300000, &rng, &out));
  std::map<double, size_t> index;
  for (size_t i = 0; i < n; ++i) index[keys[i]] = i;
  std::vector<uint64_t> counts(n, 0);
  for (double key : out) {
    const auto it = index.find(key);
    ASSERT_NE(it, index.end());
    ++counts[it->second];
  }
  testing::ExpectDistributionClose(counts, testing::Normalize(weights));
}

TEST(DynamicRangeSamplerTest, EmptyAndSingle) {
  Rng rng(8);
  DynamicRangeSampler sampler(&rng);
  std::vector<double> out;
  EXPECT_FALSE(sampler.Query(0.0, 1.0, 5, &rng, &out));
  sampler.Insert(0.5, 1.0);
  EXPECT_TRUE(sampler.Query(0.0, 1.0, 3, &rng, &out));
  EXPECT_EQ(out.size(), 3u);
  EXPECT_TRUE(sampler.Delete(0.5));
  EXPECT_TRUE(sampler.empty());
  EXPECT_FALSE(sampler.Query(0.0, 1.0, 5, &rng, &out));
}

}  // namespace
}  // namespace iqs
