// Parameterized property sweeps for the 2-d IQS structures: law,
// containment, and independence across structure kind x weight shape x
// query shape (gtest TEST_P).

#include <cmath>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "gtest/gtest.h"
#include "iqs/iqs.h"
#include "test_util.h"

namespace iqs::multidim {
namespace {

enum class StructureKind { kKd, kQuad, kRangeTree };
enum class WeightShape { kUnit, kSkewed };
enum class QueryShape { kSquare, kSlabX, kSlabY, kFull };

using Param = std::tuple<StructureKind, WeightShape, QueryShape>;

class MultidimPropertyTest : public ::testing::TestWithParam<Param> {
 protected:
  static constexpr size_t kN = 300;

  void SetUp() override {
    Rng rng(31);
    for (const auto& [x, y] : Points2D(kN, 2, &rng)) points_.push_back({x, y});
    weights_.resize(kN);
    for (double& w : weights_) {
      w = std::get<1>(GetParam()) == WeightShape::kUnit
              ? 1.0
              : std::pow(rng.NextDouble(), 3.0) * 10.0 + 0.1;
    }
    switch (std::get<2>(GetParam())) {
      case QueryShape::kSquare:
        query_ = {0.3, 0.7, 0.3, 0.7};
        break;
      case QueryShape::kSlabX:
        query_ = {0.45, 0.55, -1.0, 2.0};
        break;
      case QueryShape::kSlabY:
        query_ = {-1.0, 2.0, 0.45, 0.55};
        break;
      case QueryShape::kFull:
        query_ = {-1.0, 2.0, -1.0, 2.0};
        break;
    }
  }

  // Runs one query of `s` samples through the selected structure.
  bool RunQuery(size_t s, Rng* rng, std::vector<Point2>* out) {
    switch (std::get<0>(GetParam())) {
      case StructureKind::kKd: {
        if (kd_ == nullptr) {
          kd_ = std::make_unique<KdTreeSampler>(points_, weights_);
        }
        return kd_->QueryRect(query_, s, rng, out);
      }
      case StructureKind::kQuad: {
        if (quad_ == nullptr) {
          quad_ = std::make_unique<QuadtreeSampler>(points_, weights_);
        }
        return quad_->QueryRect(query_, s, rng, out);
      }
      case StructureKind::kRangeTree: {
        if (range_tree_ == nullptr) {
          range_tree_ =
              std::make_unique<RangeTree2DSampler>(points_, weights_);
        }
        return range_tree_->QueryRect(query_, s, rng, out);
      }
    }
    return false;
  }

  std::vector<Point2> points_;
  std::vector<double> weights_;
  Rect query_;
  std::unique_ptr<KdTreeSampler> kd_;
  std::unique_ptr<QuadtreeSampler> quad_;
  std::unique_ptr<RangeTree2DSampler> range_tree_;
};

TEST_P(MultidimPropertyTest, LawAndContainment) {
  Rng rng(32);
  std::map<std::pair<double, double>, size_t> index_of;
  std::vector<double> qualified_weights;
  for (size_t i = 0; i < points_.size(); ++i) {
    if (query_.Contains(points_[i])) {
      index_of[{points_[i].x, points_[i].y}] = qualified_weights.size();
      qualified_weights.push_back(weights_[i]);
    }
  }
  std::vector<Point2> out;
  const bool nonempty = RunQuery(120000, &rng, &out);
  ASSERT_EQ(nonempty, !qualified_weights.empty());
  if (!nonempty) return;
  std::vector<size_t> samples;
  for (const Point2& p : out) {
    const auto it = index_of.find({p.x, p.y});
    ASSERT_NE(it, index_of.end()) << "sample escaped the query rect";
    samples.push_back(it->second);
  }
  iqs::testing::ExpectSamplesMatchWeights(samples, qualified_weights);
}

TEST_P(MultidimPropertyTest, RepeatedQueriesDiffer) {
  Rng rng(33);
  std::vector<Point2> first;
  std::vector<Point2> second;
  if (!RunQuery(20, &rng, &first)) GTEST_SKIP();
  RunQuery(20, &rng, &second);
  bool identical = first.size() == second.size();
  if (identical) {
    for (size_t i = 0; i < first.size(); ++i) {
      identical = identical && first[i] == second[i];
    }
  }
  EXPECT_FALSE(identical);
}

std::string Name(const ::testing::TestParamInfo<Param>& info) {
  std::string name;
  switch (std::get<0>(info.param)) {
    case StructureKind::kKd:
      name += "Kd";
      break;
    case StructureKind::kQuad:
      name += "Quad";
      break;
    case StructureKind::kRangeTree:
      name += "RangeTree";
      break;
  }
  name += std::get<1>(info.param) == WeightShape::kUnit ? "Unit" : "Skew";
  switch (std::get<2>(info.param)) {
    case QueryShape::kSquare:
      name += "Square";
      break;
    case QueryShape::kSlabX:
      name += "SlabX";
      break;
    case QueryShape::kSlabY:
      name += "SlabY";
      break;
    case QueryShape::kFull:
      name += "Full";
      break;
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MultidimPropertyTest,
    ::testing::Combine(::testing::Values(StructureKind::kKd,
                                         StructureKind::kQuad,
                                         StructureKind::kRangeTree),
                       ::testing::Values(WeightShape::kUnit,
                                         WeightShape::kSkewed),
                       ::testing::Values(QueryShape::kSquare,
                                         QueryShape::kSlabX,
                                         QueryShape::kSlabY,
                                         QueryShape::kFull)),
    Name);

}  // namespace
}  // namespace iqs::multidim
