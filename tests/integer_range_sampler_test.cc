#include "iqs/range/integer_range_sampler.h"

#include <algorithm>
#include <set>
#include <vector>

#include "gtest/gtest.h"
#include "iqs/util/rng.h"
#include "test_util.h"

namespace iqs {
namespace {

std::vector<uint64_t> MakeKeys(size_t n, uint64_t universe, Rng* rng) {
  // Clamp so distinct keys exist (an 8-bit universe has only 256 values).
  n = std::min<uint64_t>(n, universe / 2 + 1);
  std::set<uint64_t> keys;
  while (keys.size() < n) keys.insert(rng->Below(universe));
  return {keys.begin(), keys.end()};
}

TEST(StaticYFastIndexTest, PredecessorMatchesBinarySearchOracle) {
  Rng rng(1);
  for (int key_bits : {8, 16, 32, 64}) {
    const uint64_t universe =
        key_bits == 64 ? ~uint64_t{0} : (uint64_t{1} << key_bits);
    const auto keys = MakeKeys(500, universe, &rng);
    StaticYFastIndex index(keys, key_bits);
    for (int trial = 0; trial < 3000; ++trial) {
      // Mix of random probes, exact keys, and off-by-one probes.
      uint64_t q;
      const double dice = rng.NextDouble();
      if (dice < 0.4) {
        q = rng.Below(universe);
      } else if (dice < 0.7) {
        q = keys[rng.Below(keys.size())];
      } else {
        const uint64_t k = keys[rng.Below(keys.size())];
        q = rng.Bernoulli(0.5) ? k + 1 : (k == 0 ? 0 : k - 1);
      }
      const auto got = index.Predecessor(q);
      const auto it = std::upper_bound(keys.begin(), keys.end(), q);
      if (it == keys.begin()) {
        EXPECT_FALSE(got.has_value()) << "q=" << q;
      } else {
        ASSERT_TRUE(got.has_value()) << "q=" << q;
        EXPECT_EQ(*got, static_cast<size_t>(it - keys.begin()) - 1)
            << "q=" << q << " bits=" << key_bits;
      }
    }
  }
}

TEST(StaticYFastIndexTest, BoundaryProbes) {
  const std::vector<uint64_t> keys = {5, 9, 100, 101, 4095};
  StaticYFastIndex index(keys, 12);
  EXPECT_FALSE(index.Predecessor(0).has_value());
  EXPECT_FALSE(index.Predecessor(4).has_value());
  EXPECT_EQ(*index.Predecessor(5), 0u);
  EXPECT_EQ(*index.Predecessor(8), 0u);
  EXPECT_EQ(*index.Predecessor(9), 1u);
  EXPECT_EQ(*index.Predecessor(99), 1u);
  EXPECT_EQ(*index.Predecessor(100), 2u);
  EXPECT_EQ(*index.Predecessor(4094), 3u);
  EXPECT_EQ(*index.Predecessor(4095), 4u);
  // Probe above the 12-bit universe.
  EXPECT_EQ(*index.Predecessor(~uint64_t{0}), 4u);
}

TEST(StaticYFastIndexTest, SingleKey) {
  const std::vector<uint64_t> keys = {7};
  StaticYFastIndex index(keys, 16);
  EXPECT_FALSE(index.Predecessor(6).has_value());
  EXPECT_EQ(*index.Predecessor(7), 0u);
  EXPECT_EQ(*index.Predecessor(70000), 0u);
}

TEST(IntegerRangeSamplerTest, ResolveMatchesOracle) {
  Rng rng(2);
  const auto keys = MakeKeys(400, 1 << 20, &rng);
  const std::vector<double> weights(keys.size(), 1.0);
  IntegerRangeSampler sampler(keys, weights, 20);
  for (int trial = 0; trial < 1000; ++trial) {
    uint64_t lo = rng.Below(1 << 20);
    uint64_t hi = rng.Below(1 << 20);
    if (lo > hi) std::swap(lo, hi);
    size_t a = 0;
    size_t b = 0;
    const bool nonempty = sampler.ResolveInterval(lo, hi, &a, &b);
    const auto first = std::lower_bound(keys.begin(), keys.end(), lo);
    const auto last = std::upper_bound(keys.begin(), keys.end(), hi);
    ASSERT_EQ(nonempty, first != last);
    if (!nonempty) continue;
    EXPECT_EQ(a, static_cast<size_t>(first - keys.begin()));
    EXPECT_EQ(b, static_cast<size_t>(last - keys.begin()) - 1);
  }
}

TEST(IntegerRangeSamplerTest, SamplesMatchWeights) {
  Rng rng(3);
  const auto keys = MakeKeys(96, 1 << 16, &rng);
  std::vector<double> weights(keys.size());
  for (double& w : weights) w = 0.5 + 2.0 * rng.NextDouble();
  IntegerRangeSampler sampler(keys, weights, 16);

  const uint64_t lo = keys[10];
  const uint64_t hi = keys[80];
  std::vector<size_t> out;
  ASSERT_TRUE(sampler.Query(lo, hi, 150000, &rng, &out));
  std::vector<uint64_t> counts(71, 0);
  for (size_t p : out) {
    ASSERT_GE(p, 10u);
    ASSERT_LE(p, 80u);
    ++counts[p - 10];
  }
  std::vector<double> range_weights(weights.begin() + 10,
                                    weights.begin() + 81);
  testing::ExpectDistributionClose(counts, testing::Normalize(range_weights));
}

TEST(IntegerRangeSamplerTest, EmptyAndDegenerate) {
  Rng rng(4);
  const std::vector<uint64_t> keys = {10, 20, 30};
  const std::vector<double> weights = {1.0, 1.0, 1.0};
  IntegerRangeSampler sampler(keys, weights, 8);
  std::vector<size_t> out;
  EXPECT_FALSE(sampler.Query(0, 9, 3, &rng, &out));
  EXPECT_FALSE(sampler.Query(11, 19, 3, &rng, &out));
  EXPECT_FALSE(sampler.Query(31, 255, 3, &rng, &out));
  EXPECT_FALSE(sampler.Query(20, 10, 3, &rng, &out));
  ASSERT_TRUE(sampler.Query(20, 20, 5, &rng, &out));
  for (size_t p : out) EXPECT_EQ(p, 1u);
  // lo == 0 path.
  out.clear();
  ASSERT_TRUE(sampler.Query(0, 255, 5, &rng, &out));
  EXPECT_EQ(out.size(), 5u);
}

TEST(IntegerRangeSamplerTest, DenseUniverse) {
  // Keys = every value of a small universe: predecessor is identity.
  Rng rng(5);
  std::vector<uint64_t> keys(256);
  std::vector<double> weights(256, 1.0);
  for (uint64_t i = 0; i < 256; ++i) keys[i] = i;
  IntegerRangeSampler sampler(keys, weights, 8);
  std::vector<size_t> out;
  ASSERT_TRUE(sampler.Query(64, 191, 64000, &rng, &out));
  std::vector<uint64_t> counts(128, 0);
  for (size_t p : out) ++counts[p - 64];
  testing::ExpectDistributionClose(counts,
                                   std::vector<double>(128, 1.0 / 128));
}

TEST(IntegerRangeSamplerTest, BatchMatchesSingleQueryLaw) {
  // Chi-square equivalence (alpha 1e-6): QueryBatch (y-fast resolve + one
  // CoverExecutor run) must draw from the same law as the looped single
  // path.
  Rng rng(51);
  const auto keys = MakeKeys(400, uint64_t{1} << 32, &rng);
  std::vector<double> weights(keys.size());
  for (size_t i = 0; i < weights.size(); ++i) weights[i] = 1.0 + (i % 5);
  const IntegerRangeSampler sampler(keys, weights, 32);

  const uint64_t lo = keys[37];
  const uint64_t hi = keys[351];
  size_t a = 0;
  size_t b = 0;
  ASSERT_TRUE(sampler.ResolveInterval(lo, hi, &a, &b));
  const size_t s = 64;
  const size_t rounds = 1600;

  Rng single_rng(52);
  std::vector<size_t> single;
  for (size_t round = 0; round < rounds; ++round) {
    ASSERT_TRUE(sampler.Query(lo, hi, s, &single_rng, &single));
  }

  Rng batch_rng(53);
  ScratchArena arena;
  BatchResult result;
  const std::vector<IntegerBatchQuery> queries(8,
                                               IntegerBatchQuery{lo, hi, s});
  std::vector<size_t> batch;
  for (size_t round = 0; round < rounds / queries.size(); ++round) {
    sampler.QueryBatch(queries, &batch_rng, &arena, &result);
    ASSERT_EQ(result.positions.size(), queries.size() * s);
    batch.insert(batch.end(), result.positions.begin(),
                 result.positions.end());
  }

  std::vector<double> expected(keys.size(), 0.0);
  for (size_t i = a; i <= b; ++i) expected[i] = weights[i];
  testing::ExpectSamplesMatchWeights(single, expected);
  testing::ExpectSamplesMatchWeights(batch, expected);
}

TEST(IntegerRangeSamplerTest, BatchFlagsEmptyIntervals) {
  Rng rng(54);
  const std::vector<uint64_t> keys = {10, 20, 30, 40};
  const std::vector<double> weights(4, 1.0);
  const IntegerRangeSampler sampler(keys, weights, 16);
  const std::vector<IntegerBatchQuery> queries = {
      {0, 5, 8},    // below every key
      {11, 19, 8},  // gap between keys
      {15, 35, 8},
      {25, 25, 4},  // empty single point
  };
  ScratchArena arena;
  BatchResult result;
  sampler.QueryBatch(queries, &rng, &arena, &result);
  ASSERT_EQ(result.num_queries(), 4u);
  EXPECT_EQ(result.resolved[0], 0);
  EXPECT_EQ(result.resolved[1], 0);
  EXPECT_EQ(result.resolved[2], 1);
  EXPECT_EQ(result.resolved[3], 0);
  EXPECT_EQ(result.SamplesFor(2).size(), 8u);
  EXPECT_EQ(result.positions.size(), 8u);
  for (const size_t p : result.SamplesFor(2)) {
    EXPECT_GE(p, 1u);  // key 20
    EXPECT_LE(p, 2u);  // key 30
  }
}

}  // namespace
}  // namespace iqs
