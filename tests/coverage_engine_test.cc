#include "iqs/cover/coverage_engine.h"

#include <vector>

#include "gtest/gtest.h"
#include "iqs/util/rng.h"
#include "test_util.h"

namespace iqs {
namespace {

TEST(CoverageEngineTest, SingleRangeMatchesWeights) {
  Rng rng(1);
  const std::vector<double> weights = {1.0, 2.0, 3.0, 4.0};
  CoverageEngine engine(weights);
  const std::vector<CoverRange> cover = {{0, 3, 10.0}};
  std::vector<size_t> out;
  engine.Sample(cover, 200000, &rng, &out);
  testing::ExpectSamplesMatchWeights(out, weights);
}

TEST(CoverageEngineTest, MultiRangeRespectsBothLevels) {
  Rng rng(2);
  // Positions 0..5; cover = {0..1} (weight 3) and {4..5} (weight 9);
  // positions 2..3 excluded.
  const std::vector<double> weights = {1.0, 2.0, 100.0, 100.0, 4.0, 5.0};
  CoverageEngine engine(weights);
  const std::vector<CoverRange> cover = {{0, 1, 3.0}, {4, 5, 9.0}};
  std::vector<size_t> out;
  engine.Sample(cover, 240000, &rng, &out);
  std::vector<uint64_t> counts(6, 0);
  for (size_t p : out) {
    ASSERT_TRUE(p <= 1 || p >= 4) << "sampled excluded position " << p;
    ++counts[p];
  }
  testing::ExpectDistributionClose(
      counts, testing::Normalize({1.0, 2.0, 0.0, 0.0, 4.0, 5.0}));
}

TEST(CoverageEngineTest, ZeroSamplesNoop) {
  Rng rng(3);
  CoverageEngine engine(std::vector<double>{1.0, 1.0});
  std::vector<size_t> out;
  engine.Sample(std::vector<CoverRange>{{0, 1, 2.0}}, 0, &rng, &out);
  EXPECT_TRUE(out.empty());
}

TEST(CoverageEngineTest, RejectionFiltersToPredicate) {
  Rng rng(4);
  // Approximate cover includes the whole array; predicate keeps evens.
  const size_t n = 20;
  const std::vector<double> weights(n, 1.0);
  CoverageEngine engine(weights);
  const std::vector<CoverRange> cover = {{0, n - 1, static_cast<double>(n)}};
  std::vector<size_t> out;
  engine.SampleWithRejection(
      cover, 100000, [](size_t p) { return p % 2 == 0; }, &rng, &out);
  ASSERT_EQ(out.size(), 100000u);
  std::vector<uint64_t> counts(n / 2, 0);
  for (size_t p : out) {
    ASSERT_EQ(p % 2, 0u);
    ++counts[p / 2];
  }
  testing::ExpectDistributionClose(
      counts, std::vector<double>(n / 2, 2.0 / n));
}

TEST(CoverageEngineTest, RejectionWithWeights) {
  Rng rng(5);
  const std::vector<double> weights = {1.0, 5.0, 2.0, 8.0};
  CoverageEngine engine(weights);
  const std::vector<CoverRange> cover = {{0, 3, 16.0}};
  std::vector<size_t> out;
  // Accept only positions 1 and 3: law must be 5:8.
  engine.SampleWithRejection(
      cover, 150000, [](size_t p) { return p == 1 || p == 3; }, &rng, &out);
  size_t ones = 0;
  for (size_t p : out) ones += (p == 1);
  EXPECT_NEAR(static_cast<double>(ones) / out.size(), 5.0 / 13.0, 0.01);
}

TEST(CoverWeightTest, Sums) {
  const std::vector<CoverRange> cover = {{0, 1, 2.5}, {4, 9, 7.5}};
  EXPECT_DOUBLE_EQ(CoverWeight(cover), 10.0);
}

}  // namespace
}  // namespace iqs
