// Tests for the external-memory substrate: block device accounting,
// EmArray readers/writers, and external merge sort (paper Section 8).

#include <algorithm>
#include <vector>

#include "gtest/gtest.h"
#include "iqs/em/block_device.h"
#include "iqs/em/em_array.h"
#include "iqs/em/em_sort.h"
#include "iqs/util/rng.h"

namespace iqs::em {
namespace {

TEST(BlockDeviceTest, CountsEveryReadAndWrite) {
  BlockDevice device(8);
  const size_t a = device.AllocateBlock();
  const size_t b = device.AllocateBlock();
  std::vector<uint64_t> buffer(8, 42);
  device.Write(a, buffer);
  device.Write(b, buffer);
  device.Read(a, buffer);
  EXPECT_EQ(device.writes(), 2u);
  EXPECT_EQ(device.reads(), 1u);
  EXPECT_EQ(device.total_ios(), 3u);
  device.ResetCounters();
  EXPECT_EQ(device.total_ios(), 0u);
}

TEST(BlockDeviceTest, DataRoundTrips) {
  BlockDevice device(4);
  const size_t id = device.AllocateBlock();
  const std::vector<uint64_t> in = {1, 2, 3, 4};
  device.Write(id, in);
  std::vector<uint64_t> out(4, 0);
  device.Read(id, out);
  EXPECT_EQ(in, out);
}

TEST(EmArrayTest, WriterReaderRoundTrip) {
  BlockDevice device(8);
  EmArray array(&device, 1);
  EmWriter writer(&array);
  for (uint64_t i = 0; i < 100; ++i) writer.Append1(i * 3);
  writer.Finish();
  EXPECT_EQ(array.size(), 100u);
  EXPECT_EQ(array.num_blocks(), 13u);  // ceil(100/8)

  EmReader reader(&array, 0, 100);
  for (uint64_t i = 0; i < 100; ++i) EXPECT_EQ(reader.Next1(), i * 3);
  EXPECT_FALSE(reader.HasNext());
}

TEST(EmArrayTest, SequentialReadCostsOneIoPerBlock) {
  BlockDevice device(16);
  EmArray array(&device, 1);
  EmWriter writer(&array);
  for (uint64_t i = 0; i < 160; ++i) writer.Append1(i);
  writer.Finish();
  device.ResetCounters();
  EmReader reader(&array, 0, 160);
  while (reader.HasNext()) reader.Next1();
  EXPECT_EQ(device.reads(), 10u);  // 160 / 16
}

TEST(EmArrayTest, TwoWordRecords) {
  BlockDevice device(8);
  EmArray array(&device, 2);
  EXPECT_EQ(array.records_per_block(), 4u);
  EmWriter writer(&array);
  for (uint64_t i = 0; i < 10; ++i) writer.Append2(i, 100 + i);
  writer.Finish();
  EmReader reader(&array, 3, 4);
  uint64_t record[2];
  for (uint64_t i = 3; i < 7; ++i) {
    reader.Next(record);
    EXPECT_EQ(record[0], i);
    EXPECT_EQ(record[1], 100 + i);
  }
}

TEST(EmArrayTest, RandomRecordAccess) {
  BlockDevice device(8);
  EmArray array(&device, 1);
  EmWriter writer(&array);
  for (uint64_t i = 0; i < 50; ++i) writer.Append1(i * i);
  writer.Finish();
  device.ResetCounters();
  uint64_t value = 0;
  array.ReadRecord(33, &value);
  EXPECT_EQ(value, 33u * 33u);
  EXPECT_EQ(device.reads(), 1u);
}

class EmSortTest : public ::testing::TestWithParam<std::pair<size_t, size_t>> {
};

TEST_P(EmSortTest, SortsCorrectly) {
  const auto [n, memory_blocks] = GetParam();
  const size_t kB = 16;
  BlockDevice device(kB);
  Rng rng(1);
  EmArray input(&device, 1);
  std::vector<uint64_t> oracle;
  {
    EmWriter writer(&input);
    for (size_t i = 0; i < n; ++i) {
      const uint64_t v = rng.Next64() % 100000;
      writer.Append1(v);
      oracle.push_back(v);
    }
    writer.Finish();
  }
  std::sort(oracle.begin(), oracle.end());
  EmArray sorted = ExternalSort(input, memory_blocks * kB);
  ASSERT_EQ(sorted.size(), n);
  EmReader reader(&sorted, 0, n);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(reader.Next1(), oracle[i]) << "at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, EmSortTest,
    ::testing::Values(std::pair<size_t, size_t>{0, 4},
                      std::pair<size_t, size_t>{1, 4},
                      std::pair<size_t, size_t>{100, 2},
                      std::pair<size_t, size_t>{1000, 4},
                      std::pair<size_t, size_t>{5000, 3},
                      std::pair<size_t, size_t>{5000, 64}));

TEST(EmSortTest, SortsPairsByFirstWordKeepingPayload) {
  const size_t kB = 8;
  BlockDevice device(kB);
  Rng rng(2);
  EmArray input(&device, 2);
  {
    EmWriter writer(&input);
    for (uint64_t i = 0; i < 500; ++i) {
      const uint64_t key = rng.Next64() % 1000;
      writer.Append2(key, key * 7 + 1);  // payload derived from key
    }
    writer.Finish();
  }
  EmArray sorted = ExternalSort(input, 4 * kB);
  EmReader reader(&sorted, 0, 500);
  uint64_t prev = 0;
  uint64_t record[2];
  for (size_t i = 0; i < 500; ++i) {
    reader.Next(record);
    EXPECT_GE(record[0], prev);
    EXPECT_EQ(record[1], record[0] * 7 + 1) << "payload detached from key";
    prev = record[0];
  }
}

TEST(EmSortTest, IoCountScalesLinearlyWithPasses) {
  // With M/B = 17-way merge and few runs, the sort is two passes (run
  // formation + one merge): I/O ~= 4 * n/B.
  const size_t kB = 64;
  BlockDevice device(kB);
  Rng rng(3);
  const size_t n = 1 << 14;
  EmArray input(&device, 1);
  {
    EmWriter writer(&input);
    for (size_t i = 0; i < n; ++i) writer.Append1(rng.Next64());
    writer.Finish();
  }
  device.ResetCounters();
  ExternalSort(input, 16 * kB);
  const uint64_t blocks = n / kB;
  // runs of 16 blocks -> 16 runs; fan-in 15 -> 2 merge passes worst case.
  EXPECT_LE(device.total_ios(), 7 * blocks);
  EXPECT_GE(device.total_ios(), 3 * blocks);
}

}  // namespace
}  // namespace iqs::em
