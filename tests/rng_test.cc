#include "iqs/util/rng.h"

#include <cstdint>
#include <vector>

#include "gtest/gtest.h"
#include "test_util.h"

namespace iqs {
namespace {

TEST(RngTest, DeterministicUnderSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next64() == b.Next64());
  EXPECT_LT(same, 3);
}

TEST(RngTest, ZeroSeedWorks) {
  Rng rng(0);
  uint64_t x = 0;
  for (int i = 0; i < 16; ++i) x |= rng.Next64();
  EXPECT_NE(x, 0u);
}

TEST(RngTest, BelowStaysInBounds) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, (1ull << 40)}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.Below(bound), bound);
  }
}

TEST(RngTest, BelowIsUniform) {
  Rng rng(11);
  constexpr size_t kBound = 17;
  std::vector<uint64_t> counts(kBound, 0);
  for (int i = 0; i < 170000; ++i) ++counts[rng.Below(kBound)];
  testing::ExpectDistributionClose(
      counts, std::vector<double>(kBound, 1.0 / kBound));
}

TEST(RngTest, UniformCoversInclusiveRange) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.Uniform(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInHalfOpenUnitInterval) {
  Rng rng(5);
  double min = 1.0;
  double max = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    min = std::min(min, d);
    max = std::max(max, d);
  }
  EXPECT_LT(min, 0.001);
  EXPECT_GT(max, 0.999);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(9);
  const double p = 0.3;
  int heads = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) heads += rng.Bernoulli(p);
  EXPECT_NEAR(static_cast<double>(heads) / trials, p, 0.01);
}

TEST(RngTest, SplitProducesDistinctStream) {
  Rng parent(13);
  Rng child = parent.Split();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (parent.Next64() == child.Next64());
  EXPECT_LT(same, 3);
}

TEST(RngTest, FillDoublesMatchesNextDoubleStream) {
  // The block path must consume the same xoshiro stream as per-call draws:
  // same seed, same values, in order.
  Rng block_rng(21);
  Rng scalar_rng(21);
  std::vector<double> block(1000);
  block_rng.FillDoubles(block);
  for (double d : block) EXPECT_EQ(d, scalar_rng.NextDouble());
  // State advanced identically: streams stay in lockstep afterwards.
  EXPECT_EQ(block_rng.Next64(), scalar_rng.Next64());
}

TEST(RngTest, FillDoublesEmptySpanIsNoop) {
  Rng rng(22);
  Rng untouched(22);
  rng.FillDoubles({});
  EXPECT_EQ(rng.Next64(), untouched.Next64());
}

TEST(RngTest, FillBelowStaysInBoundsAndUniform) {
  Rng rng(23);
  constexpr size_t kBound = 23;
  std::vector<uint64_t> buf(230000);
  rng.FillBelow(kBound, buf);
  std::vector<uint64_t> counts(kBound, 0);
  for (uint64_t v : buf) {
    ASSERT_LT(v, kBound);
    ++counts[v];
  }
  testing::ExpectDistributionClose(
      counts, std::vector<double>(kBound, 1.0 / kBound));
}

TEST(RngTest, FillBelowExercisesRejectionBound) {
  // bound = 2^63 + 1 gives rejection probability just under 1/2, so the
  // patch-up path runs many times in 4096 draws.
  Rng rng(24);
  const uint64_t bound = (1ull << 63) + 1;
  std::vector<uint64_t> buf(4096);
  rng.FillBelow(bound, buf);
  for (uint64_t v : buf) EXPECT_LT(v, bound);
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~uint64_t{0});
  Rng rng(1);
  EXPECT_GE(rng(), Rng::min());
}

}  // namespace
}  // namespace iqs
