#include "iqs/util/rng.h"

#include <cmath>
#include <cstdint>
#include <vector>

#include "gtest/gtest.h"
#include "iqs/simd/dispatch.h"
#include "iqs/util/stats.h"
#include "test_util.h"

namespace iqs {
namespace {

TEST(RngTest, DeterministicUnderSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next64() == b.Next64());
  EXPECT_LT(same, 3);
}

TEST(RngTest, ZeroSeedWorks) {
  Rng rng(0);
  uint64_t x = 0;
  for (int i = 0; i < 16; ++i) x |= rng.Next64();
  EXPECT_NE(x, 0u);
}

TEST(RngTest, BelowStaysInBounds) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, (1ull << 40)}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.Below(bound), bound);
  }
}

TEST(RngTest, BelowIsUniform) {
  Rng rng(11);
  constexpr size_t kBound = 17;
  std::vector<uint64_t> counts(kBound, 0);
  for (int i = 0; i < 170000; ++i) ++counts[rng.Below(kBound)];
  testing::ExpectDistributionClose(
      counts, std::vector<double>(kBound, 1.0 / kBound));
}

TEST(RngTest, UniformCoversInclusiveRange) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.Uniform(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInHalfOpenUnitInterval) {
  Rng rng(5);
  double min = 1.0;
  double max = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    min = std::min(min, d);
    max = std::max(max, d);
  }
  EXPECT_LT(min, 0.001);
  EXPECT_GT(max, 0.999);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(9);
  const double p = 0.3;
  int heads = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) heads += rng.Bernoulli(p);
  EXPECT_NEAR(static_cast<double>(heads) / trials, p, 0.01);
}

TEST(RngTest, SplitProducesDistinctStream) {
  Rng parent(13);
  Rng child = parent.Split();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (parent.Next64() == child.Next64());
  EXPECT_LT(same, 3);
}

TEST(RngTest, FillDoublesMatchesNextDoubleStream) {
  // Under the SCALAR backend the block path must consume the same xoshiro
  // stream as per-call draws: same seed, same values, in order. This is
  // the bit-stability anchor of the determinism contract (simd/dispatch.h)
  // — SIMD backends are only distribution-equivalent, so pin scalar here.
  simd::ForceBackend(simd::Backend::kScalar);
  Rng block_rng(21);
  Rng scalar_rng(21);
  std::vector<double> block(1000);
  block_rng.FillDoubles(block);
  for (double d : block) EXPECT_EQ(d, scalar_rng.NextDouble());
  // State advanced identically: streams stay in lockstep afterwards.
  EXPECT_EQ(block_rng.Next64(), scalar_rng.Next64());
  simd::ClearForcedBackend();
}

TEST(RngTest, FillDoublesEmptySpanIsNoop) {
  Rng rng(22);
  Rng untouched(22);
  rng.FillDoubles({});
  EXPECT_EQ(rng.Next64(), untouched.Next64());
}

TEST(RngTest, FillBelowStaysInBoundsAndUniform) {
  Rng rng(23);
  constexpr size_t kBound = 23;
  std::vector<uint64_t> buf(230000);
  rng.FillBelow(kBound, buf);
  std::vector<uint64_t> counts(kBound, 0);
  for (uint64_t v : buf) {
    ASSERT_LT(v, kBound);
    ++counts[v];
  }
  testing::ExpectDistributionClose(
      counts, std::vector<double>(kBound, 1.0 / kBound));
}

TEST(RngTest, FillBelowExercisesRejectionBound) {
  // bound = 2^63 + 1 gives rejection probability just under 1/2, so the
  // patch-up path runs many times in 4096 draws.
  Rng rng(24);
  const uint64_t bound = (1ull << 63) + 1;
  std::vector<uint64_t> buf(4096);
  rng.FillBelow(bound, buf);
  for (uint64_t v : buf) EXPECT_LT(v, bound);
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~uint64_t{0});
  Rng rng(1);
  EXPECT_GE(rng(), Rng::min());
}

TEST(RngForkStreamTest, PureInStateAndStreamId) {
  // Forking the same id twice from the same state yields identical
  // generators, and forking never advances the parent.
  Rng parent(99);
  parent.Next64();  // some arbitrary state, not just the seed
  Rng probe = parent;

  Rng a = parent.ForkStream(7);
  Rng b = parent.ForkStream(7);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(a.Next64(), b.Next64());

  for (int i = 0; i < 64; ++i) EXPECT_EQ(parent.Next64(), probe.Next64());
}

TEST(RngForkStreamTest, DistinctIdsDiverge) {
  Rng parent(5);
  Rng a = parent.ForkStream(0);
  Rng b = parent.ForkStream(1);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next64() == b.Next64());
  EXPECT_LT(same, 3);
}

TEST(RngForkStreamTest, DistinctParentStatesDiverge) {
  Rng p1(5);
  Rng p2(5);
  p2.Next64();  // one step apart
  Rng a = p1.ForkStream(0);
  Rng b = p2.ForkStream(0);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next64() == b.Next64());
  EXPECT_LT(same, 3);
}

TEST(RngForkStreamTest, SubstreamsAreUniform) {
  // Pool one draw from each of many substreams (the parallel-serving
  // consumption pattern) and chi-square the pooled empirical law.
  Rng parent(123);
  constexpr size_t kBound = 17;
  constexpr size_t kStreams = 170000;
  std::vector<uint64_t> counts(kBound, 0);
  for (size_t stream = 0; stream < kStreams; ++stream) {
    Rng child = parent.ForkStream(stream);
    ++counts[child.Below(kBound)];
  }
  testing::ExpectDistributionClose(
      counts, std::vector<double>(kBound, 1.0 / kBound));
}

TEST(RngForkStreamTest, WithinSubstreamUniform) {
  // A single substream must itself be a healthy generator.
  Rng parent(321);
  Rng child = parent.ForkStream(42);
  constexpr size_t kBound = 17;
  std::vector<uint64_t> counts(kBound, 0);
  for (int i = 0; i < 170000; ++i) ++counts[child.Below(kBound)];
  testing::ExpectDistributionClose(
      counts, std::vector<double>(kBound, 1.0 / kBound));
}

TEST(RngForkStreamTest, AdjacentStreamsUncorrelated) {
  // Lockstep draws from adjacent stream ids (the worst case for a weak
  // id mix) should show no linear correlation.
  Rng parent(777);
  Rng a = parent.ForkStream(1000);
  Rng b = parent.ForkStream(1001);
  constexpr size_t kDraws = 100000;
  std::vector<double> xs(kDraws);
  std::vector<double> ys(kDraws);
  for (size_t i = 0; i < kDraws; ++i) {
    xs[i] = a.NextDouble();
    ys[i] = b.NextDouble();
  }
  // |r| ~ N(0, 1/sqrt(n)) under independence; 5 sigma ≈ 0.016.
  EXPECT_LT(std::abs(PearsonCorrelation(xs, ys)), 5.0 / std::sqrt(kDraws));
}

TEST(RngForkStreamTest, ChildDisagreesWithParentSequence) {
  // The long-jump pushes the child far from the parent's own sequence:
  // lockstep outputs must not collide beyond chance.
  Rng parent(2024);
  Rng child = parent.ForkStream(0);
  Rng parent_copy = parent;
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (child.Next64() == parent_copy.Next64());
  EXPECT_LT(same, 3);
}

TEST(RngLongJumpTest, DeterministicAndDiverges) {
  Rng a(9);
  Rng b(9);
  a.LongJump();
  b.LongJump();
  EXPECT_EQ(a.Next64(), b.Next64());

  Rng c(9);
  int same = 0;
  Rng d(9);
  d.LongJump();
  for (int i = 0; i < 100; ++i) same += (c.Next64() == d.Next64());
  EXPECT_LT(same, 3);
}

}  // namespace
}  // namespace iqs
