#include "iqs/range/static_bst.h"

#include <cmath>
#include <set>
#include <vector>

#include "gtest/gtest.h"
#include "iqs/util/rng.h"
#include "test_util.h"

namespace iqs {
namespace {

TEST(StaticBstTest, StructureInvariants) {
  const std::vector<double> weights(13, 1.0);
  StaticBst tree(weights);
  EXPECT_EQ(tree.num_leaves(), 13u);
  EXPECT_EQ(tree.num_nodes(), 25u);  // 2n - 1
  // Every internal node's range is the union of its children's ranges and
  // its weight is their sum.
  for (StaticBst::NodeId u = 0; u < tree.num_nodes(); ++u) {
    if (tree.IsLeaf(u)) {
      EXPECT_EQ(tree.RangeLo(u), tree.RangeHi(u));
      continue;
    }
    const auto left = tree.LeftChild(u);
    const auto right = tree.RightChild(u);
    EXPECT_EQ(tree.RangeLo(u), tree.RangeLo(left));
    EXPECT_EQ(tree.RangeHi(u), tree.RangeHi(right));
    EXPECT_EQ(tree.RangeHi(left) + 1, tree.RangeLo(right));
    EXPECT_NEAR(tree.NodeWeight(u),
                tree.NodeWeight(left) + tree.NodeWeight(right), 1e-12);
  }
}

TEST(StaticBstTest, SingleLeaf) {
  StaticBst tree(std::vector<double>{2.0});
  EXPECT_EQ(tree.num_nodes(), 1u);
  EXPECT_TRUE(tree.IsLeaf(tree.root()));
  EXPECT_EQ(tree.Height(), 0u);
}

TEST(StaticBstTest, HeightIsLogarithmic) {
  for (size_t n : {2, 3, 15, 16, 17, 1000, 4096}) {
    StaticBst tree(std::vector<double>(n, 1.0));
    EXPECT_LE(tree.Height(),
              static_cast<size_t>(std::ceil(std::log2(n))) + 1)
        << "n=" << n;
  }
}

TEST(StaticBstTest, CanonicalCoverIsExactPartition) {
  Rng rng(1);
  const size_t n = 200;
  StaticBst tree(std::vector<double>(n, 1.0));
  for (int trial = 0; trial < 300; ++trial) {
    size_t a = rng.Below(n);
    size_t b = rng.Below(n);
    if (a > b) std::swap(a, b);
    std::vector<StaticBst::NodeId> cover;
    tree.CanonicalCover(a, b, &cover);
    // Subtrees disjoint and their leaf ranges tile [a, b] exactly.
    std::set<size_t> covered;
    for (StaticBst::NodeId u : cover) {
      for (size_t p = tree.RangeLo(u); p <= tree.RangeHi(u); ++p) {
        EXPECT_TRUE(covered.insert(p).second) << "overlapping cover";
      }
    }
    EXPECT_EQ(covered.size(), b - a + 1);
    EXPECT_EQ(*covered.begin(), a);
    EXPECT_EQ(*covered.rbegin(), b);
  }
}

TEST(StaticBstTest, CanonicalCoverIsLogarithmicallySmall) {
  const size_t n = 1 << 16;
  StaticBst tree(std::vector<double>(n, 1.0));
  Rng rng(2);
  for (int trial = 0; trial < 100; ++trial) {
    size_t a = rng.Below(n);
    size_t b = rng.Below(n);
    if (a > b) std::swap(a, b);
    std::vector<StaticBst::NodeId> cover;
    tree.CanonicalCover(a, b, &cover);
    EXPECT_LE(cover.size(), 2 * 16u) << "[" << a << "," << b << "]";
  }
}

TEST(StaticBstTest, CoverOfFullRangeIsRoot) {
  StaticBst tree(std::vector<double>(64, 1.0));
  std::vector<StaticBst::NodeId> cover;
  tree.CanonicalCover(0, 63, &cover);
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0], tree.root());
}

TEST(StaticBstTest, CoverOrderedLeftToRight) {
  StaticBst tree(std::vector<double>(100, 1.0));
  std::vector<StaticBst::NodeId> cover;
  tree.CanonicalCover(7, 93, &cover);
  for (size_t i = 1; i < cover.size(); ++i) {
    EXPECT_LT(tree.RangeHi(cover[i - 1]), tree.RangeLo(cover[i]));
  }
}

TEST(StaticBstTest, SampleLeafMatchesSubtreeWeights) {
  Rng rng(3);
  const std::vector<double> weights = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0};
  StaticBst tree(weights);
  std::vector<size_t> samples;
  for (int i = 0; i < 200000; ++i) {
    samples.push_back(tree.SampleLeaf(tree.root(), &rng));
  }
  testing::ExpectSamplesMatchWeights(samples, weights);
}

TEST(StaticBstTest, SampleLeafFromInternalNodeRestrictsToSubtree) {
  Rng rng(4);
  const std::vector<double> weights = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  StaticBst tree(weights);
  // Pick the left child of the root: positions [0, 2].
  const StaticBst::NodeId left = tree.LeftChild(tree.root());
  std::vector<size_t> samples;
  for (int i = 0; i < 120000; ++i) {
    const size_t p = tree.SampleLeaf(left, &rng);
    ASSERT_GE(p, tree.RangeLo(left));
    ASSERT_LE(p, tree.RangeHi(left));
    samples.push_back(p);
  }
  testing::ExpectSamplesMatchWeights(
      samples, {1.0, 2.0, 3.0, 0.0, 0.0, 0.0});
}

TEST(StaticBstTest, LeafForPositionRoundTrips) {
  StaticBst tree(std::vector<double>(37, 1.0));
  for (size_t p = 0; p < 37; ++p) {
    const StaticBst::NodeId leaf = tree.LeafForPosition(p);
    EXPECT_TRUE(tree.IsLeaf(leaf));
    EXPECT_EQ(tree.LeafPosition(leaf), p);
  }
}

}  // namespace
}  // namespace iqs
