#include "iqs/sampling/dependent_range_sampler.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "gtest/gtest.h"
#include "iqs/util/distributions.h"
#include "iqs/util/stats.h"
#include "test_util.h"

namespace iqs {
namespace {

TEST(DependentRangeSamplerTest, WorSetIsWithinRangeAndDistinct) {
  Rng build_rng(1);
  Rng rng(2);
  const auto keys = UniformKeys(200, &rng);
  DependentRangeSampler sampler(keys, &build_rng);
  for (int trial = 0; trial < 100; ++trial) {
    size_t a = rng.Below(200);
    size_t b = rng.Below(200);
    if (a > b) std::swap(a, b);
    std::vector<size_t> out;
    sampler.QueryWor(a, b, 10, &out);
    EXPECT_EQ(out.size(), std::min<size_t>(10, b - a + 1));
    std::set<size_t> distinct(out.begin(), out.end());
    EXPECT_EQ(distinct.size(), out.size());
    for (size_t p : out) {
      EXPECT_GE(p, a);
      EXPECT_LE(p, b);
    }
  }
}

TEST(DependentRangeSamplerTest, RepeatedQueriesReturnSameSet) {
  // The defining *failure* of dependent sampling: identical queries give
  // identical WoR sets.
  Rng build_rng(3);
  Rng rng(4);
  const auto keys = UniformKeys(500, &rng);
  DependentRangeSampler sampler(keys, &build_rng);
  std::vector<size_t> first;
  sampler.QueryWor(50, 400, 20, &first);
  for (int repeat = 0; repeat < 5; ++repeat) {
    std::vector<size_t> again;
    sampler.QueryWor(50, 400, 20, &again);
    EXPECT_EQ(first, again);
  }
}

TEST(DependentRangeSamplerTest, SingleQueryIsUniformAcrossBuilds) {
  // For ONE query the WoR set is a perfectly uniform sample — the
  // randomness lives in the build permutation. Check inclusion
  // frequencies across many independently built structures.
  Rng rng(5);
  const size_t n = 30;
  const auto keys = UniformKeys(n, &rng);
  std::vector<uint64_t> inclusion(n, 0);
  Rng seeder(6);
  for (int build = 0; build < 20000; ++build) {
    Rng build_rng(seeder.Next64());
    DependentRangeSampler sampler(keys, &build_rng);
    std::vector<size_t> out;
    sampler.QueryWor(5, 24, 4, &out);
    for (size_t p : out) ++inclusion[p];
  }
  std::vector<uint64_t> in_range(inclusion.begin() + 5,
                                 inclusion.begin() + 25);
  testing::ExpectDistributionClose(in_range,
                                   std::vector<double>(20, 1.0 / 20));
}

TEST(DependentRangeSamplerTest, WorSetIsLowestRanksOracle) {
  // The returned set must be exactly the s elements of minimum rank —
  // check against brute force on a small input.
  Rng build_rng(7);
  Rng rng(8);
  const auto keys = UniformKeys(40, &rng);
  DependentRangeSampler sampler(keys, &build_rng);
  // Recover ranks through s = range-size queries: QueryWor with s equal to
  // the range size must return every position.
  std::vector<size_t> all;
  sampler.QueryWor(0, 39, 40, &all);
  std::set<size_t> everything(all.begin(), all.end());
  EXPECT_EQ(everything.size(), 40u);
}

TEST(DependentRangeSamplerTest, WrQueryHasUniformMarginal) {
  Rng build_rng(9);
  Rng rng(10);
  const size_t n = 50;
  const auto keys = UniformKeys(n, &rng);
  DependentRangeSampler sampler(keys, &build_rng);
  // Marginal over many *different* structures would be uniform; within one
  // structure a single big WR query over the full range is uniform too
  // (all n elements are in the WoR support when s is large).
  std::vector<size_t> out;
  sampler.QueryPositions(0, n - 1, 200000, &rng, &out);
  std::vector<uint64_t> counts(n, 0);
  for (size_t p : out) ++counts[p];
  testing::ExpectDistributionClose(counts, std::vector<double>(n, 1.0 / n));
}

TEST(DependentRangeSamplerTest, CorrelationAcrossRepeatsIsHigh) {
  // Positive control for E11: with s = 1 the repeated query returns the
  // same element every time, the extreme opposite of independence.
  Rng build_rng(11);
  Rng rng(12);
  const auto keys = UniformKeys(100, &rng);
  DependentRangeSampler sampler(keys, &build_rng);
  std::vector<size_t> a;
  std::vector<size_t> b;
  sampler.QueryWor(10, 90, 1, &a);
  sampler.QueryWor(10, 90, 1, &b);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace iqs
