#include "iqs/em/sample_pool.h"

#include <cmath>
#include <vector>

#include "gtest/gtest.h"
#include "iqs/em/em_array.h"
#include "test_util.h"

namespace iqs::em {
namespace {

struct Fixture {
  Fixture(size_t n, size_t block_words)
      : device(block_words), data(&device, 1) {
    EmWriter writer(&data);
    for (uint64_t i = 0; i < n; ++i) writer.Append1(i);
    writer.Finish();
  }

  BlockDevice device;
  EmArray data;
};

TEST(SamplePoolTest, SamplesAreUniformOverData) {
  Fixture f(64, 8);
  Rng rng(1);
  SamplePool pool(&f.data, 0, 64, 8 * 8, &rng);
  std::vector<uint64_t> out;
  pool.Query(128000, &rng, &out);  // forces many rebuilds
  std::vector<uint64_t> counts(64, 0);
  for (uint64_t v : out) {
    ASSERT_LT(v, 64u);
    ++counts[v];
  }
  iqs::testing::ExpectDistributionClose(counts,
                                        std::vector<double>(64, 1.0 / 64));
}

TEST(SamplePoolTest, SubrangePoolStaysInRange) {
  Fixture f(100, 8);
  Rng rng(2);
  SamplePool pool(&f.data, 30, 40, 8 * 8, &rng);
  std::vector<uint64_t> out;
  pool.Query(40000, &rng, &out);
  std::vector<uint64_t> counts(40, 0);
  for (uint64_t v : out) {
    ASSERT_GE(v, 30u);
    ASSERT_LT(v, 70u);
    ++counts[v - 30];
  }
  iqs::testing::ExpectDistributionClose(counts,
                                        std::vector<double>(40, 1.0 / 40));
}

TEST(SamplePoolTest, QueryIoIsBlockGranular) {
  const size_t kB = 64;
  Fixture f(1 << 14, kB);
  Rng rng(3);
  SamplePool pool(&f.data, 0, 1 << 14, 16 * kB, &rng);
  // A query of s consecutive clean samples costs ~ s/B reads.
  f.device.ResetCounters();
  std::vector<uint64_t> out;
  pool.Query(1024, &rng, &out);
  EXPECT_LE(f.device.total_ios(), 1024 / kB + 2);
  EXPECT_EQ(pool.rebuilds(), 1u);  // only the constructor build
}

TEST(SamplePoolTest, RebuildTriggersWhenPoolExhausted) {
  Fixture f(256, 8);
  Rng rng(4);
  SamplePool pool(&f.data, 0, 256, 8 * 8, &rng);
  std::vector<uint64_t> out;
  pool.Query(256, &rng, &out);
  EXPECT_EQ(pool.rebuilds(), 1u);
  pool.Query(1, &rng, &out);
  EXPECT_EQ(pool.rebuilds(), 2u);
}

TEST(SamplePoolTest, AmortizedIoBeatsNaiveForLargeS) {
  const size_t kB = 64;
  const size_t n = 1 << 15;
  Fixture f(n, kB);
  Rng rng(5);
  SamplePool pool(&f.data, 0, n, 16 * kB, &rng);

  const size_t s = n;  // consume one full pool + trigger one rebuild
  f.device.ResetCounters();
  std::vector<uint64_t> out;
  pool.Query(s, &rng, &out);
  const uint64_t pool_ios = f.device.total_ios();

  f.device.ResetCounters();
  out.clear();
  SamplePool::NaiveQuery(f.data, 0, n, s, &rng, &out);
  const uint64_t naive_ios = f.device.total_ios();

  EXPECT_EQ(naive_ios, s);
  // Pool: ~ s/B (reads) + one rebuild ~ c * (n/B) log(n/B) — far below s.
  EXPECT_LT(pool_ios, naive_ios / 2);
}

TEST(SamplePoolTest, SuccessiveQueriesAreIndependentDraws) {
  // Consecutive small queries consume disjoint pool entries, which are
  // i.i.d. — check the lag-1 correlation over query outputs is ~0.
  Fixture f(128, 8);
  Rng rng(6);
  SamplePool pool(&f.data, 0, 128, 8 * 8, &rng);
  std::vector<double> series;
  for (int q = 0; q < 20000; ++q) {
    std::vector<uint64_t> out;
    pool.Query(1, &rng, &out);
    series.push_back(static_cast<double>(out[0]));
  }
  std::vector<double> lagged(series.begin() + 1, series.end());
  series.pop_back();
  EXPECT_LT(std::abs(PearsonCorrelation(series, lagged)), 0.03);
}

TEST(SamplePoolNaiveTest, UniformToo) {
  Fixture f(32, 8);
  Rng rng(7);
  std::vector<uint64_t> out;
  SamplePool::NaiveQuery(f.data, 0, 32, 64000, &rng, &out);
  std::vector<uint64_t> counts(32, 0);
  for (uint64_t v : out) ++counts[v];
  iqs::testing::ExpectDistributionClose(counts,
                                        std::vector<double>(32, 1.0 / 32));
}

}  // namespace
}  // namespace iqs::em
