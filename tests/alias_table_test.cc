#include "iqs/alias/alias_table.h"

#include <vector>

#include "gtest/gtest.h"
#include "iqs/util/rng.h"
#include "test_util.h"

namespace iqs {
namespace {

TEST(AliasTableTest, SingleElement) {
  Rng rng(1);
  AliasTable table(std::vector<double>{5.0});
  for (int i = 0; i < 100; ++i) EXPECT_EQ(table.Sample(&rng), 0u);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_DOUBLE_EQ(table.total_weight(), 5.0);
}

TEST(AliasTableTest, EqualWeightsAreUniform) {
  Rng rng(2);
  constexpr size_t kN = 64;
  AliasTable table(std::vector<double>(kN, 1.0));
  std::vector<size_t> samples;
  table.SampleMany(kN * 2000, &rng, &samples);
  testing::ExpectSamplesMatchWeights(samples,
                                     std::vector<double>(kN, 1.0));
}

TEST(AliasTableTest, SkewedWeightsMatchDistribution) {
  Rng rng(3);
  const std::vector<double> weights = {1.0, 2.0, 4.0, 8.0, 16.0, 0.5};
  AliasTable table(weights);
  std::vector<size_t> samples;
  table.SampleMany(200000, &rng, &samples);
  testing::ExpectSamplesMatchWeights(samples, weights);
}

TEST(AliasTableTest, ZeroWeightNeverSampled) {
  Rng rng(4);
  const std::vector<double> weights = {0.0, 1.0, 0.0, 3.0, 0.0};
  AliasTable table(weights);
  std::vector<size_t> samples;
  table.SampleMany(50000, &rng, &samples);
  for (size_t v : samples) {
    EXPECT_TRUE(v == 1 || v == 3) << "sampled zero-weight element " << v;
  }
  testing::ExpectSamplesMatchWeights(samples, weights);
}

TEST(AliasTableTest, ExtremeWeightRatio) {
  Rng rng(5);
  const std::vector<double> weights = {1e-12, 1.0, 1e12};
  AliasTable table(weights);
  std::vector<size_t> samples;
  table.SampleMany(100000, &rng, &samples);
  // Element 2 dominates by 12 orders of magnitude.
  size_t dominant = 0;
  for (size_t v : samples) dominant += (v == 2);
  EXPECT_EQ(dominant, samples.size());
}

TEST(AliasTableTest, RebuildReplacesDistribution) {
  Rng rng(6);
  AliasTable table(std::vector<double>{1.0, 0.0});
  EXPECT_EQ(table.Sample(&rng), 0u);
  table.Build(std::vector<double>{0.0, 1.0});
  EXPECT_EQ(table.Sample(&rng), 1u);
}

TEST(AliasTableTest, LargeZipfBuild) {
  Rng rng(7);
  std::vector<double> weights(100000);
  for (size_t i = 0; i < weights.size(); ++i) {
    weights[i] = 1.0 / static_cast<double>(i + 1);
  }
  AliasTable table(weights);
  EXPECT_EQ(table.size(), weights.size());
  // Smoke the hot path and bounds.
  for (int i = 0; i < 10000; ++i) EXPECT_LT(table.Sample(&rng), weights.size());
}

TEST(AliasTableTest, MemoryIsLinear) {
  AliasTable small(std::vector<double>(1000, 1.0));
  AliasTable large(std::vector<double>(10000, 1.0));
  EXPECT_GE(large.MemoryBytes(), 9 * small.MemoryBytes());
  EXPECT_LE(large.MemoryBytes(), 11 * small.MemoryBytes() + 4096);
}

TEST(AliasTableTest, IndependentStreamsAgreeInLaw) {
  // Two tables over the same weights sampled with different seeds should
  // both pass the same distribution test (cross-check of determinism vs
  // law).
  const std::vector<double> weights = {3.0, 1.0, 2.0, 2.0};
  for (uint64_t seed : {10ull, 20ull, 30ull}) {
    Rng rng(seed);
    AliasTable table(weights);
    std::vector<size_t> samples;
    table.SampleMany(80000, &rng, &samples);
    testing::ExpectSamplesMatchWeights(samples, weights);
  }
}

}  // namespace
}  // namespace iqs
