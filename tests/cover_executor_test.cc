// Tests for the shared cover-sampling layer: CoverPlan bookkeeping,
// CoverExecutor::Split invariants (per-query multinomial budgets over the
// flat group arena), the ExecuteOverSampler lowering, and the FunctionRef
// shim used by CoverageEngine::SampleWithRejection.

#include <numeric>
#include <vector>

#include "gtest/gtest.h"
#include "iqs/cover/cover_executor.h"
#include "iqs/cover/cover_plan.h"
#include "iqs/cover/coverage_engine.h"
#include "iqs/range/aug_range_sampler.h"
#include "iqs/util/function_ref.h"
#include "iqs/util/rng.h"
#include "iqs/util/scratch_arena.h"
#include "test_util.h"

namespace iqs {
namespace {

TEST(CoverPlanTest, TracksQueriesGroupsAndBudgets) {
  CoverPlan plan;
  plan.BeginQuery(10);
  plan.AddGroup(0, 4, 2.0, 7);
  plan.AddGroup(10, 14, 3.0);
  plan.BeginQuery(5);  // zero-group query: contributes no samples
  plan.BeginQuery(3);
  plan.AddGroup(20, 20, 1.0);

  EXPECT_EQ(plan.num_queries(), 3u);
  EXPECT_EQ(plan.num_groups(), 3u);
  EXPECT_EQ(plan.budget(0), 10u);
  EXPECT_EQ(plan.budget(1), 5u);
  EXPECT_EQ(plan.budget(2), 3u);
  EXPECT_EQ(plan.GroupsFor(0).size(), 2u);
  EXPECT_EQ(plan.GroupsFor(1).size(), 0u);
  EXPECT_EQ(plan.GroupsFor(2).size(), 1u);
  EXPECT_EQ(plan.GroupsFor(0)[0].tag, 7u);
  EXPECT_EQ(plan.TotalSamples(), 13u);  // query 1 has no groups

  plan.Clear();
  EXPECT_EQ(plan.num_queries(), 0u);
  EXPECT_EQ(plan.num_groups(), 0u);
}

TEST(CoverExecutorTest, SplitRespectsPerQueryBudgets) {
  CoverPlan plan;
  plan.BeginQuery(100);
  plan.AddGroup(0, 9, 1.0);
  plan.AddGroup(10, 19, 3.0);
  plan.BeginQuery(7);  // no groups
  plan.BeginQuery(55);
  plan.AddGroup(20, 29, 2.0);
  plan.AddGroup(30, 39, 2.0);
  plan.AddGroup(40, 49, 2.0);

  Rng rng(11);
  ScratchArena arena;
  const CoverSplit split = CoverExecutor::Split(plan, &rng, &arena);

  ASSERT_EQ(split.counts.size(), plan.num_groups());
  ASSERT_EQ(split.offsets.size(), plan.num_groups() + 1);
  EXPECT_EQ(split.total, 155u);
  EXPECT_EQ(split.counts[0] + split.counts[1], 100u);
  EXPECT_EQ(split.counts[2] + split.counts[3] + split.counts[4], 55u);
  // Offsets are the prefix sums of counts.
  size_t acc = 0;
  for (size_t g = 0; g < split.counts.size(); ++g) {
    EXPECT_EQ(split.offsets[g], acc);
    acc += split.counts[g];
  }
  EXPECT_EQ(split.offsets[split.counts.size()], acc);
}

TEST(CoverExecutorTest, SplitBudgetsFollowGroupWeights) {
  // Over many rounds the multinomial split must put weight-proportional
  // counts on each group.
  CoverPlan plan;
  plan.BeginQuery(64);
  plan.AddGroup(0, 0, 1.0);
  plan.AddGroup(1, 1, 2.0);
  plan.AddGroup(2, 2, 5.0);

  Rng rng(12);
  ScratchArena arena;
  std::vector<size_t> samples;
  for (int round = 0; round < 4000; ++round) {
    arena.Reset();
    const CoverSplit split = CoverExecutor::Split(plan, &rng, &arena);
    for (size_t g = 0; g < 3; ++g) {
      for (uint32_t k = 0; k < split.counts[g]; ++k) samples.push_back(g);
    }
  }
  testing::ExpectSamplesMatchWeights(samples, {1.0, 2.0, 5.0});
}

TEST(CoverExecutorTest, ExecuteOverSamplerMatchesCoverLaw) {
  // Three disjoint groups over a weighted position space; draws must land
  // per-element proportional to weight restricted to the union.
  const size_t n = 60;
  std::vector<double> weights(n);
  for (size_t i = 0; i < n; ++i) weights[i] = 1.0 + (i % 7);
  const AugRangeSampler sampler(weights);

  CoverPlan plan;
  plan.BeginQuery(48);
  plan.AddGroup(0, 9, std::accumulate(&weights[0], &weights[10], 0.0));
  plan.AddGroup(20, 29, std::accumulate(&weights[20], &weights[30], 0.0));
  plan.AddGroup(50, 59, std::accumulate(&weights[50], &weights[60], 0.0));

  Rng rng(13);
  ScratchArena arena;
  std::vector<size_t> out;
  for (int round = 0; round < 3000; ++round) {
    arena.Reset();
    CoverExecutor::ExecuteOverSampler(plan, sampler, &rng, &arena,
                                      BatchOptions{}, &out);
  }
  std::vector<double> expected(n, 0.0);
  for (size_t i = 0; i < 10; ++i) expected[i] = weights[i];
  for (size_t i = 20; i < 30; ++i) expected[i] = weights[i];
  for (size_t i = 50; i < 60; ++i) expected[i] = weights[i];
  testing::ExpectSamplesMatchWeights(out, expected);
}

TEST(CoverageEngineTest, SampleBatchServesMultipleQueriesAtOnce) {
  const size_t n = 40;
  std::vector<double> weights(n, 1.0);
  const CoverageEngine engine(weights);

  CoverPlan plan;
  plan.BeginQuery(16);
  plan.AddGroup(0, 19, 20.0);
  plan.BeginQuery(0);  // zero budget
  plan.AddGroup(0, 39, 40.0);
  plan.BeginQuery(8);
  plan.AddGroup(30, 39, 10.0);

  Rng rng(14);
  ScratchArena arena;
  std::vector<size_t> out;
  engine.SampleBatch(plan, &rng, &arena, &out);
  ASSERT_EQ(out.size(), 24u);
  // Per-query slices are contiguous in plan order.
  for (size_t i = 0; i < 16; ++i) EXPECT_LE(out[i], 19u);
  for (size_t i = 16; i < 24; ++i) {
    EXPECT_GE(out[i], 30u);
    EXPECT_LE(out[i], 39u);
  }
}

TEST(FunctionRefTest, WrapsLambdasWithoutAllocation) {
  int calls = 0;
  auto counter = [&](size_t v) {
    ++calls;
    return v % 2 == 0;
  };
  FunctionRef<bool(size_t)> ref = counter;
  EXPECT_TRUE(ref(4));
  EXPECT_FALSE(ref(3));
  EXPECT_EQ(calls, 2);
  static_assert(sizeof(FunctionRef<bool(size_t)>) <= 2 * sizeof(void*));
}

TEST(CoverageEngineTest, RejectionPathDrawsConditionalLaw) {
  // Accept only even positions: the output law must be the weight
  // distribution conditioned on even positions, and each call must yield
  // exactly s samples.
  const size_t n = 50;
  std::vector<double> weights(n);
  for (size_t i = 0; i < n; ++i) weights[i] = 1.0 + (i % 3);
  const CoverageEngine engine(weights);
  const std::vector<CoverRange> cover = {{5, 24, 0.0}, {30, 44, 0.0}};
  std::vector<CoverRange> weighted_cover = cover;
  for (CoverRange& range : weighted_cover) {
    for (size_t i = range.lo; i <= range.hi; ++i) range.weight += weights[i];
  }

  Rng rng(15);
  ScratchArena arena;
  std::vector<size_t> out;
  const size_t s = 32;
  for (int round = 0; round < 2000; ++round) {
    const size_t before = out.size();
    arena.Reset();
    engine.SampleWithRejection(
        weighted_cover, s, [](size_t p) { return p % 2 == 0; }, &rng, &arena,
        &out);
    ASSERT_EQ(out.size(), before + s);
  }
  std::vector<double> expected(n, 0.0);
  for (const CoverRange& range : cover) {
    for (size_t i = range.lo; i <= range.hi; ++i) {
      if (i % 2 == 0) expected[i] = weights[i];
    }
  }
  testing::ExpectSamplesMatchWeights(out, expected);
}

}  // namespace
}  // namespace iqs
