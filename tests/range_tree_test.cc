#include "iqs/multidim/range_tree.h"

#include <map>
#include <vector>

#include "gtest/gtest.h"
#include "iqs/util/distributions.h"
#include "iqs/util/rng.h"
#include "test_util.h"

namespace iqs::multidim {
namespace {

std::vector<Point2> MakePoints(size_t n, Rng* rng) {
  std::vector<Point2> pts;
  const auto raw = iqs::Points2D(n, 0, rng);
  pts.reserve(n);
  for (const auto& [x, y] : raw) pts.push_back({x, y});
  return pts;
}

class RangeTreeLeafSizeTest : public ::testing::TestWithParam<size_t> {};

TEST_P(RangeTreeLeafSizeTest, SamplesMatchOracleAcrossQueries) {
  Rng rng(1);
  const auto pts = MakePoints(300, &rng);
  std::vector<double> weights(300);
  for (double& w : weights) w = 0.2 + rng.NextDouble();
  RangeTree2DSampler sampler(pts, weights, GetParam());

  for (int trial = 0; trial < 4; ++trial) {
    Rect q;
    q.x_lo = rng.NextDouble() * 0.5;
    q.x_hi = q.x_lo + 0.2 + rng.NextDouble() * 0.3;
    q.y_lo = rng.NextDouble() * 0.5;
    q.y_hi = q.y_lo + 0.2 + rng.NextDouble() * 0.3;

    std::map<std::pair<double, double>, size_t> index_of;
    std::vector<double> qualified_weights;
    for (size_t i = 0; i < pts.size(); ++i) {
      if (q.Contains(pts[i])) {
        index_of[{pts[i].x, pts[i].y}] = qualified_weights.size();
        qualified_weights.push_back(weights[i]);
      }
    }
    std::vector<Point2> out;
    const bool nonempty = sampler.QueryRect(q, 150000, &rng, &out);
    EXPECT_EQ(nonempty, !qualified_weights.empty());
    if (!nonempty) continue;
    std::vector<size_t> samples;
    for (const Point2& p : out) {
      auto it = index_of.find({p.x, p.y});
      ASSERT_NE(it, index_of.end()) << "sampled point outside rectangle";
      samples.push_back(it->second);
    }
    testing::ExpectSamplesMatchWeights(samples, qualified_weights);
  }
}

INSTANTIATE_TEST_SUITE_P(LeafSizes, RangeTreeLeafSizeTest,
                         ::testing::Values(1, 4, 16, 64));

TEST(RangeTreeTest, EmptyXRangeAndEmptyYRange) {
  Rng rng(2);
  const auto pts = MakePoints(50, &rng);
  RangeTree2DSampler sampler(pts, {});
  std::vector<Point2> out;
  EXPECT_FALSE(sampler.QueryRect({2.0, 3.0, 0.0, 1.0}, 5, &rng, &out));
  EXPECT_FALSE(sampler.QueryRect({0.0, 1.0, 2.0, 3.0}, 5, &rng, &out));
  EXPECT_TRUE(out.empty());
}

TEST(RangeTreeTest, FullRangeIsUniformOverAll) {
  Rng rng(3);
  const auto pts = MakePoints(64, &rng);
  RangeTree2DSampler sampler(pts, {});
  std::vector<Point2> out;
  ASSERT_TRUE(
      sampler.QueryRect({-1.0, 2.0, -1.0, 2.0}, 128000, &rng, &out));
  std::map<std::pair<double, double>, uint64_t> freq;
  for (const Point2& p : out) ++freq[{p.x, p.y}];
  ASSERT_EQ(freq.size(), 64u);
  std::vector<uint64_t> counts;
  for (const auto& [key, c] : freq) counts.push_back(c);
  testing::ExpectDistributionClose(counts,
                                   std::vector<double>(64, 1.0 / 64));
}

TEST(RangeTreeTest, DuplicateCoordinatesHandled) {
  Rng rng(4);
  // Grid data: many duplicate x and y values.
  std::vector<Point2> pts;
  for (int i = 0; i < 10; ++i) {
    for (int j = 0; j < 10; ++j) {
      pts.push_back({i * 0.1, j * 0.1});
    }
  }
  RangeTree2DSampler sampler(pts, {});
  std::vector<Point2> out;
  ASSERT_TRUE(sampler.QueryRect({0.15, 0.55, 0.15, 0.55}, 50000, &rng, &out));
  std::map<std::pair<double, double>, uint64_t> freq;
  for (const Point2& p : out) {
    ASSERT_GE(p.x, 0.15);
    ASSERT_LE(p.x, 0.55);
    ASSERT_GE(p.y, 0.15);
    ASSERT_LE(p.y, 0.55);
    ++freq[{p.x, p.y}];
  }
  EXPECT_EQ(freq.size(), 16u);  // 4x4 grid points inside
}

TEST(RangeTreeTest, SinglePoint) {
  Rng rng(5);
  const std::vector<Point2> pts = {{0.3, 0.7}};
  RangeTree2DSampler sampler(pts, {});
  std::vector<Point2> out;
  ASSERT_TRUE(sampler.QueryRect({0.0, 1.0, 0.0, 1.0}, 4, &rng, &out));
  ASSERT_EQ(out.size(), 4u);
  for (const Point2& p : out) EXPECT_EQ(p, pts[0]);
}

}  // namespace
}  // namespace iqs::multidim
