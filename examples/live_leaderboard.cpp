// Scenario 5 (paper Section 9, Direction 1 — dynamization): a live
// leaderboard that keeps sampling fairly while the data churns.
//
// A game service tracks player scores that change constantly. Product
// wants: "show me a random player from any score band, weighted by
// activity, right now" — an IQS query over a moving dataset. This demo
// exercises all three dynamization options in the library and shows the
// trade-offs the benches quantify:
//
//   * DynamicAlias        — whole-population weighted sampling, O(1);
//   * DynamicRangeSampler — score-band sampling with full insert/delete;
//   * LogarithmicRangeSampler — append-only history sampling, cheapest
//     per-sample queries.

#include <cstdio>
#include <map>
#include <vector>

#include "iqs/iqs.h"

int main() {
  iqs::Rng rng(99);

  // --- Whole-population sampling under churn: DynamicAlias.
  iqs::DynamicAlias population;
  std::vector<size_t> handles;
  for (int player = 0; player < 100000; ++player) {
    handles.push_back(population.Insert(1.0 + rng.NextDouble() * 9.0));
  }
  // Activity spikes / bans happen continuously...
  for (int event = 0; event < 20000; ++event) {
    const size_t handle = handles[rng.Below(handles.size())];
    if (rng.NextDouble() < 0.1) {
      population.SetWeight(handle, 100.0);  // gone viral
    } else {
      population.SetWeight(handle, 1.0 + rng.NextDouble() * 9.0);
    }
  }
  // ...and sampling stays O(1) and exact:
  std::map<size_t, int> hits;
  for (int i = 0; i < 5; ++i) ++hits[population.Sample(&rng)];
  std::printf("5 activity-weighted spotlight picks drawn from %zu live "
              "players\n",
              population.size());

  // --- Score-band sampling with deletes: the treap.
  iqs::DynamicRangeSampler by_score(&rng);
  for (int player = 0; player < 50000; ++player) {
    by_score.Insert(/*score=*/rng.NextDouble() * 3000.0,
                    /*activity=*/1.0 + rng.NextDouble());
  }
  // Sample 3 mid-league players (score 1000-2000), then churn and repeat.
  std::vector<double> picks;
  by_score.Query(1000.0, 2000.0, 3, &rng, &picks);
  std::printf("mid-league picks: %.1f %.1f %.1f (band weight %.0f)\n",
              picks[0], picks[1], picks[2],
              by_score.RangeWeight(1000.0, 2000.0));
  for (int churn = 0; churn < 10000; ++churn) {
    by_score.Insert(rng.NextDouble() * 3000.0, 1.0 + rng.NextDouble());
  }
  picks.clear();
  by_score.Query(1000.0, 2000.0, 3, &rng, &picks);
  std::printf("after 10k churn events, fresh picks: %.1f %.1f %.1f\n",
              picks[0], picks[1], picks[2]);

  // --- Append-only match history: the logarithmic method.
  iqs::LogarithmicRangeSampler history;
  double timestamp = 0.0;
  for (int match = 0; match < 200000; ++match) {
    timestamp += rng.NextDouble();
    history.Insert(timestamp, /*spectators=*/1.0 + rng.Below(1000));
  }
  std::printf("match history: %zu entries in %zu static components\n",
              history.size(), history.num_components());
  std::vector<double> replays;
  const double window_lo = timestamp * 0.5;
  const double window_hi = timestamp * 0.75;
  history.Query(window_lo, window_hi, 4, &rng, &replays);
  std::printf("4 spectator-weighted replays from the 3rd quarter of "
              "history:");
  for (double t : replays) std::printf(" t=%.1f", t);
  std::printf("\n");
  return 0;
}
