// Parallel batch serving: BatchOptions{num_threads} on BstRangeSampler.
//
// Serves one batch of range-sampling queries twice — sequentially, then in
// the deterministic parallel mode on a persistent thread pool — and prints
// the wall-clock for each. The parallel mode keys every query onto its own
// RNG substream (Rng::ForkStream), so its output is bit-identical for
// every thread count under a fixed seed; the demo checks that too.
//
//   cmake --build build && ./build/examples/parallel_batch_demo
//
// Note: the speedup is bounded by the machine — on a single-core box the
// parallel mode can only match the sequential path.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <thread>
#include <vector>

#include "iqs/range/bst_range_sampler.h"
#include "iqs/util/batch_options.h"
#include "iqs/util/distributions.h"
#include "iqs/util/rng.h"
#include "iqs/util/scratch_arena.h"
#include "iqs/util/thread_pool.h"

namespace {

double MeasureSeconds(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  // 1. Data + index: Theorem-2 BST sampler over Zipf-weighted keys.
  iqs::Rng rng(/*seed=*/2022);
  const size_t n = 1 << 20;
  const std::vector<double> keys = iqs::UniformKeys(n, &rng);
  const std::vector<double> weights = iqs::ZipfWeights(n, /*alpha=*/1.0, &rng);
  const iqs::BstRangeSampler sampler(keys, weights);

  // 2. A serving batch: 512 queries x 256 samples each.
  std::vector<iqs::BatchQuery> queries;
  for (size_t i = 0; i < 512; ++i) {
    const auto [lo, hi] = iqs::IntervalWithSelectivity(keys, n / 8, &rng);
    queries.push_back({lo, hi, 256});
  }

  // 3. Sequential baseline (BatchOptions{} == legacy single-thread path).
  iqs::ScratchArena arena;
  iqs::BatchResult sequential;
  iqs::Rng seq_rng(7);
  const double seq_secs = MeasureSeconds(
      [&] { sampler.QueryBatch(queries, &seq_rng, &arena, &sequential); });
  std::printf("sequential:            %7.1f ms (%zu samples)\n",
              1e3 * seq_secs, sequential.positions.size());

  // 4. Parallel mode on a persistent pool sized to the machine.
  const size_t cores = std::max<size_t>(1, std::thread::hardware_concurrency());
  iqs::ThreadPool pool(cores);
  iqs::BatchOptions opts;
  opts.num_threads = cores;
  opts.pool = &pool;
  iqs::BatchResult parallel;
  iqs::Rng par_rng(7);
  const double par_secs = MeasureSeconds([&] {
    sampler.QueryBatch(queries, &par_rng, &arena, opts, &parallel);
  });
  std::printf("parallel (%2zu threads): %7.1f ms — %.2fx\n", cores,
              1e3 * par_secs, seq_secs / par_secs);

  // 5. Determinism: the SAME seed at any other thread count reproduces the
  //    parallel output byte for byte (sharding never touches the law).
  iqs::BatchOptions two;
  two.num_threads = 2;
  iqs::BatchResult check;
  iqs::Rng check_rng(7);
  sampler.QueryBatch(queries, &check_rng, &arena, two, &check);
  std::printf("bit-identical at 2 threads vs %zu: %s\n", cores,
              check.positions == parallel.positions ? "yes" : "NO (bug!)");
  return 0;
}
