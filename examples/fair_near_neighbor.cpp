// Scenario 3 (paper Sections 2 and 7): r-fair nearest neighbor search
// over LSH buckets with set-union sampling (Theorem 8).
//
// A matching service holds user profiles as points; "find me someone
// nearby" must not always return the same person (classic NN search
// does). The fair structure returns a uniformly random near profile,
// fresh on every call.

#include <cstdio>
#include <map>
#include <vector>

#include "iqs/iqs.h"

int main() {
  using iqs::multidim::Point2;

  iqs::Rng rng(42);
  // 50k profiles in 10 interest clusters.
  std::vector<Point2> profiles;
  for (const auto& [x, y] : iqs::Points2D(50000, 10, &rng)) {
    profiles.push_back({x, y});
  }

  const double radius = 0.05;
  iqs::Rng build_rng(43);
  iqs::FairNearNeighbor fair(profiles, radius, {}, &build_rng);
  std::printf("indexed %zu profiles into %zu LSH buckets (r=%.2f)\n",
              profiles.size(), fair.num_buckets(), radius);

  // A query user sitting inside a cluster.
  const Point2 me = profiles[123];
  std::vector<size_t> visible;
  fair.VisibleNearPoints(me, &visible);
  std::printf("profiles within r visible to the LSH tables: %zu\n",
              visible.size());

  // Ten independent fair matches: counts should spread, not repeat.
  std::map<size_t, int> match_counts;
  for (int i = 0; i < 1000; ++i) {
    const auto match = fair.QueryIndex(me, &rng);
    if (match.has_value()) ++match_counts[*match];
  }
  std::printf("1000 fair matches hit %zu distinct profiles\n",
              match_counts.size());
  int max_count = 0;
  for (const auto& [profile, count] : match_counts) {
    max_count = std::max(max_count, count);
  }
  std::printf("most-matched profile appeared %d times (uniform would be "
              "~%.1f)\n",
              max_count,
              1000.0 / static_cast<double>(match_counts.size()));

  // Contrast: deterministic nearest neighbor matches the SAME profile
  // every time — the unfairness the paper motivates against.
  size_t nearest = 0;
  double best = 1e300;
  for (size_t i = 0; i < profiles.size(); ++i) {
    const double d = iqs::multidim::SquaredDistance(profiles[i], me);
    if (d > 0 && d < best) {
      best = d;
      nearest = i;
    }
  }
  std::printf("\nclassic NN would pick profile %zu on every single query\n",
              nearest);
  return 0;
}
