// Serving-frontend demo: many users, single queries, one live structure.
//
// Four producer threads each fire single-range sampling requests at a
// serve::KeyServeFrontend (Submit -> ticket), while a writer thread
// churns the underlying LogarithmicRangeSampler with inserts the whole
// time. The frontend coalesces the singleton requests into micro-batches
// (50µs / 64-query window); each flushed batch runs against ONE pinned
// epoch snapshot (the PR-6 path), so no user ever observes a
// half-published version — and nobody ever takes a structure-wide lock.
//
// Build & run:
//   cmake --build build && ./build/examples/serve_demo

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "iqs/iqs.h"

int main() {
  // A live leaderboard: scores are keys, popularity weights attached.
  iqs::LogarithmicRangeSampler scores;
  iqs::Rng seed_rng(7);
  for (int i = 0; i < 20000; ++i) {
    scores.Insert(seed_rng.NextDouble() * 1000.0, 0.5 + seed_rng.NextDouble());
  }

  // The frontend: one structure shard, micro-batch window of 64 queries
  // or 50µs, bounded queue with blocking admission (backpressure).
  iqs::serve::ServeOptions options;
  options.max_batch = 64;
  options.max_delay_ns = 50 * 1000;
  options.queue_capacity = 1024;
  iqs::serve::KeyServeFrontend frontend(
      options,
      [&scores](size_t /*shard*/, std::span<const iqs::KeyBatchQuery> queries,
                iqs::Rng* rng, iqs::ScratchArena* arena,
                const iqs::BatchOptions& opts, iqs::KeyBatchResult* result) {
        scores.QueryBatch(queries, rng, arena, opts, result);
      });

  // Background churn: new scores arrive while every query is served.
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    iqs::Rng rng(99);
    while (!stop.load(std::memory_order_relaxed)) {
      scores.Insert(1000.0 + rng.NextDouble() * 1000.0, 1.0);
      std::this_thread::yield();
    }
  });

  // Producers: each user submits ONE query at a time and waits on its
  // ticket — the frontend turns this into batched serving transparently.
  constexpr size_t kUsers = 4;
  constexpr size_t kQueriesPerUser = 500;
  std::vector<std::thread> users;
  std::atomic<uint64_t> samples_served{0};
  for (size_t u = 0; u < kUsers; ++u) {
    users.emplace_back([&, u] {
      iqs::Rng rng(1000 + u);
      iqs::serve::ServeTicket<double> ticket;
      for (size_t i = 0; i < kQueriesPerUser; ++i) {
        ticket.Reset();
        const double lo = rng.NextDouble() * 900.0;
        if (!frontend.Submit(0, iqs::KeyBatchQuery{lo, lo + 50.0, 3},
                             &ticket)) {
          continue;  // draining (not in this demo) — treat as shed
        }
        if (ticket.Wait() == iqs::serve::ServeStatus::kOk) {
          samples_served.fetch_add(ticket.samples().size(),
                                   std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : users) t.join();
  frontend.Drain();
  stop.store(true, std::memory_order_relaxed);
  writer.join();

  const iqs::serve::ServeShardStats stats = frontend.MergedStats();
  std::printf("served %llu samples for %zu users (%zu queries each)\n",
              static_cast<unsigned long long>(samples_served.load()), kUsers,
              kQueriesPerUser);
  std::printf("structure grew to %zu keys during serving\n", scores.size());
  std::printf("%s", iqs::serve::ServeStatsToText(stats).c_str());
  return 0;
}
