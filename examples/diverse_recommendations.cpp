// Scenario 2 (paper Section 2, Benefits 2-3): fair, diverse
// recommendations — "find restaurants in New York", return 10.
//
// Restaurants are points in (location_x, price_tier) space with a
// popularity weight. A user query is a rectangle (neighbourhood x price
// band) and a screen budget s = 10. The kd-tree IQS structure (Theorem 5)
// returns 10 weighted samples: popular places surface more often, every
// qualifying place has a chance, and each refresh is independent of the
// last — the paper's fairness and diversity arguments in one demo.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "iqs/iqs.h"

namespace {

using iqs::multidim::KdTreeSampler;
using iqs::multidim::Point2;
using iqs::multidim::Rect;

struct Restaurant {
  std::string name;
  Point2 location;  // x = longitude-ish, y = price tier in [0, 1]
  double popularity;
};

std::vector<Restaurant> MakeCity(iqs::Rng* rng) {
  const char* kCuisines[] = {"Thai", "Taco", "Sushi", "Pizza",  "Dim Sum",
                             "BBQ",  "Pho",  "Kebab", "Bistro", "Curry"};
  std::vector<Restaurant> city;
  for (int i = 0; i < 5000; ++i) {
    Restaurant r;
    r.name = std::string(kCuisines[i % 10]) + " #" + std::to_string(i);
    r.location = {rng->NextDouble(), rng->NextDouble()};
    // Popularity: heavy-tailed (a few famous places).
    r.popularity = std::pow(rng->NextDouble(), 4.0) * 99.0 + 1.0;
    city.push_back(r);
  }
  return city;
}

}  // namespace

int main() {
  iqs::Rng rng(3);
  const std::vector<Restaurant> city = MakeCity(&rng);

  std::vector<Point2> points;
  std::vector<double> weights;
  std::map<std::pair<double, double>, const Restaurant*> by_location;
  for (const Restaurant& r : city) {
    points.push_back(r.location);
    weights.push_back(r.popularity);
    by_location[{r.location.x, r.location.y}] = &r;
  }
  const KdTreeSampler index(points, weights);

  // "Downtown, mid-price" — a rectangle query with a screen budget of 10.
  const Rect downtown_mid{0.40, 0.60, 0.30, 0.70};
  std::printf("query: downtown (x in [0.40,0.60]), mid price "
              "(tier in [0.30,0.70]), 10 slots\n\n");

  for (int refresh = 1; refresh <= 3; ++refresh) {
    std::vector<Point2> picks;
    if (!index.QueryRect(downtown_mid, 10, &rng, &picks)) {
      std::printf("no restaurant matches!\n");
      return 0;
    }
    std::printf("refresh %d:", refresh);
    for (const Point2& p : picks) {
      std::printf(" %s", by_location.at({p.x, p.y})->name.c_str());
    }
    std::printf("\n");
  }

  std::printf(
      "\nEach refresh is an independent weighted sample of the matching\n"
      "set (popular spots appear more often, nothing is ever pinned),\n"
      "so users collectively see the whole candidate set over time.\n");

  // Fairness flavour (Benefit 2): an r-fair nearest neighbor query.
  const Point2 me{0.5, 0.5};
  const auto fair_pick = index.FairNearNeighbor(me, 0.1, &rng);
  if (fair_pick.has_value()) {
    std::printf("\nfair near-neighbor pick within r=0.1 of (0.5, 0.5): %s\n",
                by_location.at({fair_pick->x, fair_pick->y})->name.c_str());
  }
  return 0;
}
