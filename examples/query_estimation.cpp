// Scenario 1 (paper Section 2, Benefit 1): online selectivity estimation.
//
// A relation R(A, B) where A is a real attribute (indexed) and B is a
// categorical payload. An analyst repeatedly asks: "among tuples with
// A in [x, y], what fraction have B = premium?" — answered from a handful
// of samples instead of scanning the range.
//
// The demo runs a long stream of estimates twice — once over an IQS
// structure, once over the conventional dependent sampler — and shows
// that only IQS keeps the number of bad estimates near its expectation
// on EVERY workload; the dependent sampler's failures come in avalanches.

#include <cmath>
#include <cstdio>
#include <vector>

#include "iqs/iqs.h"

namespace {

constexpr size_t kTuples = 1 << 18;
constexpr size_t kSamplesPerEstimate = 384;
constexpr double kErrorBudget = 0.05;

struct Relation {
  std::vector<double> attr_a;     // sorted
  std::vector<uint8_t> premium;   // B == premium?
};

Relation MakeRelation(iqs::Rng* rng) {
  Relation r;
  r.attr_a = iqs::UniformKeys(kTuples, rng);
  r.premium.resize(kTuples);
  for (size_t i = 0; i < kTuples; ++i) {
    // Premium fraction drifts with A so different ranges differ.
    const double p = 0.2 + 0.4 * r.attr_a[i];
    r.premium[i] = rng->NextDouble() < p;
  }
  return r;
}

double TrueFraction(const Relation& r, size_t a, size_t b) {
  size_t ones = 0;
  for (size_t i = a; i <= b; ++i) ones += r.premium[i];
  return static_cast<double>(ones) / static_cast<double>(b - a + 1);
}

}  // namespace

int main() {
  iqs::Rng rng(7);
  const Relation r = MakeRelation(&rng);
  const std::vector<double> unit(kTuples, 1.0);

  iqs::WeightedRangeSampler iqs_index(r.attr_a, unit);
  iqs::Rng build_rng(8);
  iqs::DependentRangeSampler dependent_index(r.attr_a, &build_rng);

  // The analyst hammers ONE hot range (a dashboard refresh): the worst
  // case for dependent sampling.
  const size_t a = kTuples / 3;
  const size_t b = 2 * (kTuples / 3);
  const double truth = TrueFraction(r, a, b);
  std::printf("hot range holds %zu tuples, true premium fraction %.4f\n",
              b - a + 1, truth);

  auto run = [&](const char* name, auto&& draw) {
    int failures = 0;
    const int estimates = 500;
    for (int e = 0; e < estimates; ++e) {
      std::vector<size_t> samples;
      draw(&samples);
      size_t ones = 0;
      for (size_t p : samples) ones += r.premium[p];
      const double estimate =
          static_cast<double>(ones) / static_cast<double>(samples.size());
      failures += std::abs(estimate - truth) > kErrorBudget;
    }
    std::printf("%-22s %d/%d estimates off by more than %.2f\n", name,
                failures, estimates, kErrorBudget);
  };

  run("IQS (Theorem 3):", [&](std::vector<size_t>* out) {
    iqs_index.QueryPositions(a, b, kSamplesPerEstimate, &rng, out);
  });
  run("dependent baseline:", [&](std::vector<size_t>* out) {
    dependent_index.QueryPositions(a, b, kSamplesPerEstimate, &rng, out);
  });

  std::printf(
      "\nIQS failures track m*delta; the dependent sampler reuses one\n"
      "frozen support set, so it is either always right or always wrong\n"
      "on a hot range - run bench_independence for the full experiment.\n");
  return 0;
}
