// Scenario 4 (paper Section 8): sampling from disk-resident data.
//
// A log table too big for memory lives on a (simulated) block device.
// An analytics job keeps requesting WR samples of records in a key range.
// The demo compares the I/O bills of three strategies on the same B-tree
// data — the EM model's entire point is that these counts, not CPU time,
// are the cost.

#include <cstdio>
#include <vector>

#include "iqs/iqs.h"

int main() {
  using namespace iqs::em;

  const size_t kB = 64;            // words per block
  const size_t kN = 1 << 17;       // records
  const size_t kMemory = 16 * kB;  // M: 16 blocks of workspace

  BlockDevice device(kB);
  EmArray table(&device, 1);
  {
    EmWriter writer(&table);
    for (uint64_t key = 0; key < kN; ++key) writer.Append1(key);
    writer.Finish();
  }
  std::printf("log table: %zu records in %zu blocks (B=%zu words)\n", kN,
              table.num_blocks(), kB);

  iqs::Rng rng(1);
  EmRangeSampler sampler(&table, kMemory, &rng);
  std::printf("built B-tree (height %zu) + per-node sample pools; build "
              "cost %llu I/Os\n\n",
              sampler.btree().height(),
              static_cast<unsigned long long>(device.total_ios()));

  const uint64_t lo = kN / 10;
  const uint64_t hi = 9 * (kN / 10);
  const size_t s = 2048;

  std::vector<uint64_t> out;
  device.ResetCounters();
  sampler.Query(lo, hi, s, &rng, &out);
  std::printf("%-28s %8llu I/Os for %zu samples\n", "sample pools (Hu et al.):",
              static_cast<unsigned long long>(device.total_ios()), s);

  device.ResetCounters();
  out.clear();
  sampler.NaiveQuery(lo, hi, s, &rng, &out);
  std::printf("%-28s %8llu I/Os\n", "random access per sample:",
              static_cast<unsigned long long>(device.total_ios()));

  device.ResetCounters();
  out.clear();
  sampler.ReportThenSample(lo, hi, s, &rng, &out);
  std::printf("%-28s %8llu I/Os\n", "report then sample:",
              static_cast<unsigned long long>(device.total_ios()));

  std::printf(
      "\nThe pool answer costs ~s/B I/Os plus an amortized rebuild —\n"
      "matching the Section-8 lower bound min(s, (s/B) log_{M/B}(n/B));\n"
      "run bench_em_sampling / bench_em_range for the full sweeps.\n");
  return 0;
}
