// Quickstart: independent query sampling over a 1-d weighted dataset.
//
// Builds the paper's headline structure (Theorem 3: O(n) space,
// O(log n + s) per query) over a million keys and answers a few queries,
// demonstrating the core IQS property: repeating a query yields fresh,
// independent samples.
//
//   cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "iqs/iqs.h"

int main() {
  // 1. Data: a million sorted keys with Zipf-skewed weights.
  iqs::Rng rng(/*seed=*/2022);
  const size_t n = 1 << 20;
  const std::vector<double> keys = iqs::UniformKeys(n, &rng);
  const std::vector<double> weights = iqs::ZipfWeights(n, /*alpha=*/1.0, &rng);

  // 2. Index: iqs::WeightedRangeSampler == ChunkedRangeSampler.
  iqs::WeightedRangeSampler sampler(keys, weights);
  std::printf("built Theorem-3 sampler over n=%zu keys (%.1f bytes/elem)\n",
              sampler.n(),
              static_cast<double>(sampler.MemoryBytes()) / sampler.n());

  // 3. Query: 5 independent weighted samples from S ∩ [0.25, 0.75].
  std::vector<size_t> positions;
  if (sampler.Query(0.25, 0.75, /*s=*/5, &rng, &positions)) {
    std::printf("5 weighted samples from [0.25, 0.75]:\n");
    for (size_t p : positions) {
      std::printf("  key=%.6f weight=%.4g (position %zu)\n", keys[p],
                  weights[p], p);
    }
  }

  // 4. The IQS guarantee: the SAME query again returns fresh samples,
  //    independent of the first answer (paper equation (1)).
  std::vector<size_t> repeat;
  sampler.Query(0.25, 0.75, 5, &rng, &repeat);
  std::printf("same query repeated -> fresh, independent samples:\n");
  for (size_t p : repeat) std::printf("  key=%.6f\n", keys[p]);

  // 5. Sampling schemes: convert a WoR sample to WR in O(s) (Section 2).
  std::vector<size_t> wor;
  iqs::UniformWorSample(n, 8, &rng, &wor);
  const std::vector<size_t> wr = iqs::WorToWr(wor, n, &rng);
  std::printf("WoR sample of 8 converted to a WR sample of %zu draws\n",
              wr.size());
  return 0;
}
