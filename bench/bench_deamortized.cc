// E16 (Section 8, de-amortization remark): worst-case vs amortized
// per-query I/O of EM set sampling.
//
// Rows: per-query I/O statistics (mean / p99 / max) for the amortized
// SamplePool (rebuild bursts land on unlucky queries) vs the
// DeamortizedSamplePool (rebuild work spread across queries) on the same
// stream of small queries. The claim: near-identical means, orders of
// magnitude apart at the max.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "iqs/em/deamortized_pool.h"
#include "iqs/em/sample_pool.h"
#include "iqs/util/rng.h"

namespace {

using iqs::em::BlockDevice;
using iqs::em::DeamortizedSamplePool;
using iqs::em::EmArray;
using iqs::em::EmWriter;
using iqs::em::SamplePool;

struct IoStats {
  double mean;
  uint64_t p99;
  uint64_t max;
};

template <typename Pool>
IoStats Drive(BlockDevice* device, Pool* pool, size_t s, size_t queries,
              iqs::Rng* rng) {
  std::vector<uint64_t> costs;
  costs.reserve(queries);
  std::vector<uint64_t> out;
  for (size_t q = 0; q < queries; ++q) {
    out.clear();
    const uint64_t before = device->total_ios();
    pool->Query(s, rng, &out);
    costs.push_back(device->total_ios() - before);
  }
  std::sort(costs.begin(), costs.end());
  double total = 0.0;
  for (uint64_t c : costs) total += static_cast<double>(c);
  return {total / static_cast<double>(queries), costs[queries * 99 / 100],
          costs.back()};
}

}  // namespace

int main() {
  const size_t kB = 64;
  const size_t kN = 1 << 15;
  const size_t kM = 16 * kB;

  std::printf("E16: per-query I/O (enough queries to span >=3 rebuilds; "
              "n=%zu, B=%zu)\n",
              kN, kB);
  std::printf("%6s | %28s | %28s\n", "", "amortized pool", "de-amortized");
  std::printf("%6s | %8s %8s %8s | %8s %8s %8s\n", "s", "mean", "p99", "max",
              "mean", "p99", "max");
  for (size_t s : {16, 64, 256}) {
    const size_t queries = std::max<size_t>(2048, 3 * kN / s);
    BlockDevice device_a(kB);
    EmArray data_a(&device_a, 1);
    {
      EmWriter writer(&data_a);
      for (uint64_t i = 0; i < kN; ++i) writer.Append1(i);
      writer.Finish();
    }
    iqs::Rng rng_a(1);
    SamplePool amortized(&data_a, 0, kN, kM, &rng_a);
    const IoStats a = Drive(&device_a, &amortized, s, queries, &rng_a);

    BlockDevice device_d(kB);
    EmArray data_d(&device_d, 1);
    {
      EmWriter writer(&data_d);
      for (uint64_t i = 0; i < kN; ++i) writer.Append1(i);
      writer.Finish();
    }
    iqs::Rng rng_d(1);
    DeamortizedSamplePool deamortized(&data_d, 0, kN, kM, &rng_d);
    const IoStats d = Drive(&device_d, &deamortized, s, queries, &rng_d);

    std::printf("%6zu | %8.1f %8llu %8llu | %8.1f %8llu %8llu\n", s, a.mean,
                static_cast<unsigned long long>(a.p99),
                static_cast<unsigned long long>(a.max), d.mean,
                static_cast<unsigned long long>(d.p99),
                static_cast<unsigned long long>(d.max));
  }
  std::printf("\nClaim: means match; the amortized max carries a whole "
              "rebuild, the de-amortized max stays near its p99.\n");
  return 0;
}
