// E23 — per-kernel SIMD ablation (extends E19's pipeline view down to the
// three vectorized kernels of DESIGN.md "Kernel dispatch").
//
// Every kernel runs twice over the same workload: once with the scalar
// backend forced and once with the detected SIMD backend (the run is a
// scalar-only no-op when none is available, e.g. under
// -DIQS_DISABLE_SIMD). Reported numbers are ns per output element, so
// rows are comparable across kernels roofline-style: the block-RNG
// kernels are compute-bound (the vector win is the xoshiro ALU work),
// while the alias/descent kernels become gather/memory-bound as their
// tables outgrow cache — the honest expectation is a large win for
// cache-resident tables and a shrinking one at memory-bound sizes.
//
// Writes BENCH_simd_kernels.json: {"backend": ..., "rows": [...]}.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "iqs/alias/alias_table.h"
#include "iqs/alias/quantized_alias.h"
#include "iqs/range/static_bst.h"
#include "iqs/simd/dispatch.h"
#include "iqs/util/distributions.h"
#include "iqs/util/rng.h"
#include "iqs/util/scratch_arena.h"

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Runs `fn` (producing `elems` outputs per call) until ~0.2s elapsed and
// returns ns per element. Same protocol as bench_batch_serving (E19).
template <typename Fn>
double MeasureNsPerElem(size_t elems, Fn&& fn) {
  fn();  // warm-up
  size_t reps = 0;
  const Clock::time_point start = Clock::now();
  double elapsed = 0.0;
  do {
    fn();
    ++reps;
    elapsed = SecondsSince(start);
  } while (elapsed < 0.2);
  return elapsed * 1e9 / (static_cast<double>(reps) * elems);
}

struct Row {
  std::string kernel;
  size_t n = 0;       // structure size (0 = none)
  size_t block = 0;   // outputs per call
  double scalar_ns = 0.0;
  double simd_ns = 0.0;
  double speedup = 0.0;  // scalar_ns / simd_ns
};

}  // namespace

int main() {
  const iqs::simd::Backend simd_backend = iqs::simd::ActiveBackend();
  const std::string backend_name(iqs::simd::BackendName(simd_backend));
  std::printf("E23: per-kernel SIMD ablation — scalar vs %s (ns/elem)\n",
              backend_name.c_str());
  if (simd_backend == iqs::simd::Backend::kScalar) {
    std::printf("no SIMD backend available; scalar-only run\n");
  }
  std::printf("%-18s %9s %7s %11s %11s %8s\n", "kernel", "n", "block",
              "scalar ns", "simd ns", "speedup");

  std::vector<Row> rows;
  // Measures `fn` under the scalar backend, then under the detected SIMD
  // backend, and records the pair.
  const auto ablate = [&](const std::string& kernel, size_t n, size_t block,
                          auto&& fn) {
    Row row;
    row.kernel = kernel;
    row.n = n;
    row.block = block;
    iqs::simd::ForceBackend(iqs::simd::Backend::kScalar);
    row.scalar_ns = MeasureNsPerElem(block, fn);
    iqs::simd::ForceBackend(simd_backend);
    row.simd_ns = MeasureNsPerElem(block, fn);
    iqs::simd::ClearForcedBackend();
    row.speedup = row.scalar_ns / row.simd_ns;
    rows.push_back(row);
    std::printf("%-18s %9zu %7zu %11.3f %11.3f %7.2fx\n", kernel.c_str(), n,
                block, row.scalar_ns, row.simd_ns, row.speedup);
  };

  constexpr size_t kBlock = 1 << 16;

  // Block RNG: pure compute, the cleanest vector win.
  {
    iqs::Rng rng(1);
    std::vector<double> doubles(kBlock);
    ablate("fill_doubles", 0, kBlock, [&] { rng.FillDoubles(doubles); });
    std::vector<uint64_t> below(kBlock);
    ablate("fill_below", 0, kBlock,
           [&] { rng.FillBelow(1000003, below); });
  }

  // Alias draws: urn gathers; table size sweeps cache-resident -> L2/L3.
  for (const size_t n : {size_t{1} << 10, size_t{1} << 16, size_t{1} << 20}) {
    iqs::Rng data_rng(2);
    const auto weights = iqs::ZipfWeights(n, 1.0, &data_rng);
    const iqs::AliasTable table(weights);
    iqs::Rng rng(3);
    std::vector<size_t> out(kBlock);
    ablate("alias_block", n, kBlock,
           [&] { table.SampleBlock(&rng, 0, out); });
  }

  // Heterogeneous targets: the cover-layer shape — many small per-node
  // tables, a different one per draw.
  {
    constexpr size_t kTables = 256;
    constexpr size_t kUrnsPerTable = 64;
    iqs::Rng data_rng(4);
    std::vector<iqs::AliasTable> tables(kTables);
    for (auto& t : tables) {
      t.Build(iqs::ZipfWeights(kUrnsPerTable, 1.0, &data_rng));
    }
    std::vector<const iqs::AliasTable*> ptrs(kBlock);
    std::vector<size_t> bases(kBlock, 0);
    for (size_t i = 0; i < kBlock; ++i) ptrs[i] = &tables[i % kTables];
    iqs::Rng rng(5);
    std::vector<size_t> out(kBlock);
    ablate("alias_targets", kTables * kUrnsPerTable, kBlock, [&] {
      iqs::AliasTable::SampleTargets(ptrs, bases, &rng, out);
    });
  }

  // Quantized alias: 16-bit prob + 32-bit alias gathers.
  {
    constexpr size_t kN = size_t{1} << 16;
    iqs::Rng data_rng(6);
    const iqs::QuantizedAlias table(iqs::ZipfWeights(kN, 1.0, &data_rng));
    iqs::Rng rng(7);
    std::vector<size_t> out(kBlock);
    ablate("quantized_block", kN, kBlock,
           [&] { table.SampleBlock(&rng, 0, out); });
  }

  // Grouped tree descent: level-synchronous node gathers.
  for (const size_t n : {size_t{1} << 10, size_t{1} << 16}) {
    iqs::Rng data_rng(8);
    const iqs::StaticBst tree(iqs::ZipfWeights(n, 1.0, &data_rng));
    iqs::Rng rng(9);
    iqs::ScratchArena arena;
    std::vector<size_t> out(kBlock);
    ablate("descend_lanes", n, kBlock, [&] {
      tree.SampleLeaves(tree.root(), &rng, &arena, out);
    });
  }

  std::FILE* json = std::fopen("BENCH_simd_kernels.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\"backend\": \"%s\", \"rows\": [\n",
                 backend_name.c_str());
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(json,
                   "  {\"kernel\": \"%s\", \"n\": %zu, \"block\": %zu, "
                   "\"scalar_ns\": %.4f, \"simd_ns\": %.4f, "
                   "\"speedup\": %.3f}%s\n",
                   r.kernel.c_str(), r.n, r.block, r.scalar_ns, r.simd_ns,
                   r.speedup, i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(json, "]}\n");
    std::fclose(json);
    std::printf("wrote BENCH_simd_kernels.json (%zu rows)\n", rows.size());
  }
  return 0;
}
