// E22 — telemetry overhead on the batched serving fast path.
//
// Replays the E19 QueryBatch workload (three 1-d samplers, fixed query
// sets) in three modes:
//   * off:  BatchOptions{} — no sink; must track E19's batch lane within
//           noise (the acceptance bar is <2% vs the pre-telemetry E19
//           JSON, compared offline by diffing bench/results).
//   * on:   a TelemetrySink attached — measures the cost of live
//           counters + one latency sample per batch.
//   * the `on` run's merged counters are exported through MetricsRegistry
//     and embedded in the output JSON, exercising the exporter end to
//     end on real serving traffic.
//
// Writes BENCH_telemetry.json: {"rows": [...], "telemetry": {...}}.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "iqs/range/aug_range_sampler.h"
#include "iqs/range/bst_range_sampler.h"
#include "iqs/range/chunked_range_sampler.h"
#include "iqs/range/range_sampler.h"
#include "iqs/util/batch_options.h"
#include "iqs/util/distributions.h"
#include "iqs/util/rng.h"
#include "iqs/util/scratch_arena.h"
#include "iqs/util/telemetry.h"

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Runs `fn` (one whole batch per call) until ~0.2s elapsed, returns
// batches/sec. Same protocol as bench_batch_serving (E19).
template <typename Fn>
double Measure(Fn&& fn) {
  fn();  // warm-up (grows arena/result buffers to steady state)
  size_t reps = 0;
  const Clock::time_point start = Clock::now();
  double elapsed = 0.0;
  do {
    fn();
    ++reps;
    elapsed = SecondsSince(start);
  } while (elapsed < 0.2);
  return static_cast<double>(reps) / elapsed;
}

struct Row {
  std::string sampler;
  size_t n = 0;
  size_t batch = 0;
  size_t s = 0;
  double off_sps = 0.0;
  double on_sps = 0.0;
  double overhead_pct = 0.0;  // (off/on - 1) * 100
};

}  // namespace

int main() {
  std::printf(
      "E22: telemetry overhead on QueryBatch (samples/sec) — sink "
      "detached vs attached\n");
  std::printf("%-22s %9s %6s %5s %12s %12s %9s\n", "sampler", "n", "batch",
              "s", "off sps", "on sps", "overhead");

  std::vector<Row> rows;
  iqs::MetricsRegistry registry;

  for (const size_t n : {size_t{1} << 16, size_t{1} << 20}) {
    iqs::Rng data_rng(1);
    const auto keys = iqs::UniformKeys(n, &data_rng);
    const auto weights = iqs::ZipfWeights(n, 1.0, &data_rng);

    const iqs::BstRangeSampler bst(keys, weights);
    const iqs::AugRangeSampler aug(keys, weights);
    const iqs::ChunkedRangeSampler chunked(keys, weights);
    const iqs::RangeSampler* lanes[3] = {&bst, &aug, &chunked};

    for (const iqs::RangeSampler* sampler : lanes) {
      for (const size_t batch : {size_t{64}, size_t{512}}) {
        for (const size_t s : {size_t{16}, size_t{256}}) {
          iqs::Rng query_rng(2);
          std::vector<iqs::BatchQuery> queries;
          for (size_t i = 0; i < batch; ++i) {
            const auto [lo, hi] =
                iqs::IntervalWithSelectivity(keys, n / 8, &query_rng);
            queries.push_back({lo, hi, s});
          }

          iqs::ScratchArena arena;
          iqs::BatchResult result;

          iqs::Rng off_rng(3);
          const double off_bps = Measure([&] {
            sampler->QueryBatch(queries, &off_rng, &arena, &result);
          });

          iqs::TelemetrySink* sink =
              registry.GetOrCreate(std::string(sampler->name()));
          iqs::BatchOptions on_opts;
          on_opts.telemetry = sink;
          iqs::Rng on_rng(3);
          const double on_bps = Measure([&] {
            sampler->QueryBatch(queries, &on_rng, &arena, on_opts, &result);
          });

          Row row;
          row.sampler = std::string(sampler->name());
          row.n = n;
          row.batch = batch;
          row.s = s;
          const double spb = static_cast<double>(batch * s);
          row.off_sps = off_bps * spb;
          row.on_sps = on_bps * spb;
          row.overhead_pct = (off_bps / on_bps - 1.0) * 100.0;
          rows.push_back(row);

          std::printf("%-22s %9zu %6zu %5zu %12.3e %12.3e %8.2f%%\n",
                      row.sampler.c_str(), n, batch, s, row.off_sps,
                      row.on_sps, row.overhead_pct);
        }
      }
    }
  }

  const std::string telemetry_json = registry.ToJson();
  std::printf("\n%s\n", registry.ToText().c_str());

  std::FILE* json = std::fopen("BENCH_telemetry.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\"rows\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(
          json,
          "  {\"sampler\": \"%s\", \"n\": %zu, \"batch\": %zu, \"s\": %zu, "
          "\"off_sps\": %.6e, \"on_sps\": %.6e, \"overhead_pct\": %.3f}%s\n",
          r.sampler.c_str(), r.n, r.batch, r.s, r.off_sps, r.on_sps,
          r.overhead_pct, i + 1 < rows.size() ? "," : "");
    }
    // Embed the registry dump (itself {"telemetry": {...}}) so the
    // exporter runs on real traffic.
    std::fprintf(json, "],\n\"registry\": %s}\n", telemetry_json.c_str());
    std::fclose(json);
    std::printf("wrote BENCH_telemetry.json (%zu rows)\n", rows.size());
  }
  return 0;
}
