// E11 (Section 2, Benefit 1): why cross-query independence matters for
// estimation quality.
//
// Setup, following the paper's example: each of m rounds estimates the
// fraction of elements in a fixed range whose payload bit is 1, from
// s samples of the range. An estimate "fails" when its error exceeds eps.
//
//   * With an IQS sampler, failures are independent across rounds, so the
//     failure count concentrates sharply around m * delta.
//   * With the dependent (random-permutation) sampler, every round reuses
//     the same WoR support: rounds all fail or all succeed together, so
//     the failure count across repetitions has enormous variance.
//
// The table reports the mean and standard deviation of the failure count
// over many repetitions of the m-round experiment (repetitions rebuild
// the dependent structure; the IQS structure needs no rebuild).

#include <cmath>
#include <cstdio>
#include <vector>

#include "iqs/range/chunked_range_sampler.h"
#include "iqs/sampling/dependent_range_sampler.h"
#include "iqs/util/distributions.h"
#include "iqs/util/rng.h"
#include "iqs/util/stats.h"

namespace {

constexpr size_t kN = 1 << 14;
constexpr size_t kS = 64;          // samples per estimate
constexpr size_t kRounds = 200;    // estimates per experiment
constexpr int kRepetitions = 60;   // experiments per structure
constexpr double kEps = 0.06;      // allowed absolute error

struct Data {
  std::vector<double> keys;
  std::vector<uint8_t> payload;  // bit to estimate
  double true_fraction;
  size_t a, b;                   // the fixed query range (positions)
};

Data MakeData() {
  Data d;
  iqs::Rng rng(1);
  d.keys = iqs::UniformKeys(kN, &rng);
  d.payload.resize(kN);
  d.a = kN / 8;
  d.b = 7 * (kN / 8);
  size_t ones = 0;
  for (size_t i = 0; i < kN; ++i) {
    d.payload[i] = rng.NextDouble() < 0.3 ? 1 : 0;
  }
  for (size_t i = d.a; i <= d.b; ++i) ones += d.payload[i];
  d.true_fraction =
      static_cast<double>(ones) / static_cast<double>(d.b - d.a + 1);
  return d;
}

// Runs one m-round experiment; returns the number of failed estimates.
template <typename QueryFn>
int RunExperiment(const Data& d, QueryFn&& query) {
  int failures = 0;
  for (size_t round = 0; round < kRounds; ++round) {
    std::vector<size_t> samples;
    query(&samples);
    size_t ones = 0;
    for (size_t p : samples) ones += d.payload[p];
    const double estimate =
        static_cast<double>(ones) / static_cast<double>(samples.size());
    failures += std::abs(estimate - d.true_fraction) > kEps;
  }
  return failures;
}

}  // namespace

int main() {
  const Data d = MakeData();
  const std::vector<double> unit_weights(kN, 1.0);

  // IQS structure: built once; every query uses fresh randomness.
  iqs::ChunkedRangeSampler iqs_sampler(d.keys, unit_weights);
  iqs::Rng rng(2);
  std::vector<double> iqs_failures;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    iqs_failures.push_back(static_cast<double>(
        RunExperiment(d, [&](std::vector<size_t>* out) {
          iqs_sampler.QueryPositions(d.a, d.b, kS, &rng, out);
        })));
  }

  // Dependent structure: rebuilt per repetition (its randomness is fixed
  // at build time), queried identically within a repetition.
  std::vector<double> dep_failures;
  iqs::Rng seeder(3);
  for (int rep = 0; rep < kRepetitions; ++rep) {
    iqs::Rng build_rng(seeder.Next64());
    iqs::DependentRangeSampler dep(d.keys, &build_rng);
    dep_failures.push_back(static_cast<double>(
        RunExperiment(d, [&](std::vector<size_t>* out) {
          dep.QueryPositions(d.a, d.b, kS, &rng, out);
        })));
  }

  std::printf("E11: failure counts over m=%zu estimates (s=%zu, eps=%.2f), "
              "%d repetitions\n",
              kRounds, kS, kEps, kRepetitions);
  std::printf("%14s %10s %10s %10s\n", "sampler", "mean", "stddev",
              "max");
  auto row = [](const char* name, const std::vector<double>& x) {
    double max = 0.0;
    for (double v : x) max = std::max(max, v);
    std::printf("%14s %10.2f %10.2f %10.0f\n", name, iqs::Mean(x),
                std::sqrt(iqs::Variance(x)), max);
  };
  row("IQS(chunked)", iqs_failures);
  row("dependent", dep_failures);
  std::printf("\nClaim: IQS stddev ~ sqrt(m*delta) (small); dependent "
              "stddev is a large fraction of m.\n");
  return 0;
}
