#!/usr/bin/env sh
# Runs every bench binary and collects one JSON file per bench into an
# output directory, so PR-over-PR perf trajectories can be diffed.
#
#   bench/export_bench_json.sh [build_dir] [out_dir]
#
# Defaults: build_dir=build, out_dir=bench/results.
#
# Two kinds of bench binaries exist (see bench/CMakeLists.txt):
#   * google-benchmark timing benches — exported via
#     --benchmark_out=<out>/<name>.json --benchmark_out_format=json;
#   * plain table executables (EM model, independence, space, the E19/E20/
#     E21 serving sweeps) — these ignore argv and write their own
#     BENCH_<name>.json into the working directory, so we run them inside
#     <out> and keep whatever BENCH_*.json they produce. They must be
#     listed here by name (probing with a flag would run the full sweep).
set -eu

is_table_bench() {
  case "$1" in
    bench_space|bench_em_sampling|bench_em_range|bench_independence| \
    bench_approx_iqs|bench_deamortized|bench_batch_serving| \
    bench_multidim_batch|bench_parallel_serving|bench_telemetry| \
    bench_simd_kernels|bench_concurrent_churn|bench_serve_frontend| \
    bench_join_sampling)
      return 0 ;;
    *)
      return 1 ;;
  esac
}

# Table benches that WRITE a BENCH_<name>.json (the serving sweeps);
# the older EM/space/independence tables only print.
table_bench_writes_json() {
  case "$1" in
    bench_batch_serving|bench_multidim_batch|bench_parallel_serving| \
    bench_telemetry|bench_simd_kernels|bench_concurrent_churn| \
    bench_serve_frontend|bench_join_sampling)
      return 0 ;;
    *)
      return 1 ;;
  esac
}

# Fails the run if a bench did not leave its JSON behind (or left it
# empty) — a silently skipped bench would otherwise look like a perf win.
require_json() {
  if [ ! -s "$1" ]; then
    echo "error: $2 produced no JSON at $1" >&2
    exit 1
  fi
}

# Fails the run with the bench binary's own exit code if it did not exit
# cleanly (a crash mid-run can still leave a plausible-looking partial
# JSON behind, so checking the file alone is not enough). Named here
# rather than left to `set -e` so the failing bench is identified and
# the status survives any future refactor of the call sites.
require_clean_exit() {
  if [ "$1" -ne 0 ]; then
    echo "error: $2 exited with status $1" >&2
    exit "$1"
  fi
}

build_dir=${1:-build}
out_dir=${2:-bench/results}

if [ ! -d "$build_dir/bench" ]; then
  echo "error: $build_dir/bench not found — build first:" >&2
  echo "  cmake -B $build_dir -G Ninja && cmake --build $build_dir" >&2
  exit 1
fi

mkdir -p "$out_dir"
out_abs=$(cd "$out_dir" && pwd)

for bench in "$build_dir"/bench/*; do
  [ -f "$bench" ] && [ -x "$bench" ] || continue
  name=$(basename "$bench")
  bench_abs=$(cd "$(dirname "$bench")" && pwd)/$name
  if is_table_bench "$name"; then
    echo "== $name (table) =="
    status=0
    (cd "$out_abs" && "$bench_abs") || status=$?
    require_clean_exit "$status" "$name"
    if table_bench_writes_json "$name"; then
      require_json "$out_abs/BENCH_${name#bench_}.json" "$name"
    fi
  else
    echo "== $name (google-benchmark) =="
    status=0
    "$bench_abs" --benchmark_out="$out_abs/$name.json" \
      --benchmark_out_format=json || status=$?
    require_clean_exit "$status" "$name"
    require_json "$out_abs/$name.json" "$name"
  fi
done

echo
echo "JSON written to $out_dir:"
ls "$out_abs"/*.json 2>/dev/null || echo "  (none)"
