// E19 — batched query-serving fast path.
//
// Sweeps batch size x sample size x n over the three 1-d RangeSampler
// implementations and compares three serving strategies on the same
// workload:
//   * seed:   a faithful replica of the pre-batch-path QueryPositions
//             loop (fresh heap allocations per query, one RNG state
//             round-trip per draw, per-draw cover picks) — the fixed
//             baseline for trajectory tracking across PRs;
//   * single: looping today's single-query path (which already received
//             the scratch-hoisting and block-RNG satellite fixes);
//   * batch:  one QueryBatch call with a reused ScratchArena/BatchResult
//             (multinomial cover splits, grouped prefetched descents,
//             block RNG, zero steady-state allocations).
// All three draw from identical per-query distributions (see
// batch_serving_test.cc); the differences are pure constant factors.
//
// Reports samples/sec and writes BENCH_batch_serving.json (array of row
// objects) for trajectory tracking.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "iqs/alias/alias_table.h"
#include "iqs/range/aug_range_sampler.h"
#include "iqs/range/bst_range_sampler.h"
#include "iqs/range/chunked_range_sampler.h"
#include "iqs/range/static_bst.h"
#include "iqs/sampling/multinomial.h"
#include "iqs/util/distributions.h"
#include "iqs/util/rng.h"
#include "iqs/util/scratch_arena.h"

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// ---------------------------------------------------------------------------
// Seed-path replicas. These reproduce, through public APIs, the exact
// query algorithms the repo seed shipped, including their per-query heap
// allocations, so the baseline stays fixed as the library improves.

// Seed BstRangeSampler::QueryPositions: fresh cover + weight vectors, a
// fresh alias table over the cover, then one alias pick and one
// root-to-leaf walk (one RNG draw per step) per sample.
class SeedBstLoop {
 public:
  explicit SeedBstLoop(const iqs::BstRangeSampler& sampler)
      : sampler_(sampler) {}

  void Query(double lo, double hi, size_t s, iqs::Rng* rng,
             std::vector<size_t>* out) const {
    size_t a = 0;
    size_t b = 0;
    if (!sampler_.ResolveInterval(lo, hi, &a, &b)) return;
    const iqs::StaticBst& tree = sampler_.tree();
    std::vector<iqs::StaticBst::NodeId> cover;
    tree.CanonicalCover(a, b, &cover);
    std::vector<double> cover_weights;
    cover_weights.reserve(cover.size());
    for (const auto u : cover) cover_weights.push_back(tree.NodeWeight(u));
    iqs::AliasTable cover_alias(cover_weights);
    out->reserve(out->size() + s);
    for (size_t i = 0; i < s; ++i) {
      const auto u = cover[cover_alias.Sample(rng)];
      out->push_back(tree.SampleLeaf(u, rng));
    }
  }

 private:
  const iqs::BstRangeSampler& sampler_;
};

// Seed AugRangeSampler: per-node alias tables; a query takes a fresh
// cover, a MultinomialSplit that builds a fresh alias table and returns a
// fresh counts vector, then one per-draw urn pick per sample.
class SeedAugLoop {
 public:
  SeedAugLoop(const std::vector<double>& keys,
              const std::vector<double>& weights)
      : keys_(keys), tree_(weights) {
    node_alias_.resize(tree_.num_nodes());
    std::vector<double> scratch;
    for (iqs::StaticBst::NodeId u = 0; u < tree_.num_nodes(); ++u) {
      if (tree_.IsLeaf(u)) continue;
      scratch.assign(weights.begin() + static_cast<ptrdiff_t>(tree_.RangeLo(u)),
                     weights.begin() +
                         static_cast<ptrdiff_t>(tree_.RangeHi(u)) + 1);
      node_alias_[u].Build(scratch);
    }
  }

  void Query(double lo, double hi, size_t s, iqs::Rng* rng,
             std::vector<size_t>* out) const {
    const auto first =
        std::lower_bound(keys_.begin(), keys_.end(), lo);
    if (first == keys_.end() || *first > hi) return;
    const auto last = std::upper_bound(first, keys_.end(), hi);
    const size_t a = static_cast<size_t>(first - keys_.begin());
    const size_t b = static_cast<size_t>(last - keys_.begin()) - 1;

    std::vector<iqs::StaticBst::NodeId> cover;
    tree_.CanonicalCover(a, b, &cover);
    std::vector<double> cover_weights;
    cover_weights.reserve(cover.size());
    for (const auto u : cover) cover_weights.push_back(tree_.NodeWeight(u));
    const std::vector<uint32_t> counts =
        iqs::MultinomialSplit(cover_weights, s, rng);
    out->reserve(out->size() + s);
    for (size_t i = 0; i < cover.size(); ++i) {
      const auto u = cover[i];
      const size_t node_lo = tree_.RangeLo(u);
      if (tree_.IsLeaf(u)) {
        for (uint32_t k = 0; k < counts[i]; ++k) out->push_back(node_lo);
        continue;
      }
      const iqs::AliasTable& table = node_alias_[u];
      for (uint32_t k = 0; k < counts[i]; ++k) {
        out->push_back(node_lo + table.Sample(rng));
      }
    }
  }

 private:
  std::vector<double> keys_;
  iqs::StaticBst tree_;
  std::vector<iqs::AliasTable> node_alias_;
};

// Seed ChunkedRangeSampler: q1/q2/q3 split with an allocating
// MultinomialSplit, partial chunks served by copying the span's weights
// into a fresh vector and building a fresh alias table, middle chunks by
// a seed-aug query over chunk weights plus one per-draw chunk-table pick.
class SeedChunkedLoop {
 public:
  SeedChunkedLoop(const std::vector<double>& keys,
                  const std::vector<double>& weights, size_t chunk_size)
      : keys_(keys), weights_(weights), chunk_size_(chunk_size) {
    const size_t n = weights_.size();
    const size_t g = (n + chunk_size_ - 1) / chunk_size_;
    std::vector<double> chunk_weights(g, 0.0);
    chunk_alias_.resize(g);
    std::vector<double> scratch;
    for (size_t c = 0; c < g; ++c) {
      scratch.assign(
          weights_.begin() + static_cast<ptrdiff_t>(ChunkStart(c)),
          weights_.begin() + static_cast<ptrdiff_t>(ChunkEnd(c)) + 1);
      chunk_alias_[c].Build(scratch);
      for (const double w : scratch) chunk_weights[c] += w;
    }
    chunk_weight_prefix_.assign(g + 1, 0.0);
    for (size_t c = 0; c < g; ++c) {
      chunk_weight_prefix_[c + 1] = chunk_weight_prefix_[c] + chunk_weights[c];
    }
    std::vector<double> chunk_keys(g);
    for (size_t c = 0; c < g; ++c) chunk_keys[c] = static_cast<double>(c);
    chunk_level_ = std::make_unique<SeedAugLoop>(chunk_keys, chunk_weights);
  }

  void Query(double lo, double hi, size_t s, iqs::Rng* rng,
             std::vector<size_t>* out) const {
    const auto first = std::lower_bound(keys_.begin(), keys_.end(), lo);
    if (first == keys_.end() || *first > hi) return;
    const auto last = std::upper_bound(first, keys_.end(), hi);
    const size_t a = static_cast<size_t>(first - keys_.begin());
    const size_t b = static_cast<size_t>(last - keys_.begin()) - 1;

    out->reserve(out->size() + s);
    const size_t ca = a / chunk_size_;
    const size_t cb = b / chunk_size_;
    if (ca == cb) {
      SampleFromSpan(a, b, s, rng, out);
      return;
    }
    const size_t q1_hi = ChunkEnd(ca);
    const size_t q3_lo = ChunkStart(cb);
    double w1 = 0.0;
    for (size_t i = a; i <= q1_hi; ++i) w1 += weights_[i];
    double w3 = 0.0;
    for (size_t i = q3_lo; i <= b; ++i) w3 += weights_[i];
    const bool has_middle = cb > ca + 1;
    const double w2 =
        has_middle ? chunk_weight_prefix_[cb] - chunk_weight_prefix_[ca + 1]
                   : 0.0;
    const double part_weights[3] = {w1, w2, w3};
    const std::vector<uint32_t> counts =
        iqs::MultinomialSplit(part_weights, s, rng);
    SampleFromSpan(a, q1_hi, counts[0], rng, out);
    SampleFromSpan(q3_lo, b, counts[2], rng, out);
    if (counts[1] > 0) {
      std::vector<size_t> chunk_draws;
      chunk_draws.reserve(counts[1]);
      chunk_level_->Query(static_cast<double>(ca + 1),
                          static_cast<double>(cb - 1), counts[1], rng,
                          &chunk_draws);
      for (const size_t chunk : chunk_draws) {
        out->push_back(ChunkStart(chunk) + chunk_alias_[chunk].Sample(rng));
      }
    }
  }

 private:
  size_t ChunkStart(size_t chunk) const { return chunk * chunk_size_; }
  size_t ChunkEnd(size_t chunk) const {
    return std::min(ChunkStart(chunk) + chunk_size_, weights_.size()) - 1;
  }

  void SampleFromSpan(size_t lo, size_t hi, size_t count, iqs::Rng* rng,
                      std::vector<size_t>* out) const {
    if (count == 0) return;
    std::vector<double> span_weights(
        weights_.begin() + static_cast<ptrdiff_t>(lo),
        weights_.begin() + static_cast<ptrdiff_t>(hi) + 1);
    iqs::AliasTable table(span_weights);
    for (size_t i = 0; i < count; ++i) out->push_back(lo + table.Sample(rng));
  }

  std::vector<double> keys_;
  std::vector<double> weights_;
  size_t chunk_size_;
  std::vector<iqs::AliasTable> chunk_alias_;
  std::vector<double> chunk_weight_prefix_;
  std::unique_ptr<SeedAugLoop> chunk_level_;
};

// ---------------------------------------------------------------------------

struct Row {
  std::string sampler;
  size_t n = 0;
  size_t batch = 0;
  size_t s = 0;
  double seed_sps = 0.0;
  double single_sps = 0.0;
  double batch_sps = 0.0;
  double speedup_vs_seed = 0.0;
  double speedup_vs_single = 0.0;
};

// Runs `fn` (one whole batch per call) until ~0.2s elapsed, returns
// batches/sec.
template <typename Fn>
double Measure(Fn&& fn) {
  fn();  // warm-up (also grows arena/result buffers to steady state)
  size_t reps = 0;
  const Clock::time_point start = Clock::now();
  double elapsed = 0.0;
  do {
    fn();
    ++reps;
    elapsed = SecondsSince(start);
  } while (elapsed < 0.2);
  return static_cast<double>(reps) / elapsed;
}

}  // namespace

int main() {
  std::printf(
      "E19: batched serving throughput (samples/sec) — seed loop vs "
      "current single loop vs QueryBatch\n");
  std::printf("%-22s %9s %6s %5s %11s %11s %11s %8s %8s\n", "sampler", "n",
              "batch", "s", "seed sps", "single sps", "batch sps", "x seed",
              "x single");

  std::vector<Row> rows;
  for (const size_t n : {size_t{1} << 16, size_t{1} << 20}) {
    iqs::Rng data_rng(1);
    const auto keys = iqs::UniformKeys(n, &data_rng);
    const auto weights = iqs::ZipfWeights(n, 1.0, &data_rng);

    const auto bst = std::make_unique<iqs::BstRangeSampler>(keys, weights);
    const auto aug = std::make_unique<iqs::AugRangeSampler>(keys, weights);
    const auto chunked =
        std::make_unique<iqs::ChunkedRangeSampler>(keys, weights);
    const SeedBstLoop seed_bst(*bst);
    const SeedAugLoop seed_aug(keys, weights);
    const SeedChunkedLoop seed_chunked(keys, weights, chunked->chunk_size());

    struct Lane {
      const iqs::RangeSampler* sampler;
      std::function<void(double, double, size_t, iqs::Rng*,
                         std::vector<size_t>*)>
          seed_query;
    };
    const Lane lanes[3] = {
        {bst.get(),
         [&](double lo, double hi, size_t s, iqs::Rng* rng,
             std::vector<size_t>* out) {
           seed_bst.Query(lo, hi, s, rng, out);
         }},
        {aug.get(),
         [&](double lo, double hi, size_t s, iqs::Rng* rng,
             std::vector<size_t>* out) {
           seed_aug.Query(lo, hi, s, rng, out);
         }},
        {chunked.get(),
         [&](double lo, double hi, size_t s, iqs::Rng* rng,
             std::vector<size_t>* out) {
           seed_chunked.Query(lo, hi, s, rng, out);
         }},
    };

    for (const Lane& lane : lanes) {
      for (const size_t batch : {size_t{64}, size_t{512}}) {
        for (const size_t s : {size_t{16}, size_t{64}, size_t{256}}) {
          // Fixed query set per config: ~n/8-selectivity intervals.
          iqs::Rng query_rng(2);
          std::vector<iqs::BatchQuery> queries;
          for (size_t i = 0; i < batch; ++i) {
            const auto [lo, hi] =
                iqs::IntervalWithSelectivity(keys, n / 8, &query_rng);
            queries.push_back({lo, hi, s});
          }

          iqs::Rng seed_rng(3);
          std::vector<size_t> seed_out;
          const double seed_bps = Measure([&] {
            seed_out.clear();
            for (const iqs::BatchQuery& q : queries) {
              lane.seed_query(q.lo, q.hi, q.s, &seed_rng, &seed_out);
            }
          });

          iqs::Rng single_rng(3);
          std::vector<size_t> single_out;
          const double single_bps = Measure([&] {
            single_out.clear();
            for (const iqs::BatchQuery& q : queries) {
              lane.sampler->Query(q.lo, q.hi, q.s, &single_rng, &single_out);
            }
          });

          iqs::Rng batch_rng(3);
          iqs::ScratchArena arena;
          iqs::BatchResult result;
          const double batch_bps = Measure([&] {
            lane.sampler->QueryBatch(queries, &batch_rng, &arena, &result);
          });

          Row row;
          row.sampler = std::string(lane.sampler->name());
          row.n = n;
          row.batch = batch;
          row.s = s;
          const double spb = static_cast<double>(batch * s);
          row.seed_sps = seed_bps * spb;
          row.single_sps = single_bps * spb;
          row.batch_sps = batch_bps * spb;
          row.speedup_vs_seed = batch_bps / seed_bps;
          row.speedup_vs_single = batch_bps / single_bps;
          rows.push_back(row);

          std::printf(
              "%-22s %9zu %6zu %5zu %11.3e %11.3e %11.3e %7.2fx %7.2fx\n",
              row.sampler.c_str(), n, batch, s, row.seed_sps, row.single_sps,
              row.batch_sps, row.speedup_vs_seed, row.speedup_vs_single);
        }
      }
    }
  }

  std::FILE* json = std::fopen("BENCH_batch_serving.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "[\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(
          json,
          "  {\"sampler\": \"%s\", \"n\": %zu, \"batch\": %zu, \"s\": %zu, "
          "\"seed_sps\": %.6e, \"single_sps\": %.6e, \"batch_sps\": %.6e, "
          "\"speedup_vs_seed\": %.4f, \"speedup_vs_single\": %.4f}%s\n",
          r.sampler.c_str(), r.n, r.batch, r.s, r.seed_sps, r.single_sps,
          r.batch_sps, r.speedup_vs_seed, r.speedup_vs_single,
          i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(json, "]\n");
    std::fclose(json);
    std::printf("\nwrote BENCH_batch_serving.json (%zu rows)\n", rows.size());
  }
  return 0;
}
