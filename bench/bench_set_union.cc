// E8 (Theorem 8): set union sampling in O(g log² n) expected time vs the
// naive O(sum |S_i|) materialize-then-sample baseline.
//
// Series reproduced:
//   * Query time vs g (number of sets named by the query) with set size
//     fixed — the structure grows ~linearly in g with polylog factors,
//     the baseline linearly in g * |S|.
//   * Query time vs |S| (set size) with g fixed — the structure is nearly
//     flat (it never materializes the union), the baseline linear.
//   * Overlap sensitivity: heavy overlap shrinks the union, making the
//     naive baseline's hash-set smaller but not cheaper to build.

#include <set>
#include <vector>

#include "benchmark/benchmark.h"
#include "iqs/setunion/set_union_sampler.h"
#include "iqs/util/rng.h"

namespace {

// `overlap` in [0,1): fraction of each set drawn from a shared core.
std::vector<std::vector<uint64_t>> MakeSets(size_t num_sets, size_t set_size,
                                            double overlap, uint64_t seed) {
  iqs::Rng rng(seed);
  const uint64_t core_size = static_cast<uint64_t>(
      static_cast<double>(set_size) * 2.0);
  std::vector<std::vector<uint64_t>> sets(num_sets);
  uint64_t fresh = 1'000'000;
  for (auto& set : sets) {
    std::set<uint64_t> chosen;
    const size_t from_core = static_cast<size_t>(overlap * set_size);
    while (chosen.size() < from_core) chosen.insert(rng.Below(core_size));
    while (chosen.size() < set_size) chosen.insert(fresh++);
    set.assign(chosen.begin(), chosen.end());
  }
  return sets;
}

void BM_SetUnionVsG(benchmark::State& state) {
  const size_t g = static_cast<size_t>(state.range(0));
  const auto sets = MakeSets(g, 4096, 0.5, 1);
  iqs::Rng build_rng(2);
  const iqs::SetUnionSampler sampler(sets, &build_rng);
  std::vector<size_t> ids(g);
  for (size_t i = 0; i < g; ++i) ids[i] = i;
  iqs::Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Sample(ids, &rng));
  }
}
BENCHMARK(BM_SetUnionVsG)->RangeMultiplier(2)->Range(1, 64);

void BM_NaiveUnionVsG(benchmark::State& state) {
  const size_t g = static_cast<size_t>(state.range(0));
  const auto sets = MakeSets(g, 4096, 0.5, 1);
  std::vector<size_t> ids(g);
  for (size_t i = 0; i < g; ++i) ids[i] = i;
  iqs::Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        iqs::SetUnionSampler::NaiveUnionSample(sets, ids, &rng));
  }
}
BENCHMARK(BM_NaiveUnionVsG)->RangeMultiplier(2)->Range(1, 64);

void BM_SetUnionVsSetSize(benchmark::State& state) {
  const size_t set_size = static_cast<size_t>(state.range(0));
  const auto sets = MakeSets(16, set_size, 0.5, 5);
  iqs::Rng build_rng(6);
  const iqs::SetUnionSampler sampler(sets, &build_rng);
  std::vector<size_t> ids(16);
  for (size_t i = 0; i < 16; ++i) ids[i] = i;
  iqs::Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Sample(ids, &rng));
  }
}
BENCHMARK(BM_SetUnionVsSetSize)
    ->RangeMultiplier(4)
    ->Range(1 << 8, 1 << 16);

void BM_NaiveUnionVsSetSize(benchmark::State& state) {
  const size_t set_size = static_cast<size_t>(state.range(0));
  const auto sets = MakeSets(16, set_size, 0.5, 5);
  std::vector<size_t> ids(16);
  for (size_t i = 0; i < 16; ++i) ids[i] = i;
  iqs::Rng rng(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        iqs::SetUnionSampler::NaiveUnionSample(sets, ids, &rng));
  }
}
BENCHMARK(BM_NaiveUnionVsSetSize)
    ->RangeMultiplier(4)
    ->Range(1 << 8, 1 << 16);

void BM_SetUnionOverlap(benchmark::State& state) {
  const double overlap = static_cast<double>(state.range(0)) / 100.0;
  const auto sets = MakeSets(16, 4096, overlap, 9);
  iqs::Rng build_rng(10);
  const iqs::SetUnionSampler sampler(sets, &build_rng);
  std::vector<size_t> ids(16);
  for (size_t i = 0; i < 16; ++i) ids[i] = i;
  iqs::Rng rng(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Sample(ids, &rng));
  }
}
BENCHMARK(BM_SetUnionOverlap)->Arg(0)->Arg(50)->Arg(90);

}  // namespace

BENCHMARK_MAIN();
