// E3 (Lemma 2 / Theorem 3): 1-d weighted range sampling query time.
//
// Series reproduced:
//   * Query time vs n at fixed s and fixed selectivity — naive grows
//     linearly (it scans S_q), the IQS structures grow ~log n, the basic
//     tree-sampling structure pays an extra log factor per sample.
//   * Query time vs s at fixed n — alias-augmented and chunked grow with
//     slope ~1 sample/O(1), tree-sampling with slope O(log n).
//   * Crossover vs selectivity: naive wins only when |S_q| is tiny.

#include <algorithm>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "benchmark/benchmark.h"
#include "iqs/range/aug_range_sampler.h"
#include "iqs/range/bst_range_sampler.h"
#include "iqs/range/chunked_range_sampler.h"
#include "iqs/range/integer_range_sampler.h"
#include "iqs/range/naive_range_sampler.h"
#include "iqs/sampling/wor_query.h"
#include "iqs/util/distributions.h"
#include "iqs/util/rng.h"

namespace {

enum Kind { kBst = 0, kAug = 1, kChunked = 2, kNaive = 3 };

const char* KindName(int kind) {
  switch (kind) {
    case kBst:
      return "bst";
    case kAug:
      return "aug";
    case kChunked:
      return "chunked";
    default:
      return "naive";
  }
}

struct Dataset {
  std::vector<double> keys;
  std::vector<double> weights;
};

Dataset MakeDataset(size_t n) {
  iqs::Rng rng(42);
  Dataset d;
  d.keys = iqs::UniformKeys(n, &rng);
  d.weights = iqs::ZipfWeights(n, 1.0, &rng);
  return d;
}

std::unique_ptr<iqs::RangeSampler> MakeSampler(int kind, const Dataset& d) {
  switch (kind) {
    case kBst:
      return std::make_unique<iqs::BstRangeSampler>(d.keys, d.weights);
    case kAug:
      return std::make_unique<iqs::AugRangeSampler>(d.keys, d.weights);
    case kChunked:
      return std::make_unique<iqs::ChunkedRangeSampler>(d.keys, d.weights);
    default:
      return std::make_unique<iqs::NaiveRangeSampler>(d.keys, d.weights);
  }
}

// args: {kind, n}; fixed s = 64, selectivity = 10%.
void BM_QueryVsN(benchmark::State& state) {
  const int kind = static_cast<int>(state.range(0));
  const size_t n = static_cast<size_t>(state.range(1));
  const Dataset d = MakeDataset(n);
  const auto sampler = MakeSampler(kind, d);
  iqs::Rng rng(1);
  const size_t result_size = std::max<size_t>(1, n / 10);
  // Pre-generate a pool of query intervals so interval construction stays
  // out of the timed region.
  std::vector<std::pair<double, double>> queries;
  for (int i = 0; i < 64; ++i) {
    queries.push_back(iqs::IntervalWithSelectivity(d.keys, result_size, &rng));
  }
  std::vector<size_t> out;
  size_t next = 0;
  for (auto _ : state) {
    const auto [lo, hi] = queries[next++ % queries.size()];
    out.clear();
    benchmark::DoNotOptimize(sampler->Query(lo, hi, 64, &rng, &out));
  }
  state.SetLabel(KindName(kind));
}
BENCHMARK(BM_QueryVsN)
    ->ArgsProduct({{kBst, kAug, kChunked, kNaive},
                   {1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20}});

// args: {kind, s}; fixed n = 2^18, selectivity = 25%.
void BM_QueryVsS(benchmark::State& state) {
  const int kind = static_cast<int>(state.range(0));
  const size_t s = static_cast<size_t>(state.range(1));
  const size_t n = 1 << 18;
  const Dataset d = MakeDataset(n);
  const auto sampler = MakeSampler(kind, d);
  iqs::Rng rng(2);
  const auto [lo, hi] = iqs::IntervalWithSelectivity(d.keys, n / 4, &rng);
  std::vector<size_t> out;
  for (auto _ : state) {
    out.clear();
    benchmark::DoNotOptimize(sampler->Query(lo, hi, s, &rng, &out));
  }
  state.SetLabel(KindName(kind));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(s));
}
BENCHMARK(BM_QueryVsS)
    ->ArgsProduct({{kBst, kAug, kChunked, kNaive},
                   {1, 16, 256, 4096}});

// args: {kind, result_size}; n fixed, s = 16: where does naive cross over?
void BM_QueryVsSelectivity(benchmark::State& state) {
  const int kind = static_cast<int>(state.range(0));
  const size_t result_size = static_cast<size_t>(state.range(1));
  const size_t n = 1 << 18;
  const Dataset d = MakeDataset(n);
  const auto sampler = MakeSampler(kind, d);
  iqs::Rng rng(3);
  std::vector<std::pair<double, double>> queries;
  for (int i = 0; i < 64; ++i) {
    queries.push_back(iqs::IntervalWithSelectivity(d.keys, result_size, &rng));
  }
  std::vector<size_t> out;
  size_t next = 0;
  for (auto _ : state) {
    const auto [lo, hi] = queries[next++ % queries.size()];
    out.clear();
    benchmark::DoNotOptimize(sampler->Query(lo, hi, 16, &rng, &out));
  }
  state.SetLabel(KindName(kind));
}
BENCHMARK(BM_QueryVsSelectivity)
    ->ArgsProduct({{kChunked, kNaive}, {16, 256, 4096, 65536, 262144}});

// E17: WoR queries (paper §1's second scheme) layered on Theorem 3 —
// sparse regime (WR-dedupe, ~O(log n + s)) vs dense regime (range scan).
void BM_WorQuery(benchmark::State& state) {
  const size_t n = 1 << 18;
  const size_t range = 1 << 12;
  const size_t s = static_cast<size_t>(state.range(0));
  const Dataset d = MakeDataset(n);
  const iqs::ChunkedRangeSampler sampler(d.keys, d.weights);
  iqs::Rng rng(4);
  std::vector<size_t> out;
  const size_t a = n / 3;
  for (auto _ : state) {
    out.clear();
    iqs::WorQueryPositions(sampler, d.weights, a, a + range - 1, s, &rng,
                           &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetLabel(s * 2 > range ? "dense-regime" : "sparse-regime");
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(s));
}
BENCHMARK(BM_WorQuery)->Arg(4)->Arg(64)->Arg(1024)->Arg(3072);

// E18 (§4.3, Afshani–Wei): integer keys drop the interval-resolution term
// from O(log n) binary search to O(log log U) y-fast probes. Measured at
// s = 1, where resolution dominates.
void BM_IntegerResolve(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  iqs::Rng rng(5);
  std::set<uint64_t> distinct;
  while (distinct.size() < n) distinct.insert(rng.Below(uint64_t{1} << 32));
  const std::vector<uint64_t> keys(distinct.begin(), distinct.end());
  const std::vector<double> weights(n, 1.0);
  const iqs::IntegerRangeSampler sampler(keys, weights, 32);
  std::vector<size_t> out;
  for (auto _ : state) {
    const uint64_t lo = rng.Below(uint64_t{1} << 31);
    out.clear();
    benchmark::DoNotOptimize(
        sampler.Query(lo, lo + (uint64_t{1} << 30), 1, &rng, &out));
  }
  state.SetLabel("yfast");
}
BENCHMARK(BM_IntegerResolve)->Range(1 << 12, 1 << 18);

void BM_DoubleKeyResolve(benchmark::State& state) {
  // The comparison-based baseline on the same data, keys as doubles.
  const size_t n = static_cast<size_t>(state.range(0));
  iqs::Rng rng(6);
  std::set<uint64_t> distinct;
  while (distinct.size() < n) distinct.insert(rng.Below(uint64_t{1} << 32));
  std::vector<double> keys;
  for (uint64_t k : distinct) keys.push_back(static_cast<double>(k));
  const std::vector<double> weights(n, 1.0);
  const iqs::ChunkedRangeSampler sampler(keys, weights);
  std::vector<size_t> out;
  for (auto _ : state) {
    const double lo = static_cast<double>(rng.Below(uint64_t{1} << 31));
    out.clear();
    benchmark::DoNotOptimize(
        sampler.Query(lo, lo + 1073741824.0, 1, &rng, &out));
  }
  state.SetLabel("binary-search");
}
BENCHMARK(BM_DoubleKeyResolve)->Range(1 << 12, 1 << 18);

}  // namespace

BENCHMARK_MAIN();
