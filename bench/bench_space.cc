// E4 (Theorem 3 space claim): bytes per element of the three 1-d range
// sampling structures as n grows. The alias-augmented structure (Lemma 2)
// is O(n log n) — its bytes/element column must grow ~linearly in log n —
// while tree-sampling and chunking stay O(n) (flat bytes/element).
//
// This experiment reports sizes, not times, so it prints a table instead
// of using the google-benchmark timing loop.

#include <cstdio>

#include "iqs/range/aug_range_sampler.h"
#include "iqs/range/bst_range_sampler.h"
#include "iqs/range/chunked_range_sampler.h"
#include "iqs/util/distributions.h"
#include "iqs/util/rng.h"

int main() {
  std::printf("E4: space per element (bytes) vs n  [claim: aug ~ c*log n, "
              "bst/chunked flat]\n");
  std::printf("%10s %14s %14s %14s\n", "n", "bst(O(n))", "aug(O(nlogn))",
              "chunked(O(n))");
  for (size_t n = 1 << 12; n <= (1 << 20); n <<= 2) {
    iqs::Rng rng(1);
    const auto keys = iqs::UniformKeys(n, &rng);
    const auto weights = iqs::ZipfWeights(n, 1.0, &rng);
    const iqs::BstRangeSampler bst(keys, weights);
    const iqs::AugRangeSampler aug(keys, weights);
    const iqs::ChunkedRangeSampler chunked(keys, weights);
    std::printf("%10zu %14.1f %14.1f %14.1f\n", n,
                static_cast<double>(bst.MemoryBytes()) / n,
                static_cast<double>(aug.MemoryBytes()) / n,
                static_cast<double>(chunked.MemoryBytes()) / n);
  }
  return 0;
}
