// E2 (Section 3.2 / Lemma 4): tree sampling costs O(height) per sample
// top-down, while the Euler-tour SubtreeSampler is height-independent.
//
// Series reproduced:
//   * Top-down per-sample cost on a balanced tree (height ~log n) vs a
//     comb-shaped tree (height ~n/4): the gap demonstrates the height
//     dependence.
//   * SubtreeSampler per-sample cost on the same comb tree — flat,
//     showing the Lemma-4 reduction removes the height term.

#include <deque>
#include <utility>
#include <vector>

#include "benchmark/benchmark.h"
#include "iqs/tree/subtree_sampler.h"
#include "iqs/tree/tree_sampler.h"
#include "iqs/tree/weighted_tree.h"
#include "iqs/util/rng.h"

namespace {

// Balanced tree with fanout 4 and ~`leaves` leaves, grown breadth-first.
iqs::WeightedTree BalancedTree(size_t leaves) {
  iqs::WeightedTree tree;
  std::deque<iqs::WeightedTree::NodeId> frontier = {tree.root()};
  size_t leaf_count = 1;
  while (leaf_count < leaves) {
    const auto node = frontier.front();
    frontier.pop_front();
    --leaf_count;  // node becomes internal
    for (int c = 0; c < 4; ++c) {
      frontier.push_back(tree.AddChild(node));
      ++leaf_count;
    }
  }
  for (auto node : frontier) tree.SetLeafWeight(node, 1.0);
  tree.Finalize();
  return tree;
}

// Comb: a path of `n` spine nodes, each with one leaf child.
iqs::WeightedTree CombTree(size_t n) {
  iqs::WeightedTree tree;
  iqs::WeightedTree::NodeId spine = tree.root();
  for (size_t i = 0; i < n; ++i) {
    const auto leaf = tree.AddChild(spine);
    tree.SetLeafWeight(leaf, 1.0);
    spine = tree.AddChild(spine);
  }
  tree.SetLeafWeight(spine, 1.0);
  tree.Finalize();
  return tree;
}

void BM_TopDownBalanced(benchmark::State& state) {
  const auto tree = BalancedTree(static_cast<size_t>(state.range(0)));
  const iqs::TreeSampler sampler(&tree);
  iqs::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.SampleLeaf(tree.root(), &rng));
  }
}
BENCHMARK(BM_TopDownBalanced)->Range(1 << 10, 1 << 18);

void BM_TopDownComb(benchmark::State& state) {
  const auto tree = CombTree(static_cast<size_t>(state.range(0)));
  const iqs::TreeSampler sampler(&tree);
  iqs::Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.SampleLeaf(tree.root(), &rng));
  }
}
BENCHMARK(BM_TopDownComb)->Range(1 << 10, 1 << 16);

void BM_SubtreeSamplerComb(benchmark::State& state) {
  const auto tree = CombTree(static_cast<size_t>(state.range(0)));
  const iqs::SubtreeSampler sampler(&tree);
  iqs::Rng rng(3);
  std::vector<iqs::WeightedTree::NodeId> out;
  for (auto _ : state) {
    out.clear();
    sampler.Query(tree.root(), 16, &rng, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_SubtreeSamplerComb)->Range(1 << 10, 1 << 16);

void BM_SubtreeSamplerVsS(benchmark::State& state) {
  const auto tree = BalancedTree(1 << 16);
  const iqs::SubtreeSampler sampler(&tree);
  const size_t s = static_cast<size_t>(state.range(0));
  iqs::Rng rng(4);
  std::vector<iqs::WeightedTree::NodeId> out;
  for (auto _ : state) {
    out.clear();
    sampler.Query(tree.root(), s, &rng, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(s));
}
BENCHMARK(BM_SubtreeSamplerVsS)->RangeMultiplier(4)->Range(1, 1 << 14);

}  // namespace

BENCHMARK_MAIN();
