// E14 (Sections 2 and 7): r-fair nearest neighbor query cost.
//
// Series reproduced:
//   * Query latency vs n for the LSH + set-union-sampling structure vs
//     the exhaustive scan (collect all near points, pick one) and the
//     kd-tree exact-cover IQS disk query. The LSH structure's latency is
//     driven by g ~ #tables, not by n or the number of near points.
//   * Latency vs data clustering (denser neighborhoods make the scan
//     worse, the fair structure flat).

#include <vector>

#include "benchmark/benchmark.h"
#include "iqs/lsh/fair_nn.h"
#include "iqs/multidim/kd_sampler.h"
#include "iqs/util/distributions.h"
#include "iqs/util/rng.h"

namespace {

using iqs::multidim::Distance;
using iqs::multidim::KdTreeSampler;
using iqs::multidim::Point2;

constexpr double kRadius = 0.05;

std::vector<Point2> MakePoints(size_t n, size_t clusters) {
  iqs::Rng rng(14);
  std::vector<Point2> pts;
  pts.reserve(n);
  for (const auto& [x, y] : iqs::Points2D(n, clusters, &rng)) {
    pts.push_back({x, y});
  }
  return pts;
}

void BM_FairNnLsh(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto pts = MakePoints(n, 0);
  iqs::Rng build_rng(1);
  const iqs::FairNearNeighbor fair(pts, kRadius, {}, &build_rng);
  iqs::Rng rng(2);
  for (auto _ : state) {
    const Point2 q{0.1 + 0.8 * rng.NextDouble(), 0.1 + 0.8 * rng.NextDouble()};
    benchmark::DoNotOptimize(fair.QueryIndex(q, &rng));
  }
}
BENCHMARK(BM_FairNnLsh)->Range(1 << 12, 1 << 19);

void BM_FairNnKdTree(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto pts = MakePoints(n, 0);
  const KdTreeSampler sampler(pts, {});
  iqs::Rng rng(3);
  for (auto _ : state) {
    const Point2 q{0.1 + 0.8 * rng.NextDouble(), 0.1 + 0.8 * rng.NextDouble()};
    benchmark::DoNotOptimize(sampler.FairNearNeighbor(q, kRadius, &rng));
  }
}
BENCHMARK(BM_FairNnKdTree)->Range(1 << 12, 1 << 19);

void BM_FairNnScan(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto pts = MakePoints(n, 0);
  iqs::Rng rng(4);
  std::vector<size_t> near;
  for (auto _ : state) {
    const Point2 q{0.1 + 0.8 * rng.NextDouble(), 0.1 + 0.8 * rng.NextDouble()};
    near.clear();
    for (size_t i = 0; i < pts.size(); ++i) {
      if (Distance(pts[i], q) <= kRadius) near.push_back(i);
    }
    if (!near.empty()) {
      benchmark::DoNotOptimize(near[rng.Below(near.size())]);
    }
  }
}
BENCHMARK(BM_FairNnScan)->Range(1 << 12, 1 << 19);

void BM_FairNnLshClustered(benchmark::State& state) {
  const size_t clusters = static_cast<size_t>(state.range(0));
  const auto pts = MakePoints(1 << 17, clusters);
  iqs::Rng build_rng(5);
  const iqs::FairNearNeighbor fair(pts, kRadius, {}, &build_rng);
  iqs::Rng rng(6);
  size_t next = 0;
  for (auto _ : state) {
    const Point2 q = pts[(next += 7919) % pts.size()];  // query near data
    benchmark::DoNotOptimize(fair.QueryIndex(q, &rng));
  }
  state.SetLabel(clusters == 0 ? "uniform" : "clustered");
}
BENCHMARK(BM_FairNnLshClustered)->Arg(0)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
