// E10 (Section 8, Hu et al.): EM WR range sampling I/O cost.
//
// Rows reproduced:
//   * I/Os per query vs s for three strategies on the same B-tree data:
//     pool-based EmRangeSampler, B-tree + naive random access, and
//     report-then-sample. Shapes: ~log + s/B*log vs ~log + s vs
//     ~log + |S_q|/B.
//   * I/Os vs selectivity at fixed s: report-then-sample degrades
//     linearly with |S_q|; the IQS structures don't.

#include <cstdio>
#include <vector>

#include "iqs/em/em_range_sampler.h"
#include "iqs/em/em_weighted_range_sampler.h"
#include "iqs/util/rng.h"

namespace {

using iqs::em::BlockDevice;
using iqs::em::EmArray;
using iqs::em::EmRangeSampler;
using iqs::em::EmWriter;

}  // namespace

int main() {
  const size_t kN = 1 << 17;
  const size_t kB = 64;
  BlockDevice device(kB);
  EmArray data(&device, 1);
  {
    EmWriter writer(&data);
    for (uint64_t i = 0; i < kN; ++i) writer.Append1(i);
    writer.Finish();
  }
  iqs::Rng rng(1);
  EmRangeSampler sampler(&data, 16 * kB, &rng);

  auto measure = [&](auto&& query_fn, size_t repeats) {
    device.ResetCounters();
    for (size_t i = 0; i < repeats; ++i) query_fn();
    return static_cast<double>(device.total_ios()) /
           static_cast<double>(repeats);
  };

  std::printf("E10a: I/Os per query vs s   (n=%zu, B=%zu, range=50%%)\n", kN,
              kB);
  std::printf("%8s %12s %12s %16s\n", "s", "pool", "naive", "report+sample");
  const uint64_t lo = kN / 4;
  const uint64_t hi = 3 * (kN / 4);
  std::vector<uint64_t> out;
  for (size_t s = 16; s <= (1 << 14); s <<= 2) {
    const size_t repeats = std::max<size_t>(4, (1 << 16) / s);
    const double pool = measure(
        [&] {
          out.clear();
          sampler.Query(lo, hi, s, &rng, &out);
        },
        repeats);
    const double naive = measure(
        [&] {
          out.clear();
          sampler.NaiveQuery(lo, hi, s, &rng, &out);
        },
        std::min<size_t>(repeats, 16));
    const double report = measure(
        [&] {
          out.clear();
          sampler.ReportThenSample(lo, hi, s, &rng, &out);
        },
        4);
    std::printf("%8zu %12.1f %12.1f %16.1f\n", s, pool, naive, report);
  }

  std::printf("\nE10b: I/Os per query vs |S_q|   (s=1024)\n");
  std::printf("%10s %12s %16s\n", "|S_q|", "pool", "report+sample");
  for (size_t result = 1 << 10; result <= kN; result <<= 2) {
    const uint64_t a = (kN - result) / 2;
    const uint64_t b = a + result - 1;
    const double pool = measure(
        [&] {
          out.clear();
          sampler.Query(a, b, 1024, &rng, &out);
        },
        32);
    const double report = measure(
        [&] {
          out.clear();
          sampler.ReportThenSample(a, b, 1024, &rng, &out);
        },
        4);
    std::printf("%10zu %12.1f %16.1f\n", result, pool, report);
  }

  // E10c: the WEIGHTED range sampler (library extension; the paper's §8
  // covers only WR). Same sweep as E10a with Zipf-ish weights.
  {
    const size_t wn = kN / 4;
    iqs::em::BlockDevice wdevice(kB);
    iqs::em::EmArray wdata(&wdevice, 2);
    {
      iqs::em::EmWriter writer(&wdata);
      for (uint64_t i = 0; i < wn; ++i) {
        iqs::em::WeightedSamplePool::AppendRecord(
            &writer, i, 1.0 + static_cast<double>(i % 17));
      }
      writer.Finish();
    }
    iqs::Rng wrng(3);
    iqs::em::EmWeightedRangeSampler wsampler(&wdata, 16 * kB, &wrng);
    std::printf("\nE10c: weighted range sampling, I/Os per query vs s   "
                "(n=%zu, B=%zu, range=50%%)\n",
                wn, kB);
    std::printf("%8s %12s %16s\n", "s", "pool", "report+sample");
    const uint64_t wlo = wn / 4;
    const uint64_t whi = 3 * (wn / 4);
    for (size_t s = 16; s <= 4096; s <<= 2) {
      const size_t repeats = std::max<size_t>(4, (1 << 14) / s);
      wdevice.ResetCounters();
      for (size_t i = 0; i < repeats; ++i) {
        out.clear();
        wsampler.Query(wlo, whi, s, &wrng, &out);
      }
      const double pool = static_cast<double>(wdevice.total_ios()) /
                          static_cast<double>(repeats);
      wdevice.ResetCounters();
      for (size_t i = 0; i < 4; ++i) {
        out.clear();
        wsampler.ReportThenSample(wlo, whi, s, &wrng, &out);
      }
      const double report =
          static_cast<double>(wdevice.total_ios()) / 4.0;
      std::printf("%8zu %12.1f %16.1f\n", s, pool, report);
    }
  }
  return 0;
}
