// E20 — multidim batched serving through the shared CoverExecutor.
//
// Sweeps n x s over the three 2-d samplers (kd-tree, quadtree, 2-d range
// tree) and compares, on identical workloads of fixed-selectivity random
// rectangles:
//   * single: looping the established QueryRect path (per-query cover
//             vectors + per-query engine call);
//   * batch:  one QueryBatch call with a reused ScratchArena /
//             PointBatchResult — all queries' covers in one CoverPlan, one
//             CoverExecutor run (multinomial splits + cross-query grouped
//             draws; the range tree additionally coalesces groups by
//             secondary node).
// Both paths draw from identical per-query distributions (see
// batch_serving_test.cc MultidimBatchTest); differences are pure constant
// factors. Reports samples/sec and writes BENCH_multidim_batch.json.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "iqs/multidim/kd_sampler.h"
#include "iqs/multidim/multidim_batch.h"
#include "iqs/multidim/quadtree.h"
#include "iqs/multidim/range_tree.h"
#include "iqs/util/distributions.h"
#include "iqs/util/rng.h"
#include "iqs/util/scratch_arena.h"

namespace {

using Clock = std::chrono::steady_clock;
using iqs::multidim::Point2;
using iqs::multidim::PointBatchResult;
using iqs::multidim::Rect;
using iqs::multidim::RectBatchQuery;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

template <typename Fn>
double Measure(Fn&& fn) {
  fn();  // warm-up (grows arena/result buffers to steady state)
  size_t reps = 0;
  const Clock::time_point start = Clock::now();
  double elapsed = 0.0;
  do {
    fn();
    ++reps;
    elapsed = SecondsSince(start);
  } while (elapsed < 0.2);
  return static_cast<double>(reps) / elapsed;
}

std::vector<Point2> RandomPoints(size_t n, iqs::Rng* rng) {
  std::vector<Point2> points(n);
  for (auto& p : points) {
    p.x = rng->NextDouble();
    p.y = rng->NextDouble();
  }
  return points;
}

struct Row {
  std::string structure;
  size_t n = 0;
  size_t batch = 0;
  size_t s = 0;
  double single_sps = 0.0;
  double batch_sps = 0.0;
  double speedup = 0.0;
};

}  // namespace

int main() {
  std::printf(
      "E20: multidim batched serving throughput (samples/sec) — looped "
      "QueryRect vs QueryBatch over the shared CoverExecutor\n");
  std::printf("%-12s %9s %6s %5s %12s %12s %8s\n", "structure", "n", "batch",
              "s", "single sps", "batch sps", "speedup");

  std::vector<Row> rows;
  const size_t batch = 128;
  for (const size_t n : {size_t{1} << 14, size_t{1} << 17}) {
    iqs::Rng data_rng(1);
    const auto points = RandomPoints(n, &data_rng);
    const auto weights = iqs::ZipfWeights(n, 1.0, &data_rng);

    const iqs::multidim::KdTreeSampler kd(points, weights);
    const iqs::multidim::QuadtreeSampler quad(points, weights);
    const iqs::multidim::RangeTree2DSampler rtree(points, weights);

    struct Lane {
      const char* name;
      std::function<void(const Rect&, size_t, iqs::Rng*,
                         std::vector<Point2>*)>
          single;
      std::function<void(const std::vector<RectBatchQuery>&, iqs::Rng*,
                         iqs::ScratchArena*, PointBatchResult*)>
          batch_call;
    };
    const Lane lanes[3] = {
        {"kd-tree",
         [&](const Rect& q, size_t s, iqs::Rng* rng,
             std::vector<Point2>* out) { kd.QueryRect(q, s, rng, out); },
         [&](const std::vector<RectBatchQuery>& qs, iqs::Rng* rng,
             iqs::ScratchArena* arena, PointBatchResult* result) {
           kd.QueryBatch(qs, rng, arena, result);
         }},
        {"quadtree",
         [&](const Rect& q, size_t s, iqs::Rng* rng,
             std::vector<Point2>* out) { quad.QueryRect(q, s, rng, out); },
         [&](const std::vector<RectBatchQuery>& qs, iqs::Rng* rng,
             iqs::ScratchArena* arena, PointBatchResult* result) {
           quad.QueryBatch(qs, rng, arena, result);
         }},
        {"range-tree",
         [&](const Rect& q, size_t s, iqs::Rng* rng,
             std::vector<Point2>* out) { rtree.QueryRect(q, s, rng, out); },
         [&](const std::vector<RectBatchQuery>& qs, iqs::Rng* rng,
             iqs::ScratchArena* arena, PointBatchResult* result) {
           rtree.QueryBatch(qs, rng, arena, result);
         }},
    };

    for (const Lane& lane : lanes) {
      for (const size_t s : {size_t{16}, size_t{64}, size_t{256}}) {
        // Fixed query set per config: ~1/8-area rectangles, so covers are
        // nontrivial on every structure.
        iqs::Rng query_rng(2);
        const double side = std::sqrt(0.125);
        std::vector<RectBatchQuery> queries;
        for (size_t i = 0; i < batch; ++i) {
          const double x = query_rng.NextDouble() * (1.0 - side);
          const double y = query_rng.NextDouble() * (1.0 - side);
          queries.push_back({Rect{x, x + side, y, y + side}, s});
        }

        iqs::Rng single_rng(3);
        std::vector<Point2> single_out;
        const double single_bps = Measure([&] {
          single_out.clear();
          for (const RectBatchQuery& q : queries) {
            lane.single(q.rect, q.s, &single_rng, &single_out);
          }
        });

        iqs::Rng batch_rng(3);
        iqs::ScratchArena arena;
        PointBatchResult result;
        const double batch_bps = Measure([&] {
          lane.batch_call(queries, &batch_rng, &arena, &result);
        });

        Row row;
        row.structure = lane.name;
        row.n = n;
        row.batch = batch;
        row.s = s;
        const double spb = static_cast<double>(batch * s);
        row.single_sps = single_bps * spb;
        row.batch_sps = batch_bps * spb;
        row.speedup = batch_bps / single_bps;
        rows.push_back(row);

        std::printf("%-12s %9zu %6zu %5zu %12.3e %12.3e %7.2fx\n",
                    row.structure.c_str(), n, batch, s, row.single_sps,
                    row.batch_sps, row.speedup);
      }
    }
  }

  std::FILE* json = std::fopen("BENCH_multidim_batch.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "[\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(json,
                   "  {\"structure\": \"%s\", \"n\": %zu, \"batch\": %zu, "
                   "\"s\": %zu, \"single_sps\": %.6e, \"batch_sps\": %.6e, "
                   "\"speedup\": %.4f}%s\n",
                   r.structure.c_str(), r.n, r.batch, r.s, r.single_sps,
                   r.batch_sps, r.speedup, i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(json, "]\n");
    std::fclose(json);
    std::printf("\nwrote BENCH_multidim_batch.json (%zu rows)\n", rows.size());
  }
  return 0;
}
