// E6 (Theorem 5 on the range tree): 2-d rectangle sampling in O(n log n)
// space and polylog query time — compared head-to-head with the kd-tree
// (O(n) space, O(sqrt n + s) query).
//
// Series reproduced:
//   * Query time vs n at fixed selectivity: range tree grows polylog,
//     kd-tree grows ~sqrt(n); the range tree wins at scale, confirming
//     the paper's space-for-time tradeoff between the two Theorem-5
//     instantiations.
//   * Query time vs s: both additive in s.
//   * Build time / space: the range tree pays O(n log n).

#include <vector>

#include "benchmark/benchmark.h"
#include "iqs/multidim/kd_sampler.h"
#include "iqs/multidim/range_tree.h"
#include "iqs/util/distributions.h"
#include "iqs/util/rng.h"

namespace {

using iqs::multidim::KdTreeSampler;
using iqs::multidim::Point2;
using iqs::multidim::RangeTree2DSampler;
using iqs::multidim::Rect;

std::vector<Point2> MakePoints(size_t n) {
  iqs::Rng rng(6);
  std::vector<Point2> pts;
  pts.reserve(n);
  for (const auto& [x, y] : iqs::Points2D(n, 0, &rng)) pts.push_back({x, y});
  return pts;
}

// Thin slab queries (~2% of the area) highlight the asymptotic gap: the
// kd-tree must open Θ(sqrt n) boundary cells while the range tree resolves
// the x-slab with O(log n) canonical nodes.
std::vector<Rect> MakeSlabs(iqs::Rng* rng, int count) {
  std::vector<Rect> rects;
  for (int i = 0; i < count; ++i) {
    Rect q;
    q.x_lo = rng->NextDouble() * 0.9;
    q.x_hi = q.x_lo + 0.02;
    q.y_lo = 0.0;
    q.y_hi = 1.0;
    rects.push_back(q);
  }
  return rects;
}

void BM_RangeTreeVsN(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto pts = MakePoints(n);
  const RangeTree2DSampler sampler(pts, {});
  iqs::Rng rng(1);
  const auto rects = MakeSlabs(&rng, 32);
  std::vector<Point2> out;
  size_t next = 0;
  for (auto _ : state) {
    out.clear();
    benchmark::DoNotOptimize(
        sampler.QueryRect(rects[next++ % rects.size()], 64, &rng, &out));
  }
}
BENCHMARK(BM_RangeTreeVsN)->Range(1 << 12, 1 << 17);

void BM_KdTreeSlabVsN(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto pts = MakePoints(n);
  const KdTreeSampler sampler(pts, {});
  iqs::Rng rng(2);
  const auto rects = MakeSlabs(&rng, 32);
  std::vector<Point2> out;
  size_t next = 0;
  for (auto _ : state) {
    out.clear();
    benchmark::DoNotOptimize(
        sampler.QueryRect(rects[next++ % rects.size()], 64, &rng, &out));
  }
}
BENCHMARK(BM_KdTreeSlabVsN)->Range(1 << 12, 1 << 17);

void BM_RangeTreeVsS(benchmark::State& state) {
  const auto pts = MakePoints(1 << 16);
  const RangeTree2DSampler sampler(pts, {});
  const size_t s = static_cast<size_t>(state.range(0));
  iqs::Rng rng(3);
  const auto rects = MakeSlabs(&rng, 16);
  std::vector<Point2> out;
  size_t next = 0;
  for (auto _ : state) {
    out.clear();
    benchmark::DoNotOptimize(
        sampler.QueryRect(rects[next++ % rects.size()], s, &rng, &out));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(s));
}
BENCHMARK(BM_RangeTreeVsS)->RangeMultiplier(4)->Range(1, 1 << 12);

void BM_RangeTreeBuild(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto pts = MakePoints(n);
  for (auto _ : state) {
    RangeTree2DSampler sampler(pts, {});
    benchmark::DoNotOptimize(sampler.n());
    state.counters["bytes_per_elem"] =
        static_cast<double>(sampler.MemoryBytes()) / static_cast<double>(n);
  }
}
BENCHMARK(BM_RangeTreeBuild)->Range(1 << 12, 1 << 16)->Unit(
    benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
