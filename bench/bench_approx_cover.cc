// E7 (Theorem 6 / Corollary 7) and E15 (cover sizes): complement range
// sampling with exact vs approximate covers.
//
// Series reproduced:
//   * Cover sizes: the exact canonical cover of S \ [x, y] needs Θ(log n)
//     pieces; the approximate cover needs at most 2 (paper Section 6).
//   * Query time vs n: the approximate path avoids the Θ(log n) alias
//     construction per query and wins for small s despite rejection.
//   * Query time vs s: rejection costs a constant factor per sample.

#include <vector>

#include "benchmark/benchmark.h"
#include "iqs/cover/complement_sampler.h"
#include "iqs/util/distributions.h"
#include "iqs/util/rng.h"

namespace {

std::vector<double> MakeKeys(size_t n) {
  iqs::Rng rng(7);
  return iqs::UniformKeys(n, &rng);
}

// Middle-half exclusions: worst case for the exact cover.
std::vector<std::pair<double, double>> MakeExclusions(
    const std::vector<double>& keys, iqs::Rng* rng, int count) {
  std::vector<std::pair<double, double>> out;
  const size_t n = keys.size();
  for (int i = 0; i < count; ++i) {
    const size_t a = n / 4 + rng->Below(n / 8);
    const size_t b = n / 2 + rng->Below(n / 4);
    out.emplace_back(keys[a], keys[b]);
  }
  return out;
}

void BM_ComplementExact(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t s = static_cast<size_t>(state.range(1));
  const auto keys = MakeKeys(n);
  const iqs::ComplementRangeSampler sampler(keys);
  iqs::Rng rng(1);
  const auto queries = MakeExclusions(keys, &rng, 32);
  std::vector<size_t> out;
  size_t next = 0;
  for (auto _ : state) {
    const auto [lo, hi] = queries[next++ % queries.size()];
    out.clear();
    benchmark::DoNotOptimize(sampler.QueryExact(lo, hi, s, &rng, &out));
  }
}
BENCHMARK(BM_ComplementExact)
    ->ArgsProduct({{1 << 12, 1 << 16, 1 << 20}, {1, 16, 256}});

void BM_ComplementApprox(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t s = static_cast<size_t>(state.range(1));
  const auto keys = MakeKeys(n);
  const iqs::ComplementRangeSampler sampler(keys);
  iqs::Rng rng(2);
  const auto queries = MakeExclusions(keys, &rng, 32);
  std::vector<size_t> out;
  size_t next = 0;
  for (auto _ : state) {
    const auto [lo, hi] = queries[next++ % queries.size()];
    out.clear();
    benchmark::DoNotOptimize(sampler.QueryApprox(lo, hi, s, &rng, &out));
  }
}
BENCHMARK(BM_ComplementApprox)
    ->ArgsProduct({{1 << 12, 1 << 16, 1 << 20}, {1, 16, 256}});

// E15: measured cover sizes, reported as counters (no timing content).
void BM_CoverSizes(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto keys = MakeKeys(n);
  const iqs::ComplementRangeSampler sampler(keys);
  iqs::Rng rng(3);
  double exact_total = 0.0;
  double approx_total = 0.0;
  double exact_max = 0.0;
  int queries = 0;
  for (auto _ : state) {
    const size_t a = n / 4 + rng.Below(n / 4);
    const size_t b = a + rng.Below(n / 4);
    std::vector<iqs::CoverRange> exact;
    std::vector<iqs::CoverRange> approx;
    sampler.BuildExactCover(a, b, &exact);
    sampler.BuildApproxCover(a, b, &approx);
    benchmark::DoNotOptimize(exact.data());
    benchmark::DoNotOptimize(approx.data());
    exact_total += static_cast<double>(exact.size());
    exact_max = std::max(exact_max, static_cast<double>(exact.size()));
    approx_total += static_cast<double>(approx.size());
    ++queries;
  }
  state.counters["exact_avg"] = exact_total / queries;
  state.counters["exact_max"] = exact_max;
  state.counters["approx_avg"] = approx_total / queries;
}
BENCHMARK(BM_CoverSizes)->Range(1 << 12, 1 << 20);

}  // namespace

BENCHMARK_MAIN();
