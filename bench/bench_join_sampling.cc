// E26 — join sampling vs brute-force enumeration + reservoir.
//
// The generality test of the cover pipeline (ISSUE 10 / ROADMAP item 3):
// drawing s i.i.d. uniform pairs from a 2-d rectangle intersection join
// whose result J is never materialized. Two ways to answer the same
// request, same geometry, same budget:
//
//   * brute  — the output-sensitive baseline everyone starts from:
//     plane-sweep ENUMERATION of J feeding a without-replacement-style
//     two-pass uniform pick (join/join_enumerator.h's
//     BruteForceJoinSample). Cost Omega(|J|) per request, and |J| grows
//     quadratically in n at fixed selectivity.
//   * sampler — JoinSampler: phase-1 weighted sweep once at build
//     (O(n log n)-ish, counting J without enumerating it), then each
//     batch pays a replay sweep + alias draws + cover-executor draws —
//     independent of |J|.
//
// The sweep holds join selectivity |J| / (n_R * n_S) near 1.6% (x-extents
// ~2% of the domain, y-extents ~80%, independent uniform corners) and
// doubles n — so |J| runs from ~1e6 to ~4e9 pairs while the per-batch
// budget stays fixed at 64 queries x 32 pairs. Headline: at n = 2^20 the
// sampler answers the batch in milliseconds where brute force pays tens
// of seconds, and even COLD (build + batch, the fair one-shot
// comparison) clears the ISSUE-10 bar of >= 10x. The brute pass runs
// once per n (it IS the cost being demonstrated; repeating it would only
// slow the suite).
//
// Writes BENCH_join_sampling.json (array of row objects).

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "iqs/join/join_batch.h"
#include "iqs/join/join_enumerator.h"
#include "iqs/join/join_sampler.h"
#include "iqs/multidim/point.h"
#include "iqs/util/batch_options.h"
#include "iqs/util/rng.h"
#include "iqs/util/scratch_arena.h"
#include "iqs/util/telemetry.h"

namespace {

constexpr size_t kTotalSizes[] = {1 << 14, 1 << 16, 1 << 18, 1 << 20};
constexpr size_t kQueriesPerBatch = 64;
constexpr size_t kSamplesPerQuery = 32;

// Selectivity-pinning geometry: P(x-overlap) ~ 2%, P(y-overlap) ~ 80%.
constexpr double kDomainX = 1000.0;
constexpr double kMaxWidthX = 20.0;
constexpr double kDomainY = 200.0;
constexpr double kMaxLenY = 160.0;

struct Row {
  size_t n_total = 0;
  uint64_t join_size = 0;
  double selectivity_pct = 0.0;
  uint64_t build_ns = 0;
  uint64_t batch_ns = 0;
  uint64_t brute_ns = 0;
  double speedup_batch = 0.0;  // brute / batch (the steady-state ratio)
  double speedup_cold = 0.0;   // brute / (build + batch) (one-shot ratio)
  size_t memory_bytes = 0;
};

std::vector<iqs::multidim::Rect> MakeRects(size_t n, uint64_t seed) {
  iqs::Rng rng(seed);
  std::vector<iqs::multidim::Rect> rects(n);
  for (iqs::multidim::Rect& rect : rects) {
    rect.x_lo = rng.NextDouble() * kDomainX;
    rect.x_hi = rect.x_lo + rng.NextDouble() * kMaxWidthX;
    rect.y_lo = rng.NextDouble() * kDomainY;
    rect.y_hi = rect.y_lo + rng.NextDouble() * kMaxLenY;
  }
  return rects;
}

void PrintRow(const Row& r) {
  std::printf("%8zu %12" PRIu64 " %7.3f %12" PRIu64 " %12" PRIu64
              " %14" PRIu64 " %10.1f %10.1f %12zu\n",
              r.n_total, r.join_size, r.selectivity_pct, r.build_ns,
              r.batch_ns, r.brute_ns, r.speedup_batch, r.speedup_cold,
              r.memory_bytes);
}

}  // namespace

int main() {
  std::printf(
      "E26: join sampling (JoinSampler, |J| never materialized) vs "
      "brute-force enumeration+reservoir, batch = %zu queries x %zu "
      "pairs, selectivity pinned near 1.6%%\n",
      kQueriesPerBatch, kSamplesPerQuery);
  std::printf("%8s %12s %7s %12s %12s %14s %10s %10s %12s\n", "n_total",
              "join_size", "sel_%", "build_ns", "batch_ns", "brute_ns",
              "spd_batch", "spd_cold", "mem_bytes");

  std::vector<Row> rows;
  for (const size_t n_total : kTotalSizes) {
    const size_t half = n_total / 2;
    const std::vector<iqs::multidim::Rect> rel_r = MakeRects(half, 101);
    const std::vector<iqs::multidim::Rect> rel_s = MakeRects(half, 202);

    Row row;
    row.n_total = n_total;

    const uint64_t build_start = iqs::TelemetryNowNs();
    const iqs::join::JoinSampler sampler(rel_r, rel_s);
    row.build_ns = iqs::TelemetryNowNs() - build_start;
    row.join_size = sampler.JoinSize();
    row.selectivity_pct = 100.0 * static_cast<double>(row.join_size) /
                          (static_cast<double>(half) *
                           static_cast<double>(half));
    row.memory_bytes = sampler.MemoryBytes();

    // One warm batch first (vector capacities, branch predictors), then
    // the timed batch — steady-state serving is the metric.
    const std::vector<iqs::join::JoinBatchQuery> queries(
        kQueriesPerBatch, iqs::join::JoinBatchQuery{kSamplesPerQuery});
    iqs::Rng rng(42);
    iqs::ScratchArena arena;
    iqs::join::JoinBatchResult result;
    sampler.SampleJoinBatch(queries, &rng, &arena, &result);
    const uint64_t batch_start = iqs::TelemetryNowNs();
    sampler.SampleJoinBatch(queries, &rng, &arena, &result);
    row.batch_ns = iqs::TelemetryNowNs() - batch_start;

    // The baseline pays |J| per request: one request, timed once.
    std::vector<iqs::join::JoinPair> brute_out;
    iqs::Rng brute_rng(43);
    const uint64_t brute_start = iqs::TelemetryNowNs();
    iqs::join::BruteForceJoinSample(rel_r, rel_s,
                                    kQueriesPerBatch * kSamplesPerQuery,
                                    &brute_rng, &brute_out);
    row.brute_ns = iqs::TelemetryNowNs() - brute_start;

    row.speedup_batch = static_cast<double>(row.brute_ns) /
                        static_cast<double>(row.batch_ns);
    row.speedup_cold = static_cast<double>(row.brute_ns) /
                       static_cast<double>(row.build_ns + row.batch_ns);
    rows.push_back(row);
    PrintRow(row);
  }

  std::FILE* json = std::fopen("BENCH_join_sampling.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "[\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(
          json,
          "  {\"n_total\": %zu, \"join_size\": %" PRIu64
          ", \"selectivity_pct\": %.4f, \"build_ns\": %" PRIu64
          ", \"batch_ns\": %" PRIu64 ", \"brute_ns\": %" PRIu64
          ", \"speedup_batch\": %.2f, \"speedup_cold\": %.2f, "
          "\"memory_bytes\": %zu}%s\n",
          r.n_total, r.join_size, r.selectivity_pct, r.build_ns, r.batch_ns,
          r.brute_ns, r.speedup_batch, r.speedup_cold, r.memory_bytes,
          i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(json, "]\n");
    std::fclose(json);
    std::printf("\nwrote BENCH_join_sampling.json (%zu rows)\n", rows.size());
  }
  return 0;
}
