// E21 — parallel batch serving (BatchOptions{num_threads}).
//
// Sweeps threads x n x s over the three 1-d RangeSampler implementations,
// comparing the sequential QueryBatch path (num_threads = 0) against the
// deterministic parallel mode at 1, 2, 4 and 8 threads with a persistent
// ThreadPool (the recommended serving setup: pool construction is paid
// once, not per batch). The parallel mode re-keys every query onto its own
// RNG substream, so its output is bit-identical for every thread count;
// the sweep measures the pure scheduling + sharding cost/benefit.
//
// threads = 1 isolates the overhead of the substream mode itself
// (ForkStream per query, two-pass split/draw) with no parallelism; the
// speedup column for k >= 2 divides by that one-thread parallel-mode
// baseline so it reflects scaling, while "x seq" compares against the
// sequential path a caller would otherwise use.
//
// Reports samples/sec and writes BENCH_parallel_serving.json (array of
// row objects) for trajectory tracking.

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "iqs/range/aug_range_sampler.h"
#include "iqs/range/bst_range_sampler.h"
#include "iqs/range/chunked_range_sampler.h"
#include "iqs/range/range_sampler.h"
#include "iqs/util/batch_options.h"
#include "iqs/util/distributions.h"
#include "iqs/util/rng.h"
#include "iqs/util/scratch_arena.h"
#include "iqs/util/thread_pool.h"

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Runs `fn` (one whole batch per call) until ~0.2s elapsed, returns
// batches/sec.
template <typename Fn>
double Measure(Fn&& fn) {
  fn();  // warm-up (also grows arena/result buffers to steady state)
  size_t reps = 0;
  const Clock::time_point start = Clock::now();
  double elapsed = 0.0;
  do {
    fn();
    ++reps;
    elapsed = SecondsSince(start);
  } while (elapsed < 0.2);
  return static_cast<double>(reps) / elapsed;
}

struct Row {
  std::string sampler;
  size_t n = 0;
  size_t batch = 0;
  size_t s = 0;
  size_t threads = 0;  // 0 = sequential legacy path
  double sps = 0.0;
  double speedup_vs_seq = 0.0;
  double speedup_vs_t1 = 0.0;
};

}  // namespace

int main() {
  constexpr size_t kThreadCounts[] = {1, 2, 4, 8};
  constexpr size_t kBatch = 256;

  std::printf(
      "E21: parallel batch serving throughput (samples/sec) — sequential "
      "QueryBatch vs BatchOptions{num_threads} with a persistent pool\n");
  std::printf("%-22s %9s %6s %5s %8s %11s %7s %7s\n", "sampler", "n", "batch",
              "s", "threads", "sps", "x seq", "x t1");

  std::vector<Row> rows;
  for (const size_t n : {size_t{1} << 16, size_t{1} << 20}) {
    iqs::Rng data_rng(1);
    const auto keys = iqs::UniformKeys(n, &data_rng);
    const auto weights = iqs::ZipfWeights(n, 1.0, &data_rng);

    const auto bst = std::make_unique<iqs::BstRangeSampler>(keys, weights);
    const auto aug = std::make_unique<iqs::AugRangeSampler>(keys, weights);
    const auto chunked =
        std::make_unique<iqs::ChunkedRangeSampler>(keys, weights);
    const iqs::RangeSampler* samplers[3] = {bst.get(), aug.get(),
                                            chunked.get()};

    for (const iqs::RangeSampler* sampler : samplers) {
      for (const size_t s : {size_t{64}, size_t{256}}) {
        // Fixed query set per config: ~n/8-selectivity intervals.
        iqs::Rng query_rng(2);
        std::vector<iqs::BatchQuery> queries;
        for (size_t i = 0; i < kBatch; ++i) {
          const auto [lo, hi] =
              iqs::IntervalWithSelectivity(keys, n / 8, &query_rng);
          queries.push_back({lo, hi, s});
        }
        const double spb = static_cast<double>(kBatch * s);

        iqs::Rng seq_rng(3);
        iqs::ScratchArena arena;
        iqs::BatchResult result;
        const double seq_bps = Measure([&] {
          sampler->QueryBatch(queries, &seq_rng, &arena, &result);
        });
        Row seq_row;
        seq_row.sampler = std::string(sampler->name());
        seq_row.n = n;
        seq_row.batch = kBatch;
        seq_row.s = s;
        seq_row.threads = 0;
        seq_row.sps = seq_bps * spb;
        seq_row.speedup_vs_seq = 1.0;
        rows.push_back(seq_row);
        std::printf("%-22s %9zu %6zu %5zu %8s %11.3e %7s %7s\n",
                    seq_row.sampler.c_str(), n, kBatch, s, "seq", seq_row.sps,
                    "-", "-");

        double t1_bps = 0.0;
        for (const size_t threads : kThreadCounts) {
          iqs::ThreadPool pool(threads);
          iqs::BatchOptions opts;
          opts.num_threads = threads;
          opts.pool = &pool;
          iqs::Rng par_rng(3);
          const double par_bps = Measure([&] {
            sampler->QueryBatch(queries, &par_rng, &arena, opts, &result);
          });
          if (threads == 1) t1_bps = par_bps;

          Row row;
          row.sampler = std::string(sampler->name());
          row.n = n;
          row.batch = kBatch;
          row.s = s;
          row.threads = threads;
          row.sps = par_bps * spb;
          row.speedup_vs_seq = par_bps / seq_bps;
          row.speedup_vs_t1 = par_bps / t1_bps;
          rows.push_back(row);
          std::printf("%-22s %9zu %6zu %5zu %8zu %11.3e %6.2fx %6.2fx\n",
                      row.sampler.c_str(), n, kBatch, s, threads, row.sps,
                      row.speedup_vs_seq, row.speedup_vs_t1);
        }
      }
    }
  }

  std::FILE* json = std::fopen("BENCH_parallel_serving.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "[\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(
          json,
          "  {\"sampler\": \"%s\", \"n\": %zu, \"batch\": %zu, \"s\": %zu, "
          "\"threads\": %zu, \"sps\": %.6e, \"speedup_vs_seq\": %.4f, "
          "\"speedup_vs_t1\": %.4f}%s\n",
          r.sampler.c_str(), r.n, r.batch, r.s, r.threads, r.sps,
          r.speedup_vs_seq, r.speedup_vs_t1, i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(json, "]\n");
    std::fclose(json);
    std::printf("\nwrote BENCH_parallel_serving.json (%zu rows)\n",
                rows.size());
  }
  return 0;
}
