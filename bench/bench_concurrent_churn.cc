// E24 — concurrent serving under churn: epoch snapshots vs stop-the-world.
//
// Measures what the epoch layer (util/epoch.h) buys at the serving
// boundary: reader batches against LogarithmicRangeSampler::QueryBatch
// and DynamicAlias::SampleBatch while a background writer churns the
// structure (inserts into a disjoint key range; same-weight SetWeight).
// Two serving disciplines over the SAME structure:
//
//   * epoch — the structure's native path: every reader batch pins one
//     snapshot and never blocks; the writer publishes versions.
//   * stw   — a std::shared_mutex gate bolted on top (readers
//     shared_lock, writer unique_lock), reproducing the pre-epoch
//     discipline where a merge/rebuild excludes every reader for its
//     full duration.
//
// Reported per config: aggregate reader samples/sec, and the merged
// per-batch latency histogram's p50 / p99 / max — the p99 gap under
// churn is the headline number (STW readers stall behind the large
// power-of-two Bentley-Saxe rebuilds; epoch readers do not).
//
// Caveat for trajectory diffing: on a single-core CI box the threads
// timeshare, so absolute throughput does NOT show reader scaling; the
// tail-latency split between the two disciplines is the robust signal.
//
// Writes BENCH_concurrent_churn.json (array of row objects).

#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "iqs/alias/dynamic_alias.h"
#include "iqs/range/logarithmic_range_sampler.h"
#include "iqs/util/rng.h"
#include "iqs/util/scratch_arena.h"
#include "iqs/util/telemetry.h"

namespace {

using Clock = std::chrono::steady_clock;

constexpr double kRunSeconds = 0.3;
constexpr size_t kLogPrepopulate = 1 << 14;
constexpr size_t kAliasPrepopulate = 1 << 12;
constexpr size_t kBatchQueries = 64;
constexpr size_t kSamplesPerQuery = 64;
constexpr size_t kAliasBatch = kBatchQueries * kSamplesPerQuery;

struct Row {
  std::string structure;
  std::string mode;  // "epoch" | "stw"
  size_t readers = 0;
  bool churn = false;
  double reader_sps = 0.0;
  uint64_t batches = 0;
  uint64_t p50_ns = 0;
  uint64_t p99_ns = 0;
  uint64_t max_ns = 0;
  uint64_t writer_ops = 0;
};

// One serving experiment: `reader_batch(rng, histogram)` runs one whole
// batch and records its latency; `writer_op(op_index)` is one churn op
// (no-op lambda when churn is off). Returns batches served per reader
// plus the merged latency histogram and achieved writer-op count.
template <typename ReaderFn, typename WriterFn>
Row RunConfig(const char* structure, const char* mode, size_t readers,
              bool churn, size_t samples_per_batch, ReaderFn&& reader_batch,
              WriterFn&& writer_op) {
  std::atomic<bool> stop{false};
  std::vector<iqs::LatencyHistogram> latencies(readers);
  std::vector<uint64_t> batch_counts(readers, 0);
  std::vector<std::thread> threads;
  threads.reserve(readers + 1);
  for (size_t r = 0; r < readers; ++r) {
    threads.emplace_back([&, r] {
      iqs::Rng rng(1000 + static_cast<uint64_t>(r));
      while (!stop.load(std::memory_order_relaxed)) {
        const Clock::time_point t0 = Clock::now();
        reader_batch(&rng, r);
        const uint64_t ns = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                 t0)
                .count());
        latencies[r].Record(ns);
        ++batch_counts[r];
        // Cede the core at each batch boundary: a closed saturation loop
        // on an oversubscribed box would otherwise starve the writer (and
        // each other), measuring the scheduler instead of the structures.
        std::this_thread::yield();
      }
    });
  }
  uint64_t writer_ops = 0;
  if (churn) {
    threads.emplace_back([&] {
      uint64_t op = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        writer_op(op);
        ++op;
        // Pace the writer: churn should contend with readers, not
        // monopolize the core on a 1-cpu box.
        if ((op & 0x3f) == 0) std::this_thread::yield();
      }
      writer_ops = op;
    });
  }

  const Clock::time_point start = Clock::now();
  std::this_thread::sleep_for(std::chrono::duration<double>(kRunSeconds));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : threads) t.join();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();

  Row row;
  row.structure = structure;
  row.mode = mode;
  row.readers = readers;
  row.churn = churn;
  iqs::LatencyHistogram merged;
  for (size_t r = 0; r < readers; ++r) {
    merged.MergeFrom(latencies[r]);
    row.batches += batch_counts[r];
  }
  row.reader_sps =
      static_cast<double>(row.batches * samples_per_batch) / elapsed;
  row.p50_ns = merged.PercentileUpperBoundNs(0.50);
  row.p99_ns = merged.PercentileUpperBoundNs(0.99);
  row.max_ns = merged.max_ns();
  row.writer_ops = writer_ops;
  return row;
}

void PrintRow(const Row& r) {
  std::printf("%-12s %-6s %7zu %6s %11.3e %8" PRIu64 " %10" PRIu64
              " %10" PRIu64 " %11" PRIu64 " %10" PRIu64 "\n",
              r.structure.c_str(), r.mode.c_str(), r.readers,
              r.churn ? "yes" : "no", r.reader_sps, r.batches, r.p50_ns,
              r.p99_ns, r.max_ns, r.writer_ops);
}

}  // namespace

int main() {
  std::printf(
      "E24: serving under churn — epoch snapshots vs stop-the-world "
      "shared_mutex gate (single-core box: tail latency, not throughput "
      "scaling, is the signal)\n");
  std::printf("%-12s %-6s %7s %6s %11s %8s %10s %10s %11s %10s\n", "structure",
              "mode", "readers", "churn", "reader_sps", "batches", "p50_ns",
              "p99_ns", "max_ns", "writer_ops");

  std::vector<Row> rows;

  // ---- LogarithmicRangeSampler: QueryBatch readers vs Insert churn ----
  {
    iqs::LogarithmicRangeSampler sampler;
    iqs::Rng prep(42);
    for (size_t i = 0; i < kLogPrepopulate; ++i) {
      sampler.Insert(static_cast<double>(i) /
                         static_cast<double>(kLogPrepopulate),
                     0.5 + prep.NextDouble());
    }
    // Fixed query set over the prepopulated keys; churn inserts land in
    // [2, 3) so the served law never changes.
    iqs::Rng qrng(7);
    std::vector<iqs::KeyBatchQuery> queries;
    for (size_t i = 0; i < kBatchQueries; ++i) {
      const double lo = qrng.NextDouble() * 0.8;
      queries.push_back({lo, lo + qrng.NextDouble() * 0.2, kSamplesPerQuery});
    }
    std::shared_mutex gate;
    std::atomic<uint64_t> next_churn_key{0};
    // Per-reader scratch lives outside the loop lambdas so steady-state
    // batches reuse capacity (2 readers max).
    iqs::ScratchArena arenas[2];
    iqs::KeyBatchResult results[2];

    // Keys must stay globally distinct ACROSS configs, so draw from one
    // shared counter rather than the per-config op index.
    const auto churn_insert = [&](uint64_t) {
      const uint64_t k = next_churn_key.fetch_add(1);
      sampler.Insert(2.0 + static_cast<double>(k) * 1e-7, 1.0);
    };
    const auto churn_insert_stw = [&](uint64_t op) {
      std::unique_lock lock(gate);
      churn_insert(op);
    };
    for (const size_t readers : {size_t{1}, size_t{2}}) {
      for (const bool churn : {false, true}) {
        rows.push_back(RunConfig(
            "log_sampler", "epoch", readers, churn,
            kBatchQueries * kSamplesPerQuery,
            [&](iqs::Rng* rng, size_t r) {
              sampler.QueryBatch(queries, rng, &arenas[r], &results[r]);
            },
            churn_insert));
        PrintRow(rows.back());
        rows.push_back(RunConfig(
            "log_sampler", "stw", readers, churn,
            kBatchQueries * kSamplesPerQuery,
            [&](iqs::Rng* rng, size_t r) {
              std::shared_lock lock(gate);
              sampler.QueryBatch(queries, rng, &arenas[r], &results[r]);
            },
            churn_insert_stw));
        PrintRow(rows.back());
      }
    }
  }

  // ---- DynamicAlias: SampleBatch readers vs SetWeight churn ----
  {
    iqs::DynamicAlias alias;
    iqs::Rng prep(99);
    std::vector<size_t> handles;
    std::vector<double> weights;
    for (size_t i = 0; i < kAliasPrepopulate; ++i) {
      weights.push_back(0.5 + prep.NextDouble());
      handles.push_back(alias.Insert(weights.back()));
    }
    std::shared_mutex gate;
    std::vector<size_t> outs[2];

    // Same-weight SetWeight: a full publish cycle per op, law unchanged.
    const auto churn_setweight = [&](uint64_t op) {
      const size_t i = static_cast<size_t>(op % handles.size());
      alias.SetWeight(handles[i], weights[i]);
    };
    const auto churn_setweight_stw = [&](uint64_t op) {
      std::unique_lock lock(gate);
      churn_setweight(op);
    };
    for (const size_t readers : {size_t{1}, size_t{2}}) {
      for (const bool churn : {false, true}) {
        rows.push_back(RunConfig(
            "dyn_alias", "epoch", readers, churn, kAliasBatch,
            [&](iqs::Rng* rng, size_t r) {
              outs[r].clear();
              alias.SampleBatch(kAliasBatch, rng, &outs[r]);
            },
            churn_setweight));
        PrintRow(rows.back());
        rows.push_back(RunConfig(
            "dyn_alias", "stw", readers, churn, kAliasBatch,
            [&](iqs::Rng* rng, size_t r) {
              std::shared_lock lock(gate);
              outs[r].clear();
              alias.SampleBatch(kAliasBatch, rng, &outs[r]);
            },
            churn_setweight_stw));
        PrintRow(rows.back());
      }
    }
  }

  std::FILE* json = std::fopen("BENCH_concurrent_churn.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "[\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(
          json,
          "  {\"structure\": \"%s\", \"mode\": \"%s\", \"readers\": %zu, "
          "\"churn\": %s, \"reader_sps\": %.6e, \"batches\": %" PRIu64
          ", \"p50_ns\": %" PRIu64 ", \"p99_ns\": %" PRIu64
          ", \"max_ns\": %" PRIu64 ", \"writer_ops\": %" PRIu64 "}%s\n",
          r.structure.c_str(), r.mode.c_str(), r.readers,
          r.churn ? "true" : "false", r.reader_sps, r.batches, r.p50_ns,
          r.p99_ns, r.max_ns, r.writer_ops,
          i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(json, "]\n");
    std::fclose(json);
    std::printf("\nwrote BENCH_concurrent_churn.json (%zu rows)\n",
                rows.size());
  }
  return 0;
}
