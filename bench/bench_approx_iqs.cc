// E13 (Section 9, Direction 4): approximate (epsilon-uniform) IQS.
//
// Table reproduced: space per element and worst-case probability
// deviation of the quantized alias structure vs the exact alias table,
// plus per-sample latency for both. The claim: a 2^-15-uniform guarantee
// costs 6 bytes/element instead of 16 with no sampling slowdown.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <vector>

#include "iqs/alias/alias_table.h"
#include "iqs/alias/quantized_alias.h"
#include "iqs/util/distributions.h"
#include "iqs/util/rng.h"

namespace {

double MeasureNsPerSample(const auto& table, iqs::Rng* rng, size_t draws) {
  uint64_t sink = 0;
  const auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < draws; ++i) sink += table.Sample(rng);
  const auto stop = std::chrono::steady_clock::now();
  // Keep `sink` alive.
  if (sink == 0xdeadbeef) std::printf("!");
  return std::chrono::duration<double, std::nano>(stop - start).count() /
         static_cast<double>(draws);
}

}  // namespace

int main() {
  std::printf("E13: exact vs quantized alias (near-uniform weights)\n");
  std::printf("%10s %14s %14s %14s %14s %16s\n", "n", "exact B/elem",
              "quant B/elem", "exact ns", "quant ns", "max rel err");
  for (size_t n = 1 << 10; n <= (1 << 20); n <<= 2) {
    iqs::Rng rng(1);
    // Jittered weights: probabilities are ~1/n but no longer quantize
    // exactly, so the error column reflects real rounding.
    std::vector<double> weights(n);
    for (double& w : weights) w = 0.9 + 0.2 * rng.NextDouble();
    const iqs::AliasTable exact(weights);
    const iqs::QuantizedAlias quantized(weights);

    // Worst-case relative deviation from w_i/W across a sampled subset of
    // elements (AssignedProbability is O(n), so probe 64 positions).
    double total_weight = 0.0;
    for (double w : weights) total_weight += w;
    double max_rel_err = 0.0;
    for (size_t probe = 0; probe < 64; ++probe) {
      const size_t i = rng.Below(n);
      const double p = quantized.AssignedProbability(i);
      const double target = weights[i] / total_weight;
      max_rel_err = std::max(max_rel_err, std::abs(p / target - 1.0));
    }

    const double exact_ns = MeasureNsPerSample(exact, &rng, 2'000'000);
    const double quant_ns = MeasureNsPerSample(quantized, &rng, 2'000'000);
    std::printf("%10zu %14.1f %14.1f %14.2f %14.2f %16.2e\n", n,
                static_cast<double>(exact.MemoryBytes()) / n,
                static_cast<double>(quantized.MemoryBytes()) / n, exact_ns,
                quant_ns, max_rel_err);
  }
  std::printf("\nClaim: quant B/elem ~ 6 vs 16; max rel err <= 2^-15 = "
              "%.2e; same ns/sample.\n",
              std::pow(2.0, -15));
  return 0;
}
