// Ablations for the design choices DESIGN.md calls out:
//   * A1 — Theorem 3 chunk size: the theory picks Θ(log n); sweep the
//     constant to show the time/space trade-off (tiny chunks degrade to
//     Lemma-2 space, huge chunks degrade toward naive scanning of the
//     boundary chunks).
//   * A2 — range tree primary leaf size: fat leaves shrink space, at a
//     per-query scan cost.
//   * A3 — kd-tree disk approximate-cover slack (Theorem 6): smaller
//     slack -> bigger cover but higher acceptance; larger slack -> tiny
//     cover but more rejections.
//   * A4 — kd-tree dimensionality: query cost grows like n^{1-1/d}
//     (paper Section 5).

#include <vector>

#include "benchmark/benchmark.h"
#include "iqs/multidim/kd_sampler.h"
#include "iqs/multidim/kd_tree_nd.h"
#include "iqs/multidim/range_tree.h"
#include "iqs/range/chunked_range_sampler.h"
#include "iqs/util/distributions.h"
#include "iqs/util/rng.h"

namespace {

void BM_ChunkSizeAblation(benchmark::State& state) {
  const size_t chunk = static_cast<size_t>(state.range(0));
  const size_t n = 1 << 18;
  iqs::Rng rng(1);
  const auto keys = iqs::UniformKeys(n, &rng);
  const auto weights = iqs::ZipfWeights(n, 1.0, &rng);
  const iqs::ChunkedRangeSampler sampler(keys, weights, chunk);
  std::vector<std::pair<double, double>> queries;
  for (int i = 0; i < 64; ++i) {
    queries.push_back(iqs::IntervalWithSelectivity(keys, n / 8, &rng));
  }
  std::vector<size_t> out;
  size_t next = 0;
  for (auto _ : state) {
    const auto [lo, hi] = queries[next++ % queries.size()];
    out.clear();
    benchmark::DoNotOptimize(sampler.Query(lo, hi, 64, &rng, &out));
  }
  state.counters["bytes_per_elem"] =
      static_cast<double>(sampler.MemoryBytes()) / static_cast<double>(n);
}
BENCHMARK(BM_ChunkSizeAblation)->Arg(2)->Arg(4)->Arg(18)->Arg(64)->Arg(512)
    ->Arg(4096);

void BM_RangeTreeLeafAblation(benchmark::State& state) {
  const size_t leaf = static_cast<size_t>(state.range(0));
  const size_t n = 1 << 15;
  iqs::Rng rng(2);
  std::vector<iqs::multidim::Point2> pts;
  for (const auto& [x, y] : iqs::Points2D(n, 0, &rng)) pts.push_back({x, y});
  const iqs::multidim::RangeTree2DSampler sampler(pts, {}, leaf);
  std::vector<iqs::multidim::Point2> out;
  for (auto _ : state) {
    const double x = rng.NextDouble() * 0.8;
    const double y = rng.NextDouble() * 0.8;
    out.clear();
    benchmark::DoNotOptimize(sampler.QueryRect(
        {x, x + 0.15, y, y + 0.15}, 64, &rng, &out));
  }
  state.counters["bytes_per_elem"] =
      static_cast<double>(sampler.MemoryBytes()) / static_cast<double>(n);
}
BENCHMARK(BM_RangeTreeLeafAblation)->Arg(1)->Arg(4)->Arg(16)->Arg(64)
    ->Arg(256);

void BM_DiskSlackAblation(benchmark::State& state) {
  const double slack = static_cast<double>(state.range(0)) / 100.0;
  const size_t n = 1 << 17;
  iqs::Rng rng(3);
  std::vector<iqs::multidim::Point2> pts;
  for (const auto& [x, y] : iqs::Points2D(n, 0, &rng)) pts.push_back({x, y});
  const iqs::multidim::KdTreeSampler sampler(pts, {});
  std::vector<iqs::multidim::Point2> out;
  for (auto _ : state) {
    const iqs::multidim::Point2 center{0.2 + 0.6 * rng.NextDouble(),
                                       0.2 + 0.6 * rng.NextDouble()};
    out.clear();
    benchmark::DoNotOptimize(
        sampler.QueryDiskApprox(center, 0.1, 64, slack, &rng, &out));
  }
}
BENCHMARK(BM_DiskSlackAblation)->Arg(10)->Arg(25)->Arg(50)->Arg(100)
    ->Arg(200);

void BM_KdDimensionAblation(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  const size_t n = 1 << 16;
  iqs::Rng rng(4);
  std::vector<double> coords(n * dim);
  for (double& c : coords) c = rng.NextDouble();
  const iqs::multidim::KdTreeNdSampler sampler(dim, coords, {});
  std::vector<size_t> out;
  for (auto _ : state) {
    iqs::multidim::BoxNd q(dim);
    // ~25% selectivity regardless of d: side = 0.25^(1/d).
    const double side = std::pow(0.25, 1.0 / static_cast<double>(dim));
    for (size_t k = 0; k < dim; ++k) {
      const double lo = rng.NextDouble() * (1.0 - side);
      q.set(k, lo, lo + side);
    }
    out.clear();
    benchmark::DoNotOptimize(sampler.QueryBox(q, 64, &rng, &out));
  }
}
BENCHMARK(BM_KdDimensionAblation)->Arg(1)->Arg(2)->Arg(3)->Arg(4)->Arg(6);

}  // namespace

BENCHMARK_MAIN();
