// E12 (Section 9, Direction 1): dynamizing the alias method.
//
// Series reproduced:
//   * Sample latency vs n: DynamicAlias stays ~flat (expected O(1)),
//     FenwickSampler grows with log n, and the rebuild-on-every-update
//     static AliasTable is hopeless under churn.
//   * Update latency vs n: DynamicAlias O(1) amortized vs Fenwick
//     O(log n) vs static rebuild O(n).
//   * Mixed workload throughput (90% samples / 10% weight updates).

#include <vector>

#include "benchmark/benchmark.h"
#include "iqs/alias/alias_table.h"
#include "iqs/alias/dynamic_alias.h"
#include "iqs/alias/fenwick_sampler.h"
#include "iqs/range/dynamic_range_sampler.h"
#include "iqs/range/logarithmic_range_sampler.h"
#include "iqs/util/distributions.h"
#include "iqs/util/rng.h"

namespace {

std::vector<double> MakeWeights(size_t n) {
  iqs::Rng rng(9);
  return iqs::ZipfWeights(n, 1.0, &rng);
}

void BM_DynamicAliasSample(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto weights = MakeWeights(n);
  iqs::DynamicAlias alias;
  for (double w : weights) alias.Insert(w);
  iqs::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(alias.Sample(&rng));
  }
}
BENCHMARK(BM_DynamicAliasSample)->Range(1 << 10, 1 << 22);

void BM_DynamicAliasUpdate(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto weights = MakeWeights(n);
  iqs::DynamicAlias alias;
  std::vector<size_t> handles;
  for (double w : weights) handles.push_back(alias.Insert(w));
  iqs::Rng rng(2);
  for (auto _ : state) {
    const size_t h = handles[rng.Below(handles.size())];
    alias.SetWeight(h, 0.5 + rng.NextDouble());
  }
}
BENCHMARK(BM_DynamicAliasUpdate)->Range(1 << 10, 1 << 22);

void BM_FenwickUpdate(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  iqs::FenwickSampler sampler(MakeWeights(n));
  iqs::Rng rng(3);
  for (auto _ : state) {
    sampler.SetWeight(rng.Below(n), 0.5 + rng.NextDouble());
  }
}
BENCHMARK(BM_FenwickUpdate)->Range(1 << 10, 1 << 22);

void BM_StaticRebuildUpdate(benchmark::State& state) {
  // The strawman the paper implies: a static alias table must be rebuilt
  // on every weight change.
  const size_t n = static_cast<size_t>(state.range(0));
  auto weights = MakeWeights(n);
  iqs::Rng rng(4);
  for (auto _ : state) {
    weights[rng.Below(n)] = 0.5 + rng.NextDouble();
    iqs::AliasTable table(weights);
    benchmark::DoNotOptimize(table);
  }
}
BENCHMARK(BM_StaticRebuildUpdate)->Range(1 << 10, 1 << 16);

// Dynamic weighted RANGE sampling (treap, Section 4.3 gap-filler):
// query and update latency vs n.
void BM_TreapRangeQuery(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  iqs::Rng rng(11);
  iqs::DynamicRangeSampler sampler(&rng);
  for (size_t i = 0; i < n; ++i) {
    sampler.Insert(rng.NextDouble(), 0.5 + rng.NextDouble());
  }
  std::vector<double> out;
  for (auto _ : state) {
    const double lo = rng.NextDouble() * 0.5;
    out.clear();
    benchmark::DoNotOptimize(sampler.Query(lo, lo + 0.25, 16, &rng, &out));
  }
}
BENCHMARK(BM_TreapRangeQuery)->Range(1 << 10, 1 << 20);

void BM_TreapUpdate(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  iqs::Rng rng(12);
  iqs::DynamicRangeSampler sampler(&rng);
  std::vector<double> keys;
  for (size_t i = 0; i < n; ++i) {
    keys.push_back(rng.NextDouble());
    sampler.Insert(keys.back(), 1.0);
  }
  for (auto _ : state) {
    const double key = keys[rng.Below(keys.size())];
    sampler.Delete(key);
    sampler.Insert(key, 0.5 + rng.NextDouble());
  }
}
BENCHMARK(BM_TreapUpdate)->Range(1 << 10, 1 << 20);

// Bentley-Saxe logarithmic method (insert-only Theorem 3): insert
// throughput and query latency vs the treap.
void BM_LogarithmicInsert(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  iqs::Rng rng(13);
  for (auto _ : state) {
    state.PauseTiming();
    iqs::LogarithmicRangeSampler sampler;
    state.ResumeTiming();
    for (size_t i = 0; i < n; ++i) {
      sampler.Insert(rng.NextDouble(), 1.0);
    }
    benchmark::DoNotOptimize(sampler.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_LogarithmicInsert)->Range(1 << 10, 1 << 17)->Unit(
    benchmark::kMillisecond);

void BM_LogarithmicQuery(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  iqs::Rng rng(14);
  iqs::LogarithmicRangeSampler sampler;
  for (size_t i = 0; i < n; ++i) sampler.Insert(rng.NextDouble(), 1.0);
  std::vector<double> out;
  for (auto _ : state) {
    const double lo = rng.NextDouble() * 0.5;
    out.clear();
    benchmark::DoNotOptimize(sampler.Query(lo, lo + 0.25, 16, &rng, &out));
  }
}
BENCHMARK(BM_LogarithmicQuery)->Range(1 << 10, 1 << 20);

// args: {kind: 0=dynamic, 1=fenwick, n}
void BM_MixedWorkload(benchmark::State& state) {
  const int kind = static_cast<int>(state.range(0));
  const size_t n = static_cast<size_t>(state.range(1));
  const auto weights = MakeWeights(n);
  iqs::DynamicAlias dynamic;
  std::vector<size_t> handles;
  for (double w : weights) handles.push_back(dynamic.Insert(w));
  iqs::FenwickSampler fenwick(weights);
  iqs::Rng rng(5);
  for (auto _ : state) {
    const bool update = rng.NextDouble() < 0.1;
    if (kind == 0) {
      if (update) {
        dynamic.SetWeight(handles[rng.Below(n)], 0.5 + rng.NextDouble());
      } else {
        benchmark::DoNotOptimize(dynamic.Sample(&rng));
      }
    } else {
      if (update) {
        fenwick.SetWeight(rng.Below(n), 0.5 + rng.NextDouble());
      } else {
        benchmark::DoNotOptimize(fenwick.Sample(&rng));
      }
    }
  }
  state.SetLabel(kind == 0 ? "dynamic-alias" : "fenwick");
}
BENCHMARK(BM_MixedWorkload)
    ->ArgsProduct({{0, 1}, {1 << 14, 1 << 18, 1 << 22}});

}  // namespace

BENCHMARK_MAIN();
