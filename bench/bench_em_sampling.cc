// E9 (Section 8): EM set sampling I/O cost — the lower-bound shape
// min(s, (s/B) log_{M/B}(n/B)) and the sample pool that matches it.
//
// Rows reproduced (I/O counts, not wall time — in the EM model I/Os ARE
// the cost):
//   * I/Os vs s for the naive random-access strategy (= s) and the pool
//     (~ s/B + amortized rebuild).
//   * Sensitivity to B (bigger blocks help the pool, not the naive).
//   * Sensitivity to M (more memory -> fewer merge passes per rebuild).

#include <cstdio>

#include "iqs/em/block_device.h"
#include "iqs/em/em_array.h"
#include "iqs/em/sample_pool.h"
#include "iqs/em/weighted_sample_pool.h"
#include "iqs/util/rng.h"

namespace {

using iqs::em::BlockDevice;
using iqs::em::EmArray;
using iqs::em::EmWriter;
using iqs::em::SamplePool;

struct PoolCosts {
  double naive;
  double pool;
};

// Average per-query I/O over enough queries to amortize rebuilds.
PoolCosts Measure(size_t n, size_t block_words, size_t memory_blocks,
                  size_t s) {
  BlockDevice device(block_words);
  EmArray data(&device, 1);
  {
    EmWriter writer(&data);
    for (uint64_t i = 0; i < n; ++i) writer.Append1(i);
    writer.Finish();
  }
  iqs::Rng rng(1);
  SamplePool pool(&data, 0, n, memory_blocks * block_words, &rng);

  // Enough queries to drain the pool ~3 times.
  const size_t queries = std::max<size_t>(4, 3 * n / std::max<size_t>(1, s));
  std::vector<uint64_t> out;

  device.ResetCounters();
  for (size_t q = 0; q < queries; ++q) {
    out.clear();
    pool.Query(s, &rng, &out);
  }
  const double pool_cost =
      static_cast<double>(device.total_ios()) / static_cast<double>(queries);

  device.ResetCounters();
  for (size_t q = 0; q < std::min<size_t>(queries, 64); ++q) {
    out.clear();
    SamplePool::NaiveQuery(data, 0, n, s, &rng, &out);
  }
  const double naive_cost = static_cast<double>(device.total_ios()) /
                            static_cast<double>(std::min<size_t>(queries, 64));
  return {naive_cost, pool_cost};
}

}  // namespace

int main() {
  const size_t kN = 1 << 18;

  std::printf("E9a: I/Os per query vs s   (n=%zu, B=64, M=16 blocks)\n", kN);
  std::printf("%8s %12s %12s %14s\n", "s", "naive", "pool",
              "naive/pool");
  for (size_t s = 16; s <= (1 << 16); s <<= 2) {
    const auto [naive, pool] = Measure(kN, 64, 16, s);
    std::printf("%8zu %12.1f %12.1f %14.1f\n", s, naive, pool, naive / pool);
  }

  std::printf("\nE9b: I/Os per query vs B   (n=%zu, s=4096, M=16 blocks)\n",
              kN);
  std::printf("%8s %12s %12s\n", "B", "naive", "pool");
  for (size_t b = 16; b <= 256; b <<= 1) {
    const auto [naive, pool] = Measure(kN, b, 16, 4096);
    std::printf("%8zu %12.1f %12.1f\n", b, naive, pool);
  }

  std::printf("\nE9c: I/Os per query vs M   (n=%zu, s=4096, B=64)\n", kN);
  std::printf("%8s %12s\n", "M/B", "pool");
  for (size_t m = 4; m <= 64; m <<= 1) {
    const auto [naive, pool] = Measure(kN, 64, m, 4096);
    (void)naive;
    std::printf("%8zu %12.1f\n", m, pool);
  }

  // E9d: WEIGHTED EM set sampling (library extension beyond the paper's
  // WR-only Section 8): pool vs one-random-I/O-per-sample, Zipf weights.
  std::printf("\nE9d: weighted pool, I/Os per query vs s   "
              "(n=%zu, B=64, M=16 blocks, zipf(1) weights)\n",
              kN / 4);
  std::printf("%8s %12s %12s\n", "s", "naive", "pool");
  {
    const size_t n = kN / 4;
    iqs::em::BlockDevice device(64);
    iqs::em::EmArray data(&device, 2);
    {
      iqs::em::EmWriter writer(&data);
      for (uint64_t i = 0; i < n; ++i) {
        iqs::em::WeightedSamplePool::AppendRecord(
            &writer, i, 1.0 / static_cast<double>(i + 1));
      }
      writer.Finish();
    }
    iqs::Rng rng(2);
    iqs::em::WeightedSamplePool pool(&data, 16 * 64, &rng);
    std::vector<uint64_t> out;
    for (size_t s = 64; s <= 16384; s <<= 2) {
      const size_t queries = std::max<size_t>(4, 2 * n / s);
      device.ResetCounters();
      for (size_t q = 0; q < queries; ++q) {
        out.clear();
        pool.Query(s, &rng, &out);
      }
      const double pool_cost = static_cast<double>(device.total_ios()) /
                               static_cast<double>(queries);
      device.ResetCounters();
      out.clear();
      pool.NaiveQuery(s, &rng, &out);
      const double naive_cost = static_cast<double>(device.total_ios());
      std::printf("%8zu %12.1f %12.1f\n", s, naive_cost, pool_cost);
    }
  }
  return 0;
}
