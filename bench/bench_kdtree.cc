// E5 (Theorem 5 on the kd-tree): 2-d weighted rectangle sampling in O(n)
// space and O(sqrt(n) + s) query time.
//
// Series reproduced:
//   * Query time vs n at fixed selectivity and s — grows like sqrt(n)
//     (doubling n multiplies time by ~1.4, not 2), vs the naive scan's
//     linear growth.
//   * Query time vs s at fixed n — additive O(s) term with O(1) per
//     sample.
//   * Disk queries: exact cover vs approximate cover + rejection
//     (Theorem 6 path) — see also bench_approx_cover for the 1-d case.

#include <vector>

#include "benchmark/benchmark.h"
#include "iqs/multidim/kd_sampler.h"
#include "iqs/util/distributions.h"
#include "iqs/util/rng.h"

namespace {

using iqs::multidim::KdTreeSampler;
using iqs::multidim::Point2;
using iqs::multidim::Rect;

std::vector<Point2> MakePoints(size_t n) {
  iqs::Rng rng(5);
  std::vector<Point2> pts;
  pts.reserve(n);
  for (const auto& [x, y] : iqs::Points2D(n, 0, &rng)) pts.push_back({x, y});
  return pts;
}

// 10%-area query rectangles.
std::vector<Rect> MakeRects(iqs::Rng* rng, int count) {
  std::vector<Rect> rects;
  for (int i = 0; i < count; ++i) {
    Rect q;
    q.x_lo = rng->NextDouble() * 0.6;
    q.x_hi = q.x_lo + 0.32;
    q.y_lo = rng->NextDouble() * 0.6;
    q.y_hi = q.y_lo + 0.32;
    rects.push_back(q);
  }
  return rects;
}

void BM_KdRectVsN(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto pts = MakePoints(n);
  const KdTreeSampler sampler(pts, {});
  iqs::Rng rng(1);
  const auto rects = MakeRects(&rng, 64);
  std::vector<Point2> out;
  size_t next = 0;
  for (auto _ : state) {
    out.clear();
    benchmark::DoNotOptimize(
        sampler.QueryRect(rects[next++ % rects.size()], 64, &rng, &out));
  }
}
BENCHMARK(BM_KdRectVsN)->Range(1 << 12, 1 << 20);

void BM_NaiveScanVsN(benchmark::State& state) {
  // The naive baseline: scan all points, collect S_q, sample.
  const size_t n = static_cast<size_t>(state.range(0));
  const auto pts = MakePoints(n);
  iqs::Rng rng(2);
  const auto rects = MakeRects(&rng, 64);
  std::vector<Point2> result;
  size_t next = 0;
  for (auto _ : state) {
    const Rect& q = rects[next++ % rects.size()];
    result.clear();
    for (const Point2& p : pts) {
      if (q.Contains(p)) result.push_back(p);
    }
    for (int i = 0; i < 64; ++i) {
      benchmark::DoNotOptimize(result[rng.Below(result.size())]);
    }
  }
}
BENCHMARK(BM_NaiveScanVsN)->Range(1 << 12, 1 << 20);

void BM_KdRectVsS(benchmark::State& state) {
  const auto pts = MakePoints(1 << 18);
  const KdTreeSampler sampler(pts, {});
  const size_t s = static_cast<size_t>(state.range(0));
  iqs::Rng rng(3);
  const auto rects = MakeRects(&rng, 16);
  std::vector<Point2> out;
  size_t next = 0;
  for (auto _ : state) {
    out.clear();
    benchmark::DoNotOptimize(
        sampler.QueryRect(rects[next++ % rects.size()], s, &rng, &out));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(s));
}
BENCHMARK(BM_KdRectVsS)->RangeMultiplier(4)->Range(1, 1 << 14);

void BM_KdDiskExact(benchmark::State& state) {
  const auto pts = MakePoints(1 << 18);
  const KdTreeSampler sampler(pts, {});
  iqs::Rng rng(4);
  std::vector<Point2> out;
  for (auto _ : state) {
    out.clear();
    const Point2 center{0.2 + 0.6 * rng.NextDouble(),
                        0.2 + 0.6 * rng.NextDouble()};
    benchmark::DoNotOptimize(sampler.QueryDisk(center, 0.1, 64, &rng, &out));
  }
}
BENCHMARK(BM_KdDiskExact);

void BM_KdDiskApprox(benchmark::State& state) {
  const auto pts = MakePoints(1 << 18);
  const KdTreeSampler sampler(pts, {});
  iqs::Rng rng(5);
  std::vector<Point2> out;
  for (auto _ : state) {
    out.clear();
    const Point2 center{0.2 + 0.6 * rng.NextDouble(),
                        0.2 + 0.6 * rng.NextDouble()};
    benchmark::DoNotOptimize(
        sampler.QueryDiskApprox(center, 0.1, 64, 0.5, &rng, &out));
  }
}
BENCHMARK(BM_KdDiskApprox);

}  // namespace

BENCHMARK_MAIN();
