// E1 (Theorem 1): the alias method draws a weighted sample in O(1) time
// after an O(n)-time, O(n)-space build.
//
// Series reproduced:
//   * Sample latency vs n — must stay flat (O(1)) while the O(log n)
//     Fenwick dynamic baseline grows.
//   * Build time vs n — must grow linearly.
//   * Uniform vs Zipf weights — the alias method is oblivious to skew.

#include <vector>

#include "benchmark/benchmark.h"
#include "iqs/alias/alias_table.h"
#include "iqs/alias/fenwick_sampler.h"
#include "iqs/util/distributions.h"
#include "iqs/util/rng.h"

namespace {

std::vector<double> MakeWeights(size_t n, double zipf_alpha) {
  iqs::Rng rng(7);
  return iqs::ZipfWeights(n, zipf_alpha, &rng);
}

void BM_AliasBuild(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const std::vector<double> weights = MakeWeights(n, 1.0);
  for (auto _ : state) {
    iqs::AliasTable table(weights);
    benchmark::DoNotOptimize(table);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_AliasBuild)->Range(1 << 10, 1 << 22);

void BM_AliasSample(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const double alpha = static_cast<double>(state.range(1)) / 10.0;
  const iqs::AliasTable table(MakeWeights(n, alpha));
  iqs::Rng rng(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Sample(&rng));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_AliasSample)
    ->ArgsProduct({{1 << 10, 1 << 14, 1 << 18, 1 << 22}, {0, 10, 20}});

void BM_FenwickSample(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const iqs::FenwickSampler sampler(MakeWeights(n, 1.0));
  iqs::Rng rng(13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Sample(&rng));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_FenwickSample)->Range(1 << 10, 1 << 22);

}  // namespace

BENCHMARK_MAIN();
