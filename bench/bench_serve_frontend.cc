// E25 — closed-loop serving-frontend sweep: micro-batching vs no batching.
//
// Open-loop Poisson traffic (exponential inter-arrivals, schedule fixed
// up front and shared between modes, so there is no coordinated
// omission): kProducers producer threads each fire kArrivalsPerProducer
// single queries at a ChunkedRangeSampler, at offered loads swept as
// multiples of the DIRECT path's calibrated capacity. Two disciplines
// over the same structure, same queries, same arrival times:
//
//   * direct   — the no-batching baseline: the producer serves each
//     arrival itself with a singleton RangeSampler::Query call.
//   * frontend — the producer submits to a serve::ServeFrontend
//     micro-batcher (50µs / 256-query window) and the shard worker serves
//     coalesced QueryBatch calls.
//
// Latency per query is completion − SCHEDULED arrival (not actual submit),
// so producers that fall behind pay their backlog in the tail — the
// honest open-loop measurement. Percentiles come from LatencyHistogram
// (p50/p99/p999 upper bounds). The expected shape: at low load direct
// wins p50 (no window wait); as load approaches capacity the baseline's
// per-query cost saturates the core and its tail explodes, while the
// frontend's grouped batches (E19 economics) keep the queue bounded —
// the p99 crossover is the headline (ISSUE 8 acceptance).
//
// Single-core caveat (as E24): producers and the shard worker timeshare,
// so absolute qps is not a scaling claim; the direct-vs-frontend tail
// split at equal offered load is the robust signal.
//
// Writes BENCH_serve_frontend.json (array of row objects).

#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "iqs/range/chunked_range_sampler.h"
#include "iqs/range/range_sampler.h"
#include "iqs/serve/frontend.h"
#include "iqs/serve/ticket.h"
#include "iqs/util/rng.h"
#include "iqs/util/scratch_arena.h"
#include "iqs/util/telemetry.h"

namespace {

// Single-user traffic: each arrival wants a handful of samples from a
// modest interval. This is micro-batching's home turf — a singleton query
// pays the full O(log n) resolve + per-chunk cover setup for s=8 draws,
// while a coalesced batch amortizes those fixed costs across users
// (plus one multinomial-split pipeline for the whole flush).
constexpr size_t kN = 1 << 16;
constexpr size_t kProducers = 2;
constexpr size_t kArrivalsPerProducer = 4000;
constexpr size_t kSamplesPerQuery = 8;
// Hotspot traffic: most users query a small hot region (the usual skewed
// access pattern). Coalesced batches then share chunk-level block draws
// and cache lines across users — the E19 effect the frontend exists to
// harvest; the singleton baseline re-resolves the same region per query.
constexpr double kHotFraction = 0.8;
constexpr size_t kHotRegionKeys = 2048;
constexpr size_t kCalibrationQueries = 1024;
// The top multipliers sit deep in overload on purpose: calibration on a
// noisy shared box can underestimate capacity by tens of percent, and the
// frontend-vs-direct comparison is only guaranteed past BOTH paths'
// saturation knees (where the smaller per-query cost means strictly less
// backlog). 0.25/0.6 chart the uncontended region.
constexpr double kLoadMultipliers[] = {0.25, 0.6, 1.2, 2.0};

struct Row {
  std::string mode;  // "direct" | "frontend"
  double load_mult = 0.0;
  double offered_qps = 0.0;
  double achieved_qps = 0.0;
  uint64_t queries = 0;
  uint64_t p50_ns = 0;
  uint64_t p99_ns = 0;
  uint64_t p999_ns = 0;
  uint64_t max_ns = 0;
  uint64_t batches = 0;
  double mean_batch = 0.0;
};

// Sleeps until the target TelemetryNowNs instant; coarse sleep for the
// bulk, then yields — spinning hard would starve the shard worker on a
// single-core box and measure the scheduler, not the frontend.
void SleepUntilNs(uint64_t target_ns) {
  for (;;) {
    const uint64_t now = iqs::TelemetryNowNs();
    if (now >= target_ns) return;
    const uint64_t remaining = target_ns - now;
    if (remaining > 120 * 1000) {
      std::this_thread::sleep_for(
          std::chrono::nanoseconds(remaining - 60 * 1000));
    } else {
      std::this_thread::yield();
    }
  }
}

// The fixed per-producer workload: query i and its scheduled arrival
// offset from the run's start. Offsets are drawn once per (load,
// producer) and shared verbatim by both modes.
struct Schedule {
  std::vector<iqs::BatchQuery> queries;
  std::vector<uint64_t> offsets_ns;
};

std::vector<iqs::BatchQuery> MakeQueries(uint64_t seed) {
  iqs::Rng rng(seed);
  std::vector<iqs::BatchQuery> queries;
  queries.reserve(kArrivalsPerProducer);
  for (size_t i = 0; i < kArrivalsPerProducer; ++i) {
    const bool hot = rng.NextDouble() < kHotFraction;
    const double span =
        static_cast<double>(hot ? kHotRegionKeys : kN - 512);
    const double lo = rng.NextDouble() * span;
    const double width = 16.0 + rng.NextDouble() * 240.0;
    queries.push_back(iqs::BatchQuery{lo, lo + width, kSamplesPerQuery});
  }
  return queries;
}

std::vector<uint64_t> MakePoissonOffsets(uint64_t seed, double rate_qps) {
  iqs::Rng rng(seed);
  std::vector<uint64_t> offsets;
  offsets.reserve(kArrivalsPerProducer);
  double t_ns = 0.0;
  const double mean_gap_ns = 1e9 / rate_qps;
  for (size_t i = 0; i < kArrivalsPerProducer; ++i) {
    // Exponential inter-arrival; 1 - u avoids log(0).
    t_ns += -std::log(1.0 - rng.NextDouble()) * mean_gap_ns;
    offsets.push_back(static_cast<uint64_t>(t_ns));
  }
  return offsets;
}

Row SummarizeRun(const char* mode, double load_mult, double offered_qps,
                 const std::vector<iqs::LatencyHistogram>& latencies,
                 double elapsed_seconds) {
  Row row;
  row.mode = mode;
  row.load_mult = load_mult;
  row.offered_qps = offered_qps;
  iqs::LatencyHistogram merged;
  for (const iqs::LatencyHistogram& h : latencies) merged.MergeFrom(h);
  row.queries = merged.count();
  row.achieved_qps = static_cast<double>(merged.count()) / elapsed_seconds;
  row.p50_ns = merged.PercentileUpperBoundNs(0.50);
  row.p99_ns = merged.PercentileUpperBoundNs(0.99);
  row.p999_ns = merged.PercentileUpperBoundNs(0.999);
  row.max_ns = merged.max_ns();
  return row;
}

// No-batching baseline: each producer serves its own arrivals with
// singleton Query calls.
Row RunDirect(const iqs::ChunkedRangeSampler& sampler,
              const std::vector<Schedule>& schedules, double load_mult,
              double offered_qps) {
  std::vector<iqs::LatencyHistogram> latencies(kProducers);
  std::vector<std::thread> producers;
  const uint64_t base_ns = iqs::TelemetryNowNs();
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      iqs::Rng rng(5000 + p);
      std::vector<size_t> out;
      const Schedule& sched = schedules[p];
      for (size_t i = 0; i < sched.queries.size(); ++i) {
        const uint64_t scheduled_ns = base_ns + sched.offsets_ns[i];
        SleepUntilNs(scheduled_ns);
        out.clear();
        const iqs::BatchQuery& q = sched.queries[i];
        sampler.Query(q.lo, q.hi, q.s, &rng, &out);
        latencies[p].Record(iqs::TelemetryNowNs() - scheduled_ns);
      }
    });
  }
  for (std::thread& t : producers) t.join();
  const double elapsed =
      static_cast<double>(iqs::TelemetryNowNs() - base_ns) / 1e9;
  return SummarizeRun("direct", load_mult, offered_qps, latencies, elapsed);
}

// Micro-batching frontend over the same sampler, queries, and schedule.
Row RunFrontend(const iqs::ChunkedRangeSampler& sampler,
                const std::vector<Schedule>& schedules, double load_mult,
                double offered_qps) {
  iqs::serve::ServeOptions options;
  options.max_batch = 256;
  options.max_delay_ns = 50 * 1000;
  options.seed = 2025;
  iqs::serve::RangeServeFrontend frontend(
      options,
      [&sampler](size_t /*shard*/, std::span<const iqs::BatchQuery> queries,
                 iqs::Rng* rng, iqs::ScratchArena* arena,
                 const iqs::BatchOptions& opts, iqs::BatchResult* result) {
        sampler.QueryBatch(queries, rng, arena, opts, result);
      });

  std::vector<std::unique_ptr<std::vector<iqs::serve::ServeTicket<size_t>>>>
      tickets;
  for (size_t p = 0; p < kProducers; ++p) {
    tickets.push_back(
        std::make_unique<std::vector<iqs::serve::ServeTicket<size_t>>>(
            kArrivalsPerProducer));
  }

  std::vector<std::thread> producers;
  const uint64_t base_ns = iqs::TelemetryNowNs();
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      const Schedule& sched = schedules[p];
      for (size_t i = 0; i < sched.queries.size(); ++i) {
        SleepUntilNs(base_ns + sched.offsets_ns[i]);
        frontend.Submit(0, sched.queries[i], &(*tickets[p])[i]);
      }
    });
  }
  for (std::thread& t : producers) t.join();
  frontend.Drain();
  const double elapsed =
      static_cast<double>(iqs::TelemetryNowNs() - base_ns) / 1e9;

  // Latency against the SCHEDULED arrival, like the baseline, so window
  // wait, queueing, and submit backpressure all land in the same metric.
  std::vector<iqs::LatencyHistogram> latencies(kProducers);
  for (size_t p = 0; p < kProducers; ++p) {
    const Schedule& sched = schedules[p];
    for (size_t i = 0; i < kArrivalsPerProducer; ++i) {
      const iqs::serve::ServeTicket<size_t>& ticket = (*tickets[p])[i];
      const uint64_t scheduled_ns = base_ns + sched.offsets_ns[i];
      latencies[p].Record(ticket.complete_ns() > scheduled_ns
                              ? ticket.complete_ns() - scheduled_ns
                              : 0);
    }
  }
  Row row =
      SummarizeRun("frontend", load_mult, offered_qps, latencies, elapsed);
  const iqs::serve::ServeShardStats stats = frontend.MergedStats();
  row.batches = stats.batches_flushed;
  row.mean_batch = stats.batch_size.count() != 0
                       ? static_cast<double>(stats.batch_size.sum_ns()) /
                             static_cast<double>(stats.batch_size.count())
                       : 0.0;
  return row;
}

void PrintRow(const Row& r) {
  std::printf("%-9s %5.2f %11.3e %11.3e %8" PRIu64 " %10" PRIu64 " %10" PRIu64
              " %10" PRIu64 " %11" PRIu64 " %8" PRIu64 " %10.1f\n",
              r.mode.c_str(), r.load_mult, r.offered_qps, r.achieved_qps,
              r.queries, r.p50_ns, r.p99_ns, r.p999_ns, r.max_ns, r.batches,
              r.mean_batch);
}

}  // namespace

int main() {
  iqs::Rng prep(42);
  std::vector<double> keys(kN);
  std::vector<double> weights(kN);
  for (size_t i = 0; i < kN; ++i) {
    keys[i] = static_cast<double>(i);
    weights[i] = 0.5 + prep.NextDouble();
  }
  const iqs::ChunkedRangeSampler sampler(keys, weights);

  // Calibrate the DIRECT path's capacity: back-to-back singleton queries
  // on one thread. Offered loads sweep multiples of this, so the sweep is
  // machine-independent.
  const std::vector<iqs::BatchQuery> calibration = MakeQueries(1);
  {
    // Warm caches before timing.
    iqs::Rng rng(11);
    std::vector<size_t> out;
    for (size_t i = 0; i < 64; ++i) {
      out.clear();
      const iqs::BatchQuery& q = calibration[i];
      sampler.Query(q.lo, q.hi, q.s, &rng, &out);
    }
  }
  // Best of three passes: the MIN per-query time is the least-interfered
  // estimate, so load multipliers scale off the structure's true cost,
  // not a descheduling hiccup.
  uint64_t per_query_ns = ~uint64_t{0};
  iqs::Rng cal_rng(12);
  std::vector<size_t> cal_out;
  for (int pass = 0; pass < 3; ++pass) {
    const uint64_t cal_start = iqs::TelemetryNowNs();
    for (size_t i = 0; i < kCalibrationQueries; ++i) {
      cal_out.clear();
      const iqs::BatchQuery& q = calibration[i % calibration.size()];
      sampler.Query(q.lo, q.hi, q.s, &cal_rng, &cal_out);
    }
    const uint64_t pass_ns =
        (iqs::TelemetryNowNs() - cal_start) / kCalibrationQueries;
    if (pass_ns < per_query_ns) per_query_ns = pass_ns;
  }
  const double capacity_qps = 1e9 / static_cast<double>(per_query_ns);

  // And the batched path, for the printed amortization factor (the sweep
  // itself measures it end to end through the frontend).
  uint64_t batched_query_ns = 0;
  {
    iqs::Rng rng(13);
    iqs::ScratchArena arena;
    iqs::BatchResult result;
    const std::span<const iqs::BatchQuery> window(calibration.data(), 256);
    const uint64_t t0 = iqs::TelemetryNowNs();
    constexpr size_t kReps = 8;
    for (size_t rep = 0; rep < kReps; ++rep) {
      result.Clear();
      arena.Reset();
      sampler.QueryBatch(window, &rng, &arena, &result);
    }
    batched_query_ns =
        (iqs::TelemetryNowNs() - t0) / (kReps * window.size());
  }

  std::printf(
      "E25: serving frontend vs no-batching baseline under open-loop "
      "Poisson load (n=%zu, s=%zu/query, %zu producers, direct capacity "
      "~%.3e qps @ %" PRIu64 " ns/query; batched path %" PRIu64
      " ns/query at window 256)\n",
      kN, kSamplesPerQuery, kProducers, capacity_qps, per_query_ns,
      batched_query_ns);
  std::printf("%-9s %5s %11s %11s %8s %10s %10s %10s %11s %8s %10s\n", "mode",
              "load", "offered_qps", "achieved", "queries", "p50_ns", "p99_ns",
              "p999_ns", "max_ns", "batches", "mean_batch");

  std::vector<Row> rows;
  for (const double mult : kLoadMultipliers) {
    const double offered_qps = mult * capacity_qps;
    // Same queries and the same Poisson arrival schedule for both modes.
    std::vector<Schedule> schedules;
    for (size_t p = 0; p < kProducers; ++p) {
      Schedule sched;
      sched.queries = MakeQueries(100 + p);
      sched.offsets_ns = MakePoissonOffsets(
          static_cast<uint64_t>(mult * 1000) * 10 + p,
          offered_qps / static_cast<double>(kProducers));
      schedules.push_back(std::move(sched));
    }
    rows.push_back(RunDirect(sampler, schedules, mult, offered_qps));
    PrintRow(rows.back());
    rows.push_back(RunFrontend(sampler, schedules, mult, offered_qps));
    PrintRow(rows.back());
  }

  std::FILE* json = std::fopen("BENCH_serve_frontend.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "[\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(
          json,
          "  {\"mode\": \"%s\", \"load_mult\": %.2f, \"offered_qps\": %.6e, "
          "\"achieved_qps\": %.6e, \"queries\": %" PRIu64
          ", \"p50_ns\": %" PRIu64 ", \"p99_ns\": %" PRIu64
          ", \"p999_ns\": %" PRIu64 ", \"max_ns\": %" PRIu64
          ", \"batches\": %" PRIu64 ", \"mean_batch\": %.2f}%s\n",
          r.mode.c_str(), r.load_mult, r.offered_qps, r.achieved_qps,
          r.queries, r.p50_ns, r.p99_ns, r.p999_ns, r.max_ns, r.batches,
          r.mean_batch, i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(json, "]\n");
    std::fclose(json);
    std::printf("\nwrote BENCH_serve_frontend.json (%zu rows)\n", rows.size());
  }
  return 0;
}
