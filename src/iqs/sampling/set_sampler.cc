#include "iqs/sampling/set_sampler.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <unordered_set>

#include "iqs/util/check.h"

namespace iqs {

void UniformWrSample(size_t n, size_t s, Rng* rng, std::vector<size_t>* out) {
  IQS_CHECK(n > 0);
  out->reserve(out->size() + s);
  for (size_t i = 0; i < s; ++i) {
    out->push_back(static_cast<size_t>(rng->Below(n)));
  }
}

void UniformWorSample(size_t n, size_t s, Rng* rng, std::vector<size_t>* out) {
  IQS_CHECK(s <= n);
  if (s == 0) return;
  // For dense samples a partial Fisher-Yates is cheaper than hashing.
  if (s * 4 >= n) {
    std::vector<size_t> pool(n);
    for (size_t i = 0; i < n; ++i) pool[i] = i;
    for (size_t i = 0; i < s; ++i) {
      std::swap(pool[i], pool[i + rng->Below(n - i)]);
    }
    out->insert(out->end(), pool.begin(), pool.begin() + s);
    return;
  }
  // Floyd's algorithm: iterate j over the last s positions; insert a
  // uniform value from [0, j], replacing collisions with j itself.
  std::unordered_set<size_t> chosen;
  chosen.reserve(s * 2);
  for (size_t j = n - s; j < n; ++j) {
    const size_t t = static_cast<size_t>(rng->Below(j + 1));
    chosen.insert(chosen.contains(t) ? j : t);
  }
  out->insert(out->end(), chosen.begin(), chosen.end());
}

std::vector<size_t> WorToWr(std::span<const size_t> wor, size_t n, Rng* rng) {
  const size_t s = wor.size();
  IQS_CHECK(s <= n);
  std::vector<size_t> wr;
  wr.reserve(s);
  size_t next_fresh = 0;
  for (size_t i = 0; i < s; ++i) {
    // The i-th WR draw hits a not-yet-seen element with probability
    // (n - distinct_so_far) / n.
    const size_t distinct = next_fresh;
    const bool fresh =
        rng->NextDouble() * static_cast<double>(n) >=
        static_cast<double>(distinct);
    if (fresh) {
      wr.push_back(wor[next_fresh++]);
    } else {
      // A repeat: uniformly one of the earlier *distinct* values — each
      // earlier distinct value is equally likely to be the one repeated.
      IQS_DCHECK(distinct > 0);
      wr.push_back(wor[rng->Below(distinct)]);
    }
  }
  return wr;
}

void WeightedWorSample(std::span<const double> weights, size_t s, Rng* rng,
                       std::vector<size_t>* out) {
  const size_t n = weights.size();
  IQS_CHECK(s <= n);
  if (s == 0) return;
  // Efraimidis-Spirakis: key_i = u_i^(1/w_i); the s largest keys form a
  // weighted WoR sample. Work with log keys for numerical stability.
  using Entry = std::pair<double, size_t>;  // (log key, index)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (size_t i = 0; i < n; ++i) {
    IQS_DCHECK(weights[i] > 0.0);
    const double u = std::max(rng->NextDouble(), 1e-300);
    const double log_key = std::log(u) / weights[i];
    if (heap.size() < s) {
      heap.emplace(log_key, i);
    } else if (log_key > heap.top().first) {
      heap.pop();
      heap.emplace(log_key, i);
    }
  }
  while (!heap.empty()) {
    out->push_back(heap.top().second);
    heap.pop();
  }
}

}  // namespace iqs
