#include "iqs/sampling/estimator.h"

#include <cmath>
#include <vector>

#include "iqs/util/check.h"

namespace iqs {

size_t SamplesForEstimate(double epsilon, double delta) {
  IQS_CHECK(epsilon > 0.0 && epsilon < 1.0);
  IQS_CHECK(delta > 0.0 && delta < 1.0);
  return static_cast<size_t>(
      std::ceil(std::log(2.0 / delta) / (2.0 * epsilon * epsilon)));
}

std::optional<FractionEstimate> EstimateFraction(
    const RangeSampler& sampler, double lo, double hi,
    const std::function<bool(size_t)>& predicate, double epsilon,
    double delta, Rng* rng) {
  const size_t s = SamplesForEstimate(epsilon, delta);
  std::vector<size_t> samples;
  samples.reserve(s);
  if (!sampler.Query(lo, hi, s, rng, &samples)) return std::nullopt;
  size_t qualifying = 0;
  for (size_t position : samples) qualifying += predicate(position);
  FractionEstimate estimate;
  estimate.fraction =
      static_cast<double>(qualifying) / static_cast<double>(s);
  estimate.samples_used = s;
  estimate.epsilon = epsilon;
  estimate.delta = delta;
  return estimate;
}

}  // namespace iqs
