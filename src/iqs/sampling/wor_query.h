// Without-replacement (WoR) IQS range queries (paper Section 1, second
// scheme), layered over any RangeSampler.
//
// A WoR query returns a uniformly random size-s SUBSET of S_q — every
// subset equally likely — independent across queries. Two regimes:
//
//   * s <= |S_q| / 2: draw WR samples from the structure and keep the
//     distinct ones. Each fresh distinct draw is uniform over the
//     not-yet-drawn elements, which is exactly sequential WoR sampling;
//     the expected number of WR draws is s * O(1) by a coupon-collector
//     prefix bound, so the query stays O(log n + s) expected.
//   * s > |S_q| / 2: materialize the position range (it is at most 2s
//     long) and run Floyd/Fisher-Yates directly — O(|S_q|) = O(s).
//
// The same trick gives *weighted* WoR (successive sampling, probabilities
// proportional to weight among the remaining elements) in the first
// regime, with the caveat that heavy skew can inflate the rejection count
// once most of the weight is drawn; the implementation switches to the
// Efraimidis-Spirakis scan fallback when the draw budget is exhausted.

#ifndef IQS_SAMPLING_WOR_QUERY_H_
#define IQS_SAMPLING_WOR_QUERY_H_

#include <cstddef>
#include <vector>

#include "iqs/range/range_sampler.h"
#include "iqs/util/rng.h"

namespace iqs {

// Draws a uniform/weighted WoR sample of min(s, |S_q|) distinct positions
// from `sampler`'s elements in position range [a, b], appending to `out`.
// `weights` must be the sampler's element weights when the scheme is
// weighted; pass an empty span for the uniform (WR-weights) scheme — the
// fallback path then avoids reading weights at all.
void WorQueryPositions(const RangeSampler& sampler,
                       std::span<const double> weights, size_t a, size_t b,
                       size_t s, Rng* rng, std::vector<size_t>* out);

// Key-interval form; returns false when S ∩ [lo, hi] is empty.
bool WorQuery(const RangeSampler& sampler, std::span<const double> weights,
              double lo, double hi, size_t s, Rng* rng,
              std::vector<size_t>* out);

}  // namespace iqs

#endif  // IQS_SAMPLING_WOR_QUERY_H_
