// Splitting a sample budget across a partition (paper Section 4.1).
//
// Every coverage-style IQS query first decides how many of its s samples
// come from each of the t cover pieces: draw s weighted samples over the
// pieces with an alias table built on the fly and count occurrences —
// O(t + s) total, exactly the multinomial(s; w_1/W, ..., w_t/W) law.

#ifndef IQS_SAMPLING_MULTINOMIAL_H_
#define IQS_SAMPLING_MULTINOMIAL_H_

#include <cstdint>
#include <span>
#include <vector>

#include "iqs/alias/alias_table.h"
#include "iqs/util/rng.h"

namespace iqs {

// Returns counts c with sum(c) == s and c distributed
// Multinomial(s; weights / sum(weights)). O(|weights| + s).
inline std::vector<uint32_t> MultinomialSplit(std::span<const double> weights,
                                              size_t s, Rng* rng) {
  std::vector<uint32_t> counts(weights.size(), 0);
  if (s == 0) return counts;
  AliasTable alias(weights);
  for (size_t i = 0; i < s; ++i) ++counts[alias.Sample(rng)];
  return counts;
}

}  // namespace iqs

#endif  // IQS_SAMPLING_MULTINOMIAL_H_
