// Splitting a sample budget across a partition (paper Section 4.1).
//
// Every coverage-style IQS query first decides how many of its s samples
// come from each of the t cover pieces: draw s weighted samples over the
// pieces with an alias table built on the fly and count occurrences —
// O(t + s) total, exactly the multinomial(s; w_1/W, ..., w_t/W) law.

#ifndef IQS_SAMPLING_MULTINOMIAL_H_
#define IQS_SAMPLING_MULTINOMIAL_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "iqs/alias/alias_table.h"
#include "iqs/util/rng.h"
#include "iqs/util/scratch_arena.h"

namespace iqs {

// Returns counts c with sum(c) == s and c distributed
// Multinomial(s; weights / sum(weights)). O(|weights| + s).
inline std::vector<uint32_t> MultinomialSplit(std::span<const double> weights,
                                              size_t s, Rng* rng) {
  std::vector<uint32_t> counts(weights.size(), 0);
  if (s == 0) return counts;
  AliasTable alias(weights);
  for (size_t i = 0; i < s; ++i) ++counts[alias.Sample(rng)];
  return counts;
}

// Allocation-free variant for the batched serving path. Writes the same
// Multinomial(s; weights / sum(weights)) law into `counts` (which must
// have size weights.size(); zeroed here). Covers are O(log n) pieces, so
// instead of building an alias table per query this draws by inverse CDF
// over an arena-resident prefix array — O(s log t) with t tiny — with
// block randomness. O(t + s log t) time, zero heap allocations.
inline void MultinomialSplitScratch(std::span<const double> weights, size_t s,
                                    Rng* rng, ScratchArena* arena,
                                    std::span<uint32_t> counts) {
  IQS_DCHECK(counts.size() == weights.size());
  std::fill(counts.begin(), counts.end(), 0u);
  if (s == 0) return;
  const size_t t = weights.size();
  if (t == 1) {
    counts[0] = static_cast<uint32_t>(s);
    return;
  }
  const std::span<double> prefix = arena->Alloc<double>(t + 1);
  prefix[0] = 0.0;
  for (size_t i = 0; i < t; ++i) prefix[i + 1] = prefix[i] + weights[i];
  const double total = prefix[t];
  IQS_DCHECK(total > 0.0);

  constexpr size_t kBlock = 256;
  const std::span<double> rnd = arena->Alloc<double>(std::min(s, kBlock));
  for (size_t done = 0; done < s;) {
    const size_t m = std::min(s - done, kBlock);
    rng->FillDoubles(rnd.first(m));
    for (size_t j = 0; j < m; ++j) {
      // upper_bound lands past every prefix <= r*total; with r < 1 and
      // positive piece weights the index is in [1, t].
      const double r = rnd[j] * total;
      const size_t idx = static_cast<size_t>(
          std::upper_bound(prefix.begin() + 1, prefix.end(), r) -
          (prefix.begin() + 1));
      ++counts[std::min(idx, t - 1)];
    }
    done += m;
  }
}

// Draws out.size() independent categorical samples over `weights` (index i
// with probability w_i / W), writing `base + index` into `out`. Same
// inverse-CDF-with-block-randomness scheme as MultinomialSplitScratch;
// intended for the small weight spans of the batched serving path (covers,
// partial chunks), where building an alias table per call would cost more
// than it saves. O(t + s log t), zero heap allocations.
inline void CategoricalSampleScratch(std::span<const double> weights,
                                     Rng* rng, ScratchArena* arena,
                                     size_t base, std::span<size_t> out) {
  if (out.empty()) return;
  const size_t t = weights.size();
  if (t == 1) {
    for (size_t& v : out) v = base;
    return;
  }
  const std::span<double> prefix = arena->Alloc<double>(t + 1);
  prefix[0] = 0.0;
  for (size_t i = 0; i < t; ++i) prefix[i + 1] = prefix[i] + weights[i];
  const double total = prefix[t];
  IQS_DCHECK(total > 0.0);

  constexpr size_t kBlock = 256;
  const std::span<double> rnd =
      arena->Alloc<double>(std::min(out.size(), kBlock));
  for (size_t done = 0; done < out.size();) {
    const size_t m = std::min(out.size() - done, kBlock);
    rng->FillDoubles(rnd.first(m));
    for (size_t j = 0; j < m; ++j) {
      const double r = rnd[j] * total;
      const size_t idx = static_cast<size_t>(
          std::upper_bound(prefix.begin() + 1, prefix.end(), r) -
          (prefix.begin() + 1));
      out[done + j] = base + std::min(idx, t - 1);
    }
    done += m;
  }
}

}  // namespace iqs

#endif  // IQS_SAMPLING_MULTINOMIAL_H_
