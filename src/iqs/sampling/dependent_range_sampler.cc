#include "iqs/sampling/dependent_range_sampler.h"

#include <queue>

#include "iqs/sampling/set_sampler.h"

namespace iqs {

DependentRangeSampler::DependentRangeSampler(std::span<const double> keys,
                                             Rng* build_rng)
    : RangeSampler(keys) {
  const size_t n = keys_.size();
  ranks_.resize(n);
  for (size_t i = 0; i < n; ++i) ranks_[i] = static_cast<uint32_t>(i);
  // Fisher-Yates: one global random permutation, fixed for the structure's
  // lifetime (this is the point — and the flaw — of the approach).
  for (size_t i = n; i > 1; --i) {
    std::swap(ranks_[i - 1], ranks_[build_rng->Below(i)]);
  }
  rmq_ = SparseTableRmq(ranks_);
}

void DependentRangeSampler::QueryWor(size_t a, size_t b, size_t s,
                                     std::vector<size_t>* out) const {
  IQS_CHECK(a <= b && b < n());
  s = std::min(s, b - a + 1);
  if (s == 0) return;
  // Fragment heap: repeatedly take the overall min rank, splitting its
  // fragment in two. Exactly s heap pops, O(log s) each.
  struct Candidate {
    uint32_t rank;
    uint32_t pos;
    uint32_t frag_lo;
    uint32_t frag_hi;
    bool operator>(const Candidate& other) const { return rank > other.rank; }
  };
  std::priority_queue<Candidate, std::vector<Candidate>, std::greater<>> heap;
  auto push_fragment = [&](size_t lo, size_t hi) {
    if (lo > hi) return;
    const size_t p = rmq_.ArgMin(lo, hi);
    heap.push(Candidate{ranks_[p], static_cast<uint32_t>(p),
                        static_cast<uint32_t>(lo), static_cast<uint32_t>(hi)});
  };
  push_fragment(a, b);
  out->reserve(out->size() + s);
  for (size_t taken = 0; taken < s; ++taken) {
    const Candidate c = heap.top();
    heap.pop();
    out->push_back(c.pos);
    if (c.pos > c.frag_lo) push_fragment(c.frag_lo, c.pos - 1);
    if (c.pos < c.frag_hi) push_fragment(c.pos + 1, c.frag_hi);
  }
}

void DependentRangeSampler::QueryPositions(size_t a, size_t b, size_t s,
                                           Rng* rng,
                                           std::vector<size_t>* out) const {
  IQS_CHECK(a <= b && b < n());
  if (s == 0) return;
  const size_t range_size = b - a + 1;
  std::vector<size_t> wor;
  QueryWor(a, b, std::min(s, range_size), &wor);
  if (s <= wor.size()) {
    wor.resize(s);
    // Still apply the WR conversion so the output law matches WR sampling.
  }
  const std::vector<size_t> wr = WorToWr(wor, range_size, rng);
  out->insert(out->end(), wr.begin(), wr.end());
  // If s exceeded the WoR budget (s > range size), top up with repeats of
  // the full range — every element is in the WoR set in that case.
  for (size_t i = wr.size(); i < s; ++i) {
    out->push_back(wor[rng->Below(wor.size())]);
  }
}

}  // namespace iqs
