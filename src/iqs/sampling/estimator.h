// Query estimation on top of IQS (paper Section 2, Benefit 1, as an API).
//
// The paper's folklore bound: sampling O(eps^-2 log delta^-1) elements of
// S_q estimates the fraction of S_q satisfying any fixed predicate within
// absolute error eps with probability >= 1 - delta. Because the samples
// come from an IQS structure, estimates across a long session are
// independent, so failure counts concentrate (experiment E11).
//
// EstimateFraction drives any RangeSampler; the sample size is chosen
// from (eps, delta) via the additive Hoeffding bound
// s = ceil(ln(2/delta) / (2 eps^2)).

#ifndef IQS_SAMPLING_ESTIMATOR_H_
#define IQS_SAMPLING_ESTIMATOR_H_

#include <cstddef>
#include <functional>
#include <optional>

#include "iqs/range/range_sampler.h"
#include "iqs/util/rng.h"

namespace iqs {

struct FractionEstimate {
  double fraction = 0.0;       // estimated P(predicate | element in range)
  size_t samples_used = 0;
  double epsilon = 0.0;        // the guarantee actually provided
  double delta = 0.0;
};

// Number of WR samples needed for absolute error `epsilon` with failure
// probability `delta` (Hoeffding).
size_t SamplesForEstimate(double epsilon, double delta);

// Estimates the fraction of elements in S ∩ [lo, hi] whose POSITION
// satisfies `predicate`, drawing the Hoeffding-sized sample from
// `sampler`. Returns nullopt when the range is empty. Each call is
// independent of all previous calls (the IQS guarantee).
//
// NOTE (weighted structures): the estimate is weight-weighted — it
// estimates sum of qualifying weight / total weight of the range. For the
// plain "fraction of tuples" semantics, build the sampler with unit
// weights.
std::optional<FractionEstimate> EstimateFraction(
    const RangeSampler& sampler, double lo, double hi,
    const std::function<bool(size_t)>& predicate, double epsilon,
    double delta, Rng* rng);

}  // namespace iqs

#endif  // IQS_SAMPLING_ESTIMATOR_H_
