#include "iqs/sampling/wor_query.h"

#include <unordered_set>

#include "iqs/sampling/set_sampler.h"
#include "iqs/util/check.h"

namespace iqs {

void WorQueryPositions(const RangeSampler& sampler,
                       std::span<const double> weights, size_t a, size_t b,
                       size_t s, Rng* rng, std::vector<size_t>* out) {
  IQS_CHECK(a <= b && b < sampler.n());
  IQS_CHECK(weights.empty() || weights.size() == sampler.n());
  const size_t range_size = b - a + 1;
  s = std::min(s, range_size);
  if (s == 0) return;

  if (s * 2 > range_size) {
    // Dense regime: enumerate the range and subsample directly.
    if (weights.empty()) {
      std::vector<size_t> offsets;
      UniformWorSample(range_size, s, rng, &offsets);
      out->reserve(out->size() + s);
      for (size_t off : offsets) out->push_back(a + off);
    } else {
      std::vector<double> range_weights(
          weights.begin() + static_cast<ptrdiff_t>(a),
          weights.begin() + static_cast<ptrdiff_t>(b) + 1);
      std::vector<size_t> offsets;
      WeightedWorSample(range_weights, s, rng, &offsets);
      out->reserve(out->size() + s);
      for (size_t off : offsets) out->push_back(a + off);
    }
    return;
  }

  // Sparse regime: WR draws, keep distinct. Conditioned on being new,
  // each draw is distributed over the remaining elements proportionally
  // to weight — exactly successive (WoR) sampling.
  std::unordered_set<size_t> seen;
  seen.reserve(2 * s);
  out->reserve(out->size() + s);
  // With s <= range/2 the acceptance rate stays >= 1/2 in the uniform
  // case; the budget below is generous for that regime, and the weighted
  // fallback guards against pathological skew.
  size_t budget = 16 * (s + 4);
  std::vector<size_t> batch;
  while (seen.size() < s && budget > 0) {
    batch.clear();
    const size_t ask = std::min<size_t>(s - seen.size() + 4, budget);
    sampler.QueryPositions(a, b, ask, rng, &batch);
    budget -= ask;
    // Structures may return the WR draws grouped (e.g. by chunk part);
    // the multiset is exchangeable but the sequence is not, and taking a
    // prefix of distinct values needs an i.i.d. SEQUENCE. Shuffling the
    // batch restores it.
    for (size_t i = batch.size(); i > 1; --i) {
      std::swap(batch[i - 1], batch[rng->Below(i)]);
    }
    for (size_t p : batch) {
      if (seen.size() >= s) break;
      if (seen.insert(p).second) out->push_back(p);
    }
  }
  if (seen.size() == s) return;

  // Fallback (heavy weight skew): finish by scanning the range with the
  // streaming weighted-WoR algorithm over the remaining elements.
  std::vector<double> remaining_weights;
  std::vector<size_t> remaining_positions;
  remaining_weights.reserve(range_size - seen.size());
  for (size_t p = a; p <= b; ++p) {
    if (seen.contains(p)) continue;
    remaining_positions.push_back(p);
    remaining_weights.push_back(weights.empty() ? 1.0 : weights[p]);
  }
  std::vector<size_t> extra;
  WeightedWorSample(remaining_weights, s - seen.size(), rng, &extra);
  for (size_t idx : extra) out->push_back(remaining_positions[idx]);
}

bool WorQuery(const RangeSampler& sampler, std::span<const double> weights,
              double lo, double hi, size_t s, Rng* rng,
              std::vector<size_t>* out) {
  size_t a = 0;
  size_t b = 0;
  if (!sampler.ResolveInterval(lo, hi, &a, &b)) return false;
  WorQueryPositions(sampler, weights, a, b, s, rng, out);
  return true;
}

}  // namespace iqs
