// Sampling-scheme primitives (paper Section 1 variants).
//
// The paper's IQS queries come in three flavours: with-replacement (WR),
// without-replacement (WoR), and weighted. These free functions implement
// the scheme-level machinery every index structure shares:
//
//   * uniform WR / WoR sampling from [0, n),
//   * the O(s) WoR -> WR conversion the paper cites ([19], Section 2),
//   * weighted WoR via Efraimidis-Spirakis exponential keys,
//   * a streaming reservoir sampler.

#ifndef IQS_SAMPLING_SET_SAMPLER_H_
#define IQS_SAMPLING_SET_SAMPLER_H_

#include <cstddef>
#include <span>
#include <vector>

#include "iqs/util/rng.h"

namespace iqs {

// Appends `s` independent uniform WR samples from [0, n) to `out`. O(s).
void UniformWrSample(size_t n, size_t s, Rng* rng, std::vector<size_t>* out);

// Appends a uniform WoR sample of size `s` from [0, n) to `out`
// (s <= n; every size-s subset equally likely; order unspecified).
// Floyd's algorithm: O(s) expected time and space.
void UniformWorSample(size_t n, size_t s, Rng* rng, std::vector<size_t>* out);

// Converts a WoR sample set over a ground set of size `n` into a WR sample
// set of the same size in O(s) time (paper Section 2): replay the WR
// process — each draw is "fresh" with probability (n - seen)/n, consuming
// the next WoR element, otherwise it repeats a uniformly chosen earlier
// draw. `wor` must hold distinct elements of the ground set.
std::vector<size_t> WorToWr(std::span<const size_t> wor, size_t n, Rng* rng);

// Appends a *weighted* WoR sample of size s (s <= n): elements are drawn
// sequentially, each proportional to weight among the not-yet-drawn
// (successive sampling). Efraimidis-Spirakis: keep the s largest
// u^(1/w) keys. O(n log s).
void WeightedWorSample(std::span<const double> weights, size_t s, Rng* rng,
                       std::vector<size_t>* out);

// Classic reservoir sampling: maintains a uniform WoR sample of size s
// over a stream of unknown length.
class ReservoirSampler {
 public:
  explicit ReservoirSampler(size_t s) : capacity_(s) {}

  // Offers stream element `value`; O(1).
  void Offer(size_t value, Rng* rng) {
    ++seen_;
    if (reservoir_.size() < capacity_) {
      reservoir_.push_back(value);
    } else {
      const size_t j = static_cast<size_t>(rng->Below(seen_));
      if (j < capacity_) reservoir_[j] = value;
    }
  }

  const std::vector<size_t>& sample() const { return reservoir_; }
  size_t seen() const { return seen_; }

 private:
  size_t capacity_;
  size_t seen_ = 0;
  std::vector<size_t> reservoir_;
};

}  // namespace iqs

#endif  // IQS_SAMPLING_SET_SAMPLER_H_
