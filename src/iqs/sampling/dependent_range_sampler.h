// The conventional (DEPENDENT) query-sampling structure of paper Section 2
// — the negative control for cross-query independence.
//
// Preprocessing assigns each element a rank from one global random
// permutation. A WoR query over [a, b] returns the s elements of lowest
// rank in the range (top-k range reporting), implemented with a sparse-
// table RMQ and a candidate heap in O(log n)-preprocessing-free
// O(s log s) time per query after O(1) RMQs.
//
// The output is a perfectly uniform WoR sample of the range — for a single
// query. Across queries the outputs are strongly correlated: repeating the
// same query always returns the same set. bench_independence (E11) and the
// independence property tests rely on this structure to show what IQS
// buys.

#ifndef IQS_SAMPLING_DEPENDENT_RANGE_SAMPLER_H_
#define IQS_SAMPLING_DEPENDENT_RANGE_SAMPLER_H_

#include <span>
#include <vector>

#include "iqs/range/range_sampler.h"
#include "iqs/range/rmq.h"
#include "iqs/util/rng.h"

namespace iqs {

class DependentRangeSampler : public RangeSampler {
 public:
  // The permutation is fixed at build time from `build_rng` — queries use
  // no fresh randomness for the WoR set itself.
  DependentRangeSampler(std::span<const double> keys, Rng* build_rng);

  // Returns the min(s, b - a + 1) positions of lowest rank in [a, b] —
  // a uniform WoR sample of the range that is IDENTICAL on every repeat.
  void QueryWor(size_t a, size_t b, size_t s,
                std::vector<size_t>* out) const;

  // RangeSampler interface: WR samples obtained from the (deterministic)
  // WoR set via the O(s) conversion. The repetition pattern uses fresh
  // randomness but the underlying support set does not, so outputs remain
  // correlated across queries.
  void QueryPositions(size_t a, size_t b, size_t s, Rng* rng,
                      std::vector<size_t>* out) const override;

  size_t MemoryBytes() const override {
    return keys_.capacity() * sizeof(double) +
           ranks_.capacity() * sizeof(uint32_t) + rmq_.MemoryBytes();
  }

  std::string_view name() const override { return "dependent-permutation"; }

 private:
  std::vector<uint32_t> ranks_;
  SparseTableRmq rmq_;
};

}  // namespace iqs

#endif  // IQS_SAMPLING_DEPENDENT_RANGE_SAMPLER_H_
