#include "iqs/em/em_weighted_range_sampler.h"

#include <algorithm>

#include "iqs/alias/alias_table.h"
#include "iqs/sampling/multinomial.h"
#include "iqs/util/check.h"

namespace iqs::em {

EmWeightedRangeSampler::EmWeightedRangeSampler(const EmArray* sorted_data,
                                               size_t memory_words, Rng* rng)
    : data_(sorted_data), memory_words_(memory_words), btree_(sorted_data) {
  IQS_CHECK(data_->record_words() == 2);
  const size_t num_blocks = data_->num_blocks();
  nodes_.reserve(2 * num_blocks);
  root_ = BuildNode(0, num_blocks, rng);
}

size_t EmWeightedRangeSampler::BuildNode(size_t first_block,
                                         size_t num_blocks, Rng* rng) {
  const size_t id = nodes_.size();
  nodes_.emplace_back();
  nodes_[id].first_block = first_block;
  nodes_[id].num_blocks = num_blocks;
  const size_t per_block = data_->records_per_block();
  const size_t first_record = first_block * per_block;
  const size_t record_count =
      std::min(num_blocks * per_block, data_->size() - first_record);
  nodes_[id].pool = std::make_unique<WeightedSamplePool>(
      data_, first_record, record_count, memory_words_, rng);
  if (num_blocks > 1) {
    const size_t half = num_blocks / 2;
    const size_t left = BuildNode(first_block, half, rng);
    const size_t right = BuildNode(first_block + half, num_blocks - half, rng);
    nodes_[id].left = left;
    nodes_[id].right = right;
  }
  return id;
}

void EmWeightedRangeSampler::Decompose(size_t node, size_t block_lo,
                                       size_t block_hi,
                                       std::vector<size_t>* cover) const {
  const PoolNode& pool_node = nodes_[node];
  const size_t node_lo = pool_node.first_block;
  const size_t node_hi = pool_node.first_block + pool_node.num_blocks - 1;
  if (node_lo > block_hi || node_hi < block_lo) return;
  if (block_lo <= node_lo && node_hi <= block_hi) {
    cover->push_back(node);
    return;
  }
  IQS_DCHECK(pool_node.left != kNone);
  Decompose(pool_node.left, block_lo, block_hi, cover);
  Decompose(pool_node.right, block_lo, block_hi, cover);
}

void EmWeightedRangeSampler::ReadRange(size_t lo, size_t hi,
                                       std::vector<uint64_t>* keys,
                                       std::vector<double>* weights) const {
  EmReader reader(data_, lo, hi - lo + 1);
  uint64_t record[2];
  while (reader.HasNext()) {
    reader.Next(record);
    keys->push_back(record[0]);
    weights->push_back(WeightedSamplePool::WeightOfWord(record[1]));
  }
}

bool EmWeightedRangeSampler::Query(uint64_t lo, uint64_t hi, size_t s,
                                   Rng* rng, std::vector<uint64_t>* out) {
  if (lo > hi) return false;
  const size_t a = btree_.LowerBound(lo);
  const size_t b_excl = btree_.UpperBound(hi);
  if (a >= b_excl) return false;
  if (s == 0) return true;
  const size_t b = b_excl - 1;

  const size_t per_block = data_->records_per_block();
  const size_t block_a = a / per_block;
  const size_t block_b = b / per_block;

  // Partial boundary blocks read directly; full interior blocks go to
  // the weighted pool decomposition. (Same geometry as EmRangeSampler.)
  std::vector<uint64_t> head_keys;
  std::vector<double> head_weights;
  std::vector<uint64_t> tail_keys;
  std::vector<double> tail_weights;
  size_t full_lo = block_a;
  size_t full_hi = block_b;
  const bool head_partial = a % per_block != 0;
  if (head_partial || block_a == block_b) {
    const size_t block_end =
        std::min((block_a + 1) * per_block, data_->size()) - 1;
    ReadRange(a, std::min(b, block_end), &head_keys, &head_weights);
    full_lo = block_a + 1;
  }
  const bool tail_partial =
      (b + 1) % per_block != 0 && b + 1 != data_->size();
  if (block_b > block_a && (tail_partial || full_lo > block_b)) {
    ReadRange(std::max(a, block_b * per_block), b, &tail_keys,
              &tail_weights);
    full_hi = block_b - 1;
  }

  std::vector<size_t> cover;
  if (full_lo <= full_hi) Decompose(root_, full_lo, full_hi, &cover);

  // Budget split by WEIGHT.
  double head_weight = 0.0;
  for (double w : head_weights) head_weight += w;
  double tail_weight = 0.0;
  for (double w : tail_weights) tail_weight += w;
  std::vector<double> part_weights = {head_weight, tail_weight};
  for (size_t node : cover) {
    part_weights.push_back(nodes_[node].pool->total_weight());
  }
  const std::vector<uint32_t> counts = MultinomialSplit(part_weights, s, rng);

  out->reserve(out->size() + s);
  if (counts[0] > 0) {
    AliasTable head_alias(head_weights);
    for (uint32_t i = 0; i < counts[0]; ++i) {
      out->push_back(head_keys[head_alias.Sample(rng)]);
    }
  }
  if (counts[1] > 0) {
    AliasTable tail_alias(tail_weights);
    for (uint32_t i = 0; i < counts[1]; ++i) {
      out->push_back(tail_keys[tail_alias.Sample(rng)]);
    }
  }
  for (size_t c = 0; c < cover.size(); ++c) {
    if (counts[2 + c] == 0) continue;
    nodes_[cover[c]].pool->Query(counts[2 + c], rng, out);
  }
  return true;
}

bool EmWeightedRangeSampler::ReportThenSample(
    uint64_t lo, uint64_t hi, size_t s, Rng* rng,
    std::vector<uint64_t>* out) const {
  if (lo > hi) return false;
  const size_t a = btree_.LowerBound(lo);
  const size_t b_excl = btree_.UpperBound(hi);
  if (a >= b_excl) return false;
  std::vector<uint64_t> keys;
  std::vector<double> weights;
  ReadRange(a, b_excl - 1, &keys, &weights);
  AliasTable alias(weights);
  out->reserve(out->size() + s);
  for (size_t i = 0; i < s; ++i) out->push_back(keys[alias.Sample(rng)]);
  return true;
}

}  // namespace iqs::em
