// Resumable external merge sort — the engine behind the de-amortized
// sample pool (paper Section 8: "a worst-case bound ... with standard
// de-amortization techniques"). Identical algorithm and I/O complexity to
// ExternalSort (em_sort.h), but driven by Step() calls that each advance
// roughly one record of work, so a caller can interleave a rebuild with
// query processing and bound the I/Os any single query absorbs.

#ifndef IQS_EM_STEPWISE_SORT_H_
#define IQS_EM_STEPWISE_SORT_H_

#include <memory>
#include <queue>
#include <vector>

#include "iqs/em/em_array.h"

namespace iqs::em {

class StepwiseSort {
 public:
  // Sorts `input`'s records ascending by first word with ~`memory_words`
  // of buffer. `input` must stay alive and unmodified until done.
  StepwiseSort(const EmArray* input, size_t memory_words);

  bool done() const { return phase_ == Phase::kDone; }

  // Advances ~one record of work (amortizing to ~1/B I/Os per call plus
  // pass transitions). No-op once done.
  void Step();

  // Runs to completion (equivalent to ExternalSort).
  void Finish() {
    while (!done()) Step();
  }

  // The sorted array; valid only once done.
  EmArray& result() {
    IQS_CHECK(done());
    return current_;
  }

 private:
  enum class Phase { kRunFill, kRunFlush, kMergeSetup, kMerge, kDone };

  struct RunBounds {
    size_t first;
    size_t count;
  };

  void StartPassOrFinish();

  const EmArray* input_;
  size_t memory_words_;
  size_t record_words_;
  size_t records_per_load_;
  size_t fan_in_;

  Phase phase_ = Phase::kRunFill;

  // Run formation state.
  std::unique_ptr<EmReader> input_reader_;
  std::vector<uint64_t> load_;       // flattened records
  std::vector<uint32_t> load_order_; // sorted permutation of load records
  size_t load_records_ = 0;
  size_t flush_next_ = 0;
  size_t formed_records_ = 0;

  // Current pass output.
  EmArray current_;
  std::unique_ptr<EmWriter> writer_;
  std::vector<RunBounds> bounds_;

  // Merge state.
  EmArray previous_;
  std::vector<RunBounds> prev_bounds_;
  size_t next_group_ = 0;
  size_t out_position_ = 0;
  std::vector<EmReader> readers_;
  std::vector<std::vector<uint64_t>> heads_;
  using HeapEntry = std::pair<uint64_t, size_t>;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>
      heap_;
  size_t group_records_ = 0;
};

}  // namespace iqs::em

#endif  // IQS_EM_STEPWISE_SORT_H_
