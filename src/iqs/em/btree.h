// Static external B-tree over a sorted on-device array (paper Section 8's
// reporting baseline: O(log_B n + k/B) I/Os per range query).
//
// The leaf level is the sorted data array itself; internal levels store,
// per node, the max key of each child, with fanout Θ(B). The tree is
// static and children are laid out consecutively, so a descent tracks the
// child's index arithmetically and a search returns the global *record
// position* of the sought key — which is what the EM range samplers need
// to translate key ranges into position ranges.
//
// Records may be multi-word (e.g. (key, weight) pairs); the KEY is always
// the record's first word.

#ifndef IQS_EM_BTREE_H_
#define IQS_EM_BTREE_H_

#include <cstdint>
#include <vector>

#include "iqs/em/em_array.h"

namespace iqs::em {

class BTree {
 public:
  // `sorted_data` must hold records ascending by their first word.
  // Building reads the data once and writes the internal levels (counted
  // I/Os).
  explicit BTree(const EmArray* sorted_data);

  // Global position of the first record >= key (== size() if none).
  // Costs (height) node reads + 1 leaf read.
  size_t LowerBound(uint64_t key) const;

  // Global position of the first record > key.
  size_t UpperBound(uint64_t key) const;

  // Appends all KEYS in [lo, hi] to `out`; returns their count.
  // O(log_B n + k/B) I/Os.
  size_t RangeReport(uint64_t lo, uint64_t hi,
                     std::vector<uint64_t>* out) const;

  size_t size() const { return data_->size(); }
  size_t height() const { return levels_.size(); }
  const EmArray* data() const { return data_; }

 private:
  struct Level {
    EmArray nodes;            // node blocks: [count, maxkey_0, ...]
    size_t num_nodes = 0;
  };

  // Position search shared by Lower/UpperBound: `strict` selects
  // "first > key" instead of "first >= key".
  size_t Search(uint64_t key, bool strict) const;

  const EmArray* data_;
  size_t fanout_;
  std::vector<Level> levels_;  // levels_[0] is just above the leaves
};

}  // namespace iqs::em

#endif  // IQS_EM_BTREE_H_
