// EM set sampling via a precomputed sample pool (paper Section 8).
//
// The naive EM strategy pays one random I/O per sample: s I/Os for s
// samples. Hu et al.'s lower bound says Ω(min(s, (s/B) log_{M/B}(n/B)))
// is required, and the pool meets it: preprocessing stores n WR samples
// in random order ("clean"); a query streams the next s clean samples at
// s/B I/Os, and when the pool runs dry it is rebuilt with sorting in
// O((n/B) log_{M/B}(n/B)) I/Os — amortized (1/B) log_{M/B}(n/B) per
// sample handed out.
//
// The rebuild uses the tag-sort-untag trick so it never random-accesses
// the data: draw n random indices tagged with their pool position, sort
// by index, merge-scan against the data to attach values, sort back by
// pool position, strip the tags.

#ifndef IQS_EM_SAMPLE_POOL_H_
#define IQS_EM_SAMPLE_POOL_H_

#include <cstdint>
#include <vector>

#include "iqs/em/em_array.h"
#include "iqs/util/rng.h"

namespace iqs::em {

class SamplePool {
 public:
  // A pool over records [first, first + count) of `data` (1-word records).
  // `memory_words` is the M budget handed to the external sorts.
  // The constructor performs the initial build (counted on the device).
  SamplePool(const EmArray* data, size_t first, size_t count,
             size_t memory_words, Rng* rng);

  // Appends `s` independent WR samples of the data range to `out`.
  // ceil(s/B)-ish read I/Os plus amortized rebuild cost.
  void Query(size_t s, Rng* rng, std::vector<uint64_t>* out);

  size_t count() const { return count_; }
  uint64_t rebuilds() const { return rebuilds_; }
  size_t clean_remaining() const { return count_ - clean_position_; }

  // The naive baseline: `s` independent WR samples by direct random
  // access — exactly s read I/Os.
  static void NaiveQuery(const EmArray& data, size_t first, size_t count,
                         size_t s, Rng* rng, std::vector<uint64_t>* out);

 private:
  void Rebuild(Rng* rng);

  const EmArray* data_;
  size_t first_;
  size_t count_;
  size_t memory_words_;
  EmArray pool_;
  size_t clean_position_ = 0;
  uint64_t rebuilds_ = 0;
};

}  // namespace iqs::em

#endif  // IQS_EM_SAMPLE_POOL_H_
