// WEIGHTED EM set sampling — a practical extension beyond the paper.
//
// Section 8 treats WR (uniform) sampling; the paper's Section 9 notes
// that weighted range sampling in EM "remains open" as a matter of
// matching lower bounds. This structure does not claim optimality; it
// transplants the sample-pool recipe to the weighted case with the same
// amortized I/O shape:
//
//   * data: n records (value, weight) on disk;
//   * one streaming pass computes per-block weight totals (n/B doubles,
//     assumed to fit in memory — the standard fence-pointer assumption);
//   * pool rebuild draws n i.i.d. weighted indices via an in-memory alias
//     over blocks + tag-sort-scan to resolve the within-block draw
//     against the actual weights, then sort-by-position restores i.i.d.
//     order: O((n/B) log_{M/B}(n/B)) I/Os, no random access;
//   * queries stream clean pool entries at s/B I/Os.
//
// Every sample is value v with probability w(v) / W, independent across
// all queries — the weighted-IQS guarantee on disk-resident data.

#ifndef IQS_EM_WEIGHTED_SAMPLE_POOL_H_
#define IQS_EM_WEIGHTED_SAMPLE_POOL_H_

#include <cstdint>
#include <vector>

#include "iqs/alias/alias_table.h"
#include "iqs/em/em_array.h"
#include "iqs/util/rng.h"

namespace iqs::em {

class WeightedSamplePool {
 public:
  // `data` holds 2-word records (value, weight-as-double-bits); weights
  // must be positive. `memory_words` is the M budget for the sorts.
  // The pool covers records [first, first + count) of `data`.
  WeightedSamplePool(const EmArray* data, size_t first, size_t count,
                     size_t memory_words, Rng* rng);
  WeightedSamplePool(const EmArray* data, size_t memory_words, Rng* rng)
      : WeightedSamplePool(data, 0, data->size(), memory_words, rng) {}

  // Total weight of the covered records (computed at build).
  double total_weight() const { return total_weight_; }

  // Appends `s` independent weighted samples (values) to `out`.
  void Query(size_t s, Rng* rng, std::vector<uint64_t>* out);

  size_t count() const { return count_; }
  uint64_t rebuilds() const { return rebuilds_; }

  // Helper to write (value, weight) records.
  static void AppendRecord(EmWriter* writer, uint64_t value, double weight);
  static double WeightOfWord(uint64_t word);

  // Baseline: one random block read per sample, block chosen by the
  // in-memory block alias, element within the block by an on-the-fly
  // alias — s I/Os for s samples.
  void NaiveQuery(size_t s, Rng* rng, std::vector<uint64_t>* out) const;

 private:
  void Rebuild(Rng* rng);

  // Inclusive record range of the (possibly partial) data block with
  // local index `local_block`, clamped to [first_, first_ + count_).
  void BlockRecordRange(size_t local_block, size_t* first_record,
                        size_t* num_records) const;

  const EmArray* data_;
  size_t memory_words_;
  size_t first_ = 0;
  size_t count_ = 0;
  size_t first_block_ = 0;  // global index of the first covered block
  double total_weight_ = 0.0;
  // In-memory block metadata (covered-range blocks): weight per block.
  AliasTable block_alias_;
  EmArray pool_;
  size_t clean_position_ = 0;
  uint64_t rebuilds_ = 0;
};

}  // namespace iqs::em

#endif  // IQS_EM_WEIGHTED_SAMPLE_POOL_H_
