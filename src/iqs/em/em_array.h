// A fixed-record-width array laid out on the block device, plus buffered
// sequential readers/writers — the basic on-disk collection every EM
// algorithm in Section 8 manipulates. Records are 1 or 2 words (2-word
// records hold (key, payload) pairs used by the external sort's
// tag-sort-untag trick).

#ifndef IQS_EM_EM_ARRAY_H_
#define IQS_EM_EM_ARRAY_H_

#include <cstdint>
#include <vector>

#include "iqs/em/block_device.h"
#include "iqs/util/check.h"

namespace iqs::em {

class EmArray {
 public:
  // An empty array of `record_words`-word records on `device`.
  EmArray(BlockDevice* device, size_t record_words)
      : device_(device), record_words_(record_words) {
    IQS_CHECK(device_ != nullptr);
    IQS_CHECK(record_words_ >= 1 &&
              record_words_ <= device_->block_words());
  }

  BlockDevice* device() const { return device_; }
  size_t record_words() const { return record_words_; }
  size_t size() const { return num_records_; }
  size_t records_per_block() const {
    return device_->block_words() / record_words_;
  }
  size_t num_blocks() const { return block_ids_.size(); }
  size_t block_id(size_t i) const { return block_ids_[i]; }

  // Random access to one record: reads its block (1 I/O) into `out`
  // (record_words words).
  void ReadRecord(size_t index, uint64_t* out) const;

  // For building: appends a block id (used by Writer).
  void AppendBlockId(size_t id) { block_ids_.push_back(id); }
  void set_size(size_t n) { num_records_ = n; }

 private:
  BlockDevice* device_;
  size_t record_words_;
  size_t num_records_ = 0;
  std::vector<size_t> block_ids_;
};

// Sequential writer: one block of buffer (B words of memory).
class EmWriter {
 public:
  explicit EmWriter(EmArray* array)
      : array_(array), buffer_(array->device()->block_words(), 0) {}

  // Appends one record (record_words words).
  void Append(const uint64_t* record);
  void Append1(uint64_t word) { Append(&word); }
  void Append2(uint64_t a, uint64_t b) {
    const uint64_t record[2] = {a, b};
    Append(record);
  }

  // Flushes the trailing partial block. Must be called exactly once.
  void Finish();

 private:
  EmArray* array_;
  std::vector<uint64_t> buffer_;
  size_t in_buffer_ = 0;   // records buffered
  size_t written_ = 0;     // records written in total
  bool finished_ = false;
};

// Sequential reader over a record range: one block of buffer.
class EmReader {
 public:
  // Reads records [first, first + count).
  EmReader(const EmArray* array, size_t first, size_t count);

  bool HasNext() const { return position_ < end_; }
  // Reads the next record into `out` (record_words words).
  void Next(uint64_t* out);
  uint64_t Next1() {
    uint64_t word = 0;
    Next(&word);
    return word;
  }

 private:
  const EmArray* array_;
  std::vector<uint64_t> buffer_;
  size_t position_;
  size_t end_;
  size_t buffered_block_ = ~size_t{0};
};

}  // namespace iqs::em

#endif  // IQS_EM_EM_ARRAY_H_
