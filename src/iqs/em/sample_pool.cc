#include "iqs/em/sample_pool.h"

#include "iqs/em/em_sort.h"
#include "iqs/util/check.h"

namespace iqs::em {

SamplePool::SamplePool(const EmArray* data, size_t first, size_t count,
                       size_t memory_words, Rng* rng)
    : data_(data),
      first_(first),
      count_(count),
      memory_words_(memory_words),
      pool_(data->device(), 1) {
  IQS_CHECK(data_->record_words() == 1);
  IQS_CHECK(count_ > 0);
  IQS_CHECK(first_ + count_ <= data_->size());
  Rebuild(rng);
}

void SamplePool::Rebuild(Rng* rng) {
  ++rebuilds_;
  BlockDevice* device = data_->device();

  // 1. Tag: records (random data index, pool position), written
  //    sequentially.
  EmArray tagged(device, 2);
  {
    EmWriter writer(&tagged);
    for (size_t pos = 0; pos < count_; ++pos) {
      writer.Append2(first_ + rng->Below(count_), pos);
    }
    writer.Finish();
  }

  // 2. Sort by data index.
  EmArray by_index = ExternalSort(tagged, memory_words_);

  // 3. Merge-scan against the data range: both streams are ordered by
  //    index, so one sequential pass attaches values.
  EmArray valued(device, 2);  // (pool position, value)
  {
    EmWriter writer(&valued);
    EmReader tag_reader(&by_index, 0, by_index.size());
    EmReader data_reader(data_, first_, count_);
    size_t data_position = first_;
    uint64_t value = 0;
    bool value_loaded = false;
    uint64_t record[2];
    while (tag_reader.HasNext()) {
      tag_reader.Next(record);
      const uint64_t want_index = record[0];
      while (!value_loaded || data_position <= want_index) {
        value = data_reader.Next1();
        ++data_position;
        value_loaded = true;
      }
      writer.Append2(record[1], value);
    }
    writer.Finish();
  }

  // 4. Sort back by pool position, restoring the random (i.i.d.) order.
  EmArray by_position = ExternalSort(valued, memory_words_);

  // 5. Strip tags into the 1-word pool.
  pool_ = EmArray(data_->device(), 1);
  {
    EmWriter writer(&pool_);
    EmReader reader(&by_position, 0, by_position.size());
    uint64_t record[2];
    while (reader.HasNext()) {
      reader.Next(record);
      writer.Append1(record[1]);
    }
    writer.Finish();
  }
  clean_position_ = 0;
}

void SamplePool::Query(size_t s, Rng* rng, std::vector<uint64_t>* out) {
  out->reserve(out->size() + s);
  while (s > 0) {
    if (clean_position_ == count_) Rebuild(rng);
    const size_t take = std::min(s, count_ - clean_position_);
    EmReader reader(&pool_, clean_position_, take);
    for (size_t i = 0; i < take; ++i) out->push_back(reader.Next1());
    clean_position_ += take;
    s -= take;
  }
}

void SamplePool::NaiveQuery(const EmArray& data, size_t first, size_t count,
                            size_t s, Rng* rng,
                            std::vector<uint64_t>* out) {
  out->reserve(out->size() + s);
  for (size_t i = 0; i < s; ++i) {
    uint64_t value = 0;
    data.ReadRecord(first + rng->Below(count), &value);
    out->push_back(value);
  }
}

}  // namespace iqs::em
