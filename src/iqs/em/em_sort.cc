#include "iqs/em/em_sort.h"

#include <algorithm>
#include <queue>
#include <vector>

#include "iqs/util/check.h"

namespace iqs::em {

namespace {

struct RunBounds {
  size_t first;
  size_t count;
};

}  // namespace

EmArray ExternalSort(const EmArray& input, size_t memory_words) {
  BlockDevice* device = input.device();
  const size_t record_words = input.record_words();
  IQS_CHECK(memory_words >= 2 * device->block_words());
  const size_t records_per_load =
      std::max<size_t>(1, memory_words / record_words);

  // Phase 1: run formation.
  EmArray runs(device, record_words);
  std::vector<RunBounds> bounds;
  {
    EmWriter writer(&runs);
    EmReader reader(&input, 0, input.size());
    std::vector<uint64_t> load;  // flattened records
    size_t consumed = 0;
    while (consumed < input.size()) {
      const size_t take = std::min(records_per_load, input.size() - consumed);
      load.resize(take * record_words);
      for (size_t i = 0; i < take; ++i) {
        reader.Next(&load[i * record_words]);
      }
      // Sort records in memory by first word (stable order of payload
      // words preserved within a record by moving whole records).
      std::vector<uint32_t> order(take);
      for (size_t i = 0; i < take; ++i) order[i] = static_cast<uint32_t>(i);
      std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
        return load[a * record_words] < load[b * record_words];
      });
      for (uint32_t i : order) writer.Append(&load[i * record_words]);
      bounds.push_back({consumed, take});
      consumed += take;
    }
    writer.Finish();
  }

  // Phase 2: k-way merge passes.
  const size_t fan_in = std::max<size_t>(
      2, memory_words / device->block_words() - 1);
  EmArray current = std::move(runs);
  while (bounds.size() > 1) {
    EmArray merged(device, record_words);
    EmWriter writer(&merged);
    std::vector<RunBounds> next_bounds;
    size_t out_position = 0;
    for (size_t group = 0; group < bounds.size(); group += fan_in) {
      const size_t group_end = std::min(group + fan_in, bounds.size());
      // One buffered reader per run in the group: (group size) * B words.
      std::vector<EmReader> readers;
      readers.reserve(group_end - group);
      size_t group_records = 0;
      for (size_t r = group; r < group_end; ++r) {
        readers.emplace_back(&current, bounds[r].first, bounds[r].count);
        group_records += bounds[r].count;
      }
      // Heap of (key, reader index) with current records held aside.
      using HeapEntry = std::pair<uint64_t, size_t>;
      std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                          std::greater<>> heap;
      std::vector<std::vector<uint64_t>> heads(
          readers.size(), std::vector<uint64_t>(record_words));
      for (size_t r = 0; r < readers.size(); ++r) {
        if (readers[r].HasNext()) {
          readers[r].Next(heads[r].data());
          heap.emplace(heads[r][0], r);
        }
      }
      while (!heap.empty()) {
        const auto [key, r] = heap.top();
        heap.pop();
        writer.Append(heads[r].data());
        if (readers[r].HasNext()) {
          readers[r].Next(heads[r].data());
          heap.emplace(heads[r][0], r);
        }
      }
      next_bounds.push_back({out_position, group_records});
      out_position += group_records;
    }
    writer.Finish();
    current = std::move(merged);
    bounds = std::move(next_bounds);
  }
  return current;
}

}  // namespace iqs::em
