#include "iqs/em/em_array.h"

#include <algorithm>

namespace iqs::em {

void EmArray::ReadRecord(size_t index, uint64_t* out) const {
  IQS_CHECK(index < num_records_);
  const size_t per_block = records_per_block();
  const size_t block = index / per_block;
  const size_t offset = (index % per_block) * record_words_;
  std::vector<uint64_t> buffer(device_->block_words());
  device_->Read(block_ids_[block], buffer);
  std::copy(buffer.begin() + static_cast<ptrdiff_t>(offset),
            buffer.begin() + static_cast<ptrdiff_t>(offset + record_words_),
            out);
}

void EmWriter::Append(const uint64_t* record) {
  IQS_CHECK(!finished_);
  const size_t per_block = array_->records_per_block();
  std::copy(record, record + array_->record_words(),
            buffer_.begin() +
                static_cast<ptrdiff_t>(in_buffer_ * array_->record_words()));
  ++in_buffer_;
  ++written_;
  if (in_buffer_ == per_block) {
    const size_t id = array_->device()->AllocateBlock();
    array_->device()->Write(id, buffer_);
    array_->AppendBlockId(id);
    in_buffer_ = 0;
  }
}

void EmWriter::Finish() {
  IQS_CHECK(!finished_);
  finished_ = true;
  if (in_buffer_ > 0) {
    std::fill(buffer_.begin() +
                  static_cast<ptrdiff_t>(in_buffer_ * array_->record_words()),
              buffer_.end(), 0);
    const size_t id = array_->device()->AllocateBlock();
    array_->device()->Write(id, buffer_);
    array_->AppendBlockId(id);
  }
  array_->set_size(written_);
}

EmReader::EmReader(const EmArray* array, size_t first, size_t count)
    : array_(array),
      buffer_(array->device()->block_words()),
      position_(first),
      end_(first + count) {
  IQS_CHECK(end_ <= array_->size());
}

void EmReader::Next(uint64_t* out) {
  IQS_CHECK(HasNext());
  const size_t per_block = array_->records_per_block();
  const size_t block = position_ / per_block;
  if (block != buffered_block_) {
    array_->device()->Read(array_->block_id(block), buffer_);
    buffered_block_ = block;
  }
  const size_t offset = (position_ % per_block) * array_->record_words();
  std::copy(buffer_.begin() + static_cast<ptrdiff_t>(offset),
            buffer_.begin() +
                static_cast<ptrdiff_t>(offset + array_->record_words()),
            out);
  ++position_;
}

}  // namespace iqs::em
