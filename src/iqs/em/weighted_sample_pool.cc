#include "iqs/em/weighted_sample_pool.h"

#include <algorithm>
#include <bit>

#include "iqs/em/em_sort.h"
#include "iqs/util/check.h"

namespace iqs::em {

void WeightedSamplePool::AppendRecord(EmWriter* writer, uint64_t value,
                                      double weight) {
  IQS_CHECK(weight > 0.0);
  writer->Append2(value, std::bit_cast<uint64_t>(weight));
}

double WeightedSamplePool::WeightOfWord(uint64_t word) {
  return std::bit_cast<double>(word);
}

WeightedSamplePool::WeightedSamplePool(const EmArray* data, size_t first,
                                       size_t count, size_t memory_words,
                                       Rng* rng)
    : data_(data),
      memory_words_(memory_words),
      first_(first),
      count_(count),
      pool_(data->device(), 1) {
  IQS_CHECK(data_->record_words() == 2);
  IQS_CHECK(count_ > 0);
  IQS_CHECK(first_ + count_ <= data_->size());
  const size_t per_block = data_->records_per_block();
  first_block_ = first_ / per_block;
  const size_t last_block = (first_ + count_ - 1) / per_block;

  // Streaming pass over the covered range: per-block weight totals into
  // memory ((count/B) doubles).
  std::vector<double> block_weights(last_block - first_block_ + 1, 0.0);
  EmReader reader(data_, first_, count_);
  uint64_t record[2];
  for (size_t i = 0; i < count_; ++i) {
    reader.Next(record);
    const double w = WeightOfWord(record[1]);
    // iqs-lint: allow(check-in-loop) -- cold build-path input validation
    IQS_CHECK(w > 0.0);
    block_weights[(first_ + i) / per_block - first_block_] += w;
    total_weight_ += w;
  }
  block_alias_.Build(block_weights);
  Rebuild(rng);
}

void WeightedSamplePool::BlockRecordRange(size_t local_block,
                                          size_t* first_record,
                                          size_t* num_records) const {
  const size_t per_block = data_->records_per_block();
  const size_t global_block = first_block_ + local_block;
  const size_t block_start = global_block * per_block;
  const size_t lo = std::max(block_start, first_);
  const size_t hi =
      std::min({block_start + per_block, first_ + count_, data_->size()});
  IQS_DCHECK(lo < hi);
  *first_record = lo;
  *num_records = hi - lo;
}

void WeightedSamplePool::Rebuild(Rng* rng) {
  ++rebuilds_;
  BlockDevice* device = data_->device();
  const size_t per_block = data_->records_per_block();

  // 1. Tag: (local block index, pool position); the block is the weighted
  //    first-level draw, resolved in memory by the block alias.
  EmArray tagged(device, 2);
  {
    EmWriter writer(&tagged);
    for (size_t pos = 0; pos < count_; ++pos) {
      writer.Append2(block_alias_.Sample(rng), pos);
    }
    writer.Finish();
  }

  // 2. Sort by block index.
  EmArray by_block = ExternalSort(tagged, memory_words_);

  // 3. Merge-scan: for each group of tags pointing at one block, read the
  //    block once and draw within it proportionally to weight via an
  //    alias built in memory (B words).
  EmArray valued(device, 2);  // (pool position, value)
  {
    EmWriter writer(&valued);
    EmReader tag_reader(&by_block, 0, by_block.size());
    std::vector<uint64_t> block_values;
    std::vector<double> block_weights;
    AliasTable in_block;
    size_t loaded_block = ~size_t{0};
    std::vector<uint64_t> raw(device->block_words());
    uint64_t tag[2];
    while (tag_reader.HasNext()) {
      tag_reader.Next(tag);
      const size_t local_block = tag[0];
      if (local_block != loaded_block) {
        device->Read(data_->block_id(first_block_ + local_block), raw);
        size_t first_record = 0;
        size_t num_records = 0;
        BlockRecordRange(local_block, &first_record, &num_records);
        const size_t offset = first_record % per_block;
        block_values.clear();
        block_weights.clear();
        for (size_t r = 0; r < num_records; ++r) {
          block_values.push_back(raw[2 * (offset + r)]);
          block_weights.push_back(WeightOfWord(raw[2 * (offset + r) + 1]));
        }
        in_block.Build(block_weights);
        loaded_block = local_block;
      }
      writer.Append2(tag[1], block_values[in_block.Sample(rng)]);
    }
    writer.Finish();
  }

  // 4. Restore i.i.d. order; 5. strip.
  EmArray by_position = ExternalSort(valued, memory_words_);
  pool_ = EmArray(device, 1);
  {
    EmWriter writer(&pool_);
    EmReader reader(&by_position, 0, by_position.size());
    uint64_t record[2];
    while (reader.HasNext()) {
      reader.Next(record);
      writer.Append1(record[1]);
    }
    writer.Finish();
  }
  clean_position_ = 0;
}

void WeightedSamplePool::Query(size_t s, Rng* rng,
                               std::vector<uint64_t>* out) {
  out->reserve(out->size() + s);
  while (s > 0) {
    if (clean_position_ == count_) Rebuild(rng);
    const size_t take = std::min(s, count_ - clean_position_);
    EmReader reader(&pool_, clean_position_, take);
    for (size_t i = 0; i < take; ++i) out->push_back(reader.Next1());
    clean_position_ += take;
    s -= take;
  }
}

void WeightedSamplePool::NaiveQuery(size_t s, Rng* rng,
                                    std::vector<uint64_t>* out) const {
  BlockDevice* device = data_->device();
  const size_t per_block = data_->records_per_block();
  std::vector<uint64_t> raw(device->block_words());
  std::vector<double> weights;
  std::vector<uint64_t> values;
  out->reserve(out->size() + s);
  for (size_t i = 0; i < s; ++i) {
    const size_t local_block = block_alias_.Sample(rng);
    device->Read(data_->block_id(first_block_ + local_block), raw);
    size_t first_record = 0;
    size_t num_records = 0;
    BlockRecordRange(local_block, &first_record, &num_records);
    const size_t offset = first_record % per_block;
    values.clear();
    weights.clear();
    for (size_t r = 0; r < num_records; ++r) {
      values.push_back(raw[2 * (offset + r)]);
      weights.push_back(WeightOfWord(raw[2 * (offset + r) + 1]));
    }
    AliasTable in_block(weights);
    out->push_back(values[in_block.Sample(rng)]);
  }
}

}  // namespace iqs::em
