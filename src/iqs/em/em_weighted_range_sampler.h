// WEIGHTED EM range sampling — completing the library's
// {set, range} x {uniform, weighted} x {RAM, EM} matrix.
//
// The paper's Section 8 covers only the WR (uniform) scheme and its
// Section 9 lists EM weighted range sampling as open with respect to
// matching lower bounds. This structure makes no optimality claim; it is
// the natural composition of the pieces already in the library:
//
//   * data: records (key, weight) sorted by key on disk;
//   * a B-tree (multi-word records, key = first word) resolves key
//     ranges to position ranges in O(log_B n) I/Os;
//   * a balanced binary decomposition over full data blocks carries one
//     WeightedSamplePool per node (subtree weights in memory);
//   * a query splits its budget Multinomial(s; w(head), w(nodes)...,
//     w(tail)) — by WEIGHT — reads the <= 2 partial boundary blocks
//     directly, and draws the rest from pre-drawn weighted pools at
//     amortized O((s/B) log_{M/B}(n/B)) I/Os.
//
// Output law: key k of the range with probability w(k) / W(range), all
// queries mutually independent.

#ifndef IQS_EM_EM_WEIGHTED_RANGE_SAMPLER_H_
#define IQS_EM_EM_WEIGHTED_RANGE_SAMPLER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "iqs/em/btree.h"
#include "iqs/em/em_array.h"
#include "iqs/em/weighted_sample_pool.h"
#include "iqs/util/rng.h"

namespace iqs::em {

class EmWeightedRangeSampler {
 public:
  // `sorted_data`: 2-word (key, weight-bits) records ascending by key
  // (use WeightedSamplePool::AppendRecord to write them). Builds the
  // B-tree and all node pools (counted on the device).
  EmWeightedRangeSampler(const EmArray* sorted_data, size_t memory_words,
                         Rng* rng);

  // Appends `s` independent WEIGHTED samples (keys) from keys in
  // [lo, hi]. Returns false when the range is empty.
  bool Query(uint64_t lo, uint64_t hi, size_t s, Rng* rng,
             std::vector<uint64_t>* out);

  // Baseline: report the whole range, weighted-sample in memory.
  bool ReportThenSample(uint64_t lo, uint64_t hi, size_t s, Rng* rng,
                        std::vector<uint64_t>* out) const;

  const BTree& btree() const { return btree_; }

 private:
  struct PoolNode {
    size_t first_block;
    size_t num_blocks;
    std::unique_ptr<WeightedSamplePool> pool;
    size_t left = kNone;
    size_t right = kNone;
  };
  static constexpr size_t kNone = ~size_t{0};

  size_t BuildNode(size_t first_block, size_t num_blocks, Rng* rng);
  void Decompose(size_t node, size_t block_lo, size_t block_hi,
                 std::vector<size_t>* cover) const;
  // Reads records [lo, hi] (inclusive) into parallel key/weight arrays.
  void ReadRange(size_t lo, size_t hi, std::vector<uint64_t>* keys,
                 std::vector<double>* weights) const;

  const EmArray* data_;
  size_t memory_words_;
  BTree btree_;
  std::vector<PoolNode> nodes_;
  size_t root_ = kNone;
};

}  // namespace iqs::em

#endif  // IQS_EM_EM_WEIGHTED_RANGE_SAMPLER_H_
