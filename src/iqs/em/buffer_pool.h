// Write-back LRU buffer pool over a BlockDevice — the standard database
// substrate that turns the raw EM model into something a system would
// run. Caching up to M/B blocks of the memory budget, it absorbs
// repeated reads of hot blocks (e.g. B-tree roots) so measured I/O drops
// from the worst-case EM bound to the buffered reality. Kept separate
// from the Section-8 structures, which are analysed (and tested) against
// the raw device exactly as the paper counts costs.

#ifndef IQS_EM_BUFFER_POOL_H_
#define IQS_EM_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <span>
#include <unordered_map>
#include <vector>

#include "iqs/em/block_device.h"
#include "iqs/util/check.h"

namespace iqs::em {

class BufferPool {
 public:
  // Caches up to `capacity_blocks` blocks (>= 1) of `device`.
  BufferPool(BlockDevice* device, size_t capacity_blocks)
      : device_(device), capacity_(capacity_blocks) {
    IQS_CHECK(device_ != nullptr);
    IQS_CHECK(capacity_ >= 1);
  }

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  ~BufferPool() { FlushAll(); }

  // Reads block `id` through the cache.
  void Read(size_t id, std::span<uint64_t> out) {
    Frame& frame = Pin(id);
    std::copy(frame.data.begin(), frame.data.end(), out.begin());
  }

  // Writes block `id` through the cache (write-back: the device sees the
  // write on eviction or FlushAll).
  void Write(size_t id, std::span<const uint64_t> in) {
    Frame& frame = Pin(id, /*load=*/false);
    frame.data.assign(in.begin(), in.end());
    frame.dirty = true;
  }

  // Writes all dirty frames back to the device.
  void FlushAll() {
    for (auto& [id, frame] : frames_) {
      if (frame.dirty) {
        device_->Write(id, frame.data);
        frame.dirty = false;
      }
    }
  }

  // Drops every frame (flushing dirty ones).
  void Clear() {
    FlushAll();
    frames_.clear();
    lru_.clear();
  }

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };
  const Stats& stats() const { return stats_; }
  size_t cached_blocks() const { return frames_.size(); }

 private:
  struct Frame {
    std::vector<uint64_t> data;
    bool dirty = false;
    std::list<size_t>::iterator lru_it;
  };

  // Returns the frame for `id`, loading from the device when `load` and
  // absent; moves it to the MRU position; evicts LRU on overflow.
  Frame& Pin(size_t id, bool load = true) {
    auto it = frames_.find(id);
    if (it != frames_.end()) {
      lru_.erase(it->second.lru_it);
      lru_.push_front(id);
      it->second.lru_it = lru_.begin();
      ++stats_.hits;
      return it->second;
    }
    ++stats_.misses;
    if (frames_.size() == capacity_) {
      const size_t victim = lru_.back();
      lru_.pop_back();
      auto vit = frames_.find(victim);
      if (vit->second.dirty) device_->Write(victim, vit->second.data);
      frames_.erase(vit);
      ++stats_.evictions;
    }
    Frame frame;
    frame.data.resize(device_->block_words());
    if (load) device_->Read(id, frame.data);
    lru_.push_front(id);
    frame.lru_it = lru_.begin();
    return frames_.emplace(id, std::move(frame)).first->second;
  }

  BlockDevice* device_;
  size_t capacity_;
  std::unordered_map<size_t, Frame> frames_;
  std::list<size_t> lru_;  // front = most recently used
  Stats stats_;
};

}  // namespace iqs::em

#endif  // IQS_EM_BUFFER_POOL_H_
