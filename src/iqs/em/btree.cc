#include "iqs/em/btree.h"

#include <algorithm>

#include "iqs/util/check.h"

namespace iqs::em {

BTree::BTree(const EmArray* sorted_data) : data_(sorted_data) {
  IQS_CHECK(data_->size() > 0);
  BlockDevice* device = data_->device();
  const size_t block_words = device->block_words();
  fanout_ = block_words - 1;  // word 0 holds the child count
  IQS_CHECK(fanout_ >= 2);

  // Collect the max key of each leaf (data) block with one sequential
  // pass.
  std::vector<uint64_t> child_max;
  {
    EmReader reader(data_, 0, data_->size());
    std::vector<uint64_t> record(data_->record_words());
    for (size_t i = 0; i < data_->size(); ++i) {
      reader.Next(record.data());
      if ((i + 1) % data_->records_per_block() == 0 ||
          i + 1 == data_->size()) {
        child_max.push_back(record[0]);
      }
    }
  }

  // Build internal levels bottom-up until one node remains.
  while (child_max.size() > 1) {
    Level level{EmArray(device, block_words), 0};
    std::vector<uint64_t> parent_max;
    std::vector<uint64_t> node_block(block_words, 0);
    for (size_t start = 0; start < child_max.size(); start += fanout_) {
      const size_t end = std::min(start + fanout_, child_max.size());
      node_block[0] = end - start;
      for (size_t c = start; c < end; ++c) {
        node_block[1 + c - start] = child_max[c];
      }
      std::fill(node_block.begin() + static_cast<ptrdiff_t>(1 + end - start),
                node_block.end(), 0);
      const size_t id = device->AllocateBlock();
      device->Write(id, node_block);
      level.nodes.AppendBlockId(id);
      ++level.num_nodes;
      parent_max.push_back(child_max[end - 1]);
    }
    level.nodes.set_size(level.num_nodes);
    levels_.push_back(std::move(level));
    child_max = std::move(parent_max);
  }
  // levels_ grew bottom-up; the last entry is the root level.
}

size_t BTree::Search(uint64_t key, bool strict) const {
  BlockDevice* device = data_->device();
  std::vector<uint64_t> block(device->block_words());
  auto past = [&](uint64_t child_max_key) {
    return strict ? child_max_key > key : child_max_key >= key;
  };

  // Descend from the root level; node index within each level.
  size_t node_index = 0;
  for (size_t l = levels_.size(); l-- > 0;) {
    const Level& level = levels_[l];
    device->Read(level.nodes.block_id(node_index), block);
    const size_t count = block[0];
    size_t child = count;  // default: past the last child
    for (size_t c = 0; c < count; ++c) {
      if (past(block[1 + c])) {
        child = c;
        break;
      }
    }
    if (child == count) {
      // Key beyond this subtree: resolve to one-past-the-end position.
      // Clamp to the last child; the leaf scan below lands at its end.
      child = count - 1;
    }
    node_index = node_index * fanout_ + child;
  }

  // node_index is now a data block index. Scan it for the position.
  const size_t per_block = data_->records_per_block();
  const size_t base = node_index * per_block;
  const size_t in_block =
      std::min(per_block, data_->size() - base);
  device->Read(data_->block_id(node_index), block);
  const size_t stride = data_->record_words();
  for (size_t i = 0; i < in_block; ++i) {
    const uint64_t record_key = block[i * stride];
    if (strict ? record_key > key : record_key >= key) return base + i;
  }
  // Reached only when the key exceeds every key in the tree (the descent
  // clamps to the rightmost path); one past the end.
  return base + in_block;
}

size_t BTree::LowerBound(uint64_t key) const { return Search(key, false); }

size_t BTree::UpperBound(uint64_t key) const { return Search(key, true); }

size_t BTree::RangeReport(uint64_t lo, uint64_t hi,
                          std::vector<uint64_t>* out) const {
  if (lo > hi) return 0;
  const size_t a = LowerBound(lo);
  if (a == data_->size()) return 0;
  const size_t b = UpperBound(hi);
  if (b <= a) return 0;
  EmReader reader(data_, a, b - a);
  std::vector<uint64_t> record(data_->record_words());
  for (size_t i = a; i < b; ++i) {
    reader.Next(record.data());
    out->push_back(record[0]);
  }
  return b - a;
}

}  // namespace iqs::em
