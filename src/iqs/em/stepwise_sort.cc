#include "iqs/em/stepwise_sort.h"

#include <algorithm>

namespace iqs::em {

StepwiseSort::StepwiseSort(const EmArray* input, size_t memory_words)
    : input_(input),
      memory_words_(memory_words),
      record_words_(input->record_words()),
      current_(input->device(), input->record_words()),
      previous_(input->device(), input->record_words()) {
  IQS_CHECK(memory_words_ >= 2 * input_->device()->block_words());
  records_per_load_ = std::max<size_t>(1, memory_words_ / record_words_);
  fan_in_ = std::max<size_t>(
      2, memory_words_ / input_->device()->block_words() - 1);
  input_reader_ = std::make_unique<EmReader>(input_, 0, input_->size());
  writer_ = std::make_unique<EmWriter>(&current_);
  load_.resize(records_per_load_ * record_words_);
  if (input_->size() == 0) {
    writer_->Finish();
    phase_ = Phase::kDone;
  }
}

void StepwiseSort::StartPassOrFinish() {
  // Called when the current pass's writer has all its records. Decides
  // whether another merge pass is needed.
  writer_->Finish();
  if (bounds_.size() <= 1) {
    phase_ = Phase::kDone;
    return;
  }
  previous_ = std::move(current_);
  prev_bounds_ = std::move(bounds_);
  bounds_.clear();
  current_ = EmArray(input_->device(), record_words_);
  writer_ = std::make_unique<EmWriter>(&current_);
  next_group_ = 0;
  out_position_ = 0;
  phase_ = Phase::kMergeSetup;
}

void StepwiseSort::Step() {
  switch (phase_) {
    case Phase::kDone:
      return;

    case Phase::kRunFill: {
      if (input_reader_->HasNext() && load_records_ < records_per_load_) {
        input_reader_->Next(&load_[load_records_ * record_words_]);
        ++load_records_;
        return;
      }
      // Load complete (or input exhausted): sort in memory (CPU is free
      // in the EM model) and switch to flushing.
      load_order_.resize(load_records_);
      for (size_t i = 0; i < load_records_; ++i) {
        load_order_[i] = static_cast<uint32_t>(i);
      }
      std::sort(load_order_.begin(), load_order_.end(),
                [&](uint32_t a, uint32_t b) {
                  return load_[a * record_words_] < load_[b * record_words_];
                });
      flush_next_ = 0;
      phase_ = Phase::kRunFlush;
      return;
    }

    case Phase::kRunFlush: {
      if (flush_next_ < load_records_) {
        writer_->Append(&load_[load_order_[flush_next_] * record_words_]);
        ++flush_next_;
        return;
      }
      bounds_.push_back({formed_records_, load_records_});
      formed_records_ += load_records_;
      load_records_ = 0;
      if (input_reader_->HasNext()) {
        phase_ = Phase::kRunFill;
      } else {
        StartPassOrFinish();
      }
      return;
    }

    case Phase::kMergeSetup: {
      // Open the next group of runs.
      const size_t group_end =
          std::min(next_group_ + fan_in_, prev_bounds_.size());
      readers_.clear();
      heads_.assign(group_end - next_group_,
                    std::vector<uint64_t>(record_words_));
      heap_ = {};
      group_records_ = 0;
      for (size_t r = next_group_; r < group_end; ++r) {
        readers_.emplace_back(&previous_, prev_bounds_[r].first,
                              prev_bounds_[r].count);
        group_records_ += prev_bounds_[r].count;
      }
      for (size_t r = 0; r < readers_.size(); ++r) {
        if (readers_[r].HasNext()) {
          readers_[r].Next(heads_[r].data());
          heap_.emplace(heads_[r][0], r);
        }
      }
      next_group_ = group_end;
      phase_ = Phase::kMerge;
      return;
    }

    case Phase::kMerge: {
      if (!heap_.empty()) {
        const auto [key, r] = heap_.top();
        heap_.pop();
        writer_->Append(heads_[r].data());
        if (readers_[r].HasNext()) {
          readers_[r].Next(heads_[r].data());
          heap_.emplace(heads_[r][0], r);
        }
        return;
      }
      bounds_.push_back({out_position_, group_records_});
      out_position_ += group_records_;
      if (next_group_ < prev_bounds_.size()) {
        phase_ = Phase::kMergeSetup;
      } else {
        StartPassOrFinish();
      }
      return;
    }
  }
}

}  // namespace iqs::em
