// De-amortized EM set sampling (paper Section 8, closing remark): the
// same sample-pool strategy as SamplePool, but with the pool rebuild
// spread across queries so that EVERY query costs
// O(1 + (s/B) log_{M/B}(n/B)) I/Os in the worst case — no rebuild bursts.
//
// Mechanics: while the active pool is being consumed, a second pool is
// constructed by a resumable pipeline (tag generation -> StepwiseSort by
// index -> merge-scan against the data -> StepwiseSort by position ->
// strip). Each query advances the pipeline by a fixed number of work
// units per sample it consumes, chosen with 2x slack so the next pool is
// always ready before the active one runs dry.

#ifndef IQS_EM_DEAMORTIZED_POOL_H_
#define IQS_EM_DEAMORTIZED_POOL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "iqs/em/em_array.h"
#include "iqs/em/stepwise_sort.h"
#include "iqs/util/rng.h"

namespace iqs::em {

// Resumable pool construction pipeline; one Step ~ one record of work.
class PoolRebuildPipeline {
 public:
  PoolRebuildPipeline(const EmArray* data, size_t first, size_t count,
                      size_t memory_words, Rng* rng);

  bool done() const { return phase_ == Phase::kDone; }
  void Step();
  void Finish() {
    while (!done()) Step();
  }

  // The finished pool; valid only once done.
  EmArray& pool() {
    IQS_CHECK(done());
    return pool_;
  }

 private:
  enum class Phase {
    kTagGen,
    kSortByIndex,
    kMergeScan,
    kSortByPosition,
    kStrip,
    kDone
  };

  const EmArray* data_;
  size_t first_;
  size_t count_;
  size_t memory_words_;
  Rng rng_;

  Phase phase_ = Phase::kTagGen;

  EmArray tagged_;
  std::unique_ptr<EmWriter> tag_writer_;
  size_t tags_written_ = 0;

  std::unique_ptr<StepwiseSort> sort_;

  EmArray valued_;
  std::unique_ptr<EmWriter> value_writer_;
  std::unique_ptr<EmReader> tag_reader_;
  std::unique_ptr<EmReader> data_reader_;
  size_t data_position_ = 0;
  uint64_t current_value_ = 0;
  bool value_loaded_ = false;

  EmArray pool_;
  std::unique_ptr<EmWriter> pool_writer_;
  std::unique_ptr<EmReader> strip_reader_;
};

class DeamortizedSamplePool {
 public:
  // Pool over records [first, first + count) of `data` (1-word records).
  // The constructor builds the first pool outright and measures the
  // pipeline's unit count; subsequent rebuild work rides on queries.
  DeamortizedSamplePool(const EmArray* data, size_t first, size_t count,
                        size_t memory_words, Rng* rng);

  // Appends `s` independent WR samples. Worst-case I/O
  // O(1 + (s/B) * rebuild_cost_per_element) — never a full-rebuild burst.
  void Query(size_t s, Rng* rng, std::vector<uint64_t>* out);

  size_t count() const { return count_; }
  // Pipeline units advanced per consumed sample (diagnostics).
  size_t units_per_sample() const { return units_per_sample_; }

 private:
  const EmArray* data_;
  size_t first_;
  size_t count_;
  size_t memory_words_;
  EmArray active_;
  size_t clean_position_ = 0;
  std::unique_ptr<PoolRebuildPipeline> next_;
  size_t units_per_sample_ = 1;
};

}  // namespace iqs::em

#endif  // IQS_EM_DEAMORTIZED_POOL_H_
