#include "iqs/em/deamortized_pool.h"

#include "iqs/util/check.h"

namespace iqs::em {

PoolRebuildPipeline::PoolRebuildPipeline(const EmArray* data, size_t first,
                                         size_t count, size_t memory_words,
                                         Rng* rng)
    : data_(data),
      first_(first),
      count_(count),
      memory_words_(memory_words),
      rng_(rng->Split()),
      tagged_(data->device(), 2),
      valued_(data->device(), 2),
      pool_(data->device(), 1) {
  IQS_CHECK(data_->record_words() == 1);
  IQS_CHECK(count_ > 0);
  tag_writer_ = std::make_unique<EmWriter>(&tagged_);
}

void PoolRebuildPipeline::Step() {
  switch (phase_) {
    case Phase::kDone:
      return;

    case Phase::kTagGen: {
      if (tags_written_ < count_) {
        tag_writer_->Append2(first_ + rng_.Below(count_), tags_written_);
        ++tags_written_;
        return;
      }
      tag_writer_->Finish();
      sort_ = std::make_unique<StepwiseSort>(&tagged_, memory_words_);
      phase_ = Phase::kSortByIndex;
      return;
    }

    case Phase::kSortByIndex: {
      if (!sort_->done()) {
        sort_->Step();
        return;
      }
      value_writer_ = std::make_unique<EmWriter>(&valued_);
      tag_reader_ = std::make_unique<EmReader>(&sort_->result(), 0,
                                               sort_->result().size());
      data_reader_ = std::make_unique<EmReader>(data_, first_, count_);
      data_position_ = first_;
      value_loaded_ = false;
      phase_ = Phase::kMergeScan;
      return;
    }

    case Phase::kMergeScan: {
      if (tag_reader_->HasNext()) {
        uint64_t record[2];
        tag_reader_->Next(record);
        const uint64_t want_index = record[0];
        while (!value_loaded_ || data_position_ <= want_index) {
          current_value_ = data_reader_->Next1();
          ++data_position_;
          value_loaded_ = true;
        }
        value_writer_->Append2(record[1], current_value_);
        return;
      }
      value_writer_->Finish();
      sort_ = std::make_unique<StepwiseSort>(&valued_, memory_words_);
      phase_ = Phase::kSortByPosition;
      return;
    }

    case Phase::kSortByPosition: {
      if (!sort_->done()) {
        sort_->Step();
        return;
      }
      pool_writer_ = std::make_unique<EmWriter>(&pool_);
      strip_reader_ = std::make_unique<EmReader>(&sort_->result(), 0,
                                                 sort_->result().size());
      phase_ = Phase::kStrip;
      return;
    }

    case Phase::kStrip: {
      if (strip_reader_->HasNext()) {
        uint64_t record[2];
        strip_reader_->Next(record);
        pool_writer_->Append1(record[1]);
        return;
      }
      pool_writer_->Finish();
      phase_ = Phase::kDone;
      return;
    }
  }
}

DeamortizedSamplePool::DeamortizedSamplePool(const EmArray* data,
                                             size_t first, size_t count,
                                             size_t memory_words, Rng* rng)
    : data_(data),
      first_(first),
      count_(count),
      memory_words_(memory_words),
      active_(data->device(), 1) {
  // First pool: run a pipeline to completion, counting its units so the
  // steady-state pacing has the right rate.
  PoolRebuildPipeline initial(data_, first_, count_, memory_words_, rng);
  size_t units = 0;
  while (!initial.done()) {
    initial.Step();
    ++units;
  }
  active_ = std::move(initial.pool());
  // 2x slack guarantees the next pool finishes before this one drains.
  units_per_sample_ = 2 * ((units + count_ - 1) / count_) + 1;
  next_ = std::make_unique<PoolRebuildPipeline>(data_, first_, count_,
                                                memory_words_, rng);
}

void DeamortizedSamplePool::Query(size_t s, Rng* rng,
                                  std::vector<uint64_t>* out) {
  out->reserve(out->size() + s);
  size_t remaining = s;
  while (remaining > 0) {
    if (clean_position_ == count_) {
      // Pacing (below) guarantees the pipeline finished before the pool
      // drained; Finish() is a defensive no-op then.
      next_->Finish();
      active_ = std::move(next_->pool());
      clean_position_ = 0;
      next_ = std::make_unique<PoolRebuildPipeline>(data_, first_, count_,
                                                    memory_words_, rng);
    }
    const size_t take = std::min(remaining, count_ - clean_position_);
    EmReader reader(&active_, clean_position_, take);
    for (size_t i = 0; i < take; ++i) out->push_back(reader.Next1());
    clean_position_ += take;
    remaining -= take;
    // Advance the background rebuild in proportion to the samples just
    // consumed: with 2x slack, count_ samples push >= the full pipeline.
    for (size_t unit = 0; unit < take * units_per_sample_ && !next_->done();
         ++unit) {
      next_->Step();
    }
  }
}

}  // namespace iqs::em
