#include "iqs/em/em_range_sampler.h"

#include <algorithm>

#include "iqs/sampling/multinomial.h"
#include "iqs/util/check.h"

namespace iqs::em {

EmRangeSampler::EmRangeSampler(const EmArray* sorted_data,
                               size_t memory_words, Rng* rng)
    : data_(sorted_data), memory_words_(memory_words), btree_(sorted_data) {
  IQS_CHECK(data_->record_words() == 1);
  const size_t num_blocks = data_->num_blocks();
  nodes_.reserve(2 * num_blocks);
  root_ = BuildNode(0, num_blocks, rng);
}

size_t EmRangeSampler::BuildNode(size_t first_block, size_t num_blocks,
                                 Rng* rng) {
  const size_t id = nodes_.size();
  nodes_.emplace_back();
  nodes_[id].first_block = first_block;
  nodes_[id].num_blocks = num_blocks;
  const size_t per_block = data_->records_per_block();
  const size_t first_record = first_block * per_block;
  const size_t record_count =
      std::min(num_blocks * per_block, data_->size() - first_record);
  nodes_[id].pool = std::make_unique<SamplePool>(
      data_, first_record, record_count, memory_words_, rng);
  if (num_blocks > 1) {
    const size_t half = num_blocks / 2;
    const size_t left = BuildNode(first_block, half, rng);
    const size_t right = BuildNode(first_block + half, num_blocks - half, rng);
    nodes_[id].left = left;
    nodes_[id].right = right;
  }
  return id;
}

void EmRangeSampler::Decompose(size_t node, size_t block_lo, size_t block_hi,
                               std::vector<size_t>* cover) const {
  const PoolNode& pool_node = nodes_[node];
  const size_t node_lo = pool_node.first_block;
  const size_t node_hi = pool_node.first_block + pool_node.num_blocks - 1;
  if (node_lo > block_hi || node_hi < block_lo) return;
  if (block_lo <= node_lo && node_hi <= block_hi) {
    cover->push_back(node);
    return;
  }
  IQS_DCHECK(pool_node.left != kNone);
  Decompose(pool_node.left, block_lo, block_hi, cover);
  Decompose(pool_node.right, block_lo, block_hi, cover);
}

bool EmRangeSampler::Query(uint64_t lo, uint64_t hi, size_t s, Rng* rng,
                           std::vector<uint64_t>* out) {
  if (lo > hi) return false;
  const size_t a = btree_.LowerBound(lo);
  const size_t b_excl = btree_.UpperBound(hi);
  if (a >= b_excl) return false;
  if (s == 0) return true;
  const size_t b = b_excl - 1;

  const size_t per_block = data_->records_per_block();
  const size_t block_a = a / per_block;
  const size_t block_b = b / per_block;

  // Partial boundary blocks: read them whole (O(1) I/Os) and collect the
  // in-range values; full interior blocks go to the pool decomposition.
  std::vector<uint64_t> head_values;
  std::vector<uint64_t> tail_values;
  size_t full_lo = block_a;
  size_t full_hi = block_b;
  const bool head_partial = a % per_block != 0;
  const bool tail_partial =
      (b + 1) % per_block != 0 && b + 1 != data_->size();
  if (head_partial || block_a == block_b) {
    const size_t block_end =
        std::min((block_a + 1) * per_block, data_->size()) - 1;
    const size_t read_hi = std::min(b, block_end);
    EmReader reader(data_, a, read_hi - a + 1);
    while (reader.HasNext()) head_values.push_back(reader.Next1());
    full_lo = block_a + 1;
  }
  if (block_b > block_a && (tail_partial || full_lo > block_b)) {
    const size_t block_start = block_b * per_block;
    const size_t read_lo = std::max(a, block_start);
    EmReader reader(data_, read_lo, b - read_lo + 1);
    while (reader.HasNext()) tail_values.push_back(reader.Next1());
    full_hi = block_b - 1;
  }

  std::vector<size_t> cover;
  if (full_lo <= full_hi) {
    Decompose(root_, full_lo, full_hi, &cover);
  }

  // Split the budget across head / tail / canonical nodes by element
  // counts (WR scheme: uniform weights).
  std::vector<double> weights;
  weights.push_back(static_cast<double>(head_values.size()));
  weights.push_back(static_cast<double>(tail_values.size()));
  for (size_t node : cover) {
    const PoolNode& pool_node = nodes_[node];
    weights.push_back(static_cast<double>(pool_node.pool->count()));
  }
  const std::vector<uint32_t> counts = MultinomialSplit(weights, s, rng);

  out->reserve(out->size() + s);
  for (uint32_t i = 0; i < counts[0]; ++i) {
    out->push_back(head_values[rng->Below(head_values.size())]);
  }
  for (uint32_t i = 0; i < counts[1]; ++i) {
    out->push_back(tail_values[rng->Below(tail_values.size())]);
  }
  for (size_t c = 0; c < cover.size(); ++c) {
    if (counts[2 + c] == 0) continue;
    nodes_[cover[c]].pool->Query(counts[2 + c], rng, out);
  }
  return true;
}

bool EmRangeSampler::NaiveQuery(uint64_t lo, uint64_t hi, size_t s, Rng* rng,
                                std::vector<uint64_t>* out) const {
  if (lo > hi) return false;
  const size_t a = btree_.LowerBound(lo);
  const size_t b_excl = btree_.UpperBound(hi);
  if (a >= b_excl) return false;
  SamplePool::NaiveQuery(*data_, a, b_excl - a, s, rng, out);
  return true;
}

bool EmRangeSampler::ReportThenSample(uint64_t lo, uint64_t hi, size_t s,
                                      Rng* rng,
                                      std::vector<uint64_t>* out) const {
  std::vector<uint64_t> result;
  if (btree_.RangeReport(lo, hi, &result) == 0) return false;
  out->reserve(out->size() + s);
  for (size_t i = 0; i < s; ++i) {
    out->push_back(result[rng->Below(result.size())]);
  }
  return true;
}

}  // namespace iqs::em
