// EM range sampling (paper Section 8, after Hu et al. [18]): WR sampling
// from S ∩ [lo, hi] on disk-resident sorted data.
//
// Structure (simplified variant of Hu et al.'s first structure; DESIGN.md
// 2.4): a B-tree locates the position range; a balanced binary
// decomposition over the *full data blocks* carries one SamplePool per
// node, so the range splits into <= 2 partial boundary blocks (read
// directly, O(1) I/Os) plus O(log(n/B)) canonical nodes whose pools hand
// out pre-drawn WR samples at (s_i / B) I/Os amortized-log each. Total:
//   O(log_B n + log(n/B) + (s/B) log_{M/B}(n/B))   I/Os amortized,
// versus O(log_B n + s) for B-tree search + naive random access and
// O(log_B n + |S_q|/B) for report-then-sample. The min(s, (s/B) log...)
// lower-bound shape of Section 8 is exactly what bench_em_range measures.
//
// Space: pools at every level store n samples per level: O((n/B) log(n/B))
// blocks, matching Hu et al.'s first (non-linear-space) structure.

#ifndef IQS_EM_EM_RANGE_SAMPLER_H_
#define IQS_EM_EM_RANGE_SAMPLER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "iqs/em/btree.h"
#include "iqs/em/em_array.h"
#include "iqs/em/sample_pool.h"
#include "iqs/util/rng.h"

namespace iqs::em {

class EmRangeSampler {
 public:
  // `sorted_data`: ascending 1-word records. Builds the B-tree and all
  // node pools (counted on the device; reset counters before measuring
  // queries).
  EmRangeSampler(const EmArray* sorted_data, size_t memory_words, Rng* rng);

  // Appends `s` independent WR samples from the values in [lo, hi].
  // Returns false when the range is empty.
  bool Query(uint64_t lo, uint64_t hi, size_t s, Rng* rng,
             std::vector<uint64_t>* out);

  // Baseline 1: B-tree search + one random I/O per sample (s I/Os).
  bool NaiveQuery(uint64_t lo, uint64_t hi, size_t s, Rng* rng,
                  std::vector<uint64_t>* out) const;

  // Baseline 2: report the whole range, then sample in memory.
  bool ReportThenSample(uint64_t lo, uint64_t hi, size_t s, Rng* rng,
                        std::vector<uint64_t>* out) const;

  const BTree& btree() const { return btree_; }

 private:
  struct PoolNode {
    size_t first_block;
    size_t num_blocks;
    std::unique_ptr<SamplePool> pool;
    size_t left = kNone;   // indices into nodes_; kNone for leaves
    size_t right = kNone;
  };
  static constexpr size_t kNone = ~size_t{0};

  size_t BuildNode(size_t first_block, size_t num_blocks, Rng* rng);
  void Decompose(size_t node, size_t block_lo, size_t block_hi,
                 std::vector<size_t>* cover) const;

  const EmArray* data_;
  size_t memory_words_;
  BTree btree_;
  std::vector<PoolNode> nodes_;
  size_t root_ = kNone;
};

}  // namespace iqs::em

#endif  // IQS_EM_EM_RANGE_SAMPLER_H_
