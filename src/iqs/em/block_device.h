// Simulated disk for the external memory model of Aggarwal & Vitter
// (paper Section 8). The device stores blocks of exactly B 64-bit words;
// every Read/Write of a block costs one I/O and bumps the counters. CPU
// time is free in the EM model, so the counters ARE the experiment's cost
// metric — this substitution for real hardware is lossless (DESIGN.md
// 2.4).
//
// Algorithms receive an explicit memory budget M (words) and are written
// to keep at most M words of device data buffered; the device itself only
// meters traffic.

#ifndef IQS_EM_BLOCK_DEVICE_H_
#define IQS_EM_BLOCK_DEVICE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "iqs/util/check.h"
#include "iqs/util/telemetry.h"

namespace iqs::em {

class BlockDevice {
 public:
  // `block_words` is B, the words per block (>= 2).
  explicit BlockDevice(size_t block_words) : block_words_(block_words) {
    IQS_CHECK(block_words_ >= 2);
  }

  BlockDevice(const BlockDevice&) = delete;
  BlockDevice& operator=(const BlockDevice&) = delete;

  size_t block_words() const { return block_words_; }

  // Allocates a zeroed block; allocation itself is not an I/O.
  size_t AllocateBlock() {
    blocks_.emplace_back(block_words_, 0);
    return blocks_.size() - 1;
  }

  // Reads block `id` into `out` (which must hold B words). One I/O.
  void Read(size_t id, std::span<uint64_t> out) {
    IQS_CHECK(id < blocks_.size());
    IQS_CHECK(out.size() == block_words_);
    ++reads_;
    if (telemetry_ != nullptr) ++telemetry_->shard(0)->stats.em_reads;
    std::copy(blocks_[id].begin(), blocks_[id].end(), out.begin());
  }

  // Writes `in` (B words) to block `id`. One I/O.
  void Write(size_t id, std::span<const uint64_t> in) {
    IQS_CHECK(id < blocks_.size());
    IQS_CHECK(in.size() == block_words_);
    ++writes_;
    if (telemetry_ != nullptr) ++telemetry_->shard(0)->stats.em_writes;
    std::copy(in.begin(), in.end(), blocks_[id].begin());
  }

  uint64_t reads() const { return reads_; }
  uint64_t writes() const { return writes_; }
  uint64_t total_ios() const { return reads_ + writes_; }
  void ResetCounters() { reads_ = writes_ = 0; }

  // Mirrors every I/O into the sink's em_reads / em_writes (shard 0 —
  // EM-model algorithms are single-threaded), unifying device counters
  // with the serving MetricsRegistry. The device's own counters keep
  // working regardless; telemetry_test pins the two equal.
  void set_telemetry(TelemetrySink* sink) { telemetry_ = sink; }

  size_t num_blocks() const { return blocks_.size(); }

 private:
  size_t block_words_;
  uint64_t reads_ = 0;
  uint64_t writes_ = 0;
  TelemetrySink* telemetry_ = nullptr;  // not owned
  std::vector<std::vector<uint64_t>> blocks_;
};

}  // namespace iqs::em

#endif  // IQS_EM_BLOCK_DEVICE_H_
