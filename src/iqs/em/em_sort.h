// External merge sort (paper Section 8; Aggarwal & Vitter):
// O((n/B) log_{M/B}(n/B)) I/Os with M words of memory — run formation
// sorts M-word loads in memory, then (M/B - 1)-way merges, each pass
// streaming the data once. This is the engine behind the sample pool's
// tag-sort-untag rebuild.

#ifndef IQS_EM_EM_SORT_H_
#define IQS_EM_EM_SORT_H_

#include <cstddef>

#include "iqs/em/em_array.h"

namespace iqs::em {

// Sorts `input`'s records ascending by their first word, using at most
// ~`memory_words` words of buffer. Returns a new array on the same device.
EmArray ExternalSort(const EmArray& input, size_t memory_words);

}  // namespace iqs::em

#endif  // IQS_EM_EM_SORT_H_
