// NEON backend (aarch64): 2-lane xoshiro256++ vector generation with
// per-lane table resolution — AdvSIMD has no gather, so the table kernels
// vectorize the RNG and coin math and resolve urn/node loads per lane
// (with the same software prefetch the scalar paths use).

#include "iqs/simd/kernels.h"

#if IQS_SIMD_HAVE_NEON && defined(__aarch64__)

#include <arm_neon.h>

#include "iqs/simd/lanes.h"
#include "iqs/util/check.h"

namespace iqs::simd {

namespace {

constexpr int kLanes = 2;

struct VecRng {
  uint64x2_t s0, s1, s2, s3;
  XoshiroLane tail;

  explicit VecRng(uint64_t seed) {
    uint64_t w[4][kLanes];
    uint64_t* words[4] = {w[0], w[1], w[2], w[3]};
    tail = SeedLanes(seed, kLanes, words);
    s0 = vld1q_u64(w[0]);
    s1 = vld1q_u64(w[1]);
    s2 = vld1q_u64(w[2]);
    s3 = vld1q_u64(w[3]);
  }

  template <int k>
  static uint64x2_t Rotl(uint64x2_t x) {
    return vorrq_u64(vshlq_n_u64(x, k), vshrq_n_u64(x, 64 - k));
  }

  uint64x2_t Next2() {
    const uint64x2_t result = vaddq_u64(Rotl<23>(vaddq_u64(s0, s3)), s0);
    const uint64x2_t t = vshlq_n_u64(s1, 17);
    s2 = veorq_u64(s2, s0);
    s3 = veorq_u64(s3, s1);
    s1 = veorq_u64(s1, s2);
    s0 = veorq_u64(s0, s3);
    s2 = veorq_u64(s2, t);
    s3 = Rotl<45>(s3);
    return result;
  }
};

// Uniform [0, 1) on the 52-bit grid; v >> 12 < 2^52 converts exactly.
float64x2_t ToUnitDoubles(uint64x2_t v) {
  return vmulq_n_f64(vcvtq_f64_u64(vshrq_n_u64(v, 12)), 0x1.0p-52);
}

// Exact Lemire resolve of one pre-drawn word; rejects through the patch
// lane.
uint64_t ResolveBelow(uint64_t x, uint64_t bound, uint64_t threshold,
                      XoshiroLane* patch) {
  const __uint128_t m = static_cast<__uint128_t>(x) * bound;
  if (static_cast<uint64_t>(m) < threshold) return patch->Below(bound);
  return static_cast<uint64_t>(m >> 64);
}

size_t ScalarAliasDraw(uint64_t urn_word, double coin, const void* urns,
                       uint64_t num_urns, uint64_t threshold,
                       XoshiroLane* patch) {
  const uint64_t u = ResolveBelow(urn_word, num_urns, threshold, patch);
  return coin < UrnProb(urns, u) ? UrnPrimary(urns, u) : UrnAlias(urns, u);
}

}  // namespace

void FillDoublesNeon(uint64_t seed, std::span<double> out) {
  VecRng rng(seed);
  size_t i = 0;
  const size_t vec_end = out.size() & ~size_t{kLanes - 1};
  for (; i < vec_end; i += kLanes) {
    vst1q_f64(out.data() + i, ToUnitDoubles(rng.Next2()));
  }
  for (; i < out.size(); ++i) out[i] = rng.tail.NextDouble52();
}

void FillBelowNeon(uint64_t seed, uint64_t bound, std::span<uint64_t> out) {
  IQS_DCHECK(bound > 0);
  VecRng rng(seed);
  const uint64_t threshold = -bound % bound;
  size_t i = 0;
  const size_t vec_end = out.size() & ~size_t{kLanes - 1};
  uint64_t words[kLanes];
  for (; i < vec_end; i += kLanes) {
    vst1q_u64(words, rng.Next2());
    for (int l = 0; l < kLanes; ++l) {
      out[i + static_cast<size_t>(l)] =
          ResolveBelow(words[l], bound, threshold, &rng.tail);
    }
  }
  for (; i < out.size(); ++i) out[i] = rng.tail.Below(bound);
}

void AliasBlockNeon(uint64_t seed, const void* urns, uint64_t num_urns,
                    size_t base, std::span<size_t> out) {
  IQS_DCHECK(num_urns > 0);
  VecRng rng(seed);
  const char* bytes = static_cast<const char*>(urns);
  const uint64_t threshold = -num_urns % num_urns;
  size_t i = 0;
  const size_t vec_end = out.size() & ~size_t{kLanes - 1};
  uint64_t words[kLanes];
  double coins[kLanes];
  uint64_t picks[kLanes];
  for (; i < vec_end; i += kLanes) {
    vst1q_u64(words, rng.Next2());
    vst1q_f64(coins, ToUnitDoubles(rng.Next2()));
    for (int l = 0; l < kLanes; ++l) {
      picks[l] = ResolveBelow(words[l], num_urns, threshold, &rng.tail);
      __builtin_prefetch(bytes + picks[l] * kUrnStride);
    }
    for (int l = 0; l < kLanes; ++l) {
      const uint64_t u = picks[l];
      out[i + static_cast<size_t>(l)] =
          base + (coins[l] < UrnProb(bytes, u) ? UrnPrimary(bytes, u)
                                               : UrnAlias(bytes, u));
    }
  }
  for (; i < out.size(); ++i) {
    vst1q_u64(words, rng.Next2());
    vst1q_f64(coins, ToUnitDoubles(rng.Next2()));
    out[i] = base + ScalarAliasDraw(words[0], coins[0], bytes, num_urns,
                                    threshold, &rng.tail);
  }
}

void AliasTargetsNeon(uint64_t seed, const void* const* urn_ptrs,
                      const uint64_t* bounds, const size_t* bases,
                      std::span<size_t> out) {
  VecRng rng(seed);
  size_t i = 0;
  const size_t vec_end = out.size() & ~size_t{kLanes - 1};
  uint64_t words[kLanes];
  double coins[kLanes];
  for (; i < vec_end; i += kLanes) {
    vst1q_u64(words, rng.Next2());
    vst1q_f64(coins, ToUnitDoubles(rng.Next2()));
    for (int l = 0; l < kLanes; ++l) {
      const size_t d = i + static_cast<size_t>(l);
      const void* table = urn_ptrs[d];
      if (table == nullptr) {
        out[d] = bases[d];
        continue;
      }
      const uint64_t bound = bounds[d];
      out[d] = bases[d] + ScalarAliasDraw(words[l], coins[l], table, bound,
                                          -bound % bound, &rng.tail);
    }
  }
  for (; i < out.size(); ++i) {
    vst1q_u64(words, rng.Next2());
    vst1q_f64(coins, ToUnitDoubles(rng.Next2()));
    const void* table = urn_ptrs[i];
    if (table == nullptr) {
      out[i] = bases[i];
      continue;
    }
    const uint64_t bound = bounds[i];
    out[i] = bases[i] + ScalarAliasDraw(words[0], coins[0], table, bound,
                                        -bound % bound, &rng.tail);
  }
}

void QuantizedBlockNeon(uint64_t seed, const uint16_t* prob_q16,
                        const uint32_t* alias, uint64_t num_urns, size_t base,
                        std::span<size_t> out) {
  IQS_DCHECK(num_urns > 0);
  VecRng rng(seed);
  const uint64_t threshold = -num_urns % num_urns;
  size_t i = 0;
  const size_t vec_end = out.size() & ~size_t{kLanes - 1};
  uint64_t words[kLanes];
  uint64_t cwords[kLanes];
  for (; i < vec_end; i += kLanes) {
    vst1q_u64(words, rng.Next2());
    vst1q_u64(cwords, vshrq_n_u64(rng.Next2(), 48));
    for (int l = 0; l < kLanes; ++l) {
      const uint64_t u =
          ResolveBelow(words[l], num_urns, threshold, &rng.tail);
      out[i + static_cast<size_t>(l)] =
          base + (cwords[l] < prob_q16[u] ? u : alias[u]);
    }
  }
  for (; i < out.size(); ++i) {
    const uint64_t u = rng.tail.Below(num_urns);
    const uint16_t c = static_cast<uint16_t>(rng.tail.Next64() >> 48);
    out[i] = base + (c < prob_q16[u] ? u : alias[u]);
  }
}

size_t DescendLanesNeon(uint64_t seed, const void* nodes,
                        std::span<uint32_t> lanes) {
  VecRng rng(seed);
  const char* bytes = static_cast<const char*>(nodes);
  const size_t vec_end = lanes.size() & ~size_t{kLanes - 1};
  size_t steps = 0;
  double coins[kLanes];
  bool any_internal = true;
  while (any_internal) {
    any_internal = false;
    steps += lanes.size();
    size_t i = 0;
    for (; i < vec_end; i += kLanes) {
      vst1q_f64(coins, ToUnitDoubles(rng.Next2()));
      for (int l = 0; l < kLanes; ++l) {
        const size_t d = i + static_cast<size_t>(l);
        const uint32_t left = NodeLeft(bytes, lanes[d]);
        if (left == kNullNodeId) continue;
        const uint32_t next =
            coins[l] * NodeWeight(bytes, lanes[d]) < NodeWeight(bytes, left)
                ? left
                : left + 1;
        __builtin_prefetch(bytes + uint64_t{next} * kNodeStride);
        lanes[d] = next;
        any_internal = true;
      }
    }
    for (; i < lanes.size(); ++i) {
      const double coin = rng.tail.NextDouble52();
      const uint32_t left = NodeLeft(bytes, lanes[i]);
      if (left == kNullNodeId) continue;
      const uint32_t next =
          coin * NodeWeight(bytes, lanes[i]) < NodeWeight(bytes, left)
              ? left
              : left + 1;
      __builtin_prefetch(bytes + uint64_t{next} * kNodeStride);
      lanes[i] = next;
      any_internal = true;
    }
  }
  return steps;
}

}  // namespace iqs::simd

#endif  // IQS_SIMD_HAVE_NEON && __aarch64__
