// Runtime kernel-backend dispatch for the SIMD layer (DESIGN.md "Kernel
// dispatch").
//
// libiqs ships three implementations of its hot serving kernels — block
// xoshiro256++ generation (Rng::FillDoubles / FillBelow), blocked
// alias-table draws, and StaticBst's grouped descent:
//
//   kScalar  the portable reference loops. Bit-stable: scalar output is
//            part of the determinism contract and never changes across
//            releases (rng_test pins FillDoubles == the NextDouble
//            stream under forced scalar).
//   kAvx2    4-lane AVX2 kernels (x86-64). Distribution-equivalent to
//            scalar — same per-element law, proven by chi-square in
//            simd_kernels_test — but a DIFFERENT stream: a SIMD fill
//            consumes one word of the caller's Rng as a block seed and
//            expands it into independent lanes, where scalar steps the
//            caller's state per element. Deterministic under a fixed
//            seed and backend.
//   kNeon    2-lane NEON kernels (aarch64), same contract as kAvx2.
//
// The backend is detected once per process (CPUID-backed
// __builtin_cpu_supports on x86, HWCAP via getauxval on aarch64) and
// cached; detection is overridable three ways, strongest first:
//   1. ForceBackend() / ClearForcedBackend() — tests and benches force a
//      specific backend to compare kernels on the same machine.
//   2. The IQS_FORCE_SCALAR environment variable (any non-empty value):
//      pins kScalar for the process without rebuilding.
//   3. The IQS_DISABLE_SIMD compile definition (cmake
//      -DIQS_DISABLE_SIMD=ON): compiles the vector TUs out entirely —
//      the CI job that proves the scalar path alone is green.

#ifndef IQS_SIMD_DISPATCH_H_
#define IQS_SIMD_DISPATCH_H_

#include <cstdint>
#include <string_view>

namespace iqs::simd {

// Compile-time availability of the vector kernel TUs. The AVX2 TU is
// always built on x86-64 (it carries its own -mavx2 and is only entered
// after the CPUID check); likewise NEON on aarch64.
#if !defined(IQS_DISABLE_SIMD) && (defined(__x86_64__) || defined(_M_X64))
#define IQS_SIMD_HAVE_AVX2 1
#else
#define IQS_SIMD_HAVE_AVX2 0
#endif
#if !defined(IQS_DISABLE_SIMD) && defined(__aarch64__)
#define IQS_SIMD_HAVE_NEON 1
#else
#define IQS_SIMD_HAVE_NEON 0
#endif

enum class Backend : uint8_t {
  kScalar = 0,
  kAvx2 = 1,
  kNeon = 2,
};

// The backend every dispatching kernel call site uses right now:
// the forced backend if one is set, else the detected one. Lock-free
// (one relaxed atomic load) — called on the hot path.
Backend ActiveBackend();

// True when `backend` is compiled in AND supported by this CPU.
bool BackendAvailable(Backend backend);

// Overrides detection process-wide until ClearForcedBackend().
// IQS_CHECKs BackendAvailable(backend). Not intended to race with
// in-flight batches: callers flip it between runs (tests, benches).
void ForceBackend(Backend backend);
void ClearForcedBackend();

// "scalar" / "avx2" / "neon".
std::string_view BackendName(Backend backend);

// Telemetry bit for `backend` (QueryStats::backend_mask): 1 << int(backend).
inline uint64_t BackendBit(Backend backend) {
  return uint64_t{1} << static_cast<int>(backend);
}

// Renders a QueryStats::backend_mask as "scalar+avx2"-style text; "none"
// for an empty mask.
std::string_view BackendMaskName(uint64_t mask);

}  // namespace iqs::simd

#endif  // IQS_SIMD_DISPATCH_H_
