// Multi-lane xoshiro256++ seeding, shared by every vector backend and by
// the scalar tail/patch loops inside the kernel TUs.
//
// A SIMD kernel consumes exactly ONE word of the caller's Rng stream (the
// "block seed") and expands it here into kLanes + 1 independent
// xoshiro256++ states: kLanes vector lanes plus one extra scalar lane that
// serves the non-multiple-of-kLanes tail and the rare rejection patches.
// The expansion is one SplitMix64 chain — exactly the Rng(seed)
// construction, continued across lanes — so each lane is seeded the way a
// fresh Rng would be and the whole fill is a pure function of
// (block seed, backend). That keeps the substream determinism of
// ForkStream intact: a forked query stream yields the block seed, and
// everything after is deterministic.
//
// Distribution note: the vector double conversion keeps 52 random bits
// ((bits >> 12) * 2^-52, the exponent-trick form) where scalar
// Rng::NextDouble() keeps 53. Both are uniform on [0, 1); the coarser
// grid is undetectable by the chi-square law tests and irrelevant to the
// alias/descent comparisons that consume the coins. The scalar helpers
// here use the SAME 52-bit form so vector body and scalar tail of one
// fill are identically distributed.

#ifndef IQS_SIMD_LANES_H_
#define IQS_SIMD_LANES_H_

#include <cstdint>

namespace iqs::simd {

// SplitMix64 step — the same seeding permutation Rng uses.
inline uint64_t SplitMix64Step(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// One scalar xoshiro256++ lane: the tail/patch generator of a vector
// fill, and the reference stepper for lane extraction in tests.
struct XoshiroLane {
  uint64_t s[4];

  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t Next64() {
    const uint64_t result = Rotl(s[0] + s[3], 23) + s[0];
    const uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = Rotl(s[3], 45);
    return result;
  }

  // Uniform [0, 1) on the 52-bit grid (see the distribution note above).
  double NextDouble52() {
    return static_cast<double>(Next64() >> 12) * 0x1.0p-52;
  }

  // Exact Lemire unbiased bounded draw (same algorithm as Rng::Below).
  uint64_t Below(uint64_t bound) {
    uint64_t x = Next64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t low = static_cast<uint64_t>(m);
    if (low < bound) {
      const uint64_t threshold = -bound % bound;
      while (low < threshold) {
        x = Next64();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }
};

// Expands `block_seed` into `lanes` vector lane states (word-major:
// state[w][l] is word w of lane l — the layout vector registers load
// directly) plus the tail/patch lane. state[w] must have room for
// `lanes` words.
inline XoshiroLane SeedLanes(uint64_t block_seed, int lanes,
                             uint64_t* state[4]) {
  uint64_t sm = block_seed;
  for (int l = 0; l < lanes; ++l) {
    for (int w = 0; w < 4; ++w) state[w][l] = SplitMix64Step(&sm);
  }
  XoshiroLane tail;
  for (uint64_t& word : tail.s) word = SplitMix64Step(&sm);
  return tail;
}

}  // namespace iqs::simd

#endif  // IQS_SIMD_LANES_H_
