// Vector kernel entry points (AVX2 / NEON). Intrinsics live only in the
// per-backend TUs (kernels_avx2.cc, kernels_neon.cc); this header is
// portable so it can sit in the umbrella and compile standalone anywhere.
//
// Call-site contract (enforced by the dispatch points in rng.cc,
// alias_table.cc, quantized_alias.cc, static_bst.cc):
//   * A kernel is only called when ActiveBackend() names its backend,
//     which implies the CPU supports it.
//   * `seed` is one word of the caller's Rng stream (rng->Next64());
//     the kernel expands it via lanes.h. Per-element output law matches
//     the scalar path (proven by chi-square in simd_kernels_test); the
//     byte stream does NOT match scalar — see simd/dispatch.h.
//   * Structure memory is passed as untyped bytes plus the layout
//     constants below, so kernels gather from the exact arrays the
//     scalar paths read without aliasing through private struct types.
//
// Byte layouts (static_asserted against the real structs at each call
// site):
//   Alias urn   16-byte stride: f64 primary_prob @0, u32 primary @8,
//               u32 alias @12  (AliasTable::Urn).
//   Bst node    24-byte stride: f64 weight @0, u32 left @8
//               (StaticBst::Node; left == 0xFFFFFFFF marks a leaf).

#ifndef IQS_SIMD_KERNELS_H_
#define IQS_SIMD_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>

#include "iqs/simd/dispatch.h"

namespace iqs::simd {

// Layout constants for the untyped structure arrays.
inline constexpr size_t kUrnStride = 16;
inline constexpr size_t kUrnProbOffset = 0;
inline constexpr size_t kUrnPrimaryOffset = 8;
inline constexpr size_t kUrnAliasOffset = 12;
inline constexpr size_t kNodeStride = 24;
inline constexpr size_t kNodeWeightOffset = 0;
inline constexpr size_t kNodeLeftOffset = 8;
inline constexpr uint32_t kNullNodeId = ~uint32_t{0};

// Field readers for the scalar tail/patch loops inside the kernel TUs
// (memcpy keeps the untyped access well-defined).
inline double UrnProb(const void* urns, uint64_t i) {
  double prob;
  std::memcpy(&prob,
              static_cast<const char*>(urns) + i * kUrnStride + kUrnProbOffset,
              sizeof(prob));
  return prob;
}
inline uint32_t UrnPrimary(const void* urns, uint64_t i) {
  uint32_t v;
  std::memcpy(
      &v, static_cast<const char*>(urns) + i * kUrnStride + kUrnPrimaryOffset,
      sizeof(v));
  return v;
}
inline uint32_t UrnAlias(const void* urns, uint64_t i) {
  uint32_t v;
  std::memcpy(&v,
              static_cast<const char*>(urns) + i * kUrnStride + kUrnAliasOffset,
              sizeof(v));
  return v;
}
inline double NodeWeight(const void* nodes, uint64_t i) {
  double w;
  std::memcpy(
      &w, static_cast<const char*>(nodes) + i * kNodeStride + kNodeWeightOffset,
      sizeof(w));
  return w;
}
inline uint32_t NodeLeft(const void* nodes, uint64_t i) {
  uint32_t v;
  std::memcpy(
      &v, static_cast<const char*>(nodes) + i * kNodeStride + kNodeLeftOffset,
      sizeof(v));
  return v;
}

// Dispatch thresholds: below these sizes the lane-seeding overhead (17 or
// 21 SplitMix64 words) exceeds the vector win and call sites stay scalar.
inline constexpr size_t kFillDispatchMin = 64;
inline constexpr size_t kAliasDispatchMin = 32;
inline constexpr size_t kDescendDispatchMin = 16;

#if IQS_SIMD_HAVE_AVX2

// Fills `out` with independent uniform doubles in [0, 1) (52-bit grid).
void FillDoublesAvx2(uint64_t seed, std::span<double> out);

// Fills `out` with independent uniform integers in [0, bound); exact
// Lemire acceptance (one threshold divide per call).
void FillBelowAvx2(uint64_t seed, uint64_t bound, std::span<uint64_t> out);

// Fused alias-table block: out[i] = base + one weighted draw from the
// `num_urns`-urn table at `urns` (urn pick, coin, gather, compare-blend
// all in-register).
void AliasBlockAvx2(uint64_t seed, const void* urns, uint64_t num_urns,
                    size_t base, std::span<size_t> out);

// Heterogeneous alias pass: out[i] = bases[i] + one draw from the table
// at urn_ptrs[i] with bounds[i] urns. Gathers through per-lane table
// addresses; a draw's urn pick rejects (and patches through the scalar
// lane, exactly) whenever low64(v * bound) < bound — a superset of the
// exact Lemire threshold that skips the per-lane divide. The direct-
// accept law deviates from uniform by < bounds[i] * 2^-64 relative
// (~2^-40 for realistic tables), far below chi-square resolution.
// urn_ptrs[i] may be null: out[i] = bases[i] (degenerate single-leaf
// group), consuming no urn randomness for that lane in the scalar path
// sense — the vector path still burns its lane step.
void AliasTargetsAvx2(uint64_t seed, const void* const* urn_ptrs,
                      const uint64_t* bounds, const size_t* bases,
                      std::span<size_t> out);

// Quantized alias block: urn i returns i with probability
// prob_q16[i] / 2^16, else alias[i]; out[i] = base + draw. `prob_q16`
// must be padded with one sentinel element past num_urns (32-bit
// gathers read 4 bytes from offset 2 * urn).
void QuantizedBlockAvx2(uint64_t seed, const uint16_t* prob_q16,
                        const uint32_t* alias, uint64_t num_urns, size_t base,
                        std::span<size_t> out);

// Level-synchronous weighted descent over a StaticBst node array: each
// lane starts at lanes[i] and is replaced by a sampled leaf id (law of
// StaticBst::SampleLeaf). Returns lane-level descent steps counted the
// way the scalar kernel counts them (lanes.size() per level pass).
size_t DescendLanesAvx2(uint64_t seed, const void* nodes,
                        std::span<uint32_t> lanes);

#endif  // IQS_SIMD_HAVE_AVX2

#if IQS_SIMD_HAVE_NEON

// NEON twins of the AVX2 kernels (2-lane; per-lane loads instead of
// gathers). Same contracts as above.
void FillDoublesNeon(uint64_t seed, std::span<double> out);
void FillBelowNeon(uint64_t seed, uint64_t bound, std::span<uint64_t> out);
void AliasBlockNeon(uint64_t seed, const void* urns, uint64_t num_urns,
                    size_t base, std::span<size_t> out);
void AliasTargetsNeon(uint64_t seed, const void* const* urn_ptrs,
                      const uint64_t* bounds, const size_t* bases,
                      std::span<size_t> out);
void QuantizedBlockNeon(uint64_t seed, const uint16_t* prob_q16,
                        const uint32_t* alias, uint64_t num_urns, size_t base,
                        std::span<size_t> out);
size_t DescendLanesNeon(uint64_t seed, const void* nodes,
                        std::span<uint32_t> lanes);

#endif  // IQS_SIMD_HAVE_NEON

}  // namespace iqs::simd

#endif  // IQS_SIMD_KERNELS_H_
