#include "iqs/simd/dispatch.h"

#include <atomic>
#include <cstdlib>

#include "iqs/util/check.h"

#if IQS_SIMD_HAVE_NEON && defined(__linux__)
#include <sys/auxv.h>
#ifndef HWCAP_ASIMD
#define HWCAP_ASIMD (1 << 1)
#endif
#endif

namespace iqs::simd {

namespace {

bool CpuSupports(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return true;
    case Backend::kAvx2:
#if IQS_SIMD_HAVE_AVX2
      return __builtin_cpu_supports("avx2");
#else
      return false;
#endif
    case Backend::kNeon:
#if IQS_SIMD_HAVE_NEON
#if defined(__linux__)
      return (getauxval(AT_HWCAP) & HWCAP_ASIMD) != 0;
#else
      return true;  // AdvSIMD is architecturally mandatory on aarch64.
#endif
#else
      return false;
#endif
  }
  return false;
}

Backend DetectBackend() {
  const char* force_scalar = std::getenv("IQS_FORCE_SCALAR");
  if (force_scalar != nullptr && force_scalar[0] != '\0') {
    return Backend::kScalar;
  }
  if (CpuSupports(Backend::kAvx2)) return Backend::kAvx2;
  if (CpuSupports(Backend::kNeon)) return Backend::kNeon;
  return Backend::kScalar;
}

// -1 = no override; otherwise the int value of the forced Backend.
std::atomic<int> g_forced{-1};

}  // namespace

Backend ActiveBackend() {
  const int forced = g_forced.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<Backend>(forced);
  static const Backend detected = DetectBackend();
  return detected;
}

bool BackendAvailable(Backend backend) { return CpuSupports(backend); }

void ForceBackend(Backend backend) {
  IQS_CHECK(BackendAvailable(backend));
  g_forced.store(static_cast<int>(backend), std::memory_order_relaxed);
}

void ClearForcedBackend() { g_forced.store(-1, std::memory_order_relaxed); }

std::string_view BackendName(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kAvx2:
      return "avx2";
    case Backend::kNeon:
      return "neon";
  }
  return "unknown";
}

std::string_view BackendMaskName(uint64_t mask) {
  // Masks are tiny (3 bits); enumerate the combinations so callers get a
  // stable string_view with no allocation.
  switch (mask & 7) {
    case 0:
      return "none";
    case 1:
      return "scalar";
    case 2:
      return "avx2";
    case 3:
      return "scalar+avx2";
    case 4:
      return "neon";
    case 5:
      return "scalar+neon";
    case 6:
      return "avx2+neon";
    case 7:
      return "scalar+avx2+neon";
  }
  return "none";
}

}  // namespace iqs::simd
