// AVX2 backend: 4-lane xoshiro256++ with gather-based table kernels.
// This TU is compiled with -mavx2 (see src/CMakeLists.txt); it is only
// ENTERED after dispatch.cc's CPUID check, so building it into the
// library on every x86-64 is safe.

#include "iqs/simd/kernels.h"

#if IQS_SIMD_HAVE_AVX2 && defined(__AVX2__)

#include <immintrin.h>

#include "iqs/simd/lanes.h"
#include "iqs/util/check.h"

namespace iqs::simd {

namespace {

constexpr int kLanes = 4;

// Four xoshiro256++ lanes, one state word per register (word-major), plus
// the scalar tail/patch lane — all derived from one block seed (lanes.h).
struct VecRng {
  __m256i s0, s1, s2, s3;
  XoshiroLane tail;

  explicit VecRng(uint64_t seed) {
    alignas(32) uint64_t w[4][kLanes];
    uint64_t* words[4] = {w[0], w[1], w[2], w[3]};
    tail = SeedLanes(seed, kLanes, words);
    s0 = _mm256_load_si256(reinterpret_cast<const __m256i*>(w[0]));
    s1 = _mm256_load_si256(reinterpret_cast<const __m256i*>(w[1]));
    s2 = _mm256_load_si256(reinterpret_cast<const __m256i*>(w[2]));
    s3 = _mm256_load_si256(reinterpret_cast<const __m256i*>(w[3]));
  }

  static __m256i Rotl(__m256i x, int k) {
    return _mm256_or_si256(_mm256_slli_epi64(x, k),
                           _mm256_srli_epi64(x, 64 - k));
  }

  // One xoshiro256++ step of all four lanes.
  __m256i Next4() {
    const __m256i result =
        _mm256_add_epi64(Rotl(_mm256_add_epi64(s0, s3), 23), s0);
    const __m256i t = _mm256_slli_epi64(s1, 17);
    s2 = _mm256_xor_si256(s2, s0);
    s3 = _mm256_xor_si256(s3, s1);
    s1 = _mm256_xor_si256(s1, s2);
    s0 = _mm256_xor_si256(s0, s3);
    s2 = _mm256_xor_si256(s2, t);
    s3 = Rotl(s3, 45);
    return result;
  }
};

// Uniform [0, 1) on the 52-bit grid: (v >> 12) | exp(1.0) reinterprets as
// 1.m in [1, 2), minus 1.0 — both steps exact, value == (v >> 12) * 2^-52.
__m256d ToUnitDoubles(__m256i v) {
  const __m256i mant =
      _mm256_or_si256(_mm256_srli_epi64(v, 12),
                      _mm256_set1_epi64x(0x3FF0000000000000LL));
  return _mm256_sub_pd(_mm256_castsi256_pd(mant), _mm256_set1_pd(1.0));
}

// Unsigned 64-bit a < b per lane (AVX2 only has signed compares).
__m256i CmpLtU64(__m256i a, __m256i b) {
  const __m256i sign = _mm256_set1_epi64x(
      static_cast<long long>(0x8000000000000000ULL));
  return _mm256_cmpgt_epi64(_mm256_xor_si256(b, sign),
                            _mm256_xor_si256(a, sign));
}

// Full 64x64 -> 128 unsigned product per lane from 32-bit partials
// (_mm256_mul_epu32 multiplies the low halves); returns the high 64 bits
// and writes the low 64 to *lo_out.
__m256i MulHiLo64(__m256i a, __m256i b, __m256i* lo_out) {
  const __m256i mask32 = _mm256_set1_epi64x(0xFFFFFFFFLL);
  const __m256i a_hi = _mm256_srli_epi64(a, 32);
  const __m256i b_hi = _mm256_srli_epi64(b, 32);
  const __m256i t = _mm256_mul_epu32(a, b);       // lo(a) * lo(b)
  const __m256i u = _mm256_mul_epu32(a_hi, b);    // hi(a) * lo(b)
  const __m256i w = _mm256_mul_epu32(a, b_hi);    // lo(a) * hi(b)
  const __m256i hh = _mm256_mul_epu32(a_hi, b_hi);
  // mid collects bits 32..63 of the product plus carries; <= 3 * (2^32-1)
  // so it fits without overflow.
  const __m256i mid = _mm256_add_epi64(
      _mm256_srli_epi64(t, 32),
      _mm256_add_epi64(_mm256_and_si256(u, mask32),
                       _mm256_and_si256(w, mask32)));
  *lo_out = _mm256_or_si256(_mm256_and_si256(t, mask32),
                            _mm256_slli_epi64(mid, 32));
  return _mm256_add_epi64(
      hh, _mm256_add_epi64(
              _mm256_srli_epi64(u, 32),
              _mm256_add_epi64(_mm256_srli_epi64(w, 32),
                               _mm256_srli_epi64(mid, 32))));
}

int MoveMask64(__m256i mask) {
  return _mm256_movemask_pd(_mm256_castsi256_pd(mask));
}

// One exact scalar alias draw through the patch lane.
size_t ScalarAliasDraw(XoshiroLane* lane, const void* urns,
                       uint64_t num_urns) {
  const uint64_t u = lane->Below(num_urns);
  return lane->NextDouble52() < UrnProb(urns, u) ? UrnPrimary(urns, u)
                                                 : UrnAlias(urns, u);
}

}  // namespace

void FillDoublesAvx2(uint64_t seed, std::span<double> out) {
  VecRng rng(seed);
  size_t i = 0;
  const size_t vec_end = out.size() & ~size_t{kLanes - 1};
  for (; i < vec_end; i += kLanes) {
    _mm256_storeu_pd(out.data() + i, ToUnitDoubles(rng.Next4()));
  }
  for (; i < out.size(); ++i) out[i] = rng.tail.NextDouble52();
}

void FillBelowAvx2(uint64_t seed, uint64_t bound, std::span<uint64_t> out) {
  IQS_DCHECK(bound > 0);
  VecRng rng(seed);
  const uint64_t threshold = -bound % bound;
  const __m256i vb = _mm256_set1_epi64x(static_cast<long long>(bound));
  const __m256i vt = _mm256_set1_epi64x(static_cast<long long>(threshold));
  size_t i = 0;
  const size_t vec_end = out.size() & ~size_t{kLanes - 1};
  for (; i < vec_end; i += kLanes) {
    __m256i lo;
    const __m256i hi = MulHiLo64(rng.Next4(), vb, &lo);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out.data() + i), hi);
    // Exact Lemire acceptance; rejected lanes (probability threshold /
    // 2^64 each) redraw through the patch lane.
    int rejected = MoveMask64(CmpLtU64(lo, vt));
    while (rejected != 0) {
      const int lane = __builtin_ctz(static_cast<unsigned>(rejected));
      rejected &= rejected - 1;
      out[i + static_cast<size_t>(lane)] = rng.tail.Below(bound);
    }
  }
  for (; i < out.size(); ++i) out[i] = rng.tail.Below(bound);
}

void AliasBlockAvx2(uint64_t seed, const void* urns, uint64_t num_urns,
                    size_t base, std::span<size_t> out) {
  IQS_DCHECK(num_urns > 0);
  VecRng rng(seed);
  const char* bytes = static_cast<const char*>(urns);
  const uint64_t threshold = -num_urns % num_urns;
  const __m256i vb = _mm256_set1_epi64x(static_cast<long long>(num_urns));
  const __m256i vt = _mm256_set1_epi64x(static_cast<long long>(threshold));
  const __m256i vbase = _mm256_set1_epi64x(static_cast<long long>(base));
  const __m256i mask32 = _mm256_set1_epi64x(0xFFFFFFFFLL);
  size_t i = 0;
  const size_t vec_end = out.size() & ~size_t{kLanes - 1};
  for (; i < vec_end; i += kLanes) {
    __m256i lo;
    const __m256i urn = MulHiLo64(rng.Next4(), vb, &lo);  // < num_urns
    const __m256d coin = ToUnitDoubles(rng.Next4());
    // Urn layout is 16 bytes: prob at +0, (primary | alias << 32) at +8;
    // index urn * 2 at scale 8 walks the stride.
    const __m256i idx2 = _mm256_slli_epi64(urn, 1);
    const __m256d prob =
        _mm256_i64gather_pd(reinterpret_cast<const double*>(bytes), idx2, 8);
    const __m256i pair = _mm256_i64gather_epi64(
        reinterpret_cast<const long long*>(bytes + kUrnPrimaryOffset), idx2,
        8);
    const __m256i primary = _mm256_and_si256(pair, mask32);
    const __m256i alias = _mm256_srli_epi64(pair, 32);
    const __m256i take_primary =
        _mm256_castpd_si256(_mm256_cmp_pd(coin, prob, _CMP_LT_OQ));
    const __m256i sel = _mm256_blendv_epi8(alias, primary, take_primary);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out.data() + i),
                        _mm256_add_epi64(sel, vbase));
    int rejected = MoveMask64(CmpLtU64(lo, vt));
    while (rejected != 0) {
      const int lane = __builtin_ctz(static_cast<unsigned>(rejected));
      rejected &= rejected - 1;
      out[i + static_cast<size_t>(lane)] =
          base + ScalarAliasDraw(&rng.tail, urns, num_urns);
    }
  }
  for (; i < out.size(); ++i) {
    out[i] = base + ScalarAliasDraw(&rng.tail, urns, num_urns);
  }
}

void AliasTargetsAvx2(uint64_t seed, const void* const* urn_ptrs,
                      const uint64_t* bounds, const size_t* bases,
                      std::span<size_t> out) {
  VecRng rng(seed);
  // Null-table lanes are steered at a dummy urn that always returns
  // primary 0, so out[i] = bases[i] with no branches in the vector body.
  struct UrnPod {
    double prob;
    uint32_t primary;
    uint32_t alias;
  };
  static constexpr UrnPod kDummyUrn = {2.0, 0, 0};
  static_assert(sizeof(UrnPod) == kUrnStride);
  const __m256i vdummy = _mm256_set1_epi64x(
      static_cast<long long>(reinterpret_cast<uintptr_t>(&kDummyUrn)));
  const __m256i vone = _mm256_set1_epi64x(1);
  const __m256i vzero = _mm256_setzero_si256();
  const __m256i mask32 = _mm256_set1_epi64x(0xFFFFFFFFLL);
  size_t i = 0;
  const size_t vec_end = out.size() & ~size_t{kLanes - 1};
  for (; i < vec_end; i += kLanes) {
    __m256i addr = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(urn_ptrs + i));
    __m256i vb = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(bounds + i));
    const __m256i is_null = _mm256_cmpeq_epi64(addr, vzero);
    addr = _mm256_blendv_epi8(addr, vdummy, is_null);
    vb = _mm256_blendv_epi8(vb, vone, is_null);
    __m256i lo;
    const __m256i urn = MulHiLo64(rng.Next4(), vb, &lo);
    const __m256d coin = ToUnitDoubles(rng.Next4());
    // Per-lane bounds make the exact Lemire threshold a divide per draw;
    // instead reject on the superset low64 < bound and patch exactly —
    // see the contract in kernels.h.
    const int rejected0 = MoveMask64(CmpLtU64(lo, vb));
    // Full 64-bit urn addresses: table base + urn * 16, gathered at
    // scale 1 off a null base.
    const __m256i ubyte =
        _mm256_add_epi64(addr, _mm256_slli_epi64(urn, 4));
    const __m256d prob = _mm256_i64gather_pd(
        static_cast<const double*>(nullptr), ubyte, 1);
    const __m256i pair = _mm256_i64gather_epi64(
        static_cast<const long long*>(nullptr),
        _mm256_add_epi64(ubyte, _mm256_set1_epi64x(kUrnPrimaryOffset)), 1);
    const __m256i primary = _mm256_and_si256(pair, mask32);
    const __m256i alias = _mm256_srli_epi64(pair, 32);
    const __m256i take_primary =
        _mm256_castpd_si256(_mm256_cmp_pd(coin, prob, _CMP_LT_OQ));
    const __m256i sel = _mm256_blendv_epi8(alias, primary, take_primary);
    const __m256i vbases = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(bases + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out.data() + i),
                        _mm256_add_epi64(sel, vbases));
    int rejected = rejected0;
    while (rejected != 0) {
      const int lane = __builtin_ctz(static_cast<unsigned>(rejected));
      rejected &= rejected - 1;
      const size_t d = i + static_cast<size_t>(lane);
      const void* table = urn_ptrs[d];
      out[d] = bases[d] +
               (table == nullptr
                    ? 0
                    : ScalarAliasDraw(&rng.tail, table, bounds[d]));
    }
  }
  for (; i < out.size(); ++i) {
    const void* table = urn_ptrs[i];
    out[i] = bases[i] +
             (table == nullptr ? 0
                               : ScalarAliasDraw(&rng.tail, table, bounds[i]));
  }
}

void QuantizedBlockAvx2(uint64_t seed, const uint16_t* prob_q16,
                        const uint32_t* alias, uint64_t num_urns, size_t base,
                        std::span<size_t> out) {
  IQS_DCHECK(num_urns > 0);
  VecRng rng(seed);
  const uint64_t threshold = -num_urns % num_urns;
  const __m256i vb = _mm256_set1_epi64x(static_cast<long long>(num_urns));
  const __m256i vt = _mm256_set1_epi64x(static_cast<long long>(threshold));
  const __m256i vbase = _mm256_set1_epi64x(static_cast<long long>(base));
  const __m256i mask16 = _mm256_set1_epi64x(0xFFFFLL);
  size_t i = 0;
  const size_t vec_end = out.size() & ~size_t{kLanes - 1};
  for (; i < vec_end; i += kLanes) {
    __m256i lo;
    const __m256i urn = MulHiLo64(rng.Next4(), vb, &lo);
    const __m256i coin =
        _mm256_srli_epi64(rng.Next4(), 48);  // 16-bit coin per lane
    // prob_q16 is u16 at stride 2 (one sentinel element of padding lets
    // the 4-byte gather read the last urn); alias is u32 at stride 4.
    const __m128i prob32 = _mm256_i64gather_epi32(
        reinterpret_cast<const int*>(prob_q16), urn, 2);
    const __m128i alias32 = _mm256_i64gather_epi32(
        reinterpret_cast<const int*>(alias), urn, 4);
    const __m256i prob =
        _mm256_and_si256(_mm256_cvtepu32_epi64(prob32), mask16);
    const __m256i alias64 = _mm256_cvtepu32_epi64(alias32);
    // coin < prob, both in [0, 2^16): signed compare is safe.
    const __m256i take_primary = _mm256_cmpgt_epi64(prob, coin);
    const __m256i sel = _mm256_blendv_epi8(alias64, urn, take_primary);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out.data() + i),
                        _mm256_add_epi64(sel, vbase));
    int rejected = MoveMask64(CmpLtU64(lo, vt));
    while (rejected != 0) {
      const int lane = __builtin_ctz(static_cast<unsigned>(rejected));
      rejected &= rejected - 1;
      const uint64_t u = rng.tail.Below(num_urns);
      const uint16_t c = static_cast<uint16_t>(rng.tail.Next64() >> 48);
      out[i + static_cast<size_t>(lane)] =
          base + (c < prob_q16[u] ? u : alias[u]);
    }
  }
  for (; i < out.size(); ++i) {
    const uint64_t u = rng.tail.Below(num_urns);
    const uint16_t c = static_cast<uint16_t>(rng.tail.Next64() >> 48);
    out[i] = base + (c < prob_q16[u] ? u : alias[u]);
  }
}

size_t DescendLanesAvx2(uint64_t seed, const void* nodes,
                        std::span<uint32_t> lanes) {
  VecRng rng(seed);
  const char* bytes = static_cast<const char*>(nodes);
  const __m256i vnull = _mm256_set1_epi64x(
      static_cast<long long>(kNullNodeId));
  const __m256i vone = _mm256_set1_epi64x(1);
  const __m256i mask32 = _mm256_set1_epi64x(0xFFFFFFFFLL);
  const __m256i vones = _mm256_cmpeq_epi64(vone, vone);
  const __m256i pack_lo32 = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
  const size_t vec_end = lanes.size() & ~size_t{kLanes - 1};
  size_t steps = 0;
  // Level-synchronous: every pass advances all still-internal lanes one
  // level; steps accounting matches the scalar kernel (whole span per
  // pass). Finished lanes keep burning a coin per pass, as in scalar.
  bool any_internal = true;
  while (any_internal) {
    any_internal = false;
    steps += lanes.size();
    size_t i = 0;
    for (; i < vec_end; i += kLanes) {
      const __m256i ids = _mm256_cvtepu32_epi64(_mm_loadu_si128(
          reinterpret_cast<const __m128i*>(lanes.data() + i)));
      // Node byte offsets are id * 24 = (id * 3) * 8.
      const __m256i idx3 =
          _mm256_add_epi64(_mm256_slli_epi64(ids, 1), ids);
      const __m256d weight = _mm256_i64gather_pd(
          reinterpret_cast<const double*>(bytes), idx3, 8);
      const __m256i leftword = _mm256_i64gather_epi64(
          reinterpret_cast<const long long*>(bytes + kNodeLeftOffset), idx3,
          8);
      const __m256i left = _mm256_and_si256(leftword, mask32);
      const __m256i is_leaf = _mm256_cmpeq_epi64(left, vnull);
      const int internal = (~MoveMask64(is_leaf)) & 0xF;
      const __m256d coin = ToUnitDoubles(rng.Next4());
      if (internal == 0) continue;
      any_internal = true;
      // Left-child weight: masked gather so leaf lanes (left == null)
      // never touch a wild address.
      const __m256i lidx3 =
          _mm256_add_epi64(_mm256_slli_epi64(left, 1), left);
      const __m256d left_weight = _mm256_mask_i64gather_pd(
          _mm256_setzero_pd(), reinterpret_cast<const double*>(bytes), lidx3,
          _mm256_castsi256_pd(_mm256_xor_si256(is_leaf, vones)), 8);
      const __m256d go_left =
          _mm256_cmp_pd(_mm256_mul_pd(coin, weight), left_weight, _CMP_LT_OQ);
      const __m256i next = _mm256_add_epi64(
          left, _mm256_andnot_si256(_mm256_castpd_si256(go_left), vone));
      const __m256i new_ids = _mm256_blendv_epi8(next, ids, is_leaf);
      const __m128i packed = _mm256_castsi256_si128(
          _mm256_permutevar8x32_epi32(new_ids, pack_lo32));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(lanes.data() + i), packed);
      int pending = internal;
      while (pending != 0) {
        const int lane = __builtin_ctz(static_cast<unsigned>(pending));
        pending &= pending - 1;
        __builtin_prefetch(bytes +
                           uint64_t{lanes[i + static_cast<size_t>(lane)]} *
                               kNodeStride);
      }
    }
    for (; i < lanes.size(); ++i) {
      const double coin = rng.tail.NextDouble52();
      const uint32_t left = NodeLeft(bytes, lanes[i]);
      if (left == kNullNodeId) continue;
      const uint32_t next =
          coin * NodeWeight(bytes, lanes[i]) < NodeWeight(bytes, left)
              ? left
              : left + 1;
      __builtin_prefetch(bytes + uint64_t{next} * kNodeStride);
      lanes[i] = next;
      any_internal = true;
    }
  }
  return steps;
}

}  // namespace iqs::simd

#endif  // IQS_SIMD_HAVE_AVX2 && __AVX2__
