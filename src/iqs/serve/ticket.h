// One-shot completion slot for a single query submitted to the serving
// frontend (serve/frontend.h) — the future half of Submit(query) ->
// future.
//
// A ServeTicket is CALLER-OWNED storage: producers keep an array of
// tickets (reusable via Reset), so the hot submit path allocates nothing
// and the completion handoff is one release-store plus an atomic notify.
// The frontend completes every admitted ticket exactly once — a second
// Complete on the same ticket aborts via IQS_CHECK, which is how the
// drain/shutdown tests turn "no double-completed futures" into a
// construction-time guarantee rather than a test-only assertion.
//
// Lifetime contract: between Submit and the ticket reaching a terminal
// status the ticket must stay alive and must not be Reset or moved; after
// Wait() returns (or status() reads a terminal state with acquire
// semantics, which it does) the samples are safe to read from the
// submitting thread.
//
// Two completion modes:
//   * Blocking: the submitter calls Wait() (the original mode).
//   * Continuation: arm an OnComplete hook BEFORE submitting; the
//     completing thread invokes it once, immediately after the terminal
//     state is published, with the terminal samples()/status() already
//     safe to read inside the hook. See set_on_complete for the threading
//     and re-submission rules. Both modes observe the same exactly-once
//     guarantee — the hook fires from inside the one Complete call that
//     the IQS_CHECK admits.

#ifndef IQS_SERVE_TICKET_H_
#define IQS_SERVE_TICKET_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "iqs/util/check.h"

namespace iqs {
namespace serve {

// Terminal states of a submitted query; kPending is the in-flight state.
enum class ServeStatus : uint32_t {
  kPending = 0,
  kOk = 1,        // sampled; samples() holds the draws
  kEmpty = 2,     // the interval resolved to no elements — zero draws, by law
  kRejected = 3,  // admission control refused the submit (kReject policy,
                  // or the frontend was draining)
  kShed = 4,      // flushed after ServeOptions::deadline_ns in queue; the
                  // batch shed it instead of sampling
};

inline const char* ServeStatusName(ServeStatus status) {
  switch (status) {
    case ServeStatus::kPending:
      return "pending";
    case ServeStatus::kOk:
      return "ok";
    case ServeStatus::kEmpty:
      return "empty";
    case ServeStatus::kRejected:
      return "rejected";
    case ServeStatus::kShed:
      return "shed";
  }
  return "?";
}

template <typename Sample>
class ServeTicket {
 public:
  ServeTicket() = default;
  ServeTicket(const ServeTicket&) = delete;
  ServeTicket& operator=(const ServeTicket&) = delete;

  // Blocks until the query reaches a terminal status and returns it.
  ServeStatus Wait() const {
    uint32_t s = state_.load(std::memory_order_acquire);
    while (s == static_cast<uint32_t>(ServeStatus::kPending)) {
      state_.wait(s, std::memory_order_acquire);
      s = state_.load(std::memory_order_acquire);
    }
    return static_cast<ServeStatus>(s);
  }

  // Non-blocking peek; acquire, so a terminal read publishes samples().
  ServeStatus status() const {
    return static_cast<ServeStatus>(state_.load(std::memory_order_acquire));
  }

  // The query's draws; valid once the ticket is terminal with kOk (empty
  // for every other terminal state). Retains capacity across Reset, so a
  // reused ticket settles into zero steady-state allocations.
  const std::vector<Sample>& samples() const { return samples_; }

  // Completion-side timestamps (TelemetryNowNs clock): when the frontend
  // admitted the query and when it completed. Valid once terminal; the
  // difference is the query's full submit-to-complete latency, measured
  // with no consumer-side scheduling skew (the bench relies on this).
  uint64_t submit_ns() const { return submit_ns_; }
  uint64_t complete_ns() const { return complete_ns_; }
  uint64_t LatencyNs() const { return complete_ns_ - submit_ns_; }

  // Continuation mode: arms a hook the completing thread invokes exactly
  // once, after the terminal state is published (status()/samples() are
  // terminal-and-readable inside the hook). Must be armed while the
  // ticket is NOT in flight — arming races with Complete otherwise; like
  // the rest of the ticket this is a one-shot SPSC handoff, not a locked
  // object. The hook runs on WHOEVER completes the ticket: the shard
  // worker for flushed queries (keep it short — it serializes with that
  // shard's batches), the submitting thread itself for kRejected. The
  // hook survives Reset(), so a reusable continuation is armed once per
  // ticket, not once per submit; arm an empty function to disarm. A hook
  // may Reset-and-resubmit its own ticket, but submitting to the hook's
  // own shard under AdmissionPolicy::kBlock can deadlock the worker on
  // its own queue — use kReject (or another shard) for self-resubmission.
  void set_on_complete(std::function<void(const ServeTicket&)> hook) {
    on_complete_ = std::move(hook);
  }

  // Rearms a terminal ticket for another Submit (the OnComplete hook, if
  // any, stays armed). Must not be called on an in-flight ticket (the
  // frontend still holds a pointer to it).
  void Reset() {
    samples_.clear();
    state_.store(static_cast<uint32_t>(ServeStatus::kPending),
                 std::memory_order_relaxed);
  }

  // FRONTEND-INTERNAL: publishes the terminal state, then fires the
  // OnComplete hook (if armed). Exactly-once is enforced — completing a
  // non-pending ticket aborts, so the hook cannot fire twice per submit.
  void Complete(ServeStatus status, std::span<const Sample> samples,
                uint64_t complete_ns) {
    IQS_DCHECK(status != ServeStatus::kPending);
    samples_.assign(samples.begin(), samples.end());
    complete_ns_ = complete_ns;
    uint32_t expected = static_cast<uint32_t>(ServeStatus::kPending);
    IQS_CHECK(state_.compare_exchange_strong(
        expected, static_cast<uint32_t>(status), std::memory_order_release,
        std::memory_order_relaxed));
    state_.notify_all();
    if (on_complete_) on_complete_(*this);
  }

  // FRONTEND-INTERNAL: stamped on admission, before the ticket is queued.
  void set_submit_ns(uint64_t ns) { submit_ns_ = ns; }

 private:
  // Not IQS_GUARDED_BY anything: this is a one-shot SPSC handoff ordered
  // by state_ alone. The worker writes samples_/complete_ns_ and then
  // release-stores a terminal status; the submitter reads them only after
  // an acquire load of state_ observes that status (Wait/status). No
  // mutex exists to name, and none is needed.
  std::vector<Sample> samples_;
  std::function<void(const ServeTicket&)> on_complete_;  // armed while idle
  uint64_t submit_ns_ = 0;
  uint64_t complete_ns_ = 0;
  std::atomic<uint32_t> state_{static_cast<uint32_t>(ServeStatus::kPending)};
};

}  // namespace serve
}  // namespace iqs

#endif  // IQS_SERVE_TICKET_H_
