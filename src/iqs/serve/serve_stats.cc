#include "iqs/serve/serve_stats.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace iqs {
namespace serve {

void ServeShardStats::MergeFrom(const ServeShardStats& other) {
  submitted += other.submitted;
  rejected += other.rejected;
  shed += other.shed;
  completed += other.completed;
  batches_flushed += other.batches_flushed;
  queue_depth_hwm = std::max(queue_depth_hwm, other.queue_depth_hwm);
  batch_size.MergeFrom(other.batch_size);
  time_in_queue_ns.MergeFrom(other.time_in_queue_ns);
  time_in_batch_ns.MergeFrom(other.time_in_batch_ns);
}

namespace {

void AppendF(std::string* out, const char* format, ...)
    __attribute__((format(printf, 2, 3)));

void AppendF(std::string* out, const char* format, ...) {
  char buffer[1024];
  va_list args;
  va_start(args, format);
  const int written = std::vsnprintf(buffer, sizeof(buffer), format, args);
  va_end(args);
  if (written > 0) out->append(buffer, static_cast<size_t>(written));
}

void AppendHistogramJson(std::string* out, const char* name,
                         const LatencyHistogram& h) {
  AppendF(out,
          "\"%s\": {\"count\": %" PRIu64 ", \"mean\": %" PRIu64
          ", \"p50\": %" PRIu64 ", \"p99\": %" PRIu64 ", \"p999\": %" PRIu64
          ", \"max\": %" PRIu64 "}",
          name, h.count(), h.count() ? h.sum_ns() / h.count() : 0,
          h.PercentileUpperBoundNs(0.50), h.PercentileUpperBoundNs(0.99),
          h.PercentileUpperBoundNs(0.999), h.max_ns());
}

}  // namespace

std::string ServeStatsToJson(const ServeShardStats& stats) {
  std::string out;
  AppendF(&out,
          "{\"submitted\": %" PRIu64 ", \"rejected\": %" PRIu64
          ", \"shed\": %" PRIu64 ", \"completed\": %" PRIu64
          ", \"batches_flushed\": %" PRIu64 ", \"queue_depth_hwm\": %" PRIu64
          ", ",
          stats.submitted, stats.rejected, stats.shed, stats.completed,
          stats.batches_flushed, stats.queue_depth_hwm);
  AppendHistogramJson(&out, "batch_size", stats.batch_size);
  out.append(", ");
  AppendHistogramJson(&out, "time_in_queue_ns", stats.time_in_queue_ns);
  out.append(", ");
  AppendHistogramJson(&out, "time_in_batch_ns", stats.time_in_batch_ns);
  out.append("}");
  return out;
}

std::string ServeStatsToText(const ServeShardStats& stats) {
  std::string out;
  AppendF(&out,
          "submitted=%" PRIu64 " rejected=%" PRIu64 " shed=%" PRIu64
          " completed=%" PRIu64 " batches=%" PRIu64 " depth_hwm=%" PRIu64 "\n",
          stats.submitted, stats.rejected, stats.shed, stats.completed,
          stats.batches_flushed, stats.queue_depth_hwm);
  const LatencyHistogram& bs = stats.batch_size;
  AppendF(&out,
          "batch_size: mean=%" PRIu64 " p50<=%" PRIu64 " max=%" PRIu64 "\n",
          bs.count() ? bs.sum_ns() / bs.count() : 0,
          bs.PercentileUpperBoundNs(0.50), bs.max_ns());
  AppendF(&out,
          "time_in_queue_ns: p50<=%" PRIu64 " p99<=%" PRIu64 " max=%" PRIu64
          "\n",
          stats.time_in_queue_ns.PercentileUpperBoundNs(0.50),
          stats.time_in_queue_ns.PercentileUpperBoundNs(0.99),
          stats.time_in_queue_ns.max_ns());
  AppendF(&out,
          "time_in_batch_ns: p50<=%" PRIu64 " p99<=%" PRIu64 " max=%" PRIu64
          "\n",
          stats.time_in_batch_ns.PercentileUpperBoundNs(0.50),
          stats.time_in_batch_ns.PercentileUpperBoundNs(0.99),
          stats.time_in_batch_ns.max_ns());
  return out;
}

}  // namespace serve
}  // namespace iqs
