// Shard-per-core serving frontend with cross-user micro-batching
// (ROADMAP item 1; the system layer over the PR 1-6 serving substrate).
//
// Real traffic is millions of connections each submitting ONE sampling
// query — not the pre-formed QueryBatch arrays every fast path below this
// layer is built for. The frontend closes that gap: N producer threads
// call Submit(shard, query, ticket); a per-shard micro-batcher coalesces
// admitted queries into one canonical QueryBatch(queries, rng, arena,
// opts, result) call per time-or-size window (flush at max_batch queries
// or when the oldest waiter has aged max_delay_ns, whichever first), and
// completes each query's ticket from the batch result. Per-query cost
// then rides every batch-layer win at once — grouped cover draws (E19),
// SIMD kernels (E23), and one pinned epoch snapshot per flushed batch
// (E24: a versioned backend pins inside its QueryBatch, so a whole
// micro-batch observes one immutable structure version under churn).
//
// Sharding is BY STRUCTURE: shard s has its own queue, its own worker
// thread, and serves only backend shard s (shard-per-core — e.g. a
// key-space partition with one sampler per partition). The router is the
// caller's (Submit takes the shard index) because only the caller knows
// the partition function.
//
// WORKLOAD ROUTING: a frontend hosts a routing table of workload classes
// — workload id w → BatchFn — so different traffic classes against the
// same shards (e.g. point-lookup ranges vs analytic joins, or two
// structures over one partition) share the queues, workers, and admission
// machinery of one frontend. Submit(shard, workload, query, ticket)
// routes; the one-workload Submit overload and constructor keep the
// pre-routing API working verbatim (workload 0). A flush drains the shard
// queue in arrival order, then executes one backend batch per workload
// class present (ascending workload id), so classes micro-batch
// INDEPENDENTLY while sharing a window. Per-class ServeShardStats ride
// alongside the aggregate: WorkloadStats(shard, w) / MergedWorkloadStats.
// (All workloads of a ServeFrontend share the Query/Sample/Result types —
// that is what one queue entry can hold; route across type families by
// running one frontend per family, as serve_frontend_test's
// two-frontends-one-process setup does.)
//
// Admission control + backpressure: each shard queue is bounded by
// queue_capacity. A full queue either blocks the producer until the
// worker drains (kBlock — backpressure) or completes the ticket
// kRejected immediately (kReject — load shedding at the door). A
// deadline_ns budget sheds at the other end: queries that sat in the
// queue longer than the budget are completed kShed at flush time instead
// of being sampled, so an overloaded batch spends its work only on
// queries that can still meet their deadline.
//
// Determinism: the randomness of workload w's flushed batch b of shard s
// is Rng(seed).ForkStream(s).ForkStream(w).ForkStream(b_w), where b_w
// counts the flushes in which workload w was PRESENT — a pure function of
// (seed, shard, workload, that workload's batch boundaries), never of the
// clock, the producers' thread timing, or the other workloads' traffic.
// Combined with the executor's deterministic parallel mode (BatchOptions,
// PR 3), the flushed results are byte-identical across
// batch.num_threads ∈ {1, 2, ...} and across any window configs that
// produce the same batch boundaries (serve_frontend_test pins both).
//
// Drain/shutdown: Drain() stops admission (in-flight Submit calls — even
// ones blocked on backpressure — complete kRejected), flushes every
// queued query, and joins the workers; the destructor drains. Every
// admitted ticket is completed exactly once — double completion aborts
// inside ServeTicket, so "no lost or double-completed futures" holds by
// construction. Tickets may complete blocking consumers (Wait) or armed
// continuations (ServeTicket::set_on_complete) — the completion site is
// identical, so both modes inherit the exactly-once guarantee.
//
// Telemetry: per-shard ServeShardStats (queue depth high-water,
// batch-size histogram, time-in-queue vs time-in-batch histograms; see
// serve_stats.h), snapshot via ShardStats()/MergedStats(), with per
// (shard, workload) splits via WorkloadStats()/MergedWorkloadStats().
// The inner sampling pipeline's TelemetrySink can be attached through
// ServeOptions::batch.telemetry when num_shards == 1 (two shard workers
// would race on the sink's shard 0, so multi-shard frontends must leave
// it detached).

#ifndef IQS_SERVE_FRONTEND_H_
#define IQS_SERVE_FRONTEND_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "iqs/join/join_batch.h"
#include "iqs/range/logarithmic_range_sampler.h"
#include "iqs/range/range_sampler.h"
#include "iqs/serve/serve_stats.h"
#include "iqs/serve/ticket.h"
#include "iqs/util/batch_options.h"
#include "iqs/util/check.h"
#include "iqs/util/rng.h"
#include "iqs/util/scratch_arena.h"
#include "iqs/util/telemetry.h"
#include "iqs/util/thread_annotations.h"
#include "iqs/util/thread_pool.h"

namespace iqs {
namespace serve {

// What a full shard queue does to the NEXT Submit.
enum class AdmissionPolicy {
  kBlock,   // backpressure: the producer waits for queue space (or drain)
  kReject,  // shed at the door: the ticket completes kRejected immediately
};

struct ServeOptions {
  // One micro-batcher queue + one worker thread per shard; Submit's shard
  // argument must be < num_shards.
  size_t num_shards = 1;

  // The micro-batch window: a shard flushes when max_batch queries are
  // pending, or when the OLDEST pending query has waited max_delay_ns —
  // whichever comes first. max_batch bounds batch latency under load;
  // max_delay_ns bounds it when traffic is sparse.
  size_t max_batch = 256;
  uint64_t max_delay_ns = 50 * 1000;  // 50µs

  // Admission control: per-shard queue bound and the full-queue policy.
  size_t queue_capacity = 4096;
  AdmissionPolicy admission = AdmissionPolicy::kBlock;

  // Queue-time budget; 0 = never shed. A query whose time in queue
  // exceeds the budget at flush time completes kShed without sampling.
  // Also threaded into BatchOptions::deadline_ns for observability.
  uint64_t deadline_ns = 0;

  // Base seed of the frontend's batch randomness (see the determinism
  // note above). Independent of the producers' own Rngs.
  uint64_t seed = 0x1d9a3f52c8e07b64ULL;

  // Execution options for each flushed QueryBatch call. pool must be
  // null: with num_threads >= 1 each shard worker owns a private pool
  // (one pool cannot run two shards' batches concurrently). telemetry
  // may be set only when num_shards == 1 (see header comment).
  // batch.max_batch is the frontend's to set (it stamps the flush window
  // before every call) — leave it 0, or equal-or-above max_batch.
  BatchOptions batch;
};

// Aborts (IQS_CHECK) on any ServeOptions combination the frontend cannot
// serve, naming the violated constraint at the construction site instead
// of failing obscurely inside WorkerLoop:
//   * num_shards >= 1 — a frontend with no workers completes nothing;
//   * max_batch >= 1 — a zero-size flush window never flushes;
//   * max_delay_ns >= 1 — the time half of the window must be able to
//     expire (0 would spin the worker on an always-elapsed deadline);
//   * queue_capacity >= max_batch — a queue smaller than the flush window
//     could never fill a size-triggered batch, silently degrading every
//     flush to a timer flush (and capacity 0 would admit nothing);
//   * batch.pool == nullptr and batch.max_batch consistent with the
//     window (0, or >= max_batch) — the frontend overrides both per
//     flush, so a caller-set value it would contradict is a config bug.
inline void ValidateServeOptions(const ServeOptions& options) {
  IQS_CHECK(options.num_shards >= 1);
  IQS_CHECK(options.max_batch >= 1);
  IQS_CHECK(options.max_delay_ns >= 1);
  IQS_CHECK(options.queue_capacity >= options.max_batch);
  IQS_CHECK(options.batch.pool == nullptr);
  IQS_CHECK(options.batch.max_batch == 0 ||
            options.batch.max_batch >= options.max_batch);
  IQS_CHECK(options.batch.telemetry == nullptr || options.num_shards == 1);
}

// The micro-batching frontend, generic over the canonical batch family:
//   Query   one submitted request (BatchQuery, KeyBatchQuery,
//           join::JoinBatchQuery, ...)
//   Sample  element type of one query's flat sample slice (size_t,
//           double, join::JoinPair)
//   Result  the flat batch result (BatchResult, KeyBatchResult,
//           join::JoinBatchResult): needs Clear(), SamplesFor(i), and the
//           resolved[] flags.
// Each routed workload's backend callback executes one flushed
// micro-batch of that class against structure shard `shard` — almost
// always a one-line adapter onto a sampler's QueryBatch. It runs on the
// shard's worker thread; for a versioned backend the snapshot pin inside
// its QueryBatch makes the whole flush see one immutable version.
template <typename Query, typename Sample, typename Result>
class ServeFrontend {
 public:
  using BatchFn =
      std::function<void(size_t shard, std::span<const Query> queries,
                         Rng* rng, ScratchArena* arena,
                         const BatchOptions& opts, Result* result)>;

  // Routing-table constructor: workload id w (< workloads.size()) is
  // served by workloads[w]. Every entry must be callable.
  ServeFrontend(const ServeOptions& options, std::vector<BatchFn> workloads)
      : opts_(options), batch_fns_(std::move(workloads)) {
    ValidateServeOptions(opts_);
    IQS_CHECK(!batch_fns_.empty());
    for (const BatchFn& fn : batch_fns_) {
      // iqs-lint: allow(check-in-loop) -- construction-time validation
      IQS_CHECK(fn != nullptr);
    }
    shards_.reserve(opts_.num_shards);
    for (size_t s = 0; s < opts_.num_shards; ++s) {
      shards_.push_back(std::make_unique<ShardState>(batch_fns_.size()));
    }
    workers_.reserve(opts_.num_shards);
    for (size_t s = 0; s < opts_.num_shards; ++s) {
      workers_.emplace_back([this, s] { WorkerLoop(s); });
    }
  }

  // Single-workload convenience (the pre-routing API): everything is
  // workload 0.
  ServeFrontend(const ServeOptions& options, BatchFn batch_fn)
      : ServeFrontend(options, ToTable(std::move(batch_fn))) {}

  ~ServeFrontend() { Drain(); }

  ServeFrontend(const ServeFrontend&) = delete;
  ServeFrontend& operator=(const ServeFrontend&) = delete;

  // Submits one query of `workload` to structure shard `shard`. `ticket`
  // must be pending (fresh or Reset) and outlive its completion. Returns
  // true iff the query was admitted; on false the ticket has been
  // completed kRejected. Any number of producer threads may submit
  // concurrently, to any mix of workloads.
  bool Submit(size_t shard, size_t workload, const Query& query,
              ServeTicket<Sample>* ticket) {
    IQS_DCHECK(shard < shards_.size());
    IQS_DCHECK(workload < batch_fns_.size());
    IQS_DCHECK(ticket->status() == ServeStatus::kPending);
    ShardState& st = *shards_[shard];
    const uint64_t now = TelemetryNowNs();
    ticket->set_submit_ns(now);
    st.mu.Lock();
    if (opts_.admission == AdmissionPolicy::kBlock) {
      while (!(st.stop || st.queue.size() < opts_.queue_capacity)) {
        st.space.Wait(&st.mu);
      }
    }
    if (st.stop || st.queue.size() >= opts_.queue_capacity) {
      st.stats.rejected += 1;
      st.wstats[workload].rejected += 1;
      st.mu.Unlock();
      ticket->Complete(ServeStatus::kRejected, {}, TelemetryNowNs());
      return false;
    }
    st.queue.push_back(
        PendingQuery{query, ticket, now, static_cast<uint32_t>(workload)});
    const size_t depth = st.queue.size();
    st.stats.submitted += 1;
    if (depth > st.stats.queue_depth_hwm) st.stats.queue_depth_hwm = depth;
    ServeShardStats& ws = st.wstats[workload];
    ws.submitted += 1;
    const size_t wdepth = ++st.wpending[workload];
    if (wdepth > ws.queue_depth_hwm) ws.queue_depth_hwm = wdepth;
    st.mu.Unlock();
    // The worker needs waking on the empty->nonempty edge (it waits for
    // work) and at the size trigger (it waits out the delay window);
    // between the two it will flush on its own timer.
    if (depth == 1 || depth >= opts_.max_batch) st.nonempty.NotifyOne();
    return true;
  }

  // Single-workload convenience: Submit to workload 0.
  bool Submit(size_t shard, const Query& query, ServeTicket<Sample>* ticket) {
    return Submit(shard, 0, query, ticket);
  }

  // Stops admission, flushes every queued query, joins the workers.
  // Idempotent; called by the destructor. After Drain, Submit completes
  // every ticket kRejected.
  void Drain() {
    MutexLock drain_lock(&drain_mu_);
    for (std::unique_ptr<ShardState>& st : shards_) {
      {
        MutexLock lock(&st->mu);
        st->stop = true;
      }
      st->nonempty.NotifyAll();
      st->space.NotifyAll();
    }
    for (std::thread& worker : workers_) {
      if (worker.joinable()) worker.join();
    }
  }

  size_t num_shards() const { return shards_.size(); }
  size_t num_workloads() const { return batch_fns_.size(); }
  const ServeOptions& options() const { return opts_; }

  // Live queue depth of one shard (racy by nature — a gauge, not a fact).
  size_t QueueDepth(size_t shard) const {
    ShardState& st = *shards_[shard];
    MutexLock lock(&st.mu);
    return st.queue.size();
  }

  // Snapshots of the serving stats (serve_stats.h). Safe to call while
  // traffic is in flight — each copy is taken under the shard's mutex.
  // ShardStats/MergedStats aggregate over workloads; the per-class splits
  // cover the same counters per (shard, workload), except that
  // batches_flushed counts that class's executed backend batches and
  // queue_depth_hwm is the class's own pending high-water.
  ServeShardStats ShardStats(size_t shard) const {
    ShardState& st = *shards_[shard];
    MutexLock lock(&st.mu);
    return st.stats;
  }
  ServeShardStats MergedStats() const {
    ServeShardStats merged;
    for (size_t s = 0; s < shards_.size(); ++s) {
      const ServeShardStats shard_stats = ShardStats(s);
      merged.MergeFrom(shard_stats);
    }
    return merged;
  }
  ServeShardStats WorkloadStats(size_t shard, size_t workload) const {
    IQS_CHECK(workload < batch_fns_.size());
    ShardState& st = *shards_[shard];
    MutexLock lock(&st.mu);
    return st.wstats[workload];
  }
  ServeShardStats MergedWorkloadStats(size_t workload) const {
    ServeShardStats merged;
    for (size_t s = 0; s < shards_.size(); ++s) {
      const ServeShardStats shard_stats = WorkloadStats(s, workload);
      merged.MergeFrom(shard_stats);
    }
    return merged;
  }

 private:
  struct PendingQuery {
    Query query;
    ServeTicket<Sample>* ticket;
    uint64_t submit_ns;
    uint32_t workload;
  };

  static std::vector<BatchFn> ToTable(BatchFn batch_fn) {
    std::vector<BatchFn> table;
    table.push_back(std::move(batch_fn));
    return table;
  }

  // One shard's queue + worker rendezvous. Aligned so two shards' queue
  // traffic never false-shares (each ShardState is its own heap object
  // anyway; the alignment hardens the layout).
  struct alignas(64) ShardState {
    explicit ShardState(size_t num_workloads)
        : wstats(num_workloads), wpending(num_workloads, 0) {}

    Mutex mu;
    CondVar nonempty;  // worker waits for work / triggers
    CondVar space;     // kBlock producers wait for room
    std::deque<PendingQuery> queue IQS_GUARDED_BY(mu);
    bool stop IQS_GUARDED_BY(mu) = false;
    // Worker + producers both record; snapshots copy under mu. stats is
    // the all-workloads aggregate, wstats[w] the per-class split,
    // wpending[w] the class's live queue count (for its depth hwm).
    ServeShardStats stats IQS_GUARDED_BY(mu);
    std::vector<ServeShardStats> wstats IQS_GUARDED_BY(mu);
    std::vector<size_t> wpending IQS_GUARDED_BY(mu);
  };

  // Per-workload outcome of one flush, accumulated outside the shard
  // mutex and folded into the stats under it.
  struct GroupOutcome {
    size_t taken = 0;  // queries of this class in the flush
    size_t shed = 0;
    size_t completed = 0;
    uint64_t batch_ns = 0;
    bool executed = false;  // a backend batch ran for this class
  };

  void WorkerLoop(size_t shard_index) {
    ShardState& st = *shards_[shard_index];
    const size_t num_workloads = batch_fns_.size();
    // Pure function of (seed, shard): workload w's batch b below serves
    // under shard_base.ForkStream(w).ForkStream(b), so results depend
    // only on that workload's batch boundaries — not on producer timing,
    // worker scheduling, or the other workloads' traffic.
    const Rng shard_base = Rng(opts_.seed).ForkStream(shard_index);
    std::vector<uint64_t> flush_seq(num_workloads, 0);

    BatchOptions inner = opts_.batch;
    inner.max_batch = opts_.max_batch;
    inner.deadline_ns = opts_.deadline_ns;
    std::unique_ptr<ThreadPool> pool;
    if (!inner.sequential()) {
      pool = std::make_unique<ThreadPool>(inner.num_threads);
      inner.pool = pool.get();
    }

    std::vector<PendingQuery> flush;
    std::vector<Query> queries;
    std::vector<size_t> live;  // index into `flush` of each non-shed query
    std::vector<GroupOutcome> outcomes(num_workloads);
    Result result;
    ScratchArena arena;
    flush.reserve(opts_.max_batch);
    queries.reserve(opts_.max_batch);
    live.reserve(opts_.max_batch);

    st.mu.Lock();
    for (;;) {
      while (!(st.stop || !st.queue.empty())) st.nonempty.Wait(&st.mu);
      if (st.queue.empty()) break;  // stop && drained
      // The coalescing window: sleep until the size trigger, the oldest
      // waiter's delay expiring, or drain. Only this worker pops, so the
      // queue cannot shrink (and the oldest entry cannot change) while it
      // waits here.
      while (st.queue.size() < opts_.max_batch && !st.stop) {
        const uint64_t flush_at =
            st.queue.front().submit_ns + opts_.max_delay_ns;
        const uint64_t now = TelemetryNowNs();
        if (now >= flush_at) break;
        st.nonempty.WaitForNs(&st.mu, flush_at - now);
      }
      const size_t take = std::min(st.queue.size(), opts_.max_batch);
      flush.clear();
      for (size_t i = 0; i < take; ++i) {
        flush.push_back(st.queue.front());
        st.queue.pop_front();
        st.wpending[flush.back().workload] -= 1;
      }
      st.mu.Unlock();
      if (opts_.admission == AdmissionPolicy::kBlock) st.space.NotifyAll();

      const uint64_t flush_start = TelemetryNowNs();
      // One backend batch per workload class present, ascending id;
      // within a class, queries keep their arrival order.
      for (size_t w = 0; w < num_workloads; ++w) {
        GroupOutcome& outcome = outcomes[w];
        outcome = GroupOutcome{};
        queries.clear();
        live.clear();
        for (size_t i = 0; i < flush.size(); ++i) {
          if (flush[i].workload != w) continue;
          outcome.taken += 1;
          if (opts_.deadline_ns != 0 &&
              flush_start - flush[i].submit_ns > opts_.deadline_ns) {
            flush[i].ticket->Complete(ServeStatus::kShed, {}, flush_start);
            outcome.shed += 1;
            continue;
          }
          queries.push_back(flush[i].query);
          live.push_back(i);
        }
        if (outcome.taken == 0) continue;  // class absent: its stream
                                           // index does not tick
        if (!queries.empty()) {
          Rng rng = shard_base.ForkStream(w).ForkStream(flush_seq[w]);
          result.Clear();
          arena.Reset();
          const uint64_t group_start = TelemetryNowNs();
          batch_fns_[w](shard_index, std::span<const Query>(queries), &rng,
                        &arena, inner, &result);
          const uint64_t done = TelemetryNowNs();
          outcome.batch_ns = done - group_start;
          outcome.executed = true;
          outcome.completed = live.size();
          for (size_t i = 0; i < live.size(); ++i) {
            flush[live[i]].ticket->Complete(result.resolved[i] != 0
                                                ? ServeStatus::kOk
                                                : ServeStatus::kEmpty,
                                            result.SamplesFor(i), done);
          }
        }
        // The class's flush index ticks whether or not anything survived
        // shedding, so its batch randomness stays a function of its flush
        // BOUNDARIES alone (an all-shed group consumes a stream id, not
        // zero of them).
        ++flush_seq[w];
      }

      st.mu.Lock();
      st.stats.batch_size.Record(take);
      for (const PendingQuery& pending : flush) {
        st.stats.time_in_queue_ns.Record(flush_start - pending.submit_ns);
        st.wstats[pending.workload].time_in_queue_ns.Record(
            flush_start - pending.submit_ns);
      }
      for (size_t w = 0; w < num_workloads; ++w) {
        const GroupOutcome& outcome = outcomes[w];
        if (outcome.taken == 0) continue;
        ServeShardStats& ws = st.wstats[w];
        ws.shed += outcome.shed;
        ws.completed += outcome.completed;
        ws.batch_size.Record(outcome.taken);
        st.stats.shed += outcome.shed;
        st.stats.completed += outcome.completed;
        if (outcome.executed) {
          ws.batches_flushed += 1;
          ws.time_in_batch_ns.Record(outcome.batch_ns);
          st.stats.batches_flushed += 1;
          st.stats.time_in_batch_ns.Record(outcome.batch_ns);
        }
      }
    }
    st.mu.Unlock();
  }

  const ServeOptions opts_;
  const std::vector<BatchFn> batch_fns_;  // the routing table
  std::vector<std::unique_ptr<ShardState>> shards_;
  std::vector<std::thread> workers_;
  Mutex drain_mu_;  // serializes Drain vs ~ServeFrontend
};

// The instantiations the library's samplers serve today: position results
// over RangeSampler::QueryBatch, key results over
// LogarithmicRangeSampler::QueryBatch (the versioned, churn-safe path),
// and join-pair results over JoinSampler::SampleJoinBatch.
using RangeServeFrontend = ServeFrontend<BatchQuery, size_t, BatchResult>;
using KeyServeFrontend =
    ServeFrontend<KeyBatchQuery, double, KeyBatchResult>;
using JoinServeFrontend =
    ServeFrontend<join::JoinBatchQuery, join::JoinPair, join::JoinBatchResult>;

}  // namespace serve
}  // namespace iqs

#endif  // IQS_SERVE_FRONTEND_H_
