// Per-shard serving-frontend statistics (serve/frontend.h).
//
// Unlike the sampling pipeline's TelemetrySink — which must be free when
// detached because it guards per-SAMPLE hot loops — these counters are
// always on: every recording site runs once per submit or once per
// flushed batch, against work that is micro- to milliseconds of sampling,
// so there is nothing to save by gating them. Each shard worker owns its
// shard's stats under the shard mutex (the same mutex that orders the
// queue), and snapshots are taken by copying under that mutex, so there
// are no atomics and no torn reads. The guarding is enforced at the
// owning site: ServeFrontend::ShardState declares its stats field
// IQS_GUARDED_BY(mu), so a clang -Wthread-safety build rejects any
// access outside that shard's mutex. The struct itself carries no
// annotations — it is plain data, guarded wherever it is embedded.
//
// The three histograms reuse LatencyHistogram's log₂ bucketing:
//   batch_size          Record(k) per flushed micro-batch of k queries —
//                       the coalescing histogram (buckets are counts, not
//                       ns); mean = sum/count.
//   time_in_queue_ns    submit → flush-start, one sample per flushed
//                       query (including shed ones — their queue time is
//                       exactly why they were shed).
//   time_in_batch_ns    flush-start → batch completion, one sample per
//                       executed batch. Queue time vs batch time is the
//                       window-tuning signal: a healthy window keeps
//                       p50(time_in_queue) in the same decade as
//                       time_in_batch.

#ifndef IQS_SERVE_SERVE_STATS_H_
#define IQS_SERVE_SERVE_STATS_H_

#include <cstdint>
#include <string>

#include "iqs/util/telemetry.h"

namespace iqs {
namespace serve {

struct ServeShardStats {
  uint64_t submitted = 0;        // admitted into the queue
  uint64_t rejected = 0;         // refused (kReject policy or draining)
  uint64_t shed = 0;             // flushed past deadline_ns, not sampled
  uint64_t completed = 0;        // terminal kOk or kEmpty
  uint64_t batches_flushed = 0;  // micro-batches handed to the backend
  uint64_t queue_depth_hwm = 0;  // high-water queue depth (max-merged)

  LatencyHistogram batch_size;        // per flushed batch: query count
  LatencyHistogram time_in_queue_ns;  // per flushed query
  LatencyHistogram time_in_batch_ns;  // per executed batch

  void MergeFrom(const ServeShardStats& other);
  bool operator==(const ServeShardStats&) const = default;
};

// One JSON object / text block per snapshot; schema documented in README
// "Serving frontend". Percentiles are bucket upper bounds, as in the
// MetricsRegistry exporters.
std::string ServeStatsToJson(const ServeShardStats& stats);
std::string ServeStatsToText(const ServeShardStats& stats);

}  // namespace serve
}  // namespace iqs

#endif  // IQS_SERVE_SERVE_STATS_H_
