// Static 2-d kd-tree with cover finding (paper Section 5, first example).
//
// Built by recursive median partitioning, so the points below each node
// occupy a contiguous run of the internal point array — exactly the
// representation the CoverageEngine needs. For an axis-aligned rectangle
// q, CoverQuery returns a cover (disjoint ranges whose union is S_q) of
// size O(sqrt n + |boundary leaves|): standard kd-tree analysis.
//
// The tree itself answers reporting queries; KdTreeSampler (kd_sampler.h)
// plugs it into the Theorem-5 engine to obtain an IQS structure of O(n)
// space and O(sqrt n + s) query time.

#ifndef IQS_MULTIDIM_KD_TREE_H_
#define IQS_MULTIDIM_KD_TREE_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "iqs/cover/coverage_engine.h"
#include "iqs/multidim/point.h"
#include "iqs/util/check.h"

namespace iqs::multidim {

class KdTree {
 public:
  // Copies and reorders the points. `weights` (parallel to `points`) are
  // carried through the reordering; pass {} for unit weights. O(n log n).
  KdTree(std::span<const Point2> points, std::span<const double> weights);

  size_t n() const { return points_.size(); }
  const Point2& PointAt(size_t position) const { return points_[position]; }
  double WeightAt(size_t position) const { return weights_[position]; }
  const std::vector<double>& position_weights() const { return weights_; }

  // Appends the exact cover of rectangle q: disjoint position ranges whose
  // union is exactly S ∩ q. Internal nodes fully inside q become whole-
  // range pieces; boundary leaves are emitted individually when their
  // point qualifies.
  void CoverQuery(const Rect& q, std::vector<CoverRange>* cover) const;

  // Reporting query (for oracles/tests): appends qualifying positions.
  void Report(const Rect& q, std::vector<size_t>* out) const;

  // Appends a cover for the disk query dist(center, .) <= radius:
  //   * nodes whose bounding box lies inside the disk -> exact pieces;
  //   * boundary leaves -> checked individually.
  // The same exact-cover guarantee as CoverQuery.
  void CoverDisk(const Point2& center, double radius,
                 std::vector<CoverRange>* cover) const;

  // Appends an APPROXIMATE cover for the disk query (Theorem 6 input):
  // maximal nodes whose box intersects the disk and whose box diagonal is
  // at most `slack` * radius. Pieces may contain non-qualifying points;
  // callers must rejection-filter. Cheaper to find than the exact cover
  // because the walk stops well above the leaves.
  void ApproxCoverDisk(const Point2& center, double radius, double slack,
                       std::vector<CoverRange>* cover) const;

  // Generic region interface (any region expressible through these three
  // predicates — halfplanes, polygons, annuli, ...): appends the exact
  // cover of { p in S : contains_point(p) }.
  //   * contains_box(b): the region fully contains rectangle b;
  //   * intersects_box(b): the region and b overlap (may over-approximate
  //     — a conservative "true" only costs extra walk, never correctness);
  //   * contains_point(p): the actual predicate.
  void CoverRegion(const std::function<bool(const Rect&)>& contains_box,
                   const std::function<bool(const Rect&)>& intersects_box,
                   const std::function<bool(const Point2&)>& contains_point,
                   std::vector<CoverRange>* cover) const;

  size_t MemoryBytes() const {
    return points_.capacity() * sizeof(Point2) +
           weights_.capacity() * sizeof(double) +
           nodes_.capacity() * sizeof(Node);
  }

 private:
  struct Node {
    Rect box;
    double weight = 0.0;
    uint32_t lo = 0;
    uint32_t hi = 0;            // inclusive position range
    uint32_t left = kNull;      // kNull for leaves
    uint32_t right = kNull;
  };
  static constexpr uint32_t kNull = ~uint32_t{0};

  uint32_t Build(size_t lo, size_t hi, int depth);

  std::vector<Point2> points_;
  std::vector<double> weights_;
  std::vector<Node> nodes_;
};

}  // namespace iqs::multidim

#endif  // IQS_MULTIDIM_KD_TREE_H_
