// Batch request/result types for the multidim samplers' QueryBatch entry
// points — the Section-5 analogue of RangeSampler::QueryBatch. Every
// multidim structure reduces a geometric query to cover groups
// (CoverPlan) and serves the whole batch through the shared CoverExecutor
// pipeline; these are just the flat input/output shapes.
//
// Samplers that return positions/ids (KdTreeNdSampler, RangeTreeNdSampler)
// reuse BatchResult from range_sampler.h; the 2-d samplers return points.

#ifndef IQS_MULTIDIM_MULTIDIM_BATCH_H_
#define IQS_MULTIDIM_MULTIDIM_BATCH_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "iqs/cover/coverage_engine.h"
#include "iqs/multidim/point.h"
#include "iqs/util/batch_options.h"
#include "iqs/util/check.h"
#include "iqs/util/rng.h"
#include "iqs/util/scratch_arena.h"
#include "iqs/util/telemetry.h"

namespace iqs::multidim {

// One rectangle query of a serving batch: draw `s` independent weighted
// samples from S ∩ rect.
struct RectBatchQuery {
  Rect rect;
  size_t s = 0;
};

// Flat result of a 2-d QueryBatch call. Points for query i occupy
// points[offsets[i] .. offsets[i+1]); a query whose region holds no point
// has resolved[i] == 0 and an empty slice. Reusing one result across
// calls amortizes its buffers away.
struct PointBatchResult {
  std::vector<Point2> points;
  std::vector<size_t> offsets;    // size num_queries() + 1
  std::vector<uint8_t> resolved;  // 1 iff the region was nonempty

  size_t num_queries() const { return resolved.size(); }

  std::span<const Point2> SamplesFor(size_t i) const {
    IQS_DCHECK(i + 1 < offsets.size());
    return std::span<const Point2>(points).subspan(
        offsets[i], offsets[i + 1] - offsets[i]);
  }

  void Clear() {
    points.clear();
    offsets.clear();
    resolved.clear();
  }
};

namespace internal {

// Shared rect-batch pipeline for engine-backed 2-d samplers (kd-tree,
// quadtree): enumerate each query's cover into one CoverPlan, serve every
// draw of the batch through CoverageEngine::SampleBatch (one CoverExecutor
// run), then map positions back to points. `Tree` needs CoverQuery() and
// PointAt(). Canonical argument order (queries, rng, arena, opts, result);
// one batch latency sample is recorded when opts.telemetry is set.
template <typename Tree>
void ServeRectBatch(const Tree& tree, const CoverageEngine& engine,
                    std::span<const RectBatchQuery> queries, Rng* rng,
                    ScratchArena* arena, const BatchOptions& opts,
                    PointBatchResult* result) {
  const uint64_t start_ns = opts.telemetry != nullptr ? TelemetryNowNs() : 0;
  result->Clear();
  arena->Reset();
  thread_local CoverPlan plan;
  thread_local std::vector<CoverRange> cover;
  thread_local std::vector<size_t> positions;
  plan.Clear();
  const size_t q = queries.size();
  result->resolved.resize(q);
  result->offsets.resize(q + 1);
  size_t total_samples = 0;
  for (size_t i = 0; i < q; ++i) {
    result->offsets[i] = total_samples;
    cover.clear();
    tree.CoverQuery(queries[i].rect, &cover);
    const bool ok = !cover.empty();
    result->resolved[i] = ok ? 1 : 0;
    plan.BeginQuery(queries[i].s);
    if (!ok || queries[i].s == 0) continue;
    for (const CoverRange& range : cover) plan.AddGroup(range);
    total_samples += queries[i].s;
  }
  result->offsets[q] = total_samples;

  positions.clear();
  positions.reserve(total_samples);
  engine.SampleBatch(plan, rng, arena, opts, &positions);
  IQS_CHECK(positions.size() == total_samples);
  result->points.reserve(total_samples);
  for (size_t p : positions) result->points.push_back(tree.PointAt(p));
  if (opts.telemetry != nullptr) {
    opts.telemetry->shard(0)->latency.Record(TelemetryNowNs() - start_ns);
  }
}

}  // namespace internal

}  // namespace iqs::multidim

#endif  // IQS_MULTIDIM_MULTIDIM_BATCH_H_
