#include "iqs/multidim/kd_tree.h"

#include <algorithm>
#include <limits>

namespace iqs::multidim {

KdTree::KdTree(std::span<const Point2> points, std::span<const double> weights)
    : points_(points.begin(), points.end()) {
  IQS_CHECK(!points_.empty());
  if (weights.empty()) {
    weights_.assign(points_.size(), 1.0);
  } else {
    IQS_CHECK(weights.size() == points.size());
    weights_.assign(weights.begin(), weights.end());
    // iqs-lint: allow(check-in-loop) -- cold build-path input validation
    for (double w : weights_) IQS_CHECK(w > 0.0);
  }
  nodes_.reserve(2 * points_.size());
  const uint32_t root = Build(0, points_.size() - 1, 0);
  IQS_CHECK(root == 0);
}

uint32_t KdTree::Build(size_t lo, size_t hi, int depth) {
  const uint32_t id = static_cast<uint32_t>(nodes_.size());
  nodes_.emplace_back();
  // Bounding box and weight of the run.
  Rect box{std::numeric_limits<double>::infinity(),
           -std::numeric_limits<double>::infinity(),
           std::numeric_limits<double>::infinity(),
           -std::numeric_limits<double>::infinity()};
  double weight = 0.0;
  for (size_t i = lo; i <= hi; ++i) {
    box.x_lo = std::min(box.x_lo, points_[i].x);
    box.x_hi = std::max(box.x_hi, points_[i].x);
    box.y_lo = std::min(box.y_lo, points_[i].y);
    box.y_hi = std::max(box.y_hi, points_[i].y);
    weight += weights_[i];
  }
  nodes_[id].box = box;
  nodes_[id].weight = weight;
  nodes_[id].lo = static_cast<uint32_t>(lo);
  nodes_[id].hi = static_cast<uint32_t>(hi);
  if (lo == hi) return id;

  // Median split on the alternating axis, reordering points and weights in
  // lockstep via an index permutation of the run.
  const size_t mid = lo + (hi - lo) / 2;
  std::vector<uint32_t> order(hi - lo + 1);
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<uint32_t>(lo + i);
  }
  const bool split_x = (depth % 2) == 0;
  std::nth_element(order.begin(), order.begin() + (mid - lo), order.end(),
                   [&](uint32_t a, uint32_t b) {
                     return split_x ? points_[a].x < points_[b].x
                                    : points_[a].y < points_[b].y;
                   });
  // Apply the permutation to the run.
  std::vector<Point2> tmp_points(order.size());
  std::vector<double> tmp_weights(order.size());
  for (size_t i = 0; i < order.size(); ++i) {
    tmp_points[i] = points_[order[i]];
    tmp_weights[i] = weights_[order[i]];
  }
  std::copy(tmp_points.begin(), tmp_points.end(), points_.begin() + lo);
  std::copy(tmp_weights.begin(), tmp_weights.end(), weights_.begin() + lo);

  const uint32_t left = Build(lo, mid, depth + 1);
  const uint32_t right = Build(mid + 1, hi, depth + 1);
  nodes_[id].left = left;
  nodes_[id].right = right;
  return id;
}

void KdTree::CoverQuery(const Rect& q, std::vector<CoverRange>* cover) const {
  std::vector<uint32_t> stack = {0};
  while (!stack.empty()) {
    const uint32_t id = stack.back();
    stack.pop_back();
    const Node& node = nodes_[id];
    if (!q.Intersects(node.box)) continue;
    if (q.ContainsRect(node.box)) {
      cover->push_back({node.lo, node.hi, node.weight});
      continue;
    }
    if (node.left == kNull) {  // boundary leaf
      if (q.Contains(points_[node.lo])) {
        cover->push_back({node.lo, node.hi, weights_[node.lo]});
      }
      continue;
    }
    stack.push_back(node.left);
    stack.push_back(node.right);
  }
}

void KdTree::Report(const Rect& q, std::vector<size_t>* out) const {
  std::vector<CoverRange> cover;
  CoverQuery(q, &cover);
  for (const CoverRange& range : cover) {
    for (size_t p = range.lo; p <= range.hi; ++p) out->push_back(p);
  }
}

void KdTree::CoverDisk(const Point2& center, double radius,
                       std::vector<CoverRange>* cover) const {
  const double r2 = radius * radius;
  std::vector<uint32_t> stack = {0};
  while (!stack.empty()) {
    const uint32_t id = stack.back();
    stack.pop_back();
    const Node& node = nodes_[id];
    if (node.box.MinSquaredDistance(center) > r2) continue;
    if (node.box.MaxSquaredDistance(center) <= r2) {
      cover->push_back({node.lo, node.hi, node.weight});
      continue;
    }
    if (node.left == kNull) {
      if (SquaredDistance(points_[node.lo], center) <= r2) {
        cover->push_back({node.lo, node.hi, weights_[node.lo]});
      }
      continue;
    }
    stack.push_back(node.left);
    stack.push_back(node.right);
  }
}

void KdTree::CoverRegion(
    const std::function<bool(const Rect&)>& contains_box,
    const std::function<bool(const Rect&)>& intersects_box,
    const std::function<bool(const Point2&)>& contains_point,
    std::vector<CoverRange>* cover) const {
  std::vector<uint32_t> stack = {0};
  while (!stack.empty()) {
    const uint32_t id = stack.back();
    stack.pop_back();
    const Node& node = nodes_[id];
    if (!intersects_box(node.box)) continue;
    if (contains_box(node.box)) {
      cover->push_back({node.lo, node.hi, node.weight});
      continue;
    }
    if (node.left == kNull) {
      if (contains_point(points_[node.lo])) {
        cover->push_back({node.lo, node.hi, weights_[node.lo]});
      }
      continue;
    }
    stack.push_back(node.left);
    stack.push_back(node.right);
  }
}

void KdTree::ApproxCoverDisk(const Point2& center, double radius,
                             double slack,
                             std::vector<CoverRange>* cover) const {
  IQS_CHECK(slack > 0.0);
  const double r2 = radius * radius;
  const double max_diag2 = slack * slack * r2;
  std::vector<uint32_t> stack = {0};
  while (!stack.empty()) {
    const uint32_t id = stack.back();
    stack.pop_back();
    const Node& node = nodes_[id];
    if (node.box.MinSquaredDistance(center) > r2) continue;
    const double dx = node.box.x_hi - node.box.x_lo;
    const double dy = node.box.y_hi - node.box.y_lo;
    const bool small_enough = dx * dx + dy * dy <= max_diag2;
    if (node.box.MaxSquaredDistance(center) <= r2 || small_enough ||
        node.left == kNull) {
      cover->push_back({node.lo, node.hi, node.weight});
      continue;
    }
    stack.push_back(node.left);
    stack.push_back(node.right);
  }
}

}  // namespace iqs::multidim
