#include "iqs/multidim/range_tree.h"

#include <algorithm>
#include <numeric>

#include "iqs/cover/cover_executor.h"
#include "iqs/sampling/multinomial.h"
#include "iqs/util/check.h"
#include "iqs/util/telemetry.h"

namespace iqs::multidim {

RangeTree2DSampler::RangeTree2DSampler(std::span<const Point2> points,
                                       std::span<const double> weights,
                                       size_t leaf_size)
    : leaf_size_(std::max<size_t>(leaf_size, 1)) {
  IQS_CHECK(!points.empty());
  const size_t n = points.size();
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return points[a].x < points[b].x ||
           (points[a].x == points[b].x && points[a].y < points[b].y);
  });
  points_by_x_.resize(n);
  weights_by_x_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    points_by_x_[i] = points[order[i]];
    weights_by_x_[i] = weights.empty() ? 1.0 : weights[order[i]];
    // iqs-lint: allow(check-in-loop) -- cold build-path input validation
    IQS_CHECK(weights_by_x_[i] > 0.0);
  }
  nodes_.reserve(4 * (n / leaf_size_ + 2));
  const uint32_t root = Build(0, n - 1);
  IQS_CHECK(root == 0);
  // With fractional cascading only the root's y VALUES are searched; the
  // other nodes navigate by bridges, so their value arrays can be freed.
  for (size_t id = 1; id < nodes_.size(); ++id) {
    nodes_[id].y_sorted_ys.clear();
    nodes_[id].y_sorted_ys.shrink_to_fit();
  }
}

uint32_t RangeTree2DSampler::Build(size_t lo, size_t hi) {
  const uint32_t id = static_cast<uint32_t>(nodes_.size());
  nodes_.emplace_back();
  // NOTE: nodes_ may reallocate during child builds; never hold a Node&
  // across a recursive call.
  nodes_[id].x_lo = static_cast<uint32_t>(lo);
  nodes_[id].x_hi = static_cast<uint32_t>(hi);

  if (hi - lo + 1 > leaf_size_) {
    const size_t mid = lo + (hi - lo) / 2;
    const uint32_t left = Build(lo, mid);
    const uint32_t right = Build(mid + 1, hi);
    nodes_[id].left = left;
    nodes_[id].right = right;
  }

  Node& node = nodes_[id];
  // Secondary structure: ids below this node sorted by y. Internal nodes
  // merge their children's y-orders (mergesort style, O(n log n) total).
  if (node.left == kNull) {
    node.ids_by_y.resize(hi - lo + 1);
    std::iota(node.ids_by_y.begin(), node.ids_by_y.end(),
              static_cast<uint32_t>(lo));
    std::sort(node.ids_by_y.begin(), node.ids_by_y.end(),
              [&](uint32_t a, uint32_t b) {
                return points_by_x_[a].y < points_by_x_[b].y;
              });
  } else {
    // Manual merge so the fractional-cascading bridge can be recorded:
    // bridge_left[i] = left-child entries among the first i merged ones.
    const auto& left_ids = nodes_[node.left].ids_by_y;
    const auto& right_ids = nodes_[node.right].ids_by_y;
    node.ids_by_y.reserve(left_ids.size() + right_ids.size());
    node.bridge_left.reserve(left_ids.size() + right_ids.size() + 1);
    node.bridge_left.push_back(0);
    size_t li = 0;
    size_t ri = 0;
    while (li < left_ids.size() || ri < right_ids.size()) {
      const bool take_left =
          ri == right_ids.size() ||
          (li < left_ids.size() &&
           points_by_x_[left_ids[li]].y <= points_by_x_[right_ids[ri]].y);
      node.ids_by_y.push_back(take_left ? left_ids[li++] : right_ids[ri++]);
      node.bridge_left.push_back(static_cast<uint32_t>(li));
    }
  }

  const size_t m = node.ids_by_y.size();
  node.y_sorted_ys.resize(m);
  node.weight_prefix.assign(m + 1, 0.0);
  std::vector<double> y_weights(m);
  for (size_t i = 0; i < m; ++i) {
    node.y_sorted_ys[i] = points_by_x_[node.ids_by_y[i]].y;
    y_weights[i] = weights_by_x_[node.ids_by_y[i]];
    node.weight_prefix[i + 1] = node.weight_prefix[i] + y_weights[i];
  }
  std::vector<double> position_keys(m);
  std::iota(position_keys.begin(), position_keys.end(), 0.0);
  node.sampler =
      std::make_unique<ChunkedRangeSampler>(position_keys, y_weights);
  return id;
}

void RangeTree2DSampler::CollectPieces(const Rect& q, size_t a, size_t b,
                                       std::vector<Piece>* pieces) const {
  // ONE binary search at the root, then O(1) bridge arithmetic per node
  // (fractional cascading, paper footnote 5). [ya, yb) is half-open in
  // the current node's merged y-order.
  const Node& root_node = nodes_[0];
  const auto first = std::lower_bound(root_node.y_sorted_ys.begin(),
                                      root_node.y_sorted_ys.end(), q.y_lo);
  const auto last =
      std::upper_bound(first, root_node.y_sorted_ys.end(), q.y_hi);
  if (first == last) return;

  struct Frame {
    uint32_t id;
    uint32_t ya;
    uint32_t yb;  // half-open
  };
  std::vector<Frame> stack = {
      {0, static_cast<uint32_t>(first - root_node.y_sorted_ys.begin()),
       static_cast<uint32_t>(last - root_node.y_sorted_ys.begin())}};
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    if (frame.ya >= frame.yb) continue;
    const Node& node = nodes_[frame.id];
    if (node.x_lo > b || node.x_hi < a) continue;
    if (a <= node.x_lo && node.x_hi <= b) {
      pieces->push_back({frame.id, frame.ya, frame.yb - 1,
                         node.weight_prefix[frame.yb] -
                             node.weight_prefix[frame.ya]});
      continue;
    }
    if (node.left == kNull) {
      // Boundary leaf: the y-index range already restricts y; emit the
      // points whose x-position also qualifies as singleton pieces.
      for (uint32_t y_pos = frame.ya; y_pos < frame.yb; ++y_pos) {
        const uint32_t pid = node.ids_by_y[y_pos];
        if (pid < a || pid > b) continue;
        pieces->push_back({frame.id, y_pos, y_pos, weights_by_x_[pid]});
      }
      continue;
    }
    // Bridge the y-range into both children.
    const uint32_t left_ya = node.bridge_left[frame.ya];
    const uint32_t left_yb = node.bridge_left[frame.yb];
    stack.push_back({node.left, left_ya, left_yb});
    stack.push_back(
        {node.right, frame.ya - left_ya, frame.yb - left_yb});
  }
}

bool RangeTree2DSampler::ResolveX(const Rect& q, size_t* a, size_t* b) const {
  // x-range in x-sorted positions.
  auto x_key = [&](size_t i) { return points_by_x_[i].x; };
  size_t lo = 0;
  size_t hi = points_by_x_.size();
  // lower_bound for q.x_lo over positions.
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (x_key(mid) < q.x_lo) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  *a = lo;
  size_t lo2 = lo;
  size_t hi2 = points_by_x_.size();
  while (lo2 < hi2) {
    const size_t mid = (lo2 + hi2) / 2;
    if (x_key(mid) <= q.x_hi) {
      lo2 = mid + 1;
    } else {
      hi2 = mid;
    }
  }
  if (*a >= lo2) return false;  // empty x-range
  *b = lo2 - 1;
  return true;
}

bool RangeTree2DSampler::QueryRect(const Rect& q, size_t s, Rng* rng,
                                   std::vector<Point2>* out) const {
  size_t a = 0;
  size_t b = 0;
  if (!ResolveX(q, &a, &b)) return false;

  std::vector<Piece> pieces;
  CollectPieces(q, a, b, &pieces);
  if (pieces.empty()) return false;
  if (s == 0) return true;

  std::vector<double> piece_weights;
  piece_weights.reserve(pieces.size());
  for (const Piece& piece : pieces) piece_weights.push_back(piece.weight);
  const std::vector<uint32_t> counts = MultinomialSplit(piece_weights, s, rng);

  out->reserve(out->size() + s);
  std::vector<size_t> positions;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (counts[i] == 0) continue;
    const Piece& piece = pieces[i];
    const Node& node = nodes_[piece.node];
    positions.clear();
    node.sampler->QueryPositions(piece.y_a, piece.y_b, counts[i], rng,
                                 &positions);
    for (size_t y_pos : positions) {
      out->push_back(points_by_x_[node.ids_by_y[y_pos]]);
    }
  }
  return true;
}

void RangeTree2DSampler::QueryBatch(std::span<const RectBatchQuery> queries,
                                    Rng* rng, ScratchArena* arena,
                                    PointBatchResult* result) const {
  QueryBatch(queries, rng, arena, BatchOptions{}, result);
}

void RangeTree2DSampler::QueryBatch(std::span<const RectBatchQuery> queries,
                                    Rng* rng, ScratchArena* arena,
                                    const BatchOptions& opts,
                                    PointBatchResult* result) const {
  const uint64_t start_ns = opts.telemetry != nullptr ? TelemetryNowNs() : 0;
  // One batch latency sample regardless of which exit path is taken.
  auto record_latency = [&] {
    if (opts.telemetry != nullptr) {
      opts.telemetry->shard(0)->latency.Record(TelemetryNowNs() - start_ns);
    }
  };
  result->Clear();
  arena->Reset();
  thread_local CoverPlan plan;
  thread_local std::vector<Piece> pieces;
  thread_local std::vector<size_t> positions;
  plan.Clear();
  pieces.clear();
  const size_t nq = queries.size();
  result->resolved.resize(nq);
  result->offsets.resize(nq + 1);
  size_t total_samples = 0;
  for (size_t i = 0; i < nq; ++i) {
    result->offsets[i] = total_samples;
    plan.BeginQuery(queries[i].s);
    size_t a = 0;
    size_t b = 0;
    if (!ResolveX(queries[i].rect, &a, &b)) {
      result->resolved[i] = 0;
      continue;
    }
    const size_t piece_base = pieces.size();
    CollectPieces(queries[i].rect, a, b, &pieces);
    const bool ok = pieces.size() > piece_base;
    result->resolved[i] = ok ? 1 : 0;
    if (!ok || queries[i].s == 0) continue;
    for (size_t j = piece_base; j < pieces.size(); ++j) {
      plan.AddGroup(pieces[j].y_a, pieces[j].y_b, pieces[j].weight, j);
    }
    total_samples += queries[i].s;
  }
  result->offsets[nq] = total_samples;

  const CoverSplit split = CoverExecutor::Split(plan, rng, arena,
                                                opts.telemetry);
  IQS_CHECK(split.total == total_samples);
  result->points.resize(total_samples);
  if (opts.telemetry != nullptr) {
    // Manual-serve path: this QueryBatch owns its draw loops, so it owns
    // samples_emitted and the arena high-water mark (telemetry.h).
    QueryStats* stats = &opts.telemetry->shard(0)->stats;
    stats->samples_emitted += split.total;
    if (arena->capacity_bytes() > stats->arena_bytes_hwm) {
      stats->arena_bytes_hwm = arena->capacity_bytes();
    }
  }
  if (total_samples == 0) {
    record_latency();
    return;
  }

  // Coalesce nonzero groups by their secondary node so every piece that
  // hits the same node's y-structure — across all queries of the batch —
  // rides one chunked QueryPositionsBatch call. Each group's draws land
  // at split.offsets[g] of the flat output, which keeps every query's
  // slice contiguous regardless of the serving order.
  //
  // `pieces`/`plan` are thread_local, so lambdas that may run on pool
  // workers must go through these caller-bound views — a bare `pieces`
  // inside the lambda would resolve to the worker's own (empty) instance.
  const std::span<const Piece> batch_pieces(pieces);
  const std::span<const CoverGroup> groups = plan.groups();
  const std::span<uint32_t> order = arena->Alloc<uint32_t>(groups.size());
  size_t active = 0;
  for (size_t g = 0; g < groups.size(); ++g) {
    if (split.counts[g] > 0) order[active++] = static_cast<uint32_t>(g);
  }
  std::sort(order.begin(), order.begin() + static_cast<ptrdiff_t>(active),
            [&](uint32_t ga, uint32_t gb) {
              const uint32_t na = batch_pieces[groups[ga].tag].node;
              const uint32_t nb = batch_pieces[groups[gb].tag].node;
              return na != nb ? na < nb : ga < gb;
            });

  // Run boundaries over the sorted order: one run per secondary node.
  const std::span<size_t> run_start = arena->Alloc<size_t>(active + 1);
  size_t num_runs = 0;
  for (size_t k = 0; k < active;) {
    run_start[num_runs++] = k;
    const uint32_t node_id = batch_pieces[groups[order[k]].tag].node;
    while (k < active && batch_pieces[groups[order[k]].tag].node == node_id) {
      ++k;
    }
  }
  run_start[num_runs] = active;

  // Serves run r (groups order[run_start[r] .. run_start[r+1])) with the
  // given rng/scratch/staging buffer. Each group's draws land at
  // split.offsets[g] of the flat output, so runs write disjoint slices.
  auto serve_run = [&](size_t r, Rng* run_rng, ScratchArena* scratch,
                       std::vector<size_t>* staged) {
    const size_t rs = run_start[r];
    const size_t re = run_start[r + 1];
    const Node& node = nodes_[batch_pieces[groups[order[rs]].tag].node];
    const std::span<PositionQuery> requests =
        scratch->Alloc<PositionQuery>(re - rs);
    size_t m = 0;
    for (size_t k = rs; k < re; ++k) {
      const Piece& piece = batch_pieces[groups[order[k]].tag];
      requests[m++] = PositionQuery{
          piece.y_a, piece.y_b, static_cast<size_t>(split.counts[order[k]])};
    }
    staged->clear();
    node.sampler->QueryPositionsBatch(requests.first(m), run_rng, scratch,
                                      staged);
    // QueryPositionsBatch appends each request's draws contiguously in
    // order; scatter them back to the groups' flat slices.
    size_t cursor = 0;
    for (size_t k = rs; k < re; ++k) {
      const uint32_t g = order[k];
      const size_t dst = split.offsets[g];
      for (uint32_t d = 0; d < split.counts[g]; ++d) {
        const size_t y_pos = (*staged)[cursor++];
        result->points[dst + d] = points_by_x_[node.ids_by_y[y_pos]];
      }
    }
    IQS_DCHECK(cursor == staged->size());
  };

  if (opts.sequential()) {
    for (size_t r = 0; r < num_runs; ++r) {
      serve_run(r, rng, arena, &positions);
    }
    record_latency();
    return;
  }

  // Parallel mode: runs are the shardable unit, each under its own
  // substream — the run composition depends only on the (sequential)
  // split above, so output is bit-identical for every thread count.
  ScopedPool pool(opts);
  const Rng base(rng->Next64());
  if (opts.telemetry != nullptr) {
    ++opts.telemetry->shard(0)->stats.rng_draws;  // the batch key
  }
  ParallelForShards(
      pool.get(), num_runs, [&](size_t first, size_t last, size_t worker) {
        ScratchArena* wa = pool->worker_arena(worker);
        thread_local std::vector<size_t> staged;
        for (size_t r = first; r < last; ++r) {
          Rng run_rng = base.ForkStream(r);
          wa->Reset();
          serve_run(r, &run_rng, wa, &staged);
        }
      });
  record_latency();
}

void RangeTree2DSampler::Report(const Rect& q, std::vector<size_t>* out) const {
  for (size_t id = 0; id < points_by_x_.size(); ++id) {
    if (q.Contains(points_by_x_[id])) out->push_back(id);
  }
}

size_t RangeTree2DSampler::MemoryBytes() const {
  size_t bytes = points_by_x_.capacity() * sizeof(Point2) +
                 weights_by_x_.capacity() * sizeof(double) +
                 nodes_.capacity() * sizeof(Node);
  for (const Node& node : nodes_) {
    bytes += node.ids_by_y.capacity() * sizeof(uint32_t) +
             node.y_sorted_ys.capacity() * sizeof(double) +
             node.weight_prefix.capacity() * sizeof(double) +
             node.bridge_left.capacity() * sizeof(uint32_t);
    if (node.sampler != nullptr) bytes += node.sampler->MemoryBytes();
  }
  return bytes;
}

}  // namespace iqs::multidim
