#include "iqs/multidim/quadtree.h"

#include <algorithm>
#include <limits>

#include "iqs/util/check.h"

namespace iqs::multidim {

Quadtree::Quadtree(std::span<const Point2> points,
                   std::span<const double> weights, size_t leaf_capacity,
                   int max_depth)
    : leaf_capacity_(leaf_capacity),
      max_depth_(max_depth),
      points_(points.begin(), points.end()) {
  IQS_CHECK(!points_.empty());
  IQS_CHECK(leaf_capacity_ >= 1);
  if (weights.empty()) {
    weights_.assign(points_.size(), 1.0);
  } else {
    IQS_CHECK(weights.size() == points.size());
    weights_.assign(weights.begin(), weights.end());
    // iqs-lint: allow(check-in-loop) -- cold build-path input validation
    for (double w : weights_) IQS_CHECK(w > 0.0);
  }

  // Root box: the data bounding box expanded to a square (classic PR
  // quadtree; squares keep quadrant aspect ratios stable).
  Rect box{std::numeric_limits<double>::infinity(),
           -std::numeric_limits<double>::infinity(),
           std::numeric_limits<double>::infinity(),
           -std::numeric_limits<double>::infinity()};
  for (const Point2& p : points_) {
    box.x_lo = std::min(box.x_lo, p.x);
    box.x_hi = std::max(box.x_hi, p.x);
    box.y_lo = std::min(box.y_lo, p.y);
    box.y_hi = std::max(box.y_hi, p.y);
  }
  const double side =
      std::max({box.x_hi - box.x_lo, box.y_hi - box.y_lo, 1e-12});
  box.x_hi = box.x_lo + side;
  box.y_hi = box.y_lo + side;

  const uint32_t root = Build(0, points_.size() - 1, box, 0);
  IQS_CHECK(root == 0);
}

uint32_t Quadtree::Build(size_t lo, size_t hi, const Rect& box, int depth) {
  const uint32_t id = static_cast<uint32_t>(nodes_.size());
  nodes_.emplace_back();
  nodes_[id].box = box;
  nodes_[id].lo = static_cast<uint32_t>(lo);
  nodes_[id].hi = static_cast<uint32_t>(hi);
  double weight = 0.0;
  for (size_t i = lo; i <= hi; ++i) weight += weights_[i];
  nodes_[id].weight = weight;

  if (hi - lo + 1 <= leaf_capacity_ || depth >= max_depth_) return id;

  const double cx = (box.x_lo + box.x_hi) / 2.0;
  const double cy = (box.y_lo + box.y_hi) / 2.0;

  // In-place three-way partition into quadrants SW, NW, SE, NE, keeping
  // weights in lockstep with points.
  auto swap_elems = [&](size_t a, size_t b) {
    std::swap(points_[a], points_[b]);
    std::swap(weights_[a], weights_[b]);
  };
  auto partition = [&](size_t from, size_t to_excl, auto pred) -> size_t {
    size_t split = from;
    for (size_t i = from; i < to_excl; ++i) {
      if (pred(points_[i])) {
        swap_elems(i, split);
        ++split;
      }
    }
    return split;
  };
  const size_t x_split = partition(lo, hi + 1,
                                   [&](const Point2& p) { return p.x < cx; });
  const size_t sw_end = partition(lo, x_split,
                                  [&](const Point2& p) { return p.y < cy; });
  const size_t se_end = partition(x_split, hi + 1,
                                  [&](const Point2& p) { return p.y < cy; });

  struct QuadrantRun {
    size_t lo;
    size_t hi_excl;
    Rect box;
  };
  const QuadrantRun runs[4] = {
      {lo, sw_end, {box.x_lo, cx, box.y_lo, cy}},           // SW
      {sw_end, x_split, {box.x_lo, cx, cy, box.y_hi}},      // NW
      {x_split, se_end, {cx, box.x_hi, box.y_lo, cy}},      // SE
      {se_end, hi + 1, {cx, box.x_hi, cy, box.y_hi}},       // NE
  };
  nodes_[id].is_leaf = false;
  for (int quadrant = 0; quadrant < 4; ++quadrant) {
    const QuadrantRun& run = runs[quadrant];
    if (run.lo >= run.hi_excl) continue;
    const uint32_t child = Build(run.lo, run.hi_excl - 1, run.box, depth + 1);
    nodes_[id].children[quadrant] = child;
  }
  return id;
}

void Quadtree::CoverQuery(const Rect& q,
                          std::vector<CoverRange>* cover) const {
  std::vector<uint32_t> stack = {0};
  while (!stack.empty()) {
    const uint32_t id = stack.back();
    stack.pop_back();
    const Node& node = nodes_[id];
    if (!q.Intersects(node.box)) continue;
    if (q.ContainsRect(node.box)) {
      cover->push_back({node.lo, node.hi, node.weight});
      continue;
    }
    if (node.is_leaf) {
      // Boundary leaf: emit qualifying points individually (the leaf holds
      // at most leaf_capacity points).
      for (size_t p = node.lo; p <= node.hi; ++p) {
        if (q.Contains(points_[p])) {
          cover->push_back({p, p, weights_[p]});
        }
      }
      continue;
    }
    for (uint32_t child : node.children) {
      if (child != kNull) stack.push_back(child);
    }
  }
}

void Quadtree::Report(const Rect& q, std::vector<size_t>* out) const {
  std::vector<CoverRange> cover;
  CoverQuery(q, &cover);
  for (const CoverRange& range : cover) {
    for (size_t p = range.lo; p <= range.hi; ++p) out->push_back(p);
  }
}

void QuadtreeSampler::QueryBatch(std::span<const RectBatchQuery> queries,
                                 Rng* rng, ScratchArena* arena,
                                 const BatchOptions& opts,
                                 PointBatchResult* result) const {
  internal::ServeRectBatch(tree_, engine_, queries, rng, arena, opts, result);
}

void QuadtreeSampler::QueryBatch(std::span<const RectBatchQuery> queries,
                                 Rng* rng, ScratchArena* arena,
                                 PointBatchResult* result) const {
  QueryBatch(queries, rng, arena, BatchOptions{}, result);
}

bool QuadtreeSampler::QueryRect(const Rect& q, size_t s, Rng* rng,
                                std::vector<Point2>* out) const {
  std::vector<CoverRange> cover;
  tree_.CoverQuery(q, &cover);
  if (cover.empty()) return false;
  std::vector<size_t> positions;
  positions.reserve(s);
  engine_.Sample(cover, s, rng, &positions);
  out->reserve(out->size() + positions.size());
  for (size_t p : positions) out->push_back(tree_.PointAt(p));
  return true;
}

}  // namespace iqs::multidim
