#include "iqs/multidim/kd_tree_nd.h"

#include <algorithm>
#include <limits>

#include "iqs/util/telemetry.h"

namespace iqs::multidim {

KdTreeNd::KdTreeNd(size_t dim, std::span<const double> coords,
                   std::span<const double> weights)
    : dim_(dim), coords_(coords.begin(), coords.end()) {
  IQS_CHECK(dim_ >= 1);
  IQS_CHECK(!coords_.empty());
  IQS_CHECK(coords_.size() % dim_ == 0);
  const size_t n = coords_.size() / dim_;
  if (weights.empty()) {
    weights_.assign(n, 1.0);
  } else {
    IQS_CHECK(weights.size() == n);
    weights_.assign(weights.begin(), weights.end());
    // iqs-lint: allow(check-in-loop) -- cold build-path input validation
    for (double w : weights_) IQS_CHECK(w > 0.0);
  }
  nodes_.reserve(2 * n);
  const uint32_t root = Build(0, n - 1, 0);
  IQS_CHECK(root == 0);
  boxes_bytes_ = nodes_.size() * 2 * dim_ * sizeof(double);
}

uint32_t KdTreeNd::Build(size_t lo, size_t hi, size_t depth) {
  const uint32_t id = static_cast<uint32_t>(nodes_.size());
  nodes_.emplace_back();
  nodes_[id].box = BoxNd(dim_);
  for (size_t k = 0; k < dim_; ++k) {
    nodes_[id].box.set(k, std::numeric_limits<double>::infinity(),
                       -std::numeric_limits<double>::infinity());
  }
  double weight = 0.0;
  for (size_t i = lo; i <= hi; ++i) {
    weight += weights_[i];
    for (size_t k = 0; k < dim_; ++k) {
      const double c = coords_[i * dim_ + k];
      nodes_[id].box.bounds[2 * k] =
          std::min(nodes_[id].box.bounds[2 * k], c);
      nodes_[id].box.bounds[2 * k + 1] =
          std::max(nodes_[id].box.bounds[2 * k + 1], c);
    }
  }
  nodes_[id].weight = weight;
  nodes_[id].lo = static_cast<uint32_t>(lo);
  nodes_[id].hi = static_cast<uint32_t>(hi);
  if (lo == hi) return id;

  const size_t axis = depth % dim_;
  const size_t mid = lo + (hi - lo) / 2;
  std::vector<uint32_t> order(hi - lo + 1);
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<uint32_t>(lo + i);
  }
  std::nth_element(order.begin(), order.begin() + (mid - lo), order.end(),
                   [&](uint32_t a, uint32_t b) {
                     return coords_[a * dim_ + axis] <
                            coords_[b * dim_ + axis];
                   });
  std::vector<double> tmp_coords(order.size() * dim_);
  std::vector<double> tmp_weights(order.size());
  for (size_t i = 0; i < order.size(); ++i) {
    std::copy(coords_.begin() + order[i] * dim_,
              coords_.begin() + (order[i] + 1) * dim_,
              tmp_coords.begin() + i * dim_);
    tmp_weights[i] = weights_[order[i]];
  }
  std::copy(tmp_coords.begin(), tmp_coords.end(),
            coords_.begin() + lo * dim_);
  std::copy(tmp_weights.begin(), tmp_weights.end(), weights_.begin() + lo);

  const uint32_t left = Build(lo, mid, depth + 1);
  const uint32_t right = Build(mid + 1, hi, depth + 1);
  nodes_[id].left = left;
  nodes_[id].right = right;
  return id;
}

void KdTreeNd::CoverQuery(const BoxNd& q,
                          std::vector<CoverRange>* cover) const {
  IQS_CHECK(q.dim() == dim_);
  std::vector<uint32_t> stack = {0};
  while (!stack.empty()) {
    const uint32_t id = stack.back();
    stack.pop_back();
    const Node& node = nodes_[id];
    if (!q.Intersects(node.box)) continue;
    if (q.ContainsBox(node.box)) {
      cover->push_back({node.lo, node.hi, node.weight});
      continue;
    }
    if (node.left == kNull) {
      if (q.Contains(PointAt(node.lo))) {
        cover->push_back({node.lo, node.hi, weights_[node.lo]});
      }
      continue;
    }
    stack.push_back(node.left);
    stack.push_back(node.right);
  }
}

void KdTreeNd::Report(const BoxNd& q, std::vector<size_t>* out) const {
  std::vector<CoverRange> cover;
  CoverQuery(q, &cover);
  for (const CoverRange& range : cover) {
    for (size_t p = range.lo; p <= range.hi; ++p) out->push_back(p);
  }
}

bool KdTreeNdSampler::QueryBox(const BoxNd& q, size_t s, Rng* rng,
                               std::vector<size_t>* out) const {
  std::vector<CoverRange> cover;
  tree_.CoverQuery(q, &cover);
  if (cover.empty()) return false;
  engine_.Sample(cover, s, rng, out);
  return true;
}

void KdTreeNdSampler::QueryBatch(std::span<const BoxBatchQuery> queries,
                                 Rng* rng, ScratchArena* arena,
                                 const BatchOptions& opts,
                                 BatchResult* result) const {
  const uint64_t start_ns = opts.telemetry != nullptr ? TelemetryNowNs() : 0;
  result->Clear();
  arena->Reset();
  thread_local CoverPlan plan;
  thread_local std::vector<CoverRange> cover;
  plan.Clear();
  const size_t q = queries.size();
  result->resolved.resize(q);
  result->offsets.resize(q + 1);
  size_t total_samples = 0;
  for (size_t i = 0; i < q; ++i) {
    result->offsets[i] = total_samples;
    cover.clear();
    tree_.CoverQuery(queries[i].box, &cover);
    const bool ok = !cover.empty();
    result->resolved[i] = ok ? 1 : 0;
    plan.BeginQuery(queries[i].s);
    if (!ok || queries[i].s == 0) continue;
    for (const CoverRange& range : cover) plan.AddGroup(range);
    total_samples += queries[i].s;
  }
  result->offsets[q] = total_samples;

  result->positions.clear();
  result->positions.reserve(total_samples);
  engine_.SampleBatch(plan, rng, arena, opts, &result->positions);
  IQS_CHECK(result->positions.size() == total_samples);
  if (opts.telemetry != nullptr) {
    opts.telemetry->shard(0)->latency.Record(TelemetryNowNs() - start_ns);
  }
}

void KdTreeNdSampler::QueryBatch(std::span<const BoxBatchQuery> queries,
                                 Rng* rng, ScratchArena* arena,
                                 BatchResult* result) const {
  QueryBatch(queries, rng, arena, BatchOptions{}, result);
}

}  // namespace iqs::multidim
