// d-dimensional kd-tree IQS (paper Section 5, first example, for general
// constant d): O(n) space and O(n^{1-1/d} + s) query time for weighted
// orthogonal range sampling in R^d.
//
// The dimension is a runtime parameter; points are flat rows of a
// column-major-free coordinate buffer. As with the 2-d KdTree, median
// partitioning keeps each node's points contiguous, so the Theorem-5
// CoverageEngine drives the sampling. bench_kd_nd (E18) sweeps d to show
// the n^{1-1/d} cover growth the paper predicts.

#ifndef IQS_MULTIDIM_KD_TREE_ND_H_
#define IQS_MULTIDIM_KD_TREE_ND_H_

#include <cstdint>
#include <span>
#include <vector>

#include "iqs/cover/coverage_engine.h"
#include "iqs/range/range_sampler.h"  // BatchResult
#include "iqs/util/check.h"
#include "iqs/util/rng.h"
#include "iqs/util/scratch_arena.h"

namespace iqs::multidim {

// An axis-aligned box in R^d: bounds[2*k] = lo_k, bounds[2*k+1] = hi_k,
// closed on all sides.
struct BoxNd {
  std::vector<double> bounds;

  explicit BoxNd(size_t dim = 0)
      : bounds(2 * dim, 0.0) {}

  size_t dim() const { return bounds.size() / 2; }
  double lo(size_t k) const { return bounds[2 * k]; }
  double hi(size_t k) const { return bounds[2 * k + 1]; }
  void set(size_t k, double lo_v, double hi_v) {
    bounds[2 * k] = lo_v;
    bounds[2 * k + 1] = hi_v;
  }

  bool Contains(std::span<const double> point) const {
    for (size_t k = 0; k < dim(); ++k) {
      if (point[k] < lo(k) || point[k] > hi(k)) return false;
    }
    return true;
  }
  bool ContainsBox(const BoxNd& other) const {
    for (size_t k = 0; k < dim(); ++k) {
      if (other.lo(k) < lo(k) || other.hi(k) > hi(k)) return false;
    }
    return true;
  }
  bool Intersects(const BoxNd& other) const {
    for (size_t k = 0; k < dim(); ++k) {
      if (lo(k) > other.hi(k) || other.lo(k) > hi(k)) return false;
    }
    return true;
  }
};

// One box query of a serving batch: draw `s` independent weighted samples
// from S ∩ box.
struct BoxBatchQuery {
  BoxNd box;
  size_t s = 0;
};

class KdTreeNd {
 public:
  // `coords` holds n*dim doubles, row-major (point i = coords[i*dim ..]).
  // `weights` parallel (empty -> unit). O(n log n) build.
  KdTreeNd(size_t dim, std::span<const double> coords,
           std::span<const double> weights);

  size_t dim() const { return dim_; }
  size_t n() const { return weights_.size(); }
  std::span<const double> PointAt(size_t position) const {
    return {coords_.data() + position * dim_, dim_};
  }
  double WeightAt(size_t position) const { return weights_[position]; }
  const std::vector<double>& position_weights() const { return weights_; }

  // Exact cover of box q (same guarantees as the 2-d KdTree).
  void CoverQuery(const BoxNd& q, std::vector<CoverRange>* cover) const;

  // Reporting oracle.
  void Report(const BoxNd& q, std::vector<size_t>* out) const;

  size_t MemoryBytes() const {
    return coords_.capacity() * sizeof(double) +
           weights_.capacity() * sizeof(double) +
           nodes_.capacity() * sizeof(Node) + boxes_bytes_;
  }

 private:
  struct Node {
    BoxNd box;
    double weight = 0.0;
    uint32_t lo = 0;
    uint32_t hi = 0;
    uint32_t left = kNull;
    uint32_t right = kNull;
  };
  static constexpr uint32_t kNull = ~uint32_t{0};

  uint32_t Build(size_t lo, size_t hi, size_t depth);

  size_t dim_;
  std::vector<double> coords_;
  std::vector<double> weights_;
  std::vector<Node> nodes_;
  size_t boxes_bytes_ = 0;
};

// Theorem-5 sampler over KdTreeNd.
class KdTreeNdSampler {
 public:
  KdTreeNdSampler(size_t dim, std::span<const double> coords,
                  std::span<const double> weights)
      : tree_(dim, coords, weights), engine_(tree_.position_weights()) {}

  // Draws `s` independent weighted samples from S ∩ q, appending sampled
  // POSITIONS (resolve coordinates via tree().PointAt). False when empty.
  bool QueryBox(const BoxNd& q, size_t s, Rng* rng,
                std::vector<size_t>* out) const;

  // Batched serving fast path (mirrors RangeSampler::QueryBatch): covers
  // every box once, then serves all draws of the batch through one
  // CoverExecutor run over the shared coverage engine. result->positions
  // holds positions; resolve via tree().PointAt.
  // opts.num_threads >= 1 serves the batch in the deterministic parallel
  // mode (see BatchOptions). Canonical order
  // (queries, rng, arena, opts, &result).
  void QueryBatch(std::span<const BoxBatchQuery> queries, Rng* rng,
                  ScratchArena* arena, const BatchOptions& opts,
                  BatchResult* result) const;

  // Convenience: default options.
  void QueryBatch(std::span<const BoxBatchQuery> queries, Rng* rng,
                  ScratchArena* arena, BatchResult* result) const;

  const KdTreeNd& tree() const { return tree_; }

  size_t MemoryBytes() const {
    return tree_.MemoryBytes() + engine_.MemoryBytes();
  }

 private:
  KdTreeNd tree_;
  CoverageEngine engine_;
};

}  // namespace iqs::multidim

#endif  // IQS_MULTIDIM_KD_TREE_ND_H_
