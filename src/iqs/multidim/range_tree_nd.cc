#include "iqs/multidim/range_tree_nd.h"

#include <algorithm>
#include <numeric>

#include "iqs/cover/cover_executor.h"
#include "iqs/sampling/multinomial.h"
#include "iqs/util/check.h"
#include "iqs/util/telemetry.h"

namespace iqs::multidim {

RangeTreeNdSampler::RangeTreeNdSampler(size_t dim,
                                       std::span<const double> coords,
                                       std::span<const double> weights,
                                       size_t leaf_size)
    : dim_(dim),
      leaf_size_(std::max<size_t>(leaf_size, 1)),
      coords_(coords.begin(), coords.end()) {
  IQS_CHECK(dim_ >= 1);
  IQS_CHECK(!coords_.empty());
  IQS_CHECK(coords_.size() % dim_ == 0);
  const size_t n = coords_.size() / dim_;
  if (weights.empty()) {
    weights_.assign(n, 1.0);
  } else {
    IQS_CHECK(weights.size() == n);
    weights_.assign(weights.begin(), weights.end());
    // iqs-lint: allow(check-in-loop) -- cold build-path input validation
    for (double w : weights_) IQS_CHECK(w > 0.0);
  }
  std::vector<uint32_t> ids(n);
  std::iota(ids.begin(), ids.end(), 0);
  root_ = BuildStructure(0, std::move(ids));
}

std::unique_ptr<RangeTreeNdSampler::LevelStructure>
RangeTreeNdSampler::BuildStructure(size_t level,
                                   std::vector<uint32_t> ids) const {
  auto s = std::make_unique<LevelStructure>();
  s->level = level;
  s->ids_sorted = std::move(ids);
  const size_t axis = level;
  std::sort(s->ids_sorted.begin(), s->ids_sorted.end(),
            [&](uint32_t a, uint32_t b) {
              return coords_[a * dim_ + axis] < coords_[b * dim_ + axis];
            });
  const size_t m = s->ids_sorted.size();
  s->sorted_coords.resize(m);
  for (size_t i = 0; i < m; ++i) {
    s->sorted_coords[i] = coords_[s->ids_sorted[i] * dim_ + axis];
  }

  if (level + 1 == dim_) {
    // Final level: prefix sums + the Theorem-3 sampler over this order.
    s->weight_prefix.assign(m + 1, 0.0);
    std::vector<double> w(m);
    for (size_t i = 0; i < m; ++i) {
      w[i] = weights_[s->ids_sorted[i]];
      s->weight_prefix[i + 1] = s->weight_prefix[i] + w[i];
    }
    std::vector<double> position_keys(m);
    std::iota(position_keys.begin(), position_keys.end(), 0.0);
    s->sampler = std::make_unique<ChunkedRangeSampler>(position_keys, w);
    return s;
  }

  s->tree.reserve(4 * (m / leaf_size_ + 2));
  const uint32_t root = BuildTree(s.get(), 0, m - 1);
  IQS_CHECK(root == 0);
  return s;
}

uint32_t RangeTreeNdSampler::BuildTree(LevelStructure* s, size_t lo,
                                       size_t hi) const {
  const uint32_t id = static_cast<uint32_t>(s->tree.size());
  s->tree.emplace_back();
  s->tree[id].lo = static_cast<uint32_t>(lo);
  s->tree[id].hi = static_cast<uint32_t>(hi);
  if (hi - lo + 1 > leaf_size_) {
    const size_t mid = lo + (hi - lo) / 2;
    const uint32_t left = BuildTree(s, lo, mid);
    const uint32_t right = BuildTree(s, mid + 1, hi);
    s->tree[id].left = left;
    s->tree[id].right = right;
  }
  std::vector<uint32_t> sub_ids(
      s->ids_sorted.begin() + static_cast<ptrdiff_t>(lo),
      s->ids_sorted.begin() + static_cast<ptrdiff_t>(hi) + 1);
  s->tree[id].child = BuildStructure(s->level + 1, std::move(sub_ids));
  return id;
}

void RangeTreeNdSampler::CollectFinal(const LevelStructure& s,
                                      const BoxNd& q,
                                      std::vector<Piece>* pieces) const {
  const size_t axis = dim_ - 1;
  const auto first = std::lower_bound(s.sorted_coords.begin(),
                                      s.sorted_coords.end(), q.lo(axis));
  const auto last =
      std::upper_bound(first, s.sorted_coords.end(), q.hi(axis));
  if (first == last) return;
  const uint32_t a =
      static_cast<uint32_t>(first - s.sorted_coords.begin());
  const uint32_t b =
      static_cast<uint32_t>(last - s.sorted_coords.begin()) - 1;
  pieces->push_back(
      {&s, a, b, s.weight_prefix[b + 1] - s.weight_prefix[a]});
}

void RangeTreeNdSampler::CollectPieces(const LevelStructure& s,
                                       const BoxNd& q,
                                       std::vector<Piece>* pieces) const {
  if (s.level + 1 == dim_) {
    CollectFinal(s, q, pieces);
    return;
  }
  const size_t axis = s.level;
  // Position range of the axis interval in this structure's sorted order.
  const auto first = std::lower_bound(s.sorted_coords.begin(),
                                      s.sorted_coords.end(), q.lo(axis));
  const auto last =
      std::upper_bound(first, s.sorted_coords.end(), q.hi(axis));
  if (first == last) return;
  const uint32_t a =
      static_cast<uint32_t>(first - s.sorted_coords.begin());
  const uint32_t b =
      static_cast<uint32_t>(last - s.sorted_coords.begin()) - 1;

  // Canonical descent.
  std::vector<uint32_t> stack = {0};
  while (!stack.empty()) {
    const uint32_t id = stack.back();
    stack.pop_back();
    const LevelStructure::TreeNode& node = s.tree[id];
    if (node.lo > b || node.hi < a) continue;
    if (a <= node.lo && node.hi <= b) {
      CollectPieces(*node.child, q, pieces);
      continue;
    }
    if (node.left == kNull) {
      // Partial boundary leaf: filter its <= leaf_size points against ALL
      // remaining dimensions and emit singletons.
      for (uint32_t pos = node.lo; pos <= node.hi; ++pos) {
        if (pos < a || pos > b) continue;
        const uint32_t pid = s.ids_sorted[pos];
        bool inside = true;
        for (size_t k = s.level + 1; k < dim_; ++k) {
          const double c = coords_[pid * dim_ + k];
          if (c < q.lo(k) || c > q.hi(k)) {
            inside = false;
            break;
          }
        }
        if (inside) {
          pieces->push_back({nullptr, pid, pid, weights_[pid]});
        }
      }
      continue;
    }
    stack.push_back(node.left);
    stack.push_back(node.right);
  }
}

bool RangeTreeNdSampler::QueryBox(const BoxNd& q, size_t s, Rng* rng,
                                  std::vector<size_t>* out) const {
  IQS_CHECK(q.dim() == dim_);
  std::vector<Piece> pieces;
  CollectPieces(*root_, q, &pieces);
  if (pieces.empty()) return false;
  if (s == 0) return true;

  std::vector<double> piece_weights;
  piece_weights.reserve(pieces.size());
  for (const Piece& piece : pieces) piece_weights.push_back(piece.weight);
  const std::vector<uint32_t> counts = MultinomialSplit(piece_weights, s, rng);

  out->reserve(out->size() + s);
  std::vector<size_t> positions;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (counts[i] == 0) continue;
    const Piece& piece = pieces[i];
    if (piece.leaf_structure == nullptr) {
      for (uint32_t k = 0; k < counts[i]; ++k) out->push_back(piece.a);
      continue;
    }
    positions.clear();
    piece.leaf_structure->sampler->QueryPositions(piece.a, piece.b,
                                                  counts[i], rng, &positions);
    for (size_t pos : positions) {
      out->push_back(piece.leaf_structure->ids_sorted[pos]);
    }
  }
  return true;
}

void RangeTreeNdSampler::QueryBatch(std::span<const BoxBatchQuery> queries,
                                    Rng* rng, ScratchArena* arena,
                                    BatchResult* result) const {
  QueryBatch(queries, rng, arena, BatchOptions{}, result);
}

void RangeTreeNdSampler::QueryBatch(std::span<const BoxBatchQuery> queries,
                                    Rng* rng, ScratchArena* arena,
                                    const BatchOptions& opts,
                                    BatchResult* result) const {
  const uint64_t start_ns = opts.telemetry != nullptr ? TelemetryNowNs() : 0;
  auto record_latency = [&] {
    if (opts.telemetry != nullptr) {
      opts.telemetry->shard(0)->latency.Record(TelemetryNowNs() - start_ns);
    }
  };
  result->Clear();
  arena->Reset();
  thread_local CoverPlan plan;
  thread_local std::vector<Piece> pieces;
  thread_local std::vector<size_t> positions;
  plan.Clear();
  pieces.clear();
  const size_t nq = queries.size();
  result->resolved.resize(nq);
  result->offsets.resize(nq + 1);
  size_t total_samples = 0;
  for (size_t i = 0; i < nq; ++i) {
    IQS_DCHECK(queries[i].box.dim() == dim_);
    result->offsets[i] = total_samples;
    plan.BeginQuery(queries[i].s);
    const size_t piece_base = pieces.size();
    CollectPieces(*root_, queries[i].box, &pieces);
    const bool ok = pieces.size() > piece_base;
    result->resolved[i] = ok ? 1 : 0;
    if (!ok || queries[i].s == 0) continue;
    for (size_t j = piece_base; j < pieces.size(); ++j) {
      // Singleton pieces (leaf_structure == nullptr) carry the point id in
      // `a`; lo/hi are unused by the split stage.
      plan.AddGroup(pieces[j].a, pieces[j].b, pieces[j].weight, j);
    }
    total_samples += queries[i].s;
  }
  result->offsets[nq] = total_samples;

  const CoverSplit split = CoverExecutor::Split(plan, rng, arena,
                                                opts.telemetry);
  IQS_CHECK(split.total == total_samples);
  result->positions.assign(total_samples, 0);
  if (opts.telemetry != nullptr) {
    // This path serves draws manually (not via CoverExecutor::Execute), so
    // it owns the samples_emitted / arena high-water accounting.
    QueryStats* stats = &opts.telemetry->shard(0)->stats;
    stats->samples_emitted += split.total;
    if (arena->capacity_bytes() > stats->arena_bytes_hwm) {
      stats->arena_bytes_hwm = arena->capacity_bytes();
    }
  }
  if (total_samples == 0) {
    record_latency();
    return;
  }

  // Serve singleton groups directly; coalesce the rest by final-level
  // structure so shared leaf samplers get one batched call each.
  //
  // `pieces`/`plan` are thread_local, so lambdas that may run on pool
  // workers must go through these caller-bound views — a bare `pieces`
  // inside the lambda would resolve to the worker's own (empty) instance.
  const std::span<const Piece> batch_pieces(pieces);
  const std::span<const CoverGroup> groups = plan.groups();
  const std::span<uint32_t> order = arena->Alloc<uint32_t>(groups.size());
  size_t active = 0;
  for (size_t g = 0; g < groups.size(); ++g) {
    if (split.counts[g] == 0) continue;
    const Piece& piece = batch_pieces[groups[g].tag];
    if (piece.leaf_structure == nullptr) {
      const size_t dst = split.offsets[g];
      for (uint32_t d = 0; d < split.counts[g]; ++d) {
        result->positions[dst + d] = piece.a;
      }
      continue;
    }
    order[active++] = static_cast<uint32_t>(g);
  }
  std::sort(order.begin(), order.begin() + static_cast<ptrdiff_t>(active),
            [&](uint32_t ga, uint32_t gb) {
              const auto* sa = batch_pieces[groups[ga].tag].leaf_structure;
              const auto* sb = batch_pieces[groups[gb].tag].leaf_structure;
              return sa != sb ? sa < sb : ga < gb;
            });

  // Run boundaries over the sorted order: one run per leaf structure.
  const std::span<size_t> run_start = arena->Alloc<size_t>(active + 1);
  size_t num_runs = 0;
  for (size_t k = 0; k < active;) {
    run_start[num_runs++] = k;
    const LevelStructure* structure =
        batch_pieces[groups[order[k]].tag].leaf_structure;
    while (k < active &&
           batch_pieces[groups[order[k]].tag].leaf_structure == structure) {
      ++k;
    }
  }
  run_start[num_runs] = active;

  // Serves run r with the given rng/scratch/staging buffer; runs write
  // disjoint slices of the flat output.
  auto serve_run = [&](size_t r, Rng* run_rng, ScratchArena* scratch,
                       std::vector<size_t>* staged) {
    const size_t rs = run_start[r];
    const size_t re = run_start[r + 1];
    const LevelStructure* structure =
        batch_pieces[groups[order[rs]].tag].leaf_structure;
    const std::span<PositionQuery> requests =
        scratch->Alloc<PositionQuery>(re - rs);
    size_t m = 0;
    for (size_t k = rs; k < re; ++k) {
      const Piece& piece = batch_pieces[groups[order[k]].tag];
      requests[m++] = PositionQuery{
          piece.a, piece.b, static_cast<size_t>(split.counts[order[k]])};
    }
    staged->clear();
    structure->sampler->QueryPositionsBatch(requests.first(m), run_rng,
                                            scratch, staged);
    size_t cursor = 0;
    for (size_t k = rs; k < re; ++k) {
      const uint32_t g = order[k];
      const size_t dst = split.offsets[g];
      for (uint32_t d = 0; d < split.counts[g]; ++d) {
        result->positions[dst + d] =
            structure->ids_sorted[(*staged)[cursor++]];
      }
    }
    IQS_DCHECK(cursor == staged->size());
  };

  if (opts.sequential()) {
    for (size_t r = 0; r < num_runs; ++r) {
      serve_run(r, rng, arena, &positions);
    }
    record_latency();
    return;
  }

  // Parallel mode: runs are the shardable unit, each under its own
  // substream (see RangeTree2DSampler::QueryBatch).
  ScopedPool pool(opts);
  const Rng base(rng->Next64());
  if (opts.telemetry != nullptr) {
    ++opts.telemetry->shard(0)->stats.rng_draws;  // the batch key
  }
  ParallelForShards(
      pool.get(), num_runs, [&](size_t first, size_t last, size_t worker) {
        ScratchArena* wa = pool->worker_arena(worker);
        thread_local std::vector<size_t> staged;
        for (size_t r = first; r < last; ++r) {
          Rng run_rng = base.ForkStream(r);
          wa->Reset();
          serve_run(r, &run_rng, wa, &staged);
        }
      });
  record_latency();
}

void RangeTreeNdSampler::Report(const BoxNd& q,
                                std::vector<size_t>* out) const {
  for (size_t id = 0; id < n(); ++id) {
    if (q.Contains(PointAt(id))) out->push_back(id);
  }
}

size_t RangeTreeNdSampler::MemoryBytes() const {
  size_t bytes = coords_.capacity() * sizeof(double) +
                 weights_.capacity() * sizeof(double);
  // Walk the structure tree.
  std::vector<const LevelStructure*> stack = {root_.get()};
  while (!stack.empty()) {
    const LevelStructure* s = stack.back();
    stack.pop_back();
    bytes += s->ids_sorted.capacity() * sizeof(uint32_t) +
             s->sorted_coords.capacity() * sizeof(double) +
             s->weight_prefix.capacity() * sizeof(double) +
             s->tree.capacity() * sizeof(LevelStructure::TreeNode);
    if (s->sampler != nullptr) bytes += s->sampler->MemoryBytes();
    for (const auto& node : s->tree) {
      if (node.child != nullptr) stack.push_back(node.child.get());
    }
  }
  return bytes;
}

}  // namespace iqs::multidim
