// Planar geometry value types shared by the multi-dimensional structures
// (kd-tree, quadtree, range tree) and the near-neighbor code.

#ifndef IQS_MULTIDIM_POINT_H_
#define IQS_MULTIDIM_POINT_H_

#include <cmath>

namespace iqs::multidim {

struct Point2 {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point2&, const Point2&) = default;
};

inline double SquaredDistance(const Point2& a, const Point2& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

inline double Distance(const Point2& a, const Point2& b) {
  return std::sqrt(SquaredDistance(a, b));
}

// Axis-aligned rectangle, closed on all sides.
struct Rect {
  double x_lo = 0.0;
  double x_hi = 0.0;
  double y_lo = 0.0;
  double y_hi = 0.0;

  bool Contains(const Point2& p) const {
    return p.x >= x_lo && p.x <= x_hi && p.y >= y_lo && p.y <= y_hi;
  }

  bool ContainsRect(const Rect& other) const {
    return other.x_lo >= x_lo && other.x_hi <= x_hi && other.y_lo >= y_lo &&
           other.y_hi <= y_hi;
  }

  bool Intersects(const Rect& other) const {
    return x_lo <= other.x_hi && other.x_lo <= x_hi && y_lo <= other.y_hi &&
           other.y_lo <= y_hi;
  }

  // Minimum squared distance from `p` to this rectangle (0 if inside).
  double MinSquaredDistance(const Point2& p) const {
    const double dx = p.x < x_lo ? x_lo - p.x : (p.x > x_hi ? p.x - x_hi : 0.0);
    const double dy = p.y < y_lo ? y_lo - p.y : (p.y > y_hi ? p.y - y_hi : 0.0);
    return dx * dx + dy * dy;
  }

  // Maximum squared distance from `p` to any point of this rectangle.
  double MaxSquaredDistance(const Point2& p) const {
    const double dx = std::max(std::abs(p.x - x_lo), std::abs(p.x - x_hi));
    const double dy = std::max(std::abs(p.y - y_lo), std::abs(p.y - y_hi));
    return dx * dx + dy * dy;
  }
};

}  // namespace iqs::multidim

#endif  // IQS_MULTIDIM_POINT_H_
