#include "iqs/multidim/kd_sampler.h"

namespace iqs::multidim {

KdTreeSampler::KdTreeSampler(std::span<const Point2> points,
                             std::span<const double> weights)
    : tree_(points, weights), engine_(tree_.position_weights()) {}

bool KdTreeSampler::QueryRect(const Rect& q, size_t s, Rng* rng,
                              std::vector<Point2>* out) const {
  std::vector<CoverRange> cover;
  tree_.CoverQuery(q, &cover);
  if (cover.empty()) return false;
  std::vector<size_t> positions;
  positions.reserve(s);
  engine_.Sample(cover, s, rng, &positions);
  out->reserve(out->size() + positions.size());
  for (size_t p : positions) out->push_back(tree_.PointAt(p));
  return true;
}

void KdTreeSampler::QueryBatch(std::span<const RectBatchQuery> queries,
                               Rng* rng, ScratchArena* arena,
                               const BatchOptions& opts,
                               PointBatchResult* result) const {
  internal::ServeRectBatch(tree_, engine_, queries, rng, arena, opts, result);
}

void KdTreeSampler::QueryBatch(std::span<const RectBatchQuery> queries,
                               Rng* rng, ScratchArena* arena,
                               PointBatchResult* result) const {
  QueryBatch(queries, rng, arena, BatchOptions{}, result);
}

bool KdTreeSampler::QueryDisk(const Point2& center, double radius, size_t s,
                              Rng* rng, std::vector<Point2>* out) const {
  std::vector<CoverRange> cover;
  tree_.CoverDisk(center, radius, &cover);
  if (cover.empty()) return false;
  std::vector<size_t> positions;
  positions.reserve(s);
  engine_.Sample(cover, s, rng, &positions);
  out->reserve(out->size() + positions.size());
  for (size_t p : positions) out->push_back(tree_.PointAt(p));
  return true;
}

bool KdTreeSampler::QueryDiskApprox(const Point2& center, double radius,
                                    size_t s, double slack, Rng* rng,
                                    std::vector<Point2>* out) const {
  std::vector<CoverRange> cover;
  tree_.ApproxCoverDisk(center, radius, slack, &cover);
  if (cover.empty()) return false;
  // The approximate cover may hold only non-qualifying points; probe one
  // exact emptiness check cheaply via the exact cover when the first
  // rejection round would spin forever. Cheaper: verify at least one
  // qualifying point exists by scanning the smallest piece... Simpler and
  // still O(cover): ask the exact disk cover for emptiness.
  std::vector<CoverRange> exact;
  tree_.CoverDisk(center, radius, &exact);
  if (exact.empty()) return false;
  const double r2 = radius * radius;
  std::vector<size_t> positions;
  positions.reserve(s);
  engine_.SampleWithRejection(
      cover, s,
      [&](size_t p) {
        return SquaredDistance(tree_.PointAt(p), center) <= r2;
      },
      rng, &positions);
  out->reserve(out->size() + positions.size());
  for (size_t p : positions) out->push_back(tree_.PointAt(p));
  return true;
}

bool KdTreeSampler::QueryHalfplane(double a, double b, double c, size_t s,
                                   Rng* rng,
                                   std::vector<Point2>* out) const {
  // The linear form a*x + b*y attains its extremes over a rectangle at
  // the corners; evaluate only the relevant two.
  auto min_over_box = [&](const Rect& box) {
    return a * (a >= 0 ? box.x_lo : box.x_hi) +
           b * (b >= 0 ? box.y_lo : box.y_hi);
  };
  auto max_over_box = [&](const Rect& box) {
    return a * (a >= 0 ? box.x_hi : box.x_lo) +
           b * (b >= 0 ? box.y_hi : box.y_lo);
  };
  std::vector<CoverRange> cover;
  tree_.CoverRegion(
      [&](const Rect& box) { return max_over_box(box) <= c; },
      [&](const Rect& box) { return min_over_box(box) <= c; },
      [&](const Point2& p) { return a * p.x + b * p.y <= c; }, &cover);
  if (cover.empty()) return false;
  std::vector<size_t> positions;
  positions.reserve(s);
  engine_.Sample(cover, s, rng, &positions);
  out->reserve(out->size() + positions.size());
  for (size_t p : positions) out->push_back(tree_.PointAt(p));
  return true;
}

std::optional<Point2> KdTreeSampler::FairNearNeighbor(const Point2& center,
                                                      double radius,
                                                      Rng* rng) const {
  std::vector<Point2> out;
  if (!QueryDisk(center, radius, 1, rng, &out)) return std::nullopt;
  return out[0];
}

}  // namespace iqs::multidim
