// d-dimensional range tree IQS (paper Sections 3.2 and 5, general d):
// O(n log^{d-1} n) space, O(log^d n + s·) query for weighted orthogonal
// range sampling in R^d — the Theorem-5 upgrade of Martinez's structure
// for arbitrary constant d.
//
// Recursive layout: the level-k structure is a balanced binary tree over
// the points sorted by coordinate k; every node owns a level-(k+1)
// structure on its subtree's points; the last level is a Theorem-3
// chunked sampler over the points sorted by the final coordinate. A query
// peels canonical nodes dimension by dimension (O(log n) per level,
// O(log^d n) leaf-level pieces in the worst case), splits the budget
// multinomially across the resulting contiguous runs, and samples each
// active run in O(log + s_i).
//
// The measured-space constant is substantial (each point is replicated in
// O(log^{d-1} n) samplers) — exactly the trade-off the paper contrasts
// against the kd-tree's O(n) space; see bench_ablation / EXPERIMENTS.md.

#ifndef IQS_MULTIDIM_RANGE_TREE_ND_H_
#define IQS_MULTIDIM_RANGE_TREE_ND_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "iqs/multidim/kd_tree_nd.h"  // BoxNd, BoxBatchQuery
#include "iqs/range/chunked_range_sampler.h"
#include "iqs/range/range_sampler.h"  // BatchResult
#include "iqs/util/batch_options.h"
#include "iqs/util/rng.h"
#include "iqs/util/scratch_arena.h"

namespace iqs::multidim {

class RangeTreeNdSampler {
 public:
  // `coords`: n*dim doubles, row-major. `weights` parallel ({} -> unit).
  // `leaf_size` caps tree-leaf width on every non-final level.
  RangeTreeNdSampler(size_t dim, std::span<const double> coords,
                     std::span<const double> weights, size_t leaf_size = 8);

  size_t dim() const { return dim_; }
  size_t n() const { return weights_.size(); }
  std::span<const double> PointAt(size_t id) const {
    return {coords_.data() + id * dim_, dim_};
  }

  // Draws `s` independent weighted samples from S ∩ q, appending point
  // ids (indices into the constructor order). False when the box is empty.
  bool QueryBox(const BoxNd& q, size_t s, Rng* rng,
                std::vector<size_t>* out) const;

  // Batched serving fast path: all queries' pieces go into one CoverPlan,
  // the CoverExecutor performs the multinomial splits, and per-group
  // draws are coalesced BY FINAL-LEVEL STRUCTURE so pieces of different
  // queries that share a leaf sampler ride one chunked batched call.
  // result->positions holds point ids (constructor order).
  // opts.num_threads >= 1 serves the coalesced structure runs in the
  // deterministic parallel mode, one RNG substream per run (see
  // BatchOptions). Canonical order (queries, rng, arena, opts, &result).
  void QueryBatch(std::span<const BoxBatchQuery> queries, Rng* rng,
                  ScratchArena* arena, const BatchOptions& opts,
                  BatchResult* result) const;

  // Convenience: default options.
  void QueryBatch(std::span<const BoxBatchQuery> queries, Rng* rng,
                  ScratchArena* arena, BatchResult* result) const;

  // Reporting oracle (brute force; for tests).
  void Report(const BoxNd& q, std::vector<size_t>* out) const;

  size_t MemoryBytes() const;

 private:
  // A structure over a set of point ids, filtering dimensions
  // [level, dim). For level == dim-1 it holds the final sampler; else a
  // balanced tree whose every node owns a child structure.
  struct LevelStructure {
    size_t level = 0;
    // Ids sorted by coordinate `level`; on the final level also the
    // sampler, the sorted coordinate values (for binary search) and
    // weight prefix sums (O(1) piece weights).
    std::vector<uint32_t> ids_sorted;
    std::vector<double> sorted_coords;
    std::vector<double> weight_prefix;
    std::unique_ptr<ChunkedRangeSampler> sampler;
    // Non-final level: balanced tree over ids sorted by coordinate
    // `level`; nodes in a local arena.
    struct TreeNode {
      uint32_t lo = 0;
      uint32_t hi = 0;  // range into ids_sorted
      uint32_t left = kNull;
      uint32_t right = kNull;
      std::unique_ptr<LevelStructure> child;  // dims level+1..d-1
    };
    std::vector<TreeNode> tree;
  };
  static constexpr uint32_t kNull = ~uint32_t{0};

  // Either a contiguous run [a, b] in a final structure's sorted order,
  // or (leaf_structure == nullptr) a single point id stored in `a`.
  struct Piece {
    const LevelStructure* leaf_structure;
    uint32_t a;
    uint32_t b;
    double weight;
  };

  std::unique_ptr<LevelStructure> BuildStructure(
      size_t level, std::vector<uint32_t> ids) const;
  uint32_t BuildTree(LevelStructure* s, size_t lo, size_t hi) const;

  void CollectPieces(const LevelStructure& s, const BoxNd& q,
                     std::vector<Piece>* pieces) const;
  void CollectFinal(const LevelStructure& s, const BoxNd& q,
                    std::vector<Piece>* pieces) const;

  size_t dim_;
  size_t leaf_size_;
  std::vector<double> coords_;
  std::vector<double> weights_;
  std::unique_ptr<LevelStructure> root_;
};

}  // namespace iqs::multidim

#endif  // IQS_MULTIDIM_RANGE_TREE_ND_H_
