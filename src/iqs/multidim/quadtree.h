// Point-region quadtree with cover finding and IQS sampling — the
// structure through which Looz & Meyerhenke first brought tree sampling to
// 2-d range sampling (paper Section 3.2 remark), here upgraded to the
// Theorem-5 engine so a query costs O(cover + s) instead of paying a
// log factor per sample.
//
// Built by in-place quadrant partitioning: each node's points occupy a
// contiguous run of the internal array, so covers are CoverRange lists.

#ifndef IQS_MULTIDIM_QUADTREE_H_
#define IQS_MULTIDIM_QUADTREE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "iqs/cover/coverage_engine.h"
#include "iqs/multidim/multidim_batch.h"
#include "iqs/multidim/point.h"
#include "iqs/util/rng.h"
#include "iqs/util/scratch_arena.h"

namespace iqs::multidim {

class Quadtree {
 public:
  // `weights` parallel to `points`; pass {} for unit weights.
  // `leaf_capacity` bounds points per leaf (>= 1); `max_depth` guards
  // against coincident points.
  Quadtree(std::span<const Point2> points, std::span<const double> weights,
           size_t leaf_capacity = 4, int max_depth = 32);

  size_t n() const { return points_.size(); }
  const Point2& PointAt(size_t position) const { return points_[position]; }
  double WeightAt(size_t position) const { return weights_[position]; }
  const std::vector<double>& position_weights() const { return weights_; }

  // Exact cover of rectangle q (disjoint ranges, union exactly S ∩ q).
  void CoverQuery(const Rect& q, std::vector<CoverRange>* cover) const;

  // Reporting query, for oracles.
  void Report(const Rect& q, std::vector<size_t>* out) const;

  size_t num_nodes() const { return nodes_.size(); }

  size_t MemoryBytes() const {
    return points_.capacity() * sizeof(Point2) +
           weights_.capacity() * sizeof(double) +
           nodes_.capacity() * sizeof(Node);
  }

 private:
  struct Node {
    Rect box;
    double weight = 0.0;
    uint32_t lo = 0;
    uint32_t hi = 0;
    uint32_t children[4] = {kNull, kNull, kNull, kNull};
    bool is_leaf = true;
  };
  static constexpr uint32_t kNull = ~uint32_t{0};

  uint32_t Build(size_t lo, size_t hi, const Rect& box, int depth);

  size_t leaf_capacity_;
  int max_depth_;
  std::vector<Point2> points_;
  std::vector<double> weights_;
  std::vector<Node> nodes_;
};

// Theorem-5 IQS wrapper over the quadtree.
class QuadtreeSampler {
 public:
  QuadtreeSampler(std::span<const Point2> points,
                  std::span<const double> weights, size_t leaf_capacity = 4)
      : tree_(points, weights, leaf_capacity),
        engine_(tree_.position_weights()) {}

  // Draws `s` independent weighted samples from S ∩ q; false if empty.
  bool QueryRect(const Rect& q, size_t s, Rng* rng,
                 std::vector<Point2>* out) const;

  // Batched serving fast path — one CoverExecutor run over the whole
  // batch; see KdTreeSampler::QueryBatch. Canonical order
  // (queries, rng, arena, opts, &result); opts.num_threads >= 1 serves
  // the batch in the deterministic parallel mode (see BatchOptions).
  void QueryBatch(std::span<const RectBatchQuery> queries, Rng* rng,
                  ScratchArena* arena, const BatchOptions& opts,
                  PointBatchResult* result) const;

  // Convenience: default options.
  void QueryBatch(std::span<const RectBatchQuery> queries, Rng* rng,
                  ScratchArena* arena, PointBatchResult* result) const;

  const Quadtree& tree() const { return tree_; }

  size_t MemoryBytes() const {
    return tree_.MemoryBytes() + engine_.MemoryBytes();
  }

 private:
  Quadtree tree_;
  CoverageEngine engine_;
};

}  // namespace iqs::multidim

#endif  // IQS_MULTIDIM_QUADTREE_H_
