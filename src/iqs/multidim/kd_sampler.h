// IQS over a kd-tree (paper Section 5, Theorem 5 instantiated): O(n)
// space, O(sqrt n + s) query for 2-d weighted rectangle sampling —
// the structure the paper credits to Xie et al. [27], improving the
// quadtree result of Looz & Meyerhenke [24].
//
// Also exposes the disk variants: exact-cover sampling and the Theorem-6
// approximate-cover + rejection path, plus the r-fair nearest neighbor
// query of Section 2 (an IQS disk query with s = 1).

#ifndef IQS_MULTIDIM_KD_SAMPLER_H_
#define IQS_MULTIDIM_KD_SAMPLER_H_

#include <optional>
#include <span>
#include <vector>

#include "iqs/cover/coverage_engine.h"
#include "iqs/multidim/kd_tree.h"
#include "iqs/multidim/multidim_batch.h"
#include "iqs/multidim/point.h"
#include "iqs/util/rng.h"
#include "iqs/util/scratch_arena.h"

namespace iqs::multidim {

class KdTreeSampler {
 public:
  // `weights` parallel to `points`; pass {} for WR (unit) weights.
  KdTreeSampler(std::span<const Point2> points,
                std::span<const double> weights);

  // Draws `s` independent weighted samples from S ∩ q, appending the
  // sampled points to `out`. Returns false (appending nothing) when the
  // rectangle is empty of points. O(sqrt n + s).
  bool QueryRect(const Rect& q, size_t s, Rng* rng,
                 std::vector<Point2>* out) const;

  // Batched serving fast path (mirrors RangeSampler::QueryBatch): covers
  // every rectangle once, then serves all draws of the batch through one
  // CoverExecutor run over the shared coverage engine. Same per-query law
  // as QueryRect; draws are independent across queries. All scratch comes
  // from `arena`; with a reused arena and result the steady state performs
  // zero heap allocations beyond retained capacity.
  // opts.num_threads >= 1 serves the batch in the deterministic parallel
  // mode, opts.telemetry attaches an observability sink (see
  // BatchOptions). Canonical order (queries, rng, arena, opts, &result).
  void QueryBatch(std::span<const RectBatchQuery> queries, Rng* rng,
                  ScratchArena* arena, const BatchOptions& opts,
                  PointBatchResult* result) const;

  // Convenience: default options.
  void QueryBatch(std::span<const RectBatchQuery> queries, Rng* rng,
                  ScratchArena* arena, PointBatchResult* result) const;

  // Same for the disk dist(center, .) <= radius, using the exact cover.
  bool QueryDisk(const Point2& center, double radius, size_t s, Rng* rng,
                 std::vector<Point2>* out) const;

  // Theorem-6 path: approximate cover (boxes within `slack` * radius
  // diagonal) + rejection. Same output law as QueryDisk; different (often
  // smaller) cover-finding cost, measured in bench_approx_cover.
  bool QueryDiskApprox(const Point2& center, double radius, size_t s,
                       double slack, Rng* rng,
                       std::vector<Point2>* out) const;

  // r-fair nearest neighbor (paper Section 2, Benefit 2): a uniformly
  // random point among those within distance `radius` of `center`,
  // independent across calls. nullopt when no point qualifies.
  std::optional<Point2> FairNearNeighbor(const Point2& center, double radius,
                                         Rng* rng) const;

  // Halfplane sampling { p : a*x + b*y <= c } — the 2-d cousin of the
  // halfspace IQS problem the paper's Section 6 targets, served by the
  // generic region cover. Exact law; cover size O(sqrt n).
  bool QueryHalfplane(double a, double b, double c, size_t s, Rng* rng,
                      std::vector<Point2>* out) const;

  const KdTree& tree() const { return tree_; }

  size_t MemoryBytes() const {
    return tree_.MemoryBytes() + engine_.MemoryBytes();
  }

 private:
  KdTree tree_;
  CoverageEngine engine_;
};

}  // namespace iqs::multidim

#endif  // IQS_MULTIDIM_KD_SAMPLER_H_
