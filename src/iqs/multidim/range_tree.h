// 2-d range tree with IQS sampling (paper Sections 3.2 and 5).
//
// Primary tree over x (balanced, built on the x-sorted order); every
// primary node stores its points sorted by y together with weight prefix
// sums and a Theorem-3 chunked sampler over that y-order. Space
// O(n log n) — each point appears in the secondary structure of its
// O(log n) ancestors, matching the paper's bound for d = 2.
//
// A rectangle query finds the O(log n) canonical x-nodes and narrows each
// to a contiguous y-run. Per the paper's footnote 5, the y-runs are
// located by FRACTIONAL CASCADING: one binary search at the root, then
// O(1) bridge lookups per visited node (each node stores, per merged
// y-position, how many of the preceding entries came from its left
// child). The budget is split multinomially and each active run sampled
// through the node's chunked sampler. This is the structure the paper
// attributes to Martinez [20] upgraded by Theorem 5 + footnote 5:
// O(log n) cover finding instead of O(log² n) (our Lemma-4 substitute
// still adds O(log n) per *active run*; see DESIGN.md 2.4).

#ifndef IQS_MULTIDIM_RANGE_TREE_H_
#define IQS_MULTIDIM_RANGE_TREE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "iqs/multidim/multidim_batch.h"
#include "iqs/multidim/point.h"
#include "iqs/util/batch_options.h"
#include "iqs/range/chunked_range_sampler.h"
#include "iqs/util/rng.h"
#include "iqs/util/scratch_arena.h"

namespace iqs::multidim {

class RangeTree2DSampler {
 public:
  // `weights` parallel to `points`; {} for unit weights. Build
  // O(n log² n) time, O(n log n) space. `leaf_size` caps primary-leaf
  // width (larger leaves trade query constants for space).
  RangeTree2DSampler(std::span<const Point2> points,
                     std::span<const double> weights, size_t leaf_size = 16);

  // Draws `s` independent weighted samples from S ∩ q, appending points
  // to `out`; false when the rectangle holds no point.
  bool QueryRect(const Rect& q, size_t s, Rng* rng,
                 std::vector<Point2>* out) const;

  // Batched serving fast path (mirrors RangeSampler::QueryBatch). All
  // queries' pieces are enumerated into one CoverPlan; the CoverExecutor
  // performs the multinomial splits, then the per-group draws are
  // coalesced BY SECONDARY NODE so pieces of different queries that land
  // in the same node's y-structure share one chunked batched call (and
  // its cross-query prefetch pipeline). opts.num_threads >= 1 serves
  // the coalesced node runs in the deterministic parallel mode, one RNG
  // substream per run (see BatchOptions).
  // Canonical order (queries, rng, arena, opts, &result).
  void QueryBatch(std::span<const RectBatchQuery> queries, Rng* rng,
                  ScratchArena* arena, const BatchOptions& opts,
                  PointBatchResult* result) const;

  // Convenience: default options.
  void QueryBatch(std::span<const RectBatchQuery> queries, Rng* rng,
                  ScratchArena* arena, PointBatchResult* result) const;

  // Reporting oracle for tests.
  void Report(const Rect& q, std::vector<size_t>* out) const;

  size_t n() const { return points_by_x_.size(); }
  const Point2& PointById(size_t id) const { return points_by_x_[id]; }

  size_t MemoryBytes() const;

 private:
  struct Node {
    uint32_t x_lo = 0;
    uint32_t x_hi = 0;  // inclusive x-order positions
    uint32_t left = kNull;
    uint32_t right = kNull;
    // Points below this node, sorted by y. ids index points_by_x_.
    std::vector<uint32_t> ids_by_y;
    std::vector<double> y_sorted_ys;       // y values (root binary search)
    std::vector<double> weight_prefix;     // prefix sums of y-order weights
    // Fractional cascading bridge: bridge_left[i] = how many of the first
    // i merged y-entries belong to the left child (empty at leaves).
    std::vector<uint32_t> bridge_left;
    std::unique_ptr<ChunkedRangeSampler> sampler;
  };
  static constexpr uint32_t kNull = ~uint32_t{0};

  uint32_t Build(size_t lo, size_t hi);

  // A query piece: node + y-run [y_a, y_b] in that node's y-order.
  struct Piece {
    uint32_t node;
    uint32_t y_a;
    uint32_t y_b;
    double weight;
  };
  // Canonical descent carrying the half-open y-index range [ya, yb) per
  // node via the cascading bridges; [a, b] is the inclusive x-range.
  void CollectPieces(const Rect& q, size_t a, size_t b,
                     std::vector<Piece>* pieces) const;

  // Resolves the query's x-interval to inclusive x-order positions.
  bool ResolveX(const Rect& q, size_t* a, size_t* b) const;

  size_t leaf_size_;
  std::vector<Point2> points_by_x_;  // x-sorted; "id" = x-order position
  std::vector<double> weights_by_x_;
  std::vector<Node> nodes_;
};

}  // namespace iqs::multidim

#endif  // IQS_MULTIDIM_RANGE_TREE_H_
