// Bottom-k (KMV) distinct-count sketch — our stand-in for the sketch the
// paper cites as [9] in Section 7 (see DESIGN.md 2.4): O(k) words,
// O(log k) per insertion, O(1) estimation with relative error ~1/sqrt(k),
// and mergeable: sketch(A) + sketch(B) -> sketch(A ∪ B).
//
// Elements are 64-bit ids; each is hashed to a uniform 64-bit value, and
// the sketch keeps the k smallest distinct hashes. With fewer than k
// hashes the count is exact; otherwise the k-th smallest hash v yields the
// classic estimator (k - 1) / v_normalized.

#ifndef IQS_SKETCH_KMV_SKETCH_H_
#define IQS_SKETCH_KMV_SKETCH_H_

#include <cstdint>
#include <set>

#include "iqs/util/check.h"

namespace iqs {

class KmvSketch {
 public:
  explicit KmvSketch(size_t k) : k_(k) { IQS_CHECK(k >= 2); }

  // Inserts an element (idempotent). O(log k).
  void Add(uint64_t element) { AddHash(Hash(element)); }

  // Estimates the number of distinct elements inserted. O(1)-ish (last
  // element access in a std::set is O(log k)).
  double EstimateDistinct() const {
    if (hashes_.size() < k_) return static_cast<double>(hashes_.size());
    const double kth = static_cast<double>(*hashes_.rbegin());
    const double normalized = kth / 18446744073709551616.0;  // 2^64
    return (static_cast<double>(k_) - 1.0) / normalized;
  }

  // Merges `other` into this sketch; the result sketches the union.
  void Merge(const KmvSketch& other) {
    for (uint64_t h : other.hashes_) AddHash(h);
  }

  size_t k() const { return k_; }
  size_t stored() const { return hashes_.size(); }

  size_t MemoryBytes() const {
    // std::set node overhead ~3 pointers + color + value.
    return hashes_.size() * (sizeof(uint64_t) + 4 * sizeof(void*));
  }

  // The mixing hash, exposed for tests.
  static uint64_t Hash(uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

 private:
  void AddHash(uint64_t h) {
    if (hashes_.size() == k_ && h >= *hashes_.rbegin()) return;
    hashes_.insert(h);
    if (hashes_.size() > k_) hashes_.erase(std::prev(hashes_.end()));
  }

  size_t k_;
  std::set<uint64_t> hashes_;
};

}  // namespace iqs

#endif  // IQS_SKETCH_KMV_SKETCH_H_
