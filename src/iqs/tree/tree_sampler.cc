#include "iqs/tree/tree_sampler.h"

namespace iqs {

TreeSampler::TreeSampler(const WeightedTree* tree) : tree_(tree) {
  IQS_CHECK(tree_ != nullptr && tree_->finalized());
  child_alias_.resize(tree_->num_nodes());
  std::vector<double> scratch;
  for (WeightedTree::NodeId u = 0; u < tree_->num_nodes(); ++u) {
    const auto& children = tree_->Children(u);
    if (children.empty()) continue;
    scratch.clear();
    for (WeightedTree::NodeId child : children) {
      scratch.push_back(tree_->Weight(child));
    }
    child_alias_[u].Build(scratch);
  }
}

WeightedTree::NodeId TreeSampler::SampleLeaf(WeightedTree::NodeId q,
                                             Rng* rng) const {
  IQS_DCHECK(q < tree_->num_nodes());
  while (!tree_->IsLeaf(q)) {
    q = tree_->Children(q)[child_alias_[q].Sample(rng)];
  }
  return q;
}

size_t TreeSampler::MemoryBytes() const {
  size_t bytes = child_alias_.capacity() * sizeof(AliasTable);
  for (const AliasTable& table : child_alias_) bytes += table.MemoryBytes();
  return bytes;
}

}  // namespace iqs
