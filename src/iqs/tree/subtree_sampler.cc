#include "iqs/tree/subtree_sampler.h"

#include <numeric>

#include "iqs/cover/cover_executor.h"
#include "iqs/util/telemetry.h"

namespace iqs {

SubtreeSampler::SubtreeSampler(const WeightedTree* tree) : tree_(tree) {
  IQS_CHECK(tree_ != nullptr && tree_->finalized());
  const size_t num_nodes = tree_->num_nodes();
  interval_lo_.assign(num_nodes, 0);
  interval_hi_.assign(num_nodes, 0);

  // Iterative DFT computing Π and each node's leaf interval. A node's
  // interval spans from the first leaf seen after entering it to the last
  // leaf seen before leaving it.
  struct Frame {
    WeightedTree::NodeId node;
    size_t next_child;
  };
  std::vector<Frame> stack;
  stack.push_back({tree_->root(), 0});
  while (!stack.empty()) {
    Frame& frame = stack.back();
    const WeightedTree::NodeId u = frame.node;
    if (frame.next_child == 0) {  // entering u
      interval_lo_[u] = static_cast<uint32_t>(leaf_sequence_.size());
      if (tree_->IsLeaf(u)) {
        leaf_sequence_.push_back(u);
        interval_hi_[u] = interval_lo_[u];
        stack.pop_back();
        continue;
      }
    }
    if (frame.next_child < tree_->Children(u).size()) {
      const WeightedTree::NodeId child = tree_->Children(u)[frame.next_child];
      ++frame.next_child;
      stack.push_back({child, 0});
    } else {  // leaving u
      interval_hi_[u] = static_cast<uint32_t>(leaf_sequence_.size()) - 1;
      stack.pop_back();
    }
  }
  IQS_CHECK(!leaf_sequence_.empty());

  // Weighted range sampling over Π: positions are Euler-tour order.
  std::vector<double> position_keys(leaf_sequence_.size());
  std::iota(position_keys.begin(), position_keys.end(), 0.0);
  std::vector<double> leaf_weights(leaf_sequence_.size());
  for (size_t p = 0; p < leaf_sequence_.size(); ++p) {
    leaf_weights[p] = tree_->Weight(leaf_sequence_[p]);
  }
  range_sampler_ =
      std::make_unique<ChunkedRangeSampler>(position_keys, leaf_weights);
}

void SubtreeSampler::Query(WeightedTree::NodeId q, size_t s, Rng* rng,
                           std::vector<WeightedTree::NodeId>* out) const {
  IQS_CHECK(q < tree_->num_nodes());
  if (s == 0) return;
  std::vector<size_t> positions;
  positions.reserve(s);
  range_sampler_->QueryPositions(interval_lo_[q], interval_hi_[q], s, rng,
                                 &positions);
  out->reserve(out->size() + s);
  for (size_t p : positions) out->push_back(leaf_sequence_[p]);
}

void SubtreeSampler::QueryBatch(std::span<const SubtreeBatchQuery> queries,
                                Rng* rng, ScratchArena* arena,
                                BatchResult* result) const {
  QueryBatch(queries, rng, arena, BatchOptions{}, result);
}

void SubtreeSampler::QueryBatch(std::span<const SubtreeBatchQuery> queries,
                                Rng* rng, ScratchArena* arena,
                                const BatchOptions& opts,
                                BatchResult* result) const {
  const uint64_t start_ns = opts.telemetry != nullptr ? TelemetryNowNs() : 0;
  result->Clear();
  arena->Reset();
  thread_local CoverPlan plan;
  plan.Clear();
  const size_t nq = queries.size();
  result->resolved.resize(nq);
  result->offsets.resize(nq + 1);
  size_t total_samples = 0;
  for (size_t i = 0; i < nq; ++i) {
    const WeightedTree::NodeId u = queries[i].node;
    IQS_DCHECK(u < tree_->num_nodes());
    result->offsets[i] = total_samples;
    result->resolved[i] = 1;
    plan.BeginQuery(queries[i].s);
    if (queries[i].s == 0) continue;
    plan.AddGroup(interval_lo_[u], interval_hi_[u], tree_->Weight(u), u);
    total_samples += queries[i].s;
  }
  result->offsets[nq] = total_samples;

  result->positions.clear();
  result->positions.reserve(total_samples);
  CoverExecutor::ExecuteOverSampler(plan, *range_sampler_, rng, arena, opts,
                                    &result->positions);
  IQS_CHECK(result->positions.size() == total_samples);
  for (size_t& p : result->positions) p = leaf_sequence_[p];
  if (opts.telemetry != nullptr) {
    opts.telemetry->shard(0)->latency.Record(TelemetryNowNs() - start_ns);
  }
}

size_t SubtreeSampler::MemoryBytes() const {
  return leaf_sequence_.capacity() * sizeof(WeightedTree::NodeId) +
         interval_lo_.capacity() * sizeof(uint32_t) +
         interval_hi_.capacity() * sizeof(uint32_t) +
         (range_sampler_ != nullptr ? range_sampler_->MemoryBytes() : 0);
}

}  // namespace iqs
