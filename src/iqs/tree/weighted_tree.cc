#include "iqs/tree/weighted_tree.h"

namespace iqs {

void WeightedTree::Finalize() {
  IQS_CHECK(!finalized_);
  // Iterative post-order: children were always appended after their
  // parent, so ids in decreasing order visit children before parents.
  for (size_t i = nodes_.size(); i-- > 0;) {
    Node& node = nodes_[i];
    if (node.children.empty()) {
      // iqs-lint: allow(check-in-loop) -- cold build-path input validation
      IQS_CHECK(node.weight > 0.0);
      node.leaf_count = 1;
      continue;
    }
    node.weight = 0.0;
    node.leaf_count = 0;
    for (NodeId child : node.children) {
      node.weight += nodes_[child].weight;
      node.leaf_count += nodes_[child].leaf_count;
    }
  }
  finalized_ = true;
}

}  // namespace iqs
