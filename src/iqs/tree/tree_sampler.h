// Tree sampling, top-down variant (paper Section 3.2).
//
// Stores one alias table per internal node over its children's subtree
// weights: O(n) total space, O(n) build. A query at node q draws each
// weighted leaf sample by walking down from q, choosing a child in O(1)
// per level — O(subtree height) per sample, O(s * height) per query. The
// improved O(log n + s) / O(1 + s) variant is SubtreeSampler (Lemma 4).

#ifndef IQS_TREE_TREE_SAMPLER_H_
#define IQS_TREE_TREE_SAMPLER_H_

#include <vector>

#include "iqs/alias/alias_table.h"
#include "iqs/tree/weighted_tree.h"
#include "iqs/util/rng.h"

namespace iqs {

class TreeSampler {
 public:
  // `tree` must be finalized and outlive the sampler.
  explicit TreeSampler(const WeightedTree* tree);

  // Draws one weighted leaf sample from the subtree of q: leaf z with
  // probability w(z) / w(q). O(height of q's subtree).
  WeightedTree::NodeId SampleLeaf(WeightedTree::NodeId q, Rng* rng) const;

  // Draws `s` independent samples, appending leaf ids to `out`.
  void Query(WeightedTree::NodeId q, size_t s, Rng* rng,
             std::vector<WeightedTree::NodeId>* out) const {
    out->reserve(out->size() + s);
    for (size_t i = 0; i < s; ++i) out->push_back(SampleLeaf(q, rng));
  }

  size_t MemoryBytes() const;

 private:
  const WeightedTree* tree_;
  std::vector<AliasTable> child_alias_;  // empty table at leaves
};

}  // namespace iqs

#endif  // IQS_TREE_TREE_SAMPLER_H_
