// A general rooted tree with weighted leaves — the input object of the
// tree sampling problem (paper Section 3.2). Arbitrary fanout; every leaf
// carries a positive weight; each internal node's weight is the total
// weight of the leaves below it (computed by Finalize()).

#ifndef IQS_TREE_WEIGHTED_TREE_H_
#define IQS_TREE_WEIGHTED_TREE_H_

#include <cstdint>
#include <vector>

#include "iqs/util/check.h"

namespace iqs {

class WeightedTree {
 public:
  using NodeId = uint32_t;

  // Creates a tree with a single root node (id 0).
  WeightedTree() : nodes_(1) {}

  // Adds a child under `parent`; returns the new node's id.
  // Must be called before Finalize().
  NodeId AddChild(NodeId parent) {
    IQS_CHECK(!finalized_);
    IQS_CHECK(parent < nodes_.size());
    const NodeId id = static_cast<NodeId>(nodes_.size());
    nodes_.emplace_back();
    nodes_[id].parent = parent;
    nodes_[parent].children.push_back(id);
    return id;
  }

  // Sets the weight of a (current) leaf. Nodes that receive children later
  // have their weight recomputed by Finalize().
  void SetLeafWeight(NodeId leaf, double w) {
    IQS_CHECK(!finalized_);
    IQS_CHECK(w > 0.0);
    nodes_[leaf].weight = w;
  }

  // Validates the tree (every leaf has positive weight) and computes
  // internal-node weights bottom-up. O(n).
  void Finalize();

  size_t num_nodes() const { return nodes_.size(); }
  NodeId root() const { return 0; }
  bool IsLeaf(NodeId u) const { return nodes_[u].children.empty(); }
  double Weight(NodeId u) const { return nodes_[u].weight; }
  NodeId Parent(NodeId u) const { return nodes_[u].parent; }
  const std::vector<NodeId>& Children(NodeId u) const {
    return nodes_[u].children;
  }
  bool finalized() const { return finalized_; }

  // Number of leaves below u (filled in by Finalize()).
  size_t SubtreeLeafCount(NodeId u) const { return nodes_[u].leaf_count; }

 private:
  struct Node {
    NodeId parent = 0;
    double weight = 0.0;
    uint32_t leaf_count = 0;
    std::vector<NodeId> children;
  };

  std::vector<Node> nodes_;
  bool finalized_ = false;
};

}  // namespace iqs

#endif  // IQS_TREE_WEIGHTED_TREE_H_
