// Subtree sampling via the Euler-tour reduction (paper Section 5, Lemma 4).
//
// A depth-first traversal lists the leaves of T as a sequence Π; each
// node's subtree leaves form a contiguous run Π[a..b] (Proposition 1), and
// the run endpoints are stored at the node during preprocessing, so a
// subtree query needs no searching. Drawing s weighted samples from the
// subtree of q is then weighted range sampling over Π[a_q .. b_q], served
// by the Theorem-3 chunked structure in O(n) space.
//
// Substitution note (DESIGN.md section 2.4): the true Lemma 4 bound is
// O(1 + s) per query via Afshani-Wei's machinery; this implementation
// costs O(log n + s) worst case — identical once s = Ω(log n), and the
// Theorem-5/6 engines that consume this structure additionally keep a
// per-cover alias so their stated bounds are preserved.

#ifndef IQS_TREE_SUBTREE_SAMPLER_H_
#define IQS_TREE_SUBTREE_SAMPLER_H_

#include <memory>
#include <span>
#include <vector>

#include "iqs/range/chunked_range_sampler.h"
#include "iqs/range/range_sampler.h"  // BatchResult
#include "iqs/tree/weighted_tree.h"
#include "iqs/util/rng.h"
#include "iqs/util/scratch_arena.h"

namespace iqs {

// One subtree query of a serving batch: draw `s` independent weighted
// leaf samples from the subtree of `node`.
struct SubtreeBatchQuery {
  WeightedTree::NodeId node = 0;
  size_t s = 0;
};

class SubtreeSampler {
 public:
  // `tree` must be finalized and outlive the sampler. O(n) build.
  explicit SubtreeSampler(const WeightedTree* tree);

  // Draws `s` independent weighted leaf samples from the subtree of q,
  // appending leaf ids to `out`. O(log n + s).
  void Query(WeightedTree::NodeId q, size_t s, Rng* rng,
             std::vector<WeightedTree::NodeId>* out) const;

  // Batched serving fast path: each query's subtree is exactly one
  // Euler-tour group (Proposition 1), so the whole batch rides a single
  // CoverExecutor run over the Theorem-3 chunked structure — the grouped
  // cross-query pipeline of RangeSampler::QueryBatch applied to Π.
  // result->positions holds leaf ids. Every query resolves (a subtree
  // always contains a leaf).
  // opts.num_threads >= 1 serves the batch in the deterministic
  // parallel mode (see BatchOptions). Canonical order
  // (queries, rng, arena, opts, &result).
  void QueryBatch(std::span<const SubtreeBatchQuery> queries, Rng* rng,
                  ScratchArena* arena, const BatchOptions& opts,
                  BatchResult* result) const;

  // Convenience: default options.
  void QueryBatch(std::span<const SubtreeBatchQuery> queries, Rng* rng,
                  ScratchArena* arena, BatchResult* result) const;

  // The Euler-tour leaf interval of node q (inclusive positions in Π).
  std::pair<size_t, size_t> LeafInterval(WeightedTree::NodeId q) const {
    return {interval_lo_[q], interval_hi_[q]};
  }

  // Leaf id at Euler-tour position p.
  WeightedTree::NodeId LeafAt(size_t p) const { return leaf_sequence_[p]; }

  size_t MemoryBytes() const;

 private:
  const WeightedTree* tree_;
  std::vector<WeightedTree::NodeId> leaf_sequence_;  // Π
  std::vector<uint32_t> interval_lo_;
  std::vector<uint32_t> interval_hi_;
  std::unique_ptr<ChunkedRangeSampler> range_sampler_;
};

}  // namespace iqs

#endif  // IQS_TREE_SUBTREE_SAMPLER_H_
