#include "iqs/setunion/set_union_sampler.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "iqs/util/check.h"

namespace iqs {

namespace {

// Assigns a fresh random rank to every distinct element appearing in
// `sets_by_rank`, then re-sorts each set by rank.
template <typename Sets>
void AssignRanks(Sets* sets_by_rank, size_t universe_size, Rng* rng) {
  std::unordered_map<uint64_t, uint32_t> rank_of;
  rank_of.reserve(universe_size * 2);
  std::vector<uint32_t> ranks(universe_size);
  for (uint32_t i = 0; i < universe_size; ++i) ranks[i] = i;
  for (size_t i = universe_size; i > 1; --i) {
    std::swap(ranks[i - 1], ranks[rng->Below(i)]);
  }
  size_t next = 0;
  for (auto& ranked : *sets_by_rank) {
    for (auto& entry : ranked) {
      auto [it, inserted] = rank_of.emplace(entry.element, 0);
      if (inserted) it->second = ranks[next++];
      entry.rank = it->second;
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) { return a.rank < b.rank; });
  }
  IQS_CHECK(next == universe_size);
}

}  // namespace

SetUnionSampler::SetUnionSampler(
    const std::vector<std::vector<uint64_t>>& sets, Rng* build_rng,
    Options options,
    const std::unordered_map<uint64_t, double>& element_weights)
    : options_(options) {
  IQS_CHECK(options_.sketch_k >= 2);
  // Count distinct elements and populate per-set entries.
  std::unordered_set<uint64_t> distinct;
  sets_by_rank_.resize(sets.size());
  sketches_.reserve(sets.size());
  set_max_weight_.reserve(sets.size());
  for (size_t i = 0; i < sets.size(); ++i) {
    KmvSketch sketch(options_.sketch_k);
    auto& ranked = sets_by_rank_[i];
    ranked.reserve(sets[i].size());
    double max_weight = 0.0;
    for (uint64_t element : sets[i]) {
      ++total_size_;
      distinct.insert(element);
      double weight = 1.0;
      if (const auto it = element_weights.find(element);
          it != element_weights.end()) {
        // iqs-lint: allow(check-in-loop) -- cold build-path input validation
        IQS_CHECK(it->second > 0.0);
        weight = it->second;
      }
      max_weight = std::max(max_weight, weight);
      ranked.push_back({0, element, weight});
      sketch.Add(element);
    }
    sketches_.push_back(std::move(sketch));
    set_max_weight_.push_back(max_weight);
  }
  universe_size_ = distinct.size();

  AssignRanks(&sets_by_rank_, universe_size_, build_rng);
  for (const auto& ranked : sets_by_rank_) {
    for (size_t j = 1; j < ranked.size(); ++j) {
      // iqs-lint: allow(check-in-loop) -- cold build-path input validation
      IQS_CHECK(ranked[j - 1].rank != ranked[j].rank &&
                "duplicate element within a set");
    }
  }

  const double log_n =
      std::log2(std::max<double>(4.0, static_cast<double>(total_size_)));
  slice_cap_ = std::max(2.0, options_.slice_cap_multiplier * log_n);
}

void SetUnionSampler::Rebuild(Rng* rng) {
  AssignRanks(&sets_by_rank_, universe_size_, rng);
}

void SetUnionSampler::SliceSet(
    size_t set_id, uint32_t rank_lo, uint32_t rank_hi,
    std::vector<std::pair<uint64_t, double>>* out) const {
  const auto& ranked = sets_by_rank_[set_id];
  auto it = std::lower_bound(ranked.begin(), ranked.end(), rank_lo,
                             [](const RankedElement& e, uint32_t r) {
                               return e.rank < r;
                             });
  for (; it != ranked.end() && it->rank < rank_hi; ++it) {
    out->emplace_back(it->element, it->weight);
  }
}

double SetUnionSampler::EstimateUnionSize(
    std::span<const size_t> set_ids) const {
  IQS_CHECK(!set_ids.empty());
  KmvSketch merged = sketches_[set_ids[0]];
  for (size_t i = 1; i < set_ids.size(); ++i) {
    IQS_DCHECK(set_ids[i] < sketches_.size());
    merged.Merge(sketches_[set_ids[i]]);
  }
  return merged.EstimateDistinct();
}

std::optional<uint64_t> SetUnionSampler::SampleImpl(
    std::span<const size_t> set_ids, bool weighted, Rng* rng) const {
  if (set_ids.empty()) return std::nullopt;
  const double estimate = EstimateUnionSize(set_ids);
  if (estimate < 0.5) return std::nullopt;  // all named sets empty
  const uint64_t num_intervals =
      std::max<uint64_t>(1, static_cast<uint64_t>(std::llround(estimate)));
  const double interval_len =
      static_cast<double>(universe_size_) / static_cast<double>(num_intervals);
  const size_t m = static_cast<size_t>(slice_cap_);
  double max_weight = 1.0;
  if (weighted) {
    max_weight = 0.0;
    for (size_t id : set_ids) {
      max_weight = std::max(max_weight, set_max_weight_[id]);
    }
    if (max_weight <= 0.0) return std::nullopt;
  }

  std::vector<std::pair<uint64_t, double>> slice;
  // Expected Θ(m) rounds (times w_max/w_avg when weighted); the hard cap
  // only trips on adversarial inputs.
  const size_t max_rounds = 100000 * (m + 1);
  for (size_t round = 0; round < max_rounds; ++round) {
    const uint64_t j = rng->Below(num_intervals);
    const uint32_t rank_lo = static_cast<uint32_t>(
        std::min<double>(static_cast<double>(j) * interval_len,
                         static_cast<double>(universe_size_)));
    const uint32_t rank_hi =
        j + 1 == num_intervals
            ? static_cast<uint32_t>(universe_size_)
            : static_cast<uint32_t>(
                  std::min<double>(static_cast<double>(j + 1) * interval_len,
                                   static_cast<double>(universe_size_)));
    if (rank_lo >= rank_hi) continue;
    slice.clear();
    for (size_t set_id : set_ids) {
      SliceSet(set_id, rank_lo, rank_hi, &slice);
    }
    if (slice.empty()) continue;
    std::sort(slice.begin(), slice.end());
    slice.erase(std::unique(slice.begin(), slice.end()), slice.end());
    if (slice.size() > m) continue;  // event (4) failed for this interval
    if (!weighted) {
      // Coin with heads probability |slice| / m equalizes element mass.
      if (rng->NextDouble() * static_cast<double>(m) <
          static_cast<double>(slice.size())) {
        return slice[rng->Below(slice.size())].first;
      }
      continue;
    }
    // Weighted: heads probability W(slice) / (m * w_max), then inverse-CDF
    // within the (tiny) slice — every element lands w(e)-proportional.
    double slice_weight = 0.0;
    for (const auto& [element, weight] : slice) slice_weight += weight;
    double target =
        rng->NextDouble() * static_cast<double>(m) * max_weight;
    if (target >= slice_weight) continue;  // tails
    for (const auto& [element, weight] : slice) {
      if (target < weight) return element;
      target -= weight;
    }
  }
  IQS_CHECK(false && "set union sampling failed to converge");
  return std::nullopt;
}

std::optional<uint64_t> SetUnionSampler::Sample(
    std::span<const size_t> set_ids, Rng* rng) const {
  return SampleImpl(set_ids, /*weighted=*/false, rng);
}

std::optional<uint64_t> SetUnionSampler::SampleWeighted(
    std::span<const size_t> set_ids, Rng* rng) const {
  return SampleImpl(set_ids, /*weighted=*/true, rng);
}

bool SetUnionSampler::SampleMany(std::span<const size_t> set_ids, size_t s,
                                 Rng* rng,
                                 std::vector<uint64_t>* out) const {
  std::optional<uint64_t> first = Sample(set_ids, rng);
  if (!first.has_value()) return false;
  out->reserve(out->size() + s);
  if (s == 0) return true;
  out->push_back(*first);
  for (size_t i = 1; i < s; ++i) out->push_back(*Sample(set_ids, rng));
  return true;
}

std::optional<uint64_t> SetUnionSampler::NaiveUnionSample(
    const std::vector<std::vector<uint64_t>>& sets,
    std::span<const size_t> set_ids, Rng* rng) {
  std::unordered_set<uint64_t> all;
  for (size_t id : set_ids) {
    all.insert(sets[id].begin(), sets[id].end());
  }
  if (all.empty()) return std::nullopt;
  const size_t target = rng->Below(all.size());
  size_t i = 0;
  for (uint64_t element : all) {
    if (i++ == target) return element;
  }
  return std::nullopt;
}

size_t SetUnionSampler::MemoryBytes() const {
  size_t bytes = set_max_weight_.capacity() * sizeof(double);
  for (const auto& ranked : sets_by_rank_) {
    bytes += ranked.capacity() * sizeof(RankedElement);
  }
  for (const KmvSketch& sketch : sketches_) bytes += sketch.MemoryBytes();
  return bytes;
}

}  // namespace iqs
