// Technique 4 — random permutation: the set union sampling structure of
// paper Section 7 (Theorem 8).
//
// Input: a collection F of sets over a common element domain. A query
// names a subcollection G ⊆ F and receives an element drawn uniformly at
// random from the union of G's sets — duplicates across sets must NOT bias
// the draw — independent across queries.
//
// Structure (paper Section 7):
//   * one global random permutation of all distinct elements assigns each
//     a rank;
//   * each set stores its elements sorted by rank (the "BST" that reports
//     a set's elements with ranks in [a, b] is a binary search + scan);
//   * each set carries a mergeable bottom-k distinct-count sketch used to
//     estimate |union of G| within a constant factor at query time.
//
// A query cuts the rank space into ~|union| equal intervals; each round
// picks one interval uniformly, materializes the union restricted to it
// (expected O(1) elements), and accepts by a coin with heads probability
// |slice| / m where m = Θ(log n). Acceptance makes every element exactly
// equally likely (paper equation (5)); expected O(log n) rounds of
// O(g log n) work each give the O(g log² n) bound of Theorem 8, versus
// O(sum of |S_i|) for the naive materialize-then-sample baseline.
//
// Space: O(n) — rank arrays total n entries, and a bottom-k sketch stores
// min(|S|, k) hashes, so all sketches together are O(n) as well.

#ifndef IQS_SETUNION_SET_UNION_SAMPLER_H_
#define IQS_SETUNION_SET_UNION_SAMPLER_H_

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "iqs/sketch/kmv_sketch.h"
#include "iqs/util/rng.h"

namespace iqs {

class SetUnionSampler {
 public:
  struct Options {
    // Bottom-k sketch size; error ~1/sqrt(k). 64 keeps the estimate well
    // inside the [U/2, 1.5U] window the algorithm needs.
    size_t sketch_k = 64;
    // Slice-size cap multiplier: m = slice_cap_multiplier * log2(n).
    double slice_cap_multiplier = 4.0;
  };

  // `sets` may share elements; empty member sets are allowed. The global
  // permutation is drawn from `build_rng`. O(n log n) build.
  // `element_weights` (optional, parallel-by-lookup) assigns each element
  // a positive weight for SampleWeighted; elements absent from the map
  // weigh 1. An element shared by several sets must have ONE weight.
  SetUnionSampler(const std::vector<std::vector<uint64_t>>& sets,
                  Rng* build_rng, Options options,
                  const std::unordered_map<uint64_t, double>&
                      element_weights = {});
  SetUnionSampler(const std::vector<std::vector<uint64_t>>& sets,
                  Rng* build_rng)
      : SetUnionSampler(sets, build_rng, Options{}) {}

  // Draws a fresh global permutation (paper Section 7: rebuild after ~n
  // queries to keep the all-queries failure probability bounded).
  // O(n log n) expected.
  void Rebuild(Rng* rng);

  // Draws one uniform sample from the union of the named sets.
  // nullopt when the union is empty. Expected O(g log² n).
  std::optional<uint64_t> Sample(std::span<const size_t> set_ids,
                                 Rng* rng) const;

  // WEIGHTED set union sampling (the paper's Section 6/7 remark, after
  // Afshani & Phillips): returns element e of the union with probability
  // w(e) / W(union). The acceptance coin is scaled by the maximum element
  // weight among the named sets, so the expected repeat count carries an
  // extra w_max / w_avg factor relative to Sample() — fine for bounded
  // skew, documented in DESIGN.md.
  std::optional<uint64_t> SampleWeighted(std::span<const size_t> set_ids,
                                         Rng* rng) const;

  // Draws `s` independent samples (appended to `out`); returns false when
  // the union is empty.
  bool SampleMany(std::span<const size_t> set_ids, size_t s, Rng* rng,
                  std::vector<uint64_t>* out) const;

  // Sketch-based estimate of |union of G| (relative error ~1/sqrt(k)).
  double EstimateUnionSize(std::span<const size_t> set_ids) const;

  // Baseline for E8: materialize the union, then sample. O(sum |S_i|).
  static std::optional<uint64_t> NaiveUnionSample(
      const std::vector<std::vector<uint64_t>>& sets,
      std::span<const size_t> set_ids, Rng* rng);

  size_t num_sets() const { return sets_by_rank_.size(); }
  size_t universe_size() const { return universe_size_; }
  size_t total_size() const { return total_size_; }

  size_t MemoryBytes() const;

 private:
  struct RankedElement {
    uint32_t rank;
    uint64_t element;
    double weight;
  };

  // Appends the (element, weight) pairs of set `set_id` with rank in
  // [rank_lo, rank_hi) to `out`. O(log |S| + output).
  void SliceSet(size_t set_id, uint32_t rank_lo, uint32_t rank_hi,
                std::vector<std::pair<uint64_t, double>>* out) const;

  // Shared rejection loop: `weighted` selects the element-mass law.
  std::optional<uint64_t> SampleImpl(std::span<const size_t> set_ids,
                                     bool weighted, Rng* rng) const;

  Options options_;
  size_t universe_size_ = 0;   // U: distinct elements across all sets
  size_t total_size_ = 0;      // n: sum of set sizes
  double slice_cap_ = 1.0;     // m
  std::vector<std::vector<RankedElement>> sets_by_rank_;
  std::vector<KmvSketch> sketches_;
  std::vector<double> set_max_weight_;
};

}  // namespace iqs

#endif  // IQS_SETUNION_SET_UNION_SAMPLER_H_
