// Batch request/result types for the join-sampling workload
// (iqs/join/join_sampler.h) — the join analogue of BatchQuery /
// BatchResult in range_sampler.h.
//
// A join query carries no predicate: the joined relations are fixed at
// JoinSampler construction, so a query is just a sample budget s and the
// answer is s i.i.d. uniform pairs from the join result J. The flat
// result layout mirrors BatchResult so the serve frontend (and any other
// generic consumer of the canonical batch family) can host join traffic
// unchanged: Clear(), SamplesFor(i), resolved[].

#ifndef IQS_JOIN_JOIN_BATCH_H_
#define IQS_JOIN_JOIN_BATCH_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "iqs/util/check.h"

namespace iqs::join {

// One join-sampling query of a serving batch: draw `s` i.i.d. uniform
// pairs from the join result of the sampler's two relations.
struct JoinBatchQuery {
  size_t s = 0;
};

// One sampled join pair: indices into the R and S inputs the JoinSampler
// was built from (r_id indexes the first relation, s_id the second).
struct JoinPair {
  uint32_t r_id = 0;
  uint32_t s_id = 0;

  friend bool operator==(const JoinPair&, const JoinPair&) = default;
};

// Flat result of a SampleJoinBatch call. Pairs for query i occupy
// pairs[offsets[i] .. offsets[i+1]); when the join result is empty every
// query has resolved[i] == 0 and an empty slice. Reusing one result
// across calls amortizes its buffers away.
struct JoinBatchResult {
  std::vector<JoinPair> pairs;
  std::vector<size_t> offsets;    // size num_queries() + 1
  std::vector<uint8_t> resolved;  // 1 iff the join result is nonempty

  size_t num_queries() const { return resolved.size(); }

  std::span<const JoinPair> SamplesFor(size_t i) const {
    IQS_DCHECK(i + 1 < offsets.size());
    return std::span<const JoinPair>(pairs).subspan(
        offsets[i], offsets[i + 1] - offsets[i]);
  }

  void Clear() {
    pairs.clear();
    offsets.clear();
    resolved.clear();
  }
};

}  // namespace iqs::join

#endif  // IQS_JOIN_JOIN_BATCH_H_
