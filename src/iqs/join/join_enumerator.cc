#include "iqs/join/join_enumerator.h"

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "iqs/join/join_batch.h"
#include "iqs/multidim/point.h"
#include "iqs/util/check.h"
#include "iqs/util/rng.h"

namespace iqs::join {
namespace {

constexpr uint8_t kStart = 0;
constexpr uint8_t kEnd = 1;

struct SweepEvent {
  double x;
  uint8_t type;  // kStart sorts before kEnd at equal x => closed intervals
  uint8_t rel;   // 0 = r, 1 = s
  uint32_t id;
};

// Total order (x, type, rel, id): STARTs before ENDs at equal x make
// touching x-extents join; the (rel, id) tail makes ties deterministic.
bool EventLess(const SweepEvent& a, const SweepEvent& b) {
  if (a.x != b.x) return a.x < b.x;
  if (a.type != b.type) return a.type < b.type;
  if (a.rel != b.rel) return a.rel < b.rel;
  return a.id < b.id;
}

std::vector<SweepEvent> BuildEvents(std::span<const multidim::Rect> r,
                                    std::span<const multidim::Rect> s) {
  std::vector<SweepEvent> events;
  events.reserve(2 * (r.size() + s.size()));
  for (uint32_t i = 0; i < r.size(); ++i) {
    IQS_DCHECK(r[i].x_lo <= r[i].x_hi && r[i].y_lo <= r[i].y_hi);
    events.push_back({r[i].x_lo, kStart, 0, i});
    events.push_back({r[i].x_hi, kEnd, 0, i});
  }
  for (uint32_t i = 0; i < s.size(); ++i) {
    IQS_DCHECK(s[i].x_lo <= s[i].x_hi && s[i].y_lo <= s[i].y_hi);
    events.push_back({s[i].x_lo, kStart, 1, i});
    events.push_back({s[i].x_hi, kEnd, 1, i});
  }
  std::sort(events.begin(), events.end(), EventLess);
  return events;
}

// Swap-remove active list; slot_of tracks each id's position so END
// events are O(1).
struct ActiveList {
  struct Entry {
    uint32_t id;
    double y_lo, y_hi;
  };
  std::vector<Entry> entries;
  std::vector<uint32_t> slot_of;

  explicit ActiveList(size_t m) : slot_of(m, 0) { entries.reserve(64); }

  void Insert(uint32_t id, double y_lo, double y_hi) {
    slot_of[id] = static_cast<uint32_t>(entries.size());
    entries.push_back({id, y_lo, y_hi});
  }

  void Erase(uint32_t id) {
    const uint32_t slot = slot_of[id];
    IQS_DCHECK(slot < entries.size() && entries[slot].id == id);
    entries[slot] = entries.back();
    slot_of[entries[slot].id] = slot;
    entries.pop_back();
  }
};

}  // namespace

uint64_t EnumerateJoin(std::span<const multidim::Rect> r,
                       std::span<const multidim::Rect> s, JoinPairSink emit,
                       void* ctx) {
  const std::vector<SweepEvent> events = BuildEvents(r, s);
  ActiveList active_r(r.size());
  ActiveList active_s(s.size());
  uint64_t total = 0;
  for (const SweepEvent& e : events) {
    if (e.type == kEnd) {
      (e.rel == 0 ? active_r : active_s).Erase(e.id);
      continue;
    }
    // Charge each joining pair to the later START: scan the opposite
    // active set before activating (matches JoinSampler's weights).
    const multidim::Rect& rect = (e.rel == 0 ? r : s)[e.id];
    const ActiveList& other = e.rel == 0 ? active_s : active_r;
    for (const ActiveList::Entry& a : other.entries) {
      if (a.y_lo <= rect.y_hi && a.y_hi >= rect.y_lo) {
        ++total;
        if (emit != nullptr) {
          if (e.rel == 0) {
            emit(ctx, e.id, a.id);
          } else {
            emit(ctx, a.id, e.id);
          }
        }
      }
    }
    (e.rel == 0 ? active_r : active_s).Insert(e.id, rect.y_lo, rect.y_hi);
  }
  IQS_DCHECK(active_r.entries.empty() && active_s.entries.empty());
  return total;
}

uint64_t EnumerateJoinPairs(std::span<const multidim::Rect> r,
                            std::span<const multidim::Rect> s,
                            std::vector<JoinPair>* out) {
  out->clear();
  return EnumerateJoin(
      r, s,
      [](void* ctx, uint32_t r_id, uint32_t s_id) {
        static_cast<std::vector<JoinPair>*>(ctx)->push_back({r_id, s_id});
      },
      out);
}

void BruteForceJoinSample(std::span<const multidim::Rect> r,
                          std::span<const multidim::Rect> s, size_t budget,
                          Rng* rng, std::vector<JoinPair>* out) {
  out->clear();
  const uint64_t join_size = EnumerateJoin(r, s, nullptr, nullptr);
  if (join_size == 0 || budget == 0) return;

  // Sorted with-replacement index multiset, then a collecting sweep that
  // pops matches as the enumeration order reaches them.
  std::vector<uint64_t> picks(budget);
  rng->FillBelow(join_size, picks);
  std::sort(picks.begin(), picks.end());

  struct Collect {
    const std::vector<uint64_t>* picks;
    std::vector<JoinPair>* out;
    uint64_t seen = 0;
    size_t next = 0;
  } collect{&picks, out, 0, 0};
  EnumerateJoin(
      r, s,
      [](void* ctx, uint32_t r_id, uint32_t s_id) {
        Collect* c = static_cast<Collect*>(ctx);
        while (c->next < c->picks->size() && (*c->picks)[c->next] == c->seen) {
          c->out->push_back({r_id, s_id});
          ++c->next;
        }
        ++c->seen;
      },
      &collect);
  IQS_DCHECK(out->size() == budget);

  // The collecting sweep yields pairs in enumeration order; i.i.d.
  // consumers need an exchangeable order (same contract as
  // QueryPositions, see sampling/wor_query.cc), so shuffle.
  for (size_t i = out->size(); i > 1; --i) {
    std::swap((*out)[i - 1], (*out)[rng->Below(i)]);
  }
}

}  // namespace iqs::join
