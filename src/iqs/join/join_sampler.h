// JoinSampler — i.i.d. uniform sampling from the result of a 2-d
// rectangle intersection join WITHOUT materializing it (ROADMAP item 3;
// the SJS three-phase shape of SNIPPETS.md §2 lowered onto this
// library's cover pipeline).
//
// Join: J = { (r, s) : r.Intersects(s) } over two relations of closed
// rectangles. |J| can be Θ(n^2) while a query only wants s independent
// uniform pairs — the enumeration cost is exactly what the paper's IQS
// separation (query time independent of the result size) eliminates, and
// this module is the generality test of that machinery beyond range
// queries.
//
// Three phases:
//   1. (construction) Plane-sweep on x in rank space. Each relation keeps
//      an Activate/Deactivate structure over its y-extents
//      (join/active_rank_tree.h); at every START event e the OPPOSITE
//      tree counts K_e = active rectangles with y-overlap, charging each
//      joining pair to the LATER of its two starts (query before
//      activate), so |J| = sum of the per-event weights w_e = |K_e|. An
//      alias table over {w_e} is built once.
//   2. (per batch) The alias table assigns every sample slot of the batch
//      to its START event in O(1) per draw — the event marginal must be
//      w_e / |J| for pairs to be uniform over J.
//   3. (per batch) A second sweep replays the events; at a drawing event
//      the opposite tree's active set is re-enumerated as weighted
//      contiguous runs into a CoverPlan, and pending plan queries are
//      flushed through CoverExecutor::ExecuteOverSampler (over the
//      tree's Fenwick-backed RangeSampler view) each time their tree is
//      about to change. There is NO bespoke draw loop: the multinomial
//      split across an event's runs, per-query RNG substreams,
//      parallelism and telemetry are all the shared executor pipeline.
//
// Costs: construction O(n B log_B n log n); a batch with total budget s
// costs O(n log_B n log n + s log n) — independent of |J|. Space
// O(n log_B n).
//
// Concurrency: SampleJoinBatch is const and thread-safe, but the sweep
// mutates the trees (they return to all-inactive at the end), so
// concurrent batches SERIALIZE on an internal mutex; inner executor
// parallelism (opts.num_threads) still applies within a batch. Shard a
// serve frontend over multiple JoinSampler replicas for sweep-level
// parallelism.
//
// Determinism: fixed seed + fixed inputs give byte-identical batches;
// parallel mode (num_threads >= 1) is bit-identical for EVERY thread
// count (the executor's per-query substream contract), sequential mode
// (num_threads == 0) is a different, also-deterministic stream.

#ifndef IQS_JOIN_JOIN_SAMPLER_H_
#define IQS_JOIN_JOIN_SAMPLER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "iqs/alias/alias_table.h"
#include "iqs/join/active_rank_tree.h"
#include "iqs/join/join_batch.h"
#include "iqs/multidim/point.h"
#include "iqs/util/batch_options.h"
#include "iqs/util/rng.h"
#include "iqs/util/scratch_arena.h"
#include "iqs/util/thread_annotations.h"

namespace iqs::join {

struct JoinSamplerOptions {
  // Block-size base of the active trees: space n*log_B n, covers of
  // B*log_B n runs per event. 16 balances both at the bench scales.
  size_t branching = 16;
};

class JoinSampler {
 public:
  // Copies the relations (rect ids in sampled pairs index these spans)
  // and runs phase 1. Rectangles must be well-formed (lo <= hi per axis).
  JoinSampler(std::span<const multidim::Rect> r,
              std::span<const multidim::Rect> s,
              JoinSamplerOptions options = {});

  size_t num_r() const { return r_.size(); }
  size_t num_s() const { return s_.size(); }

  // Exact join cardinality |J| (a phase-1 byproduct — the sweep counts
  // the join without enumerating it).
  uint64_t JoinSize() const { return join_size_; }

  // THE CANONICAL BATCH SIGNATURE (see RangeSampler::QueryBatch): for
  // each query draws q.s i.i.d. uniform pairs from J into `result`
  // (cleared first), flat with per-query offsets. When J is empty every
  // query has resolved[i] == 0 and an empty slice. Per-query draws obey
  // the usual ORDERING CONTRACT (i.i.d. multiset, order unspecified —
  // here grouped by sweep event); shuffle for an i.i.d. sequence.
  void SampleJoinBatch(std::span<const JoinBatchQuery> queries, Rng* rng,
                       ScratchArena* arena, const BatchOptions& opts,
                       JoinBatchResult* result) const;

  // Convenience: default options.
  void SampleJoinBatch(std::span<const JoinBatchQuery> queries, Rng* rng,
                       ScratchArena* arena, JoinBatchResult* result) const {
    SampleJoinBatch(queries, rng, arena, BatchOptions{}, result);
  }

  size_t MemoryBytes() const;

 private:
  struct SweepEvent {
    double x;
    uint8_t type;  // start sorts before end at equal x (closed intervals)
    uint8_t rel;   // 0 = r, 1 = s
    uint32_t id;
  };

  static constexpr uint32_t kNotDrawing = ~0u;

  const multidim::Rect& RectOf(const SweepEvent& e) const {
    return (e.rel == 0 ? r_ : s_)[e.id];
  }

  std::vector<multidim::Rect> r_;
  std::vector<multidim::Rect> s_;
  JoinSamplerOptions options_;
  std::vector<SweepEvent> events_;          // sorted sweep order
  std::vector<uint32_t> start_rank_of_;     // per event; kNotDrawing if w_e=0
  std::vector<double> start_weight_;        // per start rank: w_e
  std::vector<uint32_t> event_of_rank_;     // start rank -> event index
  AliasTable alias_;                        // over start_weight_
  uint64_t join_size_ = 0;

  // Phase-3 scratch: the trees mutate during the replay sweep (and end
  // back at all-inactive), so batches serialize here.
  mutable Mutex mu_;
  mutable ActiveRankTree tree_r_ IQS_GUARDED_BY(mu_);
  mutable ActiveRankTree tree_s_ IQS_GUARDED_BY(mu_);
};

}  // namespace iqs::join

#endif  // IQS_JOIN_JOIN_SAMPLER_H_
