// Brute-force rectangle-join baselines: output-sensitive enumeration and
// enumeration-based i.i.d. sampling. These are the oracle the join
// sampler's law tests compare against and the baseline E26 benchmarks
// against — they materialize (or re-scan) the join result J, which is
// exactly the cost JoinSampler exists to avoid.

#ifndef IQS_JOIN_JOIN_ENUMERATOR_H_
#define IQS_JOIN_JOIN_ENUMERATOR_H_

#include <cstdint>
#include <span>
#include <vector>

#include "iqs/join/join_batch.h"
#include "iqs/multidim/point.h"
#include "iqs/util/rng.h"

namespace iqs::join {

// Plane-sweep enumeration of the intersection join of `r` and `s`
// (closed rectangles, multidim::Rect::Intersects semantics): invokes
// emit(r_id, s_id) once per joining pair in a deterministic order and
// returns |J|. Cost O(n log n + |J|) — output-sensitive, so it is the
// strongest fair brute-force baseline (a nested loop would flatter the
// sampler). Pass emit = nullptr to count only.
using JoinPairSink = void (*)(void* ctx, uint32_t r_id, uint32_t s_id);
uint64_t EnumerateJoin(std::span<const multidim::Rect> r,
                       std::span<const multidim::Rect> s, JoinPairSink emit,
                       void* ctx);

// Convenience: materializes the full join result.
uint64_t EnumerateJoinPairs(std::span<const multidim::Rect> r,
                            std::span<const multidim::Rect> s,
                            std::vector<JoinPair>* out);

// Brute-force i.i.d. (with-replacement) uniform sample of `budget` pairs
// from the join result: one counting sweep to learn |J|, `budget` sorted
// uniform draws in [0, |J|), then a second sweep collecting the selected
// pairs. Two passes over the join is the honest enumeration+reservoir
// analogue for WITH-replacement semantics (classic reservoir-R is
// without-replacement); cost O(2|J| + budget log budget). Empty join =>
// `out` is cleared and left empty.
void BruteForceJoinSample(std::span<const multidim::Rect> r,
                          std::span<const multidim::Rect> s, size_t budget,
                          Rng* rng, std::vector<JoinPair>* out);

}  // namespace iqs::join

#endif  // IQS_JOIN_JOIN_ENUMERATOR_H_
