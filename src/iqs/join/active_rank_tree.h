// The Activate/Deactivate structure behind join sampling
// (iqs/join/join_sampler.h) — the dynamic side of the plane sweep.
//
// One ActiveRankTree indexes ONE relation's y-extents. During the sweep
// on x, a rectangle is Activate()d at its START event and Deactivate()d
// at its END event; at the OTHER relation's START events the tree
// answers, over the currently active set,
//
//   K_e = { j active : y_lo(j) <= e.y_hi  AND  y_hi(j) >= e.y_lo }
//
// (closed-interval y-overlap) as either a count (phase 1 of the join
// sampler) or a weighted cover of contiguous position runs (phase 3).
//
// Layout: elements are embedded in rank space by sorting on (y_lo, id) —
// the (value, id) tie-break plays the role of SJS's global rank
// embedding, making every comparison exact without epsilons. The y_lo
// condition then selects a PREFIX [0, p) of that order. The prefix is
// decomposed over `levels` block granularities (level k holds aligned
// blocks of `branching`^k consecutive ylo-positions; level 0 is
// singletons), each block storing its elements re-sorted by (y_hi, id) so
// the y_hi condition selects a contiguous SUFFIX run of the block. All
// blocks of all levels are concatenated into one global position space of
// N = levels * m slots; a Fenwick tree of 0/1 activity over that space
// turns each run into (active count, uniform draw) in O(log N). A query
// therefore becomes <= branching * levels disjoint runs — exactly the
// weighted-disjoint-group currency of CoverPlan, which is how join draws
// ride the shared CoverExecutor pipeline.
//
// Costs for m elements, branching B: space O(m log_B m); Activate /
// Deactivate O(log_B m * log N); AppendActiveCover O(B log_B m * log N);
// one uniform draw O(log N). CountActive is O(log m): counting (unlike
// cover enumeration, which must produce contiguous DRAWABLE runs) needs
// no block decomposition — for well-formed intervals the two ways an
// active element can miss the query (y_lo too high, y_hi too low) are
// disjoint, so two rank-space Fenwicks (one per endpoint order) answer
//   |K_e| = #active(y_lo <= a) - #active(y_hi < b)
// exactly. The phase-1 sweep leans on this; phase 3 cross-checks it
// against AppendActiveCover's block totals (IQS_DCHECK in the sampler).
//
// Concurrency: Activate/Deactivate are writer operations and must be
// externally serialized against everything else (JoinSampler runs the
// whole sweep under one lock). The read side (counts, covers, sampler
// draws) is const and safe to run concurrently BETWEEN mutations — the
// join sampler's flush discipline guarantees exactly that.

#ifndef IQS_JOIN_ACTIVE_RANK_TREE_H_
#define IQS_JOIN_ACTIVE_RANK_TREE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "iqs/cover/cover_plan.h"
#include "iqs/multidim/point.h"
#include "iqs/range/range_sampler.h"
#include "iqs/util/check.h"
#include "iqs/util/rng.h"
#include "iqs/util/scratch_arena.h"

namespace iqs::join {

// Fenwick tree over small nonnegative integer counts (0/1 activity here):
// point add, prefix count, and k-th-set-position selection, all O(log n).
// A count sibling of range/fenwick_tree.h's double tree — selection must
// be exact on integers, and half-width cells keep the hot sweep loop in
// cache.
class CountFenwick {
 public:
  CountFenwick() = default;
  explicit CountFenwick(size_t n) : tree_(n + 1, 0), size_(n) {}

  size_t size() const { return size_; }

  void Add(size_t i, int32_t delta) {
    IQS_DCHECK(i < size_);
    for (size_t j = i + 1; j < tree_.size(); j += j & (~j + 1)) {
      tree_[j] = static_cast<uint32_t>(static_cast<int64_t>(tree_[j]) + delta);
    }
  }

  // Count of set units in positions [0, i).
  uint64_t PrefixCount(size_t i) const {
    IQS_DCHECK(i <= size_);
    uint64_t sum = 0;
    for (size_t j = i; j > 0; j -= j & (~j + 1)) sum += tree_[j];
    return sum;
  }

  // Count of set units in positions [lo, hi] inclusive.
  uint64_t RangeCount(size_t lo, size_t hi) const {
    IQS_DCHECK(lo <= hi && hi < size_);
    return PrefixCount(hi + 1) - PrefixCount(lo);
  }

  uint64_t Total() const { return PrefixCount(size_); }

  // Position of the (k+1)-th set unit (0-based k < Total()): the smallest
  // position pos with PrefixCount(pos + 1) > k. O(log n) top-down.
  size_t SelectKth(uint64_t k) const {
    IQS_DCHECK(size_ > 0);
    IQS_DCHECK(k < Total());
    size_t pos = 0;
    size_t mask = 1;
    while ((mask << 1) <= size_) mask <<= 1;
    for (; mask > 0; mask >>= 1) {
      const size_t next = pos + mask;
      if (next < tree_.size() && tree_[next] <= k) {
        k -= tree_[next];
        pos = next;
      }
    }
    return pos;
  }

  size_t MemoryBytes() const { return tree_.capacity() * sizeof(uint32_t); }

 private:
  std::vector<uint32_t> tree_;
  size_t size_ = 0;
};

class ActiveRankTree;

// RangeSampler view over an ActiveRankTree's global position space:
// positions [a, b] are slots of the blocked layout, weights are the live
// 0/1 activity bits, and a draw is a uniform pick among the active slots
// of the range (Fenwick count + k-th selection). This is the sampler
// handed to CoverExecutor::ExecuteOverSampler in the join sampler's
// phase 3 — cover groups enumerated by AppendActiveCover are position
// ranges over exactly this view.
class ActiveSetSampler final : public RangeSampler {
 public:
  void QueryPositions(size_t a, size_t b, size_t s, Rng* rng,
                      std::vector<size_t>* out) const override;
  void QueryPositionsBatch(std::span<const PositionQuery> queries, Rng* rng,
                           ScratchArena* arena, const BatchOptions& opts,
                           std::vector<size_t>* out) const override;
  size_t MemoryBytes() const override;
  std::string_view name() const override { return "join-active-set"; }

 private:
  friend class ActiveRankTree;
  ActiveSetSampler(std::span<const double> slot_keys,
                   const CountFenwick* fenwick)
      : RangeSampler(slot_keys), fenwick_(fenwick) {}

  const CountFenwick* fenwick_;  // owned by the ActiveRankTree
};

class ActiveRankTree {
 public:
  // Indexes the y-extents of `rects` (ids are positions in the span).
  // `branching` is the block-size base B (>= 2); space grows as
  // m * ceil(log_B m) slots, query covers as B * ceil(log_B m) runs.
  explicit ActiveRankTree(std::span<const multidim::Rect> rects,
                          size_t branching = 16);

  size_t m() const { return m_; }
  size_t num_levels() const { return levels_; }
  size_t num_slots() const { return ids_by_slot_.size(); }

  // Writer side (the sweep). Activating an element flips its `levels_`
  // copies live; ids must alternate Activate/Deactivate.
  void Activate(uint32_t id);
  void Deactivate(uint32_t id);
  uint64_t active_total() const { return fenwick_.Total(); }

  // |K_e| over the current active set (phase-1 weights).
  uint64_t CountActive(double ylo_max, double yhi_min) const;

  // Appends K_e's canonical runs to the CURRENT query of `plan` (the
  // caller has done BeginQuery), each with weight = its live active
  // count; returns the total (== CountActive on the same state). Runs are
  // position ranges over sampler()'s space, emitted coarse-to-fine then
  // left-to-right — a fixed order, so plans are deterministic.
  uint64_t AppendActiveCover(double ylo_max, double yhi_min,
                             CoverPlan* plan) const;

  // Maps a sampled slot back to the input id (every slot of an element's
  // level copies carries the same id).
  uint32_t IdAt(size_t slot) const {
    IQS_DCHECK(slot < ids_by_slot_.size());
    return ids_by_slot_[slot];
  }

  // The RangeSampler view for ExecuteOverSampler; valid whenever m() > 0.
  const RangeSampler& sampler() const {
    IQS_DCHECK(sampler_ != nullptr);
    return *sampler_;
  }

  size_t MemoryBytes() const;

 private:
  // Decomposes the ylo-order prefix [0, p) into aligned blocks, coarse to
  // fine, invoking fn(level, block_first_pos, block_end_pos) per block.
  template <typename Fn>
  void ForEachPrefixBlock(size_t p, Fn&& fn) const {
    size_t pos = 0;
    size_t level = levels_;
    while (level > 0) {
      --level;
      const size_t block = block_size_[level];
      while (pos + block <= p) {
        fn(level, pos, pos + block);
        pos += block;
      }
    }
  }

  // Global slot range of ylo-positions [first, end) at `level` (the block
  // starting at `first` — callers pass aligned blocks).
  size_t SlotBase(size_t level, size_t first) const {
    return level * m_ + first;
  }

  size_t branching_ = 0;
  size_t levels_ = 0;
  size_t m_ = 0;
  std::vector<size_t> block_size_;     // per level: branching_^level
  std::vector<double> ylo_by_rank_;    // ylo-order y_lo values (prefix search)
  std::vector<uint32_t> ylo_pos_of_id_;
  std::vector<uint32_t> ids_by_slot_;  // global space: element ids
  std::vector<double> yhi_by_slot_;    // global space: y_hi values (run search)
  std::vector<uint32_t> slot_of_;      // [ylo_pos * levels_ + level] -> slot
  CountFenwick fenwick_;
  std::vector<double> slot_keys_;      // iota keys for the RangeSampler base
  std::unique_ptr<ActiveSetSampler> sampler_;
  // The O(log m) counting side: activity per endpoint rank order, for the
  // complement-trick CountActive (see header comment).
  std::vector<double> yhi_by_rank_;    // yhi-order y_hi values (rank search)
  std::vector<uint32_t> yhi_pos_of_id_;
  CountFenwick ylo_count_;             // activity over ylo ranks
  CountFenwick yhi_count_;             // activity over yhi ranks
};

}  // namespace iqs::join

#endif  // IQS_JOIN_ACTIVE_RANK_TREE_H_
