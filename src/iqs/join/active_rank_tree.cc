#include "iqs/join/active_rank_tree.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <numeric>
#include <span>
#include <vector>

#include "iqs/cover/cover_plan.h"
#include "iqs/multidim/point.h"
#include "iqs/util/check.h"
#include "iqs/util/rng.h"
#include "iqs/util/scratch_arena.h"

namespace iqs::join {

void ActiveSetSampler::QueryPositions(size_t a, size_t b, size_t s, Rng* rng,
                                      std::vector<size_t>* out) const {
  IQS_DCHECK(a <= b && b < size());
  const uint64_t below = fenwick_->PrefixCount(a);
  const uint64_t count = fenwick_->PrefixCount(b + 1) - below;
  IQS_DCHECK(count > 0);  // cover groups carry weight = live active count
  // Block the uniform draws through FillBelow (the shared SIMD-friendly
  // path), then resolve each to the k-th active slot of the range.
  constexpr size_t kDrawBlock = 64;
  uint64_t block[kDrawBlock];
  size_t done = 0;
  while (done < s) {
    const size_t chunk = std::min(s - done, kDrawBlock);
    rng->FillBelow(count, std::span<uint64_t>(block, chunk));
    for (size_t i = 0; i < chunk; ++i) {
      out->push_back(fenwick_->SelectKth(below + block[i]));
    }
    done += chunk;
  }
}

void ActiveSetSampler::QueryPositionsBatch(
    std::span<const PositionQuery> queries, Rng* rng, ScratchArena* arena,
    const BatchOptions& opts, std::vector<size_t>* out) const {
  (void)arena;
  (void)opts;  // the leaf draw is sequential; parallelism lives above us
  for (const PositionQuery& q : queries) {
    QueryPositions(q.a, q.b, q.s, rng, out);
  }
}

size_t ActiveSetSampler::MemoryBytes() const {
  return keys().capacity() * sizeof(double);  // fenwick charged to the tree
}

ActiveRankTree::ActiveRankTree(std::span<const multidim::Rect> rects,
                               size_t branching)
    : branching_(branching), m_(rects.size()) {
  IQS_CHECK(branching_ >= 2);
  if (m_ == 0) return;  // degenerate tree: no slots, no sampler

  // Level sizes 1, B, B^2, ... until one more level of blocks could not
  // shrink the digit count: B^(levels-1) * B >= m bounds every prefix
  // decomposition by `branching_` blocks per level.
  block_size_.push_back(1);
  while (block_size_.back() * branching_ < m_) {
    block_size_.push_back(block_size_.back() * branching_);
  }
  levels_ = block_size_.size();

  // Rank-space embedding: ylo order is (y_lo, id) ascending. Ties broken
  // by id keep every derived order a deterministic function of the input.
  std::vector<uint32_t> ylo_order(m_);
  std::iota(ylo_order.begin(), ylo_order.end(), 0u);
  std::sort(ylo_order.begin(), ylo_order.end(),
            [&rects](uint32_t a, uint32_t b) {
              if (rects[a].y_lo != rects[b].y_lo) {
                return rects[a].y_lo < rects[b].y_lo;
              }
              return a < b;
            });

  ylo_by_rank_.resize(m_);
  ylo_pos_of_id_.resize(m_);
  for (size_t pos = 0; pos < m_; ++pos) {
    ylo_by_rank_[pos] = rects[ylo_order[pos]].y_lo;
    ylo_pos_of_id_[ylo_order[pos]] = static_cast<uint32_t>(pos);
  }

  // Global slot space: level k owns [k*m, (k+1)*m); block j of level k
  // owns the slots of ylo-positions [j*B^k, min((j+1)*B^k, m)), its
  // elements re-sorted by (y_hi, id).
  const size_t num_slots = levels_ * m_;
  ids_by_slot_.resize(num_slots);
  yhi_by_slot_.resize(num_slots);
  slot_of_.resize(num_slots);
  std::vector<uint32_t> scratch;
  for (size_t level = 0; level < levels_; ++level) {
    const size_t block = block_size_[level];
    for (size_t first = 0; first < m_; first += block) {
      const size_t end = std::min(first + block, m_);
      scratch.assign(ylo_order.begin() + first, ylo_order.begin() + end);
      std::sort(scratch.begin(), scratch.end(),
                [&rects](uint32_t a, uint32_t b) {
                  if (rects[a].y_hi != rects[b].y_hi) {
                    return rects[a].y_hi < rects[b].y_hi;
                  }
                  return a < b;
                });
      const size_t base = SlotBase(level, first);
      for (size_t i = 0; i < scratch.size(); ++i) {
        const uint32_t id = scratch[i];
        const size_t slot = base + i;
        ids_by_slot_[slot] = id;
        yhi_by_slot_[slot] = rects[id].y_hi;
        slot_of_[static_cast<size_t>(ylo_pos_of_id_[id]) * levels_ + level] =
            static_cast<uint32_t>(slot);
      }
    }
  }

  fenwick_ = CountFenwick(num_slots);
  slot_keys_.resize(num_slots);
  std::iota(slot_keys_.begin(), slot_keys_.end(), 0.0);
  sampler_ = std::unique_ptr<ActiveSetSampler>(
      new ActiveSetSampler(slot_keys_, &fenwick_));

  // The counting side: a second rank order on (y_hi, id), plus one
  // activity Fenwick per endpoint order (see CountActive).
  std::vector<uint32_t> yhi_order(m_);
  std::iota(yhi_order.begin(), yhi_order.end(), 0u);
  std::sort(yhi_order.begin(), yhi_order.end(),
            [&rects](uint32_t a, uint32_t b) {
              if (rects[a].y_hi != rects[b].y_hi) {
                return rects[a].y_hi < rects[b].y_hi;
              }
              return a < b;
            });
  yhi_by_rank_.resize(m_);
  yhi_pos_of_id_.resize(m_);
  for (size_t pos = 0; pos < m_; ++pos) {
    yhi_by_rank_[pos] = rects[yhi_order[pos]].y_hi;
    yhi_pos_of_id_[yhi_order[pos]] = static_cast<uint32_t>(pos);
  }
  ylo_count_ = CountFenwick(m_);
  yhi_count_ = CountFenwick(m_);
}

void ActiveRankTree::Activate(uint32_t id) {
  IQS_DCHECK(id < m_);
  const size_t base = static_cast<size_t>(ylo_pos_of_id_[id]) * levels_;
  for (size_t level = 0; level < levels_; ++level) {
    fenwick_.Add(slot_of_[base + level], +1);
  }
  ylo_count_.Add(ylo_pos_of_id_[id], +1);
  yhi_count_.Add(yhi_pos_of_id_[id], +1);
}

void ActiveRankTree::Deactivate(uint32_t id) {
  IQS_DCHECK(id < m_);
  const size_t base = static_cast<size_t>(ylo_pos_of_id_[id]) * levels_;
  for (size_t level = 0; level < levels_; ++level) {
    fenwick_.Add(slot_of_[base + level], -1);
  }
  ylo_count_.Add(ylo_pos_of_id_[id], -1);
  yhi_count_.Add(yhi_pos_of_id_[id], -1);
}

uint64_t ActiveRankTree::CountActive(double ylo_max, double yhi_min) const {
  if (m_ == 0) return 0;
  IQS_DCHECK(yhi_min <= ylo_max);  // a well-formed query interval
  // Complement trick (header comment): an active element misses the query
  // iff y_lo > ylo_max or y_hi < yhi_min, and for well-formed intervals
  // (y_lo <= y_hi, yhi_min <= ylo_max) those misses are disjoint AND every
  // y_hi < yhi_min element already has y_lo <= ylo_max. So
  //   |K_e| = #active(y_lo <= ylo_max) - #active(y_hi < yhi_min),
  // two prefix counts over the endpoint rank orders — no block walk.
  const size_t p = static_cast<size_t>(
      std::upper_bound(ylo_by_rank_.begin(), ylo_by_rank_.end(), ylo_max) -
      ylo_by_rank_.begin());
  const size_t q = static_cast<size_t>(
      std::lower_bound(yhi_by_rank_.begin(), yhi_by_rank_.end(), yhi_min) -
      yhi_by_rank_.begin());
  return ylo_count_.PrefixCount(p) - yhi_count_.PrefixCount(q);
}

uint64_t ActiveRankTree::AppendActiveCover(double ylo_max, double yhi_min,
                                           CoverPlan* plan) const {
  if (m_ == 0) return 0;
  const size_t p = static_cast<size_t>(
      std::upper_bound(ylo_by_rank_.begin(), ylo_by_rank_.end(), ylo_max) -
      ylo_by_rank_.begin());
  uint64_t total = 0;
  ForEachPrefixBlock(p, [&](size_t level, size_t first, size_t end) {
    const size_t base = SlotBase(level, first);
    const auto seg_begin = yhi_by_slot_.begin() + static_cast<ptrdiff_t>(base);
    const auto seg_end =
        yhi_by_slot_.begin() + static_cast<ptrdiff_t>(base + (end - first));
    const size_t lo =
        base + static_cast<size_t>(
                   std::lower_bound(seg_begin, seg_end, yhi_min) - seg_begin);
    const size_t hi = base + (end - first);
    if (lo >= hi) return;
    const uint64_t count = fenwick_.PrefixCount(hi) - fenwick_.PrefixCount(lo);
    if (count == 0) return;  // CoverPlan groups must carry weight > 0
    plan->AddGroup(lo, hi - 1, static_cast<double>(count));
    total += count;
  });
  return total;
}

size_t ActiveRankTree::MemoryBytes() const {
  return block_size_.capacity() * sizeof(size_t) +
         ylo_by_rank_.capacity() * sizeof(double) +
         ylo_pos_of_id_.capacity() * sizeof(uint32_t) +
         ids_by_slot_.capacity() * sizeof(uint32_t) +
         yhi_by_slot_.capacity() * sizeof(double) +
         slot_of_.capacity() * sizeof(uint32_t) + fenwick_.MemoryBytes() +
         slot_keys_.capacity() * sizeof(double) +
         yhi_by_rank_.capacity() * sizeof(double) +
         yhi_pos_of_id_.capacity() * sizeof(uint32_t) +
         ylo_count_.MemoryBytes() + yhi_count_.MemoryBytes() +
         (sampler_ ? sampler_->MemoryBytes() : 0);
}

}  // namespace iqs::join
