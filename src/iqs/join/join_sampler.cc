#include "iqs/join/join_sampler.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "iqs/cover/cover_executor.h"
#include "iqs/cover/cover_plan.h"
#include "iqs/join/active_rank_tree.h"
#include "iqs/join/join_batch.h"
#include "iqs/multidim/point.h"
#include "iqs/util/batch_options.h"
#include "iqs/util/check.h"
#include "iqs/util/rng.h"
#include "iqs/util/scratch_arena.h"
#include "iqs/util/thread_pool.h"

namespace iqs::join {
namespace {

constexpr uint8_t kStart = 0;
constexpr uint8_t kEnd = 1;

// One alias-assigned slot run of phase 2: query q owes t draws at the
// START event with the given rank.
struct DrawItem {
  uint32_t rank;
  uint32_t q;
  size_t t;
};

// A plan item of phase 3: query q draws t partners for event-side
// rectangle `id` of relation `rel`; positions come back in plan order.
struct PlanMeta {
  uint32_t q;
  uint32_t id;
  uint8_t rel;
  size_t t;
};

// Pending executor work against ONE tree: the plan (groups captured at
// enqueue time), its item metadata, and the flat position output. Batches
// serialize on the sampler mutex, so thread_local reuse is safe and keeps
// steady-state flushes allocation-free (multidim_batch.h idiom).
struct PlanState {
  CoverPlan plan;
  std::vector<PlanMeta> meta;
  std::vector<size_t> positions;
};

}  // namespace

JoinSampler::JoinSampler(std::span<const multidim::Rect> r,
                         std::span<const multidim::Rect> s,
                         JoinSamplerOptions options)
    : r_(r.begin(), r.end()),
      s_(s.begin(), s.end()),
      options_(options),
      tree_r_(r, options.branching),
      tree_s_(s, options.branching) {
  IQS_CHECK(r.size() < kNotDrawing && s.size() < kNotDrawing);

  // Sweep event order (x, START<END, rel, id): STARTs before ENDs at
  // equal x give closed-interval semantics (touching x-extents join);
  // the (rel, id) tail makes ties — and therefore every phase —
  // deterministic functions of the input.
  events_.reserve(2 * (r_.size() + s_.size()));
  for (uint32_t i = 0; i < r_.size(); ++i) {
    IQS_DCHECK(r_[i].x_lo <= r_[i].x_hi && r_[i].y_lo <= r_[i].y_hi);
    events_.push_back({r_[i].x_lo, kStart, 0, i});
    events_.push_back({r_[i].x_hi, kEnd, 0, i});
  }
  for (uint32_t i = 0; i < s_.size(); ++i) {
    IQS_DCHECK(s_[i].x_lo <= s_[i].x_hi && s_[i].y_lo <= s_[i].y_hi);
    events_.push_back({s_[i].x_lo, kStart, 1, i});
    events_.push_back({s_[i].x_hi, kEnd, 1, i});
  }
  std::sort(events_.begin(), events_.end(),
            [](const SweepEvent& a, const SweepEvent& b) {
              if (a.x != b.x) return a.x < b.x;
              if (a.type != b.type) return a.type < b.type;
              if (a.rel != b.rel) return a.rel < b.rel;
              return a.id < b.id;
            });

  // Phase 1: replay the sweep once, charging each joining pair to the
  // LATER of its two START events (count against the opposite active set
  // BEFORE activating), so the w_e partition J and sum to |J|.
  start_rank_of_.assign(events_.size(), kNotDrawing);
  MutexLock lock(&mu_);
  for (size_t ei = 0; ei < events_.size(); ++ei) {
    const SweepEvent& e = events_[ei];
    ActiveRankTree& own = e.rel == 0 ? tree_r_ : tree_s_;
    if (e.type == kEnd) {
      own.Deactivate(e.id);
      continue;
    }
    const multidim::Rect& rect = RectOf(e);
    const ActiveRankTree& opp = e.rel == 0 ? tree_s_ : tree_r_;
    const uint64_t w = opp.CountActive(rect.y_hi, rect.y_lo);
    if (w > 0) {
      start_rank_of_[ei] = static_cast<uint32_t>(start_weight_.size());
      start_weight_.push_back(static_cast<double>(w));
      event_of_rank_.push_back(static_cast<uint32_t>(ei));
      join_size_ += w;
    }
    own.Activate(e.id);
  }
  IQS_DCHECK(tree_r_.active_total() == 0 && tree_s_.active_total() == 0);
  IQS_CHECK(start_weight_.size() < kNotDrawing);
  if (!start_weight_.empty()) alias_.Build(start_weight_);
}

void JoinSampler::SampleJoinBatch(std::span<const JoinBatchQuery> queries,
                                  Rng* rng, ScratchArena* arena,
                                  const BatchOptions& opts,
                                  JoinBatchResult* result) const {
  IQS_CHECK(rng != nullptr && arena != nullptr && result != nullptr);
  IQS_CHECK(opts.max_batch == 0 || queries.size() <= opts.max_batch);
  IQS_CHECK(queries.size() < static_cast<size_t>(kNotDrawing));

  result->Clear();
  const size_t nq = queries.size();
  result->offsets.resize(nq + 1);
  result->resolved.resize(nq);
  size_t total = 0;
  for (size_t q = 0; q < nq; ++q) {
    result->offsets[q] = total;
    result->resolved[q] = join_size_ > 0 ? 1 : 0;
    if (join_size_ > 0) total += queries[q].s;
  }
  result->offsets[nq] = total;
  result->pairs.resize(total);
  if (total == 0) return;

  arena->Reset();
  MutexLock lock(&mu_);

  // Phase 2: alias-assign every slot to its START event, then run-length
  // the (event rank, query) keys into DrawItems sorted in sweep order.
  // All alias draws happen before any executor fork, so this stage is
  // identical for every opts threading mode.
  std::span<uint64_t> keys = arena->Alloc<uint64_t>(total);
  {
    thread_local std::vector<size_t> alias_draws;
    size_t k = 0;
    for (size_t q = 0; q < nq; ++q) {
      alias_draws.clear();
      alias_.SampleMany(queries[q].s, rng, &alias_draws);
      for (const size_t rank : alias_draws) {
        keys[k++] = (static_cast<uint64_t>(rank) << 32) | q;
      }
    }
    IQS_DCHECK(k == total);
  }
  std::sort(keys.begin(), keys.end());
  std::span<DrawItem> items = arena->Alloc<DrawItem>(total);
  size_t num_items = 0;
  for (size_t i = 0; i < total;) {
    size_t j = i;
    while (j < total && keys[j] == keys[i]) ++j;
    items[num_items++] = {static_cast<uint32_t>(keys[i] >> 32),
                          static_cast<uint32_t>(keys[i] & 0xffffffffu), j - i};
    i = j;
  }

  // Per-query write cursors into the flat pair buffer: draws for a query
  // arrive across many flushes but land contiguously.
  std::span<size_t> cursors = arena->Alloc<size_t>(nq);
  for (size_t q = 0; q < nq; ++q) cursors[q] = result->offsets[q];

  // Inner executor options: plan queries are (query, event) pairs, so the
  // frontend's max_batch contract does not apply below this point; one
  // pool spans all flushes instead of a transient pool per flush.
  BatchOptions inner = opts;
  inner.max_batch = 0;
  std::unique_ptr<ThreadPool> owned_pool;
  if (!inner.sequential() && inner.pool == nullptr) {
    owned_pool = std::make_unique<ThreadPool>(inner.num_threads);
    inner.pool = owned_pool.get();
  }

  thread_local PlanState state_r;  // draws FROM tree_r_ (S-side events)
  thread_local PlanState state_s;  // draws FROM tree_s_ (R-side events)
  state_r.plan.Clear();
  state_r.meta.clear();
  state_s.plan.Clear();
  state_s.meta.clear();

  // Flushes every pending plan query against `tree` through the shared
  // executor pipeline and scatters the drawn partners into the result.
  const auto flush = [&](PlanState* ps, const ActiveRankTree& tree) {
    if (ps->plan.num_queries() == 0) return;
    ps->positions.clear();
    CoverExecutor::ExecuteOverSampler(ps->plan, tree.sampler(), rng, arena,
                                      inner, &ps->positions);
    size_t off = 0;
    for (const PlanMeta& m : ps->meta) {
      for (size_t d = 0; d < m.t; ++d) {
        const uint32_t other = tree.IdAt(ps->positions[off + d]);
        result->pairs[cursors[m.q]++] = m.rel == 0
                                            ? JoinPair{m.id, other}
                                            : JoinPair{other, m.id};
      }
      off += m.t;
    }
    IQS_DCHECK(off == ps->positions.size());
    ps->plan.Clear();
    ps->meta.clear();
  };

  // Phase 3: replay the sweep. Covers are captured into the plan at the
  // drawing event (the opposite active set is exactly phase 1's), and a
  // tree's pending plan is flushed just before the tree changes, so
  // captured groups always describe the live Fenwick state they draw on.
  size_t item_idx = 0;
  for (size_t ei = 0; ei < events_.size(); ++ei) {
    const SweepEvent& e = events_[ei];
    ActiveRankTree& own = e.rel == 0 ? tree_r_ : tree_s_;
    flush(e.rel == 0 ? &state_r : &state_s, own);
    if (e.type == kEnd) {
      own.Deactivate(e.id);
      continue;
    }
    const uint32_t rank = start_rank_of_[ei];
    if (rank != kNotDrawing) {
      const ActiveRankTree& opp = e.rel == 0 ? tree_s_ : tree_r_;
      PlanState* opp_state = e.rel == 0 ? &state_s : &state_r;
      const multidim::Rect& rect = RectOf(e);
      while (item_idx < num_items && items[item_idx].rank == rank) {
        opp_state->plan.BeginQuery(items[item_idx].t);
        const uint64_t w =
            opp.AppendActiveCover(rect.y_hi, rect.y_lo, &opp_state->plan);
        IQS_DCHECK(static_cast<double>(w) == start_weight_[rank]);
        (void)w;
        opp_state->meta.push_back(
            {items[item_idx].q, e.id, e.rel, items[item_idx].t});
        ++item_idx;
      }
    }
    own.Activate(e.id);
  }
  flush(&state_r, tree_r_);
  flush(&state_s, tree_s_);
  IQS_DCHECK(item_idx == num_items);
  IQS_DCHECK(tree_r_.active_total() == 0 && tree_s_.active_total() == 0);
}

size_t JoinSampler::MemoryBytes() const {
  MutexLock lock(&mu_);
  return r_.capacity() * sizeof(multidim::Rect) +
         s_.capacity() * sizeof(multidim::Rect) +
         events_.capacity() * sizeof(SweepEvent) +
         start_rank_of_.capacity() * sizeof(uint32_t) +
         start_weight_.capacity() * sizeof(double) +
         event_of_rank_.capacity() * sizeof(uint32_t) + alias_.MemoryBytes() +
         tree_r_.MemoryBytes() + tree_s_.MemoryBytes();
}

}  // namespace iqs::join
