// libiqs — Independent Query Sampling.
//
// Umbrella header: pulls in the whole public API. Reproduces the
// techniques of "Algorithmic Techniques for Independent Query Sampling"
// (Yufei Tao, PODS 2022); see DESIGN.md for the paper-to-module map.
//
//   Technique 0 (alias method)     : iqs::AliasTable
//   Tree sampling                  : iqs::TreeSampler, iqs::SubtreeSampler
//   Technique 1 (alias augment)    : iqs::AugRangeSampler
//   Theorem 3 (chunking)           : iqs::ChunkedRangeSampler
//   Technique 2 (coverage)         : iqs::CoverageEngine + kd/quad/range trees
//   Technique 3 (approx coverage)  : iqs::ComplementRangeSampler,
//                                    KdTreeSampler::QueryDiskApprox
//   Technique 4 (random permutation): iqs::SetUnionSampler,
//                                    iqs::FairNearNeighbor
//   Section 8 (external memory)    : iqs::em::{SamplePool, EmRangeSampler,
//                                    BTree, ExternalSort, BlockDevice}
//   Section 9 extensions           : iqs::DynamicAlias, iqs::FenwickSampler,
//                                    iqs::QuantizedAlias
//   Join sampling (SJS shape)      : iqs::join::JoinSampler

#ifndef IQS_IQS_H_
#define IQS_IQS_H_

#include "iqs/alias/alias_table.h"
#include "iqs/alias/dynamic_alias.h"
#include "iqs/alias/fenwick_sampler.h"
#include "iqs/alias/quantized_alias.h"
#include "iqs/cover/complement_sampler.h"
#include "iqs/cover/cover_executor.h"
#include "iqs/cover/cover_plan.h"
#include "iqs/cover/coverage_engine.h"
#include "iqs/em/block_device.h"
#include "iqs/em/btree.h"
#include "iqs/em/buffer_pool.h"
#include "iqs/em/deamortized_pool.h"
#include "iqs/em/em_array.h"
#include "iqs/em/em_range_sampler.h"
#include "iqs/em/em_weighted_range_sampler.h"
#include "iqs/em/em_sort.h"
#include "iqs/em/sample_pool.h"
#include "iqs/em/stepwise_sort.h"
#include "iqs/em/weighted_sample_pool.h"
#include "iqs/join/active_rank_tree.h"
#include "iqs/join/join_batch.h"
#include "iqs/join/join_enumerator.h"
#include "iqs/join/join_sampler.h"
#include "iqs/lsh/euclidean_lsh.h"
#include "iqs/lsh/fair_nn.h"
#include "iqs/multidim/kd_sampler.h"
#include "iqs/multidim/kd_tree.h"
#include "iqs/multidim/kd_tree_nd.h"
#include "iqs/multidim/multidim_batch.h"
#include "iqs/multidim/point.h"
#include "iqs/multidim/quadtree.h"
#include "iqs/multidim/range_tree.h"
#include "iqs/multidim/range_tree_nd.h"
#include "iqs/range/aug_range_sampler.h"
#include "iqs/range/bst_range_sampler.h"
#include "iqs/range/chunked_range_sampler.h"
#include "iqs/range/dynamic_range_sampler.h"
#include "iqs/range/fenwick_tree.h"
#include "iqs/range/integer_range_sampler.h"
#include "iqs/range/logarithmic_range_sampler.h"
#include "iqs/range/naive_range_sampler.h"
#include "iqs/range/range_sampler.h"
#include "iqs/range/rmq.h"
#include "iqs/range/static_bst.h"
#include "iqs/sampling/dependent_range_sampler.h"
#include "iqs/sampling/estimator.h"
#include "iqs/sampling/multinomial.h"
#include "iqs/sampling/set_sampler.h"
#include "iqs/sampling/wor_query.h"
#include "iqs/serve/frontend.h"
#include "iqs/serve/serve_stats.h"
#include "iqs/serve/ticket.h"
#include "iqs/setunion/set_union_sampler.h"
#include "iqs/simd/dispatch.h"
#include "iqs/simd/kernels.h"
#include "iqs/simd/lanes.h"
#include "iqs/sketch/kmv_sketch.h"
#include "iqs/tree/subtree_sampler.h"
#include "iqs/tree/tree_sampler.h"
#include "iqs/tree/weighted_tree.h"
#include "iqs/util/batch_options.h"
#include "iqs/util/check.h"
#include "iqs/util/distributions.h"
#include "iqs/util/epoch.h"
#include "iqs/util/function_ref.h"
#include "iqs/util/rng.h"
#include "iqs/util/scratch_arena.h"
#include "iqs/util/stats.h"
#include "iqs/util/telemetry.h"
#include "iqs/util/thread_annotations.h"
#include "iqs/util/thread_pool.h"

// Convenience: the paper's headline structure under its problem name.
namespace iqs {
// Theorem 3: O(n) space, O(log n + s) weighted range sampling.
using WeightedRangeSampler = ChunkedRangeSampler;
}  // namespace iqs

#endif  // IQS_IQS_H_
