// Technique 3 — approximate coverage, on the paper's own example
// (Section 6): complement range queries. For S_q := S \ [x, y], any exact
// cover in a BST needs Ω(log n) canonical nodes for some intervals, but an
// approximate cover of size at most TWO always exists ([18]): the lowest
// left-spine subtree containing the surviving prefix and the lowest
// right-spine subtree containing the surviving suffix. Each spine subtree
// is at most ~2x larger than the part of S_q it covers, so rejection
// sampling (Theorem 6) accepts with probability >= ~1/2 per draw.
//
// This file implements both paths over the same data — the Theorem-5 exact
// cover and the Theorem-6 approximate cover — so tests can confirm the
// identical output law and bench_approx_cover (E7) can measure the
// cover-size and time difference. WR scheme (unit weights), as in the
// paper's Section 6 discussion.

#ifndef IQS_COVER_COMPLEMENT_SAMPLER_H_
#define IQS_COVER_COMPLEMENT_SAMPLER_H_

#include <span>
#include <vector>

#include "iqs/cover/coverage_engine.h"
#include "iqs/range/static_bst.h"
#include "iqs/util/rng.h"

namespace iqs {

class ComplementRangeSampler {
 public:
  // `keys` strictly increasing.
  explicit ComplementRangeSampler(std::span<const double> keys);

  // Draws `s` independent uniform samples from S \ [lo, hi] using the
  // size-<=2 approximate cover + rejection. Appends positions (indices in
  // key order); returns false when the complement is empty.
  bool QueryApprox(double lo, double hi, size_t s, Rng* rng,
                   std::vector<size_t>* out) const;

  // Same law via the exact canonical cover (O(log n) pieces, no
  // rejection).
  bool QueryExact(double lo, double hi, size_t s, Rng* rng,
                  std::vector<size_t>* out) const;

  // Cover construction, exposed for tests and the cover-size experiment
  // (E15). Returns pieces over positions; `approx` pieces may include
  // positions inside [a, b] (the excluded zone).
  void BuildApproxCover(size_t a, size_t b,
                        std::vector<CoverRange>* cover) const;
  void BuildExactCover(size_t a, size_t b,
                       std::vector<CoverRange>* cover) const;

  size_t n() const { return keys_.size(); }

  size_t MemoryBytes() const {
    return keys_.capacity() * sizeof(double) + tree_.MemoryBytes() +
           engine_.MemoryBytes();
  }

 private:
  // Maps [lo, hi] to the inclusive position range [a, b] of *excluded*
  // elements; returns false if no element is excluded (a > b encodes the
  // empty exclusion: the query degenerates to whole-set sampling).
  bool ResolveExcluded(double lo, double hi, size_t* a, size_t* b) const;

  std::vector<double> keys_;
  StaticBst tree_;
  CoverageEngine engine_;
};

}  // namespace iqs

#endif  // IQS_COVER_COMPLEMENT_SAMPLER_H_
