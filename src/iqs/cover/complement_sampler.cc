#include "iqs/cover/complement_sampler.h"

#include <algorithm>

#include "iqs/util/check.h"

namespace iqs {

ComplementRangeSampler::ComplementRangeSampler(std::span<const double> keys)
    : keys_(keys.begin(), keys.end()),
      tree_(std::vector<double>(keys.size(), 1.0)),
      engine_(std::vector<double>(keys.size(), 1.0)) {
  IQS_CHECK(!keys_.empty());
  // iqs-lint: allow(check-in-loop) -- cold build-path input validation
  for (size_t i = 1; i < keys_.size(); ++i) IQS_CHECK(keys_[i - 1] < keys_[i]);
}

bool ComplementRangeSampler::ResolveExcluded(double lo, double hi, size_t* a,
                                             size_t* b) const {
  const auto first = std::lower_bound(keys_.begin(), keys_.end(), lo);
  const auto last = std::upper_bound(first, keys_.end(), hi);
  if (first == last || lo > hi) {
    // Nothing excluded.
    *a = 1;
    *b = 0;
    return true;
  }
  *a = static_cast<size_t>(first - keys_.begin());
  *b = static_cast<size_t>(last - keys_.begin()) - 1;
  // Complement empty only if everything is excluded.
  return !(*a == 0 && *b == keys_.size() - 1);
}

void ComplementRangeSampler::BuildApproxCover(
    size_t a, size_t b, std::vector<CoverRange>* cover) const {
  const size_t n = keys_.size();
  if (a > b) {  // nothing excluded: the root covers S_q = S exactly
    cover->push_back({0, n - 1, static_cast<double>(n)});
    return;
  }
  // Surviving prefix is positions [0, a-1]: take the lowest left-spine
  // subtree containing it. Spine subtrees have ranges [0, RangeHi]; the
  // lowest with RangeHi >= a-1 has size < 2a (midpoint splits), giving the
  // >= 1/2 density Theorem 6 needs.
  if (a > 0) {
    StaticBst::NodeId u = tree_.root();
    while (!tree_.IsLeaf(u) &&
           tree_.RangeHi(tree_.LeftChild(u)) >= a - 1) {
      u = tree_.LeftChild(u);
    }
    cover->push_back({tree_.RangeLo(u), tree_.RangeHi(u),
                      static_cast<double>(tree_.RangeHi(u) -
                                          tree_.RangeLo(u) + 1)});
  }
  // Surviving suffix is positions [b+1, n-1]: lowest right-spine subtree
  // containing it.
  if (b + 1 < n) {
    StaticBst::NodeId u = tree_.root();
    while (!tree_.IsLeaf(u) &&
           tree_.RangeLo(tree_.RightChild(u)) <= b + 1) {
      u = tree_.RightChild(u);
    }
    cover->push_back({tree_.RangeLo(u), tree_.RangeHi(u),
                      static_cast<double>(tree_.RangeHi(u) -
                                          tree_.RangeLo(u) + 1)});
  }
}

void ComplementRangeSampler::BuildExactCover(
    size_t a, size_t b, std::vector<CoverRange>* cover) const {
  const size_t n = keys_.size();
  std::vector<StaticBst::NodeId> nodes;
  if (a > b) {
    tree_.CanonicalCover(0, n - 1, &nodes);
  } else {
    if (a > 0) tree_.CanonicalCover(0, a - 1, &nodes);
    if (b + 1 < n) tree_.CanonicalCover(b + 1, n - 1, &nodes);
  }
  for (StaticBst::NodeId u : nodes) {
    cover->push_back({tree_.RangeLo(u), tree_.RangeHi(u),
                      tree_.NodeWeight(u)});
  }
}

bool ComplementRangeSampler::QueryApprox(double lo, double hi, size_t s,
                                         Rng* rng,
                                         std::vector<size_t>* out) const {
  size_t a = 0;
  size_t b = 0;
  if (!ResolveExcluded(lo, hi, &a, &b)) return false;
  std::vector<CoverRange> cover;
  BuildApproxCover(a, b, &cover);
  const bool excluded_nonempty = a <= b;
  engine_.SampleWithRejection(
      cover, s,
      [&](size_t p) { return !excluded_nonempty || p < a || p > b; }, rng,
      out);
  return true;
}

bool ComplementRangeSampler::QueryExact(double lo, double hi, size_t s,
                                        Rng* rng,
                                        std::vector<size_t>* out) const {
  size_t a = 0;
  size_t b = 0;
  if (!ResolveExcluded(lo, hi, &a, &b)) return false;
  std::vector<CoverRange> cover;
  BuildExactCover(a, b, &cover);
  engine_.Sample(cover, s, rng, out);
  return true;
}

}  // namespace iqs
