// Technique 2 — coverage (paper Section 5, Theorem 5) and Technique 3 —
// approximate coverage (paper Section 6, Theorem 6), as a reusable engine.
//
// Any tree structure built by in-place partitioning (our StaticBst,
// KdTree, Quadtree, ...) stores each node's elements at a contiguous run
// of positions, so "the cover of query q" is just a list of disjoint
// position ranges with weights. Given such a cover, this engine draws s
// independent weighted samples in O(|cover| + s) (*): it splits the budget
// multinomially over the ranges (Theorem 1 applied to the cover) and then
// samples inside each range with the Theorem-3 chunked structure, our
// stand-in for Lemma 4 (see DESIGN.md section 2.4).
//
// Theorem 6 is the same engine plus rejection: SampleWithRejection takes
// an *approximate* cover — ranges that may contain non-qualifying
// elements — and an acceptance predicate. The output law is exactly
// uniform/weighted over qualifying elements for ANY superset cover; the
// approximate-cover density condition (|S_q| = Omega(|union|)) only
// controls the expected number of rejection rounds.

#ifndef IQS_COVER_COVERAGE_ENGINE_H_
#define IQS_COVER_COVERAGE_ENGINE_H_

#include <functional>
#include <numeric>
#include <span>
#include <vector>

#include "iqs/range/chunked_range_sampler.h"
#include "iqs/util/rng.h"

namespace iqs {

// One piece of a cover: the elements at positions [lo, hi] with total
// weight `weight`.
struct CoverRange {
  size_t lo = 0;
  size_t hi = 0;
  double weight = 0.0;
};

class CoverageEngine {
 public:
  // `position_weights[i]` is the weight of the element at position i in
  // the structure's in-place order. O(n) space, O(n) build.
  explicit CoverageEngine(std::span<const double> position_weights);

  // Theorem 5: draws `s` independent weighted samples from the disjoint
  // union of the cover's ranges, appending positions to `out`.
  void Sample(std::span<const CoverRange> cover, size_t s, Rng* rng,
              std::vector<size_t>* out) const;

  // Theorem 6: the cover may overshoot the true result; every candidate
  // position is filtered through `accepts`, and rejected draws are retried
  // until `s` samples pass. Expected O(|cover| + s) when the cover is a
  // constant-density approximate cover. `cover_element_weight` of each
  // range must count all elements in the range (qualifying or not).
  void SampleWithRejection(std::span<const CoverRange> cover, size_t s,
                           const std::function<bool(size_t)>& accepts,
                           Rng* rng, std::vector<size_t>* out) const;

  size_t MemoryBytes() const { return sampler_.MemoryBytes(); }

 private:
  ChunkedRangeSampler sampler_;
};

// Convenience: total weight of a cover.
inline double CoverWeight(std::span<const CoverRange> cover) {
  double total = 0.0;
  for (const CoverRange& range : cover) total += range.weight;
  return total;
}

}  // namespace iqs

#endif  // IQS_COVER_COVERAGE_ENGINE_H_
