// Technique 2 — coverage (paper Section 5, Theorem 5) and Technique 3 —
// approximate coverage (paper Section 6, Theorem 6), as a reusable engine.
//
// Any tree structure built by in-place partitioning (our StaticBst,
// KdTree, Quadtree, ...) stores each node's elements at a contiguous run
// of positions, so "the cover of query q" is just a list of disjoint
// position ranges with weights. Given such a cover, this engine draws s
// independent weighted samples in O(|cover| + s) (*): it splits the budget
// multinomially over the ranges (Theorem 1 applied to the cover) and then
// samples inside each range with the Theorem-3 chunked structure, our
// stand-in for Lemma 4 (see DESIGN.md section 2.4).
//
// Serving goes through the shared CoverExecutor: SampleBatch takes a
// whole CoverPlan (many queries, each already reduced to cover groups)
// and runs the one batched pipeline — multinomial splits, grouped
// cross-query draws on the chunked sampler's batched path, arena scratch.
// Sample() is the single-query convenience over the same machinery.
//
// Theorem 6 is the same engine plus rejection: SampleWithRejection takes
// an *approximate* cover — ranges that may contain non-qualifying
// elements — and an acceptance predicate. The output law is exactly
// uniform/weighted over qualifying elements for ANY superset cover; the
// approximate-cover density condition (|S_q| = Omega(|union|)) only
// controls the expected number of rejection rounds.

#ifndef IQS_COVER_COVERAGE_ENGINE_H_
#define IQS_COVER_COVERAGE_ENGINE_H_

#include <span>
#include <vector>

#include "iqs/cover/cover_plan.h"
#include "iqs/range/chunked_range_sampler.h"
#include "iqs/util/batch_options.h"
#include "iqs/util/epoch.h"
#include "iqs/util/thread_annotations.h"
#include "iqs/util/function_ref.h"
#include "iqs/util/rng.h"
#include "iqs/util/scratch_arena.h"

namespace iqs {

class CoverageEngine {
 public:
  // `position_weights[i]` is the weight of the element at position i in
  // the structure's in-place order. O(n) space, O(n) build. A non-null
  // `build_pool` runs the underlying per-chunk alias builds as one
  // ParallelFor (bit-identical structure; the pool is used only inside
  // the constructor) — the off-read-thread rebuild path used by
  // VersionedCoverageEngine.
  explicit CoverageEngine(std::span<const double> position_weights,
                          ThreadPool* build_pool = nullptr);

  // Theorem 5: draws `s` independent weighted samples from the disjoint
  // union of the cover's ranges, appending positions to `out`.
  void Sample(std::span<const CoverRange> cover, size_t s, Rng* rng,
              std::vector<size_t>* out) const;

  // Batched Theorem 5: every query of `plan` has been reduced to cover
  // groups (group positions index this engine's position space); appends
  // plan.TotalSamples() positions to `out`, contiguous per query in plan
  // order, via one CoverExecutor run over the chunked sampler's batched
  // path. All scratch from `arena`; zero steady-state heap allocations
  // with a reused arena. opts selects threading (num_threads >= 1 serves
  // in the deterministic parallel mode — bit-identical output across
  // thread counts) and carries the telemetry sink.
  void SampleBatch(const CoverPlan& plan, Rng* rng, ScratchArena* arena,
                   const BatchOptions& opts, std::vector<size_t>* out) const;

  // Convenience: default options.
  void SampleBatch(const CoverPlan& plan, Rng* rng, ScratchArena* arena,
                   std::vector<size_t>* out) const;

  // Theorem 6: the cover may overshoot the true result; every candidate
  // position is filtered through `accepts`, and rejected draws are retried
  // until `s` samples pass. Expected O(|cover| + s) when the cover is a
  // constant-density approximate cover. `cover_element_weight` of each
  // range must count all elements in the range (qualifying or not).
  // `accepts` is a non-owning FunctionRef — no allocation per call — and
  // all retry scratch comes from `arena`. In parallel mode
  // (opts.num_threads >= 1) each retry round's deficit is cut into
  // fixed-size sub-queries (so shardable work exists even for one big
  // query) served under per-sub-query substreams; the acceptance
  // filtering stays sequential. Output is bit-identical across thread
  // counts. With a telemetry sink attached, rejection_attempts counts
  // every candidate tested through `accepts` and rejection_rounds every
  // retry round (telemetry_test cross-checks both against ground truth).
  void SampleWithRejection(std::span<const CoverRange> cover, size_t s,
                           FunctionRef<bool(size_t)> accepts, Rng* rng,
                           ScratchArena* arena, const BatchOptions& opts,
                           std::vector<size_t>* out) const;

  // Convenience: default options.
  void SampleWithRejection(std::span<const CoverRange> cover, size_t s,
                           FunctionRef<bool(size_t)> accepts, Rng* rng,
                           ScratchArena* arena,
                           std::vector<size_t>* out) const;

  // Convenience overload using the engine's thread-local arena.
  void SampleWithRejection(std::span<const CoverRange> cover, size_t s,
                           FunctionRef<bool(size_t)> accepts, Rng* rng,
                           std::vector<size_t>* out) const;

  size_t MemoryBytes() const { return sampler_.MemoryBytes(); }

 private:
  ChunkedRangeSampler sampler_;
};

// Epoch-versioned cover serving (util/epoch.h): an atomically-swapped
// immutable CoverageEngine behind a Versioned<> root, for tree structures
// whose position weights change over time (bulk reweights, rebuilds of
// the in-place layout). Every SampleBatch call pins ONE engine snapshot
// and executes the entire batch against it — readers never block on a
// Rebuild and never observe a half-built engine — while Rebuild()
// constructs the replacement off the serving threads (chunk builds on the
// maintenance pool) and publishes it with grace-period reclamation of the
// old engine. Readers scale to any thread count; Rebuild is internally
// serialized. With no concurrent Rebuild, output is byte-identical to
// serving the plain CoverageEngine.
class VersionedCoverageEngine {
 public:
  // Starts with an engine over `position_weights` (may be empty).
  explicit VersionedCoverageEngine(std::span<const double> position_weights);

  // Maintenance pool for Rebuild(): chunk builds and retired-engine
  // teardown run as ParallelFors over it. Must outlive the last Rebuild
  // and must not be mid-ParallelFor when Rebuild is called.
  void set_maintenance_pool(ThreadPool* pool) { pool_ = pool; }

  // Sink for the epoch counters, recorded by the serialized Rebuild path
  // into shard 0 (give this structure its own sink).
  void set_telemetry(TelemetrySink* sink) { sink_ = sink; }

  // Writer: builds a new engine over `position_weights` and publishes it.
  // In-flight batches finish against the engine they pinned.
  void Rebuild(std::span<const double> position_weights);

  // Readers — each call pins one snapshot for its whole duration.
  void SampleBatch(const CoverPlan& plan, Rng* rng, ScratchArena* arena,
                   const BatchOptions& opts, std::vector<size_t>* out) const;
  void SampleBatch(const CoverPlan& plan, Rng* rng, ScratchArena* arena,
                   std::vector<size_t>* out) const;
  void Sample(std::span<const CoverRange> cover, size_t s, Rng* rng,
              std::vector<size_t>* out) const;

  // Pins the current engine for a caller-scoped read (e.g. several
  // SampleWithRejection rounds against one consistent engine).
  Snapshot<CoverageEngine> Acquire() const { return engine_.Acquire(); }

  EpochManager* epoch_manager() const { return engine_.epoch_manager(); }
  uint64_t versions_published() const { return engine_.versions_published(); }

 private:
  Versioned<CoverageEngine> engine_;
  Mutex writer_mu_;  // serializes Rebuild
  ThreadPool* pool_ = nullptr;
  TelemetrySink* sink_ = nullptr;
  uint64_t last_reclaimed_ IQS_GUARDED_BY(writer_mu_) = 0;
  uint64_t last_pins_ IQS_GUARDED_BY(writer_mu_) = 0;
};

}  // namespace iqs

#endif  // IQS_COVER_COVERAGE_ENGINE_H_
