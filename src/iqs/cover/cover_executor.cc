#include "iqs/cover/cover_executor.h"

#include "iqs/range/range_sampler.h"

namespace iqs {

CoverSplit CoverExecutor::Split(const CoverPlan& plan, Rng* rng,
                                ScratchArena* arena) {
  const size_t g = plan.num_groups();
  const std::span<uint32_t> counts = arena->Alloc<uint32_t>(g);
  const std::span<double> weights = arena->Alloc<double>(g);
  const std::span<const CoverGroup> groups = plan.groups();
  for (size_t i = 0; i < g; ++i) weights[i] = groups[i].weight;

  for (size_t q = 0; q < plan.num_queries(); ++q) {
    const size_t first = plan.first_group(q);
    const size_t t = plan.end_group(q) - first;
    if (t == 0) continue;
    MultinomialSplitScratch(weights.subspan(first, t), plan.budget(q), rng,
                            arena, counts.subspan(first, t));
  }

  const std::span<size_t> offsets = arena->Alloc<size_t>(g + 1);
  size_t total = 0;
  for (size_t i = 0; i < g; ++i) {
    offsets[i] = total;
    total += counts[i];
  }
  offsets[g] = total;
  return CoverSplit{counts, offsets, total};
}

void CoverExecutor::ExecuteOverSampler(const CoverPlan& plan,
                                       const RangeSampler& sampler, Rng* rng,
                                       ScratchArena* arena,
                                       std::vector<size_t>* out) {
  const CoverSplit split = Split(plan, rng, arena);
  if (split.total == 0) return;
  // Lower nonzero groups to position-space requests; QueryPositionsBatch
  // appends each request's draws contiguously in order, which is exactly
  // the flat layout Split's offsets describe.
  const std::span<const CoverGroup> groups = plan.groups();
  const std::span<PositionQuery> requests =
      arena->Alloc<PositionQuery>(groups.size());
  size_t m = 0;
  for (size_t i = 0; i < groups.size(); ++i) {
    if (split.counts[i] == 0) continue;
    requests[m++] = PositionQuery{groups[i].lo, groups[i].hi,
                                  static_cast<size_t>(split.counts[i])};
  }
  out->reserve(out->size() + split.total);
  sampler.QueryPositionsBatch(requests.first(m), rng, arena, out);
}

}  // namespace iqs
