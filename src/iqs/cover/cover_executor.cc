#include "iqs/cover/cover_executor.h"

#include <algorithm>

#include "iqs/range/range_sampler.h"
#include "iqs/simd/dispatch.h"
#include "iqs/util/thread_pool.h"

namespace iqs {

namespace {

// Randomness words the split stage consumes for query q: s doubles when
// the budget is split across >= 2 groups, none otherwise (the
// single-group / empty shortcut in MultinomialSplitScratch).
uint64_t SplitDrawsForQuery(const CoverPlan& plan, size_t q) {
  return plan.end_group(q) - plan.first_group(q) >= 2 ? plan.budget(q) : 0;
}

void RecordSplitStats(const CoverPlan& plan, TelemetrySink* sink) {
  QueryStats* stats = &sink->shard(0)->stats;
  stats->queries += plan.num_queries();
  stats->cover_groups += plan.num_groups();
  for (size_t q = 0; q < plan.num_queries(); ++q) {
    stats->rng_draws += SplitDrawsForQuery(plan, q);
  }
  // Tag the batch with the kernel backend serving it, so exported results
  // are self-describing (telemetry.h).
  stats->backend_mask |= simd::BackendBit(simd::ActiveBackend());
}

// Parallel lowering of ExecuteOverSampler: each query's nonzero groups
// become position requests served by the sampler under the query's
// substream (defined after ExecuteParallel below).
void ExecuteOverSamplerParallel(const CoverPlan& plan,
                                const RangeSampler& sampler, Rng* rng,
                                ScratchArena* arena, const BatchOptions& opts,
                                std::vector<size_t>* out);

}  // namespace

CoverSplit CoverExecutor::Split(const CoverPlan& plan, Rng* rng,
                                ScratchArena* arena, TelemetrySink* sink) {
  const size_t g = plan.num_groups();
  const std::span<uint32_t> counts = arena->Alloc<uint32_t>(g);
  const std::span<double> weights = arena->Alloc<double>(g);
  const std::span<const CoverGroup> groups = plan.groups();
  for (size_t i = 0; i < g; ++i) weights[i] = groups[i].weight;

  for (size_t q = 0; q < plan.num_queries(); ++q) {
    const size_t first = plan.first_group(q);
    const size_t t = plan.end_group(q) - first;
    if (t == 0) continue;
    MultinomialSplitScratch(weights.subspan(first, t), plan.budget(q), rng,
                            arena, counts.subspan(first, t));
  }
  if (sink != nullptr) RecordSplitStats(plan, sink);

  const std::span<size_t> offsets = arena->Alloc<size_t>(g + 1);
  size_t total = 0;
  for (size_t i = 0; i < g; ++i) {
    offsets[i] = total;
    total += counts[i];
  }
  offsets[g] = total;
  return CoverSplit{counts, offsets, total};
}

void CoverExecutor::ExecuteOverSampler(const CoverPlan& plan,
                                       const RangeSampler& sampler, Rng* rng,
                                       ScratchArena* arena,
                                       const BatchOptions& opts,
                                       std::vector<size_t>* out) {
  // Frontend contract (BatchOptions::max_batch): a nonzero bound promises
  // the plan came from a micro-batcher that never coalesces past it.
  IQS_CHECK(opts.max_batch == 0 || plan.num_queries() <= opts.max_batch);
  if (!opts.sequential()) {
    ExecuteOverSamplerParallel(plan, sampler, rng, arena, opts, out);
    return;
  }
  const CoverSplit split = Split(plan, rng, arena, opts.telemetry);
  if (split.total == 0) return;
  // Lower nonzero groups to position-space requests; QueryPositionsBatch
  // appends each request's draws contiguously in order, which is exactly
  // the flat layout Split's offsets describe. The nested batch runs
  // WITHOUT a sink: the executor owns the batch's counters, and passing
  // the sink down would double-count (telemetry.h ownership table).
  const std::span<const CoverGroup> groups = plan.groups();
  const std::span<PositionQuery> requests =
      arena->Alloc<PositionQuery>(groups.size());
  size_t m = 0;
  for (size_t i = 0; i < groups.size(); ++i) {
    if (split.counts[i] == 0) continue;
    requests[m++] = PositionQuery{groups[i].lo, groups[i].hi,
                                  static_cast<size_t>(split.counts[i])};
  }
  out->reserve(out->size() + split.total);
  sampler.QueryPositionsBatch(requests.first(m), rng, arena, out);
  if (opts.telemetry != nullptr) {
    QueryStats* stats = &opts.telemetry->shard(0)->stats;
    stats->samples_emitted += split.total;
    if (arena->capacity_bytes() > stats->arena_bytes_hwm) {
      stats->arena_bytes_hwm = arena->capacity_bytes();
    }
  }
}

void CoverExecutor::ExecuteParallel(const CoverPlan& plan, Rng* rng,
                                    ScratchArena* arena,
                                    const BatchOptions& opts,
                                    CoverQueryDrawFn draw,
                                    std::vector<size_t>* out) {
  IQS_CHECK(!opts.sequential());
  IQS_CHECK(opts.max_batch == 0 || plan.num_queries() <= opts.max_batch);
  const size_t nq = plan.num_queries();
  const size_t g = plan.num_groups();
  ScopedPool pool(opts);

  // One word of the caller's stream keys the whole batch (so repeated
  // batches stay independent); from here on every draw is a pure function
  // of (key, query index), independent of thread count and sharding.
  const Rng base(rng->Next64());

  const std::span<Rng> rngs = arena->Alloc<Rng>(nq);
  const std::span<uint32_t> counts = arena->Alloc<uint32_t>(g);
  const std::span<double> weights = arena->Alloc<double>(g);
  const std::span<const CoverGroup> groups = plan.groups();
  for (size_t i = 0; i < g; ++i) weights[i] = groups[i].weight;

  // Pass 1: per-query budget splits. Queries own disjoint slices of
  // `counts`, and each worker's scratch is its own arena, so shards never
  // write shared state.
  ParallelForShards(
      pool.get(), nq, [&](size_t first, size_t last, size_t worker) {
        ScratchArena* wa = pool->worker_arena(worker);
        for (size_t q = first; q < last; ++q) {
          rngs[q] = base.ForkStream(q);
          const size_t fg = plan.first_group(q);
          const size_t t = plan.end_group(q) - fg;
          if (t == 0) continue;
          wa->Reset();
          MultinomialSplitScratch(weights.subspan(fg, t), plan.budget(q),
                                  &rngs[q], wa, counts.subspan(fg, t));
        }
      });

  // Offsets are a cheap sequential prefix sum over groups.
  const std::span<size_t> offsets = arena->Alloc<size_t>(g + 1);
  size_t total = 0;
  for (size_t i = 0; i < g; ++i) {
    offsets[i] = total;
    total += counts[i];
  }
  offsets[g] = total;
  const CoverSplit split{counts, offsets, total};

  if (opts.telemetry != nullptr) {
    // Batch-level counters, recorded once on the calling thread (draw
    // callbacks record per-worker detail into shard(worker) themselves).
    // The +1 is the batch key drawn above.
    QueryStats* stats = &opts.telemetry->shard(0)->stats;
    stats->queries += nq;
    stats->cover_groups += g;
    stats->backend_mask |= simd::BackendBit(simd::ActiveBackend());
    stats->rng_draws += 1;
    for (size_t q = 0; q < nq; ++q) {
      stats->rng_draws += SplitDrawsForQuery(plan, q);
    }
    stats->samples_emitted += total;
    if (arena->capacity_bytes() > stats->arena_bytes_hwm) {
      stats->arena_bytes_hwm = arena->capacity_bytes();
    }
  }
  if (total == 0) return;

  const size_t base_size = out->size();
  out->resize(base_size + total);
  const std::span<size_t> dst =
      std::span<size_t>(*out).subspan(base_size, total);

  // Pass 2: draws. Each query continues the substream its split left off
  // at and writes only its own offset slices of dst.
  ParallelForShards(
      pool.get(), nq, [&](size_t first, size_t last, size_t worker) {
        ScratchArena* wa = pool->worker_arena(worker);
        for (size_t q = first; q < last; ++q) {
          if (offsets[plan.end_group(q)] == offsets[plan.first_group(q)]) {
            continue;
          }
          wa->Reset();
          draw(plan, split, dst, q, worker, &rngs[q], wa);
        }
      });
}

namespace {

void ExecuteOverSamplerParallel(const CoverPlan& plan,
                                const RangeSampler& sampler, Rng* rng,
                                ScratchArena* arena, const BatchOptions& opts,
                                std::vector<size_t>* out) {
  CoverExecutor::ExecuteParallel(
      plan, rng, arena, opts,
      [&sampler](const CoverPlan& plan, const CoverSplit& split,
                 std::span<size_t> dst, size_t q, size_t /*worker*/,
                 Rng* qrng, ScratchArena* wa) {
        // Lower the query's nonzero groups to position requests and run
        // the sampler's grouped kernel once for this query. The sampler
        // appends per request contiguously in order, which is exactly the
        // query's slice of the flat offsets — stage through a per-thread
        // buffer because QueryPositionsBatch appends to a vector.
        const size_t fg = plan.first_group(q);
        const size_t eg = plan.end_group(q);
        const std::span<const CoverGroup> groups = plan.groups();
        const std::span<PositionQuery> requests =
            wa->Alloc<PositionQuery>(eg - fg);
        size_t m = 0;
        for (size_t i = fg; i < eg; ++i) {
          if (split.counts[i] == 0) continue;
          requests[m++] = PositionQuery{groups[i].lo, groups[i].hi,
                                        static_cast<size_t>(split.counts[i])};
        }
        thread_local std::vector<size_t> buf;
        buf.clear();
        sampler.QueryPositionsBatch(requests.first(m), qrng, wa, &buf);
        IQS_DCHECK(buf.size() == split.offsets[eg] - split.offsets[fg]);
        std::copy(buf.begin(), buf.end(),
                  dst.begin() + split.offsets[fg]);
      },
      out);
}

}  // namespace

}  // namespace iqs
