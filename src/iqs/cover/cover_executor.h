// The shared batched sampling pipeline over CoverPlans (paper Section 4.1
// applied uniformly; engineering of DESIGN.md E19/E20).
//
// Every serving path in the library funnels through this layer: a
// structure enumerates each query's weighted disjoint groups into a
// CoverPlan, and the executor runs the whole batch through one pipeline —
// per-query multinomial budget splits (inverse-CDF with block RNG), flat
// per-group output offsets, arena scratch, and a single invocation of the
// structure's draw backend over ALL draws of the batch, so backend cache
// misses (tree-node loads, alias-urn loads) overlap across queries
// instead of serializing inside each one.
//
// Two consumption styles:
//   * Execute(plan, ..., backend): for structures with their own grouped
//     draw kernel (StaticBst lane descents, per-node alias pipelines).
//     `backend(ctx)` receives the split and the flat destination and
//     draws every sample of the batch in one pass.
//   * ExecuteOverSampler(plan, sampler, ...): for structures whose groups
//     are plain position ranges over one RangeSampler (CoverageEngine,
//     subtree Euler intervals, the integer sampler). Lowers nonzero
//     groups to PositionQuery spans and runs the sampler's own
//     QueryPositionsBatch once.
//
// Snapshot discipline (util/epoch.h): the executor itself is stateless —
// a run reads only the plan and the backend it was handed, so concurrency
// against structure updates is decided entirely by WHAT the caller hands
// in. Versioned entry points (LogarithmicRangeSampler::QueryBatch,
// VersionedCoverageEngine::SampleBatch) pin ONE epoch snapshot before
// building/serving the plan and keep it pinned for the whole executor
// run; everything the executor touches then belongs to one immutable
// version, so an entire batch observes a single consistent structure even
// while writers publish new versions concurrently.

#ifndef IQS_COVER_COVER_EXECUTOR_H_
#define IQS_COVER_COVER_EXECUTOR_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "iqs/cover/cover_plan.h"
#include "iqs/sampling/multinomial.h"
#include "iqs/util/batch_options.h"
#include "iqs/util/function_ref.h"
#include "iqs/util/rng.h"
#include "iqs/util/scratch_arena.h"
#include "iqs/util/telemetry.h"

namespace iqs {

class RangeSampler;

// Result of the budget-splitting stage, arena-resident. For group g of
// the plan, counts[g] samples are owed and must be written to
// dst[offsets[g] .. offsets[g+1]); queries stay contiguous in dst because
// a query's groups are contiguous in the plan.
struct CoverSplit {
  std::span<const uint32_t> counts;  // per group
  std::span<const size_t> offsets;   // per group, size num_groups() + 1
  size_t total = 0;                  // == offsets.back()
};

class CoverExecutor {
 public:
  // Stage 1: splits every query's budget Multinomial(s; group weights)
  // and lays out flat output offsets. O(groups + total samples) with all
  // scratch from `arena`. When `sink` is non-null the batch's queries,
  // cover_groups and split-stage rng_draws (one double per sample of
  // every query with >= 2 groups; single-group queries shortcut with no
  // randomness) are recorded into shard 0 — the split stage OWNS these
  // counters (see telemetry.h), so nested pipelines never double-count.
  static CoverSplit Split(const CoverPlan& plan, Rng* rng,
                          ScratchArena* arena, TelemetrySink* sink = nullptr);

  // Full pipeline for structures with a custom grouped draw kernel.
  // Appends plan.TotalSamples() positions to `out`; `backend` is invoked
  // once (when there is work) as backend(plan, split, dst) with dst the
  // flat destination span, and must write dst[offsets[g] ..) for every
  // group g. Draws for query q land contiguously, in group order — the
  // usual i.i.d.-multiset ORDERING CONTRACT (see RangeSampler).
  // opts carries the telemetry sink (samples_emitted, arena high-water);
  // threading fields are ignored — parallel draws go through
  // ExecuteParallel.
  template <typename DrawBackend>
  static void Execute(const CoverPlan& plan, Rng* rng, ScratchArena* arena,
                      const BatchOptions& opts, DrawBackend&& backend,
                      std::vector<size_t>* out) {
    IQS_CHECK(opts.max_batch == 0 || plan.num_queries() <= opts.max_batch);
    const CoverSplit split = Split(plan, rng, arena, opts.telemetry);
    if (split.total == 0) return;
    const size_t base = out->size();
    out->resize(base + split.total);
    backend(plan, split,
            std::span<size_t>(*out).subspan(base, split.total));
    if (opts.telemetry != nullptr) {
      QueryStats* stats = &opts.telemetry->shard(0)->stats;
      stats->samples_emitted += split.total;
      if (arena->capacity_bytes() > stats->arena_bytes_hwm) {
        stats->arena_bytes_hwm = arena->capacity_bytes();
      }
    }
  }

  // Full pipeline for plans whose groups are position ranges over
  // `sampler`. Sequential mode lowers the nonzero groups to PositionQuery
  // spans and runs the sampler's QueryPositionsBatch once over the whole
  // batch; parallel mode (opts.num_threads >= 1) draws each query through
  // its own substream — see ExecuteParallel for the determinism contract.
  static void ExecuteOverSampler(const CoverPlan& plan,
                                 const RangeSampler& sampler, Rng* rng,
                                 ScratchArena* arena, const BatchOptions& opts,
                                 std::vector<size_t>* out);

  // Per-query draw callback for the parallel pipeline. Must write
  // dst[split.offsets[g] .. split.offsets[g+1]) for every group g of query
  // q — nothing else — drawing only from `rng` (the query's substream,
  // already advanced past its budget split) with scratch from `arena`
  // (the worker's, Reset before the call). Runs concurrently for
  // different q; `worker` identifies the executing pool worker so the
  // callback may record into a telemetry shard race-free.
  using CoverQueryDrawFn =
      FunctionRef<void(const CoverPlan&, const CoverSplit&,
                       std::span<size_t> dst, size_t q, size_t worker,
                       Rng* rng, ScratchArena* arena)>;

  // Parallel pipeline (opts.num_threads >= 1 required; see BatchOptions
  // for the mode semantics). Consumes ONE word of `rng` as the batch key,
  // then runs both the budget splits and the draws under per-query
  // ForkStream substreams, sharded over the pool in contiguous query
  // ranges — so the appended output is bit-identical for every thread
  // count. Same output layout and ordering contract as Execute; `arena`
  // (the caller's) holds the split and substream state, per-worker draw
  // scratch comes from the pool. Telemetry (opts.telemetry) records the
  // batch-level counters into shard 0 on the calling thread — recording
  // never draws randomness, so attaching a sink cannot change any sample.
  static void ExecuteParallel(const CoverPlan& plan, Rng* rng,
                              ScratchArena* arena, const BatchOptions& opts,
                              CoverQueryDrawFn draw, std::vector<size_t>* out);
};

}  // namespace iqs

#endif  // IQS_COVER_COVER_EXECUTOR_H_
