// The uniform "query -> weighted disjoint groups" representation behind
// every IQS technique in this library (paper Section 4.1 / Theorem 5).
//
// Each technique — canonical BST covers (Sections 3-4), kd/quad/range-tree
// covers (Section 5), Euler-tour subtree intervals (Lemma 4), Bentley-Saxe
// components — reduces a query to the same shape: a list of disjoint
// groups, each a contiguous position range with a total weight, from which
// the sample budget is split multinomially and per-group draws are made.
// CoverPlan is that shape for a whole serving batch: a flat group arena
// with per-query extents and budgets, reusable across calls (Clear() keeps
// capacity, so steady-state batches allocate nothing).
//
// CoverExecutor (cover_executor.h) consumes a plan and owns the batched
// sampling pipeline; structure-specific code only *enumerates* groups.

#ifndef IQS_COVER_COVER_PLAN_H_
#define IQS_COVER_COVER_PLAN_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "iqs/util/check.h"

namespace iqs {

// One piece of a cover: the elements at positions [lo, hi] with total
// weight `weight`. (Theorem 5's currency; kept bare because multidim
// cover enumerators build vectors of these.)
struct CoverRange {
  size_t lo = 0;
  size_t hi = 0;
  double weight = 0.0;
};

// Convenience: total weight of a cover.
inline double CoverWeight(std::span<const CoverRange> cover) {
  double total = 0.0;
  for (const CoverRange& range : cover) total += range.weight;
  return total;
}

// A CoverRange plus an opaque tag the enumerating structure uses to name
// its backend-specific sampling unit (a StaticBst node id, a range-tree
// piece index, a chunked q1/q2/q3 part kind, ...). The executor never
// interprets the tag; it only routes it to the structure's draw backend.
struct CoverGroup {
  size_t lo = 0;
  size_t hi = 0;  // inclusive position range
  double weight = 0.0;
  uint64_t tag = 0;
};

// A batch of queries, each reduced to its weighted disjoint groups.
// Usage:
//   plan.Clear();
//   for each query q: plan.BeginQuery(q.s); plan.AddGroup(...)...;
// A query with zero groups (unresolvable / empty region) contributes no
// samples regardless of its budget; a query with groups contributes
// exactly its budget.
class CoverPlan {
 public:
  void Clear() {
    groups_.clear();
    query_first_.clear();
    budgets_.clear();
  }

  // Starts the next query of the batch with sample budget `s`.
  void BeginQuery(size_t s) {
    query_first_.push_back(groups_.size());
    budgets_.push_back(s);
  }

  // Adds one group to the most recent BeginQuery. When the query has more
  // than one group, `weight` must be the group's true total weight (the
  // multinomial split is taken over them); a single-group query's weight
  // only needs to be positive.
  void AddGroup(size_t lo, size_t hi, double weight, uint64_t tag = 0) {
    IQS_DCHECK(!budgets_.empty());
    IQS_DCHECK(lo <= hi);
    IQS_DCHECK(weight > 0.0);
    groups_.push_back(CoverGroup{lo, hi, weight, tag});
  }
  void AddGroup(const CoverRange& range, uint64_t tag = 0) {
    AddGroup(range.lo, range.hi, range.weight, tag);
  }

  size_t num_queries() const { return budgets_.size(); }
  size_t num_groups() const { return groups_.size(); }
  std::span<const CoverGroup> groups() const { return groups_; }
  size_t budget(size_t q) const { return budgets_[q]; }

  // Extent of query q's groups inside groups().
  size_t first_group(size_t q) const { return query_first_[q]; }
  size_t end_group(size_t q) const {
    return q + 1 < query_first_.size() ? query_first_[q + 1] : groups_.size();
  }
  std::span<const CoverGroup> GroupsFor(size_t q) const {
    return groups().subspan(first_group(q), end_group(q) - first_group(q));
  }

  // Samples the whole batch owes: sum of budgets over queries with at
  // least one group.
  size_t TotalSamples() const {
    size_t total = 0;
    for (size_t q = 0; q < num_queries(); ++q) {
      if (end_group(q) > first_group(q)) total += budgets_[q];
    }
    return total;
  }

 private:
  std::vector<CoverGroup> groups_;
  std::vector<size_t> query_first_;  // parallel to budgets_
  std::vector<size_t> budgets_;
};

}  // namespace iqs

#endif  // IQS_COVER_COVER_PLAN_H_
