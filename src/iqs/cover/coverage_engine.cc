#include "iqs/cover/coverage_engine.h"

#include "iqs/sampling/multinomial.h"
#include "iqs/util/check.h"

namespace iqs {

namespace {

std::vector<double> PositionKeys(size_t n) {
  std::vector<double> keys(n);
  std::iota(keys.begin(), keys.end(), 0.0);
  return keys;
}

}  // namespace

CoverageEngine::CoverageEngine(std::span<const double> position_weights)
    : sampler_(PositionKeys(position_weights.size()), position_weights) {}

void CoverageEngine::Sample(std::span<const CoverRange> cover, size_t s,
                            Rng* rng, std::vector<size_t>* out) const {
  if (s == 0 || cover.empty()) return;
  std::vector<double> weights;
  weights.reserve(cover.size());
  for (const CoverRange& range : cover) {
    IQS_DCHECK(range.lo <= range.hi);
    weights.push_back(range.weight);
  }
  const std::vector<uint32_t> counts = MultinomialSplit(weights, s, rng);
  out->reserve(out->size() + s);
  for (size_t i = 0; i < cover.size(); ++i) {
    if (counts[i] == 0) continue;
    sampler_.QueryPositions(cover[i].lo, cover[i].hi, counts[i], rng, out);
  }
}

void CoverageEngine::SampleWithRejection(
    std::span<const CoverRange> cover, size_t s,
    const std::function<bool(size_t)>& accepts, Rng* rng,
    std::vector<size_t>* out) const {
  if (s == 0 || cover.empty()) return;
  out->reserve(out->size() + s);
  size_t produced = 0;
  // Draw candidate batches of the remaining deficit; with a constant-
  // density approximate cover, each batch converts a constant fraction, so
  // the expected total work is O(s).
  std::vector<size_t> candidates;
  size_t round = 0;
  while (produced < s) {
    candidates.clear();
    Sample(cover, s - produced, rng, &candidates);
    for (size_t position : candidates) {
      if (accepts(position)) {
        out->push_back(position);
        ++produced;
      }
    }
    // Guard against a cover that contains no qualifying element at all —
    // a caller bug: the acceptance rate would be 0 and the loop endless.
    IQS_CHECK(++round < 64 * (s + 1) &&
              "rejection sampling is not converging; is the cover valid?");
  }
}

}  // namespace iqs
