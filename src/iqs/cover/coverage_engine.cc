#include "iqs/cover/coverage_engine.h"

#include <algorithm>
#include <numeric>

#include "iqs/cover/cover_executor.h"
#include "iqs/util/check.h"
#include "iqs/util/telemetry.h"

namespace iqs {

namespace {

std::vector<double> PositionKeys(size_t n) {
  std::vector<double> keys(n);
  std::iota(keys.begin(), keys.end(), 0.0);
  return keys;
}

// Single-query entry points share per-thread serving state so they ride
// the batched pipeline without a signature change.
ScratchArena* LocalArena() {
  thread_local ScratchArena arena;
  return &arena;
}

}  // namespace

CoverageEngine::CoverageEngine(std::span<const double> position_weights,
                               ThreadPool* build_pool)
    : sampler_(PositionKeys(position_weights.size()), position_weights,
               /*chunk_size=*/0, build_pool) {}

void CoverageEngine::SampleBatch(const CoverPlan& plan, Rng* rng,
                                 ScratchArena* arena, const BatchOptions& opts,
                                 std::vector<size_t>* out) const {
  CoverExecutor::ExecuteOverSampler(plan, sampler_, rng, arena, opts, out);
}

void CoverageEngine::SampleBatch(const CoverPlan& plan, Rng* rng,
                                 ScratchArena* arena,
                                 std::vector<size_t>* out) const {
  SampleBatch(plan, rng, arena, BatchOptions{}, out);
}

void CoverageEngine::Sample(std::span<const CoverRange> cover, size_t s,
                            Rng* rng, std::vector<size_t>* out) const {
  if (s == 0 || cover.empty()) return;
  thread_local CoverPlan plan;
  plan.Clear();
  plan.BeginQuery(s);
  for (const CoverRange& range : cover) {
    IQS_DCHECK(range.lo <= range.hi);
    plan.AddGroup(range);
  }
  ScratchArena* arena = LocalArena();
  arena->Reset();
  SampleBatch(plan, rng, arena, out);
}

void CoverageEngine::SampleWithRejection(std::span<const CoverRange> cover,
                                         size_t s,
                                         FunctionRef<bool(size_t)> accepts,
                                         Rng* rng, ScratchArena* arena,
                                         const BatchOptions& opts,
                                         std::vector<size_t>* out) const {
  if (s == 0 || cover.empty()) return;
  thread_local CoverPlan plan;
  out->reserve(out->size() + s);
  const size_t base = out->size();
  size_t produced = 0;
  // Draw candidate batches of the remaining deficit directly into `out`
  // and compact the accepted ones in place — no candidate buffer; the
  // split/draw scratch of every retry round comes from `arena`. With a
  // constant-density approximate cover each round converts a constant
  // fraction, so the expected total work is O(s).
  size_t round = 0;
  uint64_t attempts = 0;
  while (produced < s) {
    const size_t deficit = s - produced;
    plan.Clear();
    if (opts.sequential()) {
      plan.BeginQuery(deficit);
      for (const CoverRange& range : cover) plan.AddGroup(range);
    } else {
      // Cut the deficit into fixed-size sub-queries: the slicing depends
      // only on the deficit (never on the thread count), each slice runs
      // under its own substream, and slices land contiguously in plan
      // order — so the round's candidate block is bit-identical for every
      // thread count, and the sequential compaction below keeps it so.
      constexpr size_t kSlice = 1024;
      for (size_t done = 0; done < deficit; done += kSlice) {
        plan.BeginQuery(std::min(kSlice, deficit - done));
        for (const CoverRange& range : cover) plan.AddGroup(range);
      }
    }
    SampleBatch(plan, rng, arena, opts, out);
    size_t write = base + produced;
    attempts += out->size() - write;
    for (size_t read = write; read < out->size(); ++read) {
      if (accepts((*out)[read])) (*out)[write++] = (*out)[read];
    }
    produced = write - base;
    out->resize(base + produced);
    // Guard against a cover that contains no qualifying element at all —
    // a caller bug: the acceptance rate would be 0 and the loop endless.
    // iqs-lint: allow(check-in-loop) -- aborts a non-converging rejection loop
    IQS_CHECK(++round < 64 * (s + 1) &&
              "rejection sampling is not converging; is the cover valid?");
  }
  if (opts.telemetry != nullptr) {
    QueryStats* stats = &opts.telemetry->shard(0)->stats;
    stats->rejection_attempts += attempts;
    stats->rejection_rounds += round;
  }
}

void CoverageEngine::SampleWithRejection(std::span<const CoverRange> cover,
                                         size_t s,
                                         FunctionRef<bool(size_t)> accepts,
                                         Rng* rng, ScratchArena* arena,
                                         std::vector<size_t>* out) const {
  SampleWithRejection(cover, s, accepts, rng, arena, BatchOptions{}, out);
}

void CoverageEngine::SampleWithRejection(std::span<const CoverRange> cover,
                                         size_t s,
                                         FunctionRef<bool(size_t)> accepts,
                                         Rng* rng,
                                         std::vector<size_t>* out) const {
  ScratchArena* arena = LocalArena();
  arena->Reset();
  SampleWithRejection(cover, s, accepts, rng, arena, BatchOptions{}, out);
}

VersionedCoverageEngine::VersionedCoverageEngine(
    std::span<const double> position_weights)
    : engine_(std::make_unique<const CoverageEngine>(position_weights)) {}

void VersionedCoverageEngine::Rebuild(
    std::span<const double> position_weights) {
  MutexLock lock(&writer_mu_);
  const uint64_t start_ns = sink_ != nullptr ? TelemetryNowNs() : 0;
  // The full replacement engine is built privately (chunk builds on the
  // pool) before a single atomic publish — readers never see it partial.
  auto next = std::make_unique<const CoverageEngine>(position_weights, pool_);
  engine_.Publish(std::move(next), pool_);
  if (sink_ != nullptr) {
    // Serialized writer path; shard 0 of the structure's own sink.
    QueryStats* stats = &sink_->shard(0)->stats;
    stats->versions_published += 1;
    const EpochManager* epoch = engine_.epoch_manager();
    const uint64_t reclaimed = epoch->reclaimed();
    stats->versions_reclaimed += reclaimed - last_reclaimed_;
    last_reclaimed_ = reclaimed;
    const uint64_t pins = epoch->reader_pins();
    stats->reader_pins += pins - last_pins_;
    last_pins_ = pins;
    stats->rebuild_ns += TelemetryNowNs() - start_ns;
  }
}

void VersionedCoverageEngine::SampleBatch(const CoverPlan& plan, Rng* rng,
                                          ScratchArena* arena,
                                          const BatchOptions& opts,
                                          std::vector<size_t>* out) const {
  // One pin serves the entire batch: every query of the plan executes
  // against the same engine no matter what Rebuild() publishes meanwhile.
  const Snapshot<CoverageEngine> snap = engine_.Acquire();
  snap->SampleBatch(plan, rng, arena, opts, out);
}

void VersionedCoverageEngine::SampleBatch(const CoverPlan& plan, Rng* rng,
                                          ScratchArena* arena,
                                          std::vector<size_t>* out) const {
  SampleBatch(plan, rng, arena, BatchOptions{}, out);
}

void VersionedCoverageEngine::Sample(std::span<const CoverRange> cover,
                                     size_t s, Rng* rng,
                                     std::vector<size_t>* out) const {
  const Snapshot<CoverageEngine> snap = engine_.Acquire();
  snap->Sample(cover, s, rng, out);
}

}  // namespace iqs
