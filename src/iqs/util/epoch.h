// Epoch-based snapshot publication (RCU-style) for the dynamized
// samplers: non-blocking readers over immutable, atomically-swapped
// structure versions, with grace-period reclamation of retired versions.
//
// The problem this solves (ROADMAP item 2, paper Section 9 Direction 1):
// the dynamized structures — LogarithmicRangeSampler, DynamicAlias — must
// serve QueryBatch / Sample calls WHILE updates run, without stopping the
// world and without readers ever observing a torn structure. The classic
// lock-the-structure alternative (the SJS dynamic range tree's
// Activate/Deactivate mutation, SNIPPETS.md section 2) blocks every
// reader for the duration of a rebuild; under the logarithmic method a
// single rebuild is O(n), so tail latency is unbounded.
//
// Scheme (three cooperating pieces):
//
//   * EpochManager — per-reader epoch slots (cache-line-aligned, the same
//     shard pattern as TelemetrySink) plus a global epoch counter and
//     three limbo lists of retired objects. Readers claim a slot with one
//     CAS, pin the current epoch, and release with one store: lock-free,
//     never blocked by writers. Writers retire objects into the current
//     epoch's limbo list and advance the epoch only when every active
//     reader has caught up; an object retired in epoch E is freed once
//     the global epoch reaches E + 2 (the standard 3-epoch grace period —
//     see DESIGN.md section 2.7 for the proof sketch of why no reader can
//     still hold it).
//
//   * Snapshot<T> — a move-only read guard: holds a claimed slot plus the
//     structure version pointer loaded from the atomic root AFTER the
//     slot was published, so the version cannot be reclaimed while the
//     guard lives. A batch entry point pins ONE snapshot and serves the
//     entire batch against it.
//
//   * Versioned<T> — an atomic root + an embedded EpochManager: Acquire()
//     pins a Snapshot, Publish() swaps in the next immutable version,
//     retires the old one, and opportunistically reclaims. Reclamation
//     deleters can run on the existing ThreadPool (Reclaim(pool)) so a
//     serving thread never pays for freeing a large retired component.
//
// Threading contract: any number of concurrent readers; writers must be
// serialized by the caller (the versioned samplers hold one writer mutex
// around update + publish). Reader slots are claimed per Snapshot, so up
// to kNumSlots concurrent pins are lock-free; beyond that, EnterReader
// spins until a slot frees (64 slots comfortably exceeds the thread
// counts this library targets, mirroring TelemetrySink::kDefaultShards).
//
// Nothing here touches an Rng: pinning, publication, and reclamation can
// never perturb any sample stream.

#ifndef IQS_UTIL_EPOCH_H_
#define IQS_UTIL_EPOCH_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "iqs/util/check.h"
#include "iqs/util/thread_annotations.h"

namespace iqs {

class ThreadPool;

// Totals exported by the versioned structures into QueryStats (see
// iqs/util/telemetry.h): absolute counts since construction.
struct EpochTelemetry {
  uint64_t versions_published = 0;
  uint64_t versions_reclaimed = 0;
  uint64_t reader_pins = 0;
  uint64_t rebuild_ns = 0;
};

class EpochManager {
 public:
  // Mirrors TelemetrySink::kDefaultShards: comfortably exceeds the
  // concurrent reader counts this library targets.
  static constexpr size_t kNumSlots = 64;

  EpochManager() = default;
  // All readers must have exited; frees every still-retired object inline.
  ~EpochManager();

  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  // Reader side (lock-free; called by Snapshot). Claims a slot and pins
  // the current epoch in it; the returned index must be passed to
  // ExitReader exactly once. A reader must publish its pin BEFORE loading
  // the structure root it intends to read — Snapshot/Versioned encode
  // that order; manual users must load the root with seq_cst after this
  // call returns.
  size_t EnterReader();
  void ExitReader(size_t slot);

  // Writer side (internally serialized; callers may overlap). Hands `p`
  // to the current epoch's limbo list; `deleter(p)` runs once the grace
  // period has provably expired (no reader can still hold `p`).
  void Retire(void* p, void (*deleter)(void*));

  // Attempts to advance the global epoch and frees every retired object
  // whose grace period has expired; returns the number freed. With a
  // `pool`, two or more expired deleters run as one ParallelFor over the
  // pool's workers (the pool must not be mid-ParallelFor); otherwise they
  // run inline. Never blocks on readers: if any reader still pins an old
  // epoch, the advance simply fails and the objects stay in limbo for a
  // later call.
  size_t Reclaim(ThreadPool* pool = nullptr);

  // Blocks (yield-spinning Reclaim) until every object retired before the
  // call has been freed. Requires readers to be transient — a pin held
  // forever deadlocks the drain, exactly like a leaked read lock.
  void Drain(ThreadPool* pool = nullptr);

  // Number of retired-but-not-yet-freed objects. Bounded in steady state
  // (the no-monotonic-growth guarantee tested in epoch_test).
  size_t retired_pending() const {
    return pending_.load(std::memory_order_relaxed);
  }
  // Telemetry totals: objects freed, reader pins (summed over slots), and
  // the current global epoch.
  uint64_t reclaimed() const {
    return reclaimed_.load(std::memory_order_relaxed);
  }
  uint64_t reader_pins() const;
  uint64_t epoch() const { return epoch_.load(std::memory_order_relaxed); }

 private:
  // Slot state: 0 = free, else (pinned_epoch << 1) | 1. Cache-line
  // aligned so two readers' pin/unpin traffic never false-shares (the
  // TelemetryShard pattern).
  struct alignas(64) Slot {
    std::atomic<uint64_t> state{0};
    std::atomic<uint64_t> pins{0};  // relaxed telemetry counter
  };

  struct Retired {
    void* p;
    void (*deleter)(void*);
  };

  // Advances epoch_ by one if every active reader has pinned the current
  // epoch; on success moves the newly expired limbo list into `expired`.
  bool TryAdvanceLocked(std::vector<Retired>* expired) IQS_REQUIRES(mu_);

  void RunDeleters(std::vector<Retired>* expired, ThreadPool* pool);

  // Epoch starts at 1 so a free slot (state 0) can never alias an active
  // pin of epoch 0. Deliberately NOT guarded by mu_: readers load it
  // lock-free in EnterReader; only advancement (under mu_) stores it, and
  // the seq_cst pin/advance protocol — not the mutex — is what orders
  // those accesses (see TryAdvanceLocked).
  std::atomic<uint64_t> epoch_{1};
  Slot slots_[kNumSlots];

  Mutex mu_;  // guards limbo_ and epoch advancement
  // limbo_[e % 3] = retired in epoch e.
  std::vector<Retired> limbo_[3] IQS_GUARDED_BY(mu_);
  std::atomic<size_t> pending_{0};
  std::atomic<uint64_t> reclaimed_{0};
};

// Move-only read guard: pins one immutable structure version for its
// lifetime. Obtained from Versioned<T>::Acquire().
template <typename T>
class Snapshot {
 public:
  Snapshot() = default;
  Snapshot(Snapshot&& other) noexcept
      : mgr_(std::exchange(other.mgr_, nullptr)),
        ptr_(std::exchange(other.ptr_, nullptr)),
        slot_(other.slot_) {}
  Snapshot& operator=(Snapshot&& other) noexcept {
    if (this != &other) {
      Release();
      mgr_ = std::exchange(other.mgr_, nullptr);
      ptr_ = std::exchange(other.ptr_, nullptr);
      slot_ = other.slot_;
    }
    return *this;
  }
  Snapshot(const Snapshot&) = delete;
  Snapshot& operator=(const Snapshot&) = delete;
  ~Snapshot() { Release(); }

  const T* get() const { return ptr_; }
  const T* operator->() const {
    IQS_DCHECK(ptr_ != nullptr);
    return ptr_;
  }
  const T& operator*() const {
    IQS_DCHECK(ptr_ != nullptr);
    return *ptr_;
  }
  explicit operator bool() const { return ptr_ != nullptr; }

 private:
  template <typename U>
  friend class Versioned;

  Snapshot(EpochManager* mgr, const T* ptr, size_t slot)
      : mgr_(mgr), ptr_(ptr), slot_(slot) {}

  void Release() {
    if (mgr_ != nullptr) {
      mgr_->ExitReader(slot_);
      mgr_ = nullptr;
      ptr_ = nullptr;
    }
  }

  EpochManager* mgr_ = nullptr;
  const T* ptr_ = nullptr;
  size_t slot_ = 0;
};

// An atomically-swapped immutable version of T plus the epoch machinery
// that makes swapping safe: readers Acquire() a pinned Snapshot (never
// blocking, never torn), a single writer Publish()es the next version.
// Writers must be serialized by the caller; readers need no coordination.
template <typename T>
class Versioned {
 public:
  Versioned() = default;
  explicit Versioned(std::unique_ptr<const T> initial)
      : root_(initial.release()) {}

  ~Versioned() {
    // Readers must have exited (checked by ~EpochManager); drain frees
    // every retired version, then the live root goes down with the ship.
    mgr_.Drain();
    delete root_.load(std::memory_order_relaxed);
  }

  Versioned(const Versioned&) = delete;
  Versioned& operator=(const Versioned&) = delete;

  // Reader side: pins the current version. The slot is published before
  // the root load (both seq_cst), so the version cannot be reclaimed
  // while the snapshot lives — the EnterReader/root-load order is the
  // linchpin of the grace-period argument (DESIGN.md section 2.7).
  Snapshot<T> Acquire() const {
    const size_t slot = mgr_.EnterReader();
    const T* ptr = root_.load(std::memory_order_seq_cst);
    return Snapshot<T>(&mgr_, ptr, slot);
  }

  // Writer side (callers serialize): swaps `next` in as the current
  // version, retires the previous one, and opportunistically reclaims
  // expired versions (deleters on `pool` when given).
  void Publish(std::unique_ptr<const T> next, ThreadPool* pool = nullptr) {
    const T* old = root_.exchange(next.release(), std::memory_order_seq_cst);
    if (old != nullptr) {
      mgr_.Retire(const_cast<void*>(static_cast<const void*>(old)),
                  [](void* p) { delete static_cast<const T*>(p); });
    }
    published_.fetch_add(1, std::memory_order_relaxed);
    mgr_.Reclaim(pool);
  }

  // Writer-only peek at the current version without pinning: safe ONLY on
  // the (serialized) writer path, where nothing can retire it underneath.
  const T* writer_root() const { return root_.load(std::memory_order_relaxed); }

  EpochManager* epoch_manager() const { return &mgr_; }
  uint64_t versions_published() const {
    return published_.load(std::memory_order_relaxed);
  }

 private:
  mutable EpochManager mgr_;
  std::atomic<const T*> root_{nullptr};
  std::atomic<uint64_t> published_{0};
};

}  // namespace iqs

#endif  // IQS_UTIL_EPOCH_H_
