// Reusable bump allocator for per-query scratch memory.
//
// The batched serving path (RangeSampler::QueryBatch) runs many queries per
// call; each query needs short-lived buffers (canonical covers, cover
// weights, multinomial counts, per-lane descent state). Allocating those
// from the heap per query dominates the constant factors the batch path
// exists to remove, so callers carry a ScratchArena across calls: Alloc()
// bumps a pointer inside a retained block, Reset() rewinds it, and after a
// warm-up call the arena performs zero heap allocations in steady state.
//
// Only trivially-destructible types may be allocated (nothing is ever
// destroyed), and returned memory is uninitialized. Spans returned by
// Alloc() stay valid until Reset() even if a later Alloc() overflows into a
// fresh block — blocks are chained, never reallocated, and Reset()
// coalesces the chain into one block so growth converges.
//
// Not thread-safe; use one arena per thread (the single-query fallback
// paths keep a thread_local arena for exactly this reason).

#ifndef IQS_UTIL_SCRATCH_ARENA_H_
#define IQS_UTIL_SCRATCH_ARENA_H_

#include <cstddef>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "iqs/util/check.h"

namespace iqs {

class ScratchArena {
 public:
  explicit ScratchArena(size_t initial_bytes = 4096) {
    blocks_.push_back(NewBlock(initial_bytes));
  }

  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  // Returns an uninitialized span of `count` Ts, valid until Reset().
  template <typename T>
  std::span<T> Alloc(size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is never destroyed");
    static_assert(alignof(T) <= alignof(std::max_align_t));
    if (count == 0) return {};
    const size_t bytes = count * sizeof(T);
    Block& block = blocks_[active_];
    const size_t aligned = Align(block.used, alignof(T));
    if (aligned + bytes <= block.size) {
      block.used = aligned + bytes;
      return {reinterpret_cast<T*>(block.data.get() + aligned), count};
    }
    return {reinterpret_cast<T*>(Overflow(bytes, alignof(T))), count};
  }

  // Rewinds all allocations (previously returned spans become invalid).
  // If the last cycle overflowed into extra blocks, coalesces into a single
  // block large enough for the whole cycle, so repeated same-shaped calls
  // settle into zero heap allocations.
  void Reset() {
    if (blocks_.size() > 1) {
      size_t total = 0;
      for (const Block& block : blocks_) total += block.size;
      blocks_.clear();
      blocks_.push_back(NewBlock(total));
    }
    blocks_[0].used = 0;
    active_ = 0;
  }

  // Number of heap blocks ever allocated; stable across calls once warm.
  // Tests use this to assert the zero-steady-state-allocation property.
  size_t blocks_allocated() const { return blocks_allocated_; }

  size_t capacity_bytes() const {
    size_t total = 0;
    for (const Block& block : blocks_) total += block.size;
    return total;
  }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    size_t size = 0;
    size_t used = 0;
  };

  static size_t Align(size_t offset, size_t alignment) {
    return (offset + alignment - 1) & ~(alignment - 1);
  }

  Block NewBlock(size_t bytes) {
    bytes = bytes < 64 ? 64 : bytes;
    ++blocks_allocated_;
    return Block{std::make_unique<std::byte[]>(bytes), bytes, 0};
  }

  std::byte* Overflow(size_t bytes, size_t alignment) {
    // Chain a new block at least double the current capacity so the number
    // of overflow events per arena lifetime is logarithmic.
    size_t grow = capacity_bytes() * 2;
    if (grow < bytes + alignment) grow = bytes + alignment;
    blocks_.push_back(NewBlock(grow));
    active_ = blocks_.size() - 1;
    Block& block = blocks_[active_];
    const size_t aligned = Align(block.used, alignment);
    block.used = aligned + bytes;
    IQS_DCHECK(block.used <= block.size);
    return block.data.get() + aligned;
  }

  std::vector<Block> blocks_;
  size_t active_ = 0;
  size_t blocks_allocated_ = 0;
};

}  // namespace iqs

#endif  // IQS_UTIL_SCRATCH_ARENA_H_
