// Fast, deterministic pseudo-random number generation.
//
// Every sampler in libiqs draws randomness from an explicitly passed
// iqs::Rng so that experiments are reproducible under seeding and so that
// independence across queries is exactly "fresh randomness per query".
//
// The generator is xoshiro256++ (Blackman & Vigna), seeded via SplitMix64.
// It is not cryptographically secure; it is fast (<1ns/word) and passes
// BigCrush, which is what query-sampling workloads need.

#ifndef IQS_UTIL_RNG_H_
#define IQS_UTIL_RNG_H_

#include <cstdint>
#include <span>

#include "iqs/util/check.h"

namespace iqs {

// xoshiro256++ pseudo-random generator.
//
// Satisfies the UniformRandomBitGenerator concept, so it can also be used
// with <random> distributions when convenient.
class Rng {
 public:
  using result_type = uint64_t;

  // Seeds the state from `seed` via SplitMix64 so that any 64-bit seed
  // (including 0) yields a well-mixed state.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  Rng(const Rng&) = default;
  Rng& operator=(const Rng&) = default;

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~uint64_t{0}; }

  // Returns the next 64 random bits.
  uint64_t Next64() {
    const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  uint64_t operator()() { return Next64(); }

  // Returns a uniform integer in [0, bound). `bound` must be positive.
  // Uses Lemire's multiply-shift rejection method: unbiased, ~1 multiply.
  uint64_t Below(uint64_t bound);

  // Returns a uniform integer in [lo, hi] (both inclusive).
  int64_t Uniform(int64_t lo, int64_t hi) {
    IQS_DCHECK(lo <= hi);
    return lo + static_cast<int64_t>(
                    Below(static_cast<uint64_t>(hi - lo) + 1));
  }

  // Returns a uniform double in [0, 1) with 53 random bits.
  double NextDouble() {
    return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
  }

  // Returns true with probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p) { return NextDouble() < p; }

  // Block primitives for batched sampling inner loops: filling a buffer in
  // one call keeps the xoshiro state in registers across iterations and
  // gives the compiler a vectorizable loop, where the per-call equivalents
  // reload state each draw. Element distributions are identical to
  // NextDouble() / Below() respectively.
  //
  // Large fills dispatch to the active SIMD backend (simd/dispatch.h):
  // the vector path consumes ONE word of this stream as a block seed and
  // expands it into independent lanes (simd/lanes.h), so it produces the
  // same per-element law but a DIFFERENT byte stream than the scalar
  // loop. Under the scalar backend (detection, IQS_FORCE_SCALAR, or
  // -DIQS_DISABLE_SIMD) the output is bit-stable: FillDoubles equals the
  // NextDouble() stream word for word, as rng_test pins.

  // Fills `out` with independent uniform doubles in [0, 1).
  void FillDoubles(std::span<double> out);

  // Fills `out` with independent uniform integers in [0, bound).
  // `bound` must be positive.
  void FillBelow(uint64_t bound, std::span<uint64_t> out);

  // Returns a generator seeded from this one's stream; useful for giving
  // each worker/structure an independent stream. ADVANCES this generator.
  Rng Split() { return Rng(Next64()); }

  // Returns the generator for substream `stream_id`, derived
  // deterministically from this generator's CURRENT state WITHOUT
  // advancing it: ForkStream is a pure function of (state, stream_id), so
  // forking the same id twice yields identical generators and the parent
  // sequence is untouched. Distinct ids give statistically independent
  // streams — the child state is SplitMix64-seeded from a mix of the
  // parent state and the id, then separated by one xoshiro256++ long-jump
  // (2^192 steps). This is the primitive behind deterministic parallel
  // batch serving: per-query substreams make the output a pure function
  // of (seed, query index), independent of thread count and sharding.
  Rng ForkStream(uint64_t stream_id) const;

  // Advances this generator by 2^192 steps of its sequence (the
  // xoshiro256++ LONG_JUMP polynomial).
  void LongJump();

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
};

}  // namespace iqs

#endif  // IQS_UTIL_RNG_H_
