// Execution options for the batched serving entry points (QueryBatch,
// QueryPositionsBatch, CoverageEngine::SampleBatch, the multidim
// QueryBatch family).
//
// Two modes, selected by num_threads:
//
//   num_threads == 0 (the default)  — SEQUENTIAL LEGACY MODE. Draws come
//     from the caller's Rng stream in the historical order; behavior is
//     byte-for-byte what it was before parallel serving existed, so every
//     pre-existing call site is unchanged.
//
//   num_threads == k >= 1  — DETERMINISTIC PARALLEL MODE. The executor
//     draws ONE word from the caller's Rng as the batch key, then gives
//     every query its own substream (Rng::ForkStream of the key by query
//     index) for both its multinomial budget split and its draws. Queries
//     are sharded in contiguous ranges over the pool's workers. Because
//     each query's randomness is a pure function of (caller stream, query
//     index) and each query writes a fixed slice of the flat output, the
//     result is BIT-IDENTICAL for every k >= 1 under a fixed seed — k only
//     changes wall-clock. (It differs from mode-0 output: same law, a
//     different stream assignment.)
//
// The pool: pass a persistent ThreadPool to amortize thread creation and
// keep per-worker arenas warm across batches; with pool == nullptr a
// transient pool of num_threads workers is created for the call (fine for
// one-off batches, wasteful in a serving loop). When a pool is supplied
// its worker count wins; num_threads > 0 then just selects parallel mode.

#ifndef IQS_UTIL_BATCH_OPTIONS_H_
#define IQS_UTIL_BATCH_OPTIONS_H_

#include <algorithm>
#include <cstddef>
#include <memory>

#include "iqs/util/function_ref.h"
#include "iqs/util/thread_pool.h"

namespace iqs {

class TelemetrySink;

struct BatchOptions {
  size_t num_threads = 0;      // 0 = sequential; >= 1 = parallel mode
  ThreadPool* pool = nullptr;  // optional, not owned; see header comment

  // Optional observability sink (iqs/util/telemetry.h), not owned. When
  // null (the default) the serving path executes the uninstrumented
  // instruction stream; when set, counters and latency land in per-worker
  // shards and never touch the Rng, so attaching a sink cannot change any
  // sample. See the telemetry header for the counter-ownership rules.
  TelemetrySink* telemetry = nullptr;

  // Serving-frontend contract fields (iqs/serve/frontend.h). Both default
  // to 0 = "no contract", which is a NO-OP for every existing caller:
  // executors never read them except to IQS_CHECK the max_batch bound, so
  // a batch built without a frontend is byte-identical to before.
  //
  //   deadline_ns  queue-time budget the frontend shed against before
  //                handing the batch down; recorded for observability (a
  //                backend may use it to pick cheaper plans, never to
  //                change the law of the samples it does emit).
  //   max_batch    frontend's micro-batch window size; when nonzero the
  //                executors IQS_CHECK num_queries <= max_batch, turning a
  //                mis-wired batcher into an abort instead of a silent
  //                oversized flush.
  uint64_t deadline_ns = 0;
  size_t max_batch = 0;

  bool sequential() const { return num_threads == 0; }
};

// Resolves a parallel-mode BatchOptions to a usable pool: the caller's,
// or a transient one owned for the scope of the serving call. Also points
// the pool at the batch's telemetry sink (steal / busy-time counters) for
// the duration of the serving call.
class ScopedPool {
 public:
  explicit ScopedPool(const BatchOptions& opts) {
    if (opts.pool != nullptr) {
      pool_ = opts.pool;
    } else {
      owned_ =
          std::make_unique<ThreadPool>(std::max<size_t>(1, opts.num_threads));
      pool_ = owned_.get();
    }
    pool_->set_telemetry(opts.telemetry);
  }

  ~ScopedPool() { pool_->set_telemetry(nullptr); }

  ThreadPool* get() const { return pool_; }
  ThreadPool* operator->() const { return pool_; }

 private:
  ThreadPool* pool_ = nullptr;
  std::unique_ptr<ThreadPool> owned_;
};

// Shards [0, n) into contiguous index ranges — a few per worker, so the
// pool's stealing can rebalance uneven ranges — and runs
// fn(first, last, worker) for each. Purely an execution detail: callers
// must make output independent of the sharding (per-index substreams).
inline void ParallelForShards(ThreadPool* pool, size_t n,
                              FunctionRef<void(size_t, size_t, size_t)> fn) {
  if (n == 0) return;
  const size_t shards = std::min(n, pool->num_threads() * 4);
  pool->ParallelFor(shards, [&fn, n, shards](size_t shard, size_t worker) {
    fn(shard * n / shards, (shard + 1) * n / shards, worker);
  });
}

}  // namespace iqs

#endif  // IQS_UTIL_BATCH_OPTIONS_H_
