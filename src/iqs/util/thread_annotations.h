// Compile-time race detection support: Clang -Wthread-safety attribute
// macros plus the annotated Mutex / MutexLock / CondVar wrappers every
// lock in this library uses.
//
// Why wrappers instead of std::mutex: the thread-safety analysis needs
// capability attributes ON THE MUTEX TYPE to reason about which fields a
// lock protects, and the standard library types carry none. Mutex is a
// zero-overhead std::mutex with the capability attributes attached;
// MutexLock is the scoped guard (the lock_guard replacement); CondVar is
// a std::condition_variable whose Wait() declares, via IQS_REQUIRES,
// that the caller must hold the mutex it rendezvouses on. Under any
// non-Clang compiler (and under Clang without -Wthread-safety) every
// macro expands to nothing and the wrappers compile to exactly the
// std:: types they hold — same layout, same generated code.
//
// Annotation conventions (full write-up: DESIGN.md "Correctness
// tooling"):
//
//   * Every field protected by a mutex is declared with
//     IQS_GUARDED_BY(mu_) naming the ACTUAL mutex — never a blanket
//     IQS_NO_THREAD_SAFETY_ANALYSIS on the accessor.
//   * Private helpers called with a lock held are annotated
//     IQS_REQUIRES(mu_); helpers that must NOT be called with it held
//     (they take it themselves) are annotated IQS_EXCLUDES(mu_).
//   * Predicate waits are written as explicit `while (!cond) cv.Wait(&mu)`
//     loops at the call site, NOT as lambdas handed to a wait helper: the
//     analysis does not propagate the caller's lock set into lambda
//     bodies, so guarded reads inside a predicate lambda would need
//     suppressions. The explicit loop needs none.
//   * Fields read lock-free by design (atomics, epoch-published
//     pointers) carry no IQS_GUARDED_BY; the comment at the field must
//     say what orders the access instead (see util/epoch.h).
//
// The analyzer runs on every Clang build (-Wthread-safety is added by
// the top-level CMakeLists) and is promoted to an error in CI via
// -DIQS_THREAD_SAFETY_WERROR=ON (.github/workflows/static-analysis.yml).
// iqs-lint enforces that no naked std::mutex / std::lock_guard /
// std::condition_variable appears outside this header.

#ifndef IQS_UTIL_THREAD_ANNOTATIONS_H_
#define IQS_UTIL_THREAD_ANNOTATIONS_H_

#include <chrono>
// iqs_lint's naked-mutex rule exempts this file: it IS the wrapper.
#include <condition_variable>
#include <cstdint>
#include <mutex>

#if defined(__clang__)
#define IQS_THREAD_ANNOTATION_ATTRIBUTE_(x) __attribute__((x))
#else
#define IQS_THREAD_ANNOTATION_ATTRIBUTE_(x)  // no-op outside Clang
#endif

// On a type: this class is a lockable capability ("mutex").
#define IQS_CAPABILITY(x) IQS_THREAD_ANNOTATION_ATTRIBUTE_(capability(x))

// On a type: RAII object that acquires a capability at construction and
// releases it at destruction (MutexLock).
#define IQS_SCOPED_CAPABILITY \
  IQS_THREAD_ANNOTATION_ATTRIBUTE_(scoped_lockable)

// On a field: reads and writes require holding mutex x.
#define IQS_GUARDED_BY(x) IQS_THREAD_ANNOTATION_ATTRIBUTE_(guarded_by(x))

// On a pointer field: the POINTED-TO data is protected by mutex x (the
// pointer itself may be read freely).
#define IQS_PT_GUARDED_BY(x) IQS_THREAD_ANNOTATION_ATTRIBUTE_(pt_guarded_by(x))

// On a function: the caller must hold the listed mutexes on entry (and
// still holds them on return, even if the body unlocks and relocks).
#define IQS_REQUIRES(...) \
  IQS_THREAD_ANNOTATION_ATTRIBUTE_(requires_capability(__VA_ARGS__))

// On a function: acquires / releases the listed mutexes (no list = the
// object itself, for Mutex::Lock / Mutex::Unlock).
#define IQS_ACQUIRE(...) \
  IQS_THREAD_ANNOTATION_ATTRIBUTE_(acquire_capability(__VA_ARGS__))
#define IQS_RELEASE(...) \
  IQS_THREAD_ANNOTATION_ATTRIBUTE_(release_capability(__VA_ARGS__))
#define IQS_TRY_ACQUIRE(...) \
  IQS_THREAD_ANNOTATION_ATTRIBUTE_(try_acquire_capability(__VA_ARGS__))

// On a function: the caller must NOT hold the listed mutexes (the
// function acquires them itself — the deadlock-by-reentry guard).
#define IQS_EXCLUDES(...) \
  IQS_THREAD_ANNOTATION_ATTRIBUTE_(locks_excluded(__VA_ARGS__))

// On a function: returns a reference to the listed mutex.
#define IQS_RETURN_CAPABILITY(x) \
  IQS_THREAD_ANNOTATION_ATTRIBUTE_(lock_returned(x))

// Escape hatch of last resort. Repository policy (enforced by review,
// documented in DESIGN.md): never used in src/ — annotate the real
// contract instead.
#define IQS_NO_THREAD_SAFETY_ANALYSIS \
  IQS_THREAD_ANNOTATION_ATTRIBUTE_(no_thread_safety_analysis)

namespace iqs {

// std::mutex with the capability attributes the analysis needs. Same
// size, same code; Lock/Unlock compile to lock/unlock.
class IQS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() IQS_ACQUIRE() { mu_.lock(); }
  void Unlock() IQS_RELEASE() { mu_.unlock(); }
  bool TryLock() IQS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // CondVar rendezvous only — do not lock through this directly.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

// Scoped guard (the std::lock_guard replacement): acquires at
// construction, releases at destruction.
class IQS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) IQS_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() IQS_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

// Condition variable over Mutex. Wait declares the lock contract the
// analysis checks (held on entry, released while blocked, re-held on
// return). Write predicate waits as explicit loops at the call site:
//   while (!condition) cv.Wait(&mu);
// (see the header comment for why a predicate-lambda overload is
// deliberately absent).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex* mu) IQS_REQUIRES(mu) {
    // Adopt/release shim onto std::condition_variable: the unique_lock
    // borrows the already-held mutex and gives it back untouched.
    std::unique_lock<std::mutex> lock(mu->native(), std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller still owns the re-acquired mutex
  }

  // Timed wait; returns false iff the wait timed out. Spurious wakeups
  // return true, exactly like std::condition_variable — callers loop on
  // their predicate either way.
  bool WaitForNs(Mutex* mu, uint64_t ns) IQS_REQUIRES(mu) {
    // Adopt/release shim onto std::condition_variable: the unique_lock
    // borrows the already-held mutex and gives it back untouched.
    std::unique_lock<std::mutex> lock(mu->native(), std::adopt_lock);
    const std::cv_status status =
        cv_.wait_for(lock, std::chrono::nanoseconds(ns));
    lock.release();
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace iqs

#endif  // IQS_UTIL_THREAD_ANNOTATIONS_H_
