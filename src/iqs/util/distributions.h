// Synthetic data and workload generators used by benchmarks, examples, and
// property tests. These play the role of the "workload generator" for the
// experiment suite: the paper being reproduced states asymptotic claims
// rather than measured tables, so each experiment sweeps these synthetic
// inputs (see DESIGN.md section 3).

#ifndef IQS_UTIL_DISTRIBUTIONS_H_
#define IQS_UTIL_DISTRIBUTIONS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "iqs/util/rng.h"

namespace iqs {

// Samples from a Zipf(alpha) distribution over {1, ..., n} in O(1) expected
// time after O(1) setup, using the rejection-inversion method of
// Hormann & Derflinger. alpha may be any value > 0, alpha != 1 is handled
// jointly with alpha == 1.
class ZipfDistribution {
 public:
  ZipfDistribution(uint64_t n, double alpha);

  // Returns a value in [1, n] with P(k) proportional to k^-alpha.
  uint64_t Sample(Rng* rng) const;

  uint64_t n() const { return n_; }
  double alpha() const { return alpha_; }

 private:
  double H(double x) const;
  double HInverse(double x) const;

  uint64_t n_;
  double alpha_;
  double h_x1_;
  double h_n_;
  double s_;
};

// Returns `n` distinct sorted doubles drawn uniformly from [0, 1).
std::vector<double> UniformKeys(size_t n, Rng* rng);

// Returns `n` distinct sorted doubles clustered into `clusters` Gaussian
// bumps — a skewed key distribution for range-query benchmarks.
std::vector<double> ClusteredKeys(size_t n, size_t clusters, Rng* rng);

// Returns `n` positive weights: Zipf-distributed frequencies shuffled over
// positions (alpha == 0 gives all-equal weights, i.e. the WR scheme).
std::vector<double> ZipfWeights(size_t n, double alpha, Rng* rng);

// Returns a random query interval [lo, hi] over sorted `keys` whose result
// size is exactly `result_size` elements, positioned uniformly at random.
// result_size must be in [1, keys.size()].
std::pair<double, double> IntervalWithSelectivity(
    const std::vector<double>& keys, size_t result_size, Rng* rng);

// Returns `n` 2-d points: uniform in the unit square if clusters == 0,
// otherwise clustered into `clusters` Gaussian bumps.
std::vector<std::pair<double, double>> Points2D(size_t n, size_t clusters,
                                                Rng* rng);

}  // namespace iqs

#endif  // IQS_UTIL_DISTRIBUTIONS_H_
