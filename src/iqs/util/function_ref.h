// Non-owning, non-allocating callable reference — the std::function_ref
// of P0792 (C++26), reduced to what hot paths here need. Unlike
// std::function, constructing one from a capturing lambda never heap-
// allocates; it stores one object pointer plus one trampoline pointer.
//
// Lifetime: a FunctionRef does not extend the callable's lifetime. Bind
// only to callables that outlive every Call — fine for the dominant use,
// passing a lambda down a synchronous call chain (e.g. the acceptance
// predicate of CoverageEngine::SampleWithRejection).

#ifndef IQS_UTIL_FUNCTION_REF_H_
#define IQS_UTIL_FUNCTION_REF_H_

#include <type_traits>
#include <utility>

namespace iqs {

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  // NOLINTNEXTLINE(google-explicit-constructor): mirrors std::function_ref.
  FunctionRef(F&& f)
      : object_(const_cast<void*>(
            static_cast<const void*>(std::addressof(f)))),
        trampoline_([](void* object, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(object))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return trampoline_(object_, std::forward<Args>(args)...);
  }

 private:
  void* object_;
  R (*trampoline_)(void*, Args...);
};

}  // namespace iqs

#endif  // IQS_UTIL_FUNCTION_REF_H_
