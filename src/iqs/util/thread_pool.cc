#include "iqs/util/thread_pool.h"

#include "iqs/util/telemetry.h"

namespace iqs {

ThreadPool::ThreadPool(size_t num_threads) : num_threads_(num_threads) {
  IQS_CHECK(num_threads >= 1);
  arenas_.reserve(num_threads_);
  for (size_t w = 0; w < num_threads_; ++w) {
    arenas_.push_back(std::make_unique<ScratchArena>());
  }
  threads_.reserve(num_threads_ - 1);
  for (size_t w = 1; w < num_threads_; ++w) {
    threads_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    IQS_CHECK(current_job_ == nullptr);  // destroying a pool mid-ParallelFor
    shutdown_ = true;
  }
  job_cv_.NotifyAll();
  for (std::thread& thread : threads_) thread.join();
}

void ThreadPool::ParallelFor(size_t num_shards,
                             FunctionRef<void(size_t, size_t)> fn) {
  if (num_shards == 0) return;
  if (num_threads_ == 1 || num_shards == 1) {
    // Inline fast path; also what a transient single-worker pool runs.
    if (telemetry_ != nullptr) {
      const uint64_t start_ns = TelemetryNowNs();
      for (size_t shard = 0; shard < num_shards; ++shard) fn(shard, 0);
      telemetry_->shard(0)->stats.busy_ns += TelemetryNowNs() - start_ns;
      return;
    }
    for (size_t shard = 0; shard < num_shards; ++shard) fn(shard, 0);
    return;
  }

  // Deal shards round-robin so every worker starts with local work; the
  // stealing in RunShards rebalances whatever the deal gets wrong.
  std::vector<std::deque<size_t>> queues(num_threads_);
  for (size_t shard = 0; shard < num_shards; ++shard) {
    queues[shard % num_threads_].push_back(shard);
  }
  Job job{fn, &queues, /*unclaimed=*/num_shards, /*unfinished=*/num_shards,
          /*workers_inside=*/0};

  mu_.Lock();
  IQS_CHECK(current_job_ == nullptr);  // nested/concurrent ParallelFor
  current_job_ = &job;
  ++job_epoch_;
  job_cv_.NotifyAll();

  RunShards(&job, /*worker=*/0);
  // The caller ran out of claimable work, but stolen shards may still be
  // executing elsewhere, and `job` lives on this stack frame: wait until
  // every shard is done AND every background worker has let go of the job
  // before tearing it down.
  while (!(job.unfinished == 0 && job.workers_inside == 0)) {
    done_cv_.Wait(&mu_);
  }
  current_job_ = nullptr;
  mu_.Unlock();
}

void ThreadPool::WorkerLoop(size_t worker) {
  mu_.Lock();
  uint64_t seen_epoch = 0;
  while (true) {
    while (!(shutdown_ ||
             (current_job_ != nullptr && job_epoch_ != seen_epoch))) {
      job_cv_.Wait(&mu_);
    }
    if (shutdown_) {
      mu_.Unlock();
      return;
    }
    seen_epoch = job_epoch_;
    Job* job = current_job_;
    ++job->workers_inside;
    RunShards(job, worker);
    --job->workers_inside;
    if (job->unfinished == 0 && job->workers_inside == 0) {
      done_cv_.NotifyAll();
    }
  }
}

void ThreadPool::RunShards(Job* job, size_t worker) {
  std::vector<std::deque<size_t>>& queues = *job->queues;
  while (job->unclaimed > 0) {
    // Own deque first (LIFO: the most recently dealt shard's queries are
    // the likeliest to share cover nodes with the last one served), then
    // steal FIFO from the other workers, scanning from the next index so
    // thieves spread out instead of all raiding worker 0.
    size_t shard = 0;
    bool found = false;
    bool stolen = false;
    if (!queues[worker].empty()) {
      shard = queues[worker].back();
      queues[worker].pop_back();
      found = true;
    } else {
      for (size_t k = 1; k < num_threads_ && !found; ++k) {
        std::deque<size_t>& victim = queues[(worker + k) % num_threads_];
        if (!victim.empty()) {
          shard = victim.front();
          victim.pop_front();
          found = true;
          stolen = true;
        }
      }
    }
    // Queues and the unclaimed count change together under mu_, so a
    // positive count guarantees a find; the bail-out is belt-and-braces.
    IQS_DCHECK(found);
    if (!found) return;
    --job->unclaimed;

    mu_.Unlock();
    if (telemetry_ != nullptr) {
      TelemetryShard* tshard = telemetry_->shard(worker);
      if (stolen) ++tshard->stats.steals;
      const uint64_t start_ns = TelemetryNowNs();
      job->fn(shard, worker);
      tshard->stats.busy_ns += TelemetryNowNs() - start_ns;
    } else {
      job->fn(shard, worker);
    }
    mu_.Lock();

    if (--job->unfinished == 0) done_cv_.NotifyAll();
  }
}

}  // namespace iqs
